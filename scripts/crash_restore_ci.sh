#!/usr/bin/env bash
# Crash-and-restore protocol for the checkpoint subsystem (CI tier).
#
# Two phases, both ending in `ckpt_bench --crash-verify`, which restores
# from the newest COMPLETE checkpoint on disk and replays the sidecar op
# log the writer flushed before its first checkpoint. The workload is the
# token-mover conservation game: threads move a fixed set of tokens
# between keys, so ANY linearizable cut of the map holds exactly the
# logged token set — a restored image that passes verification is
# consistent, not merely non-empty.
#
#   Phase 1 (deterministic): the writer SIGKILLs itself mid-segment-stream
#   of its third checkpoint (--kill-after-checkpoints=2 --kill-segments=7),
#   leaving a torn .sfc.tmp next to two complete checkpoints. Restore must
#   ignore the torn file and verify against the op log.
#
#   Phase 2 (randomized): the writer loops incremental checkpoints under
#   live movers; once it prints FIRST_CHECKPOINT_DONE we SIGKILL it from
#   outside at a random instant (seed printed for reproduction, override
#   with CRASH_SEED). Whatever the kill tore, restore must still find a
#   complete checkpoint and verify.
#
# Usage: scripts/crash_restore_ci.sh [BUILD_DIR]
set -uo pipefail

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/ckpt_bench"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "crash_restore_ci: FAIL — $*" >&2
  exit 1
}

[[ -x "$BIN" ]] || fail "$BIN not built (configure with -DSFTREE_BUILD_BENCH=ON)"

# --- Phase 1: deterministic self-kill mid-stream --------------------------
D1="$WORK/deterministic"
echo "crash_restore_ci: phase 1 — self-SIGKILL after 7 fresh segments of" \
     "checkpoint #3"
"$BIN" --crash-run --dir="$D1" --keys=4000 --threads=4 \
  --kill-after-checkpoints=2 --kill-segments=7 >"$WORK/run1.log" 2>&1
rc=$?
(( rc == 137 )) || fail "deterministic crash-run exited $rc, expected 137 (SIGKILL)"
grep -q FIRST_CHECKPOINT_DONE "$WORK/run1.log" \
  || fail "deterministic writer never completed its first checkpoint"
if ! ls "$D1"/*.sfc.tmp >/dev/null 2>&1; then
  # The kill is segment-count triggered, so a torn temp file is expected;
  # its absence means the hook misfired — better to know than to pass.
  fail "deterministic kill left no torn .sfc.tmp behind"
fi
"$BIN" --crash-verify --dir="$D1" \
  || fail "restore after the deterministic kill broke token conservation"

# --- Phase 2: external SIGKILL at a random instant ------------------------
D2="$WORK/random"
SEED="${CRASH_SEED:-$RANDOM}"
echo "crash_restore_ci: phase 2 — external SIGKILL, seed=$SEED" \
     "(re-run with CRASH_SEED=$SEED to reproduce)"
"$BIN" --crash-run --dir="$D2" --keys=4000 --threads=4 \
  --duration-ms=20000 >"$WORK/run2.log" 2>&1 &
PID=$!
for _ in $(seq 1 400); do
  grep -q FIRST_CHECKPOINT_DONE "$WORK/run2.log" 2>/dev/null && break
  kill -0 "$PID" 2>/dev/null \
    || fail "phase-2 writer died before its first checkpoint (log: $(cat "$WORK/run2.log"))"
  sleep 0.05
done
grep -q FIRST_CHECKPOINT_DONE "$WORK/run2.log" \
  || fail "phase-2 writer never reported its first checkpoint within 20s"
# Kill somewhere inside the incremental-checkpoint loop: 0..1.999s after
# the first complete image exists.
sleep "$((SEED / 1000 % 2)).$(printf '%03d' $((SEED % 1000)))"
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null
"$BIN" --crash-verify --dir="$D2" \
  || fail "restore after the random kill broke token conservation"

echo "crash_restore_ci: PASS — both crash phases restored a consistent," \
     "token-conserving image"
