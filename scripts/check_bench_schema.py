#!/usr/bin/env python3
"""Schema guard for the consolidated read-path benchmark report.

CI runs bench/run_quick.sh and then this checker over BENCH_readpath.json.
The trajectory tooling keys on these fields; a bench refactor that renames
or drops one silently breaks the perf history, so drift fails the build.
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def require(obj, keys, where):
    for key in keys:
        if key not in obj:
            fail(f"missing key '{key}' in {where}")


def check_repo_report(report, name, result_keys):
    require(report, ["bench", "meta", "results"], name)
    if not isinstance(report["results"], list) or not report["results"]:
        fail(f"{name}.results must be a non-empty list")
    for i, rec in enumerate(report["results"]):
        require(rec, result_keys, f"{name}.results[{i}]")


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_readpath.json"
    with open(path) as f:
        top = json.load(f)

    require(top, ["bench", "fig3_microbench", "fig5b_move", "table1_reads",
                  "stm_micro"], "top level")
    if top["bench"] != "readpath":
        fail("top-level bench tag must be 'readpath'")

    check_repo_report(top["fig3_microbench"], "fig3_microbench",
                      ["tree", "update_percent", "threads", "ops_per_us",
                       "abort_ratio"])
    check_repo_report(top["fig5b_move"], "fig5b_move", ["ops_per_us"])
    check_repo_report(top["table1_reads"], "table1_reads",
                      ["tree", "update_percent", "max_op_reads",
                       "mean_op_reads", "ops_per_us", "ro_commits",
                       "ro_snapshot_extensions"])

    micro = top["stm_micro"]
    if "skipped" in micro:
        print("check_bench_schema: stm_micro skipped (library not built)")
    else:
        # google-benchmark JSON: context + benchmarks[].{name, real_time,...}
        require(micro, ["context", "benchmarks"], "stm_micro")
        names = {b.get("name", "") for b in micro["benchmarks"]}
        for expected in ("BM_ReadOnlyTransaction/512",
                         "BM_LoggedReadTransaction/512",
                         "BM_WriteSetLookup/512"):
            if not any(n.startswith(expected) for n in names):
                fail(f"stm_micro is missing benchmark '{expected}'")

    print(f"check_bench_schema: {path} OK")


if __name__ == "__main__":
    main()
