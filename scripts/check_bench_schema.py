#!/usr/bin/env python3
"""Schema + regression guard for the consolidated benchmark reports.

CI runs bench/run_quick.sh and then this checker over the reports it
produced. The trajectory tooling keys on these fields; a bench refactor that
renames or drops one silently breaks the perf history, so drift fails the
build. Dispatch is on the top-level "bench" tag:

  * readpath  — field-presence checks only (BENCH_readpath.json).
  * shard_scaling — field-presence checks (BENCH_shard_scaling.json; it was
    previously only cat-ed, so a field rename could silently break the
    scaling trajectory).
  * reshard_churn — field-presence checks plus the dynamic-re-sharding
    acceptance gates (BENCH_reshard.json): on the skewed workload the
    dynamic topology must absorb >= 1.3x of the hot shard's traffic share
    (deterministic on any core count), the dynamic/static throughput ratio
    must reach >= 1.3x on multi-core runners (>= 4 hardware threads — on
    fewer cores topology spreading has no parallelism to unlock, so only a
    comparison is advisory), the forced split->merge migration window
    must keep >= 50% of steady-state throughput, and both runs must
    conserve keys.
  * obs_overhead — field-presence checks plus the observability cost gates
    (BENCH_obs.json): the always-on surface (abort taxonomy + tx latency
    histograms) must cost <= 2% over the observability-off baseline and
    the commit-event trace <= 10% (per-mode minima over interleaved reps,
    recomputed from the records — interference on shared runners is
    additive, so the fastest rep estimates intrinsic cost); the
    abort-cause partition invariant
    (sum of conflict causes == legacy aborts counter) must have held in
    every run. --fresh relaxes the ratio gates to 10%/20% for freshly
    generated reports on noisy shared runners; the committed baseline is
    always held to the strict bounds.
  * splay_skew — field-presence checks plus the splay-under-skew gates
    (BENCH_splay.json): with splaying on, the Zipf(0.99) mix must either
    cut the hot set's mean access depth >= 1.5x (the deterministic proxy —
    the converged tree shape does not depend on machine speed, so this
    gate holds on any core count) or win >= 1.3x throughput; the uniform
    mix must stay >= 0.95x parity (hysteresis: no churn without skew); the
    read-path sampling must cost <= 2% on the pure-read probe; and the
    deterministic arm must actually have performed splay steps. --fresh
    relaxes the noise-exposed bounds (depth 1.3x / tput 1.15x / parity
    0.85 / overhead 6%) for reports generated on shared runners; the
    committed baseline is always held to the strict bounds.
  * serving_ycsb — field-presence checks plus the serving-tier acceptance
    gates (BENCH_serving.json): at equal offered load on the read-mostly
    (YCSB-B-like) mix, transaction coalescing must complete >= 1.3x the
    rate of one-transaction-per-request (per-arm best over interleaved
    reps, recomputed from the records; the arms differ only in batch size
    so the ratio is a deterministic proxy for per-transaction overhead and
    gates on any core count — the reshard precedent); the batched arm must
    actually have coalesced (batch transactions committed, mean fill >= 2
    at a configured batch >= 16); every amortization rep must conserve
    keys; and the open-loop sweep must cover every mix x distribution cell
    with p50/p99/p999 latency fields and one max-sustained-rate-under-SLO
    record each. --fresh relaxes the amortization ratio to 1.15x for
    reports generated on noisy shared runners; the committed baseline is
    always held to 1.3x.
  * ckpt — field-presence checks plus the checkpoint/restore acceptance
    gates (BENCH_ckpt.json): every rep's segment checksums must have
    verified, every restore round-trip must reproduce the checkpointed
    key/value set exactly (restore_keys == meta.keys and the dumped maps
    compare equal), the 10%-dirty-slots incremental must be strictly
    smaller than the full image with at least one clean segment reused
    from the parent file, and the mutator-throughput dip while a full
    checkpoint streams must stay >= 0.5 on the best rep (interference on
    shared runners is additive, so the best rep estimates the intrinsic
    dip; --fresh relaxes the floor to 0.35 — correctness gates are never
    relaxed).
  * maintpath — field-presence checks, the targeted-vs-sweep acceptance
    gates (targeted maintenance must do >= 1.5x less maintenance work per
    committed update than full sweeps, with final height within 1.5x), and,
    with --baseline <committed BENCH_maintpath.json>, a trajectory guard
    that fails when targeted maintenance work per committed update regresses
    by more than 20% against the committed baseline. Work per committed
    update (nodes visited by maintenance / committed updates) is the
    deterministic proxy for maintenance CPU per update — wall-clock CPU on
    shared CI runners is too noisy to gate on.
"""
import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_bench_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def require(obj, keys, where):
    for key in keys:
        if key not in obj:
            fail(f"missing key '{key}' in {where}")


def check_repo_report(report, name, result_keys):
    require(report, ["bench", "meta", "results"], name)
    if not isinstance(report["results"], list) or not report["results"]:
        fail(f"{name}.results must be a non-empty list")
    for i, rec in enumerate(report["results"]):
        require(rec, result_keys, f"{name}.results[{i}]")


def check_readpath(top) -> None:
    require(top, ["fig3_microbench", "fig5b_move", "table1_reads",
                  "stm_micro"], "top level")

    check_repo_report(top["fig3_microbench"], "fig3_microbench",
                      ["tree", "update_percent", "threads", "ops_per_us",
                       "abort_ratio"])
    check_repo_report(top["fig5b_move"], "fig5b_move", ["ops_per_us"])
    check_repo_report(top["table1_reads"], "table1_reads",
                      ["tree", "update_percent", "max_op_reads",
                       "mean_op_reads", "ops_per_us", "ro_commits",
                       "ro_snapshot_extensions"])

    micro = top["stm_micro"]
    if "skipped" in micro:
        print("check_bench_schema: stm_micro skipped (library not built)")
    else:
        # google-benchmark JSON: context + benchmarks[].{name, real_time,...}
        require(micro, ["context", "benchmarks"], "stm_micro")
        names = {b.get("name", "") for b in micro["benchmarks"]}
        for expected in ("BM_ReadOnlyTransaction/512",
                         "BM_LoggedReadTransaction/512",
                         "BM_WriteSetLookup/512"):
            if not any(n.startswith(expected) for n in names):
                fail(f"stm_micro is missing benchmark '{expected}'")


SHARD_SCALING_KEYS = [
    "shards", "domain_mode", "workers", "ops_per_us", "commits_per_us",
    "effective_update_ratio", "abort_ratio", "per_domain_commits",
    "per_domain_aborts", "maintenance_passes", "rotations", "removals",
    "size_estimate",
]


def check_shard_scaling(top) -> None:
    check_repo_report(top, "shard_scaling", SHARD_SCALING_KEYS)


RESHARD_RECORD_KEYS = [
    "mode", "ops_per_us", "steady_ops_per_us", "migration_min_ops_per_us",
    "migration_dip_ratio", "abort_ratio", "max_update_share", "shard_count",
    "ctl_splits", "ctl_merges", "splits", "merges", "keys_migrated",
    "migration_batches", "keys_conserved",
]


def check_reshard(top) -> None:
    check_repo_report(top, "reshard_churn", RESHARD_RECORD_KEYS)
    require(top["meta"], ["threads", "shards", "hw_concurrency",
                          "hot_percent", "update_percent"],
            "reshard_churn.meta")
    by_mode = {r["mode"]: r for r in top["results"]}
    for mode in ("static", "dynamic"):
        if mode not in by_mode:
            fail(f"reshard_churn has no '{mode}' record")
    static, dynamic = by_mode["static"], by_mode["dynamic"]

    for mode, rec in by_mode.items():
        if not rec["keys_conserved"]:
            fail(f"reshard_churn {mode} run did not conserve keys "
                 "(size() != sizeEstimate() after quiesce)")

    # The workload must actually be skewed for the comparison to mean
    # anything: static's hottest shard carries the bulk of the updates.
    if static["max_update_share"] < 0.5:
        fail("reshard_churn static max_update_share "
             f"{static['max_update_share']:.2f} < 0.5 — the workload is not "
             "skewed enough to exercise re-sharding")

    # Gate 1 (deterministic on any machine): the adapted topology absorbs
    # the skew — the hottest shard's share of update traffic drops >= 1.3x.
    if dynamic["max_update_share"] <= 0:
        fail("reshard_churn dynamic max_update_share is zero — no traffic?")
    absorbed = static["max_update_share"] / dynamic["max_update_share"]
    if absorbed < 1.3:
        fail(f"dynamic re-sharding absorbed only {absorbed:.2f}x of the hot "
             f"shard's traffic share (static {static['max_update_share']:.2f}"
             f" vs dynamic {dynamic['max_update_share']:.2f}; need >= 1.3x)")

    # Gate 2: throughput. Spreading a hot shard over more trees/domains
    # pays in parallelism, so the 1.3x target applies where parallelism
    # exists (>= 4 hardware threads, i.e. every CI runner); a single-core
    # box can only be held to a parity floor (re-sharding must not *cost*
    # throughput even where it cannot win).
    if static["ops_per_us"] <= 0:
        fail("reshard_churn static ops_per_us is zero")
    speedup = dynamic["ops_per_us"] / static["ops_per_us"]
    hw = top["meta"]["hw_concurrency"]
    if hw >= 4:
        if speedup < 1.3:
            fail(f"dynamic/static skewed-workload throughput {speedup:.2f}x "
                 f"< 1.3x on a {hw}-thread machine")
    else:
        # Advisory only: on < 4 hardware threads the throughput comparison
        # is both physically undefined (nothing to parallelize over) and
        # too noisy to gate (observed 0.73x-0.95x run-to-run on one core).
        # The deterministic gates above/below still apply in full.
        print(f"check_bench_schema: reshard throughput comparison is "
              f"advisory on hw_concurrency={hw} ({speedup:.2f}x; the 1.3x "
              "gate needs >= 4 hardware threads)")

    # Gate 3: the forced split->merge migration window keeps >= 50% of
    # steady-state throughput.
    if dynamic["migration_dip_ratio"] < 0.5:
        fail("migration-window throughput dipped to "
             f"{dynamic['migration_dip_ratio']:.2f}x of steady state "
             "(bound: 0.5)")
    print(f"check_bench_schema: reshard gates OK — skew absorbed "
          f"{absorbed:.2f}x, throughput {speedup:.2f}x, dip "
          f"{dynamic['migration_dip_ratio']:.2f}")


OBS_RECORD_KEYS = [
    "mode", "rep", "ops", "seconds", "ns_per_op", "abort_ratio",
]

OBS_META_KEYS = [
    "reps", "threads", "duration_ms", "size_log", "update_percent",
    "off_ns_per_op", "metrics_ns_per_op", "trace_ns_per_op",
    "metrics_ratio", "trace_ratio", "cause_sum_matches",
]


def check_obs_overhead(top, fresh) -> None:
    check_repo_report(top, "obs_overhead", OBS_RECORD_KEYS)
    require(top["meta"], OBS_META_KEYS, "obs_overhead.meta")

    if not top["meta"]["cause_sum_matches"]:
        fail("obs_overhead: abort-cause counters did not sum to the legacy "
             "aborts counter in at least one run (taxonomy partition "
             "invariant broken)")

    # Recompute per-mode minima from the records rather than trusting the
    # meta block, then gate on the ratios (interference is additive, so the
    # fastest rep is the robust intrinsic-cost estimator). The fresh bounds
    # absorb residual shared-runner noise; the committed baseline is held
    # to the strict bounds.
    by_mode = {}
    for rec in top["results"]:
        by_mode.setdefault(rec["mode"], []).append(rec["ns_per_op"])
    for mode in ("off", "metrics", "trace"):
        if not by_mode.get(mode):
            fail(f"obs_overhead has no '{mode}' records")

    off = min(by_mode["off"])
    if off <= 0:
        fail("obs_overhead: off-mode best ns/op is zero")
    metrics_ratio = min(by_mode["metrics"]) / off
    trace_ratio = min(by_mode["trace"]) / off

    metrics_bound = 1.10 if fresh else 1.02
    trace_bound = 1.20 if fresh else 1.10
    kind = "fresh" if fresh else "committed"
    if metrics_ratio > metrics_bound:
        fail(f"always-on observability costs {metrics_ratio:.3f}x vs off "
             f"(bound {metrics_bound:.2f} for a {kind} report)")
    if trace_ratio > trace_bound:
        fail(f"enabled tracing costs {trace_ratio:.3f}x vs off "
             f"(bound {trace_bound:.2f} for a {kind} report)")
    print(f"check_bench_schema: obs gates OK ({kind}) — metrics "
          f"{metrics_ratio:.3f}x, trace {trace_ratio:.3f}x, cause sums "
          "match")


SPLAY_RECORD_KEYS = [
    "arm", "rep", "ops", "seconds", "ns_per_op", "ops_per_us", "abort_ratio",
]

SPLAY_META_KEYS = [
    "reps", "threads", "hw_concurrency", "duration_ms", "size_log",
    "update_percent", "zipf_s", "det_ops", "hot_ranks", "zipf_tput_ratio",
    "uniform_parity_ratio", "read_overhead_ratio", "hot_depth_off",
    "hot_depth_on", "zipf_hot_depth_reduction", "pop_depth_off",
    "pop_depth_on", "det_splay_steps",
]

SPLAY_ARMS = ("uniform_off", "uniform_on", "zipf_off", "zipf_on",
              "read_off", "read_on")


def check_splay(top, fresh) -> None:
    check_repo_report(top, "splay_skew", SPLAY_RECORD_KEYS)
    require(top["meta"], SPLAY_META_KEYS, "splay_skew.meta")
    meta = top["meta"]

    # Recompute the throughput ratios from per-arm minima over the
    # interleaved reps (same robust-estimator rationale as obs_overhead)
    # instead of trusting the meta block.
    by_arm = {}
    for rec in top["results"]:
        by_arm.setdefault(rec["arm"], []).append(rec["ns_per_op"])
    for arm in SPLAY_ARMS:
        if not by_arm.get(arm):
            fail(f"splay_skew has no '{arm}' records")
        if min(by_arm[arm]) <= 0:
            fail(f"splay_skew '{arm}' best ns/op is zero")
    zipf_ratio = min(by_arm["zipf_off"]) / min(by_arm["zipf_on"])
    parity = min(by_arm["uniform_off"]) / min(by_arm["uniform_on"])
    overhead = min(by_arm["read_on"]) / min(by_arm["read_off"])
    depth_red = meta["zipf_hot_depth_reduction"]

    kind = "fresh" if fresh else "committed"
    if meta["det_splay_steps"] <= 0:
        fail("splay_skew: the deterministic arm performed zero splay steps "
             "— the heuristic never engaged")

    # Headline gate: pay under skew. Depth reduction is the deterministic
    # proxy (converged tree shape, machine-speed independent); wall-clock
    # throughput also satisfies the gate where the runner delivers it.
    depth_bound = 1.3 if fresh else 1.5
    tput_bound = 1.15 if fresh else 1.3
    if depth_red < depth_bound and zipf_ratio < tput_bound:
        fail(f"splaying pays neither in depth nor throughput under "
             f"Zipf skew: hot-set depth reduction {depth_red:.2f}x "
             f"(bound {depth_bound:.2f}) and throughput {zipf_ratio:.2f}x "
             f"(bound {tput_bound:.2f}) for a {kind} report")

    # Hysteresis gate: a uniform workload must not pay for the feature.
    parity_bound = 0.85 if fresh else 0.95
    if parity < parity_bound:
        fail(f"splaying costs a uniform workload {parity:.3f}x parity "
             f"(bound {parity_bound:.2f} for a {kind} report)")

    # Read-path gate: the access-tick sampling itself (probe runs without
    # the maintenance consumer; publishes dedup-absorb in the queue).
    overhead_bound = 1.06 if fresh else 1.02
    if overhead > overhead_bound:
        fail(f"access-tick sampling costs {overhead:.3f}x on the pure-read "
             f"probe (bound {overhead_bound:.2f} for a {kind} report)")

    print(f"check_bench_schema: splay gates OK ({kind}) — depth reduction "
          f"{depth_red:.2f}x, zipf tput {zipf_ratio:.2f}x, uniform parity "
          f"{parity:.3f}, read overhead {overhead:.3f}x, "
          f"{meta['det_splay_steps']} splay steps")


SERVING_AMORT_KEYS = [
    "kind", "arm", "rep", "mix", "ops", "seconds", "per_s", "batch_txs",
    "batched_ops", "per_op_txs", "avg_batch_fill", "keys_conserved",
]

SERVING_OPENLOOP_KEYS = [
    "kind", "mix", "dist", "offered_per_s", "achieved_per_s", "duration_ms",
    "submitted", "completed", "rejected", "p50_ns", "p99_ns", "p999_ns",
    "max_queue_depth", "batch_txs", "per_op_txs", "avg_batch_fill",
    "batch_shrinks", "slo_ok",
]

SERVING_SLO_KEYS = ["kind", "mix", "dist", "slo_ms", "max_sustained_per_s"]

SERVING_META_KEYS = [
    "ops", "reps", "shards", "key_range", "initial_size", "batch_size",
    "slo_ms", "zipf_s", "openloop_ms", "hw_concurrency", "batched_per_s",
    "per_op_per_s", "batched_ratio", "keys_conserved",
]

SERVING_MIXES = ("ycsb_a", "ycsb_b", "ycsb_c")
SERVING_DISTS = ("uniform", "zipf")


def check_serving(top, fresh) -> None:
    check_repo_report(top, "serving_ycsb", ["kind"])
    require(top["meta"], SERVING_META_KEYS, "serving_ycsb.meta")
    meta = top["meta"]

    by_kind = {}
    for i, rec in enumerate(top["results"]):
        keys = {"amortization": SERVING_AMORT_KEYS,
                "openloop": SERVING_OPENLOOP_KEYS,
                "slo": SERVING_SLO_KEYS}.get(rec["kind"])
        if keys is None:
            fail(f"serving_ycsb.results[{i}] has unknown kind "
                 f"'{rec['kind']}'")
        require(rec, keys, f"serving_ycsb.results[{i}] ({rec['kind']})")
        by_kind.setdefault(rec["kind"], []).append(rec)

    # --- Amortization gate (deterministic proxy: equal offered load, the
    # arms differ only in batch size, so the ratio isolates per-transaction
    # overhead and gates on any core count). Per-arm best over interleaved
    # reps, recomputed from the records rather than trusted from meta.
    amort = by_kind.get("amortization", [])
    by_arm = {}
    for rec in amort:
        if not rec["keys_conserved"]:
            fail(f"serving_ycsb amortization {rec['arm']} rep {rec['rep']} "
                 "did not conserve keys (initial + inserts - erases != "
                 "final size)")
        by_arm.setdefault(rec["arm"], []).append(rec)
    for arm in ("batched", "per_op"):
        if not by_arm.get(arm):
            fail(f"serving_ycsb has no amortization '{arm}' records")
    best_batched = max(r["per_s"] for r in by_arm["batched"])
    best_per_op = max(r["per_s"] for r in by_arm["per_op"])
    if best_per_op <= 0:
        fail("serving_ycsb per_op best rate is zero")
    ratio = best_batched / best_per_op

    if meta["batch_size"] < 16:
        fail(f"serving_ycsb batch_size {meta['batch_size']} < 16 — the "
             "amortization gate requires a batch of at least 16")
    best_fill = max(r["avg_batch_fill"] for r in by_arm["batched"])
    if not any(r["batch_txs"] > 0 for r in by_arm["batched"]):
        fail("serving_ycsb batched arm committed zero batch transactions "
             "— coalescing never engaged")
    if best_fill < 2.0:
        fail(f"serving_ycsb batched arm mean batch fill {best_fill:.1f} "
             "< 2 — requests were not actually coalesced")

    kind = "fresh" if fresh else "committed"
    ratio_bound = 1.15 if fresh else 1.3
    if ratio < ratio_bound:
        fail(f"transaction coalescing completes only {ratio:.2f}x the "
             f"per-op rate at equal offered load (bound {ratio_bound:.2f} "
             f"for a {kind} report)")

    # --- Open-loop coverage: every mix x distribution cell measured, with
    # sane latency fields, and one SLO-frontier record each.
    ol_cells = {(r["mix"], r["dist"]) for r in by_kind.get("openloop", [])}
    slo_cells = {(r["mix"], r["dist"]) for r in by_kind.get("slo", [])}
    for mix in SERVING_MIXES:
        for dist in SERVING_DISTS:
            if (mix, dist) not in ol_cells:
                fail(f"serving_ycsb open-loop sweep is missing the "
                     f"({mix}, {dist}) cell")
            if (mix, dist) not in slo_cells:
                fail(f"serving_ycsb has no SLO record for ({mix}, {dist})")
    for rec in by_kind.get("openloop", []):
        if rec["completed"] > 0 and not (
                0 < rec["p50_ns"] <= rec["p99_ns"] <= rec["p999_ns"]):
            fail(f"serving_ycsb openloop ({rec['mix']}, {rec['dist']}, "
                 f"{rec['offered_per_s']}/s) latency quantiles are not "
                 "monotone positive")

    print(f"check_bench_schema: serving gates OK ({kind}) — amortization "
          f"{ratio:.2f}x (batched {best_batched:.0f}/s vs per-op "
          f"{best_per_op:.0f}/s, best fill {best_fill:.1f}), "
          f"{len(by_kind.get('openloop', []))} open-loop cells, keys "
          "conserved")


CKPT_RECORD_KEYS = [
    "rep", "baseline_ops_per_s", "stream_ops_per_s", "dip_ratio", "streams",
    "writer_keys_per_s", "full_rounds", "forced_cut", "full_bytes",
    "incr_bytes", "incr_fresh_segments", "incr_reused_segments",
    "restore_ms", "restore_keys", "roundtrip_exact", "checksums_ok",
]

CKPT_META_KEYS = [
    "threads", "keys", "window_ms", "reps", "shards", "routing_slots",
    "dirty_slot_percent", "hw_concurrency",
]


def check_ckpt(top, fresh) -> None:
    check_repo_report(top, "ckpt", CKPT_RECORD_KEYS)
    require(top["meta"], CKPT_META_KEYS, "ckpt.meta")
    meta = top["meta"]

    # Correctness gates hold per rep and are never noise-relaxed: a single
    # failed checksum or inexact round-trip is a durability bug, not noise.
    for rec in top["results"]:
        rep = rec["rep"]
        if not rec["checksums_ok"]:
            fail(f"ckpt rep {rep}: a segment or manifest checksum failed "
                 "verification during restore")
        if not rec["roundtrip_exact"]:
            fail(f"ckpt rep {rep}: the restored map did not compare equal "
                 "to the checkpointed map (key/value round-trip inexact)")
        if rec["restore_keys"] != meta["keys"]:
            fail(f"ckpt rep {rep}: restore loaded {rec['restore_keys']} "
                 f"keys, checkpointed map held {meta['keys']}")
        if rec["incr_bytes"] >= rec["full_bytes"]:
            fail(f"ckpt rep {rep}: the {meta['dirty_slot_percent']}%-dirty "
                 f"incremental ({rec['incr_bytes']} B) is not smaller than "
                 f"the full image ({rec['full_bytes']} B) — dirty-slot "
                 "tracking is not pruning clean segments")
        if rec["incr_reused_segments"] <= 0:
            fail(f"ckpt rep {rep}: the incremental reused zero clean "
                 "segments from its parent file")
        if rec["streams"] <= 0:
            fail(f"ckpt rep {rep}: no full checkpoint completed inside the "
                 "measurement window")

    # Perf gate: writers must keep most of their throughput while a full
    # checkpoint streams. Best rep over the interleaved runs (additive
    # interference — the obs_overhead rationale); fresh reports on shared
    # runners get a relaxed floor, the committed baseline does not.
    best_dip = max(r["dip_ratio"] for r in top["results"])
    kind = "fresh" if fresh else "committed"
    dip_bound = 0.35 if fresh else 0.5
    if best_dip < dip_bound:
        fail(f"mutator throughput dipped to {best_dip:.2f}x of baseline "
             f"while streaming a checkpoint (floor {dip_bound:.2f} for a "
             f"{kind} report)")
    print(f"check_bench_schema: ckpt gates OK ({kind}) — best dip "
          f"{best_dip:.2f}, incremental "
          f"{top['results'][0]['incr_bytes']}/{top['results'][0]['full_bytes']}"
          f" B, {len(top['results'])} reps round-trip exact, checksums "
          "verified")


MAINT_RECORD_KEYS = [
    "mode", "rep", "ops_per_us", "final_height", "committed_updates",
    "maint_nodes_visited", "visits_per_update", "maint_passes",
    "full_sweeps", "rotations", "removals", "queue_captured",
    "queue_enqueued", "queue_deduped", "queue_drained",
    "mean_drain_latency_us", "abort_ratio",
]


def mode_means(report):
    """Per-mode means of the guarded metrics over the interleaved reps."""
    out = {}
    for mode in ("sweep", "targeted"):
        recs = [r for r in report["results"] if r["mode"] == mode]
        if not recs:
            fail(f"maintpath A/B has no '{mode}' records")
        out[mode] = {
            "visits_per_update":
                sum(r["visits_per_update"] for r in recs) / len(recs),
            "final_height": sum(r["final_height"] for r in recs) / len(recs),
            "ops_per_us": sum(r["ops_per_us"] for r in recs) / len(recs),
        }
    return out


def check_maintpath(top, baseline_path) -> None:
    require(top, ["ablation_maintenance_ab"], "top level")
    ab = top["ablation_maintenance_ab"]
    check_repo_report(ab, "ablation_maintenance_ab", MAINT_RECORD_KEYS)

    means = mode_means(ab)
    sweep, targeted = means["sweep"], means["targeted"]
    print(f"check_bench_schema: maintpath means — "
          f"sweep {sweep['visits_per_update']:.1f} visits/update "
          f"h={sweep['final_height']:.1f} {sweep['ops_per_us']:.2f} ops/us | "
          f"targeted {targeted['visits_per_update']:.1f} visits/update "
          f"h={targeted['final_height']:.1f} "
          f"{targeted['ops_per_us']:.2f} ops/us")

    # Acceptance gate: targeted maintenance must cut the work per committed
    # update by at least 1.5x ...
    if targeted["visits_per_update"] > 0 and \
            sweep["visits_per_update"] / targeted["visits_per_update"] < 1.5:
        fail("targeted maintenance saves < 1.5x maintenance work per "
             f"committed update (sweep {sweep['visits_per_update']:.1f} vs "
             f"targeted {targeted['visits_per_update']:.1f})")
    # ... without letting the tree degrade (final height within 1.5x of the
    # full-sweep baseline; +1 absorbs integer-height jitter on small trees).
    if targeted["final_height"] > 1.5 * sweep["final_height"] + 1:
        fail("targeted maintenance final height "
             f"{targeted['final_height']:.1f} exceeds 1.5x the sweep "
             f"baseline {sweep['final_height']:.1f}")

    if baseline_path:
        try:
            with open(baseline_path) as f:
                base = json.load(f)
        except FileNotFoundError:
            fail(f"baseline '{baseline_path}' not found — the committed "
                 "BENCH_maintpath.json must be checked in (git add -f; it "
                 "matches the BENCH_*.json gitignore pattern)")
        require(base, ["ablation_maintenance_ab"], "baseline top level")
        base_means = mode_means(base["ablation_maintenance_ab"])
        base_vpu = base_means["targeted"]["visits_per_update"]
        new_vpu = targeted["visits_per_update"]
        if base_vpu > 0 and new_vpu > 1.2 * base_vpu:
            fail("maintenance work per committed update regressed > 20% vs "
                 f"the committed baseline ({new_vpu:.1f} vs {base_vpu:.1f} "
                 "visits/update)")
        print(f"check_bench_schema: trajectory OK "
              f"({new_vpu:.1f} vs baseline {base_vpu:.1f} visits/update)")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("report", nargs="?", default="BENCH_readpath.json")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_maintpath.json to guard the "
                             "work-per-update trajectory against")
    parser.add_argument("--fresh", action="store_true",
                        help="the report was generated on this runner just "
                             "now: relax the obs overhead ratio gates for "
                             "shared-runner noise")
    args = parser.parse_args()

    with open(args.report) as f:
        top = json.load(f)

    require(top, ["bench"], "top level")
    if top["bench"] == "readpath":
        check_readpath(top)
    elif top["bench"] == "maintpath":
        check_maintpath(top, args.baseline)
    elif top["bench"] == "shard_scaling":
        check_shard_scaling(top)
    elif top["bench"] == "reshard_churn":
        check_reshard(top)
    elif top["bench"] == "obs_overhead":
        check_obs_overhead(top, args.fresh)
    elif top["bench"] == "splay_skew":
        check_splay(top, args.fresh)
    elif top["bench"] == "serving_ycsb":
        check_serving(top, args.fresh)
    elif top["bench"] == "ckpt":
        check_ckpt(top, args.fresh)
    else:
        fail(f"unknown top-level bench tag '{top['bench']}'")

    print(f"check_bench_schema: {args.report} OK")


if __name__ == "__main__":
    main()
