// Serving-tier benchmark: batch amortization plus an open-loop SLO sweep.
//
// Two phases, one report (--json=BENCH_serving.json, bench tag
// "serving_ycsb"; records are discriminated by "kind"):
//
//   1. Amortization proxy (gated): burst-submit a YCSB-B-like mix (95%
//      reads) through the tier twice at equal offered load — once with
//      transaction coalescing (batched arm) and once degenerated to one
//      transaction per request (per_op arm, batch size 1) — and compare
//      completion rates. The arms differ ONLY in batching, so the ratio
//      isolates the per-transaction begin/validate/commit overhead the
//      batch amortizes; it is the deterministic-proxy gate (the reshard
//      bench precedent) and stays meaningful on a 1-core container where
//      raw parallel throughput is noise. Per-rep key conservation
//      (initial + inserts - erases == final size) is asserted and recorded.
//
//   2. Open-loop SLO sweep: a Poisson arrival stream (exponential
//      inter-arrival times, submissions never wait for completions) at a
//      sweep of offered rates, over YCSB A/B/C-like mixes and uniform/Zipf
//      key distributions. Each cell reports achieved rate, p50/p99/p999
//      enqueue-to-completion latency from the tier's obs::LogHistograms,
//      and queue depth; per (mix, dist) the report derives
//      max_sustained_per_s — the highest offered rate whose p99 met the
//      SLO with no admission rejects and >= 95% of offered load achieved.
//
// Container-scale defaults; paper-scale with e.g.
//   serving_ycsb --ops=200000 --reps=5 --rates=50000,100000,200000 \
//                --openloop-ms=2000 --json=BENCH_serving.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "bench_core/rng.hpp"
#include "bench_core/workload.hpp"
#include "obs/clock.hpp"
#include "serve/serving.hpp"
#include "shard/sharded_map.hpp"

namespace {

using sftree::Key;
using sftree::bench::Cli;
using sftree::bench::JsonReport;
using sftree::bench::Rng;
using sftree::bench::Table;
using sftree::bench::ZipfKeys;
using sftree::serve::OpKind;
using sftree::serve::Request;
using sftree::serve::ServingTier;
using sftree::serve::ServingTierConfig;
using sftree::serve::ServingTierStats;
using sftree::shard::ShardedMap;
using sftree::shard::ShardedMapConfig;

struct Mix {
  const char* name;
  int readPct;  // get/contains share; the rest splits insert/erase evenly
};

// YCSB-like point-op mixes (A: update-heavy, B: read-mostly, C: read-only).
constexpr Mix kMixes[] = {{"ycsb_a", 50}, {"ycsb_b", 95}, {"ycsb_c", 100}};

Request nextRequest(Rng& rng, const ZipfKeys* zipf, std::int64_t keyRange,
                    int readPct) {
  Request r;
  r.key = zipf != nullptr
              ? zipf->pick(rng)
              : static_cast<Key>(
                    rng.nextBounded(static_cast<std::uint64_t>(keyRange)));
  if (static_cast<int>(rng.nextBounded(100)) < readPct) {
    r.op = rng.nextBool() ? OpKind::kGet : OpKind::kContains;
  } else {
    r.op = rng.nextBool() ? OpKind::kInsert : OpKind::kErase;
    r.value = r.key;
  }
  return r;
}

std::unique_ptr<ShardedMap> makeMap(int shards, std::int64_t keyRange,
                                    std::int64_t initialSize,
                                    std::uint64_t seed) {
  ShardedMapConfig mc;
  mc.shards = shards;
  auto map = std::make_unique<ShardedMap>(mc);
  sftree::bench::RunConfig rc;
  rc.workload.keyRange = keyRange;
  rc.initialSize = initialSize;
  rc.seed = seed;
  sftree::bench::populate(*map, rc);
  return map;
}

struct AmortResult {
  double seconds = 0;
  double perSecond = 0;
  bool keysConserved = false;
  ServingTierStats stats;
};

// One amortization rep: burst-submit `ops` requests of the mix through a
// fresh map + tier, wait for every future, and audit key conservation
// against the completed results.
AmortResult runAmortArm(std::size_t batchSize, std::int64_t ops, int shards,
                        std::int64_t keyRange, std::int64_t initialSize,
                        int readPct, std::uint64_t seed) {
  auto map = makeMap(shards, keyRange, initialSize, seed);
  ServingTierConfig tc;
  tc.batchSize = batchSize;
  tc.adaptiveBatch = false;  // the arm IS the batch size; do not adapt away
  tc.queueCapacity = 0;      // unbounded: equal offered load, no rejects
  ServingTier tier(*map, tc);

  Rng rng(seed * 7919 + 13);
  std::vector<sftree::serve::Future> futs;
  futs.reserve(static_cast<std::size_t>(ops));
  const std::uint64_t t0 = sftree::obs::nowNs();
  for (std::int64_t i = 0; i < ops; ++i) {
    futs.push_back(tier.submit(nextRequest(rng, nullptr, keyRange, readPct)));
  }
  std::int64_t inserted = 0;
  std::int64_t erased = 0;
  for (auto& f : futs) {
    const sftree::serve::Result r = f.get();
    if (r.rejected) continue;
    if (r.op == OpKind::kInsert && r.ok) ++inserted;
    if (r.op == OpKind::kErase && r.ok) ++erased;
  }
  const std::uint64_t t1 = sftree::obs::nowNs();

  AmortResult out;
  out.stats = tier.stats();
  tier.stop();
  out.seconds = static_cast<double>(t1 - t0) / 1e9;
  out.perSecond = static_cast<double>(ops) / out.seconds;
  map->quiesce();
  const std::int64_t finalSize =
      static_cast<std::int64_t>(map->keysInOrder().size());
  out.keysConserved = finalSize == initialSize + inserted - erased;
  return out;
}

struct OpenLoopResult {
  std::uint64_t offered = 0;  // submissions attempted (arrival count)
  double achievedPerS = 0;
  double p50Ns = 0;
  double p99Ns = 0;
  double p999Ns = 0;
  std::uint64_t rejected = 0;
  bool sloOk = false;
  ServingTierStats stats;
};

// One open-loop cell: Poisson arrivals at `ratePerS` for `durationMs`,
// callback completions, then drain and read the latency histograms.
OpenLoopResult runOpenLoopCell(int shards, std::int64_t keyRange,
                               std::int64_t initialSize, int readPct,
                               const ZipfKeys* zipf, double ratePerS,
                               int durationMs, double sloMs,
                               std::uint64_t seed) {
  auto map = makeMap(shards, keyRange, initialSize, seed);
  ServingTier tier(*map);  // default config: adaptive batching on

  Rng rng(seed * 104729 + 71);
  std::atomic<std::uint64_t> done{0};
  const auto cb = [&done](const sftree::serve::Result&) {
    done.fetch_add(1, std::memory_order_relaxed);
  };

  const double meanGapNs = 1e9 / ratePerS;
  std::uint64_t submitted = 0;
  const std::uint64_t t0 = sftree::obs::nowNs();
  const std::uint64_t endNs =
      t0 + static_cast<std::uint64_t>(durationMs) * 1'000'000ULL;
  std::uint64_t nextNs = t0;
  while (nextNs < endNs) {
    // Exponential inter-arrival; open loop: when the submitter falls behind
    // the schedule it submits immediately (arrivals queue, they never
    // throttle to completions).
    double u = rng.nextDouble();
    if (u < 1e-12) u = 1e-12;
    nextNs += static_cast<std::uint64_t>(-std::log(u) * meanGapNs);
    while (sftree::obs::nowNs() < nextNs) {
      // Busy-wait: arrival gaps are microseconds, far below sleep latency.
    }
    tier.submit(nextRequest(rng, zipf, keyRange, readPct), cb);
    ++submitted;
  }
  // Drain: every accepted request completes; rejected ones completed their
  // callback inline at submit.
  while (done.load(std::memory_order_acquire) < submitted) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::uint64_t t1 = sftree::obs::nowNs();

  OpenLoopResult out;
  out.stats = tier.stats();
  tier.stop();
  out.offered = submitted;
  out.achievedPerS = static_cast<double>(out.stats.completed) /
                     (static_cast<double>(t1 - t0) / 1e9);
  sftree::obs::LogHistogram lat = out.stats.latencyReadNs;
  lat += out.stats.latencyUpdateNs;
  out.p50Ns = lat.quantile(0.50);
  out.p99Ns = lat.quantile(0.99);
  out.p999Ns = lat.quantile(0.999);
  out.rejected = out.stats.rejected;
  const double offeredPerS =
      static_cast<double>(submitted) /
      (static_cast<double>(durationMs) / 1e3);
  out.sloOk = out.p99Ns <= sloMs * 1e6 && out.rejected == 0 &&
              out.achievedPerS >= 0.95 * offeredPerS;
  return out;
}

double avgFill(const ServingTierStats& s) {
  return s.batchTxs == 0 ? 0.0
                         : static_cast<double>(s.batchedOps) /
                               static_cast<double>(s.batchTxs);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t ops = cli.integer("ops", 40000);
  const int reps = static_cast<int>(cli.integer("reps", 3));
  const int shards = static_cast<int>(cli.integer("shards", 1));
  const std::int64_t keyRange = cli.integer("key-range", 1 << 12);
  const std::int64_t initialSize = cli.integer("initial-size", 1 << 11);
  const std::size_t batchSize =
      static_cast<std::size_t>(cli.integer("batch", 32));
  const std::uint64_t seed = static_cast<std::uint64_t>(
      cli.integer("seed", 42));
  const std::vector<int> rates = cli.intList("rates", {20000, 60000});
  const int openLoopMs = static_cast<int>(cli.integer("openloop-ms", 150));
  const double sloMs = cli.real("slo-ms", 5.0);
  const double zipfS = cli.real("zipf-s", 0.99);
  const bool skipOpenLoop = cli.flag("skip-openloop", false);

  if (shards < 1) {
    std::cerr << "--shards must be >= 1 (got " << shards << ")\n";
    return 1;
  }
  if (ops < 1 || keyRange < 1 || batchSize < 1) {
    std::cerr << "--ops, --key-range and --batch must be >= 1\n";
    return 1;
  }
  for (const int r : rates) {
    if (r < 1) {
      std::cerr << "--rates values must be >= 1 (got " << r << ")\n";
      return 1;
    }
  }

  JsonReport json("serving_ycsb");
  json.meta()
      .set("ops", ops)
      .set("reps", static_cast<std::int64_t>(reps))
      .set("shards", static_cast<std::int64_t>(shards))
      .set("key_range", keyRange)
      .set("initial_size", initialSize)
      .set("batch_size", static_cast<std::uint64_t>(batchSize))
      .set("slo_ms", sloMs)
      .set("zipf_s", zipfS)
      .set("openloop_ms", static_cast<std::int64_t>(openLoopMs))
      .set("hw_concurrency",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  // ---- Phase 1: amortization proxy (YCSB-B mix, uniform keys) ----------
  const int gateReadPct = 95;
  double bestBatched = 0;
  double bestPerOp = 0;
  bool keysConservedAll = true;
  Table amortTable({"arm", "rep", "ops", "seconds", "per_s", "batch_txs",
                    "per_op_txs", "avg_fill", "keys_ok"});
  for (int rep = 0; rep < reps; ++rep) {
    for (const bool batched : {true, false}) {
      const std::size_t arm = batched ? batchSize : 1;
      const AmortResult r =
          runAmortArm(arm, ops, shards, keyRange, initialSize, gateReadPct,
                      seed + static_cast<std::uint64_t>(rep));
      keysConservedAll = keysConservedAll && r.keysConserved;
      if (batched) {
        bestBatched = std::max(bestBatched, r.perSecond);
      } else {
        bestPerOp = std::max(bestPerOp, r.perSecond);
      }
      const char* name = batched ? "batched" : "per_op";
      amortTable.addRow({name, Table::num(rep),
                         Table::num(static_cast<std::uint64_t>(ops)),
                         Table::num(r.seconds, 3), Table::num(r.perSecond, 0),
                         Table::num(r.stats.batchTxs),
                         Table::num(r.stats.perOpTxs),
                         Table::num(avgFill(r.stats), 1),
                         r.keysConserved ? "yes" : "NO"});
      json.addRecord()
          .set("kind", "amortization")
          .set("arm", name)
          .set("rep", static_cast<std::int64_t>(rep))
          .set("mix", "ycsb_b")
          .set("ops", ops)
          .set("seconds", r.seconds)
          .set("per_s", r.perSecond)
          .set("batch_txs", r.stats.batchTxs)
          .set("batched_ops", r.stats.batchedOps)
          .set("per_op_txs", r.stats.perOpTxs)
          .set("avg_batch_fill", avgFill(r.stats))
          .set("keys_conserved", r.keysConserved);
    }
  }
  const double ratio = bestPerOp > 0 ? bestBatched / bestPerOp : 0.0;
  json.meta()
      .set("batched_per_s", bestBatched)
      .set("per_op_per_s", bestPerOp)
      .set("batched_ratio", ratio)
      .set("keys_conserved", keysConservedAll);

  std::cout << "== amortization (ycsb_b, uniform, equal offered load) ==\n";
  amortTable.print();
  std::cout << "batched/per_op ratio: " << Table::num(ratio, 2) << "\n\n";

  // ---- Phase 2: open-loop Poisson sweep --------------------------------
  if (!skipOpenLoop) {
    Table olTable({"mix", "dist", "offered_per_s", "achieved_per_s", "p50_us",
                   "p99_us", "p999_us", "max_q", "rej", "slo"});
    const ZipfKeys zipf(keyRange, zipfS);
    for (const Mix& mix : kMixes) {
      for (const bool zipfDist : {false, true}) {
        const char* dist = zipfDist ? "zipf" : "uniform";
        double maxSustained = 0;
        for (const int rate : rates) {
          const OpenLoopResult r = runOpenLoopCell(
              shards, keyRange, initialSize, mix.readPct,
              zipfDist ? &zipf : nullptr, static_cast<double>(rate),
              openLoopMs, sloMs, seed);
          if (r.sloOk) {
            maxSustained = std::max(maxSustained, static_cast<double>(rate));
          }
          olTable.addRow(
              {mix.name, dist, Table::num(rate), Table::num(r.achievedPerS, 0),
               Table::num(r.p50Ns / 1e3, 1), Table::num(r.p99Ns / 1e3, 1),
               Table::num(r.p999Ns / 1e3, 1), Table::num(r.stats.maxQueueDepth),
               Table::num(r.rejected), r.sloOk ? "ok" : "MISS"});
          json.addRecord()
              .set("kind", "openloop")
              .set("mix", mix.name)
              .set("dist", dist)
              .set("offered_per_s", static_cast<std::int64_t>(rate))
              .set("achieved_per_s", r.achievedPerS)
              .set("duration_ms", static_cast<std::int64_t>(openLoopMs))
              .set("submitted", r.offered)
              .set("completed", r.stats.completed)
              .set("rejected", r.rejected)
              .set("p50_ns", r.p50Ns)
              .set("p99_ns", r.p99Ns)
              .set("p999_ns", r.p999Ns)
              .set("max_queue_depth", r.stats.maxQueueDepth)
              .set("batch_txs", r.stats.batchTxs)
              .set("per_op_txs", r.stats.perOpTxs)
              .set("avg_batch_fill", avgFill(r.stats))
              .set("batch_shrinks", r.stats.batchShrinks)
              .set("slo_ok", r.sloOk);
        }
        json.addRecord()
            .set("kind", "slo")
            .set("mix", mix.name)
            .set("dist", dist)
            .set("slo_ms", sloMs)
            .set("max_sustained_per_s", maxSustained);
      }
    }
    std::cout << "== open-loop Poisson sweep (p99 SLO " << sloMs << " ms) ==\n";
    olTable.print();
  }

  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
