// Shard scaling — throughput of the ShardedMap on a mixed workload
// (reads + insert/remove + composed cross-shard moves) as the number of
// shards grows with a *fixed* shared maintenance pool of K < N workers,
// comparing the two STM clock layouts back-to-back:
//
//   * shared domain   — every shard commits against one version clock (the
//     pre-domain behaviour: shards share no tree nodes but still bump the
//     same clock cache line on every writing commit);
//   * per-shard domain — each shard owns a full stm::Domain, so single-key
//     transactions share *no* STM metadata and the map scales like N
//     independent trees; cross-shard moves pay the ordered multi-domain
//     commit instead.
//
// The shape to look for: per-shard domains meet or beat the shared clock as
// the shard count grows, with the gap widening with update rate and thread
// count; per-domain commit/abort counters show the traffic spreading evenly
// across the clocks.
//
//   shard_scaling --shards=1,2,4,8 --threads=4 --updates=20 --moves=2 \
//                 --json=BENCH_shard_scaling.json
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"
#include "stm/runtime.hpp"

namespace bench = sftree::bench;
namespace shard = sftree::shard;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

// K < N whenever N allows it; a single shard necessarily gets one worker.
int workersFor(int shards) { return std::clamp(shards / 2, 1, 4); }

const char* domainModeName(shard::DomainMode mode) {
  return mode == shard::DomainMode::PerShard ? "per-shard" : "shared";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  auto shardCounts = cli.intList("shards", {1, 2, 4, 8});
  for (const int s : shardCounts) {
    if (s < 1) {
      std::fprintf(stderr, "--shards values must be >= 1 (got %d)\n", s);
      return 1;
    }
  }
  const int threads = static_cast<int>(cli.integer("threads", 4));
  // --modes=shared,per-shard (default both): which clock layouts to run.
  std::vector<shard::DomainMode> modes;
  {
    std::stringstream ss(cli.str("modes", "shared,per-shard"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok == "shared") modes.push_back(shard::DomainMode::Shared);
      else if (tok == "per-shard") modes.push_back(shard::DomainMode::PerShard);
      else { std::fprintf(stderr, "unknown --modes value: %s\n", tok.c_str()); return 1; }
    }
  }
  const double updatePct = cli.real("updates", 20.0);
  const double movePct = cli.real("moves", 2.0);
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 200));
  const auto sizeLog = cli.integer("size-log", 13);

  std::printf("Shard scaling: Opt-SFtree shards, shared maintenance pool "
              "(K < N workers), %d app threads, %.0f%% updates of which "
              "%.0f points are cross-shard moves; shared vs per-shard STM "
              "clock domains\n",
              threads, updatePct, movePct);

  bench::JsonReport json("shard_scaling");
  json.meta()
      .set("threads", threads)
      .set("update_percent", updatePct)
      .set("move_percent", movePct)
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog);

  bench::Table table({"shards", "domains", "workers", "ops/us", "commits/us",
                      "eff-upd%", "abort%", "maint passes", "rotations",
                      "removals"});

  for (const int shards : shardCounts) {
    for (const auto mode : modes) {
      const int workers = workersFor(shards);

      shard::MaintenanceSchedulerConfig schedCfg;
      schedCfg.workers = workers;
      shard::MaintenanceScheduler scheduler(schedCfg);

      shard::ShardedMapConfig mapCfg;
      mapCfg.shards = shards;
      mapCfg.scheduler = &scheduler;
      mapCfg.tree.ops = trees::OpsVariant::Optimized;
      mapCfg.domainMode = mode;
      // Keep the two layouts on identical STM configurations: stmConfig
      // only reaches per-shard domains, so the shared layout's domain (the
      // process default here) is configured explicitly.
      stm::Config stmCfg;
      stmCfg.lockMode = stm::LockMode::Lazy;
      mapCfg.stmConfig = stmCfg;
      if (mode == shard::DomainMode::Shared) {
        stm::defaultDomain().setConfig(stmCfg);
      }
      shard::ShardedMap map(mapCfg);

      bench::RunConfig cfg;
      cfg.initialSize = std::int64_t{1} << sizeLog;
      cfg.workload.keyRange = cfg.initialSize * 2;
      cfg.workload.updatePercent = updatePct - movePct;  // moves are updates
      cfg.workload.movePercent = movePct;
      cfg.threads = threads;
      cfg.durationMs = durationMs;
      cfg.statsDomains = map.domains();

      bench::populate(map, cfg);
      const auto result = bench::runThroughput(map, cfg);
      const auto schedStats = scheduler.stats();
      const auto mapStats = map.aggregatedStats();

      const double commitsPerUs =
          result.seconds == 0.0
              ? 0.0
              : static_cast<double>(result.stm.commits) /
                    (result.seconds * 1e6);

      table.addRow({bench::Table::num(shards), domainModeName(mode),
                    bench::Table::num(workers),
                    bench::Table::num(result.opsPerMicrosecond()),
                    bench::Table::num(commitsPerUs),
                    bench::Table::num(result.effectiveUpdateRatio()),
                    bench::Table::num(100.0 * result.stm.abortRatio()),
                    bench::Table::num(schedStats.passes),
                    bench::Table::num(mapStats.maintenance.rotations),
                    bench::Table::num(mapStats.maintenance.removals)});

      // Per-clock-domain commit/abort breakdown (one domain in shared
      // mode, one per shard otherwise).
      std::string domainCommits;
      std::string domainAborts;
      for (std::size_t i = 0; i < mapStats.domainStats.size(); ++i) {
        if (i > 0) {
          domainCommits += ",";
          domainAborts += ",";
        }
        domainCommits += std::to_string(mapStats.domainStats[i].commits);
        domainAborts += std::to_string(mapStats.domainStats[i].aborts);
      }
      if (mode == shard::DomainMode::PerShard) {
        std::printf("  [%d shards, per-shard domains] commits per domain: %s"
                    " | aborts per domain: %s\n",
                    shards, domainCommits.c_str(), domainAborts.c_str());
      }

      json.addRecord()
          .set("shards", shards)
          .set("domain_mode", domainModeName(mode))
          .set("workers", workers)
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("total_ops", result.totalOps)
          .set("commits", result.stm.commits)
          .set("commits_per_us", commitsPerUs)
          .set("effective_update_ratio", result.effectiveUpdateRatio())
          .set("abort_ratio", result.stm.abortRatio())
          .set("per_domain_commits", domainCommits)
          .set("per_domain_aborts", domainAborts)
          .set("maintenance_passes", schedStats.passes)
          .set("active_passes", schedStats.activePasses)
          .set("backoff_skips", schedStats.backoffSkips)
          .set("signal_wakeups", schedStats.signalWakeups)
          .set("rotations", mapStats.maintenance.rotations)
          .set("removals", mapStats.maintenance.removals)
          .set("size_estimate", mapStats.sizeEstimate);
    }
  }
  table.print();
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
