// Shard scaling — throughput of the ShardedMap on a mixed workload
// (reads + insert/remove + composed cross-shard moves) as the number of
// shards grows with a *fixed* shared maintenance pool of K < N workers.
//
// This is the subsystem the paper's one-rotator-per-tree design cannot
// express: eight trees would need eight dedicated cores for restructuring.
// Here the scheduler multiplexes all shards onto K workers and spends
// passes where the update traffic is. The shape to look for: throughput
// grows with the shard count (shards conflict only on the global STM
// clock) until application threads, not maintenance, are the bottleneck.
//
//   shard_scaling --shards=1,2,4,8 --threads=4 --updates=20 --moves=2 \
//                 --json=BENCH_shard_scaling.json
#include <algorithm>
#include <cstdio>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"
#include "stm/runtime.hpp"

namespace bench = sftree::bench;
namespace shard = sftree::shard;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

// K < N whenever N allows it; a single shard necessarily gets one worker.
int workersFor(int shards) { return std::clamp(shards / 2, 1, 4); }

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  auto shardCounts = cli.intList("shards", {1, 2, 4, 8});
  for (const int s : shardCounts) {
    if (s < 1) {
      std::fprintf(stderr, "--shards values must be >= 1 (got %d)\n", s);
      return 1;
    }
  }
  const int threads = static_cast<int>(cli.integer("threads", 4));
  const double updatePct = cli.real("updates", 20.0);
  const double movePct = cli.real("moves", 2.0);
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 200));
  const auto sizeLog = cli.integer("size-log", 13);

  std::printf("Shard scaling: Opt-SFtree shards, shared maintenance pool "
              "(K < N workers), %d app threads, %.0f%% updates of which "
              "%.0f points are cross-shard moves\n",
              threads, updatePct, movePct);

  bench::JsonReport json("shard_scaling");
  json.meta()
      .set("threads", threads)
      .set("update_percent", updatePct)
      .set("move_percent", movePct)
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog);

  bench::Table table({"shards", "workers", "ops/us", "eff-upd%", "abort%",
                      "maint passes", "active", "rotations", "removals"});

  stm::Runtime::instance().setLockMode(stm::LockMode::Lazy);
  for (const int shards : shardCounts) {
    const int workers = workersFor(shards);

    shard::MaintenanceSchedulerConfig schedCfg;
    schedCfg.workers = workers;
    shard::MaintenanceScheduler scheduler(schedCfg);

    shard::ShardedMapConfig mapCfg;
    mapCfg.shards = shards;
    mapCfg.scheduler = &scheduler;
    mapCfg.tree.ops = trees::OpsVariant::Optimized;
    shard::ShardedMap map(mapCfg);

    bench::RunConfig cfg;
    cfg.initialSize = std::int64_t{1} << sizeLog;
    cfg.workload.keyRange = cfg.initialSize * 2;
    cfg.workload.updatePercent = updatePct - movePct;  // moves are updates
    cfg.workload.movePercent = movePct;
    cfg.threads = threads;
    cfg.durationMs = durationMs;

    bench::populate(map, cfg);
    const auto result = bench::runThroughput(map, cfg);
    const auto schedStats = scheduler.stats();
    const auto mapStats = map.aggregatedStats();

    table.addRow({bench::Table::num(shards), bench::Table::num(workers),
                  bench::Table::num(result.opsPerMicrosecond()),
                  bench::Table::num(result.effectiveUpdateRatio()),
                  bench::Table::num(100.0 * result.stm.abortRatio()),
                  bench::Table::num(schedStats.passes),
                  bench::Table::num(schedStats.activePasses),
                  bench::Table::num(mapStats.maintenance.rotations),
                  bench::Table::num(mapStats.maintenance.removals)});

    json.addRecord()
        .set("shards", shards)
        .set("workers", workers)
        .set("ops_per_us", result.opsPerMicrosecond())
        .set("total_ops", result.totalOps)
        .set("effective_update_ratio", result.effectiveUpdateRatio())
        .set("abort_ratio", result.stm.abortRatio())
        .set("maintenance_passes", schedStats.passes)
        .set("active_passes", schedStats.activePasses)
        .set("backoff_skips", schedStats.backoffSkips)
        .set("signal_wakeups", schedStats.signalWakeups)
        .set("rotations", mapStats.maintenance.rotations)
        .set("removals", mapStats.maintenance.removals)
        .set("size_estimate", mapStats.sizeEstimate);
  }
  table.print();
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
