// Figure 3 — Throughput (ops/microsecond) of the four trees on the integer
// set micro-benchmark: update ratios 5/10/15/20%, normal and biased
// workloads, 2^12 elements, TinySTM-CTL-equivalent STM.
//
// The paper sweeps 1..48 threads on a 48-core machine; the container
// default sweeps 1..4 (override with --threads=...). The shape to
// reproduce: SFtree >= RBtree/AVLtree everywhere, growing with update
// ratio; NRtree collapses under the biased workload while SFtree does not.
#include <cstdio>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/obs_support.hpp"
#include "bench_core/report.hpp"
#include "obs/stats_bridge.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  // --obs / --obs-trace / --obs-report-ms: metrics snapshot, event trace,
  // periodic JSON reporting over the default domain (see obs_support.hpp).
  bench::ObsSession obsSession(cli);
  const auto obsReg = sftree::obs::registerDomainMetrics(
      obsSession.registry(), "stm", stm::defaultDomain());
  const auto threadCounts = cli.intList("threads", {1, 2, 4});
  const auto updates = cli.realList("updates", {5, 10, 15, 20});
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 150));
  const auto sizeLog = cli.integer("size-log", 12);

  const std::vector<trees::MapKind> kinds = {
      trees::MapKind::RBTree, trees::MapKind::SFTree, trees::MapKind::NRTree,
      trees::MapKind::AVLTree};

  bench::JsonReport json("fig3_microbench");
  json.meta()
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog);

  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);

  for (const bool biased : {false, true}) {
    for (const double u : updates) {
      std::printf("\nFigure 3 [%s workload, %.0f%% updates] "
                  "throughput (ops/us), set size 2^%lld\n",
                  biased ? "biased" : "normal", u,
                  static_cast<long long>(sizeLog));
      std::vector<std::string> header{"threads"};
      for (const auto kind : kinds) header.push_back(trees::mapKindName(kind));
      bench::Table table(header);
      for (const int threads : threadCounts) {
        std::vector<std::string> row{bench::Table::num(threads)};
        for (const auto kind : kinds) {
          bench::RunConfig cfg;
          cfg.initialSize = std::int64_t{1} << sizeLog;
          cfg.workload.keyRange = cfg.initialSize * 2;
          cfg.workload.updatePercent = u;
          cfg.workload.biased = biased;
          cfg.threads = threads;
          cfg.durationMs = durationMs;
          auto map = trees::makeMap(kind);
          bench::populate(*map, cfg);
          const auto result = bench::runThroughput(*map, cfg);
          row.push_back(bench::Table::num(result.opsPerMicrosecond()));
          json.addRecord()
              .set("tree", trees::mapKindName(kind))
              .set("biased", biased)
              .set("update_percent", u)
              .set("threads", threads)
              .set("ops_per_us", result.opsPerMicrosecond())
              .set("abort_ratio", result.stm.abortRatio());
        }
        table.addRow(row);
      }
      table.print();
    }
  }
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
