#!/usr/bin/env bash
# Quick-mode benchmark sweep for the perf trajectory:
#
#  * read path (stm_micro RO/logged primitives, fig3 read-dominated tree
#    sweep, fig5b write-heavy move composition, table1 reads-per-operation)
#    consolidated into BENCH_readpath.json;
#  * maintenance path (ablation_maintenance --ab-mode: full-sweep vs
#    targeted violation-queue maintenance, interleaved reps) consolidated
#    into BENCH_maintpath.json;
#  * observability overhead (obs_overhead: off vs always-on metrics vs
#    enabled trace, interleaved reps) written to BENCH_obs.json;
#  * splay-under-skew A/B (splay_skew: uniform/Zipf x splay on/off,
#    fresh tree per arm, plus the deterministic hot-set depth proxy)
#    written to BENCH_splay.json;
#  * serving tier (serving_ycsb: batched-vs-per-op amortization proxy plus
#    the open-loop Poisson SLO sweep over YCSB A/B/C mixes) written to
#    BENCH_serving.json;
#  * checkpoint/restore (ckpt_bench: full-image stream under live movers
#    with the mutator-dip probe, 10%-dirty incremental, restore round-trip)
#    written to BENCH_ckpt.json.
#
#   bench/run_quick.sh [BUILD_DIR] [READPATH_JSON] [MAINTPATH_JSON] \
#                      [OBS_JSON] [SPLAY_JSON] [SERVING_JSON] [CKPT_JSON]
#
# Defaults: BUILD_DIR=build, READPATH_JSON=BENCH_readpath.json,
# MAINTPATH_JSON=BENCH_maintpath.json, OBS_JSON=BENCH_obs.json,
# SPLAY_JSON=BENCH_splay.json, SERVING_JSON=BENCH_serving.json,
# CKPT_JSON=BENCH_ckpt.json (in the current directory).
#
# Each report is emitted independently: a missing bench binary (or missing
# jq, for the two merged reports) skips just that section with a clear
# message instead of failing the whole sweep — a partial build still yields
# the reports it can. The run as a whole fails only if NOTHING could be
# emitted. Outputs are written atomically (tmp + mv), so an interrupted run
# can never leave a truncated report behind.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_readpath.json}"
OUT_MAINT="${3:-BENCH_maintpath.json}"
OUT_OBS="${4:-BENCH_obs.json}"
OUT_SPLAY="${5:-BENCH_splay.json}"
OUT_SERVING="${6:-BENCH_serving.json}"
OUT_CKPT="${7:-BENCH_ckpt.json}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "run_quick.sh: build dir '$BUILD_DIR' not found" >&2
  exit 1
fi

HAVE_JQ=1
if ! command -v jq >/dev/null; then
  HAVE_JQ=0
  echo "run_quick.sh: jq not found (apt-get install jq) — the merged" \
       "readpath and maintpath reports will be skipped" >&2
fi

have_bin() { [[ -x "$BUILD_DIR/$1" ]]; }

# skip_section <report> <why>
skip_section() {
  echo "run_quick.sh: SKIP $1 — $2 (configure with -DSFTREE_BUILD_BENCH=ON" \
       "and build, then re-run for this report)" >&2
}

EMITTED=0

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# --- Read path ------------------------------------------------------------
# Read-dominated + write-heavy tree configurations. 0% updates at 8 threads
# is the headline read-path configuration; 50% and fig5b move are the
# no-regression guards.
readpath_missing=()
for bin in fig3_microbench fig5b_move table1_reads; do
  have_bin "$bin" || readpath_missing+=("$bin")
done
if (( HAVE_JQ )) && (( ${#readpath_missing[@]} == 0 )); then
  "$BUILD_DIR/fig3_microbench" --threads=8 --updates=0,50 --duration-ms=300 \
    --size-log=12 --json="$TMP/fig3.json" >/dev/null
  "$BUILD_DIR/fig5b_move" --threads=4 --duration-ms=200 \
    --json="$TMP/fig5b.json" >/dev/null
  "$BUILD_DIR/table1_reads" --threads=2 --duration-ms=150 \
    --json="$TMP/table1.json" >/dev/null

  # STM primitives (google-benchmark). stm_micro is skipped gracefully when
  # the library was unavailable at configure time.
  if have_bin stm_micro; then
    "$BUILD_DIR/stm_micro" \
      --benchmark_filter='ReadOnly|LoggedRead|WriteSetLookup|Uread' \
      --benchmark_min_time=0.2 --json="$TMP/stm_micro.json" >/dev/null
  else
    echo "run_quick.sh: stm_micro not built (libbenchmark-dev missing?);" \
         "its section is marked skipped inside $OUT" >&2
    echo '{"skipped": "stm_micro not built (google-benchmark missing)"}' \
      > "$TMP/stm_micro.json"
  fi

  jq -n \
    --slurpfile fig3 "$TMP/fig3.json" \
    --slurpfile fig5b "$TMP/fig5b.json" \
    --slurpfile table1 "$TMP/table1.json" \
    --slurpfile micro "$TMP/stm_micro.json" \
    '{
       bench: "readpath",
       fig3_microbench: $fig3[0],
       fig5b_move: $fig5b[0],
       table1_reads: $table1[0],
       stm_micro: $micro[0]
     }' > "$OUT.tmp.$$"
  mv "$OUT.tmp.$$" "$OUT"
  EMITTED=$((EMITTED + 1))
  echo "consolidated report written to $OUT"
elif (( ${#readpath_missing[@]} > 0 )); then
  skip_section "$OUT" "missing bench binaries: ${readpath_missing[*]}"
else
  skip_section "$OUT" "jq is required for the merge"
fi

# --- Maintenance path -----------------------------------------------------
# Maintenance-path A/B: 20%-update steady state, interleaved
# sweep/targeted reps. The schema checker aggregates per-mode
# visits-per-update means and guards the targeted-vs-sweep ratio and the
# committed-baseline trajectory.
if (( HAVE_JQ )) && have_bin ablation_maintenance; then
  "$BUILD_DIR/ablation_maintenance" --ab-mode --ab-reps=3 --threads=2 \
    --duration-ms=300 --update=20 --size-log=12 \
    --json="$TMP/maint_ab.json" >/dev/null

  jq -n \
    --slurpfile ab "$TMP/maint_ab.json" \
    '{
       bench: "maintpath",
       ablation_maintenance_ab: $ab[0]
     }' > "$OUT_MAINT.tmp.$$"
  mv "$OUT_MAINT.tmp.$$" "$OUT_MAINT"
  EMITTED=$((EMITTED + 1))
  echo "consolidated report written to $OUT_MAINT"
elif ! have_bin ablation_maintenance; then
  skip_section "$OUT_MAINT" "ablation_maintenance not built"
else
  skip_section "$OUT_MAINT" "jq is required for the merge"
fi

# --- Observability overhead -----------------------------------------------
# Off vs always-on metrics vs enabled trace on one workload, interleaved
# reps. obs_overhead writes the tagged report itself; copy it out
# atomically like the others.
if have_bin obs_overhead; then
  "$BUILD_DIR/obs_overhead" --reps=9 --threads=2 --duration-ms=200 \
    --size-log=16 --json="$TMP/obs.json" >/dev/null
  cp "$TMP/obs.json" "$OUT_OBS.tmp.$$"
  mv "$OUT_OBS.tmp.$$" "$OUT_OBS"
  EMITTED=$((EMITTED + 1))
  echo "overhead report written to $OUT_OBS"
else
  skip_section "$OUT_OBS" "obs_overhead not built"
fi

# --- Splay under skew -----------------------------------------------------
# fig3-style mix, uniform vs Zipf(0.99), splaying on vs off on fresh trees
# (interleaved reps, per-arm minima), plus the single-threaded fixed-op
# depth proxy the schema checker gates deterministically on any core count.
if have_bin splay_skew; then
  "$BUILD_DIR/splay_skew" --reps=9 --threads=2 --duration-ms=200 \
    --size-log=12 --det-ops=1000000 --json="$TMP/splay.json" >/dev/null
  cp "$TMP/splay.json" "$OUT_SPLAY.tmp.$$"
  mv "$OUT_SPLAY.tmp.$$" "$OUT_SPLAY"
  EMITTED=$((EMITTED + 1))
  echo "splay skew report written to $OUT_SPLAY"
else
  skip_section "$OUT_SPLAY" "splay_skew not built"
fi

# --- Serving tier ---------------------------------------------------------
# Batched-vs-per-op amortization at equal offered load (the deterministic
# proxy the schema checker gates on any core count) plus the open-loop
# Poisson sweep per YCSB mix and key distribution.
if have_bin serving_ycsb; then
  "$BUILD_DIR/serving_ycsb" --ops=40000 --reps=3 --rates=10000,30000 \
    --openloop-ms=150 --json="$TMP/serving.json" >/dev/null
  cp "$TMP/serving.json" "$OUT_SERVING.tmp.$$"
  mv "$OUT_SERVING.tmp.$$" "$OUT_SERVING"
  EMITTED=$((EMITTED + 1))
  echo "serving report written to $OUT_SERVING"
else
  skip_section "$OUT_SERVING" "serving_ycsb not built"
fi

# --- Checkpoint / restore -------------------------------------------------
# Full-image stream under live token movers (mutator-dip probe), quiesced
# full + 10%-dirty-slots incremental, restore round-trip equality. The
# schema checker gates checksum verification, round-trip exactness, the
# incremental-vs-full size ratio and the mutator-dip floor.
if have_bin ckpt_bench; then
  "$BUILD_DIR/ckpt_bench" --keys=8000 --threads=4 --window-ms=250 --reps=2 \
    --dir="$TMP/ckpt_dir" --json="$TMP/ckpt.json" >/dev/null
  cp "$TMP/ckpt.json" "$OUT_CKPT.tmp.$$"
  mv "$OUT_CKPT.tmp.$$" "$OUT_CKPT"
  EMITTED=$((EMITTED + 1))
  echo "checkpoint report written to $OUT_CKPT"
else
  skip_section "$OUT_CKPT" "ckpt_bench not built"
fi

# --------------------------------------------------------------------------
if (( EMITTED == 0 )); then
  echo "run_quick.sh: no report could be emitted (no bench binaries in" \
       "'$BUILD_DIR'?) — configure with -DSFTREE_BUILD_BENCH=ON" >&2
  exit 1
fi
echo "run_quick.sh: emitted $EMITTED report(s)"
