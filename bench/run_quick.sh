#!/usr/bin/env bash
# Quick-mode benchmark sweep for the perf trajectory:
#
#  * read path (stm_micro RO/logged primitives, fig3 read-dominated tree
#    sweep, fig5b write-heavy move composition, table1 reads-per-operation)
#    consolidated into BENCH_readpath.json;
#  * maintenance path (ablation_maintenance --ab-mode: full-sweep vs
#    targeted violation-queue maintenance, interleaved reps) consolidated
#    into BENCH_maintpath.json;
#  * observability overhead (obs_overhead: off vs always-on metrics vs
#    enabled trace, interleaved reps) written to BENCH_obs.json;
#  * splay-under-skew A/B (splay_skew: uniform/Zipf x splay on/off,
#    fresh tree per arm, plus the deterministic hot-set depth proxy)
#    written to BENCH_splay.json;
#  * serving tier (serving_ycsb: batched-vs-per-op amortization proxy plus
#    the open-loop Poisson SLO sweep over YCSB A/B/C mixes) written to
#    BENCH_serving.json.
#
#   bench/run_quick.sh [BUILD_DIR] [READPATH_JSON] [MAINTPATH_JSON] \
#                      [OBS_JSON] [SPLAY_JSON] [SERVING_JSON]
#
# Defaults: BUILD_DIR=build, READPATH_JSON=BENCH_readpath.json,
# MAINTPATH_JSON=BENCH_maintpath.json, OBS_JSON=BENCH_obs.json,
# SPLAY_JSON=BENCH_splay.json, SERVING_JSON=BENCH_serving.json (in the
# current directory). Requires jq for the merge.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_readpath.json}"
OUT_MAINT="${3:-BENCH_maintpath.json}"
OUT_OBS="${4:-BENCH_obs.json}"
OUT_SPLAY="${5:-BENCH_splay.json}"
OUT_SERVING="${6:-BENCH_serving.json}"

# Fail fast, before any partial output exists: a missing tool or bench
# binary used to surface as a half-written JSON that the schema checker
# then blamed. Outputs are also written atomically (tmp + mv) below, so an
# interrupted run can never leave a truncated report behind.
if ! command -v jq >/dev/null; then
  echo "run_quick.sh: jq is required to merge the reports" \
       "(apt-get install jq)" >&2
  exit 1
fi
if [[ ! -d "$BUILD_DIR" ]]; then
  echo "run_quick.sh: build dir '$BUILD_DIR' not found" >&2
  exit 1
fi
missing=()
for bin in fig3_microbench fig5b_move table1_reads ablation_maintenance \
           obs_overhead splay_skew serving_ycsb; do
  [[ -x "$BUILD_DIR/$bin" ]] || missing+=("$bin")
done
if (( ${#missing[@]} > 0 )); then
  echo "run_quick.sh: missing bench binaries in '$BUILD_DIR':" \
       "${missing[*]} — configure with -DSFTREE_BUILD_BENCH=ON and build" >&2
  exit 1
fi
# stm_micro is optional (needs google-benchmark); warn once here instead of
# silently emitting the skip marker only.
if [[ ! -x "$BUILD_DIR/stm_micro" ]]; then
  echo "run_quick.sh: stm_micro not built (libbenchmark-dev missing?);" \
       "its section will be marked skipped" >&2
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Read-dominated + write-heavy tree configurations. 0% updates at 8 threads
# is the headline read-path configuration; 50% and fig5b move are the
# no-regression guards.
"$BUILD_DIR/fig3_microbench" --threads=8 --updates=0,50 --duration-ms=300 \
  --size-log=12 --json="$TMP/fig3.json" >/dev/null
"$BUILD_DIR/fig5b_move" --threads=4 --duration-ms=200 \
  --json="$TMP/fig5b.json" >/dev/null
"$BUILD_DIR/table1_reads" --threads=2 --duration-ms=150 \
  --json="$TMP/table1.json" >/dev/null

# STM primitives (google-benchmark). stm_micro is skipped gracefully when
# the library was unavailable at configure time.
if [[ -x "$BUILD_DIR/stm_micro" ]]; then
  "$BUILD_DIR/stm_micro" \
    --benchmark_filter='ReadOnly|LoggedRead|WriteSetLookup|Uread' \
    --benchmark_min_time=0.2 --json="$TMP/stm_micro.json" >/dev/null
else
  echo '{"skipped": "stm_micro not built (google-benchmark missing)"}' \
    > "$TMP/stm_micro.json"
fi

jq -n \
  --slurpfile fig3 "$TMP/fig3.json" \
  --slurpfile fig5b "$TMP/fig5b.json" \
  --slurpfile table1 "$TMP/table1.json" \
  --slurpfile micro "$TMP/stm_micro.json" \
  '{
     bench: "readpath",
     fig3_microbench: $fig3[0],
     fig5b_move: $fig5b[0],
     table1_reads: $table1[0],
     stm_micro: $micro[0]
   }' > "$OUT.tmp.$$"
mv "$OUT.tmp.$$" "$OUT"

echo "consolidated report written to $OUT"

# Maintenance-path A/B: 20%-update steady state, interleaved
# sweep/targeted reps. The schema checker aggregates per-mode
# visits-per-update means and guards the targeted-vs-sweep ratio and the
# committed-baseline trajectory.
"$BUILD_DIR/ablation_maintenance" --ab-mode --ab-reps=3 --threads=2 \
  --duration-ms=300 --update=20 --size-log=12 \
  --json="$TMP/maint_ab.json" >/dev/null

jq -n \
  --slurpfile ab "$TMP/maint_ab.json" \
  '{
     bench: "maintpath",
     ablation_maintenance_ab: $ab[0]
   }' > "$OUT_MAINT.tmp.$$"
mv "$OUT_MAINT.tmp.$$" "$OUT_MAINT"

echo "consolidated report written to $OUT_MAINT"

# Observability overhead gate: off vs always-on metrics vs enabled trace on
# one workload, interleaved reps. obs_overhead writes the tagged report
# itself; copy it out atomically like the others.
"$BUILD_DIR/obs_overhead" --reps=9 --threads=2 --duration-ms=200 \
  --size-log=16 --json="$TMP/obs.json" >/dev/null
cp "$TMP/obs.json" "$OUT_OBS.tmp.$$"
mv "$OUT_OBS.tmp.$$" "$OUT_OBS"

echo "overhead report written to $OUT_OBS"

# Splay-under-skew gates: fig3-style mix, uniform vs Zipf(0.99), splaying
# on vs off on fresh trees (interleaved reps, per-arm minima), plus the
# single-threaded fixed-op depth proxy the schema checker gates
# deterministically on any core count.
"$BUILD_DIR/splay_skew" --reps=9 --threads=2 --duration-ms=200 \
  --size-log=12 --det-ops=1000000 --json="$TMP/splay.json" >/dev/null
cp "$TMP/splay.json" "$OUT_SPLAY.tmp.$$"
mv "$OUT_SPLAY.tmp.$$" "$OUT_SPLAY"

echo "splay skew report written to $OUT_SPLAY"

# Serving-tier gates: batched-vs-per-op amortization at equal offered load
# (the deterministic proxy the schema checker gates on any core count) plus
# the open-loop Poisson sweep per YCSB mix and key distribution.
"$BUILD_DIR/serving_ycsb" --ops=40000 --reps=3 --rates=10000,30000 \
  --openloop-ms=150 --json="$TMP/serving.json" >/dev/null
cp "$TMP/serving.json" "$OUT_SERVING.tmp.$$"
mv "$OUT_SERVING.tmp.$$" "$OUT_SERVING"

echo "serving report written to $OUT_SERVING"
