// Ablation — which half of the decoupling buys what?
//
// The speculation-friendly tree decouples two things (paper §3.1, §3.2):
//   1. rotations  (structural adaptation in the background), and
//   2. node removal (logical delete now, physical unlink later).
// This bench runs the same workload on the SF tree with maintenance fully
// on, rotations-only, removals-only, and fully off (== NRtree), under both
// uniform and biased key distributions. It regenerates the design-choice
// evidence DESIGN.md calls out rather than any single paper figure.
#include <cstdio>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"
#include "trees/sftree.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

// Thin adapter so the harness can drive a raw SFTree configuration.
class RawSFMap final : public trees::ITransactionalMap {
 public:
  explicit RawSFMap(trees::SFTreeConfig cfg) : tree_(cfg) {}
  bool insert(sftree::Key k, sftree::Value v) override {
    return tree_.insert(k, v);
  }
  bool erase(sftree::Key k) override { return tree_.erase(k); }
  bool contains(sftree::Key k) override { return tree_.contains(k); }
  std::optional<sftree::Value> get(sftree::Key k) override {
    return tree_.get(k);
  }
  bool move(sftree::Key a, sftree::Key b) override { return tree_.move(a, b); }
  bool insertTx(stm::Tx& tx, sftree::Key k, sftree::Value v) override {
    return tree_.insertTx(tx, k, v);
  }
  bool eraseTx(stm::Tx& tx, sftree::Key k) override {
    return tree_.eraseTx(tx, k);
  }
  bool containsTx(stm::Tx& tx, sftree::Key k) override {
    return tree_.containsTx(tx, k);
  }
  std::optional<sftree::Value> getTx(stm::Tx& tx, sftree::Key k) override {
    return tree_.getTx(tx, k);
  }
  std::size_t countRangeTx(stm::Tx& tx, sftree::Key lo,
                           sftree::Key hi) override {
    return tree_.countRangeTx(tx, lo, hi);
  }
  std::size_t size() override { return 0; }
  int height() override {
    tree_.stopMaintenance();
    return tree_.height();
  }
  std::vector<sftree::Key> keysInOrder() override { return {}; }

  trees::SFTree& tree() { return tree_; }

 private:
  trees::SFTree tree_;
};

struct Variant {
  const char* name;
  bool rotations;
  bool removals;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.integer("threads", 2));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 250));
  const auto sizeLog = cli.integer("size-log", 12);
  const double update = cli.real("update", 15.0);

  const Variant variants[] = {
      {"full maintenance", true, true},
      {"rotations only", true, false},
      {"removals only", false, true},
      {"none (NRtree)", false, false},
  };

  bench::JsonReport json("ablation_maintenance");
  json.meta()
      .set("threads", threads)
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog)
      .set("update_percent", update);

  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
  for (const bool biased : {false, true}) {
    std::printf("\nAblation [%s workload, %.0f%% updates, %d threads] \n",
                biased ? "biased" : "uniform", update, threads);
    bench::Table table({"maintenance", "ops/us", "final height",
                        "rotations", "removals"});
    for (const Variant& v : variants) {
      trees::SFTreeConfig cfg;
      cfg.ops = trees::OpsVariant::Optimized;
      cfg.rotations = v.rotations;
      cfg.removals = v.removals;
      cfg.startMaintenance = v.rotations || v.removals;
      RawSFMap map(cfg);

      bench::RunConfig run;
      run.initialSize = std::int64_t{1} << sizeLog;
      run.workload.keyRange = run.initialSize * 2;
      run.workload.updatePercent = update;
      run.workload.biased = biased;
      run.threads = threads;
      run.durationMs = durationMs;
      bench::populate(map, run);
      const auto result = bench::runThroughput(map, run);
      const int height = map.height();  // stops maintenance
      const auto ms = map.tree().maintenanceStats();
      table.addRow({v.name, bench::Table::num(result.opsPerMicrosecond()),
                    bench::Table::num(height), bench::Table::num(ms.rotations),
                    bench::Table::num(ms.removals)});
      json.addRecord()
          .set("variant", v.name)
          .set("biased", biased)
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("final_height", height)
          .set("rotations", ms.rotations)
          .set("removals", ms.removals)
          .set("abort_ratio", result.stm.abortRatio());
    }
    table.print();
  }
  std::printf("\nExpected: under the biased workload the no-rotation "
              "variants degrade (tree degenerates);\nwith rotations the "
              "height stays logarithmic.\n");
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
