// Ablation — which half of the decoupling buys what?
//
// The speculation-friendly tree decouples two things (paper §3.1, §3.2):
//   1. rotations  (structural adaptation in the background), and
//   2. node removal (logical delete now, physical unlink later).
// This bench runs the same workload on the SF tree with maintenance fully
// on, rotations-only, removals-only, and fully off (== NRtree), under both
// uniform and biased key distributions. It regenerates the design-choice
// evidence DESIGN.md calls out rather than any single paper figure.
//
// --ab-mode switches to the maintenance-path A/B: full-sweep discovery vs
// targeted (violation-queue-fed) maintenance on the same workload,
// interleaved sweep/targeted/sweep/... across --ab-reps repetitions so
// machine drift hits both arms equally. The headline metric is maintenance
// work (nodes visited by maintenance) per committed update — the cost the
// violation queue converts from O(tree) to O(activity) — plus throughput
// and final height, which must not regress. run_quick.sh wraps this mode's
// --json output into BENCH_maintpath.json for the CI regression guard.
#include <cstdio>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"
#include "trees/sftree.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

// Thin adapter so the harness can drive a raw SFTree configuration.
class RawSFMap final : public trees::ITransactionalMap {
 public:
  explicit RawSFMap(trees::SFTreeConfig cfg) : tree_(cfg) {}
  bool insert(sftree::Key k, sftree::Value v) override {
    return tree_.insert(k, v);
  }
  bool erase(sftree::Key k) override { return tree_.erase(k); }
  bool contains(sftree::Key k) override { return tree_.contains(k); }
  std::optional<sftree::Value> get(sftree::Key k) override {
    return tree_.get(k);
  }
  bool move(sftree::Key a, sftree::Key b) override { return tree_.move(a, b); }
  bool insertTx(stm::Tx& tx, sftree::Key k, sftree::Value v) override {
    return tree_.insertTx(tx, k, v);
  }
  bool eraseTx(stm::Tx& tx, sftree::Key k) override {
    return tree_.eraseTx(tx, k);
  }
  bool containsTx(stm::Tx& tx, sftree::Key k) override {
    return tree_.containsTx(tx, k);
  }
  std::optional<sftree::Value> getTx(stm::Tx& tx, sftree::Key k) override {
    return tree_.getTx(tx, k);
  }
  std::size_t countRangeTx(stm::Tx& tx, sftree::Key lo,
                           sftree::Key hi) override {
    return tree_.countRangeTx(tx, lo, hi);
  }
  std::size_t size() override { return 0; }
  int height() override {
    tree_.stopMaintenance();
    return tree_.height();
  }
  std::vector<sftree::Key> keysInOrder() override { return {}; }

  trees::SFTree& tree() { return tree_; }

 private:
  trees::SFTree tree_;
};

struct Variant {
  const char* name;
  bool rotations;
  bool removals;
};

// Maintenance work attributable to the measured window: final minus
// post-populate counters (populate also feeds the maintenance side).
trees::MaintenanceStats statsDelta(const trees::MaintenanceStats& end,
                                   const trees::MaintenanceStats& start) {
  trees::MaintenanceStats d = end;
  d.traversals -= start.traversals;
  d.fullSweeps -= start.fullSweeps;
  d.rotations -= start.rotations;
  d.removals -= start.removals;
  d.nodesVisited -= start.nodesVisited;
  d.queue.captured -= start.queue.captured;
  d.queue.enqueued -= start.queue.enqueued;
  d.queue.deduped -= start.queue.deduped;
  d.queue.drained -= start.queue.drained;
  d.queue.drainLatencyUsSum -= start.queue.drainLatencyUsSum;
  return d;
}

// Sweep-vs-targeted A/B (see file header). Returns the process exit code.
int runMaintPathAb(bench::Cli& cli) {
  const int threads = static_cast<int>(cli.integer("threads", 2));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 300));
  const auto sizeLog = cli.integer("size-log", 12);
  const double update = cli.real("update", 20.0);
  const int reps = static_cast<int>(cli.integer("ab-reps", 3));

  bench::JsonReport json("ablation_maintenance_ab");
  json.meta()
      .set("threads", threads)
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog)
      .set("update_percent", update)
      .set("reps", reps);

  std::printf("Maintenance-path A/B [%d reps interleaved, %.0f%% updates, "
              "%d threads, 2^%lld keys]\n",
              reps, update, threads, static_cast<long long>(sizeLog));
  bench::Table table({"rep", "mode", "ops/us", "height", "visits/update",
                      "rotations", "queue drained", "drain lat (us)"});

  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
  for (int rep = 0; rep < reps; ++rep) {
    for (const bool targeted : {false, true}) {
      trees::SFTreeConfig cfg;
      cfg.ops = trees::OpsVariant::Optimized;
      cfg.targetedMaintenance = targeted;
      RawSFMap map(cfg);

      bench::RunConfig run;
      run.initialSize = std::int64_t{1} << sizeLog;
      run.workload.keyRange = run.initialSize * 2;
      run.workload.updatePercent = update;
      run.threads = threads;
      run.durationMs = durationMs;
      run.seed = 42 + static_cast<std::uint64_t>(rep);
      bench::populate(map, run);
      const auto baseline = map.tree().maintenanceStats();
      const auto result = bench::runThroughput(map, run);
      const int height = map.height();  // stops maintenance
      const auto ms = statsDelta(map.tree().maintenanceStats(), baseline);

      const double updates =
          result.effectiveUpdates > 0
              ? static_cast<double>(result.effectiveUpdates)
              : 1.0;
      const double visitsPerUpdate =
          static_cast<double>(ms.nodesVisited) / updates;
      const char* mode = targeted ? "targeted" : "sweep";
      table.addRow({bench::Table::num(rep), mode,
                    bench::Table::num(result.opsPerMicrosecond()),
                    bench::Table::num(height),
                    bench::Table::num(visitsPerUpdate),
                    bench::Table::num(ms.rotations),
                    bench::Table::num(ms.queue.drained),
                    bench::Table::num(ms.queue.meanDrainLatencyUs(), 0)});
      json.addRecord()
          .set("mode", mode)
          .set("rep", rep)
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("final_height", height)
          .set("committed_updates", result.effectiveUpdates)
          .set("maint_nodes_visited", ms.nodesVisited)
          .set("visits_per_update", visitsPerUpdate)
          .set("maint_passes", ms.traversals)
          .set("full_sweeps", ms.fullSweeps)
          .set("rotations", ms.rotations)
          .set("removals", ms.removals)
          .set("queue_captured", ms.queue.captured)
          .set("queue_enqueued", ms.queue.enqueued)
          .set("queue_deduped", ms.queue.deduped)
          .set("queue_drained", ms.queue.drained)
          .set("mean_drain_latency_us", ms.queue.meanDrainLatencyUs())
          .set("abort_ratio", result.stm.abortRatio());
    }
  }
  table.print();
  std::printf("\nExpected: targeted mode does a small fraction of the sweep "
              "mode's maintenance visits per committed update, at parity "
              "throughput and comparable final height.\n");
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  if (cli.flag("ab-mode")) return runMaintPathAb(cli);
  const int threads = static_cast<int>(cli.integer("threads", 2));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 250));
  const auto sizeLog = cli.integer("size-log", 12);
  const double update = cli.real("update", 15.0);

  const Variant variants[] = {
      {"full maintenance", true, true},
      {"rotations only", true, false},
      {"removals only", false, true},
      {"none (NRtree)", false, false},
  };

  bench::JsonReport json("ablation_maintenance");
  json.meta()
      .set("threads", threads)
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog)
      .set("update_percent", update);

  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
  for (const bool biased : {false, true}) {
    std::printf("\nAblation [%s workload, %.0f%% updates, %d threads] \n",
                biased ? "biased" : "uniform", update, threads);
    bench::Table table({"maintenance", "ops/us", "final height",
                        "rotations", "removals"});
    for (const Variant& v : variants) {
      trees::SFTreeConfig cfg;
      cfg.ops = trees::OpsVariant::Optimized;
      cfg.rotations = v.rotations;
      cfg.removals = v.removals;
      cfg.startMaintenance = v.rotations || v.removals;
      RawSFMap map(cfg);

      bench::RunConfig run;
      run.initialSize = std::int64_t{1} << sizeLog;
      run.workload.keyRange = run.initialSize * 2;
      run.workload.updatePercent = update;
      run.workload.biased = biased;
      run.threads = threads;
      run.durationMs = durationMs;
      bench::populate(map, run);
      const auto result = bench::runThroughput(map, run);
      const int height = map.height();  // stops maintenance
      const auto ms = map.tree().maintenanceStats();
      table.addRow({v.name, bench::Table::num(result.opsPerMicrosecond()),
                    bench::Table::num(height), bench::Table::num(ms.rotations),
                    bench::Table::num(ms.removals)});
      json.addRecord()
          .set("variant", v.name)
          .set("biased", biased)
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("final_height", height)
          .set("rotations", ms.rotations)
          .set("removals", ms.removals)
          .set("abort_ratio", result.stm.abortRatio());
    }
    table.print();
  }
  std::printf("\nExpected: under the biased workload the no-rotation "
              "variants degrade (tree degenerates);\nwith rotations the "
              "height stays logarithmic.\n");
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
