// Checkpoint-under-load bench -> BENCH_ckpt.json, plus the crash-and-
// restore CI modes.
//
// Default (report) mode, per rep:
//   1. token-mover writer threads against a ShardedMap, measured alone
//      (baseline_ops_per_s) and then while full checkpoints stream
//      back-to-back (stream_ops_per_s) -> dip_ratio. The stream is
//      ReadOnly + tick-certified, so writers should barely notice.
//   2. quiesce, full checkpoint, dirty ~10% of the routing slots, then an
//      incremental -> full_bytes vs incr_bytes and segment reuse counts.
//   3. restore from disk -> restore_ms, restore_keys, roundtrip_exact
//      (restored image == live image), checksums_ok (deep verify).
//
// The token-mover workload conserves the key count by construction, so
// every checkpoint of it must hold exactly --keys keys — the schema gate
// checks restore_keys against meta.keys exactly.
//
// Crash modes (scripts/crash_restore_ci.sh):
//   --crash-run  --dir=D --oplog=F [--kill-after-checkpoints=N
//                --kill-segments=K] [--duration-ms=T]
//     writes the token ids to F, starts movers, takes checkpoints; with
//     kill flags it SIGKILLs itself mid-stream of the (N+1)-th
//     checkpoint; without, it loops until T then exits 0 (the CI script
//     SIGKILLs it externally). Prints FIRST_CHECKPOINT_DONE once a
//     complete checkpoint exists.
//   --crash-verify --dir=D --oplog=F
//     restores the newest valid checkpoint and verifies the token set
//     against the oplog exactly; exit 0 on PASS.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/cli.hpp"
#include "bench_core/report.hpp"
#include "bench_core/rng.hpp"
#include "ckpt/checkpoint.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"

namespace ckpt = sftree::ckpt;
namespace shard = sftree::shard;
namespace bench = sftree::bench;
using sftree::Key;
using sftree::Value;

namespace {

constexpr Key kKeyspace = 1 << 22;

// Token movers: thread w owns tokens w, w+T, w+2T, ... and keeps moving
// them to fresh keys; values carry the token id, so the key count and the
// value multiset are invariant at every instant.
class Movers {
 public:
  Movers(shard::ShardedMap& map, int threads, std::int64_t tokens)
      : map_(map), tokens_(tokens) {
    positions_.resize(static_cast<std::size_t>(tokens));
    for (std::int64_t t = 0; t < tokens; ++t) {
      positions_[static_cast<std::size_t>(t)] = static_cast<Key>(t);
      map_.insert(static_cast<Key>(t), static_cast<Value>(t));
    }
    for (int w = 0; w < threads; ++w) {
      workers_.emplace_back([this, w, threads] { run(w, threads); });
    }
  }
  ~Movers() { stopAndJoin(); }
  void stopAndJoin() {
    stop_.store(true);
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

 private:
  void run(int self, int stride) {
    bench::Rng rng(static_cast<std::uint64_t>(0xC0FFEE + self));
    const std::uint64_t mine =
        static_cast<std::uint64_t>((tokens_ - self + stride - 1) / stride);
    while (!stop_.load(std::memory_order_relaxed)) {
      const std::int64_t tok =
          self + stride * static_cast<std::int64_t>(rng.nextBounded(mine));
      Key& cur = positions_[static_cast<std::size_t>(tok)];
      const Key dst = static_cast<Key>(rng.nextBounded(kKeyspace));
      if (map_.move(cur, dst)) cur = dst;
      ops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  shard::ShardedMap& map_;
  const std::int64_t tokens_;
  std::vector<Key> positions_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ops_{0};
};

double opsPerSec(std::uint64_t ops, std::uint64_t ns) {
  return ns == 0 ? 0.0 : static_cast<double>(ops) * 1e9 /
                             static_cast<double>(ns);
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::map<Key, Value> dump(shard::ShardedMap& map) {
  std::map<Key, Value> out;
  for (const Key k : map.keysInOrder()) out[k] = *map.get(k);
  return out;
}

int crashRun(const bench::Cli& cli) {
  const std::string dir = cli.str("dir", "ckpt_crash_dir");
  const std::string oplog = cli.str("oplog", dir + "/oplog.txt");
  const auto tokens = cli.integer("keys", 10'000);
  const int threads = static_cast<int>(cli.integer("threads", 4));
  const auto killAfter = cli.integer("kill-after-checkpoints", -1);
  const auto killSegments = cli.integer("kill-segments", 8);
  const auto durationMs = cli.integer("duration-ms", 4'000);

  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  // Sidecar op log FIRST (flushed before any checkpoint): the ground truth
  // the verifier replays. The mover workload conserves it by construction.
  {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream log(oplog);
    if (!log) {
      std::cerr << "cannot write oplog " << oplog << "\n";
      return 2;
    }
    log << tokens << "\n";
    for (std::int64_t t = 0; t < tokens; ++t) log << t << "\n";
  }

  Movers movers(map, threads, tokens);
  ckpt::CheckpointConfig ccfg;
  ccfg.dir = dir;
  {
    ckpt::CheckpointWriter writer(map, ccfg);
    const auto first = writer.full();
    if (!first.ok) {
      std::cerr << "first checkpoint failed: " << first.error << "\n";
      return 2;
    }
    // Marker for the external-SIGKILL phase: from here on, killing this
    // process at ANY instant must leave a restorable directory.
    std::cout << "FIRST_CHECKPOINT_DONE" << std::endl;

    if (killAfter >= 0) {
      for (std::int64_t i = 0; i < killAfter; ++i) {
        const auto r = writer.incremental();
        if (!r.ok) {
          std::cerr << "checkpoint " << i << " failed: " << r.error << "\n";
          return 2;
        }
      }
      // Self-kill mid-stream: SIGKILL after killSegments flushed segments
      // of the next full image. Never returns.
      ckpt::CheckpointConfig kcfg = ccfg;
      kcfg.killAfterSegments = static_cast<int>(killSegments);
      ckpt::CheckpointWriter killer(map, kcfg);
      (void)killer.full();
      std::cerr << "expected SIGKILL did not happen\n";
      return 2;
    }

    // External-kill mode: checkpoint continuously until the driver kills
    // us (or the duration elapses and we exit cleanly).
    const std::uint64_t deadline =
        nowNs() + static_cast<std::uint64_t>(durationMs) * 1'000'000ULL;
    while (nowNs() < deadline) {
      const auto r = writer.incremental();
      if (!r.ok) {
        std::cerr << "checkpoint failed: " << r.error << "\n";
        return 2;
      }
    }
  }
  movers.stopAndJoin();
  return 0;
}

int crashVerify(const bench::Cli& cli) {
  const std::string dir = cli.str("dir", "ckpt_crash_dir");
  const std::string oplog = cli.str("oplog", dir + "/oplog.txt");

  std::ifstream log(oplog);
  if (!log) {
    std::cerr << "cannot read oplog " << oplog << "\n";
    return 2;
  }
  std::int64_t tokens = 0;
  log >> tokens;
  std::set<Value> expect;
  for (std::int64_t i = 0; i < tokens; ++i) {
    Value v = 0;
    log >> v;
    expect.insert(v);
  }

  shard::MaintenanceScheduler scheduler;
  ckpt::RestoreOptions ropt;
  ropt.mapConfig.scheduler = &scheduler;
  ckpt::RestoreReport rep;
  const auto map = ckpt::restore(dir, ropt, rep);
  if (map == nullptr) {
    std::cerr << "FAIL: restore: " << rep.error << "\n";
    return 1;
  }
  std::cout << "restored ckpt-" << rep.fileId << " (" << rep.keys
            << " keys, " << rep.skippedFiles << " torn file(s) skipped)\n";

  const auto image = dump(*map);
  std::set<Value> got;
  for (const auto& [k, v] : image) got.insert(v);
  if (image.size() != expect.size() || got != expect) {
    std::cerr << "FAIL: restored " << image.size() << " keys / "
              << got.size() << " distinct tokens, oplog has "
              << expect.size() << "\n";
    return 1;
  }
  std::cout << "PASS: key conservation holds (" << expect.size()
            << " tokens)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  if (cli.flag("crash-run")) return crashRun(cli);
  if (cli.flag("crash-verify")) return crashVerify(cli);

  const int threads = static_cast<int>(cli.integer("threads", 4));
  const auto keys = cli.integer("keys", 20'000);
  const auto windowMs = cli.integer("window-ms", 400);
  const int reps = static_cast<int>(cli.integer("reps", 3));
  const std::string dir = cli.str("dir", "ckpt_bench_dir");

  bench::JsonReport json("ckpt");
  json.meta()
      .set("threads", threads)
      .set("keys", keys)
      .set("window_ms", windowMs)
      .set("reps", reps)
      .set("shards", 4)
      .set("routing_slots", 64)
      .set("dirty_slot_percent", 10)
      .set("hw_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()));

  bench::Table table({"rep", "base_ops/s", "stream_ops/s", "dip", "full_B",
                      "incr_B", "reused", "restore_ms", "exact"});

  for (int rep = 0; rep < reps; ++rep) {
    const std::string repDir = dir + "/rep" + std::to_string(rep);
    std::filesystem::remove_all(repDir);

    shard::MaintenanceScheduler scheduler;
    shard::ShardedMapConfig cfg;
    cfg.shards = 4;
    cfg.scheduler = &scheduler;
    shard::ShardedMap map(cfg);
    Movers movers(map, threads, keys);

    // Phase A: writers alone.
    const std::uint64_t a0ops = movers.ops();
    const std::uint64_t a0 = nowNs();
    std::this_thread::sleep_for(std::chrono::milliseconds(windowMs));
    const double baseline = opsPerSec(movers.ops() - a0ops, nowNs() - a0);

    // Phase B: writers while full checkpoints stream back-to-back.
    ckpt::CheckpointConfig ccfg;
    ccfg.dir = repDir;
    ckpt::CheckpointWriter writer(map, ccfg);
    const std::uint64_t b0ops = movers.ops();
    const std::uint64_t b0 = nowNs();
    const std::uint64_t bEnd =
        b0 + static_cast<std::uint64_t>(windowMs) * 1'000'000ULL;
    std::uint64_t streamedKeys = 0;
    std::uint64_t streamedNs = 0;
    int streams = 0;
    bool forced = false;
    int rounds = 0;
    while (nowNs() < bEnd) {
      const auto r = writer.full();
      if (!r.ok) {
        std::cerr << "checkpoint failed: " << r.error << "\n";
        return 1;
      }
      streamedKeys += r.keys;
      streamedNs += r.streamNs;
      forced = forced || r.forcedCut;
      rounds = std::max(rounds, r.rounds);
      ++streams;
    }
    const double stream = opsPerSec(movers.ops() - b0ops, nowNs() - b0);
    const double dip = baseline > 0 ? stream / baseline : 0.0;

    // Phase C: quiet full image, slot-clustered dirtying, incremental.
    movers.stopAndJoin();
    const auto fullRes = writer.full();
    if (!fullRes.ok) {
      std::cerr << "full checkpoint failed: " << fullRes.error << "\n";
      return 1;
    }
    const int dirtySlots = map.routingSlots() / 10;
    {
      // Re-write ~10% of the slots' keys (erase + insert keeps the count
      // invariant the restore gate checks).
      const auto image = dump(map);
      for (const auto& [k, v] : image) {
        if (static_cast<int>(map.slotOfKey(k)) < dirtySlots) {
          map.erase(k);
          map.insert(k, v + 1);
        }
      }
    }
    const auto incr = writer.incremental();
    if (!incr.ok) {
      std::cerr << "incremental checkpoint failed: " << incr.error << "\n";
      return 1;
    }

    // Phase D: restore + verification.
    int badFiles = 0;
    const auto newest = ckpt::newestValidCheckpoint(repDir, &badFiles);
    const bool checksumsOk =
        newest.has_value() && *newest == incr.fileId && badFiles == 0;
    shard::MaintenanceScheduler scheduler2;
    ckpt::RestoreOptions ropt;
    ropt.mapConfig.scheduler = &scheduler2;
    ckpt::RestoreReport rrep;
    const auto restored = ckpt::restore(repDir, ropt, rrep);
    const bool exact =
        restored != nullptr && rrep.ok && dump(*restored) == dump(map);

    json.addRecord()
        .set("rep", rep)
        .set("baseline_ops_per_s", baseline)
        .set("stream_ops_per_s", stream)
        .set("dip_ratio", dip)
        .set("streams", streams)
        .set("writer_keys_per_s", opsPerSec(streamedKeys, streamedNs))
        .set("full_rounds", rounds)
        .set("forced_cut", forced)
        .set("full_bytes", fullRes.bytesWritten)
        .set("incr_bytes", incr.bytesWritten)
        .set("incr_fresh_segments", incr.freshSegments)
        .set("incr_reused_segments", incr.reusedSegments)
        .set("restore_ms",
             static_cast<double>(rrep.restoreNs) / 1e6)
        .set("restore_keys", rrep.keys)
        .set("roundtrip_exact", exact)
        .set("checksums_ok", checksumsOk);
    table.addRow({bench::Table::num(rep), bench::Table::num(baseline, 0),
                  bench::Table::num(stream, 0), bench::Table::num(dip, 3),
                  bench::Table::num(fullRes.bytesWritten),
                  bench::Table::num(incr.bytesWritten),
                  bench::Table::num(incr.reusedSegments),
                  bench::Table::num(
                      static_cast<double>(rrep.restoreNs) / 1e6, 2),
                  exact ? "yes" : "NO"});
  }

  table.print();
  if (!json.writeFile(cli.jsonPath())) return 1;
  return 0;
}
