// Figure 4 — Portability of the speculation-friendly tree to other TM
// algorithms: (left) the E-STM-equivalent elastic mode on a 2^16-sized set,
// (right) TinySTM-ETL (eager acquirement).
//
// Shape to reproduce: the SFtree ordering over RBtree/AVLtree holds under
// both TM configurations — the benefit is independent of the TM algorithm.
#include <cstdio>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

void runPanel(const char* title, stm::LockMode lockMode, stm::TxKind txKind,
              std::int64_t sizeLog, const std::vector<int>& threadCounts,
              int durationMs, bench::JsonReport& json,
              stm::TmBackend backend = stm::TmBackend::Orec) {
  const std::vector<trees::MapKind> kinds = {
      trees::MapKind::RBTree, trees::MapKind::SFTree, trees::MapKind::AVLTree};
  std::printf("\nFigure 4 [%s] throughput (ops/us), 10%% updates, set size "
              "2^%lld\n",
              title, static_cast<long long>(sizeLog));
  auto cfg0 = stm::defaultDomain().config();
  cfg0.lockMode = lockMode;
  cfg0.backend = backend;
  stm::defaultDomain().setConfig(cfg0);
  std::vector<std::string> header{"threads"};
  for (const auto kind : kinds) header.push_back(trees::mapKindName(kind));
  bench::Table table(header);
  for (const int threads : threadCounts) {
    std::vector<std::string> row{bench::Table::num(threads)};
    for (const auto kind : kinds) {
      bench::RunConfig cfg;
      cfg.initialSize = std::int64_t{1} << sizeLog;
      cfg.workload.keyRange = cfg.initialSize * 2;
      cfg.workload.updatePercent = 10.0;
      cfg.threads = threads;
      cfg.durationMs = durationMs;
      auto map = trees::makeMap(kind, txKind);
      bench::populate(*map, cfg);
      const auto result = bench::runThroughput(*map, cfg);
      row.push_back(bench::Table::num(result.opsPerMicrosecond()));
      json.addRecord()
          .set("panel", title)
          .set("tree", trees::mapKindName(kind))
          .set("threads", threads)
          .set("size_log", sizeLog)
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("abort_ratio", result.stm.abortRatio());
    }
    table.addRow(row);
  }
  table.print();
  cfg0.lockMode = stm::LockMode::Lazy;
  cfg0.backend = stm::TmBackend::Orec;
  stm::defaultDomain().setConfig(cfg0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const auto threadCounts = cli.intList("threads", {1, 2, 4});
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 150));
  // The paper uses a 2^16 set for the E-STM panel; default to 2^13 at
  // container scale (override with --estm-size-log=16).
  const auto estmSizeLog = cli.integer("estm-size-log", 13);
  const auto etlSizeLog = cli.integer("etl-size-log", 12);

  bench::JsonReport json("fig4_portability");
  json.meta().set("duration_ms", durationMs);

  runPanel("E-STM (elastic transactions)", stm::LockMode::Lazy,
           stm::TxKind::Elastic, estmSizeLog, threadCounts, durationMs, json);
  runPanel("TinySTM-ETL (eager acquirement)", stm::LockMode::Eager,
           stm::TxKind::Normal, etlSizeLog, threadCounts, durationMs, json);
  // Beyond the paper: a third, metadata-free TM design (NOrec) — the
  // ordering between the trees should be preserved here as well.
  runPanel("NOrec (value-based validation)", stm::LockMode::Lazy,
           stm::TxKind::Normal, etlSizeLog, threadCounts, durationMs, json,
           stm::TmBackend::NOrec);
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
