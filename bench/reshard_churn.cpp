// Re-shard churn — dynamic re-sharding vs static sharding on a skewed
// (hot-slot) workload, plus the throughput dip while a forced split->merge
// cycle migrates keys under live traffic.
//
// Scenario: hot-percent of all operations target keys routed to the slots
// initially owned by shard 0 (a hot tenant/partition — per-key hashing
// means a hot *range* spreads on its own, but a hot slot group does not).
// The static configuration serves that skew from one tree/domain forever;
// the dynamic configuration runs a ReshardController during warmup, which
// splits the hot shard (spreading its slots over fresh trees/domains) and
// merges the idle ones, converging back to the same total shard count.
//
// Reported per mode (static | dynamic), measured over identical workloads:
//   * ops/us                — end-to-end throughput;
//   * max_update_share      — the hottest shard's fraction of update
//                             traffic: the skew the topology failed (static)
//                             or managed (dynamic) to absorb. This is the
//                             deterministic gate metric: on boxes with
//                             enough cores the absorbed skew turns into
//                             throughput, on a single core it cannot
//                             (there is no parallelism to unlock), so the
//                             schema checker gates throughput only on
//                             multi-core runs — same rationale as the
//                             maintpath gate's visits-per-update proxy;
//   * migration dip         — windowed throughput while one forced
//                             split->merge cycle runs mid-measurement,
//                             as a fraction of the steady-state mean.
//
//   reshard_churn --threads=4 --updates=50 --hot-percent=95 --shards=4 \
//                 --size-log=15 --duration-ms=1200 --warmup-ms=1000 \
//                 --json=BENCH_reshard.json
#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench_core/cli.hpp"
#include "bench_core/report.hpp"
#include "bench_core/rng.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/reshard.hpp"
#include "shard/sharded_map.hpp"

namespace bench = sftree::bench;
namespace shard = sftree::shard;
using sftree::Key;
using sftree::bench::Rng;
using Clock = std::chrono::steady_clock;

namespace {

struct PhaseResult {
  double opsPerUs = 0;
  double abortRatio = 0;
  double maxUpdateShare = 0;
  int shardCount = 0;
  double steadyOpsPerUs = 0;
  double migrationMinOpsPerUs = 0;
  double migrationDipRatio = 1.0;
  bool keysConserved = false;
  std::uint64_t ctlSplits = 0;
  std::uint64_t ctlMerges = 0;
  shard::ReshardStats reshard;
};

struct Workload {
  std::vector<Key> hot;
  std::vector<Key> cold;
  int hotPercent;
  int updatePercent;
};

struct alignas(64) OpCounter {
  std::atomic<std::uint64_t> n{0};
};

// Interval update share of the hottest shard, from id-keyed tick deltas
// (indexes shift under splits/merges; a transient tree's ticks drop out,
// which only *understates* the skew the gate wants to see).
double maxShare(const std::vector<shard::ShardLoadSample>& before,
                const std::vector<shard::ShardLoadSample>& after) {
  std::map<const void*, std::uint64_t> base;
  for (const auto& s : before) base[s.id] = s.updateTicks;
  std::uint64_t mx = 0, sum = 0;
  for (const auto& s : after) {
    const auto it = base.find(s.id);
    const std::uint64_t prev = it == base.end() ? 0 : it->second;
    const std::uint64_t d = s.updateTicks >= prev ? s.updateTicks - prev : 0;
    mx = std::max(mx, d);
    sum += d;
  }
  return sum == 0 ? 0.0 : static_cast<double>(mx) / static_cast<double>(sum);
}

PhaseResult runPhase(bool dynamic, const Workload& wl, int threads,
                     int shards, int slots, int warmupMs, int durationMs,
                     int windowMs) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = shards;
  cfg.routingSlots = slots;
  cfg.scheduler = &scheduler;
  cfg.domainMode = shard::DomainMode::PerShard;
  shard::ShardedMap map(cfg);

  for (std::size_t i = 0; i < wl.hot.size(); i += 2) map.insert(wl.hot[i], 1);
  for (std::size_t i = 0; i < wl.cold.size(); i += 2) {
    map.insert(wl.cold[i], 1);
  }

  std::atomic<bool> stop{false};
  std::vector<OpCounter> ops(static_cast<std::size_t>(threads));
  std::barrier sync(threads + 1);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0x9000 + static_cast<std::uint64_t>(t));
      sync.arrive_and_wait();
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& ks =
            rng.nextBounded(100) < static_cast<std::uint64_t>(wl.hotPercent)
                ? wl.hot
                : wl.cold;
        const Key k = ks[rng.nextBounded(ks.size())];
        const auto r = rng.nextBounded(100);
        if (r < static_cast<std::uint64_t>(wl.updatePercent) / 2) {
          map.insert(k, k);
        } else if (r < static_cast<std::uint64_t>(wl.updatePercent)) {
          map.erase(k);
        } else {
          map.contains(k);
        }
        // Batch the shared-counter bump: one RMW per 32 ops.
        if ((++local & 31) == 0) {
          ops[static_cast<std::size_t>(t)].n.fetch_add(
              32, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto sumOps = [&] {
    std::uint64_t s = 0;
    for (const auto& c : ops) s += c.n.load(std::memory_order_relaxed);
    return s;
  };

  sync.arrive_and_wait();

  // --- warmup: the dynamic mode adapts here ---------------------------------
  shard::ReshardControllerConfig rcfg;
  rcfg.minShards = shards;      // merge only to undo a split's +1
  rcfg.maxShards = shards + 1;  // equal-total-shards comparison
  rcfg.splitFactor = 1.5;
  rcfg.mergeFactor = 0.75;
  rcfg.minOpsPerSample = 512;
  rcfg.samplePeriod = std::chrono::milliseconds(50);
  shard::ReshardController ctl(map, rcfg);
  if (dynamic) ctl.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(warmupMs));
  if (dynamic) {
    ctl.stop();
    // Settle back to the static shard count if warmup ended mid-cycle.
    while (map.shardCount() > shards) {
      const auto ls = map.loadSamples();
      // Merge the two lowest-traffic shards.
      std::vector<shard::ShardLoadSample> s(ls);
      std::sort(s.begin(), s.end(), [](const auto& a, const auto& b) {
        return a.updateTicks < b.updateTicks;
      });
      if (!map.mergeShards(s[0].index, s[1].index)) break;
    }
  }

  // --- measurement ----------------------------------------------------------
  const auto samplesBefore = map.loadSamples();
  const auto stmBefore = map.aggregatedStats().stm;

  std::vector<double> windowOps;
  std::vector<std::uint8_t> windowInMigration;
  std::atomic<bool> migrating{false};
  // Sticky per-window bit: a forced cycle that starts AND finishes between
  // two window boundaries must still label that window as migration, or
  // the dip gate would bind on nothing while the real dip folds into the
  // steady-state mean it is compared against.
  std::atomic<bool> migratedThisWindow{false};
  std::thread sampler([&] {
    const auto t0 = Clock::now();
    std::uint64_t prev = sumOps();
    auto prevT = t0;
    while (Clock::now() - t0 < std::chrono::milliseconds(durationMs)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(windowMs));
      const auto now = Clock::now();
      const std::uint64_t cur = sumOps();
      const double sec = std::chrono::duration<double>(now - prevT).count();
      windowOps.push_back(static_cast<double>(cur - prev) / (sec * 1e6));
      const bool m = migratedThisWindow.exchange(false) ||
                     migrating.load(std::memory_order_relaxed);
      windowInMigration.push_back(m ? 1 : 0);
      prev = cur;
      prevT = now;
    }
  });

  // Forced split->merge cycle mid-measurement (dynamic mode only — static
  // never re-shards, so its migration fields are reported as the steady
  // value / ratio 1.0): the dip the bench exists to bound. The dynamic
  // mode migrates real keys; its hottest shard still carries the largest
  // slice.
  PhaseResult out;
  if (dynamic) {
    std::this_thread::sleep_for(std::chrono::milliseconds(durationMs / 3));
    const auto ls = map.loadSamples();
    int hottest = 0;
    std::uint64_t best = 0;
    for (const auto& s : ls) {
      if (s.updateTicks >= best) {
        best = s.updateTicks;
        hottest = s.index;
      }
    }
    migrating.store(true, std::memory_order_relaxed);
    migratedThisWindow.store(true, std::memory_order_relaxed);
    const int fresh = map.splitShard(hottest);
    if (fresh >= 0) map.mergeShards(fresh, hottest);
    migrating.store(false, std::memory_order_relaxed);
  }

  sampler.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : workers) th.join();

  const auto samplesAfter = map.loadSamples();
  const auto stmAfter = map.aggregatedStats().stm;

  double steadySum = 0, steadyN = 0, migMin = -1;
  double totalSum = 0;
  for (std::size_t i = 0; i < windowOps.size(); ++i) {
    totalSum += windowOps[i];
    if (windowInMigration[i]) {
      migMin = migMin < 0 ? windowOps[i] : std::min(migMin, windowOps[i]);
    } else {
      steadySum += windowOps[i];
      ++steadyN;
    }
  }
  out.opsPerUs = windowOps.empty() ? 0 : totalSum / windowOps.size();
  out.steadyOpsPerUs = steadyN == 0 ? 0 : steadySum / steadyN;
  out.migrationMinOpsPerUs = migMin < 0 ? out.steadyOpsPerUs : migMin;
  out.migrationDipRatio = out.steadyOpsPerUs == 0
                              ? 1.0
                              : out.migrationMinOpsPerUs / out.steadyOpsPerUs;
  out.maxUpdateShare = maxShare(samplesBefore, samplesAfter);
  out.shardCount = map.shardCount();
  const std::uint64_t commits = stmAfter.commits - stmBefore.commits;
  const std::uint64_t aborts = stmAfter.aborts - stmBefore.aborts;
  out.abortRatio = (commits + aborts) == 0
                       ? 0.0
                       : static_cast<double>(aborts) /
                             static_cast<double>(commits + aborts);
  const auto ctlStats = ctl.stats();
  out.ctlSplits = ctlStats.splits;
  out.ctlMerges = ctlStats.merges;
  out.reshard = map.reshardStats();

  map.quiesce();
  out.keysConserved =
      map.size() == static_cast<std::size_t>(map.sizeEstimate());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const int threads = static_cast<int>(cli.integer("threads", 4));
  const int shards = static_cast<int>(cli.integer("shards", 4));
  const int slots = static_cast<int>(cli.integer("slots", 64));
  const int updatePct = static_cast<int>(cli.integer("updates", 50));
  const int hotPct = static_cast<int>(cli.integer("hot-percent", 95));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 1200));
  const int warmupMs = static_cast<int>(cli.integer("warmup-ms", 1000));
  const int windowMs = static_cast<int>(cli.integer("window-ms", 50));
  const auto sizeLog = cli.integer("size-log", 15);
  const unsigned hw = std::thread::hardware_concurrency();

  // Hot keys = keys routed to the slots initially owned by shard 0. The
  // routing is deterministic for a given (shards, slots), so a probe map
  // classifies the key universe up front.
  Workload wl;
  wl.hotPercent = hotPct;
  wl.updatePercent = updatePct;
  {
    shard::ShardedMapConfig probeCfg;
    probeCfg.shards = shards;
    probeCfg.routingSlots = slots;
    probeCfg.tree.startMaintenance = false;
    shard::ShardedMap probe(probeCfg);
    const Key range = Key{1} << sizeLog;
    for (Key k = 0; k < range; ++k) {
      (probe.shardIndexFor(k) == 0 ? wl.hot : wl.cold).push_back(k);
    }
  }

  std::printf(
      "Re-shard churn: %d%% of ops on shard 0's initial slots (%zu hot / %zu "
      "cold keys), %d threads, %d%% updates, %d+1 shard budget, hw=%u\n",
      hotPct, wl.hot.size(), wl.cold.size(), threads, updatePct, shards, hw);

  bench::JsonReport json("reshard_churn");
  json.meta()
      .set("threads", threads)
      .set("shards", shards)
      .set("routing_slots", slots)
      .set("update_percent", updatePct)
      .set("hot_percent", hotPct)
      .set("duration_ms", durationMs)
      .set("warmup_ms", warmupMs)
      .set("window_ms", windowMs)
      .set("size_log", static_cast<std::int64_t>(sizeLog))
      .set("hw_concurrency", static_cast<std::int64_t>(hw));

  bench::Table table({"mode", "ops/us", "abort%", "max-share", "shards",
                      "splits", "merges", "keys-migrated", "dip-ratio",
                      "keys-ok"});
  PhaseResult results[2];
  const char* names[2] = {"static", "dynamic"};
  for (int d = 0; d < 2; ++d) {
    results[d] = runPhase(d == 1, wl, threads, shards, slots, warmupMs,
                          durationMs, windowMs);
    const PhaseResult& r = results[d];
    table.addRow({names[d], bench::Table::num(r.opsPerUs, 3),
                  bench::Table::num(100.0 * r.abortRatio),
                  bench::Table::num(r.maxUpdateShare),
                  bench::Table::num(r.shardCount),
                  bench::Table::num(r.ctlSplits + (d == 1 ? 1 : 0)),
                  bench::Table::num(r.reshard.merges),
                  bench::Table::num(r.reshard.keysMigrated),
                  bench::Table::num(r.migrationDipRatio),
                  r.keysConserved ? "yes" : "NO"});
    json.addRecord()
        .set("mode", names[d])
        .set("ops_per_us", r.opsPerUs)
        .set("steady_ops_per_us", r.steadyOpsPerUs)
        .set("migration_min_ops_per_us", r.migrationMinOpsPerUs)
        .set("migration_dip_ratio", r.migrationDipRatio)
        .set("abort_ratio", r.abortRatio)
        .set("max_update_share", r.maxUpdateShare)
        .set("shard_count", r.shardCount)
        .set("ctl_splits", r.ctlSplits)
        .set("ctl_merges", r.ctlMerges)
        .set("splits", r.reshard.splits)
        .set("merges", r.reshard.merges)
        .set("keys_migrated", r.reshard.keysMigrated)
        .set("migration_batches", r.reshard.migrationBatches)
        .set("retired_arena_bytes", r.reshard.retiredArenaBytes)
        .set("keys_conserved", r.keysConserved);
  }
  table.print();
  const double speedup = results[0].opsPerUs == 0
                             ? 0
                             : results[1].opsPerUs / results[0].opsPerUs;
  const double skewAbsorbed =
      results[1].maxUpdateShare == 0
          ? 0
          : results[0].maxUpdateShare / results[1].maxUpdateShare;
  std::printf("dynamic/static throughput: %.2fx | skew absorbed "
              "(max-share ratio): %.2fx | migration dip ratio: %.2f\n",
              speedup, skewAbsorbed, results[1].migrationDipRatio);
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
