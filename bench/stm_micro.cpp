// STM primitive costs (google-benchmark): not a paper figure, but the
// ablation behind §3.3's claim that unit loads are cheaper than
// transactional reads and that read-set growth is what makes long
// traversals expensive.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stats_bridge.hpp"
#include "stm/stm.hpp"

namespace obs = sftree::obs;
namespace stm = sftree::stm;

namespace {

void BM_EmptyTransaction(benchmark::State& state) {
  for (auto _ : state) {
    stm::atomically([](stm::Tx&) {});
  }
}
BENCHMARK(BM_EmptyTransaction);

// The read-only transaction path the trees' contains/get/countRange use:
// TxKind::ReadOnly — per-read validation against a fixed snapshot, no
// read-set logging. Also run at 8 threads (the paper-scale read-dominated
// configuration) to exercise concurrent snapshot reads.
void BM_ReadOnlyTransaction(benchmark::State& state) {
  const auto reads = state.range(0);
  static std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  if (state.thread_index() == 0) {
    fields.clear();
    for (std::int64_t i = 0; i < reads; ++i) {
      fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(i));
    }
  }
  for (auto _ : state) {
    std::int64_t sum = stm::atomically(stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
      std::int64_t s = 0;
      for (auto& f : fields) s += f->read(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * reads);
}
BENCHMARK(BM_ReadOnlyTransaction)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_ReadOnlyTransaction)->Arg(512)->Threads(8)->UseRealTime();

// The pre-RO read path (read-set logging, TxKind::Normal): what every read
// paid before the read-path overhaul; kept for the delta.
void BM_LoggedReadTransaction(benchmark::State& state) {
  const auto reads = state.range(0);
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (std::int64_t i = 0; i < reads; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(i));
  }
  for (auto _ : state) {
    std::int64_t sum = stm::atomically([&](stm::Tx& tx) {
      std::int64_t s = 0;
      for (auto& f : fields) s += f->read(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * reads);
}
BENCHMARK(BM_LoggedReadTransaction)->Arg(8)->Arg(64)->Arg(512);

// Read-after-write probes against a large write set: the hashed write-set
// index's O(1) lookup vs the old O(W) scan.
void BM_WriteSetLookup(benchmark::State& state) {
  const auto writes = state.range(0);
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (std::int64_t i = 0; i < writes; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(0));
  }
  for (auto _ : state) {
    std::int64_t sum = stm::atomically([&](stm::Tx& tx) {
      for (auto& f : fields) f->write(tx, 7);
      std::int64_t s = 0;
      for (auto& f : fields) s += f->read(tx);  // all served by the write set
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * writes);
}
BENCHMARK(BM_WriteSetLookup)->Arg(8)->Arg(64)->Arg(512);

void BM_UreadTransaction(benchmark::State& state) {
  const auto reads = state.range(0);
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (std::int64_t i = 0; i < reads; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(i));
  }
  for (auto _ : state) {
    std::int64_t sum = stm::atomically([&](stm::Tx& tx) {
      std::int64_t s = 0;
      for (auto& f : fields) s += f->uread(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * reads);
}
BENCHMARK(BM_UreadTransaction)->Arg(8)->Arg(64)->Arg(512);

void BM_ElasticTraversal(benchmark::State& state) {
  const auto reads = state.range(0);
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (std::int64_t i = 0; i < reads; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(i));
  }
  for (auto _ : state) {
    std::int64_t sum = stm::atomically(stm::TxKind::Elastic, [&](stm::Tx& tx) {
      std::int64_t s = 0;
      for (auto& f : fields) s += f->read(tx);
      return s;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * reads);
}
BENCHMARK(BM_ElasticTraversal)->Arg(8)->Arg(64)->Arg(512);

void BM_WriteCommit(benchmark::State& state) {
  const auto writes = state.range(0);
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (std::int64_t i = 0; i < writes; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(0));
  }
  std::int64_t v = 0;
  for (auto _ : state) {
    ++v;
    stm::atomically([&](stm::Tx& tx) {
      for (auto& f : fields) f->write(tx, v);
    });
  }
  state.SetItemsProcessed(state.iterations() * writes);
}
BENCHMARK(BM_WriteCommit)->Arg(1)->Arg(8)->Arg(64);

void BM_WriteCommitEager(benchmark::State& state) {
  stm::defaultDomain().setLockMode(stm::LockMode::Eager);
  const auto writes = state.range(0);
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (std::int64_t i = 0; i < writes; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(0));
  }
  std::int64_t v = 0;
  for (auto _ : state) {
    ++v;
    stm::atomically([&](stm::Tx& tx) {
      for (auto& f : fields) f->write(tx, v);
    });
  }
  state.SetItemsProcessed(state.iterations() * writes);
  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
}
BENCHMARK(BM_WriteCommitEager)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): accept the repo-wide
// --json=<path> convention and map it onto google-benchmark's JSON
// reporter, so every bench binary shares one machine-readable interface.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string outFlag;
  std::string formatFlag = "--benchmark_out_format=json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--json=";
    if (arg.rfind(prefix, 0) == 0) {
      outFlag = "--benchmark_out=" + arg.substr(prefix.size());
      args.erase(args.begin() + i);
      args.push_back(outFlag.data());
      args.push_back(formatFlag.data());
      break;
    }
  }
  int benchArgc = static_cast<int>(args.size());
  benchmark::Initialize(&benchArgc, args.data());
  if (benchmark::ReportUnrecognizedArguments(benchArgc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Whole-run STM breakdown over the default domain via the shared
  // MetricsRegistry text exporter: commits with the RO/RW split, the
  // per-cause abort taxonomy, write-set lookup costs, and the tx latency
  // histograms — the same names the JSON/Prometheus exporters would emit,
  // with no bench-local formatting to drift out of date.
  obs::MetricsRegistry registry;
  const auto reg =
      obs::registerDomainMetrics(registry, "stm", stm::defaultDomain());
  std::printf("\nSTM breakdown (default domain):\n%s",
              registry.renderText().c_str());
  return 0;
}
