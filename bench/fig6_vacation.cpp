// Figure 6 — The STAMP vacation travel-reservation application built on the
// red-black tree, the optimized speculation-friendly tree, and the
// no-restructuring tree: execution time and speedup over bare sequential
// code, under high and low contention, with 1x/8x/16x the base transaction
// count.
//
// Shape to reproduce: vacation is always at least as fast on the Opt-SFtree
// as on the RBtree, the gap widening with more transactions (more
// contention); the NRtree is comparable to the SFtree.
#include <cstdio>

#include "bench_core/cli.hpp"
#include "bench_core/report.hpp"
#include "stm/runtime.hpp"
#include "vacation/vacation_app.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;
namespace vac = sftree::vacation;

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const auto threadCounts = cli.intList("threads", {1, 2, 4});
  const auto multipliers = cli.intList("multipliers", {1, 8, 16});
  const auto baseTxns = cli.integer("transactions", 4096);
  const auto relations = cli.integer("relations", 1 << 10);

  const std::vector<trees::MapKind> kinds = {
      trees::MapKind::RBTree, trees::MapKind::OptSFTree,
      trees::MapKind::NRTree};

  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);

  bench::JsonReport json("fig6_vacation");
  json.meta()
      .set("base_transactions", baseTxns)
      .set("relations", relations);

  for (const bool high : {true, false}) {
    for (const int mult : multipliers) {
      const std::int64_t txns = baseTxns * mult;
      vac::ClientConfig client =
          high ? vac::highContentionConfig() : vac::lowContentionConfig();
      client.relations = relations;

      // Bare sequential baseline: one thread, unsynchronized std::map
      // directories (see MapKind::SeqSTL).
      vac::VacationConfig seqCfg;
      seqCfg.client = client;
      seqCfg.tableKind = trees::MapKind::SeqSTL;
      seqCfg.threads = 1;
      seqCfg.transactions = txns;
      const double seqSeconds = vac::runVacation(seqCfg).seconds;

      std::printf("\nFigure 6 [vacation %s contention, %dx transactions "
                  "(%lld), %lld relations] — seconds (speedup over "
                  "sequential %.2fs)\n",
                  high ? "high" : "low", mult, static_cast<long long>(txns),
                  static_cast<long long>(relations), seqSeconds);

      std::vector<std::string> header{"threads"};
      for (const auto kind : kinds) header.push_back(trees::mapKindName(kind));
      bench::Table table(header);
      for (const int threads : threadCounts) {
        std::vector<std::string> row{bench::Table::num(threads)};
        for (const auto kind : kinds) {
          vac::VacationConfig cfg;
          cfg.client = client;
          cfg.tableKind = kind;
          cfg.threads = threads;
          cfg.transactions = txns;
          const auto result = vac::runVacation(cfg);
          if (!result.consistent) {
            std::fprintf(stderr, "CONSISTENCY FAILURE: %s\n",
                         result.consistencyError.c_str());
            return 1;
          }
          const double speedup = seqSeconds / result.seconds;
          row.push_back(bench::Table::num(result.seconds, 2) + "s (" +
                        bench::Table::num(speedup, 2) + "x)");
          json.addRecord()
              .set("contention", high ? "high" : "low")
              .set("multiplier", mult)
              .set("transactions", txns)
              .set("tree", trees::mapKindName(kind))
              .set("threads", threads)
              .set("seconds", result.seconds)
              .set("sequential_seconds", seqSeconds)
              .set("speedup", speedup)
              .set("abort_ratio", result.stm.abortRatio());
        }
        table.addRow(row);
      }
      table.print();
    }
  }
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
