// Figure 5(a) — Relaxing the transaction vs relaxing the data structure:
// speedup-1 (%) over the plain red-black tree as the update ratio grows.
//
//   Elastic speedup     = RBtree on elastic transactions / RBtree on normal
//   SFtree speedup      = SFtree (portable)              / RBtree on normal
//   Opt SFtree speedup  = SFtree (optimized)             / RBtree on normal
//
// Paper result: elastic transactions buy ~15% on average, replacing the
// data structure buys ~22% — refactoring the structure beats refactoring
// the TM.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

double measure(trees::MapKind kind, stm::TxKind txKind, double updatePct,
               int threads, int durationMs, std::int64_t sizeLog) {
  bench::RunConfig cfg;
  cfg.initialSize = std::int64_t{1} << sizeLog;
  cfg.workload.keyRange = cfg.initialSize * 2;
  cfg.workload.updatePercent = updatePct;
  cfg.threads = threads;
  cfg.durationMs = durationMs;
  auto map = trees::makeMap(kind, txKind);
  bench::populate(*map, cfg);
  return bench::runThroughput(*map, cfg).opsPerMicrosecond();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const auto updates = cli.realList("updates", {10, 20, 30, 40});
  const int defaultThreads = std::clamp(
      static_cast<int>(std::thread::hardware_concurrency()), 1, 4);
  const int threads = static_cast<int>(cli.integer("threads", defaultThreads));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 200));
  const auto sizeLog = cli.integer("size-log", 12);

  std::printf("Figure 5(a): speedup-1 (%%) over RBtree/normal, %d threads\n",
              threads);
  bench::JsonReport json("fig5a_elastic");
  json.meta()
      .set("threads", threads)
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog);
  bench::Table table(
      {"update%", "Elastic speedup", "SFtree speedup", "Opt SFtree speedup"});
  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
  double sumElastic = 0, sumSf = 0, sumOpt = 0;
  for (const double u : updates) {
    const double base = measure(trees::MapKind::RBTree, stm::TxKind::Normal, u,
                                threads, durationMs, sizeLog);
    const double elastic = measure(trees::MapKind::RBTree,
                                   stm::TxKind::Elastic, u, threads,
                                   durationMs, sizeLog);
    const double sf = measure(trees::MapKind::SFTree, stm::TxKind::Normal, u,
                              threads, durationMs, sizeLog);
    const double opt = measure(trees::MapKind::OptSFTree, stm::TxKind::Normal,
                               u, threads, durationMs, sizeLog);
    const double se = 100.0 * (elastic / base - 1.0);
    const double ss = 100.0 * (sf / base - 1.0);
    const double so = 100.0 * (opt / base - 1.0);
    sumElastic += se;
    sumSf += ss;
    sumOpt += so;
    table.addRow({bench::Table::num(u, 0), bench::Table::num(se, 1),
                  bench::Table::num(ss, 1), bench::Table::num(so, 1)});
    json.addRecord()
        .set("update_percent", u)
        .set("rbtree_ops_per_us", base)
        .set("elastic_ops_per_us", elastic)
        .set("sftree_ops_per_us", sf)
        .set("opt_sftree_ops_per_us", opt)
        .set("elastic_speedup_percent", se)
        .set("sftree_speedup_percent", ss)
        .set("opt_sftree_speedup_percent", so);
  }
  table.print();
  const auto n = static_cast<double>(updates.size());
  std::printf("\naverages: elastic %.1f%%, SFtree %.1f%%, Opt SFtree %.1f%% "
              "(paper: ~15%% elastic vs ~22%% SF)\n",
              sumElastic / n, sumSf / n, sumOpt / n);
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
