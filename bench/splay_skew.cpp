// Splay-under-skew gate: access-frequency splaying (docs/splaying.md) must
// pay where it is designed to pay and cost nothing where it is not.
//
//   * Zipf(0.99) fig3-style mix (10% updates): splaying on vs off. The win
//     is either throughput or — the deterministic proxy gated by
//     scripts/check_bench_schema.py on any core count — the mean access
//     depth of the hot set after convergence.
//   * Uniform mix: on vs off must be parity. Uniform traffic spreads ticks
//     below the heat floor, so the hysteresis keeps the tree churn-free and
//     the two arms should be indistinguishable.
//   * Pure-read uniform: on vs off isolates the read-path cost of the
//     access-tick sampling (a thread-local counter plus a 1-in-2^shift
//     commit-time queue publish) — the <= 2% overhead budget.
//
// Unlike obs_overhead, the arms cannot share a tree: the treatment *is* the
// tree shape. Every (arm, rep) gets a fresh tree, a full-length warmup run
// (which doubles as convergence time for the splayed arms), then the timed
// run; arms interleave inside each rep so machine drift hits all of them
// equally, and the report compares per-arm minima of ns/op (interference is
// additive; the fastest rep estimates intrinsic cost).
//
// The depth proxy runs single-threaded with a fixed op count and a fixed
// seed: the same operation stream hits the splay-on and splay-off trees,
// the trees quiesce, and a plain walk measures the root-path length a
// lookup would traverse for the top Zipf ranks (weighted by their Zipf
// mass) and for the whole key population. Wall-clock throughput on shared
// runners is noisy; the converged shape of the tree is not.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "bench_core/workload.hpp"
#include "trees/map_interface.hpp"
#include "trees/sftree.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

// Thin harness adapter over a directly-constructed SFTree (the bench needs
// the concrete tree for the splay config and the quiesced depth walks).
class TreeRef final : public trees::ITransactionalMap {
 public:
  explicit TreeRef(trees::SFTree& t) : t_(t) {}

  bool insert(sftree::Key k, sftree::Value v) override {
    return t_.insert(k, v);
  }
  bool erase(sftree::Key k) override { return t_.erase(k); }
  bool contains(sftree::Key k) override { return t_.contains(k); }
  std::optional<sftree::Value> get(sftree::Key k) override {
    return t_.get(k);
  }
  bool move(sftree::Key from, sftree::Key to) override {
    return t_.move(from, to);
  }
  bool insertTx(stm::Tx& tx, sftree::Key k, sftree::Value v) override {
    return t_.insertTx(tx, k, v);
  }
  bool eraseTx(stm::Tx& tx, sftree::Key k) override {
    return t_.eraseTx(tx, k);
  }
  bool containsTx(stm::Tx& tx, sftree::Key k) override {
    return t_.containsTx(tx, k);
  }
  std::optional<sftree::Value> getTx(stm::Tx& tx, sftree::Key k) override {
    return t_.getTx(tx, k);
  }
  std::size_t countRangeTx(stm::Tx& tx, sftree::Key lo,
                           sftree::Key hi) override {
    return t_.countRangeTx(tx, lo, hi);
  }
  std::size_t size() override { return t_.abstractSize(); }
  int height() override { return t_.height(); }
  std::vector<sftree::Key> keysInOrder() override {
    return t_.keysInOrder();
  }

 private:
  trees::SFTree& t_;
};

trees::SFTreeConfig treeConfig(bool splayOn, bool maintenance = true,
                               int sampleShift = -1) {
  trees::SFTreeConfig cfg;
  cfg.ops = trees::OpsVariant::Optimized;
  cfg.splay = splayOn ? trees::SplayPolicy::Aggressive
                      : trees::SplayPolicy::Off;
  cfg.startMaintenance = maintenance;
  if (sampleShift >= 0) {
    trees::SplayParams p = cfg.splayParams();
    p.sampleShift = static_cast<std::uint32_t>(sampleShift);
    cfg.splayParamsOverride = p;
  }
  return cfg;
}

// Root-path length a lookup for k traverses on the quiesced tree (depth of
// the node, or of its insertion point when absent — either way, the number
// of nodes a find() visits; comparable across arms by construction).
int accessDepth(trees::SFTree& t, sftree::Key k) {
  const trees::SFNode* n = t.rootForTest()->left.loadRelaxed();
  int d = 1;
  while (n != nullptr) {
    if (n->key == k) return d;
    n = (k < n->key) ? n->left.loadRelaxed() : n->right.loadRelaxed();
    ++d;
  }
  return d;
}

struct DepthSummary {
  double hotMean = 0.0;  // Zipf-mass-weighted mean over the top ranks
  int hotMax = 0;
  double popMean = 0.0;  // unweighted mean over every present key
};

DepthSummary measureDepths(trees::SFTree& t, const bench::ZipfKeys& zipf,
                           int hotRanks, double s) {
  DepthSummary out;
  double wsum = 0.0;
  for (int r = 0; r < hotRanks; ++r) {
    const double w = 1.0 / std::pow(static_cast<double>(r + 1), s);
    const int d = accessDepth(t, zipf.keyForRank(static_cast<std::uint64_t>(r)));
    out.hotMean += w * d;
    out.hotMax = std::max(out.hotMax, d);
    wsum += w;
  }
  if (wsum > 0.0) out.hotMean /= wsum;
  const auto keys = t.keysInOrder();
  for (const auto k : keys) out.popMean += accessDepth(t, k);
  if (!keys.empty()) out.popMean /= static_cast<double>(keys.size());
  return out;
}

double best(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double ratioOf(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.integer("reps", 3));
  const int threads = static_cast<int>(cli.integer("threads", 2));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 150));
  const auto sizeLog = cli.integer("size-log", 12);
  const double updatePercent = cli.real("update-percent", 10.0);
  const double zipfS = cli.real("zipf-s", 0.99);
  // Enough committed lookups that 1-in-2^sampleShift sampling still feeds
  // the hot set to convergence (the policy defaults sample 1-in-64; 300k
  // ops was tuned against 1-in-16 and leaves promotion visibly unfinished).
  const std::int64_t detOps = cli.integer("det-ops", 1000000);
  const int hotRanks = static_cast<int>(cli.integer("hot-ranks", 64));
  const int sampleShift = static_cast<int>(cli.integer("sample-shift", -1));

  bench::RunConfig base;
  base.initialSize = std::int64_t{1} << sizeLog;
  base.workload.keyRange = base.initialSize * 2;
  base.workload.updatePercent = updatePercent;
  base.threads = threads;
  base.durationMs = durationMs;

  bench::JsonReport json("splay_skew");
  json.meta()
      .set("reps", reps)
      .set("threads", threads)
      .set("hw_concurrency",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()))
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog)
      .set("update_percent", updatePercent)
      .set("zipf_s", zipfS)
      .set("det_ops", detOps)
      .set("hot_ranks", hotRanks);

  struct Arm {
    const char* name;
    bool zipf;
    bool splay;
    double update;
    bool maintenance;
  };
  // Arms 0..3: the fig3-style mix (maintenance running, the full system).
  // Arms 4..5: the pure-read overhead probe with maintenance *off* — it
  // isolates the read-path cost of the sampling itself (counter, 1-in-2^N
  // commit-time publish, dedup absorption in the queue); running the
  // consumer would measure CPU contention from the drain thread instead,
  // which the uniform-parity arms already cover with update traffic to
  // keep both sides' maintenance equally busy.
  const Arm kArms[] = {
      {"uniform_off", false, false, updatePercent, true},
      {"uniform_on", false, true, updatePercent, true},
      {"zipf_off", true, false, updatePercent, true},
      {"zipf_on", true, true, updatePercent, true},
      {"read_off", false, false, 0.0, false},
      {"read_on", false, true, 0.0, false},
  };
  constexpr int kArmCount = 6;
  std::vector<double> nsPerOp[kArmCount];

  for (int rep = 0; rep < reps; ++rep) {
    for (int a = 0; a < kArmCount; ++a) {
      const Arm& arm = kArms[a];
      bench::RunConfig cfg = base;
      cfg.workload.updatePercent = arm.update;
      cfg.workload.zipfS = arm.zipf ? zipfS : 0.0;
      trees::SFTree tree(treeConfig(arm.splay, arm.maintenance, sampleShift));
      TreeRef map(tree);
      bench::populate(map, cfg);
      // Full-length warmup: pages the tree in and, for the splayed arms,
      // converges the shape before anything is timed.
      (void)bench::runThroughput(map, cfg);
      const auto result = bench::runThroughput(map, cfg);
      const double ns =
          result.totalOps == 0
              ? 0.0
              : result.seconds * 1e9 / static_cast<double>(result.totalOps);
      nsPerOp[a].push_back(ns);
      json.addRecord()
          .set("arm", arm.name)
          .set("rep", rep)
          .set("ops", result.totalOps)
          .set("seconds", result.seconds)
          .set("ns_per_op", ns)
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("abort_ratio", result.stm.abortRatio());
    }
  }

  // Deterministic depth proxy: identical single-threaded Zipf op stream
  // into a splay-off and a splay-on tree, quiesce, walk.
  DepthSummary depth[2];
  std::uint64_t detSplaySteps = 0, detZigZigs = 0, detTicks = 0,
                detSkippedHot = 0;
  bench::WorkloadConfig detWl = base.workload;
  detWl.updatePercent = updatePercent;
  detWl.zipfS = zipfS;
  const bench::ZipfKeys zipf(detWl.keyRange, zipfS);
  for (int on = 0; on < 2; ++on) {
    trees::SFTree tree(treeConfig(on == 1));
    TreeRef map(tree);
    bench::RunConfig cfg = base;
    cfg.workload = detWl;
    bench::populate(map, cfg);
    bench::WorkloadGenerator gen(detWl, /*seed=*/base.seed + 7);
    for (std::int64_t i = 0; i < detOps; ++i) {
      const bench::Op op = gen.next();
      switch (op.type) {
        case bench::OpType::Contains: (void)tree.contains(op.key); break;
        case bench::OpType::Insert: (void)tree.insert(op.key, op.key); break;
        case bench::OpType::Remove: (void)tree.erase(op.key); break;
        case bench::OpType::Move: (void)tree.move(op.key, op.destKey); break;
      }
    }
    tree.stopMaintenance();
    tree.quiesceNow();
    depth[on] = measureDepths(tree, zipf, hotRanks, zipfS);
    if (on == 1) {
      const auto ms = tree.maintenanceStats();
      detSplaySteps = ms.splaySteps;
      detZigZigs = ms.splayZigZigs;
      detTicks = ms.accessTicksConsumed;
      detSkippedHot = ms.rebalanceSkippedHot;
    }
    json.addRecord()
        .set("arm", on == 1 ? "det_zipf_on" : "det_zipf_off")
        .set("rep", 0)
        .set("ops", static_cast<std::uint64_t>(detOps))
        .set("seconds", 0.0)
        .set("ns_per_op", 0.0)
        .set("ops_per_us", 0.0)
        .set("abort_ratio", 0.0)
        .set("hot_depth_mean", depth[on].hotMean)
        .set("hot_depth_max", depth[on].hotMax)
        .set("pop_depth_mean", depth[on].popMean);
  }

  // Ratios the schema checker gates on. ns-per-op ratios are off/on, so
  // > 1 means splaying-on is faster; the overhead ratio is on/off, so
  // > 1 means sampling costs something.
  const double zipfTputRatio = ratioOf(best(nsPerOp[2]), best(nsPerOp[3]));
  const double uniformParity = ratioOf(best(nsPerOp[0]), best(nsPerOp[1]));
  const double readOverhead = ratioOf(best(nsPerOp[5]), best(nsPerOp[4]));
  const double depthReduction = ratioOf(depth[0].hotMean, depth[1].hotMean);
  json.meta()
      .set("zipf_tput_ratio", zipfTputRatio)
      .set("uniform_parity_ratio", uniformParity)
      .set("read_overhead_ratio", readOverhead)
      .set("hot_depth_off", depth[0].hotMean)
      .set("hot_depth_on", depth[1].hotMean)
      .set("zipf_hot_depth_reduction", depthReduction)
      .set("pop_depth_off", depth[0].popMean)
      .set("pop_depth_on", depth[1].popMean)
      .set("det_splay_steps", detSplaySteps)
      .set("det_splay_zig_zigs", detZigZigs)
      .set("det_access_ticks", detTicks)
      .set("det_rebalance_skipped_hot", detSkippedHot);

  bench::Table table({"arm", "best ns/op"});
  for (int a = 0; a < kArmCount; ++a) {
    table.addRow({kArms[a].name, bench::Table::num(best(nsPerOp[a]))});
  }
  table.print();
  std::printf(
      "zipf on/off speedup: %.3fx | uniform parity: %.3f | read overhead: "
      "%.3fx\nhot-set depth: off %.2f on %.2f (%.2fx reduction) | splay "
      "steps %llu (zig-zig %llu)\n",
      zipfTputRatio, uniformParity, readOverhead, depth[0].hotMean,
      depth[1].hotMean, depthReduction,
      static_cast<unsigned long long>(detSplaySteps),
      static_cast<unsigned long long>(detZigZigs));

  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
