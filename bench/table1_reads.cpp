// Table 1 — Maximum number of transactional reads per operation on
// 2^12-sized balanced search trees as the update ratio increases.
//
// Paper row format:
//   Update            0%  10%  20%  30%  40%  50%
//   AVL tree          29  415  711 1008 1981 2081
//   Oracle red-black  31  573  965 1108 1484 1545
//   Speculation-friendly 29 75  123  120  144  180
//
// The count includes the reads of every aborted attempt plus the committed
// attempt's read set (operation brackets in stm::ThreadStats). We also add
// the Opt-SFtree row: the uread optimization of §3.3 keeps the bracket even
// flatter because traversal unit loads are not transactional reads.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const auto updates = cli.realList("updates", {0, 10, 20, 30, 40, 50});
  // The paper uses 48 threads on 48 cores; default to the hardware so the
  // application threads are not oversubscribed against the rotator thread.
  const int defaultThreads = std::clamp(
      static_cast<int>(std::thread::hardware_concurrency()), 1, 4);
  const int threads = static_cast<int>(cli.integer("threads", defaultThreads));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 250));
  const auto sizeLog = cli.integer("size-log", 12);

  std::printf(
      "Table 1: max transactional reads per operation (tree size 2^%lld, "
      "%d threads, TinySTM-CTL equivalent)\n",
      static_cast<long long>(sizeLog), threads);

  const std::vector<trees::MapKind> kinds = {
      trees::MapKind::AVLTree, trees::MapKind::RBTree, trees::MapKind::SFTree,
      trees::MapKind::OptSFTree};

  std::vector<std::string> header{"Update"};
  for (const double u : updates) header.push_back(bench::Table::num(u, 0) + "%");
  bench::Table table(header);

  bench::JsonReport json("table1_reads");
  json.meta()
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog)
      .set("threads", threads);

  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
  for (const auto kind : kinds) {
    std::vector<std::string> row{trees::mapKindName(kind)};
    for (const double u : updates) {
      bench::RunConfig cfg;
      cfg.initialSize = std::int64_t{1} << sizeLog;
      cfg.workload.keyRange = cfg.initialSize * 2;
      cfg.workload.updatePercent = u;
      cfg.threads = threads;
      cfg.durationMs = durationMs;
      auto map = trees::makeMap(kind);
      bench::populate(*map, cfg);
      const auto result = bench::runThroughput(*map, cfg);
      // max, as the paper reports, plus the mean in parentheses: on an
      // oversubscribed machine the max statistic is occasionally poisoned
      // by a single retry storm against the rotator thread.
      row.push_back(bench::Table::num(result.stm.maxOpReads) + " (" +
                    bench::Table::num(result.stm.meanOpReads(), 1) + ")");
      json.addRecord()
          .set("tree", trees::mapKindName(kind))
          .set("update_percent", u)
          .set("max_op_reads", result.stm.maxOpReads)
          .set("mean_op_reads", result.stm.meanOpReads())
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("ro_commits", result.stm.roCommits)
          .set("ro_snapshot_extensions", result.stm.roSnapshotExtensions);
    }
    table.addRow(row);
  }
  table.print();
  std::printf(
      "\nCells are max (mean) transactional reads per operation, retries "
      "included.\nShape to check against the paper: the coupled trees (AVL, "
      "RB) blow up by >10x\nfrom 0%% to 10%% updates; the "
      "speculation-friendly tree stays within a few x\n(judge by the mean "
      "when a single retry storm inflates a max cell).\n");
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
