// Figure 5(b) — Reusability: throughput of the optimized
// speculation-friendly tree on workloads with 90% read-only operations and
// 10% updates of which 1/5/10 percentage points are composed `move`
// operations (an atomic erase+insert built from the public interface).
//
// Shape to reproduce: throughput decreases as the share of moves grows,
// because a move protects more of the structure for longer than a simple
// insert or delete.
#include <cstdio>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const auto threadCounts = cli.intList("threads", {1, 2, 4});
  const auto movePcts = cli.realList("moves", {1, 5, 10});
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 200));
  const auto sizeLog = cli.integer("size-log", 12);

  std::printf("Figure 5(b): Opt SFtree, 10%% effective updates of which X%% "
              "are moves; throughput (ops/us)\n");
  std::vector<std::string> header{"threads"};
  for (const double m : movePcts) {
    header.push_back(bench::Table::num(m, 0) + "% move");
  }
  bench::JsonReport json("fig5b_move");
  json.meta().set("duration_ms", durationMs).set("size_log", sizeLog);
  bench::Table table(header);
  stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
  for (const int threads : threadCounts) {
    std::vector<std::string> row{bench::Table::num(threads)};
    for (const double movePct : movePcts) {
      bench::RunConfig cfg;
      cfg.initialSize = std::int64_t{1} << sizeLog;
      cfg.workload.keyRange = cfg.initialSize * 2;
      cfg.workload.updatePercent = 10.0 - movePct;  // moves are updates too
      cfg.workload.movePercent = movePct;
      cfg.threads = threads;
      cfg.durationMs = durationMs;
      auto map = trees::makeMap(trees::MapKind::OptSFTree);
      bench::populate(*map, cfg);
      const auto result = bench::runThroughput(*map, cfg);
      row.push_back(bench::Table::num(result.opsPerMicrosecond()));
      json.addRecord()
          .set("threads", threads)
          .set("move_percent", movePct)
          .set("ops_per_us", result.opsPerMicrosecond())
          .set("abort_ratio", result.stm.abortRatio());
    }
    table.addRow(row);
  }
  table.print();
  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
