// Observability overhead gate: the cost of the always-on surface (abort
// taxonomy + tx latency histograms) and of the commit-event trace must stay
// within the bounds the issue fixes — metrics mode <= 2% over the
// observability-off baseline, trace mode <= 10% — or the PR's premise
// ("always-on is cheap enough to leave on") is broken.
//
// Three modes over the identical SFTree workload:
//   off      setTxTimingEnabled(false), trace disabled — the runtime
//            stand-in for compiling the hooks out (the abort-cause counters
//            only run on the abort path, so the hot path difference is the
//            timing latch plus one relaxed trace load);
//   metrics  timing enabled (default state), trace disabled;
//   trace    timing enabled, trace ring enabled.
//
// Reps interleave the modes (off, metrics, trace, off, ...) so frequency
// drift and cache warmth hit all three equally; the reported ratio compares
// per-mode *minima* of ns/op — external interference (scheduler, co-tenant
// load) is strictly additive, so the fastest rep is the robust estimator of
// intrinsic cost on shared runners, where medians drift with machine load.
// scripts/check_bench_schema.py gates the committed BENCH_obs.json on these
// ratios.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "stm/runtime.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace obs = sftree::obs;
namespace stm = sftree::stm;
namespace trees = sftree::trees;

namespace {

double best(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.integer("reps", 5));
  const int threads = static_cast<int>(cli.integer("threads", 2));
  const int durationMs = static_cast<int>(cli.integer("duration-ms", 200));
  // Deep enough trees that one op is ~a microsecond: the per-attempt
  // timing cost (two tick reads + one histogram record) must be measured
  // against realistic transaction lengths, not empty-tx overhead.
  const auto sizeLog = cli.integer("size-log", 16);
  const double updatePercent = cli.real("update-percent", 20.0);

  const char* kModes[] = {"off", "metrics", "trace"};
  std::vector<double> nsPerOp[3];
  bool causeSumMatches = true;

  bench::RunConfig cfg;
  cfg.initialSize = std::int64_t{1} << sizeLog;
  cfg.workload.keyRange = cfg.initialSize * 2;
  cfg.workload.updatePercent = updatePercent;
  cfg.threads = threads;
  cfg.durationMs = durationMs;

  auto map = trees::makeMap(trees::MapKind::SFTree);
  bench::populate(*map, cfg);

  bench::JsonReport json("obs_overhead");
  json.meta()
      .set("reps", reps)
      .set("threads", threads)
      .set("duration_ms", durationMs)
      .set("size_log", sizeLog)
      .set("update_percent", updatePercent);

  // Warmup rep (discarded): page in the tree and settle the maintenance
  // backlog before anything is timed.
  (void)bench::runThroughput(*map, cfg);

  for (int rep = 0; rep < reps; ++rep) {
    for (int m = 0; m < 3; ++m) {
      obs::setTxTimingEnabled(m >= 1);
      if (m == 2) {
        obs::traceEnable();
      } else {
        obs::traceDisable();
      }
      const auto result = bench::runThroughput(*map, cfg);
      const double ns =
          result.totalOps == 0
              ? 0.0
              : result.seconds * 1e9 / static_cast<double>(result.totalOps);
      nsPerOp[m].push_back(ns);
      // The taxonomy invariant, checked under live traffic in every mode:
      // the per-cause conflict counters must partition the legacy aborts
      // counter exactly.
      if (result.stm.conflictAbortTotal() != result.stm.aborts) {
        causeSumMatches = false;
      }
      json.addRecord()
          .set("mode", kModes[m])
          .set("rep", rep)
          .set("ops", result.totalOps)
          .set("seconds", result.seconds)
          .set("ns_per_op", ns)
          .set("abort_ratio", result.stm.abortRatio());
    }
  }
  obs::traceDisable();
  obs::setTxTimingEnabled(true);  // restore the default always-on state

  const double offNs = best(nsPerOp[0]);
  const double metricsNs = best(nsPerOp[1]);
  const double traceNs = best(nsPerOp[2]);
  const double metricsRatio = offNs == 0.0 ? 0.0 : metricsNs / offNs;
  const double traceRatio = offNs == 0.0 ? 0.0 : traceNs / offNs;
  json.meta()
      .set("off_ns_per_op", offNs)
      .set("metrics_ns_per_op", metricsNs)
      .set("trace_ns_per_op", traceNs)
      .set("metrics_ratio", metricsRatio)
      .set("trace_ratio", traceRatio)
      .set("cause_sum_matches", causeSumMatches);

  bench::Table table({"mode", "best ns/op", "ratio vs off"});
  table.addRow({"off", bench::Table::num(offNs), "1.00"});
  table.addRow(
      {"metrics", bench::Table::num(metricsNs), bench::Table::num(metricsRatio)});
  table.addRow(
      {"trace", bench::Table::num(traceNs), bench::Table::num(traceRatio)});
  table.print();
  std::printf("cause_sum_matches: %s\n", causeSumMatches ? "yes" : "NO");

  return json.writeFile(cli.jsonPath()) ? 0 : 1;
}
