// Quickstart: a concurrent ordered map backed by the speculation-friendly
// binary search tree.
//
//   $ ./examples/quickstart
//
// Demonstrates: creating the tree, basic operations, concurrent use from
// several threads, and reading the maintenance statistics that show the
// decoupled restructuring at work.
#include <cstdio>
#include <thread>
#include <vector>

#include "trees/sftree.hpp"

using sftree::trees::SFTree;
using sftree::trees::SFTreeConfig;

int main() {
  // The default configuration is the paper's optimized tree (Algorithm 2)
  // with the background maintenance thread started automatically.
  SFTree tree;

  // --- single-threaded basics ----------------------------------------------
  tree.insert(/*key=*/42, /*value=*/4200);
  tree.insert(7, 700);
  tree.insert(99, 9900);
  std::printf("contains(42) = %s\n", tree.contains(42) ? "yes" : "no");
  std::printf("get(7)       = %lld\n",
              static_cast<long long>(tree.get(7).value_or(-1)));

  tree.erase(42);  // logical deletion: O(1) structural impact
  std::printf("contains(42) after erase = %s\n",
              tree.contains(42) ? "yes" : "no");

  // --- concurrent use --------------------------------------------------------
  // Every operation is a transaction; no external locking is needed.
  constexpr int kThreads = 4;
  constexpr sftree::Key kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tree, t] {
      const sftree::Key base = t * kPerThread;
      for (sftree::Key i = 0; i < kPerThread; ++i) {
        tree.insert(base + i, i);
      }
      // Delete every other key again.
      for (sftree::Key i = 0; i < kPerThread; i += 2) {
        tree.erase(base + i);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Let the background thread finish restructuring, then inspect.
  tree.stopMaintenance();
  tree.quiesceNow();

  const auto stats = tree.maintenanceStats();
  std::printf("\nabstract size     : %zu keys\n", tree.abstractSize());
  std::printf("structural size   : %zu nodes\n", tree.structuralSize());
  std::printf("tree height       : %d (log2(n) ~ 15)\n", tree.height());
  std::printf("background stats  : %llu rotations, %llu removals, %llu nodes "
              "freed\n",
              static_cast<unsigned long long>(stats.rotations),
              static_cast<unsigned long long>(stats.removals),
              static_cast<unsigned long long>(stats.nodesFreed));
  return 0;
}
