// The travel-reservation application (STAMP vacation) on the optimized
// speculation-friendly tree: four tree-backed tables accessed by client
// transactions that compose queries, reservations and cancellations.
#include <cstdio>

#include "vacation/vacation_app.hpp"

namespace vac = sftree::vacation;
namespace trees = sftree::trees;

int main() {
  vac::VacationConfig cfg;
  cfg.client = vac::highContentionConfig();
  cfg.client.relations = 1 << 10;
  cfg.tableKind = trees::MapKind::OptSFTree;
  cfg.threads = 4;
  cfg.transactions = 20'000;

  std::printf("vacation: %lld relations/table, %lld transactions, %d threads, "
              "%s tables (high contention mix: %d%% reservations)\n",
              static_cast<long long>(cfg.client.relations),
              static_cast<long long>(cfg.transactions), cfg.threads,
              trees::mapKindName(cfg.tableKind),
              cfg.client.userTransactionPercent);

  const auto result = vac::runVacation(cfg);

  std::printf("\nduration            : %.3f s (%.0f tx/s)\n", result.seconds,
              result.transactionsPerSecond(cfg.transactions));
  std::printf("make-reservation tx : %llu (%llu reservations made)\n",
              static_cast<unsigned long long>(result.clientStats.makeReservation),
              static_cast<unsigned long long>(result.clientStats.reservationsMade));
  std::printf("delete-customer tx  : %llu\n",
              static_cast<unsigned long long>(result.clientStats.deleteCustomer));
  std::printf("update-tables tx    : %llu\n",
              static_cast<unsigned long long>(result.clientStats.updateTables));
  std::printf("stm commits/aborts  : %llu / %llu (%.2f%% aborted)\n",
              static_cast<unsigned long long>(result.stm.commits),
              static_cast<unsigned long long>(result.stm.aborts),
              100.0 * result.stm.abortRatio());
  std::printf("database consistent : %s %s\n",
              result.consistent ? "yes" : "NO",
              result.consistencyError.c_str());
  return result.consistent ? 0 : 1;
}
