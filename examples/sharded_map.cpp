// Sharded map: partitioning the key space over several speculation-friendly
// trees whose restructuring shares one small maintenance worker pool, with
// one STM clock domain per shard.
//
//   $ ./examples/example_sharded_map
//
// Demonstrates: building a ShardedMap on a shared MaintenanceScheduler with
// per-shard clock domains, concurrent use, atomic cross-shard moves (one
// transaction spanning two clock domains), consistent range counts that
// span every shard, and the aggregated maintenance + per-domain STM
// statistics.
#include <cstdio>
#include <thread>
#include <vector>

#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"

namespace shard = sftree::shard;
using sftree::Key;

int main() {
  // Two workers maintain four trees: the scheduler round-robins maintenance
  // passes and backs off on idle shards, so K < N costs nothing while the
  // map is cold and converges quickly while it is hot.
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  // Each shard commits against its own version clock: single-key
  // transactions on different shards share no STM metadata at all.
  cfg.domainMode = shard::DomainMode::PerShard;
  shard::ShardedMap map(cfg);

  // --- basics ---------------------------------------------------------------
  map.insert(42, 4200);
  map.insert(7, 700);
  std::printf("contains(42) = %s (shard %d)\n",
              map.contains(42) ? "yes" : "no", map.shardIndexFor(42));
  std::printf("contains(7)  = %s (shard %d)\n",
              map.contains(7) ? "yes" : "no", map.shardIndexFor(7));

  // Atomic cross-shard relocation: one transaction spans both trees.
  Key dest = 1'000;
  while (map.shardIndexFor(dest) == map.shardIndexFor(42)) ++dest;
  map.move(42, dest);
  std::printf("after move(42 -> %lld): contains(42)=%s contains(%lld)=%s "
              "(shard %d -> shard %d)\n",
              static_cast<long long>(dest), map.contains(42) ? "yes" : "no",
              static_cast<long long>(dest), map.contains(dest) ? "yes" : "no",
              map.shardIndexFor(42), map.shardIndexFor(dest));

  // --- concurrent use -------------------------------------------------------
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, t] {
      const Key base = t * kPerThread;
      for (Key i = 0; i < kPerThread; ++i) map.insert(base + i, i);
      for (Key i = 0; i < kPerThread; i += 2) map.erase(base + i);
    });
  }
  for (auto& w : workers) w.join();

  // A consistent snapshot over every shard in one transaction.
  std::printf("\ncountRange(0, 9999)   = %zu\n", map.countRange(0, 9999));

  // Let the shared pool finish restructuring, then inspect.
  map.quiesce();
  const auto stats = map.aggregatedStats();
  std::printf("abstract size         = %zu keys over %d shards\n", map.size(),
              map.shardCount());
  std::printf("max shard height      = %d (log2(n/shards) ~ 12)\n",
              map.height());
  std::printf("aggregated maintenance: %llu rotations, %llu removals, %llu "
              "nodes freed\n",
              static_cast<unsigned long long>(stats.maintenance.rotations),
              static_cast<unsigned long long>(stats.maintenance.removals),
              static_cast<unsigned long long>(stats.maintenance.nodesFreed));

  // Targeted maintenance: updates feed per-shard violation queues and the
  // workers repair only the affected root-paths; the queue counters show
  // how much discovery work the full-sweep fallback never had to do.
  std::printf("violation queues      : %llu captured -> %llu enqueued "
              "(%llu deduped), %llu drained, mean drain latency %.0f us\n",
              static_cast<unsigned long long>(stats.maintenance.queue.captured),
              static_cast<unsigned long long>(stats.maintenance.queue.enqueued),
              static_cast<unsigned long long>(stats.maintenance.queue.deduped),
              static_cast<unsigned long long>(stats.maintenance.queue.drained),
              stats.maintenance.queue.meanDrainLatencyUs());
  std::printf("maintenance passes    : %llu (%llu full sweeps), %llu nodes "
              "visited\n",
              static_cast<unsigned long long>(stats.maintenance.traversals),
              static_cast<unsigned long long>(stats.maintenance.fullSweeps),
              static_cast<unsigned long long>(stats.maintenance.nodesVisited));
  std::printf("per-shard queue depth :");
  for (const auto d : stats.shardQueueDepths) {
    std::printf(" %llu", static_cast<unsigned long long>(d));
  }
  std::printf(" (post-quiesce: all drained)\n");

  const auto sched = scheduler.stats();
  std::printf("scheduler             : %llu passes (%llu active), %llu "
              "backoff skips, %llu signal wakeups, %llu priority picks\n",
              static_cast<unsigned long long>(sched.passes),
              static_cast<unsigned long long>(sched.activePasses),
              static_cast<unsigned long long>(sched.backoffSkips),
              static_cast<unsigned long long>(sched.signalWakeups),
              static_cast<unsigned long long>(sched.priorityPicks));
  for (const auto& t : scheduler.treeStats()) {
    std::printf("  %-8s passes=%llu active=%llu queued=%llu\n", t.name.c_str(),
                static_cast<unsigned long long>(t.passes),
                static_cast<unsigned long long>(t.activePasses),
                static_cast<unsigned long long>(t.lastLoad));
  }

  // Per-clock-domain STM statistics: each shard owns a domain, so the
  // commit/abort traffic of every shard is visible in isolation (the
  // whole point of per-shard domains — no shared clock, no shared stats).
  std::printf("\nper-domain STM stats  :\n");
  for (std::size_t i = 0; i < stats.domainStats.size(); ++i) {
    const auto& d = stats.domainStats[i];
    std::printf("  shard %zu: %llu commits, %llu aborts (%.2f%% abort "
                "ratio), %llu reads, %llu writes\n",
                i, static_cast<unsigned long long>(d.commits),
                static_cast<unsigned long long>(d.aborts),
                100.0 * d.abortRatio(),
                static_cast<unsigned long long>(d.reads),
                static_cast<unsigned long long>(d.writes));
  }
  std::printf("  total  : %llu commits, %llu aborts over %d domains\n",
              static_cast<unsigned long long>(stats.stm.commits),
              static_cast<unsigned long long>(stats.stm.aborts),
              map.shardCount());
  // Read-path breakdown (read-path overhaul): contains/get/countRange run
  // as zero-logging read-only transactions; a stale snapshot re-reads the
  // clock and restarts the op body, and a write inside an RO body promotes
  // it to read-write. Write-set probe length is the O(W)-lookup canary.
  std::printf("read path             : %llu ro-commits / %llu rw-commits, "
              "%llu ro snapshot extensions, %llu ro promotions\n",
              static_cast<unsigned long long>(stats.stm.roCommits),
              static_cast<unsigned long long>(stats.stm.commits -
                                              stats.stm.roCommits),
              static_cast<unsigned long long>(stats.stm.roSnapshotExtensions),
              static_cast<unsigned long long>(stats.stm.roPromotions));
  std::printf("write-set lookups     : %llu (mean probe length %.2f)\n",
              static_cast<unsigned long long>(stats.stm.writeLookups),
              stats.stm.meanWriteProbe());

  // --- dynamic re-sharding --------------------------------------------------
  // The shard count is not fixed: splitShard moves half a hot shard's
  // routing slots onto a fresh tree (and clock domain) under live traffic,
  // mergeShards migrates a cold shard away and retires its tree + domain.
  // ReshardController automates both from the load gauges above; here the
  // mechanism is driven directly.
  const std::size_t before = map.size();
  const int fresh = map.splitShard(0);
  std::printf("\nsplitShard(0)         : now %d shards (new index %d), "
              "size still %zu\n",
              map.shardCount(), fresh, map.size());
  if (fresh >= 0) map.mergeShards(fresh, 0);
  const auto rs = map.reshardStats();
  std::printf("mergeShards back      : %d shards, size %zu (conserved: %s)\n",
              map.shardCount(), map.size(),
              map.size() == before ? "yes" : "NO");
  std::printf("re-shard mechanics    : %llu keys migrated in %llu batches, "
              "%llu table publishes, %llu KiB of retired arenas freed\n",
              static_cast<unsigned long long>(rs.keysMigrated),
              static_cast<unsigned long long>(rs.migrationBatches),
              static_cast<unsigned long long>(rs.tablePublishes),
              static_cast<unsigned long long>(rs.retiredArenaBytes / 1024));
  return 0;
}
