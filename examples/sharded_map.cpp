// Sharded map: partitioning the key space over several speculation-friendly
// trees whose restructuring shares one small maintenance worker pool, with
// one STM clock domain per shard.
//
//   $ ./examples/example_sharded_map
//
// Demonstrates: building a ShardedMap on a shared MaintenanceScheduler with
// per-shard clock domains, concurrent use, atomic cross-shard moves (one
// transaction spanning two clock domains), consistent range counts that
// span every shard, and the whole observability surface — every subsystem
// registers a snapshot source with one MetricsRegistry and the text
// exporter renders the merged view (maintenance, scheduler, per-domain STM
// counters with the abort-cause taxonomy, per-slot load gauges, re-shard
// mechanics) instead of each example hand-formatting its own dump.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stats_bridge.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"

namespace obs = sftree::obs;
namespace shard = sftree::shard;
using sftree::Key;

int main() {
  // Two workers maintain four trees: the scheduler round-robins maintenance
  // passes and backs off on idle shards, so K < N costs nothing while the
  // map is cold and converges quickly while it is hot.
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  // Each shard commits against its own version clock: single-key
  // transactions on different shards share no STM metadata at all.
  cfg.domainMode = shard::DomainMode::PerShard;
  shard::ShardedMap map(cfg);

  // --- basics ---------------------------------------------------------------
  map.insert(42, 4200);
  map.insert(7, 700);
  std::printf("contains(42) = %s (shard %d)\n",
              map.contains(42) ? "yes" : "no", map.shardIndexFor(42));
  std::printf("contains(7)  = %s (shard %d)\n",
              map.contains(7) ? "yes" : "no", map.shardIndexFor(7));

  // Atomic cross-shard relocation: one transaction spans both trees.
  Key dest = 1'000;
  while (map.shardIndexFor(dest) == map.shardIndexFor(42)) ++dest;
  map.move(42, dest);
  std::printf("after move(42 -> %lld): contains(42)=%s contains(%lld)=%s "
              "(shard %d -> shard %d)\n",
              static_cast<long long>(dest), map.contains(42) ? "yes" : "no",
              static_cast<long long>(dest), map.contains(dest) ? "yes" : "no",
              map.shardIndexFor(42), map.shardIndexFor(dest));

  // --- concurrent use -------------------------------------------------------
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, t] {
      const Key base = t * kPerThread;
      for (Key i = 0; i < kPerThread; ++i) map.insert(base + i, i);
      for (Key i = 0; i < kPerThread; i += 2) map.erase(base + i);
    });
  }
  for (auto& w : workers) w.join();

  // A consistent snapshot over every shard in one transaction.
  std::printf("\ncountRange(0, 9999)   = %zu\n", map.countRange(0, 9999));

  // Let the shared pool finish restructuring, then inspect.
  map.quiesce();
  std::printf("abstract size         = %zu keys over %d shards\n", map.size(),
              map.shardCount());
  std::printf("max shard height      = %d (log2(n/shards) ~ 12)\n",
              map.height());

  // --- dynamic re-sharding --------------------------------------------------
  // The shard count is not fixed: splitShard moves half a hot shard's
  // routing slots onto a fresh tree (and clock domain) under live traffic,
  // mergeShards migrates a cold shard away and retires its tree + domain.
  // ReshardController automates both from the load gauges above; here the
  // mechanism is driven directly.
  const std::size_t before = map.size();
  const int fresh = map.splitShard(0);
  std::printf("\nsplitShard(0)         : now %d shards (new index %d), "
              "size still %zu\n",
              map.shardCount(), fresh, map.size());
  if (fresh >= 0) map.mergeShards(fresh, 0);
  std::printf("mergeShards back      : %d shards, size %zu (conserved: %s)\n",
              map.shardCount(), map.size(),
              map.size() == before ? "yes" : "NO");

  // --- the observability surface --------------------------------------------
  // Every subsystem registers a snapshot source; one renderText() replaces
  // the per-example printf dumps that used to live here. The map source
  // covers aggregated maintenance + violation queues, the summed STM
  // counters with the per-cause abort taxonomy, the per-slot load gauges,
  // and the re-shard mechanics (keys migrated, table publishes, the
  // migration-batch latency histogram). Per-shard clock domains register
  // individually, so each shard's commit/abort traffic is visible in
  // isolation — the whole point of per-shard domains.
  obs::MetricsRegistry registry;
  const auto mapReg = map.registerMetrics(registry, "map");
  const auto schedReg = scheduler.registerMetrics(registry, "scheduler");
  std::vector<obs::MetricsRegistry::Registration> domainRegs;
  const auto domains = map.domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    domainRegs.push_back(obs::registerDomainMetrics(
        registry, "domain." + std::to_string(i), *domains[i]));
  }
  std::printf("\nmetrics (%zu sources, text exporter; renderJson() / "
              "renderPrometheus() emit the same names):\n",
              registry.sourceCount());
  std::fputs(registry.renderText().c_str(), stdout);
  return 0;
}
