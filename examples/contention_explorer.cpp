// Why "speculation-friendly" matters: watch what contention does to each
// tree design.
//
// This example runs the same update-heavy workload against all five trees
// and prints throughput, abort ratio and the transactional-reads-per-
// operation statistics — the three quantities the paper uses to explain the
// design (§2's Table 1 and the Figure 3 discussion).
#include <cstdio>

#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;

int main() {
  constexpr double kUpdatePercent = 30.0;
  constexpr int kThreads = 4;

  std::printf("workload: 2^12 keys, %d threads, %.0f%% effective updates\n\n",
              kThreads, kUpdatePercent);
  bench::Table table({"tree", "ops/us", "abort %", "mean reads/op",
                      "max reads/op"});
  for (const auto kind : trees::allMapKinds()) {
    bench::RunConfig cfg;
    cfg.initialSize = 1 << 12;
    cfg.workload.keyRange = cfg.initialSize * 2;
    cfg.workload.updatePercent = kUpdatePercent;
    cfg.threads = kThreads;
    cfg.durationMs = 400;
    auto map = trees::makeMap(kind);
    bench::populate(*map, cfg);
    const auto r = bench::runThroughput(*map, cfg);
    table.addRow({trees::mapKindName(kind),
                  bench::Table::num(r.opsPerMicrosecond()),
                  bench::Table::num(100.0 * r.stm.abortRatio()),
                  bench::Table::num(r.stm.meanOpReads(), 1),
                  bench::Table::num(r.stm.maxOpReads)});
  }
  table.print();
  std::printf(
      "\nReading the table:\n"
      " * RBtree/AVLtree couple rebalancing with updates: aborted rotations\n"
      "   re-execute whole operations, inflating reads/op under contention.\n"
      " * SFtree decouples them; Opt-SFtree additionally traverses with unit\n"
      "   loads, so an operation's transactional footprint is O(1).\n"
      " * NRtree never restructures: fast here, but it degenerates under\n"
      "   skewed workloads (see bench/ablation_maintenance).\n");
  return 0;
}
