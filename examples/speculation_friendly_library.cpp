// Toward a speculation-friendly library (paper §7): the same decoupling
// recipe — tiny abstract transactions + background structural maintenance +
// quiescence reclamation — applied to a second data structure, a skip list,
// and composed with the tree in one atomic operation.
#include <cstdio>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "structures/sf_skiplist.hpp"
#include "trees/sftree.hpp"

namespace stm = sftree::stm;
using sftree::Key;
using sftree::structures::SFSkipList;
using sftree::trees::SFTree;

int main() {
  SFTree tree;      // speculation-friendly BST (rotations + removal)
  SFSkipList list;  // speculation-friendly skip list (removal only)

  // Concurrent mixed load on both structures.
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t rng = 77 + t;
      for (int i = 0; i < 20000; ++i) {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        const Key k = static_cast<Key>((rng >> 7) % 4096);
        switch (rng % 5) {
          case 0: tree.insert(k, k); break;
          case 1: tree.erase(k); break;
          case 2: list.insert(k, k); break;
          case 3: list.erase(k); break;
          default:
            // Cross-structure atomic move: tree -> skip list.
            stm::atomically([&](stm::Tx& tx) {
              if (auto v = tree.getTx(tx, k)) {
                if (list.insertTx(tx, k, *v)) tree.eraseTx(tx, k);
              }
            });
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  tree.stopMaintenance();
  tree.quiesceNow();
  list.stopMaintenance();
  list.quiesceNow();

  std::printf("tree : %zu keys in %zu nodes, height %d\n",
              tree.abstractSize(), tree.structuralSize(), tree.height());
  std::printf("list : %zu keys in %zu towers (%llu towers unlinked in "
              "background)\n",
              list.abstractSize(), list.structuralSize(),
              static_cast<unsigned long long>(list.unlinksForTest()));
  std::printf("both structures converge to tombstone-free shape after "
              "quiescence: %s\n",
              (tree.structuralSize() >= tree.abstractSize() &&
               list.structuralSize() == list.abstractSize())
                  ? "yes"
                  : "NO");
  return 0;
}
