// Reusability (paper §5.4): composing library operations into new atomic
// operations without knowing the library's synchronization internals.
//
// A `move(from, to)` is built from erase + insert inside one transaction
// (flat nesting). Concurrent observers must never see both keys or neither
// key — this program checks that property live while four threads shuffle a
// token between slots.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "trees/sftree.hpp"

namespace stm = sftree::stm;
using sftree::Key;
using sftree::trees::SFTree;

int main() {
  SFTree tree;

  // One token, many slots. Movers relocate the token atomically; observers
  // count how many slots hold it — the answer must always be exactly one.
  constexpr Key kSlots = 16;
  tree.insert(0, /*token=*/1);

  std::atomic<bool> stop{false};
  std::atomic<long> moves{0};
  std::atomic<long> observations{0};
  std::atomic<long> anomalies{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 17 + t;
      while (!stop.load(std::memory_order_acquire)) {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        const Key from = static_cast<Key>((rng >> 3) % kSlots);
        const Key to = static_cast<Key>((rng >> 13) % kSlots);
        if (from != to && tree.move(from, to)) {
          moves.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // A composed read-only transaction across all slots: thanks to
        // opacity it sees a consistent snapshot.
        const int copies = stm::atomically([&](stm::Tx& tx) {
          int count = 0;
          for (Key s = 0; s < kSlots; ++s) {
            if (tree.containsTx(tx, s)) ++count;
          }
          return count;
        });
        observations.fetch_add(1, std::memory_order_relaxed);
        if (copies != 1) anomalies.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  std::printf("moves        : %ld\n", moves.load());
  std::printf("observations : %ld\n", observations.load());
  std::printf("anomalies    : %ld  %s\n", anomalies.load(),
              anomalies.load() == 0 ? "(atomicity held)" : "(BUG!)");
  return anomalies.load() == 0 ? 0 : 1;
}
