// Abort/restart cause taxonomy.
//
// Every time a transaction attempt ends without committing, the runtime tags
// the attempt with one AbortCause.  Causes split into two groups:
//
//  * Conflict aborts (indices [0, kFirstRestartCause)) — the attempt counted
//    toward ThreadStats::aborts.  The per-cause counters partition the legacy
//    `aborts` counter exactly: sum(abortsByCause[conflict causes]) == aborts.
//  * Restarts (indices [kFirstRestartCause, kAbortCauseCount)) — intentional
//    re-executions (RO snapshot extension, RO->RW promotion) that the runtime
//    does not treat as contention.  They are tagged here for the taxonomy but
//    bump `roSnapshotExtensions` / `roPromotions` instead of `aborts`.
//
// This header is dependency-free: src/stm/stats.hpp includes it, so nothing
// here may include stm headers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sftree::obs {

enum class AbortCause : std::uint8_t {
  // -- conflict aborts (partition ThreadStats::aborts) ------------------------
  kReadValidation = 0,   // orec read-set validation failed (snapshot extension
                         // or commit-time validation saw a newer version)
  kLockConflict = 1,     // an orec (or the NOrec seqlock, past its bounded
                         // spin) was held by another transaction
  kNorecValidation = 2,  // NOrec value-log re-validation saw a changed value
  kElasticValidation = 3,  // elastic sliding-window cut validation failed
  kCrossDomainJoin = 4,    // read-set validation at a domain join failed
  kUserRestart = 5,        // explicit tx.restart() or a user exception
                           // propagating out of the transaction body
  // -- restarts (not counted in ThreadStats::aborts) --------------------------
  kRoSnapshotExtension = 6,  // zero-logging RO attempt restarted to re-pin a
                             // fresher snapshot
  kRoPromotion = 7,          // RO attempt wrote and restarted in RW mode
};

inline constexpr std::size_t kAbortCauseCount = 8;
inline constexpr std::size_t kFirstRestartCause =
    static_cast<std::size_t>(AbortCause::kRoSnapshotExtension);

constexpr std::size_t abortCauseIndex(AbortCause c) {
  return static_cast<std::size_t>(c);
}

constexpr bool abortCauseIsRestart(AbortCause c) {
  return abortCauseIndex(c) >= kFirstRestartCause;
}

constexpr const char* abortCauseName(AbortCause c) {
  switch (c) {
    case AbortCause::kReadValidation: return "read_validation";
    case AbortCause::kLockConflict: return "lock_conflict";
    case AbortCause::kNorecValidation: return "norec_validation";
    case AbortCause::kElasticValidation: return "elastic_validation";
    case AbortCause::kCrossDomainJoin: return "cross_domain_join";
    case AbortCause::kUserRestart: return "user_restart";
    case AbortCause::kRoSnapshotExtension: return "ro_snapshot_extension";
    case AbortCause::kRoPromotion: return "ro_promotion";
  }
  return "unknown";
}

constexpr const char* abortCauseName(std::size_t i) {
  return abortCauseName(static_cast<AbortCause>(i));
}

}  // namespace sftree::obs
