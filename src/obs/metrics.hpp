// MetricsRegistry: one place every subsystem registers a snapshot callback,
// with text / JSON / Prometheus-exposition exporters and an optional periodic
// StatsReporter thread emitting JSON lines.
//
// Sources register a callback that, when the registry collects, receives a
// MetricSink and emits named counters/gauges/histograms.  Registration
// returns an RAII handle; the source is dropped when the handle dies, so a
// subsystem can safely register for its own lifetime.  Callbacks run under
// the registry mutex and must not re-enter the registry; they are expected
// to read concurrency-safe snapshots (aggregatedStats(), Domain
// aggregateStats(), LogHistogram::snapshot()...), so collecting while
// mutators run is safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"

namespace sftree::obs {

struct Metric {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kGauge;
  double value = 0.0;  // counter/gauge value (counters are monotone totals)
  LogHistogram hist;   // kHistogram only
};

class MetricSink {
 public:
  void counter(const std::string& name, std::uint64_t v) {
    metrics_.push_back(
        {prefixed(name), Metric::Kind::kCounter, static_cast<double>(v), {}});
  }
  void gauge(const std::string& name, double v) {
    metrics_.push_back({prefixed(name), Metric::Kind::kGauge, v, {}});
  }
  // Takes a private/snapshot copy of the histogram.
  void histogram(const std::string& name, const LogHistogram& h) {
    metrics_.push_back({prefixed(name), Metric::Kind::kHistogram, 0.0, h});
  }

 private:
  friend class MetricsRegistry;
  std::string prefixed(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }
  std::string prefix_;
  std::vector<Metric> metrics_;
};

class MetricsRegistry {
 public:
  using Callback = std::function<void(MetricSink&)>;

  // Movable RAII registration handle; unregisters on destruction.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& o) noexcept
        : reg_(o.reg_), id_(o.id_) {
      o.reg_ = nullptr;
    }
    Registration& operator=(Registration&& o) noexcept {
      if (this != &o) {
        release();
        reg_ = o.reg_;
        id_ = o.id_;
        o.reg_ = nullptr;
      }
      return *this;
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { release(); }
    void release();

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* reg, std::uint64_t id)
        : reg_(reg), id_(id) {}
    MetricsRegistry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // All metric names the callback emits are prefixed with "<prefix>.".
  [[nodiscard]] Registration add(std::string prefix, Callback cb);

  std::size_t sourceCount() const;

  // Runs every registered callback and returns the merged metric list.
  std::vector<Metric> collect() const;

  // Aligned "name  value" lines; histograms expand to count/mean/p50/p95/
  // p99/max.
  std::string renderText() const;
  // One flat JSON object; histograms expand to "<name>.p50" etc.
  std::string renderJson() const;
  // Prometheus text exposition format; histograms become native histograms
  // with cumulative log2 "le" buckets.
  std::string renderPrometheus() const;

 private:
  void remove(std::uint64_t id);

  struct Source {
    std::uint64_t id;
    std::string prefix;
    Callback cb;
  };
  mutable std::mutex mu_;
  std::vector<Source> sources_;
  std::uint64_t nextId_ = 1;
};

// Periodic reporter: every `periodMs`, collects from the registry and writes
// one JSON line ({"ts_ns":..., "metrics":{...}}) to the given stream.  The
// registry must outlive the reporter.
class StatsReporter {
 public:
  StatsReporter(const MetricsRegistry& reg, std::ostream& os,
                std::uint64_t periodMs);
  ~StatsReporter();
  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void stop();  // idempotent; joins the reporter thread
  std::uint64_t linesEmitted() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
  std::thread thread_;
};

}  // namespace sftree::obs
