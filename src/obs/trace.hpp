// Commit-event trace ring — the PR 5 stale-routing forensics tool, made
// permanent.
//
// Each thread that emits an event owns a fixed-size ring of compact records.
// Tracing is toggled by a global generation ("span") counter: when disabled,
// the emit fast path is a single relaxed load.  Each record carries the span
// it was recorded under, so dumpTrace() returns only the most recent span's
// records even after stale records from earlier spans remain in the rings.
//
// Records are written under a per-slot seqlock (all payload words accessed
// through relaxed atomic_refs, the sequence word with acquire/release +
// fences) so a concurrent dumpTrace() is data-race-free under TSan: a dump
// that races a writer simply skips the torn slot.
//
// dumpTrace() merges every thread's ring sorted by timestamp.  Rings are
// owned by shared_ptr from a global registry, so records from exited threads
// remain dumpable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/abort_cause.hpp"

namespace sftree::obs {

enum class TraceKind : std::uint8_t {
  // Transaction lifecycle is traced at attempt *end* only (commit/abort/
  // restart, with the attempt count in the payload): one record per attempt
  // keeps the enabled-trace overhead inside the <= 10% budget.
  kTxCommit = 1,
  kTxAbort = 2,    // conflict abort; cause field holds the AbortCause
  kTxRestart = 3,  // RO snapshot-extension / promotion restart
  kMapOp = 4,      // ShardedMap op entry; a = routing-table version, b = slot
  kTablePublish = 5,    // a = new routing-table version, b = shard count
  kMigrationBatch = 6,  // a = keys moved in batch, b = routing-table version
  kReshardDecision = 7,  // a = shard index, b = rounded load;
                         // op = ReshardDecision::Action, cause = acted
  kMaintPass = 8,        // a = tree id, b = pass duration ns
  kSplayStep = 9,        // a = promoted key, b = new depth (root path len);
                         // op = 1 when the step completed a zig-zig pair
};

const char* traceKindName(TraceKind k);

struct TraceRecord {
  std::uint64_t ns = 0;  // obs::nowNs() at emit time
  std::uint64_t a = 0;   // kind-specific payload (see TraceKind comments)
  std::uint64_t b = 0;
  std::uint32_t tid = 0;  // registration-order thread id
  TraceKind kind = TraceKind::kTxCommit;
  std::uint8_t cause = 0;   // AbortCause index for kTxAbort/kTxRestart
  std::uint16_t op = 0;     // small free-form payload (op kind, TxKind, ...)
};

namespace detail {

std::atomic<std::uint64_t>& traceSpan();
void traceEmitSlow(TraceKind kind, std::uint64_t span, std::uint64_t a,
                   std::uint64_t b, std::uint8_t cause, std::uint16_t op);

}  // namespace detail

inline bool traceEnabled() {
  return detail::traceSpan().load(std::memory_order_relaxed) != 0;
}

// Starts a new trace span (implicitly discarding prior-span records from
// future dumps) / stops recording.  dumpTrace() after disable still returns
// the last span — post-mortem dumps are the main use case.
void traceEnable();
void traceDisable();

inline void trace(TraceKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
                  std::uint8_t cause = 0, std::uint16_t op = 0) {
  const std::uint64_t span =
      detail::traceSpan().load(std::memory_order_relaxed);
  if (span == 0) return;  // disabled fast path: one relaxed load
  detail::traceEmitSlow(kind, span, a, b, cause, op);
}

// Merged view of every ring's current-span records, sorted by timestamp.
// Safe to call while other threads keep emitting.
std::vector<TraceRecord> dumpTrace();

// Human-readable rendering (one line per record).
void dumpTrace(std::ostream& os);
std::string formatTraceRecord(const TraceRecord& r);

// Per-thread ring capacity (records); fixed at compile time.
std::size_t traceRingCapacity();

}  // namespace sftree::obs
