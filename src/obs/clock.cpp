#include "obs/clock.hpp"

namespace sftree::obs::detail {

std::atomic<bool>& txTimingFlag() {
  static std::atomic<bool> flag{true};
  return flag;
}

std::atomic<std::uint32_t>& txTimingMask() {
  static std::atomic<std::uint32_t> mask{kDefaultTxTimingSampleMask};
  return mask;
}

double calibrateNsPerTick() {
#if SFTREE_OBS_HAS_TSC
  // Busy-spin ~2ms against steady_clock once per process.  Runs lazily on
  // first conversion (thread-safe via the function-local static in
  // nsPerTick), so processes that never read a histogram pay nothing.
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = __rdtsc();
  constexpr auto kWindow = std::chrono::milliseconds(2);
  auto t1 = clock::now();
  while (t1 - t0 < kWindow) t1 = clock::now();
  const std::uint64_t c1 = __rdtsc();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  if (c1 <= c0 || ns <= 0) return 1.0;  // TSC misbehaving; degrade to ticks
  return static_cast<double>(ns) / static_cast<double>(c1 - c0);
#else
  return 1.0;
#endif
}

}  // namespace sftree::obs::detail
