// Cheap monotonic timing for per-transaction latency histograms.
//
// The tx attempt path times every attempt when tx timing is enabled (the
// default), so the timestamp cost sits directly on the STM fast path.  On
// x86-64 we read the TSC (~a few ns, unserialized — fine for statistics) and
// convert to nanoseconds with a once-per-process calibrated multiplier;
// elsewhere we fall back to steady_clock.
//
// tick() returns raw ticks; ticksToNs() converts a tick *delta* to ns.
// nowNs() is the convenience composition used for trace-record timestamps,
// where the absolute ordering across threads is what matters.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define SFTREE_OBS_HAS_TSC 1
#endif

namespace sftree::obs {

namespace detail {
// Calibrated in clock.cpp; ns per TSC tick (1.0 on the steady_clock fallback).
double calibrateNsPerTick();

inline double nsPerTick() {
  static const double kNsPerTick = calibrateNsPerTick();
  return kNsPerTick;
}
}  // namespace detail

inline std::uint64_t tick() {
#if SFTREE_OBS_HAS_TSC
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

inline std::uint64_t ticksToNs(std::uint64_t ticks) {
#if SFTREE_OBS_HAS_TSC
  return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                    detail::nsPerTick());
#else
  return ticks;
#endif
}

inline std::uint64_t nowNs() { return ticksToNs(tick()); }

// Global toggle for the per-attempt tx latency histograms.  Enabled by
// default ("metrics always-on"); bench/obs_overhead measures the cost of this
// default against the disabled state.  Read once per attempt in Tx::begin().
//
// Timing is *sampled*: with mask M, one attempt in M+1 (per thread, round-
// robin) pays the two timestamp reads and the histogram record.  The default
// 1-in-8 keeps the always-on cost within the <= 2% budget even where rdtsc
// is expensive (virtualized TSC) while the histograms remain a uniform
// sample — percentiles are unaffected, counts are ~attempts/(M+1).  Mask 0
// times every attempt (tests that assert exact counts use it); masks must
// be 2^k - 1.
namespace detail {
std::atomic<bool>& txTimingFlag();
std::atomic<std::uint32_t>& txTimingMask();
}

inline bool txTimingEnabled() {
  return detail::txTimingFlag().load(std::memory_order_relaxed);
}

inline void setTxTimingEnabled(bool on) {
  detail::txTimingFlag().store(on, std::memory_order_relaxed);
}

inline constexpr std::uint32_t kDefaultTxTimingSampleMask = 7;  // 1-in-8

inline std::uint32_t txTimingSampleMask() {
  return detail::txTimingMask().load(std::memory_order_relaxed);
}

inline void setTxTimingSampleMask(std::uint32_t mask) {
  detail::txTimingMask().store(mask, std::memory_order_relaxed);
}

}  // namespace sftree::obs
