// Adapters from the runtime's stats structs (stm::ThreadStats,
// trees::MaintenanceStats, shard::SchedulerStats, mem::SlabArena) to
// MetricSink emissions, so every subsystem's registerMetrics() shares one
// naming scheme instead of re-listing fields.
//
// This header deliberately only forward-declares the subsystem types; the
// .cpp includes the real headers.  obs core (histogram/trace/metrics) stays
// dependency-free — the bridge is the one obs file that knows about the rest
// of the runtime.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace sftree::stm {
struct ThreadStats;
class Domain;
}  // namespace sftree::stm

namespace sftree::trees {
struct MaintenanceStats;
struct ViolationQueueStats;
}  // namespace sftree::trees

namespace sftree::shard {
struct SchedulerStats;
}  // namespace sftree::shard

namespace sftree::mem {
class SlabArena;
}  // namespace sftree::mem

namespace sftree::obs {

// All emitters prepend "<prefix>." to every metric name when prefix is
// non-empty (on top of whatever prefix the registry source carries).

// Commits/aborts (with the per-cause taxonomy under
// "<prefix>.aborts_by_cause.<cause>"), read/write counters, RO-mode
// breakdown, write-set lookup costs, and the attempt-latency histograms.
void emitThreadStats(MetricSink& out, const std::string& prefix,
                     const stm::ThreadStats& s);

void emitViolationQueueStats(MetricSink& out, const std::string& prefix,
                             const trees::ViolationQueueStats& s);

// Includes the queue stats under "<prefix>.queue." and the drain-pass
// latency histogram.
void emitMaintenanceStats(MetricSink& out, const std::string& prefix,
                          const trees::MaintenanceStats& s);

void emitSchedulerStats(MetricSink& out, const std::string& prefix,
                        const shard::SchedulerStats& s);

void emitArenaStats(MetricSink& out, const std::string& prefix,
                    const mem::SlabArena& a);

// Registers a snapshot source for a clock domain: each collect() aggregates
// the domain's per-thread slots (Domain::aggregateStats) and emits them via
// emitThreadStats.  The domain must outlive the registration.
[[nodiscard]] MetricsRegistry::Registration registerDomainMetrics(
    MetricsRegistry& reg, std::string prefix, stm::Domain& d);

}  // namespace sftree::obs
