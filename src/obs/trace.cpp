#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/clock.hpp"

namespace sftree::obs {

namespace {

constexpr std::size_t kRingCapacity = 4096;

// One record slot, written under a seqlock.  Payload words are accessed with
// relaxed atomic_refs so a racing dump is TSan-clean; the sequence word
// (odd = write in progress) plus fences publishes them.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::uint64_t span = 0;
  std::uint64_t ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t meta = 0;  // kind | cause<<8 | op<<16
};

inline void slotStore(std::uint64_t& w, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(w).store(v, std::memory_order_relaxed);
}

inline std::uint64_t slotLoad(const std::uint64_t& w) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(w))
      .load(std::memory_order_relaxed);
}

struct ThreadRing {
  std::uint32_t tid = 0;
  std::uint64_t next = 0;  // owner-thread only
  Slot slots[kRingCapacity];

  void emit(TraceKind kind, std::uint64_t span, std::uint64_t a,
            std::uint64_t b, std::uint8_t cause, std::uint16_t op) {
    Slot& s = slots[next++ % kRingCapacity];
    const std::uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq0 + 1, std::memory_order_relaxed);  // odd: write begins
    std::atomic_thread_fence(std::memory_order_release);
    slotStore(s.span, span);
    slotStore(s.ns, nowNs());
    slotStore(s.a, a);
    slotStore(s.b, b);
    slotStore(s.meta, static_cast<std::uint64_t>(kind) |
                          (static_cast<std::uint64_t>(cause) << 8) |
                          (static_cast<std::uint64_t>(op) << 16));
    s.seq.store(seq0 + 2, std::memory_order_release);  // even: write done
  }

  // Returns false if the slot was torn by a concurrent write (caller skips).
  bool read(std::size_t i, std::uint64_t wantSpan, TraceRecord& out) const {
    const Slot& s = slots[i];
    const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1) != 0) return false;
    TraceRecord r;
    const std::uint64_t span = slotLoad(s.span);
    r.ns = slotLoad(s.ns);
    r.a = slotLoad(s.a);
    r.b = slotLoad(s.b);
    const std::uint64_t meta = slotLoad(s.meta);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq1) return false;
    if (span != wantSpan) return false;
    r.tid = tid;
    r.kind = static_cast<TraceKind>(meta & 0xff);
    r.cause = static_cast<std::uint8_t>((meta >> 8) & 0xff);
    r.op = static_cast<std::uint16_t>((meta >> 16) & 0xffff);
    out = r;
    return true;
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t nextTid = 0;
  std::uint64_t nextSpan = 0;  // last span handed out by traceEnable()
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: rings outlive all threads
  return *r;
}

// Keeps the ring alive (registry holds another reference, so records stay
// dumpable after the thread exits).
struct RingHolder {
  std::shared_ptr<ThreadRing> ring;
};

ThreadRing& localRing() {
  // Constant-initialized pointer cache: the emit path pays one TLS load and
  // a null check instead of a guarded dynamic initializer + shared_ptr
  // indirection per record.
  thread_local ThreadRing* cached = nullptr;
  thread_local RingHolder holder;
  if (cached == nullptr) {
    holder.ring = std::make_shared<ThreadRing>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    holder.ring->tid = reg.nextTid++;
    reg.rings.push_back(holder.ring);
    cached = holder.ring.get();
  }
  return *cached;
}

}  // namespace

namespace detail {

std::atomic<std::uint64_t>& traceSpan() {
  static std::atomic<std::uint64_t> span{0};
  return span;
}

void traceEmitSlow(TraceKind kind, std::uint64_t span, std::uint64_t a,
                   std::uint64_t b, std::uint8_t cause, std::uint16_t op) {
  localRing().emit(kind, span, a, b, cause, op);
}

}  // namespace detail

void traceEnable() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  detail::traceSpan().store(++reg.nextSpan, std::memory_order_relaxed);
}

void traceDisable() {
  detail::traceSpan().store(0, std::memory_order_relaxed);
}

std::size_t traceRingCapacity() { return kRingCapacity; }

std::vector<TraceRecord> dumpTrace() {
  Registry& reg = registry();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint64_t span;
  {
    std::lock_guard<std::mutex> lk(reg.mu);
    rings = reg.rings;
    span = reg.nextSpan;  // dump the latest span even after traceDisable()
  }
  std::vector<TraceRecord> out;
  if (span == 0) return out;
  for (const auto& ring : rings) {
    for (std::size_t i = 0; i < kRingCapacity; ++i) {
      TraceRecord r;
      if (ring->read(i, span, r)) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& x, const TraceRecord& y) {
              return x.ns != y.ns ? x.ns < y.ns : x.tid < y.tid;
            });
  return out;
}

const char* traceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kTxCommit: return "tx_commit";
    case TraceKind::kTxAbort: return "tx_abort";
    case TraceKind::kTxRestart: return "tx_restart";
    case TraceKind::kMapOp: return "map_op";
    case TraceKind::kTablePublish: return "table_publish";
    case TraceKind::kMigrationBatch: return "migration_batch";
    case TraceKind::kReshardDecision: return "reshard_decision";
    case TraceKind::kMaintPass: return "maint_pass";
    case TraceKind::kSplayStep: return "splay_step";
  }
  return "unknown";
}

std::string formatTraceRecord(const TraceRecord& r) {
  std::ostringstream os;
  os << r.ns << " tid=" << r.tid << " " << traceKindName(r.kind);
  if (r.kind == TraceKind::kTxAbort || r.kind == TraceKind::kTxRestart)
    os << " cause=" << abortCauseName(static_cast<std::size_t>(r.cause));
  os << " a=" << r.a << " b=" << r.b << " op=" << r.op;
  return os.str();
}

void dumpTrace(std::ostream& os) {
  for (const TraceRecord& r : dumpTrace()) os << formatTraceRecord(r) << "\n";
}

}  // namespace sftree::obs
