// Log2-bucketed latency histogram.
//
// 64 buckets: bucket 0 holds the value 0, bucket b (b >= 1) holds values in
// [2^(b-1), 2^b - 1].  Values are recorded in nanoseconds by convention, but
// the histogram itself is unit-agnostic.
//
// Concurrency follows the ThreadStats single-writer discipline: one owning
// thread records, while aggregators may take a snapshot() concurrently.  All
// counter accesses go through relaxed single-word atomic_refs, so the owner's
// fast path compiles to plain load/add/store and concurrent snapshots stay
// well-defined (semantically racy — a snapshot mixes buckets from different
// instants, which is fine for reporting).
//
// operator+= merges two *private* copies (snapshots); quantile accessors are
// meant for merged/snapshotted copies as well.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace sftree::obs {

namespace detail {

inline std::uint64_t relaxedLoad(const std::uint64_t& c) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(c))
      .load(std::memory_order_relaxed);
}

inline void relaxedStore(std::uint64_t& c, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(c).store(v, std::memory_order_relaxed);
}

// Single-writer increment: compiles to a plain add, no lock prefix.
inline void relaxedBump(std::uint64_t& c, std::uint64_t delta = 1) {
  relaxedStore(c, relaxedLoad(c) + delta);
}

}  // namespace detail

class LogHistogram {
 public:
  static constexpr std::size_t kBucketCount = 64;

  static constexpr std::size_t bucketOf(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }

  // Inclusive upper bound of a bucket (lower bound is the previous bucket's
  // bound + 1; bucket 0 is exactly {0}).
  static constexpr std::uint64_t bucketUpperBound(std::size_t b) {
    return b == 0 ? 0
           : b >= kBucketCount - 1
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << b) - 1;
  }

  // Owner-thread only.
  void record(std::uint64_t value) {
    detail::relaxedBump(buckets_[std::min(bucketOf(value), kBucketCount - 1)]);
    detail::relaxedBump(count_);
    detail::relaxedBump(sum_, value);
    detail::relaxedStore(max_, std::max(detail::relaxedLoad(max_), value));
  }

  // Concurrency-safe copy (same contract as ThreadStats::snapshot()).
  LogHistogram snapshot() const {
    LogHistogram out;
    for (std::size_t b = 0; b < kBucketCount; ++b)
      out.buckets_[b] = detail::relaxedLoad(buckets_[b]);
    out.count_ = detail::relaxedLoad(count_);
    out.sum_ = detail::relaxedLoad(sum_);
    out.max_ = detail::relaxedLoad(max_);
    return out;
  }

  // Quiescent use only (mirrors ThreadStats::reset()).
  void reset() {
    for (std::size_t b = 0; b < kBucketCount; ++b)
      detail::relaxedStore(buckets_[b], 0);
    detail::relaxedStore(count_, 0);
    detail::relaxedStore(sum_, 0);
    detail::relaxedStore(max_, 0);
  }

  // Plain merge of two private copies (not concurrency-safe).
  LogHistogram& operator+=(const LogHistogram& o) {
    for (std::size_t b = 0; b < kBucketCount; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
    return *this;
  }

  std::uint64_t count() const { return detail::relaxedLoad(count_); }
  std::uint64_t sum() const { return detail::relaxedLoad(sum_); }
  std::uint64_t max() const { return detail::relaxedLoad(max_); }
  std::uint64_t bucketCount(std::size_t b) const {
    return detail::relaxedLoad(buckets_[b]);
  }

  double mean() const {
    const auto n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // Quantile estimate via linear interpolation inside the covering bucket.
  // Exact at bucket boundaries; within a bucket the error is bounded by the
  // bucket width (a factor of 2).  The top populated bucket is clamped by
  // the recorded max, so quantile(1.0) == max().
  double quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(n);
    double cum = 0.0;
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      const double inBucket =
          static_cast<double>(detail::relaxedLoad(buckets_[b]));
      if (inBucket == 0.0) continue;
      if (cum + inBucket >= target) {
        const double lo =
            b == 0 ? 0.0 : static_cast<double>(bucketUpperBound(b - 1)) + 1.0;
        double hi = static_cast<double>(bucketUpperBound(b));
        hi = std::min(hi, static_cast<double>(max()));
        const double frac =
            inBucket == 0.0 ? 0.0 : (target - cum) / inBucket;
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      }
      cum += inBucket;
    }
    return static_cast<double>(max());
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::uint64_t buckets_[kBucketCount] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace sftree::obs
