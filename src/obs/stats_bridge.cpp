#include "obs/stats_bridge.hpp"

#include "mem/arena.hpp"
#include "obs/abort_cause.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "stm/domain.hpp"
#include "stm/stats.hpp"
#include "trees/sftree.hpp"
#include "trees/violation_queue.hpp"

namespace sftree::obs {

namespace {

std::string join(const std::string& prefix, const char* name) {
  return prefix.empty() ? std::string(name) : prefix + "." + name;
}

}  // namespace

void emitThreadStats(MetricSink& out, const std::string& prefix,
                     const stm::ThreadStats& s) {
  out.counter(join(prefix, "commits"), s.commits);
  out.counter(join(prefix, "aborts"), s.aborts);
  for (std::size_t i = 0; i < kAbortCauseCount; ++i) {
    out.counter(join(prefix, "aborts_by_cause") + "." + abortCauseName(i),
                s.abortsByCause[i]);
  }
  out.gauge(join(prefix, "abort_ratio"), s.abortRatio());
  out.counter(join(prefix, "reads"), s.reads);
  out.counter(join(prefix, "ureads"), s.ureads);
  out.counter(join(prefix, "writes"), s.writes);
  out.counter(join(prefix, "elastic_cuts"), s.elasticCuts);
  out.counter(join(prefix, "snapshot_extensions"), s.snapshotExtensions);
  out.counter(join(prefix, "ro_commits"), s.roCommits);
  out.counter(join(prefix, "ro_snapshot_extensions"), s.roSnapshotExtensions);
  out.counter(join(prefix, "ro_promotions"), s.roPromotions);
  out.counter(join(prefix, "write_lookups"), s.writeLookups);
  out.counter(join(prefix, "write_probes"), s.writeProbes);
  out.gauge(join(prefix, "mean_write_probe"), s.meanWriteProbe());
  out.counter(join(prefix, "ops"), s.ops);
  out.gauge(join(prefix, "mean_op_reads"), s.meanOpReads());
  out.counter(join(prefix, "max_op_reads"), s.maxOpReads);
  out.histogram(join(prefix, "tx_commit_ns"), s.txCommitNs);
  out.histogram(join(prefix, "tx_abort_ns"), s.txAbortNs);
}

void emitViolationQueueStats(MetricSink& out, const std::string& prefix,
                             const trees::ViolationQueueStats& s) {
  out.counter(join(prefix, "captured"), s.captured);
  out.counter(join(prefix, "enqueued"), s.enqueued);
  out.counter(join(prefix, "deduped"), s.deduped);
  out.counter(join(prefix, "drained"), s.drained);
  out.counter(join(prefix, "dropped"), s.dropped);
  out.counter(join(prefix, "overflows"), s.overflows);
  out.counter(join(prefix, "absorbed_ticks"), s.absorbedTicks);
  out.gauge(join(prefix, "depth"), static_cast<double>(s.depth()));
  out.gauge(join(prefix, "mean_drain_latency_us"), s.meanDrainLatencyUs());
}

void emitMaintenanceStats(MetricSink& out, const std::string& prefix,
                          const trees::MaintenanceStats& s) {
  out.counter(join(prefix, "traversals"), s.traversals);
  out.counter(join(prefix, "full_sweeps"), s.fullSweeps);
  out.counter(join(prefix, "rotations"), s.rotations);
  out.counter(join(prefix, "removals"), s.removals);
  out.counter(join(prefix, "failed_structural_ops"), s.failedStructuralOps);
  out.counter(join(prefix, "nodes_freed"), s.nodesFreed);
  out.counter(join(prefix, "nodes_retired"), s.nodesRetired);
  out.counter(join(prefix, "nodes_visited"), s.nodesVisited);
  out.counter(join(prefix, "shared_prefix_skips"), s.sharedPrefixSkips);
  out.counter(join(prefix, "sweeps_deferred"), s.sweepsDeferred);
  out.counter(join(prefix, "access_entries_drained"), s.accessEntriesDrained);
  out.counter(join(prefix, "access_ticks_consumed"), s.accessTicksConsumed);
  out.counter(join(prefix, "splay_steps"), s.splaySteps);
  out.counter(join(prefix, "splay_zig_zigs"), s.splayZigZigs);
  out.counter(join(prefix, "splay_budget_stops"), s.splayBudgetStops);
  out.counter(join(prefix, "rebalance_skipped_hot"), s.rebalanceSkippedHot);
  out.histogram(join(prefix, "access_depth"), s.accessDepth);
  out.histogram(join(prefix, "pass_ns"), s.passNs);
  emitViolationQueueStats(out, join(prefix, "queue"), s.queue);
}

void emitSchedulerStats(MetricSink& out, const std::string& prefix,
                        const shard::SchedulerStats& s) {
  out.counter(join(prefix, "passes"), s.passes);
  out.counter(join(prefix, "active_passes"), s.activePasses);
  out.counter(join(prefix, "backoff_skips"), s.backoffSkips);
  out.counter(join(prefix, "signal_wakeups"), s.signalWakeups);
  out.counter(join(prefix, "priority_picks"), s.priorityPicks);
}

void emitArenaStats(MetricSink& out, const std::string& prefix,
                    const mem::SlabArena& a) {
  out.gauge(join(prefix, "slabs"), static_cast<double>(a.slabCount()));
  out.counter(join(prefix, "allocated"), a.allocated());
  out.counter(join(prefix, "recycled"), a.recycled());
  out.gauge(join(prefix, "live_blocks"), static_cast<double>(a.liveBlocks()));
  out.gauge(join(prefix, "block_bytes"), static_cast<double>(a.blockSize()));
}

MetricsRegistry::Registration registerDomainMetrics(MetricsRegistry& reg,
                                                    std::string prefix,
                                                    stm::Domain& d) {
  return reg.add(std::move(prefix), [&d](MetricSink& out) {
    emitThreadStats(out, "", d.aggregateStats());
  });
}

}  // namespace sftree::obs
