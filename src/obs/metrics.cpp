#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/clock.hpp"

namespace sftree::obs {

namespace {

// Counters and histogram counts are exact integers; gauges may be fractional.
std::string formatNumber(double v) {
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string promName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

void appendHistogramScalars(
    const std::string& name, const LogHistogram& h,
    const std::function<void(const std::string&, double)>& emit) {
  emit(name + ".count", static_cast<double>(h.count()));
  emit(name + ".sum", static_cast<double>(h.sum()));
  emit(name + ".mean", h.mean());
  emit(name + ".p50", h.p50());
  emit(name + ".p95", h.p95());
  emit(name + ".p99", h.p99());
  emit(name + ".max", static_cast<double>(h.max()));
}

}  // namespace

void MetricsRegistry::Registration::release() {
  if (reg_ != nullptr) reg_->remove(id_);
  reg_ = nullptr;
}

MetricsRegistry::Registration MetricsRegistry::add(std::string prefix,
                                                   Callback cb) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = nextId_++;
  sources_.push_back({id, std::move(prefix), std::move(cb)});
  return Registration(this, id);
}

void MetricsRegistry::remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                [id](const Source& s) { return s.id == id; }),
                 sources_.end());
}

std::size_t MetricsRegistry::sourceCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sources_.size();
}

std::vector<Metric> MetricsRegistry::collect() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Metric> out;
  for (const Source& s : sources_) {
    MetricSink sink;
    sink.prefix_ = s.prefix;
    s.cb(sink);
    out.insert(out.end(), std::make_move_iterator(sink.metrics_.begin()),
               std::make_move_iterator(sink.metrics_.end()));
  }
  return out;
}

std::string MetricsRegistry::renderText() const {
  const auto metrics = collect();
  // Expand histograms into scalar lines first so alignment covers them too.
  std::vector<std::pair<std::string, std::string>> lines;
  std::size_t width = 0;
  auto push = [&](const std::string& name, double v) {
    lines.emplace_back(name, formatNumber(v));
    width = std::max(width, name.size());
  };
  for (const Metric& m : metrics) {
    if (m.kind == Metric::Kind::kHistogram) {
      appendHistogramScalars(m.name, m.hist, push);
    } else {
      push(m.name, m.value);
    }
  }
  std::ostringstream os;
  for (const auto& [name, value] : lines) {
    os << name;
    for (std::size_t i = name.size(); i < width + 2; ++i) os << ' ';
    os << value << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::renderJson() const {
  const auto metrics = collect();
  std::ostringstream os;
  os << "{";
  bool first = true;
  auto emit = [&](const std::string& name, double v) {
    if (!first) os << ",";
    first = false;
    os << "\"" << jsonEscape(name) << "\":" << formatNumber(v);
  };
  for (const Metric& m : metrics) {
    if (m.kind == Metric::Kind::kHistogram) {
      appendHistogramScalars(m.name, m.hist, emit);
    } else {
      emit(m.name, m.value);
    }
  }
  os << "}";
  return os.str();
}

std::string MetricsRegistry::renderPrometheus() const {
  const auto metrics = collect();
  std::ostringstream os;
  for (const Metric& m : metrics) {
    const std::string name = promName(m.name);
    switch (m.kind) {
      case Metric::Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << formatNumber(m.value) << "\n";
        break;
      case Metric::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << formatNumber(m.value) << "\n";
        break;
      case Metric::Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < LogHistogram::kBucketCount; ++b) {
          const std::uint64_t n = m.hist.bucketCount(b);
          if (n == 0) continue;
          cum += n;
          os << name << "_bucket{le=\"" << LogHistogram::bucketUpperBound(b)
             << "\"} " << cum << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << m.hist.count() << "\n"
           << name << "_sum " << m.hist.sum() << "\n"
           << name << "_count " << m.hist.count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// StatsReporter

struct StatsReporter::State {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::uint64_t lines = 0;
};

StatsReporter::StatsReporter(const MetricsRegistry& reg, std::ostream& os,
                             std::uint64_t periodMs)
    : state_(std::make_shared<State>()) {
  thread_ = std::thread([state = state_, &reg, &os, periodMs] {
    std::unique_lock<std::mutex> lk(state->mu);
    while (!state->stop) {
      state->cv.wait_for(lk, std::chrono::milliseconds(periodMs),
                         [&] { return state->stop; });
      if (state->stop) break;
      lk.unlock();
      const std::string line = reg.renderJson();
      const std::uint64_t ts = nowNs();
      lk.lock();
      os << "{\"ts_ns\":" << ts << ",\"metrics\":" << line << "}\n";
      os.flush();
      ++state->lines;
    }
  });
}

StatsReporter::~StatsReporter() { stop(); }

void StatsReporter::stop() {
  {
    std::lock_guard<std::mutex> lk(state_->mu);
    if (state_->stop && !thread_.joinable()) return;
    state_->stop = true;
  }
  state_->cv.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t StatsReporter::linesEmitted() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  return state_->lines;
}

}  // namespace sftree::obs
