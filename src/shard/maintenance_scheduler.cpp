#include "shard/maintenance_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/stats_bridge.hpp"

namespace sftree::shard {

MaintenanceScheduler::MaintenanceScheduler(MaintenanceSchedulerConfig cfg)
    : cfg_(cfg) {
  if (cfg_.workers < 1) {
    throw std::invalid_argument(
        "MaintenanceScheduler: workers must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

MaintenanceScheduler::~MaintenanceScheduler() {
  stop_.store(true, std::memory_order_release);
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

MaintenanceScheduler::TreeHandle MaintenanceScheduler::registerTree(
    std::string name, PassFn pass, WorkSignalFn signal, LoadFn load) {
  auto entry = std::make_shared<Entry>();
  entry->name = std::move(name);
  entry->pass = std::move(pass);
  entry->signal = std::move(signal);
  entry->load = std::move(load);
  entry->nextEligible = Clock::now();
  if (entry->signal) entry->lastSignal = entry->signal();
  std::lock_guard<std::mutex> lk(mu_);
  entry->handle = nextHandle_++;
  entries_.push_back(entry);
  cv_.notify_all();
  return entry->handle;
}

std::shared_ptr<MaintenanceScheduler::Entry> MaintenanceScheduler::findEntry(
    TreeHandle h) const {
  for (const auto& e : entries_) {
    if (e->handle == h) return e;
  }
  return nullptr;
}

void MaintenanceScheduler::unregisterTree(TreeHandle h) {
  std::unique_lock<std::mutex> lk(mu_);
  auto entry = findEntry(h);
  if (entry == nullptr) return;
  entry->dead = true;
  cv_.wait(lk, [&] { return !entry->inPass; });
  // A concurrent unregisterTree(h) may have erased the entry while we
  // waited; the shared_ptr keeps it alive, but erase only what is present.
  const auto it = std::find(entries_.begin(), entries_.end(), entry);
  if (it != entries_.end()) entries_.erase(it);
  if (cursor_ >= entries_.size()) cursor_ = 0;
}

void MaintenanceScheduler::pause(TreeHandle h) {
  std::unique_lock<std::mutex> lk(mu_);
  auto entry = findEntry(h);
  if (entry == nullptr) return;
  ++entry->pauseDepth;
  cv_.wait(lk, [&] { return !entry->inPass; });
}

void MaintenanceScheduler::resume(TreeHandle h) {
  std::lock_guard<std::mutex> lk(mu_);
  auto entry = findEntry(h);
  if (entry == nullptr || entry->pauseDepth == 0) return;
  if (--entry->pauseDepth > 0) return;  // another pauser still active
  entry->nextEligible = Clock::now();
  entry->idleStreak = 0;
  cv_.notify_all();
}

void MaintenanceScheduler::nudge(TreeHandle h) {
  std::lock_guard<std::mutex> lk(mu_);
  auto entry = findEntry(h);
  if (entry == nullptr) return;
  entry->nextEligible = Clock::now();
  entry->idleStreak = 0;
  cv_.notify_all();
}

SchedulerStats MaintenanceScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::vector<TreeMaintStats> MaintenanceScheduler::treeStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TreeMaintStats> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    out.push_back(
        {e->name, e->passes, e->activePasses, e->idleStreak, e->lastLoad});
  }
  return out;
}

obs::MetricsRegistry::Registration MaintenanceScheduler::registerMetrics(
    obs::MetricsRegistry& reg, std::string prefix) {
  return reg.add(std::move(prefix), [this](obs::MetricSink& out) {
    obs::emitSchedulerStats(out, "", stats());
    out.gauge("registered_trees", static_cast<double>(registeredCount()));
    out.gauge("workers", workerCount());
    for (const TreeMaintStats& t : treeStats()) {
      const std::string p = "tree." + t.name + ".";
      out.counter(p + "passes", t.passes);
      out.counter(p + "active_passes", t.activePasses);
      out.gauge(p + "idle_streak", t.idleStreak);
      out.gauge(p + "last_load", static_cast<double>(t.lastLoad));
    }
  });
}

std::size_t MaintenanceScheduler::registeredCount() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::shared_ptr<MaintenanceScheduler::Entry>
MaintenanceScheduler::pickRunnable(Clock::time_point now,
                                   Clock::time_point& earliest,
                                   bool& signalPollNeeded) {
  earliest = Clock::time_point::max();
  signalPollNeeded = false;
  const std::size_t n = entries_.size();
  // The scan considers every entry so eligible trees can compete on load;
  // the first eligible entry in cursor order is the round-robin default,
  // overtaken only by a *strictly* higher load. A sustained hot shard can
  // stay eligible (its queue refills during its own drain, and its work
  // signal bypasses the backoff), so overtakes are capped: after
  // maxPriorityStreak consecutive overrides the round-robin head runs
  // regardless, which bounds every eligible tree's wait.
  std::shared_ptr<Entry> best;
  std::shared_ptr<Entry> firstEligible;
  std::size_t bestIdx = 0;
  std::size_t firstIdx = 0;
  std::uint64_t bestLoad = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (cursor_ + i) % n;
    const auto& e = entries_[idx];
    if (e->dead || e->pauseDepth > 0 || e->inPass) continue;
    bool eligible = now >= e->nextEligible;
    if (!eligible && e->signal) {
      // A backed-off tree that received updates turns hot again right away.
      const std::uint64_t cur = e->signal();
      if (cur != e->lastSignal) {
        e->lastSignal = cur;
        e->idleStreak = 0;
        eligible = true;
        ++stats_.signalWakeups;
      }
    }
    if (!eligible) {
      ++stats_.backoffSkips;
      if (e->signal) signalPollNeeded = true;
      earliest = std::min(earliest, e->nextEligible);
      continue;
    }
    const std::uint64_t load = e->load ? e->load() : 0;
    e->lastLoad = load;
    if (best == nullptr) {
      best = e;
      firstEligible = e;
      bestIdx = idx;
      firstIdx = idx;
      bestLoad = load;
    } else if (load > bestLoad) {
      best = e;
      bestIdx = idx;
      bestLoad = load;
    }
  }
  if (best != nullptr) {
    if (best != firstEligible) {
      if (++priorityStreak_ > cfg_.maxPriorityStreak) {
        // Anti-starvation: the round-robin head has been overtaken for a
        // full streak; run it now.
        best = firstEligible;
        bestIdx = firstIdx;
        priorityStreak_ = 0;
      } else {
        ++stats_.priorityPicks;
      }
    } else {
      priorityStreak_ = 0;
    }
    cursor_ = (bestIdx + 1) % n;
  }
  return best;
}

void MaintenanceScheduler::workerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    Clock::time_point earliest;
    bool signalPollNeeded = false;
    auto entry = pickRunnable(Clock::now(), earliest, signalPollNeeded);
    if (entry == nullptr) {
      // Nothing runnable: sleep until the soonest backoff expires or a
      // register/resume/nudge notifies. Only when a backed-off tree has a
      // work-signal callback is the sleep capped (1 ms poll cadence) — an
      // empty or signal-less pool parks on the condition variable instead
      // of spinning.
      if (signalPollNeeded) {
        const auto cap = Clock::now() + std::chrono::milliseconds(1);
        cv_.wait_until(lk, std::min(earliest, cap));
      } else if (earliest != Clock::time_point::max()) {
        cv_.wait_until(lk, earliest);
      } else {
        cv_.wait(lk);
      }
      continue;
    }

    entry->inPass = true;
    // Sample the signal *before* the pass: updates racing with the
    // traversal then still differ from lastSignal at the next scan and cut
    // the backoff short, instead of being silently absorbed.
    const std::uint64_t signalBefore = entry->signal ? entry->signal() : 0;
    lk.unlock();
    const bool didWork = entry->pass(&stop_);
    lk.lock();
    entry->inPass = false;

    if (entry->signal) entry->lastSignal = signalBefore;
    if (didWork) {
      entry->idleStreak = 0;
      entry->nextEligible = Clock::now() + cfg_.hotPause;
      ++entry->activePasses;
      ++stats_.activePasses;
    } else {
      entry->idleStreak = std::min(entry->idleStreak + 1, 16);
      auto pause = cfg_.basePause * (1LL << std::min(entry->idleStreak - 1, 10));
      if (pause > cfg_.maxPause) pause = cfg_.maxPause;
      entry->nextEligible = Clock::now() + pause;
    }
    ++entry->passes;
    ++stats_.passes;
    // Wake pause()/unregisterTree() waiters and idle co-workers.
    cv_.notify_all();
  }
}

}  // namespace sftree::shard
