#include "shard/reshard.hpp"

#include <algorithm>
#include <vector>

namespace sftree::shard {

ReshardController::ReshardController(ShardedMap& map,
                                     ReshardControllerConfig cfg)
    : map_(map), cfg_(cfg) {}

ReshardController::~ReshardController() { stop(); }

void ReshardController::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      sampleAndAct();
      // Sleep in small steps so stop() stays responsive even with long
      // sampling periods.
      auto left = cfg_.samplePeriod;
      while (left.count() > 0 && !stop_.load(std::memory_order_acquire)) {
        const auto step = std::min<std::chrono::milliseconds>(
            left, std::chrono::milliseconds(10));
        std::this_thread::sleep_for(step);
        left -= step;
      }
    }
  });
}

void ReshardController::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

bool ReshardController::sampleAndAct() {
  std::lock_guard<std::mutex> lk(mu_);
  const auto samples = map_.loadSamples();
  ++stats_.samples;
  const int n = static_cast<int>(samples.size());
  if (n == 0) return false;

  // Interval load per shard: update-tick delta since the previous sample
  // (traffic) plus the weighted violation-queue backlog. New shards (no
  // previous reading) contribute their backlog only for one interval.
  std::vector<Score> scores;
  scores.reserve(samples.size());
  double total = 0;
  std::map<const void*, std::uint64_t> ticksNow;
  for (const ShardLoadSample& s : samples) {
    ticksNow[s.id] = s.updateTicks;
    const auto it = prevTicks_.find(s.id);
    const std::uint64_t delta =
        it == prevTicks_.end()
            ? 0
            : (s.updateTicks >= it->second ? s.updateTicks - it->second : 0);
    const double load =
        static_cast<double>(delta) +
        static_cast<double>(cfg_.queueDepthWeight * s.queueDepth);
    scores.push_back(Score{s.index, load});
    total += load;
  }
  prevTicks_ = std::move(ticksNow);

  if (total < static_cast<double>(cfg_.minOpsPerSample)) {
    ++stats_.idleSamples;
    return false;
  }
  const double fairShare = total / n;

  std::sort(scores.begin(), scores.end(),
            [](const Score& a, const Score& b) { return a.load > b.load; });

  const int maxShards =
      cfg_.maxShards > 0 ? std::min(cfg_.maxShards, map_.routingSlots())
                         : map_.routingSlots();
  if (scores.front().load > cfg_.splitFactor * fairShare && n < maxShards) {
    if (map_.splitShard(scores.front().index) >= 0) {
      ++stats_.splits;
      return true;
    }
    // -1: the shard is down to one slot (or the index went stale); fall
    // through and let a merge rebalance instead if one applies.
  }

  if (n > std::max(cfg_.minShards, 1) && n >= 2) {
    const Score& coldest = scores[scores.size() - 1];
    const Score& secondColdest = scores[scores.size() - 2];
    if (coldest.load + secondColdest.load < cfg_.mergeFactor * fairShare) {
      if (map_.mergeShards(coldest.index, secondColdest.index)) {
        ++stats_.merges;
        return true;
      }
    }
  }
  return false;
}

ReshardControllerStats ReshardController::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace sftree::shard
