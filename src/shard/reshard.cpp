#include "shard/reshard.hpp"

#include <algorithm>
#include <vector>

#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace sftree::shard {

ReshardController::ReshardController(ShardedMap& map,
                                     ReshardControllerConfig cfg)
    : map_(map), cfg_(cfg) {}

ReshardController::~ReshardController() { stop(); }

void ReshardController::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      sampleAndAct();
      // Sleep in small steps so stop() stays responsive even with long
      // sampling periods.
      auto left = cfg_.samplePeriod;
      while (left.count() > 0 && !stop_.load(std::memory_order_acquire)) {
        const auto step = std::min<std::chrono::milliseconds>(
            left, std::chrono::milliseconds(10));
        std::this_thread::sleep_for(step);
        left -= step;
      }
    }
  });
}

void ReshardController::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

bool ReshardController::sampleAndAct() {
  // Sampling and acting run with NO controller lock held: mu_ is a leaf
  // lock guarding prevTicks_/stats_/decisions_ only, never ordered before
  // the map's reshard/topology mutexes or — via makeShard's registerTree —
  // the maintenance scheduler's. Holding it across splitShard/mergeShards
  // would make stats()/decisionLog()/metrics collection block behind a
  // whole migration and closes lock cycles with quiesced walks that pause
  // maintenance. Concurrent sampleAndAct calls (manual vs background) are
  // instead serialized where it matters, by the map's own reshard mutex.
  const auto samples = map_.loadSamples();
  const int n = static_cast<int>(samples.size());

  // Heat-weighted splitting inputs: per-slot traffic and the slot->shard
  // assignment, both fetched before mu_ (leaf-lock discipline; the
  // snapshots are racy against each other like every gauge here).
  std::vector<std::uint64_t> slotTicks;
  std::vector<int> slotOwnersNow;
  if (cfg_.heatWeight > 0) {
    slotTicks = map_.slotOpTicks();
    slotOwnersNow = map_.slotOwners();
  }

  // Interval load per shard: update-tick delta since the previous sample
  // (traffic) plus the weighted violation-queue backlog, plus (heatWeight)
  // the decayed traffic of the shard's hottest routing slot — the skew
  // signal: concentrated traffic out-scores the same volume spread evenly.
  // New shards (no previous reading) contribute their backlog only for one
  // interval.
  std::vector<Score> scores;
  scores.reserve(samples.size());
  double total = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.samples;
    if (n == 0) return false;
    std::vector<double> hotHeatByShard(static_cast<std::size_t>(n), 0.0);
    if (cfg_.heatWeight > 0) {
      if (slotHeat_.size() != slotTicks.size()) {
        slotHeat_.assign(slotTicks.size(), 0.0);
        prevSlotTicks_.assign(slotTicks.size(), 0);
        prevSlotTicks_ = slotTicks;  // first sample: zero deltas
      }
      for (std::size_t s = 0; s < slotTicks.size(); ++s) {
        const std::uint64_t delta = slotTicks[s] >= prevSlotTicks_[s]
                                        ? slotTicks[s] - prevSlotTicks_[s]
                                        : 0;
        slotHeat_[s] =
            cfg_.heatDecay * slotHeat_[s] + static_cast<double>(delta);
        const int owner =
            s < slotOwnersNow.size() ? slotOwnersNow[s] : -1;
        if (owner >= 0 && owner < n) {
          hotHeatByShard[static_cast<std::size_t>(owner)] = std::max(
              hotHeatByShard[static_cast<std::size_t>(owner)], slotHeat_[s]);
        }
      }
      prevSlotTicks_ = slotTicks;
    }
    std::map<const void*, std::uint64_t> ticksNow;
    for (const ShardLoadSample& s : samples) {
      ticksNow[s.id] = s.updateTicks;
      const auto it = prevTicks_.find(s.id);
      const std::uint64_t delta =
          it == prevTicks_.end()
              ? 0
              : (s.updateTicks >= it->second ? s.updateTicks - it->second : 0);
      const double hotHeat =
          s.index >= 0 && s.index < n
              ? hotHeatByShard[static_cast<std::size_t>(s.index)]
              : 0.0;
      const double load =
          static_cast<double>(delta) +
          static_cast<double>(cfg_.queueDepthWeight * s.queueDepth) +
          cfg_.heatWeight * hotHeat;
      scores.push_back(Score{s.index, load, delta, s.queueDepth, hotHeat});
      total += load;
    }
    prevTicks_ = std::move(ticksNow);

    if (total < static_cast<double>(cfg_.minOpsPerSample)) {
      ++stats_.idleSamples;
      return false;
    }
  }
  const double fairShare = total / n;

  std::sort(scores.begin(), scores.end(),
            [](const Score& a, const Score& b) { return a.load > b.load; });

  const int maxShards =
      cfg_.maxShards > 0 ? std::min(cfg_.maxShards, map_.routingSlots())
                         : map_.routingSlots();

  // Every non-idle sample yields one decision record; the inputs (load,
  // fair share, threshold, tick delta, backlog) are captured before the
  // mechanism runs so a refused action still logs what was attempted.
  ReshardDecision d;
  d.ns = obs::nowNs();
  d.fairShare = fairShare;
  d.total = total;

  if (scores.front().load > cfg_.splitFactor * fairShare && n < maxShards) {
    d.action = ReshardDecision::Action::kSplit;
    d.shard = scores.front().index;
    d.load = scores.front().load;
    d.threshold = cfg_.splitFactor * fairShare;
    d.tickDelta = scores.front().tickDelta;
    d.queueDepth = scores.front().queueDepth;
    d.hotSlotHeat = scores.front().hotHeat;
    const int born = map_.splitShard(scores.front().index);
    d.other = born;
    d.acted = born >= 0;
    recordDecision(d);
    if (born >= 0) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.splits;
      return true;
    }
    // -1: the shard is down to one slot (or the index went stale); fall
    // through and let a merge rebalance instead if one applies.
    d = ReshardDecision{};
    d.ns = obs::nowNs();
    d.fairShare = fairShare;
    d.total = total;
  }

  if (n > std::max(cfg_.minShards, 1) && n >= 2) {
    const Score& coldest = scores[scores.size() - 1];
    const Score& secondColdest = scores[scores.size() - 2];
    if (coldest.load + secondColdest.load < cfg_.mergeFactor * fairShare) {
      d.action = ReshardDecision::Action::kMerge;
      d.shard = coldest.index;
      d.other = secondColdest.index;
      d.load = coldest.load + secondColdest.load;
      d.threshold = cfg_.mergeFactor * fairShare;
      d.tickDelta = coldest.tickDelta;
      d.queueDepth = coldest.queueDepth;
      d.acted = map_.mergeShards(coldest.index, secondColdest.index);
      recordDecision(d);
      if (d.acted) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.merges;
        return true;
      }
      return false;
    }
  }

  // Neither threshold tripped: log the hottest/coldest pair the thresholds
  // were judged against (the "why not" record).
  d.action = ReshardDecision::Action::kNone;
  d.shard = scores.front().index;
  d.other = scores.back().index;
  d.load = scores.front().load;
  d.threshold = cfg_.splitFactor * fairShare;
  d.tickDelta = scores.front().tickDelta;
  d.queueDepth = scores.front().queueDepth;
  d.hotSlotHeat = scores.front().hotHeat;
  recordDecision(d);
  return false;
}

void ReshardController::recordDecision(ReshardDecision d) {
  if (obs::traceEnabled()) {
    // a = shard index (as unsigned; -1 never reaches here for the deciding
    // shard), b = rounded deciding load, op = action code, cause = acted.
    // Emitted before taking mu_ so mu_ stays a leaf even against the trace
    // ring registry lock (first emission on a thread registers its ring).
    obs::trace(obs::TraceKind::kReshardDecision,
               static_cast<std::uint64_t>(d.shard < 0 ? 0 : d.shard),
               static_cast<std::uint64_t>(d.load < 0 ? 0 : d.load),
               d.acted ? 1 : 0, static_cast<std::uint16_t>(d.action));
  }
  std::lock_guard<std::mutex> lk(mu_);
  decisions_.push_back(std::move(d));
  while (decisions_.size() > kDecisionLogCapacity) decisions_.pop_front();
}

std::vector<ReshardDecision> ReshardController::decisionLog() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {decisions_.begin(), decisions_.end()};
}

obs::MetricsRegistry::Registration ReshardController::registerMetrics(
    obs::MetricsRegistry& reg, std::string prefix) {
  return reg.add(std::move(prefix), [this](obs::MetricSink& out) {
    ReshardControllerStats s;
    ReshardDecision last;
    bool haveLast = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      s = stats_;
      if (!decisions_.empty()) {
        last = decisions_.back();
        haveLast = true;
      }
    }
    out.counter("samples", s.samples);
    out.counter("idle_samples", s.idleSamples);
    out.counter("splits", s.splits);
    out.counter("merges", s.merges);
    if (haveLast) {
      out.gauge("last_decision.action", static_cast<double>(last.action));
      out.gauge("last_decision.acted", last.acted ? 1.0 : 0.0);
      out.gauge("last_decision.shard", static_cast<double>(last.shard));
      out.gauge("last_decision.load", last.load);
      out.gauge("last_decision.fair_share", last.fairShare);
      out.gauge("last_decision.threshold", last.threshold);
      out.gauge("last_decision.queue_depth",
                static_cast<double>(last.queueDepth));
      out.gauge("last_decision.hot_slot_heat", last.hotSlotHeat);
    }
  });
}

ReshardControllerStats ReshardController::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace sftree::shard
