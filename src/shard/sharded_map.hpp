// Sharded transactional map: hash-partitions the key space over N
// speculation-friendly trees behind the single ITransactionalMap interface.
//
// Each shard is a full SFTree (abstract operations decoupled from
// restructuring, paper §3); the shards' maintenance is multiplexed onto a
// shared MaintenanceScheduler worker pool instead of N dedicated rotator
// threads. Single-key operations touch exactly one shard, so transactions
// on different shards share no tree nodes; with per-shard clock domains
// (DomainMode::PerShard) they share no STM metadata either — each shard
// owns a full stm::Domain, so the shards scale like N independent trees
// with no residual version-clock contention. Cross-shard operations (move,
// countRange, sizeTx) compose the per-shard transactional pieces inside one
// flat-nested transaction; when shards live on different clock domains the
// descriptor joins every touched domain and commits with per-domain
// timestamps under an ordered multi-domain acquisition (see docs/stm.md),
// which keeps them atomic across shards.
//
// --- Dynamic re-sharding ---------------------------------------------------
// The shard *count* adapts online (the paper's decoupling lifted one level:
// the topology absorbs load shifts without stopping traffic). Keys hash to
// a fixed number of routing *slots*; an immutable, epoch-published routing
// table maps each slot to its owning tree. splitShard() moves half of a hot
// shard's slots onto a fresh tree; mergeShards() moves all of a cold
// shard's slots onto a sibling and retires the empty tree (and, in PerShard
// mode, its clock domain). Migration runs in bounded batched range moves
// (SFTree::extractRangeTx + adoptRangeTx) inside ordinary cross-domain
// transactions, so every key is owned by exactly one committed shard at any
// instant; while a slot migrates its table entry carries both trees and
// lookups check the pair inside one transaction. The routing-table pointer
// itself is transactional state in a map-owned routing domain — operations
// read it inside their transaction and republication is a transactional
// write, so route staleness is ordinary STM conflict. Memory reclamation
// (old tables, retired trees) is additionally guarded by an epoch-parity
// operation census (OpGuard) plus the domain's in-flight transaction
// census (stm::Domain::awaitQuiescence). See docs/sharding.md ("Dynamic
// re-sharding").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "stm/domain.hpp"
#include "stm/field.hpp"
#include "trees/map_interface.hpp"
#include "trees/sftree.hpp"

namespace sftree::shard {

// Which STM clock domain(s) the shards commit against. Shared keeps every
// shard on one domain (cross-shard operations stay single-clock); PerShard
// gives each shard its own domain (single-key throughput scales further,
// cross-shard operations pay the multi-domain commit). See
// docs/sharding.md for guidance.
enum class DomainMode : std::uint8_t { Shared, PerShard };

struct ShardedMapConfig {
  int shards = 4;
  // Routing granularity: keys hash onto this many slots, slots map to
  // shards. The slot count is fixed for the map's lifetime and bounds the
  // shard count (shards <= routingSlots); splits/merges only reassign
  // slots. More slots = finer re-sharding granularity at the cost of a
  // (slightly) larger routing table per lookup.
  int routingSlots = 64;
  // Keys moved per migration transaction during a split/merge. Larger
  // batches amortize the cross-domain commit better but widen the conflict
  // window against concurrent mutators.
  std::size_t migrationBatch = 64;
  // Adapt the batch size to observed abort pressure (AIMD): each migration
  // batch that aborted at least once before committing halves the next
  // batch (floor min(8, migrationBatch)); two consecutive clean batches
  // double it back toward the configured ceiling. The abort signal is the
  // migrating thread's own conflict-abort counters on the involved domains
  // (migration runs on the caller thread, so the delta isolates the batch).
  bool adaptiveMigrationBatch = true;
  // Per-shard tree configuration. When a scheduler is supplied,
  // tree.startMaintenance is ignored: shards are built externally
  // maintained and registered with the scheduler instead. tree.domain is
  // overridden according to domainMode.
  trees::SFTreeConfig tree{};
  // Shared maintenance pool (not owned; must outlive the map). When null,
  // every shard runs its own dedicated maintenance thread, as in the paper.
  MaintenanceScheduler* scheduler = nullptr;
  // Prefix for the shards' scheduler entries (diagnostics).
  std::string name = "shard";
  // STM clock domain layout (see above).
  DomainMode domainMode = DomainMode::Shared;
  // Shared mode: the domain every shard runs on (not owned; must outlive
  // the map); null selects the process default.
  stm::Domain* domain = nullptr;
  // PerShard mode: the configuration each owned per-shard domain is
  // constructed with.
  stm::Config stmConfig{};
  // Restore-time topology: explicit slot -> shard assignment for the
  // initial routing table (ckpt::restore rebuilds the checkpointed
  // slot layout before bulk-loading each shard, so the restored map starts
  // with the same partition the image was cut from instead of the default
  // contiguous blocks). Empty = contiguous blocks; otherwise the size must
  // equal routingSlots and every value must be in [0, shards).
  std::vector<int> initialSlotAssignment{};
};

// Aggregated view over all shards. The total sizeEstimate — and, since the
// map itself settles cross-shard moves and migration batches against the
// involved trees' counters, each per-shard estimate — is exact once all
// operations have returned. (Per-shard exactness is load-bearing under
// re-sharding: a merge destroys a tree's counter with the tree, so any
// residual bias would leak into the aggregate permanently.)
struct ShardedMapStats {
  std::int64_t sizeEstimate = 0;
  std::vector<std::int64_t> shardSizeEstimates;
  trees::MaintenanceStats maintenance;  // summed over shards
  // Per-shard violation-queue occupancy (racy snapshots): the load the
  // scheduler prioritizes on, exposed for dashboards/tests. The summed
  // queue counters (enqueued/drained/latency) are in maintenance.queue.
  std::vector<std::uint64_t> shardQueueDepths;
  // Per-shard monotonic update counters (racy snapshots) — the traffic
  // gauge the ReshardController differentiates between samples.
  std::vector<std::uint64_t> shardUpdateTicks;
  // Per-routing-slot operation counters (racy snapshots): every *attempt*
  // of a single-key operation bumps its slot, so the gauges measure where
  // the traffic lands — including retried attempts, like updateTicks — not
  // committed mutations. Indexed by slot, size == routingSlots.
  std::vector<std::uint64_t> slotOpTicks;
  // STM statistics per clock domain: one entry per shard in PerShard mode,
  // a single entry for the shared domain otherwise. Snapshots are exact
  // only while no transactions are in flight.
  std::vector<stm::ThreadStats> domainStats;
  stm::ThreadStats stm;  // sum over domainStats
};

// Re-sharding mechanism counters (lifetime totals).
struct ReshardStats {
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t keysMigrated = 0;
  std::uint64_t migrationBatches = 0;
  std::uint64_t tablePublishes = 0;
  // Adaptive-batch (AIMD) decisions: halvings under abort pressure and
  // re-doublings after clean streaks (see
  // ShardedMapConfig::adaptiveMigrationBatch).
  std::uint64_t batchShrinks = 0;
  std::uint64_t batchGrows = 0;
  // Arena footprint (bytes) and still-live blocks of the trees retired by
  // merges, sampled just before destruction (the "drain" the retirement
  // frees wholesale).
  std::uint64_t retiredArenaBytes = 0;
  std::uint64_t retiredLiveBlocks = 0;
  // Wall time of each migration batch transaction (the extract+adopt unit
  // of work a split/merge interleaves with live traffic).
  obs::LogHistogram migrationBatchNs;
};

// Per-shard load sample for re-sharding policy (see ReshardController).
struct ShardLoadSample {
  // Stable identity across samples while the shard lives (the tree's
  // address — shard *indexes* shift under splits/merges).
  const void* id = nullptr;
  int index = 0;  // current index, valid until the next split/merge
  std::uint64_t updateTicks = 0;
  std::uint64_t queueDepth = 0;
  std::int64_t sizeEstimate = 0;
};

class ShardedMap final : public trees::ITransactionalMap {
 public:
  explicit ShardedMap(ShardedMapConfig cfg = {});
  ~ShardedMap() override;

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  // --- single-key operations (one shard each) ------------------------------
  bool insert(Key k, Value v) override;
  bool erase(Key k) override;
  bool contains(Key k) override;
  std::optional<Value> get(Key k) override;

  // Atomic cross-shard relocation: composes erase(from-shard) and
  // insert(to-shard) in one transaction. No intermediate state — a key at
  // both shards or at neither — is ever observable.
  bool move(Key from, Key to) override;

  bool insertTx(stm::Tx& tx, Key k, Value v) override;
  bool eraseTx(stm::Tx& tx, Key k) override;
  bool containsTx(stm::Tx& tx, Key k) override;
  std::optional<Value> getTx(stm::Tx& tx, Key k) override;
  // Transaction-composable move (the body behind move(); public siblings
  // of the other *Tx entry points compose the same way).
  bool moveTx(stm::Tx& tx, Key from, Key to);

  // Consistent snapshot over every shard (hash partitioning scatters any
  // key range across all of them).
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi) override;
  std::size_t countRange(Key lo, Key hi) override;

  // --- quiesced introspection ----------------------------------------------
  // Serialized against re-sharding (they take the reshard mutex), so they
  // are safe to call while a ReshardController is attached — but the usual
  // quiesced-use contract vs concurrent abstract operations still applies.
  std::size_t size() override;
  int height() override;  // max shard height
  std::vector<Key> keysInOrder() override;
  void quiesce() override;

  // --- sharding-specific surface -------------------------------------------
  int shardCount() const;
  int shardIndexFor(Key k) const;
  // The tree currently owning shard index i. The reference is valid only
  // while no concurrent split/merge can retire it (tests / quiesced use).
  trees::SFTree& shard(int i);

  // The clock domain shard i commits against (shard i's own domain in
  // PerShard mode; the shared one otherwise).
  stm::Domain& domainOf(int i) { return shard(i).domain(); }
  bool perShardDomains() const {
    return cfg_.domainMode == DomainMode::PerShard;
  }
  // Every distinct domain the map's transactions touch (deduplicated; one
  // entry in Shared mode, one per live shard in PerShard mode). Useful for
  // resetting/aggregating statistics around a benchmark run.
  std::vector<stm::Domain*> domains();

  // Committed-size estimate summed over the shards; exact once all
  // operations have returned (like SFTree::sizeEstimate).
  std::int64_t sizeEstimate() const;
  ShardedMapStats aggregatedStats() const;

  // --- dynamic re-sharding --------------------------------------------------
  int routingSlots() const { return cfg_.routingSlots; }
  // Current slot -> shard-index assignment (racy snapshot; slots mid-
  // migration report their new owner).
  std::vector<int> slotOwners() const;
  // Racy per-slot traffic snapshot (ShardedMapStats::slotOpTicks) without
  // the full aggregatedStats walk — the re-sharding heat policy samples it
  // every period, so it must stay a plain counter sweep.
  std::vector<std::uint64_t> slotOpTicks() const;
  // Racy per-shard load snapshot for the re-sharding policy.
  std::vector<ShardLoadSample> loadSamples() const;

  // Splits shard `idx`: half of its routing slots migrate onto a freshly
  // created tree (and domain, in PerShard mode) while traffic continues.
  // Slot selection is load-aware: the shard's slots are ranked by their
  // slotOpTicks traffic gauges and the alternating ranks (hottest first)
  // move, so the split peels the *hot* slots onto the fresh shard and both
  // halves end up with balanced measured load (ticks all equal — e.g. a
  // fresh map — degrades to a stable index interleave). Blocks until the
  // migration has settled. Returns the new shard's index, or -1 when the
  // shard owns a single slot (cannot split further) or `idx` is
  // stale/out of range.
  int splitShard(int idx);
  // Migrates every slot of shard `victimIdx` onto shard `targetIdx`, then
  // retires the empty tree (unregisters maintenance, awaits domain
  // quiescence in PerShard mode, frees the arena wholesale). Returns false
  // when either index is stale/out of range or they are equal.
  bool mergeShards(int victimIdx, int targetIdx);

  ReshardStats reshardStats() const;

  // --- checkpoint/snapshot support (src/ckpt) -------------------------------
  // The routing slot key k hashes onto: a pure function of the (lifetime-
  // fixed) slot count, so the checkpoint layer can demultiplex streamed
  // keys into per-slot segments and restore can re-route them.
  std::size_t slotOfKey(Key k) const { return slotOf(k); }
  // Per-slot *mutation* version counters, distinct from the slotOpTicks
  // traffic gauges (which also tick on reads and would false-dirty every
  // slot a lookup touches). Bumped inside the body of every attempt that
  // may change a slot's content — insert/erase/move and each migration
  // batch — i.e. *before* that transaction can commit, with seq_cst on
  // both sides. The checkpoint certification protocol (sample -> census
  // drain -> stream -> resample; docs/checkpoint.md) turns "tick unchanged"
  // into "slot content unchanged across the streamed window": a writer
  // whose bump the resample missed is seq_cst-ordered after it, so its
  // commit lands after the cut; a writer that bumped before the first
  // sample still held its operation-census ticket, so quiesceOps() waited
  // out its commit before the stream read anything.
  std::uint64_t slotWriteTick(int slot) const {
    return slotWriteTicks_[static_cast<std::size_t>(slot)].load(
        std::memory_order_seq_cst);
  }
  std::vector<std::uint64_t> slotWriteTicks() const;
  // Checkpoint certification barrier: waits until every operation in
  // flight at the call has fully settled (the same epoch-parity census
  // drain table republication uses). After it returns, any update whose
  // dirty-tick bump predates the caller's tick samples has committed or
  // aborted — the other half of the certification argument above.
  void quiesceOps() { guard_.drain(); }
  // Operation fence for the checkpoint forced cut. fencedOpsBegin() parks
  // operations newly arriving at the census and drains the in-flight ones;
  // until fencedOpsEnd() the map is near-quiescent (threads already inside
  // an enclosing transaction, and the fencing thread itself, pass through),
  // so a whole-map read transaction taken under the fence finishes in a
  // bounded number of attempts instead of being starved by sustained write
  // traffic. Maintenance and migration keep running — they preserve
  // logical content and the cut transaction serializes against them.
  void fencedOpsBegin() {
    guard_.fenceBegin();
    guard_.drain();
  }
  void fencedOpsEnd() { guard_.fenceEnd(); }

  // One bounded streaming chunk of a snapshot walk. Inside the caller's
  // transaction: resolves `anchorSlot`'s route, and — unless the slot is
  // mid-migration (info.migrating; nothing is scanned, the caller defers
  // the slot) — scans the owning tree in key order from `lo`, collecting
  // up to maxN present pred-matching pairs. info reports the walked tree's
  // identity (the caller abandons a multi-chunk walk whose anchor re-routed
  // to a different tree between chunks) and the slots that tree currently
  // owns outright (settled, no migration source) — the slots whose keys a
  // completed walk of this tree has fully covered.
  struct SnapshotChunk {
    bool migrating = false;     // anchor slot mid-migration: nothing scanned
    bool treeComplete = false;  // the walk exhausted the tree's key space
    Key nextLo = 0;             // resume cursor when !treeComplete
    const void* treeId = nullptr;        // identity of the tree walked
    std::vector<int> ownedSettledSlots;  // slots settled-owned by that tree
  };
  void snapshotChunkTx(stm::Tx& tx, int anchorSlot, Key lo, std::size_t maxN,
                       const std::function<bool(Key)>& pred,
                       std::vector<trees::SFTree::ExtractedKV>& out,
                       SnapshotChunk& info);
  // Whole-map pred-restricted scan inside the caller's transaction: every
  // distinct tree the current route references, migration sources included.
  // Unbounded read set — the checkpoint's forced-cut fallback, the same
  // proven shape as countRangeTx (one serialization point over the map).
  void snapshotAllTx(stm::Tx& tx, const std::function<bool(Key)>& pred,
                     std::vector<trees::SFTree::ExtractedKV>& out);
  // The domain checkpoint transactions root in (the routing domain: every
  // chunk joins it first through routeTx anyway; tree domains are joined
  // per touch).
  stm::Domain& snapshotRootDomain() { return *routingDomain_; }

  // Registers a snapshot source emitting aggregatedStats() (map totals,
  // summed maintenance, STM counters + abort taxonomy), reshardStats()
  // (including the migration-batch latency histogram), and the per-slot
  // load gauges. The map must outlive the registration.
  [[nodiscard]] obs::MetricsRegistry::Registration registerMetrics(
      obs::MetricsRegistry& reg, std::string prefix);

 private:
  // --- routing ---------------------------------------------------------------
  // One slot's route. While the slot migrates, `prev` carries the tree keys
  // may still live in: lookups check the (owner, prev) pair inside one
  // transaction, inserts go to `owner` once `prev` provably lacks the key,
  // so the mover's scan of `prev` converges (it can only lose such keys).
  struct RouteEntry {
    trees::SFTree* owner = nullptr;
    trees::SFTree* prev = nullptr;
  };
  // Immutable once published; replaced wholesale. The table *pointer* is
  // transactional state (tableTx_): every operation reads it inside its
  // transaction, the re-sharder replaces it with a transactional write, so
  // an operation that resolved a route and commits after a republication
  // fails ordinary STM validation and retries against the new table. This
  // is the only sound ordering: any non-transactional scheme (we tried an
  // epoch census plus write-locking the key's position in the migration
  // source) leaves a window where an in-flight operation routed by the old
  // table serializes *around* the new table's dual-path decisions — e.g. a
  // concurrent insert of an unrelated key relocates this key's insertion
  // point past the locked position, and a stale-routed insert commits a
  // duplicate without touching anything the new-route transaction read or
  // wrote. The previous table's memory is freed only after the operation
  // census drained (readers may still dereference it mid-attempt even
  // though their commits are doomed).
  struct RoutingTable {
    std::uint64_t version = 0;
    std::vector<RouteEntry> slots;
  };

  // Epoch-parity operation census: every map operation holds a ticket from
  // table load to the end of the operation (deferred to transaction end for
  // the Tx-composable entry points, which outlive the call). drain() flips
  // the parity and waits for the old parity's tickets to expire — after
  // which no operation can still be using a previously published table or
  // a tree it referenced. Stripes keep the counters off one shared line;
  // seq_cst on enter/drain closes the load-epoch/increment race (an enter
  // that re-reads an unchanged epoch is ordered before the drain's flip).
  class OpGuard {
   public:
    using Ticket = std::uint32_t;  // (stripe << 1) | parity
    Ticket enter() {
      // Operation fence (checkpoint forced cut): park NEW operations until
      // the fence lifts. Threads already holding a ticket must pass — their
      // enclosing transaction (e.g. a serving-tier batch doing several map
      // ops in one tx) has to finish for the drain to complete, so blocking
      // its later ops would deadlock the fence against its own drain. The
      // fencing thread also passes: the fenced cut reads the map through
      // this same census.
      if (tlsTicketDepth_ == 0 &&
          fence_.load(std::memory_order_acquire) &&
          fenceOwner_.load(std::memory_order_relaxed) !=
              std::this_thread::get_id()) {
        do {
          std::this_thread::yield();
        } while (fence_.load(std::memory_order_acquire));
      }
      ++tlsTicketDepth_;
      const std::size_t s = stm::threadStripe(kStripes);
      for (;;) {
        const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
        std::atomic<std::uint64_t>& c = stripes_[s].n[e & 1];
        c.fetch_add(1, std::memory_order_seq_cst);
        if (epoch_.load(std::memory_order_seq_cst) == e) {
          return static_cast<Ticket>((s << 1) | (e & 1));
        }
        // Raced a flip: the drainer may already have sampled our slot as
        // empty. Move to the new parity.
        c.fetch_sub(1, std::memory_order_seq_cst);
      }
    }
    void exit(Ticket t) {
      --tlsTicketDepth_;
      stripes_[t >> 1].n[t & 1].fetch_sub(1, std::memory_order_seq_cst);
    }
    void drain();
    // Raise/lower the operation fence. The caller drains after raising;
    // from then until fenceEnd() only already-ticketed threads and the
    // owner reach the trees, so a whole-map read transaction cannot be
    // starved by op traffic.
    void fenceBegin() {
      fenceOwner_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
      fence_.store(true, std::memory_order_seq_cst);
    }
    void fenceEnd() { fence_.store(false, std::memory_order_seq_cst); }

   private:
    static constexpr std::size_t kStripes = 16;
    struct alignas(64) Stripe {
      std::atomic<std::uint64_t> n[2] = {{0}, {0}};
    };
    Stripe stripes_[kStripes];
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> fence_{false};
    std::atomic<std::thread::id> fenceOwner_{};
    // Tickets this thread currently holds (across ALL maps — the bypass is
    // deliberately conservative; a stray pass-through only costs the fence
    // a little quiescence, never correctness).
    static thread_local int tlsTicketDepth_;
    // Serializes drains. Two-parity epoch flips are only a full barrier
    // when flips don't interleave: a concurrent flip would strand an old
    // ticket on the parity the other drainer never waits for. Historically
    // every drain ran under reshardMu_ (publishTable); checkpoint
    // certification (quiesceOps) drains from outside that lock.
    std::mutex drainMu_;
  };

  // RAII ticket for the self-contained operations (the transaction, if any,
  // begins and ends inside the call).
  class OpTicket {
   public:
    explicit OpTicket(OpGuard& g) : g_(g), t_(g.enter()) {}
    ~OpTicket() { g_.exit(t_); }
    OpTicket(const OpTicket&) = delete;
    OpTicket& operator=(const OpTicket&) = delete;

   private:
    OpGuard& g_;
    OpGuard::Ticket t_;
  };

  // One live shard: the tree, its owned clock domain (PerShard mode), and
  // its scheduler registration.
  struct ShardRec {
    std::unique_ptr<stm::Domain> domain;  // null in Shared mode
    std::unique_ptr<trees::SFTree> tree;
    MaintenanceScheduler::TreeHandle handle =
        MaintenanceScheduler::kInvalidHandle;
  };

  std::size_t slotOf(Key k) const;
  // Per-slot traffic gauge (see ShardedMapStats::slotOpTicks). Relaxed:
  // the slot index is already in hand at every call site, so the bump is
  // one uncontended-in-expectation RMW per attempt.
  void bumpSlotTick(std::size_t slot) {
    slotTicks_[slot].fetch_add(1, std::memory_order_relaxed);
  }
  // Pre-commit dirty mark for the checkpoint certification (see
  // slotWriteTick). seq_cst, unlike the traffic gauge: the certifying
  // resample must be able to conclude "bump not observed => bump (and the
  // commit sequenced after it) lands after my sample" from the total order.
  void bumpSlotWriteTick(std::size_t slot) {
    slotWriteTicks_[slot].fetch_add(1, std::memory_order_seq_cst);
  }
  // Non-transactional peek (root-domain/kind selection, diagnostics,
  // quiesced walks). Transactional bodies must use routeTx instead.
  const RoutingTable* table() const { return tableTx_.loadAcquire(); }
  // The transactional route read: joins the routing domain and reads the
  // table pointer, pinned (elastic window cuts must never evict it). Every
  // operation body calls this once per attempt, which also guarantees a
  // zero-logging read-only attempt always has a first read before any tree
  // read — so a stale later read restarts the body (re-resolving the
  // route) instead of sliding the snapshot under a stale one.
  const RoutingTable* routeTx(stm::Tx& tx) {
    stm::DomainScope scope(tx, *routingDomain_);
    return tableTx_.readPinned(tx);
  }

  // --- dual-path (migration-aware) transactional pieces ---------------------
  // Each resolves against one RouteEntry; when e.prev is set they compose
  // both trees inside the caller's transaction. `hit` (erase) reports the
  // tree the key was actually removed from (size-estimate bookkeeping).
  static bool entryContainsTx(stm::Tx& tx, const RouteEntry& e, Key k);
  static std::optional<Value> entryGetTx(stm::Tx& tx, const RouteEntry& e,
                                         Key k);
  static bool entryInsertTx(stm::Tx& tx, const RouteEntry& e, Key k, Value v);
  static bool entryEraseTx(stm::Tx& tx, const RouteEntry& e, Key k,
                           trees::SFTree** hit);

  // Transaction kind for a single-key update against `e`: the tree's own
  // rule on the fast path, but always Normal while the slot migrates — the
  // dual-path checks (contains-in-prev before insert-into-owner) rely on
  // full read-set validation, which elastic window cuts would skip.
  static stm::TxKind entryUpdateKind(const RouteEntry& e) {
    return e.prev == nullptr ? e.owner->updateTxKind() : stm::TxKind::Normal;
  }

  // Distinct trees referenced by `t` (owners first, then migration
  // sources), for whole-map transactional scans.
  static std::vector<trees::SFTree*> distinctTrees(const RoutingTable& t);

  // --- re-sharding machinery -------------------------------------------------
  std::unique_ptr<ShardRec> makeShard();
  // Publishes `next` as the routing table and blocks until no operation
  // can still see the old one; deletes it.
  void publishTable(std::unique_ptr<RoutingTable> next);
  // Moves every present key of `movedSlots` from src to dst in batched
  // range-move transactions, with the intermediate dual-route table
  // published first and the settled table after. reshardMu_ held.
  void migrateSlots(trees::SFTree* src, trees::SFTree* dst,
                    const std::vector<int>& movedSlots);

  // Pause/resume restructuring on every shard (scheduler entries or
  // dedicated threads) around quiesced walks. topoMu_ held by caller.
  std::vector<bool> pauseAllMaintenance();
  void resumeAllMaintenance(const std::vector<bool>& wasRunning);

  // The domain map-level (multi-shard) transactions are rooted in: the
  // first slot's owner (the remaining domains are joined as the
  // transaction touches them).
  stm::Domain& homeDomain() { return table()->slots.front().owner->domain(); }

  ShardedMapConfig cfg_;
  // Serializes split/merge against each other and against the quiesced
  // introspection walks. Ordered before topoMu_.
  mutable std::mutex reshardMu_;
  // Guards live_ (the shard list). Never held while waiting on drains.
  mutable std::mutex topoMu_;
  // Dedicated clock domain guarding exactly one word: the routing-table
  // pointer. Read-shared by every operation, written only at publications
  // (rare), so it adds no write contention; it must share the trees' TM
  // backend (one transaction spans both). Declared before the shards so it
  // outlives their teardown.
  std::unique_ptr<stm::Domain> routingDomain_;
  stm::TxField<const RoutingTable*> tableTx_{nullptr};
  std::vector<std::unique_ptr<ShardRec>> live_;
  mutable OpGuard guard_;  // const accessors take tickets too
  // One relaxed counter per routing slot (fixed size routingSlots for the
  // map's lifetime, like the slot space itself).
  std::unique_ptr<std::atomic<std::uint64_t>[]> slotTicks_;
  // Per-slot mutation versions for checkpoint certification (see
  // slotWriteTick / bumpSlotWriteTick). Same fixed size.
  std::unique_ptr<std::atomic<std::uint64_t>[]> slotWriteTicks_;
  std::uint64_t tableVersion_ = 0;  // reshardMu_ (and constructor) only
  mutable std::mutex reshardStatsMu_;
  ReshardStats reshardStats_;
};

}  // namespace sftree::shard
