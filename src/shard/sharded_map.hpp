// Sharded transactional map: hash-partitions the key space over N
// speculation-friendly trees behind the single ITransactionalMap interface.
//
// Each shard is a full SFTree (abstract operations decoupled from
// restructuring, paper §3); the shards' maintenance is multiplexed onto a
// shared MaintenanceScheduler worker pool instead of N dedicated rotator
// threads. Single-key operations touch exactly one shard, so transactions
// on different shards share no tree nodes and conflict only on the global
// STM clock; cross-shard operations (move, countRange, sizeTx) compose the
// per-shard transactional pieces inside one flat-nested transaction, which
// keeps them atomic across shards for free — the STM runtime is
// process-global, not per-tree.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shard/maintenance_scheduler.hpp"
#include "trees/map_interface.hpp"
#include "trees/sftree.hpp"

namespace sftree::shard {

struct ShardedMapConfig {
  int shards = 4;
  // Per-shard tree configuration. When a scheduler is supplied,
  // tree.startMaintenance is ignored: shards are built externally
  // maintained and registered with the scheduler instead.
  trees::SFTreeConfig tree{};
  // Shared maintenance pool (not owned; must outlive the map). When null,
  // every shard runs its own dedicated maintenance thread, as in the paper.
  MaintenanceScheduler* scheduler = nullptr;
  // Prefix for the shards' scheduler entries (diagnostics).
  std::string name = "shard";
};

// Aggregated view over all shards. The total sizeEstimate is exact once all
// operations have returned; the per-shard estimates can drift under
// cross-shard moves (which bypass the shards' own counters) but their sum
// cannot.
struct ShardedMapStats {
  std::int64_t sizeEstimate = 0;
  std::vector<std::int64_t> shardSizeEstimates;
  trees::MaintenanceStats maintenance;  // summed over shards
};

class ShardedMap final : public trees::ITransactionalMap {
 public:
  explicit ShardedMap(ShardedMapConfig cfg = {});
  ~ShardedMap() override;

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  // --- single-key operations (one shard each) ------------------------------
  bool insert(Key k, Value v) override;
  bool erase(Key k) override;
  bool contains(Key k) override;
  std::optional<Value> get(Key k) override;

  // Atomic cross-shard relocation: composes erase(from-shard) and
  // insert(to-shard) in one transaction. No intermediate state — a key at
  // both shards or at neither — is ever observable.
  bool move(Key from, Key to) override;

  bool insertTx(stm::Tx& tx, Key k, Value v) override;
  bool eraseTx(stm::Tx& tx, Key k) override;
  bool containsTx(stm::Tx& tx, Key k) override;
  std::optional<Value> getTx(stm::Tx& tx, Key k) override;

  // Consistent snapshot over every shard (hash partitioning scatters any
  // key range across all of them).
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi) override;
  std::size_t countRange(Key lo, Key hi) override;

  // --- quiesced introspection ----------------------------------------------
  std::size_t size() override;
  int height() override;  // max shard height
  std::vector<Key> keysInOrder() override;
  void quiesce() override;

  // --- sharding-specific surface -------------------------------------------
  int shardCount() const { return static_cast<int>(shards_.size()); }
  int shardIndexFor(Key k) const;
  trees::SFTree& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }

  // Committed-size estimate summed over the shards; exact once all
  // operations have returned (like SFTree::sizeEstimate).
  std::int64_t sizeEstimate() const;
  ShardedMapStats aggregatedStats() const;

 private:
  trees::SFTree& shardFor(Key k) { return *shards_[hashShard(k)]; }
  std::size_t hashShard(Key k) const;

  // Pause/resume restructuring on every shard (scheduler entries or
  // dedicated threads) around quiesced walks.
  std::vector<bool> pauseAllMaintenance();
  void resumeAllMaintenance(const std::vector<bool>& wasRunning);

  stm::TxKind updateTxKind() const;

  ShardedMapConfig cfg_;
  std::vector<std::unique_ptr<trees::SFTree>> shards_;
  std::vector<MaintenanceScheduler::TreeHandle> handles_;
};

}  // namespace sftree::shard
