// Sharded transactional map: hash-partitions the key space over N
// speculation-friendly trees behind the single ITransactionalMap interface.
//
// Each shard is a full SFTree (abstract operations decoupled from
// restructuring, paper §3); the shards' maintenance is multiplexed onto a
// shared MaintenanceScheduler worker pool instead of N dedicated rotator
// threads. Single-key operations touch exactly one shard, so transactions
// on different shards share no tree nodes; with per-shard clock domains
// (DomainMode::PerShard) they share no STM metadata either — each shard
// owns a full stm::Domain, so the shards scale like N independent trees
// with no residual version-clock contention. Cross-shard operations (move,
// countRange, sizeTx) compose the per-shard transactional pieces inside one
// flat-nested transaction; when shards live on different clock domains the
// descriptor joins every touched domain and commits with per-domain
// timestamps under an ordered multi-domain acquisition (see docs/stm.md),
// which keeps them atomic across shards.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shard/maintenance_scheduler.hpp"
#include "stm/domain.hpp"
#include "trees/map_interface.hpp"
#include "trees/sftree.hpp"

namespace sftree::shard {

// Which STM clock domain(s) the shards commit against. Shared keeps every
// shard on one domain (cross-shard operations stay single-clock); PerShard
// gives each shard its own domain (single-key throughput scales further,
// cross-shard operations pay the multi-domain commit). See
// docs/sharding.md for guidance.
enum class DomainMode : std::uint8_t { Shared, PerShard };

struct ShardedMapConfig {
  int shards = 4;
  // Per-shard tree configuration. When a scheduler is supplied,
  // tree.startMaintenance is ignored: shards are built externally
  // maintained and registered with the scheduler instead. tree.domain is
  // overridden according to domainMode.
  trees::SFTreeConfig tree{};
  // Shared maintenance pool (not owned; must outlive the map). When null,
  // every shard runs its own dedicated maintenance thread, as in the paper.
  MaintenanceScheduler* scheduler = nullptr;
  // Prefix for the shards' scheduler entries (diagnostics).
  std::string name = "shard";
  // STM clock domain layout (see above).
  DomainMode domainMode = DomainMode::Shared;
  // Shared mode: the domain every shard runs on (not owned; must outlive
  // the map); null selects the process default.
  stm::Domain* domain = nullptr;
  // PerShard mode: the configuration each owned per-shard domain is
  // constructed with.
  stm::Config stmConfig{};
};

// Aggregated view over all shards. The total sizeEstimate is exact once all
// operations have returned; the per-shard estimates can drift under
// cross-shard moves (which bypass the shards' own counters) but their sum
// cannot.
struct ShardedMapStats {
  std::int64_t sizeEstimate = 0;
  std::vector<std::int64_t> shardSizeEstimates;
  trees::MaintenanceStats maintenance;  // summed over shards
  // Per-shard violation-queue occupancy (racy snapshots): the load the
  // scheduler prioritizes on, exposed for dashboards/tests. The summed
  // queue counters (enqueued/drained/latency) are in maintenance.queue.
  std::vector<std::uint64_t> shardQueueDepths;
  // STM statistics per clock domain: one entry per shard in PerShard mode,
  // a single entry for the shared domain otherwise. Snapshots are exact
  // only while no transactions are in flight.
  std::vector<stm::ThreadStats> domainStats;
  stm::ThreadStats stm;  // sum over domainStats
};

class ShardedMap final : public trees::ITransactionalMap {
 public:
  explicit ShardedMap(ShardedMapConfig cfg = {});
  ~ShardedMap() override;

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  // --- single-key operations (one shard each) ------------------------------
  bool insert(Key k, Value v) override;
  bool erase(Key k) override;
  bool contains(Key k) override;
  std::optional<Value> get(Key k) override;

  // Atomic cross-shard relocation: composes erase(from-shard) and
  // insert(to-shard) in one transaction. No intermediate state — a key at
  // both shards or at neither — is ever observable.
  bool move(Key from, Key to) override;

  bool insertTx(stm::Tx& tx, Key k, Value v) override;
  bool eraseTx(stm::Tx& tx, Key k) override;
  bool containsTx(stm::Tx& tx, Key k) override;
  std::optional<Value> getTx(stm::Tx& tx, Key k) override;

  // Consistent snapshot over every shard (hash partitioning scatters any
  // key range across all of them).
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi) override;
  std::size_t countRange(Key lo, Key hi) override;

  // --- quiesced introspection ----------------------------------------------
  std::size_t size() override;
  int height() override;  // max shard height
  std::vector<Key> keysInOrder() override;
  void quiesce() override;

  // --- sharding-specific surface -------------------------------------------
  int shardCount() const { return static_cast<int>(shards_.size()); }
  int shardIndexFor(Key k) const;
  trees::SFTree& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }

  // The clock domain shard i commits against (shard i's own domain in
  // PerShard mode; the shared one otherwise).
  stm::Domain& domainOf(int i) {
    return shards_[static_cast<std::size_t>(i)]->domain();
  }
  bool perShardDomains() const {
    return cfg_.domainMode == DomainMode::PerShard;
  }
  // Every distinct domain the map's transactions touch (deduplicated; one
  // entry in Shared mode, shards() entries in PerShard mode). Useful for
  // resetting/aggregating statistics around a benchmark run.
  std::vector<stm::Domain*> domains();

  // Committed-size estimate summed over the shards; exact once all
  // operations have returned (like SFTree::sizeEstimate).
  std::int64_t sizeEstimate() const;
  ShardedMapStats aggregatedStats() const;

 private:
  trees::SFTree& shardFor(Key k) { return *shards_[hashShard(k)]; }
  std::size_t hashShard(Key k) const;

  // Pause/resume restructuring on every shard (scheduler entries or
  // dedicated threads) around quiesced walks.
  std::vector<bool> pauseAllMaintenance();
  void resumeAllMaintenance(const std::vector<bool>& wasRunning);

  stm::TxKind updateTxKind() const;
  // The domain map-level (multi-shard) transactions are rooted in: the
  // shared domain, or the first shard's domain in PerShard mode (the
  // remaining domains are joined as the transaction touches them).
  stm::Domain& homeDomain() { return shards_.front()->domain(); }

  ShardedMapConfig cfg_;
  // Owned per-shard clock domains (PerShard mode; empty otherwise).
  // Declared before shards_ so they outlive the trees during destruction.
  std::vector<std::unique_ptr<stm::Domain>> domains_;
  std::vector<std::unique_ptr<trees::SFTree>> shards_;
  std::vector<MaintenanceScheduler::TreeHandle> handles_;
};

}  // namespace sftree::shard
