// Shared maintenance scheduler: multiplexes the background restructuring of
// many speculation-friendly trees onto a small pool of worker threads.
//
// The paper dedicates one rotator thread per tree, which stops scaling the
// moment a process hosts more trees than spare cores (the vacation tables
// already need a duty-cycle throttle to keep four rotators from starving the
// clients). The scheduler inverts that: N trees register a pass callback, K
// worker threads (K typically << N) round-robin depth-first maintenance
// passes across them. Splay-tree analysis reminds us restructuring cost is
// access-sequence-dependent, so passes are steered to where the work is:
//
//  * per-tree exponential backoff — a tree whose pass performed no
//    structural change waits basePause, then 2x, 4x, ... up to maxPause
//    before it is polled again, so idle trees cost (almost) nothing;
//  * work signal — each tree may expose a monotonic update counter; any
//    observed change resets its backoff, so a tree that turns hot is picked
//    up on the next scan instead of after the full backoff window;
//  * load-driven priority — each tree may additionally expose its pending
//    work (SFTree's violation-queue depth); among the trees eligible at a
//    scan, workers run the one with the most queued work first instead of
//    blind round-robin, so a burst against one shard is drained before the
//    pool cycles through cold shards. Trees reporting equal (or no) load
//    keep the round-robin order, which keeps the pick starvation-free.
//
// The scheduler is deliberately tree-agnostic (callbacks only): trees,
// sharded maps and the vacation manager all register through the same
// interface, and unit tests can register plain lambdas.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace sftree::shard {

struct MaintenanceSchedulerConfig {
  // Worker threads in the pool. The whole point is workers < trees; one
  // worker is enough for most shard counts on small machines.
  int workers = 1;
  // Backoff after the first idle pass on a tree; doubles per consecutive
  // idle pass up to maxPause.
  std::chrono::microseconds basePause{100};
  std::chrono::microseconds maxPause{20'000};
  // Pause before re-polling a tree whose last pass did structural work
  // (0 = continuous, like the paper's dedicated rotator).
  std::chrono::microseconds hotPause{0};
  // Consecutive scans in which a higher-load tree may overtake the
  // round-robin head before the head is forced to run anyway. A sustained
  // hot shard refills its queue during its own drain, so pure max-load
  // picking could starve a lower-but-nonzero-load shard indefinitely; the
  // cap bounds any eligible tree's wait to this many scans.
  int maxPriorityStreak = 8;
};

// Aggregate counters over the scheduler's lifetime.
struct SchedulerStats {
  std::uint64_t passes = 0;        // maintenance passes executed
  std::uint64_t activePasses = 0;  // passes that performed structural work
  std::uint64_t backoffSkips = 0;  // scan visits skipped due to backoff
  std::uint64_t signalWakeups = 0; // backoffs cut short by a work signal
  // Picks where a higher-load tree overtook an earlier-in-rotation eligible
  // tree (the load callback steering workers toward the hottest shard).
  std::uint64_t priorityPicks = 0;
};

// Per-tree view of the same counters.
struct TreeMaintStats {
  std::string name;
  std::uint64_t passes = 0;
  std::uint64_t activePasses = 0;
  int idleStreak = 0;  // consecutive idle passes (drives the backoff)
  std::uint64_t lastLoad = 0;  // load reported at the most recent scan
};

class MaintenanceScheduler {
 public:
  // One full maintenance pass; must return true when the pass performed at
  // least one structural change. `cancel` turns true when the scheduler is
  // shutting down; long passes should bail out promptly.
  using PassFn = std::function<bool(const std::atomic<bool>* cancel)>;
  // Optional monotonic activity counter (e.g. SFTree::updateTicks). Any
  // change between polls resets the tree's backoff.
  using WorkSignalFn = std::function<std::uint64_t()>;
  // Optional pending-work gauge (e.g. SFTree::violationQueueDepth). Among
  // simultaneously eligible trees, the one reporting the highest load runs
  // first; zero/absent loads fall back to round-robin order.
  using LoadFn = std::function<std::uint64_t()>;

  using TreeHandle = std::uint64_t;
  static constexpr TreeHandle kInvalidHandle = 0;

  explicit MaintenanceScheduler(MaintenanceSchedulerConfig cfg = {});
  ~MaintenanceScheduler();  // stops the pool; joins all workers

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  // Registers a tree; maintenance passes start being scheduled immediately.
  // The callbacks must stay valid until unregisterTree() returns.
  TreeHandle registerTree(std::string name, PassFn pass,
                          WorkSignalFn signal = nullptr,
                          LoadFn load = nullptr);

  // Removes the tree. Blocks until any in-flight pass on it has finished,
  // so the caller may destroy the tree as soon as this returns.
  void unregisterTree(TreeHandle h);

  // Temporarily excludes the tree from scheduling; blocks until any
  // in-flight pass on it has finished. Used to quiesce a single tree (e.g.
  // for introspection walks) without perturbing the rest of the pool.
  // Pauses nest: concurrent pausers each pause/resume, and scheduling only
  // resumes when the last one has called resume().
  void pause(TreeHandle h);
  void resume(TreeHandle h);

  // Cuts the tree's current backoff short (an explicit work hint; the
  // work-signal callback usually makes this unnecessary).
  void nudge(TreeHandle h);

  SchedulerStats stats() const;
  std::vector<TreeMaintStats> treeStats() const;
  // Registers the pool counters plus per-tree pass/backlog gauges (under
  // "<prefix>.tree.<name>.") in `reg`. The scheduler must outlive the
  // registration.
  [[nodiscard]] obs::MetricsRegistry::Registration registerMetrics(
      obs::MetricsRegistry& reg, std::string prefix);
  std::size_t registeredCount() const;
  int workerCount() const { return cfg_.workers; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    TreeHandle handle = kInvalidHandle;
    std::string name;
    PassFn pass;
    WorkSignalFn signal;
    LoadFn load;

    int pauseDepth = 0;  // paused while > 0 (pauses nest)
    bool dead = false;
    bool inPass = false;
    Clock::time_point nextEligible{};  // epoch start: eligible immediately
    std::uint64_t lastSignal = 0;
    std::uint64_t lastLoad = 0;
    int idleStreak = 0;

    std::uint64_t passes = 0;
    std::uint64_t activePasses = 0;
  };

  void workerLoop();
  // Picks the next runnable entry (mu_ held): among the eligible entries,
  // the one reporting the highest load, with round-robin order from
  // cursor_ as the tiebreak (and the sole rule when no entry reports
  // load). Returns nullptr when nothing is eligible and sets `earliest` to
  // the soonest backoff expiry among the skipped entries
  // (Clock::time_point::max() when there is none). `signalPollNeeded`
  // reports whether any skipped entry has a work-signal callback, i.e.
  // whether sleeping past `earliest` could miss a wakeup only a poll would
  // notice.
  std::shared_ptr<Entry> pickRunnable(Clock::time_point now,
                                      Clock::time_point& earliest,
                                      bool& signalPollNeeded);
  std::shared_ptr<Entry> findEntry(TreeHandle h) const;  // mu_ held

  const MaintenanceSchedulerConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Entry>> entries_;
  std::size_t cursor_ = 0;  // round-robin start position for the next scan
  // Consecutive picks in which load overrode the round-robin head; at
  // cfg_.maxPriorityStreak the head runs regardless (anti-starvation).
  int priorityStreak_ = 0;
  TreeHandle nextHandle_ = 1;
  SchedulerStats stats_;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace sftree::shard
