#include "shard/sharded_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace sftree::shard {

namespace {

// splitmix64 finalizer: adjacent keys land on unrelated shards, so a
// key-range scan load-balances instead of hammering one tree.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedMap::ShardedMap(ShardedMapConfig cfg) : cfg_(std::move(cfg)) {
  // Hard check, not an assert: shards parameterizes a modulo on every
  // operation, and release builds would die with SIGFPE instead.
  if (cfg_.shards < 1) {
    throw std::invalid_argument("ShardedMap: shards must be >= 1");
  }
  const auto n = static_cast<std::size_t>(cfg_.shards);
  if (cfg_.domainMode == DomainMode::PerShard) {
    stm::Config domCfg = cfg_.stmConfig;
    if (domCfg.orecLogSize == stm::Config{}.orecLogSize) {
      // Keep the *total* orec footprint at the single-domain default: each
      // shard sees ~1/N of the address traffic, so 1/N of the stripes give
      // the same false-conflict rate — and N full-size tables would blow
      // the cache instead of relieving it. (Floor of 2^16 = 512 KiB.)
      std::uint32_t logN = 0;
      while ((std::size_t{1} << logN) < n) ++logN;
      domCfg.orecLogSize =
          std::max<std::uint32_t>(16, domCfg.orecLogSize - logN);
    }
    domains_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      domains_.push_back(std::make_unique<stm::Domain>(domCfg));
    }
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trees::SFTreeConfig treeCfg = cfg_.tree;
    if (cfg_.scheduler != nullptr) treeCfg.startMaintenance = false;
    treeCfg.domain = cfg_.domainMode == DomainMode::PerShard
                         ? domains_[i].get()
                         : cfg_.domain;
    shards_.push_back(std::make_unique<trees::SFTree>(treeCfg));
  }
  if (cfg_.scheduler != nullptr) {
    handles_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      trees::SFTree* tree = shards_[i].get();
      handles_.push_back(cfg_.scheduler->registerTree(
          cfg_.name + "/" + std::to_string(i),
          [tree](const std::atomic<bool>* cancel) {
            return tree->runMaintenancePass(cancel);
          },
          [tree] { return tree->updateTicks(); },
          // Pending violation-queue entries: workers drain the hottest
          // shard first instead of blind round-robin.
          [tree] { return tree->violationQueueDepth(); }));
    }
  }
}

ShardedMap::~ShardedMap() {
  // Unregister before the trees go away: unregisterTree blocks until any
  // in-flight pass on the shard has finished.
  if (cfg_.scheduler != nullptr) {
    for (const auto h : handles_) cfg_.scheduler->unregisterTree(h);
  }
}

std::size_t ShardedMap::hashShard(Key k) const {
  return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(k)) %
                                  static_cast<std::uint64_t>(shards_.size()));
}

int ShardedMap::shardIndexFor(Key k) const {
  return static_cast<int>(hashShard(k));
}

std::vector<stm::Domain*> ShardedMap::domains() {
  std::vector<stm::Domain*> out;
  for (auto& s : shards_) {
    stm::Domain* d = &s->domain();
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  return out;
}

// --------------------------------------------------------------------------
// Single-key operations: delegate to the owning shard (the tree's own entry
// points keep the per-op stats bracket and size estimate).
// --------------------------------------------------------------------------
bool ShardedMap::insert(Key k, Value v) { return shardFor(k).insert(k, v); }
bool ShardedMap::erase(Key k) { return shardFor(k).erase(k); }
bool ShardedMap::contains(Key k) { return shardFor(k).contains(k); }
std::optional<Value> ShardedMap::get(Key k) { return shardFor(k).get(k); }

bool ShardedMap::insertTx(stm::Tx& tx, Key k, Value v) {
  return shardFor(k).insertTx(tx, k, v);
}
bool ShardedMap::eraseTx(stm::Tx& tx, Key k) {
  return shardFor(k).eraseTx(tx, k);
}
bool ShardedMap::containsTx(stm::Tx& tx, Key k) {
  return shardFor(k).containsTx(tx, k);
}
std::optional<Value> ShardedMap::getTx(stm::Tx& tx, Key k) {
  return shardFor(k).getTx(tx, k);
}

// All shards share one config, so the first shard's elastic-safety rule is
// the map's.
stm::TxKind ShardedMap::updateTxKind() const {
  return shards_.front()->updateTxKind();
}

bool ShardedMap::move(Key from, Key to) {
  const std::size_t src = hashShard(from);
  const std::size_t dst = hashShard(to);
  if (src == dst) return shards_[src]->move(from, to);

  // Cross-shard: one flat-nested transaction spanning both trees. The STM
  // commit makes the erase and the insert visible atomically — with
  // per-shard domains via the descriptor's multi-domain commit (both
  // domains' locks held, per-domain timestamps) — so no reader can observe
  // the key at both shards or at neither. Rooting the transaction in the
  // source shard's domain keeps the common path cheap; the destination
  // domain is joined on first touch.
  auto& st = stm::threadStats(shards_[src]->domain());
  st.beginOp();
  const bool r = stm::atomically(
      shards_[src]->domain(), updateTxKind(), [&](stm::Tx& tx) {
        if (shards_[dst]->containsTx(tx, to)) return false;
        const std::optional<Value> v = shards_[src]->getTx(tx, from);
        if (!v) return false;
        if (!shards_[src]->eraseTx(tx, from)) {
          // Same subtleties as SFTree::move: under elastic reads a
          // concurrent erase of `from` can slip past the getTx above —
          // inserting `to` without having erased would conjure a key.
          tx.restart();
        }
        if (!shards_[dst]->insertTx(tx, to, *v)) {
          // ... and a concurrent insert of `to` can slip past the earlier
          // contains; retry rather than lose the moved key.
          tx.restart();
        }
        return true;
      });
  st.endOp();
  return r;
}

std::size_t ShardedMap::countRangeTx(stm::Tx& tx, Key lo, Key hi) {
  // Hash partitioning scatters [lo, hi] across every shard; summing the
  // per-shard transactional counts inside one transaction yields a
  // consistent snapshot of the whole range.
  std::size_t total = 0;
  for (auto& s : shards_) total += s->countRangeTx(tx, lo, hi);
  return total;
}

std::size_t ShardedMap::countRange(Key lo, Key hi) {
  auto& st = stm::threadStats(homeDomain());
  st.beginOp();
  // ReadOnly unconditionally (never elastic — countRange promises a
  // consistent snapshot): with per-shard domains the zero-logging mode
  // verifies the already-touched shards' clocks at each join (and
  // transparently promotes to a logged read-write transaction if writers
  // keep moving them), so the common quiet case logs nothing across all
  // shards.
  const auto r = stm::atomically(
      homeDomain(), stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return countRangeTx(tx, lo, hi); });
  st.endOp();
  return r;
}

// --------------------------------------------------------------------------
// Quiesced introspection
// --------------------------------------------------------------------------
std::vector<bool> ShardedMap::pauseAllMaintenance() {
  std::vector<bool> wasRunning(shards_.size(), false);
  if (cfg_.scheduler != nullptr) {
    for (const auto h : handles_) cfg_.scheduler->pause(h);
    return wasRunning;  // unused in scheduler mode
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    wasRunning[i] = shards_[i]->maintenanceRunning();
    if (wasRunning[i]) shards_[i]->stopMaintenance();
  }
  return wasRunning;
}

void ShardedMap::resumeAllMaintenance(const std::vector<bool>& wasRunning) {
  if (cfg_.scheduler != nullptr) {
    for (const auto h : handles_) cfg_.scheduler->resume(h);
    return;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (wasRunning[i]) shards_[i]->startMaintenance();
  }
}

std::size_t ShardedMap::size() {
  const auto wasRunning = pauseAllMaintenance();
  std::size_t total = 0;
  for (auto& s : shards_) total += s->abstractSize();
  resumeAllMaintenance(wasRunning);
  return total;
}

int ShardedMap::height() {
  const auto wasRunning = pauseAllMaintenance();
  int h = 0;
  for (auto& s : shards_) h = std::max(h, s->height());
  resumeAllMaintenance(wasRunning);
  return h;
}

std::vector<Key> ShardedMap::keysInOrder() {
  const auto wasRunning = pauseAllMaintenance();
  std::vector<Key> out;
  for (auto& s : shards_) {
    const auto keys = s->keysInOrder();
    out.insert(out.end(), keys.begin(), keys.end());
  }
  resumeAllMaintenance(wasRunning);
  // Per-shard walks are sorted, but the hash partition interleaves them.
  std::sort(out.begin(), out.end());
  return out;
}

void ShardedMap::quiesce() {
  const auto wasRunning = pauseAllMaintenance();
  for (auto& s : shards_) s->quiesceNow();
  resumeAllMaintenance(wasRunning);
}

std::int64_t ShardedMap::sizeEstimate() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->sizeEstimate();
  return total;
}

ShardedMapStats ShardedMap::aggregatedStats() const {
  ShardedMapStats out;
  // One STM snapshot per distinct clock domain.
  if (cfg_.domainMode == DomainMode::PerShard) {
    out.domainStats.reserve(domains_.size());
    for (const auto& d : domains_) out.domainStats.push_back(d->aggregateStats());
  } else {
    out.domainStats.push_back(shards_.front()->domain().aggregateStats());
  }
  for (const auto& d : out.domainStats) out.stm += d;
  out.shardSizeEstimates.reserve(shards_.size());
  out.shardQueueDepths.reserve(shards_.size());
  for (const auto& s : shards_) {
    const auto est = s->sizeEstimate();
    out.sizeEstimate += est;
    out.shardSizeEstimates.push_back(est);
    out.shardQueueDepths.push_back(s->violationQueueDepth());
    const auto m = s->maintenanceStats();
    out.maintenance.traversals += m.traversals;
    out.maintenance.fullSweeps += m.fullSweeps;
    out.maintenance.rotations += m.rotations;
    out.maintenance.removals += m.removals;
    out.maintenance.failedStructuralOps += m.failedStructuralOps;
    out.maintenance.nodesFreed += m.nodesFreed;
    out.maintenance.nodesRetired += m.nodesRetired;
    out.maintenance.nodesVisited += m.nodesVisited;
    out.maintenance.queue.captured += m.queue.captured;
    out.maintenance.queue.enqueued += m.queue.enqueued;
    out.maintenance.queue.deduped += m.queue.deduped;
    out.maintenance.queue.drained += m.queue.drained;
    out.maintenance.queue.dropped += m.queue.dropped;
    out.maintenance.queue.overflows += m.queue.overflows;
    out.maintenance.queue.drainLatencyUsSum += m.queue.drainLatencyUsSum;
  }
  return out;
}

}  // namespace sftree::shard
