#include "shard/sharded_map.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <thread>

#include "mem/arena.hpp"
#include "obs/clock.hpp"
#include "obs/stats_bridge.hpp"
#include "obs/trace.hpp"

namespace sftree::shard {

namespace {

// kMapOp trace payload: op kind codes (record.op).
constexpr std::uint16_t kOpInsert = 1;
constexpr std::uint16_t kOpErase = 2;
constexpr std::uint16_t kOpGet = 3;
constexpr std::uint16_t kOpContains = 4;
constexpr std::uint16_t kOpMove = 5;

// splitmix64 finalizer: adjacent keys land on unrelated slots, so a
// key-range scan load-balances instead of hammering one tree.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// --------------------------------------------------------------------------
// OpGuard
// --------------------------------------------------------------------------
thread_local int ShardedMap::OpGuard::tlsTicketDepth_ = 0;

void ShardedMap::OpGuard::drain() {
  // Serialized flips make the parity wait a true barrier: when the lock is
  // acquired, every ticket from before the previous drain's flip has
  // exited (inductively), so waiting out the current parity covers every
  // ticket entered before ours.
  std::lock_guard<std::mutex> lk(drainMu_);
  const std::uint64_t old = epoch_.fetch_add(1, std::memory_order_seq_cst);
  const std::size_t p = old & 1;
  for (;;) {
    std::uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
      sum += s.n[p].load(std::memory_order_seq_cst);
    }
    if (sum == 0) return;
    std::this_thread::yield();
  }
}

// --------------------------------------------------------------------------
// Construction / destruction
// --------------------------------------------------------------------------
ShardedMap::ShardedMap(ShardedMapConfig cfg) : cfg_(std::move(cfg)) {
  // Hard checks, not asserts: these parameterize a modulo on every
  // operation, and release builds would die with SIGFPE instead.
  if (cfg_.shards < 1) {
    throw std::invalid_argument("ShardedMap: shards must be >= 1");
  }
  if (cfg_.routingSlots < cfg_.shards) {
    throw std::invalid_argument(
        "ShardedMap: routingSlots must be >= shards (slots are the "
        "re-sharding granularity)");
  }
  if (cfg_.migrationBatch < 1) cfg_.migrationBatch = 1;
  if (!cfg_.initialSlotAssignment.empty()) {
    if (cfg_.initialSlotAssignment.size() !=
        static_cast<std::size_t>(cfg_.routingSlots)) {
      throw std::invalid_argument(
          "ShardedMap: initialSlotAssignment must name every routing slot");
    }
    for (const int v : cfg_.initialSlotAssignment) {
      if (v < 0 || v >= cfg_.shards) {
        throw std::invalid_argument(
            "ShardedMap: initialSlotAssignment entry out of shard range");
      }
    }
  }
  if (cfg_.domainMode == DomainMode::PerShard &&
      cfg_.stmConfig.orecLogSize == stm::Config{}.orecLogSize) {
    // Keep the *total* orec footprint at the single-domain default: each
    // shard sees ~1/N of the address traffic, so 1/N of the stripes give
    // the same false-conflict rate — and N full-size tables would blow
    // the cache instead of relieving it. (Floor of 2^16 = 512 KiB.)
    std::uint32_t logN = 0;
    while ((1 << logN) < cfg_.shards) ++logN;
    cfg_.stmConfig.orecLogSize =
        std::max<std::uint32_t>(16, cfg_.stmConfig.orecLogSize - logN);
  }
  // The routing domain guards exactly one word (the table pointer); it
  // must share the trees' TM backend and can run the smallest orec table.
  {
    stm::Config routeCfg =
        cfg_.domainMode == DomainMode::PerShard
            ? cfg_.stmConfig
            : (cfg_.domain != nullptr ? cfg_.domain->config()
                                      : stm::defaultDomain().config());
    routeCfg.orecLogSize = 16;
    routingDomain_ = std::make_unique<stm::Domain>(routeCfg);
  }
  const auto n = static_cast<std::size_t>(cfg_.shards);
  live_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) live_.push_back(makeShard());

  // Per-slot traffic gauges and checkpoint dirty ticks (value-initialized
  // to zero).
  slotTicks_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(cfg_.routingSlots));
  slotWriteTicks_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(cfg_.routingSlots));

  // Initial routing: contiguous slot blocks, floor/ceil(S/N) slots each —
  // unless the caller pinned an explicit slot->shard layout (checkpoint
  // restore recreating the image's topology).
  auto t = std::make_unique<RoutingTable>();
  t->version = tableVersion_++;
  t->slots.resize(static_cast<std::size_t>(cfg_.routingSlots));
  for (std::size_t s = 0; s < t->slots.size(); ++s) {
    const std::size_t shard =
        cfg_.initialSlotAssignment.empty()
            ? s * n / t->slots.size()
            : static_cast<std::size_t>(cfg_.initialSlotAssignment[s]);
    t->slots[s].owner = live_[shard]->tree.get();
  }
  tableTx_.storeRelaxed(t.release());  // pre-publication: single-threaded
}

ShardedMap::~ShardedMap() {
  // Unregister before the trees go away: unregisterTree blocks until any
  // in-flight pass on the shard has finished.
  if (cfg_.scheduler != nullptr) {
    for (const auto& rec : live_) cfg_.scheduler->unregisterTree(rec->handle);
  }
  delete tableTx_.loadRelaxed();
}

std::unique_ptr<ShardedMap::ShardRec> ShardedMap::makeShard() {
  auto rec = std::make_unique<ShardRec>();
  if (cfg_.domainMode == DomainMode::PerShard) {
    rec->domain = std::make_unique<stm::Domain>(cfg_.stmConfig);
  }
  trees::SFTreeConfig treeCfg = cfg_.tree;
  if (cfg_.scheduler != nullptr) treeCfg.startMaintenance = false;
  treeCfg.domain = cfg_.domainMode == DomainMode::PerShard ? rec->domain.get()
                                                           : cfg_.domain;
  rec->tree = std::make_unique<trees::SFTree>(treeCfg);
  if (cfg_.scheduler != nullptr) {
    trees::SFTree* tree = rec->tree.get();
    static std::atomic<std::uint64_t> nameSeq{0};
    rec->handle = cfg_.scheduler->registerTree(
        cfg_.name + "/" +
            std::to_string(nameSeq.fetch_add(1, std::memory_order_relaxed)),
        [tree](const std::atomic<bool>* cancel) {
          return tree->runMaintenancePass(cancel);
        },
        [tree] { return tree->updateTicks(); },
        // Pending violation-queue entries: workers drain the hottest
        // shard first instead of blind round-robin.
        [tree] { return tree->violationQueueDepth(); });
  }
  return rec;
}

std::size_t ShardedMap::slotOf(Key k) const {
  return static_cast<std::size_t>(
      mix64(static_cast<std::uint64_t>(k)) %
      static_cast<std::uint64_t>(cfg_.routingSlots));
}

int ShardedMap::shardCount() const {
  std::lock_guard<std::mutex> lk(topoMu_);
  return static_cast<int>(live_.size());
}

int ShardedMap::shardIndexFor(Key k) const {
  // The ticket keeps a concurrent publishTable() from freeing the table
  // out from under this (non-transactional) read.
  OpTicket ticket(guard_);
  const RoutingTable* t = table();
  const trees::SFTree* owner = t->slots[slotOf(k)].owner;
  std::lock_guard<std::mutex> lk(topoMu_);
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i]->tree.get() == owner) return static_cast<int>(i);
  }
  return -1;  // unreachable while owner trees come from live_
}

trees::SFTree& ShardedMap::shard(int i) {
  std::lock_guard<std::mutex> lk(topoMu_);
  return *live_[static_cast<std::size_t>(i)]->tree;
}

std::vector<stm::Domain*> ShardedMap::domains() {
  std::lock_guard<std::mutex> lk(topoMu_);
  std::vector<stm::Domain*> out;
  for (const auto& rec : live_) {
    stm::Domain* d = &rec->tree->domain();
    if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
  }
  return out;
}

std::vector<int> ShardedMap::slotOwners() const {
  OpTicket ticket(guard_);
  const RoutingTable* t = table();
  std::lock_guard<std::mutex> lk(topoMu_);
  std::vector<int> out(t->slots.size(), -1);
  for (std::size_t s = 0; s < t->slots.size(); ++s) {
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i]->tree.get() == t->slots[s].owner) {
        out[s] = static_cast<int>(i);
        break;
      }
    }
  }
  return out;
}

std::vector<std::uint64_t> ShardedMap::slotOpTicks() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(cfg_.routingSlots));
  for (std::size_t s = 0; s < out.size(); ++s) {
    out[s] = slotTicks_[s].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<ShardLoadSample> ShardedMap::loadSamples() const {
  std::lock_guard<std::mutex> lk(topoMu_);
  std::vector<ShardLoadSample> out;
  out.reserve(live_.size());
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const trees::SFTree& tree = *live_[i]->tree;
    ShardLoadSample s;
    s.id = &tree;
    s.index = static_cast<int>(i);
    s.updateTicks = tree.updateTicks();
    s.queueDepth = tree.violationQueueDepth();
    s.sizeEstimate = tree.sizeEstimate();
    out.push_back(s);
  }
  return out;
}

// --------------------------------------------------------------------------
// Dual-path (migration-aware) transactional pieces. The global invariant —
// a key is present in at most one tree — holds because inserts only reach
// `owner` in the same transaction that verified `prev` lacks the key, and
// the migration batches move keys prev -> owner atomically.
// --------------------------------------------------------------------------
bool ShardedMap::entryContainsTx(stm::Tx& tx, const RouteEntry& e, Key k) {
  if (e.prev != nullptr && e.prev->containsTx(tx, k)) return true;
  return e.owner->containsTx(tx, k);
}

std::optional<Value> ShardedMap::entryGetTx(stm::Tx& tx, const RouteEntry& e,
                                            Key k) {
  if (e.prev != nullptr) {
    if (auto v = e.prev->getTx(tx, k)) return v;
  }
  return e.owner->getTx(tx, k);
}

bool ShardedMap::entryInsertTx(stm::Tx& tx, const RouteEntry& e, Key k,
                               Value v) {
  // Never insert (or revive) into the migration source: new keys go to the
  // new owner so the mover's scan of `prev` converges. Ordering against
  // operations still routing by an older table is the transactional table
  // read's job (routeTx — their commits fail validation); the absence
  // check still *reserves* (pin-disciplined value-preserving write) rather
  // than merely reads k's position, because a dual-path insert can run
  // under TxKind::Elastic when the route flipped mid-operation, and
  // elastic window cuts would evict a plain containsTx's reads — the
  // reservation's pins and write survive cuts by the same discipline as
  // the trees' own update paths.
  if (e.prev != nullptr && !e.prev->reserveAbsentTx(tx, k)) return false;
  return e.owner->insertTx(tx, k, v);
}

bool ShardedMap::entryEraseTx(stm::Tx& tx, const RouteEntry& e, Key k,
                              trees::SFTree** hit) {
  if (e.prev != nullptr && e.prev->eraseTx(tx, k)) {
    if (hit != nullptr) *hit = e.prev;
    return true;
  }
  if (e.owner->eraseTx(tx, k)) {
    if (hit != nullptr) *hit = e.owner;
    return true;
  }
  return false;
}

std::vector<trees::SFTree*> ShardedMap::distinctTrees(const RoutingTable& t) {
  std::vector<trees::SFTree*> out;
  for (const RouteEntry& e : t.slots) {
    if (std::find(out.begin(), out.end(), e.owner) == out.end()) {
      out.push_back(e.owner);
    }
  }
  for (const RouteEntry& e : t.slots) {
    if (e.prev != nullptr &&
        std::find(out.begin(), out.end(), e.prev) == out.end()) {
      out.push_back(e.prev);
    }
  }
  return out;
}

// --------------------------------------------------------------------------
// Single-key operations. Each plain entry point runs its transaction body
// through the Tx-composable variant below: the routing entry is resolved
// INSIDE the body, once per attempt (an attempt that loses a conflict to a
// re-sharder re-routes on retry), the census ticket is deferred to attempt
// settlement and size estimates settle via commit hooks. Routing through
// the composable variants also makes flat nesting sound for free: a plain
// call inside an enclosing stm::atomically runs the same body inline, so
// the enclosing transaction inherits the deferred ticket and the
// commit-gated estimate settlement instead of the plain wrapper's
// call-scoped versions. The outer RAII ticket exists to keep the root
// domain (resolved once, before the retry loop) alive across retries; the
// transaction kind is latched from the entry observed at op start — a
// table flip mid-op only changes which trees the (pin-disciplined,
// restart-guarded) dual paths compose, never their safety.
// --------------------------------------------------------------------------
bool ShardedMap::insert(Key k, Value v) {
  OpTicket ticket(guard_);
  const RouteEntry e0 = table()->slots[slotOf(k)];
  auto& st = stm::threadStats(e0.owner->domain());
  st.beginOp();
  const bool r = stm::atomically(
      e0.owner->domain(), entryUpdateKind(e0),
      [&](stm::Tx& tx) { return insertTx(tx, k, v); });
  st.endOp();
  return r;
}

bool ShardedMap::erase(Key k) {
  OpTicket ticket(guard_);
  const RouteEntry e0 = table()->slots[slotOf(k)];
  auto& st = stm::threadStats(e0.owner->domain());
  st.beginOp();
  const bool r = stm::atomically(
      e0.owner->domain(), entryUpdateKind(e0),
      [&](stm::Tx& tx) { return eraseTx(tx, k); });
  st.endOp();
  return r;
}

bool ShardedMap::contains(Key k) {
  OpTicket ticket(guard_);
  const RouteEntry e0 = table()->slots[slotOf(k)];
  auto& st = stm::threadStats(e0.owner->domain());
  st.beginOp();
  const bool r = stm::atomically(
      e0.owner->domain(), stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return containsTx(tx, k); });
  st.endOp();
  return r;
}

std::optional<Value> ShardedMap::get(Key k) {
  OpTicket ticket(guard_);
  const RouteEntry e0 = table()->slots[slotOf(k)];
  auto& st = stm::threadStats(e0.owner->domain());
  st.beginOp();
  const auto r = stm::atomically(
      e0.owner->domain(), stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return getTx(tx, k); });
  st.endOp();
  return r;
}

// Tx-composable variants: the caller's transaction outlives this call, so
// the census ticket is released only when the enclosing attempt has fully
// settled (after the final validation, the tx-end quiescence signals AND
// the commit hooks) — a commit hook registered by the tree op below (a
// violation-queue publish) still touches tree memory that a shard
// retirement frees the moment the census drains.
bool ShardedMap::insertTx(stm::Tx& tx, Key k, Value v) {
  const OpGuard::Ticket t = guard_.enter();
  tx.onSettled([this, t] { guard_.exit(t); });
  const RoutingTable* tbl = routeTx(tx);
  const std::size_t slot = slotOf(k);
  bumpSlotTick(slot);
  bumpSlotWriteTick(slot);  // body time: before this attempt can commit
  if (obs::traceEnabled()) {
    obs::trace(obs::TraceKind::kMapOp, tbl->version, slot, 0, kOpInsert);
  }
  const RouteEntry e = tbl->slots[slot];
  const bool r = entryInsertTx(tx, e, k, v);
  if (r) {
    // Settle the estimate only if the enclosing transaction commits: the
    // per-shard exactness contract is load-bearing under retirement.
    trees::SFTree* owner = e.owner;
    tx.onCommit([owner] { owner->bumpSizeEstimate(1); });
  }
  return r;
}

bool ShardedMap::eraseTx(stm::Tx& tx, Key k) {
  const OpGuard::Ticket t = guard_.enter();
  tx.onSettled([this, t] { guard_.exit(t); });
  const RoutingTable* tbl = routeTx(tx);
  const std::size_t slot = slotOf(k);
  bumpSlotTick(slot);
  bumpSlotWriteTick(slot);  // body time: before this attempt can commit
  if (obs::traceEnabled()) {
    obs::trace(obs::TraceKind::kMapOp, tbl->version, slot, 0, kOpErase);
  }
  const RouteEntry e = tbl->slots[slot];
  trees::SFTree* hit = nullptr;
  const bool r = entryEraseTx(tx, e, k, &hit);
  if (r) {
    tx.onCommit([hit] { hit->bumpSizeEstimate(-1); });
  }
  return r;
}

bool ShardedMap::containsTx(stm::Tx& tx, Key k) {
  const OpGuard::Ticket t = guard_.enter();
  tx.onSettled([this, t] { guard_.exit(t); });
  const RoutingTable* tbl = routeTx(tx);
  const std::size_t slot = slotOf(k);
  bumpSlotTick(slot);
  if (obs::traceEnabled()) {
    obs::trace(obs::TraceKind::kMapOp, tbl->version, slot, 0, kOpContains);
  }
  return entryContainsTx(tx, tbl->slots[slot], k);
}

std::optional<Value> ShardedMap::getTx(stm::Tx& tx, Key k) {
  const OpGuard::Ticket t = guard_.enter();
  tx.onSettled([this, t] { guard_.exit(t); });
  const RoutingTable* tbl = routeTx(tx);
  const std::size_t slot = slotOf(k);
  bumpSlotTick(slot);
  if (obs::traceEnabled()) {
    obs::trace(obs::TraceKind::kMapOp, tbl->version, slot, 0, kOpGet);
  }
  return entryGetTx(tx, tbl->slots[slot], k);
}

bool ShardedMap::move(Key from, Key to) {
  OpTicket ticket(guard_);
  const RoutingTable* t0 = table();
  const RouteEntry f0 = t0->slots[slotOf(from)];
  const RouteEntry to0 = t0->slots[slotOf(to)];

  // One flat-nested transaction spanning every involved tree (same-shard
  // moves just compose against one). The STM commit makes the erase and
  // the insert visible atomically — with per-shard domains via the
  // descriptor's multi-domain commit (all domains' locks held, per-domain
  // timestamps) — so no reader can observe the key at both shards or at
  // neither. Rooting the transaction in the source shard's domain keeps
  // the common path cheap; further domains are joined on first touch.
  // Normal when a migrating slot is involved (see entryUpdateKind).
  const stm::TxKind kind = (f0.prev != nullptr || to0.prev != nullptr)
                               ? stm::TxKind::Normal
                               : f0.owner->updateTxKind();
  auto& st = stm::threadStats(f0.owner->domain());
  st.beginOp();
  const bool r =
      stm::atomically(f0.owner->domain(), kind,
                      [&](stm::Tx& tx) { return moveTx(tx, from, to); });
  st.endOp();
  return r;
}

bool ShardedMap::moveTx(stm::Tx& tx, Key from, Key to) {
  const OpGuard::Ticket ticket = guard_.enter();
  tx.onSettled([this, ticket] { guard_.exit(ticket); });
  const RoutingTable* t = routeTx(tx);  // per attempt: re-route on retry
  const std::size_t slotFrom = slotOf(from);
  const std::size_t slotTo = slotOf(to);
  bumpSlotTick(slotFrom);
  if (slotTo != slotFrom) bumpSlotTick(slotTo);
  bumpSlotWriteTick(slotFrom);  // body time, both ends of the move
  if (slotTo != slotFrom) bumpSlotWriteTick(slotTo);
  if (obs::traceEnabled()) {
    obs::trace(obs::TraceKind::kMapOp, t->version, slotFrom, 0, kOpMove);
  }
  const RouteEntry eFrom = t->slots[slotFrom];
  const RouteEntry eTo = t->slots[slotTo];
  if (entryContainsTx(tx, eTo, to)) return false;
  const std::optional<Value> v = entryGetTx(tx, eFrom, from);
  if (!v) return false;
  trees::SFTree* erasedFrom = nullptr;
  if (!entryEraseTx(tx, eFrom, from, &erasedFrom)) {
    // Same subtleties as SFTree::move: under elastic reads a concurrent
    // erase of `from` can slip past the getTx above — inserting `to`
    // without having erased would conjure a key.
    tx.restart();
  }
  if (!entryInsertTx(tx, eTo, to, *v)) {
    // ... and a concurrent insert of `to` can slip past the earlier
    // contains; retry rather than lose the moved key.
    tx.restart();
  }
  // Keep the per-tree size estimates exact across trees, settled only if
  // the (possibly enclosing) transaction commits. Pre-resharding this was
  // optional (drift cancelled in the sum); with merges retiring trees, a
  // biased counter would be destroyed with its tree and the bias would
  // leak into the aggregate permanently.
  if (erasedFrom != eTo.owner) {
    trees::SFTree* src = erasedFrom;
    trees::SFTree* dst = eTo.owner;
    tx.onCommit([src, dst] {
      src->bumpSizeEstimate(-1);
      dst->bumpSizeEstimate(1);
    });
  }
  return true;
}

std::size_t ShardedMap::countRangeTx(stm::Tx& tx, Key lo, Key hi) {
  const OpGuard::Ticket t = guard_.enter();
  tx.onSettled([this, t] { guard_.exit(t); });
  // Hash partitioning scatters [lo, hi] across every tree (including
  // migration sources); summing the per-tree transactional counts inside
  // one transaction yields a consistent snapshot of the whole range —
  // every key is present in exactly one tree at the commit point.
  const RoutingTable* tab = routeTx(tx);
  std::size_t total = 0;
  for (trees::SFTree* tree : distinctTrees(*tab)) {
    total += tree->countRangeTx(tx, lo, hi);
  }
  return total;
}

std::size_t ShardedMap::countRange(Key lo, Key hi) {
  OpTicket ticket(guard_);
  auto& st = stm::threadStats(homeDomain());
  st.beginOp();
  // ReadOnly unconditionally (never elastic — countRange promises a
  // consistent snapshot): with per-shard domains the zero-logging mode
  // verifies the already-touched shards' clocks at each join (and
  // transparently promotes to a logged read-write transaction if writers
  // keep moving them), so the common quiet case logs nothing across all
  // shards.
  const auto r = stm::atomically(
      homeDomain(), stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return countRangeTx(tx, lo, hi); });
  st.endOp();
  return r;
}

// --------------------------------------------------------------------------
// Checkpoint/snapshot scans (see docs/checkpoint.md for the certification
// protocol these serve)
// --------------------------------------------------------------------------
std::vector<std::uint64_t> ShardedMap::slotWriteTicks() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(cfg_.routingSlots));
  for (std::size_t s = 0; s < out.size(); ++s) {
    out[s] = slotWriteTicks_[s].load(std::memory_order_seq_cst);
  }
  return out;
}

void ShardedMap::snapshotChunkTx(stm::Tx& tx, int anchorSlot, Key lo,
                                 std::size_t maxN,
                                 const std::function<bool(Key)>& pred,
                                 std::vector<trees::SFTree::ExtractedKV>& out,
                                 SnapshotChunk& info) {
  const OpGuard::Ticket t = guard_.enter();
  tx.onSettled([this, t] { guard_.exit(t); });
  info = SnapshotChunk{};
  out.clear();
  const RoutingTable* tab = routeTx(tx);  // per attempt: re-route on retry
  const RouteEntry e = tab->slots[static_cast<std::size_t>(anchorSlot)];
  if (e.prev != nullptr) {
    // Mid-migration: the slot's keys straddle two trees. Nothing here is
    // wrong to scan, but certifying it is the dirty tick's job and the
    // migration bumps have already voided this round — defer the slot.
    info.migrating = true;
    return;
  }
  trees::SFTree* owner = e.owner;
  info.treeId = owner;
  info.ownedSettledSlots.reserve(tab->slots.size());
  for (std::size_t s = 0; s < tab->slots.size(); ++s) {
    if (tab->slots[s].owner == owner && tab->slots[s].prev == nullptr) {
      info.ownedSettledSlots.push_back(static_cast<int>(s));
    }
  }
  Key nextLo = lo;
  info.treeComplete = owner->scanRangeTx(tx, lo, maxN, pred, out, nextLo);
  info.nextLo = nextLo;
}

void ShardedMap::snapshotAllTx(stm::Tx& tx,
                               const std::function<bool(Key)>& pred,
                               std::vector<trees::SFTree::ExtractedKV>& out) {
  const OpGuard::Ticket t = guard_.enter();
  tx.onSettled([this, t] { guard_.exit(t); });
  out.clear();  // the enclosing transaction may retry this attempt
  const RoutingTable* tab = routeTx(tx);
  std::vector<trees::SFTree::ExtractedKV> chunk;
  for (trees::SFTree* tree : distinctTrees(*tab)) {
    Key lo = std::numeric_limits<Key>::min();
    for (;;) {
      Key nextLo = lo;
      // maxN well below SIZE_MAX/4: scanRangeTx sizes its examine budget
      // at 4*maxN and must not overflow. One call normally completes the
      // tree; the loop is belt-and-braces for the budget edge.
      const bool complete =
          tree->scanRangeTx(tx, lo, std::numeric_limits<std::size_t>::max() / 8,
                            pred, chunk, nextLo);
      out.insert(out.end(), chunk.begin(), chunk.end());
      if (complete) break;
      lo = nextLo;
    }
  }
}

// --------------------------------------------------------------------------
// Re-sharding machinery
// --------------------------------------------------------------------------
void ShardedMap::publishTable(std::unique_ptr<RoutingTable> next) {
  // The transactional write is the serialization point: any in-flight
  // operation that resolved the old table and commits after this fails its
  // validation of the pinned table read and retries against `next`.
  const RoutingTable* old = tableTx_.loadAcquire();
  const RoutingTable* fresh = next.release();
  stm::atomically(*routingDomain_, stm::TxKind::Normal,
                  [&](stm::Tx& tx) { tableTx_.write(tx, fresh); });
  if (obs::traceEnabled()) {
    obs::trace(obs::TraceKind::kTablePublish, fresh->version,
               distinctTrees(*fresh).size());
  }
  // Doomed stragglers may still *dereference* `old` (and the trees it
  // names) until their attempt ends; the census drain covers that, with
  // Tx-composable entry points holding their tickets until the enclosing
  // transaction fully settled.
  guard_.drain();
  delete old;
  std::lock_guard<std::mutex> lk(reshardStatsMu_);
  ++reshardStats_.tablePublishes;
}

void ShardedMap::migrateSlots(trees::SFTree* src, trees::SFTree* dst,
                              const std::vector<int>& movedSlots) {
  // Phase 1: dual-route table. From here on, lookups for moved slots check
  // (dst, src) and inserts land in dst — src can only lose moved-slot keys,
  // so one scan of src converges.
  {
    const RoutingTable* cur = table();
    auto next = std::make_unique<RoutingTable>();
    next->version = tableVersion_++;
    next->slots = cur->slots;
    for (const int s : movedSlots) {
      next->slots[static_cast<std::size_t>(s)].owner = dst;
      next->slots[static_cast<std::size_t>(s)].prev = src;
    }
    publishTable(std::move(next));
  }

  // Phase 2: batched range moves. Each batch extracts up to migrationBatch
  // matching present keys from src (one amortized in-order walk, logical
  // deletes) and adopts them into dst inside the same — cross-domain, when
  // the shards' clocks differ — transaction.
  std::vector<bool> moved(static_cast<std::size_t>(cfg_.routingSlots), false);
  for (const int s : movedSlots) moved[static_cast<std::size_t>(s)] = true;
  const auto pred = [&](Key k) { return moved[slotOf(k)]; };
  std::vector<trees::SFTree::ExtractedKV> batch;
  batch.reserve(cfg_.migrationBatch);
  std::uint64_t keys = 0;
  std::uint64_t batches = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t grows = 0;
  const std::uint64_t dualVersion = table()->version;
  Key cursor = std::numeric_limits<Key>::min();
  // Adaptive batch sizing (AIMD). A batch that aborted before committing
  // collided with live traffic inside its conflict window — halve the next
  // batch to narrow the window; two consecutive clean batches double it
  // back toward the configured ceiling. Migration runs on this thread, so
  // the thread's own conflict-abort counters on the involved domains
  // isolate exactly this batch's aborts (see docs/observability.md on the
  // single-writer thread-stats discipline).
  std::size_t batchSize = cfg_.migrationBatch;
  const std::size_t minBatch = std::min<std::size_t>(8, cfg_.migrationBatch);
  int cleanStreak = 0;
  const bool crossDomain = &src->domain() != &dst->domain();
  const auto myAborts = [&]() -> std::uint64_t {
    std::uint64_t a = stm::threadStats(src->domain()).conflictAbortTotal();
    if (crossDomain) a += stm::threadStats(dst->domain()).conflictAbortTotal();
    return a;
  };
  for (bool done = false; !done;) {
    Key nextLo = cursor;
    // Per-slot content is conserved by a migration batch (keys move
    // src -> dst atomically), but a snapshot walk streaming one of the
    // involved *trees* mid-batch could see a moved key at neither end of
    // its multi-chunk walk. Bumping every moved slot's dirty tick before
    // the batch transaction begins voids any certification window the
    // batch intersects: a checkpoint sweep that missed these bumps ran
    // before this point, hence before the batch could disturb anything.
    for (const int s : movedSlots) {
      bumpSlotWriteTick(static_cast<std::size_t>(s));
    }
    const std::uint64_t abortsBefore =
        cfg_.adaptiveMigrationBatch ? myAborts() : 0;
    const std::uint64_t batchStart = obs::tick();
    const std::size_t adopted = stm::atomically(
        src->domain(), stm::TxKind::Normal, [&](stm::Tx& tx) -> std::size_t {
          const bool complete = src->extractRangeTx(
              tx, cursor, batchSize, pred, batch, nextLo);
          done = complete;
          if (batch.empty()) return 0;
          return dst->adoptRangeTx(tx, batch.data(), batch.size());
        });
    const std::uint64_t batchNs = obs::ticksToNs(obs::tick() - batchStart);
    assert(adopted == batch.size() &&
           "a migrating key was already present in the destination shard");
    (void)adopted;
    keys += batch.size();
    ++batches;
    cursor = nextLo;
    if (obs::traceEnabled()) {
      obs::trace(obs::TraceKind::kMigrationBatch, batch.size(), dualVersion);
    }
    {
      std::lock_guard<std::mutex> lk(reshardStatsMu_);
      reshardStats_.migrationBatchNs.record(batchNs);
    }
    if (cfg_.adaptiveMigrationBatch) {
      if (myAborts() != abortsBefore) {
        cleanStreak = 0;
        if (batchSize > minBatch) {
          batchSize = std::max(minBatch, batchSize / 2);
          ++shrinks;
        }
      } else if (++cleanStreak >= 2 && batchSize < cfg_.migrationBatch) {
        cleanStreak = 0;
        batchSize = std::min(cfg_.migrationBatch, batchSize * 2);
        ++grows;
      }
    }
  }

  // Phase 3: settled table — the moved slots route solely to dst. In-flight
  // dual-path operations on the old table remain correct (src provably has
  // none of the moved keys; the drain retires the table afterwards).
  {
    const RoutingTable* cur = table();
    auto next = std::make_unique<RoutingTable>();
    next->version = tableVersion_++;
    next->slots = cur->slots;
    for (const int s : movedSlots) {
      next->slots[static_cast<std::size_t>(s)].owner = dst;
      next->slots[static_cast<std::size_t>(s)].prev = nullptr;
    }
    publishTable(std::move(next));
  }

  std::lock_guard<std::mutex> lk(reshardStatsMu_);
  reshardStats_.keysMigrated += keys;
  reshardStats_.migrationBatches += batches;
  reshardStats_.batchShrinks += shrinks;
  reshardStats_.batchGrows += grows;
}

int ShardedMap::splitShard(int idx) {
  std::lock_guard<std::mutex> rl(reshardMu_);
  trees::SFTree* src = nullptr;
  {
    std::lock_guard<std::mutex> lk(topoMu_);
    if (idx < 0 || static_cast<std::size_t>(idx) >= live_.size()) return -1;
    src = live_[static_cast<std::size_t>(idx)]->tree.get();
  }
  // Slots currently owned by src (reshardMu_ excludes concurrent flips).
  std::vector<int> owned;
  {
    const RoutingTable* t = table();
    for (std::size_t s = 0; s < t->slots.size(); ++s) {
      if (t->slots[s].owner == src) owned.push_back(static_cast<int>(s));
    }
  }
  if (owned.size() < 2) return -1;  // slot granularity reached

  // Load-aware selection: rank the owned slots by their traffic gauges and
  // move the alternating ranks starting with the hottest, so the fresh
  // shard takes the hot slots off the overloaded tree and both halves end
  // up with comparable measured load. stable_sort keeps all-equal ticks (a
  // map that never measured traffic) at a deterministic index interleave.
  std::stable_sort(owned.begin(), owned.end(), [&](int a, int b) {
    return slotTicks_[static_cast<std::size_t>(a)].load(
               std::memory_order_relaxed) >
           slotTicks_[static_cast<std::size_t>(b)].load(
               std::memory_order_relaxed);
  });
  std::vector<int> movedSlots;
  for (std::size_t i = 0; i < owned.size(); i += 2) {
    movedSlots.push_back(owned[i]);
  }

  std::unique_ptr<ShardRec> rec = makeShard();
  trees::SFTree* dst = rec->tree.get();
  int newIdx;
  {
    // The new shard must be live (maintained, visible to stats) before the
    // routing table can hand it traffic.
    std::lock_guard<std::mutex> lk(topoMu_);
    live_.push_back(std::move(rec));
    newIdx = static_cast<int>(live_.size() - 1);
  }
  migrateSlots(src, dst, movedSlots);
  {
    std::lock_guard<std::mutex> lk(reshardStatsMu_);
    ++reshardStats_.splits;
  }
  return newIdx;
}

bool ShardedMap::mergeShards(int victimIdx, int targetIdx) {
  std::lock_guard<std::mutex> rl(reshardMu_);
  trees::SFTree* victim = nullptr;
  trees::SFTree* target = nullptr;
  {
    std::lock_guard<std::mutex> lk(topoMu_);
    if (victimIdx < 0 || static_cast<std::size_t>(victimIdx) >= live_.size() ||
        targetIdx < 0 || static_cast<std::size_t>(targetIdx) >= live_.size() ||
        victimIdx == targetIdx || live_.size() < 2) {
      return false;
    }
    victim = live_[static_cast<std::size_t>(victimIdx)]->tree.get();
    target = live_[static_cast<std::size_t>(targetIdx)]->tree.get();
  }
  std::vector<int> movedSlots;
  {
    const RoutingTable* t = table();
    for (std::size_t s = 0; s < t->slots.size(); ++s) {
      if (t->slots[s].owner == victim) movedSlots.push_back(static_cast<int>(s));
    }
  }
  migrateSlots(victim, target, movedSlots);

  // Retirement. After the settled-table drain no operation can reach the
  // victim; what may remain is its maintenance (unregister blocks until the
  // in-flight pass finishes) and, in PerShard mode, transactions that
  // joined its domain — the domain census gates on those.
  std::unique_ptr<ShardRec> retired;
  {
    std::lock_guard<std::mutex> lk(topoMu_);
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if ((*it)->tree.get() == victim) {
        retired = std::move(*it);
        live_.erase(it);
        break;
      }
    }
  }
  assert(retired != nullptr);
  if (cfg_.scheduler != nullptr) {
    cfg_.scheduler->unregisterTree(retired->handle);
  } else {
    retired->tree->stopMaintenance();
  }
  if (retired->domain != nullptr) retired->domain->awaitQuiescence();
  {
    // The arena's slabs are freed wholesale with the tree; record what the
    // retirement drains.
    const mem::SlabArena& arena = retired->tree->arenaForStats();
    std::lock_guard<std::mutex> lk(reshardStatsMu_);
    ++reshardStats_.merges;
    reshardStats_.retiredArenaBytes +=
        arena.slabCount() * mem::SlabArena::kSlabBytes;
    reshardStats_.retiredLiveBlocks +=
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, arena.liveBlocks()));
  }
  retired.reset();  // tree (and domain, PerShard) destroyed here
  return true;
}

ReshardStats ShardedMap::reshardStats() const {
  std::lock_guard<std::mutex> lk(reshardStatsMu_);
  return reshardStats_;
}

// --------------------------------------------------------------------------
// Quiesced introspection
// --------------------------------------------------------------------------
std::vector<bool> ShardedMap::pauseAllMaintenance() {
  std::vector<bool> wasRunning(live_.size(), false);
  if (cfg_.scheduler != nullptr) {
    for (const auto& rec : live_) cfg_.scheduler->pause(rec->handle);
    return wasRunning;  // unused in scheduler mode
  }
  for (std::size_t i = 0; i < live_.size(); ++i) {
    wasRunning[i] = live_[i]->tree->maintenanceRunning();
    if (wasRunning[i]) live_[i]->tree->stopMaintenance();
  }
  return wasRunning;
}

void ShardedMap::resumeAllMaintenance(const std::vector<bool>& wasRunning) {
  if (cfg_.scheduler != nullptr) {
    for (const auto& rec : live_) cfg_.scheduler->resume(rec->handle);
    return;
  }
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (wasRunning[i]) live_[i]->tree->startMaintenance();
  }
}

std::size_t ShardedMap::size() {
  std::lock_guard<std::mutex> rl(reshardMu_);
  std::lock_guard<std::mutex> lk(topoMu_);
  const auto wasRunning = pauseAllMaintenance();
  std::size_t total = 0;
  for (const auto& rec : live_) total += rec->tree->abstractSize();
  resumeAllMaintenance(wasRunning);
  return total;
}

int ShardedMap::height() {
  std::lock_guard<std::mutex> rl(reshardMu_);
  std::lock_guard<std::mutex> lk(topoMu_);
  const auto wasRunning = pauseAllMaintenance();
  int h = 0;
  for (const auto& rec : live_) h = std::max(h, rec->tree->height());
  resumeAllMaintenance(wasRunning);
  return h;
}

std::vector<Key> ShardedMap::keysInOrder() {
  std::lock_guard<std::mutex> rl(reshardMu_);
  std::lock_guard<std::mutex> lk(topoMu_);
  const auto wasRunning = pauseAllMaintenance();
  std::vector<Key> out;
  for (const auto& rec : live_) {
    const auto keys = rec->tree->keysInOrder();
    out.insert(out.end(), keys.begin(), keys.end());
  }
  resumeAllMaintenance(wasRunning);
  // Per-shard walks are sorted, but the hash partition interleaves them.
  std::sort(out.begin(), out.end());
  return out;
}

void ShardedMap::quiesce() {
  std::lock_guard<std::mutex> rl(reshardMu_);
  std::lock_guard<std::mutex> lk(topoMu_);
  const auto wasRunning = pauseAllMaintenance();
  for (const auto& rec : live_) rec->tree->quiesceNow();
  resumeAllMaintenance(wasRunning);
}

std::int64_t ShardedMap::sizeEstimate() const {
  std::lock_guard<std::mutex> lk(topoMu_);
  std::int64_t total = 0;
  for (const auto& rec : live_) total += rec->tree->sizeEstimate();
  return total;
}

ShardedMapStats ShardedMap::aggregatedStats() const {
  std::lock_guard<std::mutex> lk(topoMu_);
  ShardedMapStats out;
  // One STM snapshot per distinct clock domain.
  if (cfg_.domainMode == DomainMode::PerShard) {
    out.domainStats.reserve(live_.size());
    for (const auto& rec : live_) {
      out.domainStats.push_back(rec->domain->aggregateStats());
    }
  } else {
    out.domainStats.push_back(live_.front()->tree->domain().aggregateStats());
  }
  for (const auto& d : out.domainStats) out.stm += d;
  out.shardSizeEstimates.reserve(live_.size());
  out.shardQueueDepths.reserve(live_.size());
  out.shardUpdateTicks.reserve(live_.size());
  for (const auto& rec : live_) {
    const trees::SFTree& s = *rec->tree;
    const auto est = s.sizeEstimate();
    out.sizeEstimate += est;
    out.shardSizeEstimates.push_back(est);
    out.shardQueueDepths.push_back(s.violationQueueDepth());
    out.shardUpdateTicks.push_back(s.updateTicks());
    const auto m = s.maintenanceStats();
    out.maintenance.traversals += m.traversals;
    out.maintenance.fullSweeps += m.fullSweeps;
    out.maintenance.rotations += m.rotations;
    out.maintenance.removals += m.removals;
    out.maintenance.failedStructuralOps += m.failedStructuralOps;
    out.maintenance.nodesFreed += m.nodesFreed;
    out.maintenance.nodesRetired += m.nodesRetired;
    out.maintenance.nodesVisited += m.nodesVisited;
    out.maintenance.sharedPrefixSkips += m.sharedPrefixSkips;
    out.maintenance.sweepsDeferred += m.sweepsDeferred;
    out.maintenance.accessEntriesDrained += m.accessEntriesDrained;
    out.maintenance.accessTicksConsumed += m.accessTicksConsumed;
    out.maintenance.splaySteps += m.splaySteps;
    out.maintenance.splayZigZigs += m.splayZigZigs;
    out.maintenance.splayBudgetStops += m.splayBudgetStops;
    out.maintenance.rebalanceSkippedHot += m.rebalanceSkippedHot;
    out.maintenance.accessDepth += m.accessDepth;
    out.maintenance.passNs += m.passNs;
    out.maintenance.queue.captured += m.queue.captured;
    out.maintenance.queue.enqueued += m.queue.enqueued;
    out.maintenance.queue.deduped += m.queue.deduped;
    out.maintenance.queue.drained += m.queue.drained;
    out.maintenance.queue.dropped += m.queue.dropped;
    out.maintenance.queue.overflows += m.queue.overflows;
    out.maintenance.queue.absorbedTicks += m.queue.absorbedTicks;
    out.maintenance.queue.drainLatencyUsSum += m.queue.drainLatencyUsSum;
  }
  out.slotOpTicks.reserve(static_cast<std::size_t>(cfg_.routingSlots));
  for (std::size_t s = 0; s < static_cast<std::size_t>(cfg_.routingSlots);
       ++s) {
    out.slotOpTicks.push_back(slotTicks_[s].load(std::memory_order_relaxed));
  }
  return out;
}

obs::MetricsRegistry::Registration ShardedMap::registerMetrics(
    obs::MetricsRegistry& reg, std::string prefix) {
  return reg.add(std::move(prefix), [this](obs::MetricSink& out) {
    const ShardedMapStats s = aggregatedStats();
    out.gauge("size_estimate", static_cast<double>(s.sizeEstimate));
    out.gauge("shards", static_cast<double>(s.shardSizeEstimates.size()));
    obs::emitThreadStats(out, "stm", s.stm);
    obs::emitMaintenanceStats(out, "maintenance", s.maintenance);
    // Slot load gauges: the full vector (dashboards can heat-map it) plus
    // the summary a skew alarm would key on.
    std::uint64_t total = 0;
    std::uint64_t hottest = 0;
    for (std::size_t i = 0; i < s.slotOpTicks.size(); ++i) {
      total += s.slotOpTicks[i];
      hottest = std::max(hottest, s.slotOpTicks[i]);
      out.counter("slot_ops.slot." + std::to_string(i), s.slotOpTicks[i]);
    }
    out.counter("slot_ops.total", total);
    out.counter("slot_ops.max", hottest);
    out.gauge("slot_ops.mean",
              s.slotOpTicks.empty()
                  ? 0.0
                  : static_cast<double>(total) /
                        static_cast<double>(s.slotOpTicks.size()));
    const ReshardStats r = reshardStats();
    out.counter("reshard.splits", r.splits);
    out.counter("reshard.merges", r.merges);
    out.counter("reshard.keys_migrated", r.keysMigrated);
    out.counter("reshard.migration_batches", r.migrationBatches);
    out.counter("reshard.batch_shrinks", r.batchShrinks);
    out.counter("reshard.batch_grows", r.batchGrows);
    out.counter("reshard.table_publishes", r.tablePublishes);
    out.counter("reshard.retired_arena_bytes", r.retiredArenaBytes);
    out.counter("reshard.retired_live_blocks", r.retiredLiveBlocks);
    out.histogram("reshard.migration_batch_ns", r.migrationBatchNs);
  });
}

}  // namespace sftree::shard
