// ReshardController: online shard-count adaptation policy.
//
// Ballard et al.'s contention-adapting trees split and merge on observed
// contention; this controller lifts the same feedback loop to the shard
// layer. It periodically samples the per-shard load gauges the maintenance
// side already collects — the violation-queue depth (backlog) and the
// monotonic update-tick counter (traffic), plus per-domain commit/abort
// rates in PerShard mode — and, past configurable thresholds:
//
//   * splits the hottest shard when its share of the sampled load exceeds
//     splitFactor times the fair share (and the shard count is below the
//     ceiling), spreading the hot slots over one more tree/domain;
//   * merges the two coldest shards when their combined share falls below
//     mergeFactor times the fair share (and the count is above the floor),
//     retiring a tree (and, in PerShard mode, its clock domain).
//
// The mechanism (routing-table flips, batched key migration, retirement)
// lives in ShardedMap::splitShard/mergeShards; the controller is pure
// policy and can also be driven manually (sampleAndAct) by benchmarks and
// tests that force a cycle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "shard/sharded_map.hpp"

namespace sftree::shard {

struct ReshardControllerConfig {
  int minShards = 1;
  // 0 = the map's routingSlots (the hard ceiling either way).
  int maxShards = 0;
  // Split when the hottest shard's load exceeds this multiple of the fair
  // (mean) share. 2.0 = "twice what it would carry under perfect balance".
  double splitFactor = 2.0;
  // Merge when the two coldest shards *together* carry less than this
  // multiple of one fair share.
  double mergeFactor = 0.5;
  // Ignore samples with fewer update ticks than this across the whole map:
  // thresholds on a near-idle interval are noise, and resharding an idle
  // map buys nothing.
  std::uint64_t minOpsPerSample = 1024;
  // Violation-queue backlog is weighted this many update ticks per entry
  // (backlog signals maintenance falling behind, which is worth reacting
  // to faster than raw traffic).
  std::uint64_t queueDepthWeight = 4;
  // Heat-weighted splitting: fold the shard's hottest routing slot's
  // decayed traffic into its load score, scaled by this factor. A shard
  // whose traffic concentrates on one slot (skew — the population the
  // splay heuristic serves) then out-scores a shard carrying the same
  // traffic spread evenly, and splits first. The decayed accumulator makes
  // *persistent* skew count more than one bursty interval: with decay d, a
  // slot sustaining delta t per interval converges to t / (1 - d). 0
  // disables the term (the pre-heat policy).
  double heatWeight = 1.0;
  double heatDecay = 0.5;
  // Background sampling period (start()/stop()).
  std::chrono::milliseconds samplePeriod{100};
};

struct ReshardControllerStats {
  std::uint64_t samples = 0;
  std::uint64_t idleSamples = 0;  // skipped: below minOpsPerSample
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
};

// One policy decision with the inputs it was made on, so "why did the map
// split at 14:02?" is answerable from the log instead of a rerun. Every
// sample that clears the idle filter produces one entry (action kNone when
// neither threshold tripped).
struct ReshardDecision {
  enum class Action : std::uint8_t { kNone = 0, kSplit = 1, kMerge = 2 };
  std::uint64_t ns = 0;  // wall-clock timestamp of the decision
  Action action = Action::kNone;
  // kSplit: the shard split / the new shard's index (-1 when the split was
  // refused). kMerge: the victim / the target. kNone: hottest / coldest.
  int shard = -1;
  int other = -1;
  bool acted = false;     // the mechanism accepted (stale indexes refuse)
  double load = 0.0;      // deciding load: hottest shard (split/none),
                          // coldest-pair sum (merge)
  double fairShare = 0.0; // total / shardCount this interval
  double total = 0.0;     // summed interval load (tick deltas + backlog)
  double threshold = 0.0; // the factor * fairShare the load was compared to
  std::uint64_t tickDelta = 0;   // deciding shard's update-tick delta
  std::uint64_t queueDepth = 0;  // deciding shard's backlog at sample time
  double hotSlotHeat = 0.0;      // deciding shard's hottest-slot decayed
                                 // heat (the heatWeight * this term of load)
};

class ReshardController {
 public:
  explicit ReshardController(ShardedMap& map,
                             ReshardControllerConfig cfg = {});
  ~ReshardController();  // stops the background thread if running

  ReshardController(const ReshardController&) = delete;
  ReshardController& operator=(const ReshardController&) = delete;

  // Background sampling loop (one dedicated thread; re-sharding itself runs
  // on it, so a migration never blocks an application thread).
  void start();
  void stop();
  bool running() const { return thread_.joinable(); }

  // One sampling step: returns true when it split or merged. Public so
  // tests and benchmarks can drive the policy deterministically.
  bool sampleAndAct();

  ReshardControllerStats stats() const;

  // The last kDecisionLogCapacity decisions, oldest first.
  std::vector<ReshardDecision> decisionLog() const;

  // Registers a snapshot source emitting the controller counters plus the
  // most recent decision (action/load/fair-share/threshold gauges). The
  // controller must outlive the registration.
  [[nodiscard]] obs::MetricsRegistry::Registration registerMetrics(
      obs::MetricsRegistry& reg, std::string prefix);

  static constexpr std::size_t kDecisionLogCapacity = 64;

 private:
  // Per-shard load score over the last sampling interval.
  struct Score {
    int index;
    double load;
    std::uint64_t tickDelta;
    std::uint64_t queueDepth;
    double hotHeat;
  };

  // Mirrors the decision into the event trace (TraceKind::kReshardDecision)
  // and appends to the bounded log (takes mu_ itself for the append).
  void recordDecision(ReshardDecision d);

  ShardedMap& map_;
  const ReshardControllerConfig cfg_;

  // Leaf lock: guards prevTicks_/stats_/decisions_ and is never held across
  // calls into the map (or anything else that takes a lock) — see the lock
  // ordering note at the top of sampleAndAct().
  mutable std::mutex mu_;
  // Update-tick reading at the previous sample, keyed by stable shard
  // identity (tree address; indexes shift under splits/merges).
  std::map<const void*, std::uint64_t> prevTicks_;
  // Per-routing-slot heat state (the heatWeight term): previous slot-tick
  // reading and the decayed accumulator. Slot indexes are stable for the
  // map's lifetime, unlike shard indexes. Empty until the first sample.
  std::vector<std::uint64_t> prevSlotTicks_;
  std::vector<double> slotHeat_;
  ReshardControllerStats stats_;
  std::deque<ReshardDecision> decisions_;  // bounded: kDecisionLogCapacity

  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace sftree::shard
