#include "vacation/client.hpp"

#include <algorithm>

namespace sftree::vacation {

void Client::runOneTransaction() {
  const auto roll = static_cast<int>(rng_.nextBounded(100));
  if (roll < cfg_.userTransactionPercent) {
    makeReservationAction();
    ++stats_.makeReservation;
  } else if ((roll - cfg_.userTransactionPercent) % 2 == 0) {
    deleteCustomerAction();
    ++stats_.deleteCustomer;
  } else {
    updateTablesAction();
    ++stats_.updateTables;
  }
}

void Client::makeReservationAction() {
  // Pre-draw the query plan outside the transaction (STAMP does the same):
  // the transaction itself must be deterministic across retries.
  struct Query {
    ReservationType type;
    Key id;
  };
  std::vector<Query> queries(static_cast<std::size_t>(cfg_.queriesPerTransaction));
  for (auto& q : queries) {
    q.type = static_cast<ReservationType>(rng_.nextBounded(3));
    q.id = randomId();
  }
  const Key customerId = randomId();

  const int made = stm::atomically([&](stm::Tx& tx) {
    Money maxPrice[kNumReservationTypes] = {-1, -1, -1};
    Key maxId[kNumReservationTypes] = {-1, -1, -1};
    for (const Query& q : queries) {
      const int t = static_cast<int>(q.type);
      const Money price = manager_.queryPrice(tx, q.type, q.id);
      if (price > maxPrice[t] && manager_.queryFree(tx, q.type, q.id) > 0) {
        maxPrice[t] = price;
        maxId[t] = q.id;
      }
    }
    bool any = false;
    for (int t = 0; t < kNumReservationTypes; ++t) {
      if (maxId[t] >= 0) {
        any = true;
        break;
      }
    }
    int reservations = 0;
    if (any) {
      manager_.addCustomer(tx, customerId);  // no-op when already present
      for (int t = 0; t < kNumReservationTypes; ++t) {
        if (maxId[t] < 0) continue;
        if (manager_.reserve(tx, static_cast<ReservationType>(t), customerId,
                             maxId[t])) {
          ++reservations;
        }
      }
    }
    return reservations;
  });
  stats_.reservationsMade += static_cast<std::uint64_t>(made);
}

void Client::deleteCustomerAction() {
  const Key customerId = randomId();
  stm::atomically([&](stm::Tx& tx) {
    const Money bill = manager_.queryCustomerBill(tx, customerId);
    if (bill >= 0) {
      manager_.deleteCustomer(tx, customerId);
    }
  });
}

void Client::updateTablesAction() {
  struct Update {
    ReservationType type;
    Key id;
    bool doAdd;
    Money newPrice;
  };
  std::vector<Update> updates(static_cast<std::size_t>(cfg_.queriesPerTransaction));
  for (auto& u : updates) {
    u.type = static_cast<ReservationType>(rng_.nextBounded(3));
    u.id = randomId();
    u.doAdd = rng_.nextBool();
    u.newPrice = static_cast<Money>(rng_.nextBounded(5) * 10 + 50);
  }
  stm::atomically([&](stm::Tx& tx) {
    for (const Update& u : updates) {
      if (u.doAdd) {
        manager_.addReservation(tx, u.type, u.id, 100, u.newPrice);
      } else {
        manager_.deleteReservationCapacity(tx, u.type, u.id, 100);
      }
    }
  });
}

}  // namespace sftree::vacation
