// End-to-end vacation application: database initialization, multi-threaded
// client execution, timing — everything Figure 6 measures.
#pragma once

#include <string>

#include "trees/map_interface.hpp"
#include "vacation/client.hpp"
#include "vacation/manager.hpp"

namespace sftree::vacation {

struct VacationConfig {
  ClientConfig client;
  trees::MapKind tableKind = trees::MapKind::OptSFTree;
  stm::TxKind txKind = stm::TxKind::Normal;
  int threads = 2;
  std::int64_t transactions = 1 << 14;  // -t: total, split across threads
  std::uint64_t seed = 7;
};

struct VacationResult {
  double seconds = 0.0;
  ClientStats clientStats;
  stm::ThreadStats stm;
  bool consistent = false;
  std::string consistencyError;

  double transactionsPerSecond(std::int64_t txs) const {
    return seconds == 0.0 ? 0.0 : static_cast<double>(txs) / seconds;
  }
};

// Populates a manager with `relations` rows per table and customers
// (capacities and prices drawn like STAMP's initializeManager).
void initializeManager(Manager& manager, const ClientConfig& cfg,
                       std::uint64_t seed);

// Runs the full benchmark: init + timed client phase + consistency check.
VacationResult runVacation(const VacationConfig& cfg);

}  // namespace sftree::vacation
