// Reservation record (STAMP vacation's reservation.c equivalent).
//
// One Reservation row per (table, id): cars, flights or rooms. All fields
// are transactional so that client transactions composing queries, updates
// and reservations across several tables commit atomically.
#pragma once

#include <cstdint>

#include "stm/stm.hpp"
#include "trees/key.hpp"

namespace sftree::vacation {

using Key = sftree::Key;
using Money = std::int64_t;

enum class ReservationType : int { Car = 0, Flight = 1, Room = 2 };

inline constexpr int kNumReservationTypes = 3;

const char* reservationTypeName(ReservationType t);

class Reservation {
 public:
  Reservation(Key id, std::int64_t numTotal, Money price)
      : id_(id), numUsed_(0), numFree_(numTotal), numTotal_(numTotal),
        price_(price) {}

  Key id() const { return id_; }

  // Adds (or removes, if negative) capacity. Fails when the result would
  // leave fewer free slots than zero.
  bool addToTotal(stm::Tx& tx, std::int64_t delta) {
    const auto free = numFree_.read(tx);
    if (free + delta < 0) return false;
    numFree_.write(tx, free + delta);
    numTotal_.write(tx, numTotal_.read(tx) + delta);
    return true;
  }

  // Consumes one free slot.
  bool make(stm::Tx& tx) {
    const auto free = numFree_.read(tx);
    if (free < 1) return false;
    numFree_.write(tx, free - 1);
    numUsed_.write(tx, numUsed_.read(tx) + 1);
    return true;
  }

  // Releases one used slot.
  bool cancel(stm::Tx& tx) {
    const auto used = numUsed_.read(tx);
    if (used < 1) return false;
    numUsed_.write(tx, used - 1);
    numFree_.write(tx, numFree_.read(tx) + 1);
    return true;
  }

  bool updatePrice(stm::Tx& tx, Money newPrice) {
    if (newPrice < 0) return false;
    price_.write(tx, newPrice);
    return true;
  }

  Money price(stm::Tx& tx) const { return price_.read(tx); }
  std::int64_t numFree(stm::Tx& tx) const { return numFree_.read(tx); }
  std::int64_t numUsed(stm::Tx& tx) const { return numUsed_.read(tx); }
  std::int64_t numTotal(stm::Tx& tx) const { return numTotal_.read(tx); }

  // Quiesced accessors (consistency checks).
  std::int64_t numFreeRelaxed() const { return numFree_.loadRelaxed(); }
  std::int64_t numUsedRelaxed() const { return numUsed_.loadRelaxed(); }
  std::int64_t numTotalRelaxed() const { return numTotal_.loadRelaxed(); }
  Money priceRelaxed() const { return price_.loadRelaxed(); }

 private:
  const Key id_;
  stm::TxField<std::int64_t> numUsed_;
  stm::TxField<std::int64_t> numFree_;
  stm::TxField<std::int64_t> numTotal_;
  stm::TxField<Money> price_;
};

}  // namespace sftree::vacation
