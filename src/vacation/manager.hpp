// The travel-reservation database (STAMP vacation's manager.c equivalent):
// four tables — cars, flights, rooms, customers — implemented as
// transactional trees selected by MapKind, which is exactly how Figure 6
// compares the red-black tree, the optimized speculation-friendly tree and
// the no-restructuring tree as directory implementations.
#pragma once

#include <memory>
#include <mutex>

#include "gc/limbo_list.hpp"
#include "gc/thread_registry.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "trees/map_interface.hpp"
#include "vacation/customer.hpp"
#include "vacation/reservation.hpp"

namespace sftree::vacation {

class Manager {
 public:
  // txKind selects the TM mode of the underlying tree operations.
  Manager(trees::MapKind tableKind, stm::TxKind txKind);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // --- capacity / price management (UPDATE_TABLES action) ------------------
  // add*: creates the row if absent, otherwise adds capacity and updates
  // the price. delete*: removes `num` capacity (row stays, as in STAMP).
  bool addReservation(stm::Tx& tx, ReservationType type, Key id,
                      std::int64_t num, Money price);
  bool deleteReservationCapacity(stm::Tx& tx, ReservationType type, Key id,
                                 std::int64_t num);
  // Removes an entire flight if it has no used seats (STAMP
  // manager_deleteFlight).
  bool deleteFlight(stm::Tx& tx, Key id);

  // --- customers -------------------------------------------------------------
  bool addCustomer(stm::Tx& tx, Key customerId);
  // Cancels all the customer's reservations and removes the record;
  // returns false when the customer does not exist.
  bool deleteCustomer(stm::Tx& tx, Key customerId);
  // Total bill, or -1 when the customer does not exist (STAMP semantics).
  Money queryCustomerBill(stm::Tx& tx, Key customerId);

  // --- queries (MAKE_RESERVATION action) ------------------------------------
  // Free capacity, or -1 when the row does not exist.
  std::int64_t queryFree(stm::Tx& tx, ReservationType type, Key id);
  // Price, or -1 when the row does not exist.
  Money queryPrice(stm::Tx& tx, ReservationType type, Key id);

  // --- reservations -----------------------------------------------------------
  bool reserve(stm::Tx& tx, ReservationType type, Key customerId, Key id);
  bool cancel(stm::Tx& tx, ReservationType type, Key customerId, Key id);

  // --- consistency check (tests; quiesced) ----------------------------------
  // Verifies: numFree + numUsed == numTotal for every row, and the number
  // of customer reservation infos per row equals the row's numUsed.
  bool checkConsistency(std::string* error = nullptr);

  trees::ITransactionalMap& table(ReservationType type) {
    return *tables_[static_cast<int>(type)];
  }
  trees::ITransactionalMap& customerTable() { return *customers_; }

  // Null when the table kind needs no background restructuring.
  shard::MaintenanceScheduler* maintenanceScheduler() {
    return maintScheduler_.get();
  }

 private:
  Reservation* findReservation(stm::Tx& tx, ReservationType type, Key id);
  Customer* findCustomer(stm::Tx& tx, Key customerId);
  void retireReservation(Reservation* r);
  void retireCustomer(Customer* c);

  // One shared worker pool maintains all four tables (instead of four
  // dedicated rotator threads). Declared before the tables: they must
  // unregister (in their destructors) before the scheduler is destroyed.
  std::unique_ptr<shard::MaintenanceScheduler> maintScheduler_;
  std::unique_ptr<trees::ITransactionalMap> tables_[kNumReservationTypes];
  std::unique_ptr<trees::ITransactionalMap> customers_;

  // Row objects unlinked from the tables wait here for quiescence. The
  // registry brackets every manager operation.
  gc::ThreadRegistry registry_;
  std::mutex limboMu_;
  gc::LimboList limbo_;
  std::uint64_t retireTick_ = 0;
};

}  // namespace sftree::vacation
