// Vacation client workload (STAMP vacation's client.c equivalent).
//
// Each client thread executes transactions drawn from three actions:
//   * MAKE_RESERVATION (u% of transactions): query `queries` random
//     (type, id) pairs, remember the highest-priced available one per type,
//     then create the customer if needed and reserve those items — all in
//     one transaction.
//   * DELETE_CUSTOMER ((100-u)/2 %): query a customer's bill and delete the
//     customer, cancelling all their reservations.
//   * UPDATE_TABLES ((100-u)/2 %): add or remove capacity on `queries`
//     random rows.
//
// STAMP presets: low contention  = -n2 -q90 -u98,
//                high contention = -n4 -q60 -u90.
#pragma once

#include <cstdint>

#include "bench_core/rng.hpp"
#include "vacation/manager.hpp"

namespace sftree::vacation {

struct ClientConfig {
  int queriesPerTransaction = 2;   // -n
  int queryRangePercent = 90;      // -q: % of relations touched
  int userTransactionPercent = 98; // -u
  std::int64_t relations = 1 << 14;  // -r: rows per table at init
};

inline ClientConfig lowContentionConfig() {
  return ClientConfig{2, 90, 98, 1 << 14};
}

inline ClientConfig highContentionConfig() {
  return ClientConfig{4, 60, 90, 1 << 14};
}

struct ClientStats {
  std::uint64_t makeReservation = 0;
  std::uint64_t deleteCustomer = 0;
  std::uint64_t updateTables = 0;
  std::uint64_t reservationsMade = 0;

  ClientStats& operator+=(const ClientStats& o) {
    makeReservation += o.makeReservation;
    deleteCustomer += o.deleteCustomer;
    updateTables += o.updateTables;
    reservationsMade += o.reservationsMade;
    return *this;
  }
};

class Client {
 public:
  Client(Manager& manager, const ClientConfig& cfg, std::uint64_t seed)
      : manager_(manager), cfg_(cfg), rng_(seed) {}

  // Executes one complete client transaction and updates the stats.
  void runOneTransaction();

  const ClientStats& stats() const { return stats_; }

 private:
  void makeReservationAction();
  void deleteCustomerAction();
  void updateTablesAction();

  Key randomId() {
    const std::int64_t range =
        std::max<std::int64_t>(1, cfg_.relations * cfg_.queryRangePercent / 100);
    return static_cast<Key>(rng_.nextBounded(
        static_cast<std::uint64_t>(range)));
  }

  Manager& manager_;
  ClientConfig cfg_;
  bench::Rng rng_;
  ClientStats stats_;
};

}  // namespace sftree::vacation
