// Customer record with a transactional list of reservation infos (STAMP
// vacation's customer.c equivalent).
#pragma once

#include "structures/tmlist.hpp"
#include "vacation/reservation.hpp"

namespace sftree::vacation {

class Customer {
 public:
  explicit Customer(Key id) : id_(id) {}

  Key id() const { return id_; }

  // Reservation infos are stored in the sorted transactional list keyed by
  // (type, id); the value is the price paid.
  static sftree::Key infoKey(ReservationType type, Key id) {
    return static_cast<sftree::Key>(type) * kTypeStride + id;
  }

  bool addReservationInfo(stm::Tx& tx, ReservationType type, Key id,
                          Money price) {
    return reservations_.insertTx(tx, infoKey(type, id), price);
  }

  bool removeReservationInfo(stm::Tx& tx, ReservationType type, Key id) {
    return reservations_.eraseTx(tx, infoKey(type, id));
  }

  bool hasReservation(stm::Tx& tx, ReservationType type, Key id) {
    return reservations_.containsTx(tx, infoKey(type, id));
  }

  // Total price of all reservations held (STAMP's customer_getBill).
  Money bill(stm::Tx& tx) {
    Money total = 0;
    reservations_.forEachTx(tx,
                            [&](sftree::Key, sftree::Value price) {
                              total += static_cast<Money>(price);
                            });
    return total;
  }

  // Applies fn(type, id, price) for each reservation info.
  template <typename F>
  void forEachReservation(stm::Tx& tx, F&& fn) {
    reservations_.forEachTx(tx, [&](sftree::Key key, sftree::Value price) {
      const auto type = static_cast<ReservationType>(key / kTypeStride);
      const Key id = key % kTypeStride;
      fn(type, id, static_cast<Money>(price));
    });
  }

  std::size_t reservationCount(stm::Tx& tx) {
    return reservations_.sizeTx(tx);
  }

  // Quiesced view for consistency checks.
  std::vector<std::pair<sftree::Key, sftree::Value>> reservationItems() {
    return reservations_.items();
  }

 private:
  static constexpr sftree::Key kTypeStride = sftree::Key{1} << 40;

  const Key id_;
  structures::TMList reservations_;
};

}  // namespace sftree::vacation
