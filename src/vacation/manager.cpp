#include "vacation/manager.hpp"

#include "gc/tx_guard.hpp"

#include <sstream>
#include <thread>
#include <unordered_map>

namespace sftree::vacation {

const char* reservationTypeName(ReservationType t) {
  switch (t) {
    case ReservationType::Car: return "car";
    case ReservationType::Flight: return "flight";
    case ReservationType::Room: return "room";
  }
  return "?";
}

namespace {

inline sftree::Value encodePtr(void* p) {
  return static_cast<sftree::Value>(reinterpret_cast<std::uintptr_t>(p));
}

template <typename T>
inline T* decodePtr(sftree::Value v) {
  return reinterpret_cast<T*>(static_cast<std::uintptr_t>(v));
}

void deleteReservationObj(void* p) { delete static_cast<Reservation*>(p); }
void deleteCustomerObj(void* p) { delete static_cast<Customer*>(p); }

}  // namespace

Manager::Manager(trees::MapKind tableKind, stm::TxKind txKind) {
  // The four tables (cars/flights/rooms/customers) share one maintenance
  // worker pool: K workers (K < 4) multiplex the restructuring passes
  // instead of four dedicated rotator threads starving the clients on
  // small machines. The scheduler's
  // per-tree backoff replaces the old duty-cycle throttle: cold tables
  // cost nothing, hot tables get the passes.
  trees::MapOptions options;
  if (tableKind == trees::MapKind::SFTree ||
      tableKind == trees::MapKind::OptSFTree) {
    shard::MaintenanceSchedulerConfig schedCfg;
    schedCfg.workers = std::thread::hardware_concurrency() >= 8 ? 2 : 1;
    maintScheduler_ =
        std::make_unique<shard::MaintenanceScheduler>(schedCfg);
    options.scheduler = maintScheduler_.get();
  }
  for (int t = 0; t < kNumReservationTypes; ++t) {
    options.name =
        std::string("vacation/") +
        reservationTypeName(static_cast<ReservationType>(t)) + "s";
    tables_[t] = trees::makeMap(tableKind, txKind, options);
  }
  options.name = "vacation/customers";
  customers_ = trees::makeMap(tableKind, txKind, options);
}

Manager::~Manager() {
  // Free the row objects still owned by the tables (the trees only free
  // their nodes; the pointed-to rows are ours).
  for (auto& tbl : tables_) {
    for (const Key id : tbl->keysInOrder()) {
      const auto v = tbl->get(id);
      if (v) delete decodePtr<Reservation>(*v);
    }
  }
  for (const Key id : customers_->keysInOrder()) {
    const auto v = customers_->get(id);
    if (v) delete decodePtr<Customer>(*v);
  }
  // Unlinked rows are freed by the limbo list destructor.
}

Reservation* Manager::findReservation(stm::Tx& tx, ReservationType type,
                                      Key id) {
  const auto v = table(type).getTx(tx, id);
  return v ? decodePtr<Reservation>(*v) : nullptr;
}

Customer* Manager::findCustomer(stm::Tx& tx, Key customerId) {
  const auto v = customers_->getTx(tx, customerId);
  return v ? decodePtr<Customer>(*v) : nullptr;
}

bool Manager::addReservation(stm::Tx& tx, ReservationType type, Key id,
                             std::int64_t num, Money price) {
  gc::txOpGuard(tx, registry_);
  Reservation* r = findReservation(tx, type, id);
  if (r == nullptr) {
    if (num < 1 || price < 0) return false;
    auto* fresh = new Reservation(id, num, price);
    tx.onAbortDelete(fresh, &deleteReservationObj);
    table(type).insertTx(tx, id, encodePtr(fresh));
    return true;
  }
  if (!r->addToTotal(tx, num)) return false;
  if (price >= 0) r->updatePrice(tx, price);
  return true;
}

bool Manager::deleteReservationCapacity(stm::Tx& tx, ReservationType type,
                                        Key id, std::int64_t num) {
  gc::txOpGuard(tx, registry_);
  Reservation* r = findReservation(tx, type, id);
  if (r == nullptr) return false;
  return r->addToTotal(tx, -num);
}

bool Manager::deleteFlight(stm::Tx& tx, Key id) {
  gc::txOpGuard(tx, registry_);
  Reservation* r = findReservation(tx, ReservationType::Flight, id);
  if (r == nullptr) return false;
  if (r->numUsed(tx) > 0) return false;  // seats in use: cannot drop
  table(ReservationType::Flight).eraseTx(tx, id);
  tx.onCommit([this, r] { retireReservation(r); });
  return true;
}

bool Manager::addCustomer(stm::Tx& tx, Key customerId) {
  gc::txOpGuard(tx, registry_);
  if (customers_->containsTx(tx, customerId)) return false;
  auto* fresh = new Customer(customerId);
  tx.onAbortDelete(fresh, &deleteCustomerObj);
  customers_->insertTx(tx, customerId, encodePtr(fresh));
  return true;
}

bool Manager::deleteCustomer(stm::Tx& tx, Key customerId) {
  gc::txOpGuard(tx, registry_);
  Customer* c = findCustomer(tx, customerId);
  if (c == nullptr) return false;
  // Cancel every reservation the customer holds (releases capacity).
  c->forEachReservation(tx, [&](ReservationType type, Key id, Money) {
    Reservation* r = findReservation(tx, type, id);
    if (r != nullptr) r->cancel(tx);
  });
  customers_->eraseTx(tx, customerId);
  tx.onCommit([this, c] { retireCustomer(c); });
  return true;
}

Money Manager::queryCustomerBill(stm::Tx& tx, Key customerId) {
  gc::txOpGuard(tx, registry_);
  Customer* c = findCustomer(tx, customerId);
  if (c == nullptr) return -1;
  return c->bill(tx);
}

std::int64_t Manager::queryFree(stm::Tx& tx, ReservationType type, Key id) {
  gc::txOpGuard(tx, registry_);
  Reservation* r = findReservation(tx, type, id);
  return r == nullptr ? -1 : r->numFree(tx);
}

Money Manager::queryPrice(stm::Tx& tx, ReservationType type, Key id) {
  gc::txOpGuard(tx, registry_);
  Reservation* r = findReservation(tx, type, id);
  return r == nullptr ? -1 : r->price(tx);
}

bool Manager::reserve(stm::Tx& tx, ReservationType type, Key customerId,
                      Key id) {
  gc::txOpGuard(tx, registry_);
  Customer* c = findCustomer(tx, customerId);
  if (c == nullptr) return false;
  Reservation* r = findReservation(tx, type, id);
  if (r == nullptr) return false;
  if (!r->make(tx)) return false;
  if (!c->addReservationInfo(tx, type, id, r->price(tx))) {
    // Already reserved: undo the capacity grab (same transaction, so this
    // is just a buffered-write fixup).
    r->cancel(tx);
    return false;
  }
  return true;
}

bool Manager::cancel(stm::Tx& tx, ReservationType type, Key customerId,
                     Key id) {
  gc::txOpGuard(tx, registry_);
  Customer* c = findCustomer(tx, customerId);
  if (c == nullptr) return false;
  Reservation* r = findReservation(tx, type, id);
  if (r == nullptr) return false;
  if (!c->removeReservationInfo(tx, type, id)) return false;
  return r->cancel(tx);
}

void Manager::retireReservation(Reservation* r) {
  std::lock_guard<std::mutex> lk(limboMu_);
  limbo_.retire(r, &deleteReservationObj);
  if (++retireTick_ % 16 == 0) {
    limbo_.tryCollect(registry_);
    limbo_.openEpoch(registry_);
  }
}

void Manager::retireCustomer(Customer* c) {
  std::lock_guard<std::mutex> lk(limboMu_);
  limbo_.retire(c, &deleteCustomerObj);
  if (++retireTick_ % 16 == 0) {
    limbo_.tryCollect(registry_);
    limbo_.openEpoch(registry_);
  }
}

bool Manager::checkConsistency(std::string* error) {
  // Quiesced: walk the tables directly.
  std::unordered_map<sftree::Key, std::int64_t> usedByCustomers;
  for (const Key cid : customers_->keysInOrder()) {
    const auto v = customers_->get(cid);
    if (!v) continue;
    auto* c = decodePtr<Customer>(*v);
    for (const auto& [infoKey, price] : c->reservationItems()) {
      (void)price;
      ++usedByCustomers[infoKey];
    }
  }
  for (int t = 0; t < kNumReservationTypes; ++t) {
    const auto type = static_cast<ReservationType>(t);
    for (const Key id : tables_[t]->keysInOrder()) {
      const auto v = tables_[t]->get(id);
      if (!v) continue;
      auto* r = decodePtr<Reservation>(*v);
      if (r->numFreeRelaxed() + r->numUsedRelaxed() != r->numTotalRelaxed()) {
        if (error) {
          std::ostringstream os;
          os << reservationTypeName(type) << " " << id
             << ": free+used != total";
          *error = os.str();
        }
        return false;
      }
      if (r->numFreeRelaxed() < 0 || r->numUsedRelaxed() < 0) {
        if (error) *error = "negative capacity";
        return false;
      }
      const auto it = usedByCustomers.find(Customer::infoKey(type, id));
      const std::int64_t held = it == usedByCustomers.end() ? 0 : it->second;
      if (held != r->numUsedRelaxed()) {
        if (error) {
          std::ostringstream os;
          os << reservationTypeName(type) << " " << id << ": numUsed="
             << r->numUsedRelaxed() << " but customers hold " << held;
          *error = os.str();
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace sftree::vacation
