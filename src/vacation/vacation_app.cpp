#include "vacation/vacation_app.hpp"

#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "stm/runtime.hpp"

namespace sftree::vacation {

void initializeManager(Manager& manager, const ClientConfig& cfg,
                       std::uint64_t seed) {
  bench::Rng rng(seed);
  // Insert the rows in a shuffled order: sequential ids would degenerate
  // the no-restructuring table into a linear spine before the benchmark
  // even starts, which is an artifact of initialization rather than of the
  // workload the paper measures.
  std::vector<std::int64_t> ids(static_cast<std::size_t>(cfg.relations));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<std::int64_t>(i);
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.nextBounded(i)]);
  }
  // STAMP: numTotal in {100..500} steps of 100, price in {50..550} steps
  // of 10.
  for (const std::int64_t i : ids) {
    for (int t = 0; t < kNumReservationTypes; ++t) {
      const auto num = static_cast<std::int64_t>((rng.nextBounded(5) + 1) * 100);
      const auto price = static_cast<Money>(rng.nextBounded(5) * 10 + 50);
      stm::atomically([&](stm::Tx& tx) {
        manager.addReservation(tx, static_cast<ReservationType>(t),
                               static_cast<Key>(i), num, price);
      });
    }
    stm::atomically([&](stm::Tx& tx) {
      manager.addCustomer(tx, static_cast<Key>(i));
    });
  }
}

VacationResult runVacation(const VacationConfig& cfg) {
  Manager manager(cfg.tableKind, cfg.txKind);
  initializeManager(manager, cfg.client, cfg.seed);

  stm::defaultDomain().resetStats();

  const std::int64_t perThread =
      std::max<std::int64_t>(1, cfg.transactions / cfg.threads);
  std::vector<ClientStats> stats(static_cast<std::size_t>(cfg.threads));
  std::barrier sync(cfg.threads + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.threads));

  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      Client client(manager, cfg.client, cfg.seed + 7919u * (t + 1));
      sync.arrive_and_wait();
      for (std::int64_t i = 0; i < perThread; ++i) {
        client.runOneTransaction();
      }
      stats[static_cast<std::size_t>(t)] = client.stats();
    });
  }

  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();

  VacationResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  for (const auto& s : stats) result.clientStats += s;
  result.stm = stm::defaultDomain().aggregateStats();
  result.consistent = manager.checkConsistency(&result.consistencyError);
  return result;
}

}  // namespace sftree::vacation
