#include "trees/map_interface.hpp"

#include <map>

#include "shard/maintenance_scheduler.hpp"
#include "trees/avltree.hpp"
#include "trees/rbtree.hpp"
#include "trees/sftree.hpp"

namespace sftree::trees {

namespace {

// Marks cfg as externally maintained when a scheduler is supplied and the
// tree actually restructures (the NRtree has nothing to schedule).
SFTreeConfig adaptForScheduler(SFTreeConfig cfg,
                               shard::MaintenanceScheduler* scheduler) {
  if (scheduler != nullptr && (cfg.rotations || cfg.removals)) {
    cfg.startMaintenance = false;
  }
  return cfg;
}

class SFTreeMap final : public ITransactionalMap {
  template <typename F>
  auto withPausedMaintenance(F&& fn) {
    if (handle_ != shard::MaintenanceScheduler::kInvalidHandle) {
      scheduler_->pause(handle_);
      auto result = fn();
      scheduler_->resume(handle_);
      return result;
    }
    const bool wasRunning = tree_.maintenanceRunning();
    if (wasRunning) tree_.stopMaintenance();
    auto result = fn();
    if (wasRunning) tree_.startMaintenance();
    return result;
  }

 public:
  explicit SFTreeMap(SFTreeConfig cfg, std::string name = "sftree",
                     shard::MaintenanceScheduler* scheduler = nullptr)
      : tree_(adaptForScheduler(cfg, scheduler)), scheduler_(scheduler) {
    if (scheduler_ != nullptr && (cfg.rotations || cfg.removals)) {
      handle_ = scheduler_->registerTree(
          std::move(name),
          [this](const std::atomic<bool>* cancel) {
            return tree_.runMaintenancePass(cancel);
          },
          [this] { return tree_.updateTicks(); });
    }
  }

  ~SFTreeMap() override {
    // Block until any in-flight scheduled pass has finished before the
    // tree member is destroyed.
    if (handle_ != shard::MaintenanceScheduler::kInvalidHandle) {
      scheduler_->unregisterTree(handle_);
    }
  }

  bool insert(Key k, Value v) override { return tree_.insert(k, v); }
  bool erase(Key k) override { return tree_.erase(k); }
  bool contains(Key k) override { return tree_.contains(k); }
  std::optional<Value> get(Key k) override { return tree_.get(k); }
  bool move(Key from, Key to) override { return tree_.move(from, to); }

  bool insertTx(stm::Tx& tx, Key k, Value v) override {
    return tree_.insertTx(tx, k, v);
  }
  bool eraseTx(stm::Tx& tx, Key k) override { return tree_.eraseTx(tx, k); }
  bool containsTx(stm::Tx& tx, Key k) override {
    return tree_.containsTx(tx, k);
  }
  std::optional<Value> getTx(stm::Tx& tx, Key k) override {
    return tree_.getTx(tx, k);
  }
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi) override {
    return tree_.countRangeTx(tx, lo, hi);
  }
  // Root the snapshot in the tree's own domain (read-only kind, no
  // cross-domain join) instead of the interface default.
  std::size_t countRange(Key lo, Key hi) override {
    return tree_.countRange(lo, hi);
  }

  // The walks require a quiesced structure: pause the maintenance thread so
  // in-flight rotations cannot hide nodes from the traversal.
  std::size_t size() override {
    return withPausedMaintenance([&] { return tree_.abstractSize(); });
  }
  int height() override {
    return withPausedMaintenance([&] { return tree_.height(); });
  }
  std::vector<Key> keysInOrder() override {
    return withPausedMaintenance([&] { return tree_.keysInOrder(); });
  }

  void quiesce() override {
    withPausedMaintenance([&] {
      tree_.quiesceNow();
      return 0;
    });
  }

  SFTree& tree() { return tree_; }

 private:
  SFTree tree_;
  shard::MaintenanceScheduler* scheduler_;
  shard::MaintenanceScheduler::TreeHandle handle_ =
      shard::MaintenanceScheduler::kInvalidHandle;
};

class RBTreeMap final : public ITransactionalMap {
 public:
  explicit RBTreeMap(RBTreeConfig cfg) : tree_(cfg) {}

  bool insert(Key k, Value v) override { return tree_.insert(k, v); }
  bool erase(Key k) override { return tree_.erase(k); }
  bool contains(Key k) override { return tree_.contains(k); }
  std::optional<Value> get(Key k) override { return tree_.get(k); }
  bool move(Key from, Key to) override { return tree_.move(from, to); }

  bool insertTx(stm::Tx& tx, Key k, Value v) override {
    return tree_.insertTx(tx, k, v);
  }
  bool eraseTx(stm::Tx& tx, Key k) override { return tree_.eraseTx(tx, k); }
  bool containsTx(stm::Tx& tx, Key k) override {
    return tree_.containsTx(tx, k);
  }
  std::optional<Value> getTx(stm::Tx& tx, Key k) override {
    return tree_.getTx(tx, k);
  }
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi) override {
    return tree_.countRangeTx(tx, lo, hi);
  }
  std::size_t countRange(Key lo, Key hi) override {
    return tree_.countRange(lo, hi);
  }

  std::size_t size() override { return tree_.size(); }
  int height() override { return tree_.height(); }
  std::vector<Key> keysInOrder() override { return tree_.keysInOrder(); }

 private:
  RBTree tree_;
};

class AVLTreeMap final : public ITransactionalMap {
 public:
  explicit AVLTreeMap(AVLTreeConfig cfg) : tree_(cfg) {}

  bool insert(Key k, Value v) override { return tree_.insert(k, v); }
  bool erase(Key k) override { return tree_.erase(k); }
  bool contains(Key k) override { return tree_.contains(k); }
  std::optional<Value> get(Key k) override { return tree_.get(k); }
  bool move(Key from, Key to) override { return tree_.move(from, to); }

  bool insertTx(stm::Tx& tx, Key k, Value v) override {
    return tree_.insertTx(tx, k, v);
  }
  bool eraseTx(stm::Tx& tx, Key k) override { return tree_.eraseTx(tx, k); }
  bool containsTx(stm::Tx& tx, Key k) override {
    return tree_.containsTx(tx, k);
  }
  std::optional<Value> getTx(stm::Tx& tx, Key k) override {
    return tree_.getTx(tx, k);
  }
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi) override {
    return tree_.countRangeTx(tx, lo, hi);
  }
  std::size_t countRange(Key lo, Key hi) override {
    return tree_.countRange(lo, hi);
  }

  std::size_t size() override { return tree_.size(); }
  int height() override { return tree_.height(); }
  std::vector<Key> keysInOrder() override { return tree_.keysInOrder(); }

 private:
  AVLTree tree_;
};

// Unsynchronized std::map: the Figure 6 "bare sequential" baseline. The Tx
// parameters are ignored — operations touch no STM state, so a
// single-threaded run measures the application without TM overhead on its
// directories.
class SeqSTLMap final : public ITransactionalMap {
 public:
  bool insert(Key k, Value v) override { return map_.emplace(k, v).second; }
  bool erase(Key k) override { return map_.erase(k) > 0; }
  bool contains(Key k) override { return map_.count(k) > 0; }
  std::optional<Value> get(Key k) override {
    auto it = map_.find(k);
    return it == map_.end() ? std::nullopt : std::optional<Value>(it->second);
  }
  bool move(Key from, Key to) override {
    if (map_.count(to) != 0) return false;
    auto it = map_.find(from);
    if (it == map_.end()) return false;
    const Value v = it->second;
    map_.erase(it);
    map_.emplace(to, v);
    return true;
  }

  bool insertTx(stm::Tx&, Key k, Value v) override { return insert(k, v); }
  bool eraseTx(stm::Tx&, Key k) override { return erase(k); }
  bool containsTx(stm::Tx&, Key k) override { return contains(k); }
  std::optional<Value> getTx(stm::Tx&, Key k) override { return get(k); }
  std::size_t countRangeTx(stm::Tx&, Key lo, Key hi) override {
    return static_cast<std::size_t>(
        std::distance(map_.lower_bound(lo), map_.upper_bound(hi)));
  }

  std::size_t size() override { return map_.size(); }
  int height() override { return 0; }
  std::vector<Key> keysInOrder() override {
    std::vector<Key> out;
    out.reserve(map_.size());
    for (const auto& [k, v] : map_) out.push_back(k);
    return out;
  }

 private:
  std::map<Key, Value> map_;
};

}  // namespace

const char* mapKindName(MapKind kind) {
  switch (kind) {
    case MapKind::SFTree: return "SFtree";
    case MapKind::OptSFTree: return "Opt-SFtree";
    case MapKind::NRTree: return "NRtree";
    case MapKind::RBTree: return "RBtree";
    case MapKind::AVLTree: return "AVLtree";
    case MapKind::SeqSTL: return "Sequential";
  }
  return "?";
}

std::vector<MapKind> allMapKinds() {
  return {MapKind::SFTree, MapKind::OptSFTree, MapKind::NRTree,
          MapKind::RBTree, MapKind::AVLTree};
}

std::unique_ptr<ITransactionalMap> makeMap(MapKind kind, stm::TxKind txKind,
                                           const MapOptions& options) {
  switch (kind) {
    case MapKind::SFTree: {
      SFTreeConfig cfg;
      cfg.ops = OpsVariant::Portable;
      cfg.txKind = txKind;
      cfg.domain = options.domain;
      cfg.interPassPause = options.maintenanceThrottle;
      return std::make_unique<SFTreeMap>(
          cfg, options.name.empty() ? "SFtree" : options.name,
          options.scheduler);
    }
    case MapKind::OptSFTree: {
      SFTreeConfig cfg;
      cfg.ops = OpsVariant::Optimized;
      cfg.txKind = txKind;
      cfg.domain = options.domain;
      cfg.interPassPause = options.maintenanceThrottle;
      return std::make_unique<SFTreeMap>(
          cfg, options.name.empty() ? "Opt-SFtree" : options.name,
          options.scheduler);
    }
    case MapKind::NRTree: {
      SFTreeConfig cfg;
      cfg.ops = OpsVariant::Portable;
      cfg.txKind = txKind;
      cfg.domain = options.domain;
      cfg.rotations = false;
      cfg.removals = false;  // the NRtree never physically removes nodes
      cfg.startMaintenance = false;
      return std::make_unique<SFTreeMap>(cfg);
    }
    case MapKind::RBTree: {
      RBTreeConfig cfg;
      cfg.txKind = txKind;
      cfg.domain = options.domain;
      return std::make_unique<RBTreeMap>(cfg);
    }
    case MapKind::AVLTree: {
      AVLTreeConfig cfg;
      cfg.txKind = txKind;
      cfg.domain = options.domain;
      return std::make_unique<AVLTreeMap>(cfg);
    }
    case MapKind::SeqSTL:
      return std::make_unique<SeqSTLMap>();
  }
  return nullptr;
}

}  // namespace sftree::trees
