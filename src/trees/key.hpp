// Key/value domain shared by all tree implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace sftree {

using Key = std::int64_t;
using Value = std::int64_t;

// The speculation-friendly tree is rooted at a sentinel node with key +inf
// so that every user key lives in the root's left subtree (paper §4: "It is
// created with a root node with key ∞ ... This node will always be the
// root"). User keys must be strictly smaller.
inline constexpr Key kInfiniteKey = std::numeric_limits<Key>::max();

}  // namespace sftree
