#include "trees/avltree.hpp"

#include "gc/tx_guard.hpp"

#include <algorithm>
#include <stack>

namespace sftree::trees {

AVLTree::AVLTree(AVLTreeConfig cfg)
    : cfg_(cfg),
      domain_(cfg.domain != nullptr ? *cfg.domain : stm::defaultDomain()) {}

AVLTree::~AVLTree() {
  std::stack<AVLNode*> stack;
  if (AVLNode* r = root_.loadRelaxed()) stack.push(r);
  while (!stack.empty()) {
    AVLNode* n = stack.top();
    stack.pop();
    if (AVLNode* l = n->left.loadRelaxed()) stack.push(l);
    if (AVLNode* r = n->right.loadRelaxed()) stack.push(r);
    deleteNode(n);
  }
}

AVLNode* AVLTree::rotateRight(stm::Tx& tx, AVLNode* n) {
  AVLNode* l = n->left.read(tx);
  AVLNode* lr = l->right.read(tx);
  l->right.write(tx, n);
  n->left.write(tx, lr);
  n->height.write(
      tx, 1 + std::max(nodeHeight(tx, lr), nodeHeight(tx, n->right.read(tx))));
  l->height.write(
      tx, 1 + std::max(nodeHeight(tx, l->left.read(tx)), nodeHeight(tx, n)));
  return l;
}

AVLNode* AVLTree::rotateLeft(stm::Tx& tx, AVLNode* n) {
  AVLNode* r = n->right.read(tx);
  AVLNode* rl = r->left.read(tx);
  r->left.write(tx, n);
  n->right.write(tx, rl);
  n->height.write(
      tx, 1 + std::max(nodeHeight(tx, n->left.read(tx)), nodeHeight(tx, rl)));
  r->height.write(
      tx, 1 + std::max(nodeHeight(tx, n), nodeHeight(tx, r->right.read(tx))));
  return r;
}

AVLNode* AVLTree::rebalance(stm::Tx& tx, AVLNode* n) {
  AVLNode* l = n->left.read(tx);
  AVLNode* r = n->right.read(tx);
  const std::int64_t lh = nodeHeight(tx, l);
  const std::int64_t rh = nodeHeight(tx, r);
  const std::int64_t balance = lh - rh;
  if (balance > 1) {
    // Left-heavy; left-right case first rotates the left child.
    if (nodeHeight(tx, l->left.read(tx)) < nodeHeight(tx, l->right.read(tx))) {
      n->left.write(tx, rotateLeft(tx, l));
    }
    return rotateRight(tx, n);
  }
  if (balance < -1) {
    if (nodeHeight(tx, r->right.read(tx)) < nodeHeight(tx, r->left.read(tx))) {
      n->right.write(tx, rotateRight(tx, r));
    }
    return rotateLeft(tx, n);
  }
  const std::int64_t h = 1 + std::max(lh, rh);
  if (n->height.read(tx) != h) n->height.write(tx, h);
  return n;
}

AVLNode* AVLTree::insertRec(stm::Tx& tx, AVLNode* n, Key k, Value v,
                            bool& inserted) {
  if (n == nullptr) {
    AVLNode* fresh = arena_.create(k, v);
    tx.onAbortDelete(fresh, &AVLTree::deleteNode);
    inserted = true;
    return fresh;
  }
  if (k == n->key) {
    inserted = false;  // set semantics: present means no change
    return n;
  }
  if (k < n->key) {
    AVLNode* l = n->left.read(tx);
    AVLNode* nl = insertRec(tx, l, k, v, inserted);
    if (nl != l) n->left.write(tx, nl);
  } else {
    AVLNode* r = n->right.read(tx);
    AVLNode* nr = insertRec(tx, r, k, v, inserted);
    if (nr != r) n->right.write(tx, nr);
  }
  return inserted ? rebalance(tx, n) : n;
}

AVLNode* AVLTree::detachMin(stm::Tx& tx, AVLNode* n, AVLNode*& minOut) {
  AVLNode* l = n->left.read(tx);
  if (l == nullptr) {
    minOut = n;
    return n->right.read(tx);
  }
  AVLNode* nl = detachMin(tx, l, minOut);
  if (nl != l) n->left.write(tx, nl);
  return rebalance(tx, n);
}

AVLNode* AVLTree::eraseRec(stm::Tx& tx, AVLNode* n, Key k, bool& erased) {
  if (n == nullptr) {
    erased = false;
    return nullptr;
  }
  if (k < n->key) {
    AVLNode* l = n->left.read(tx);
    AVLNode* nl = eraseRec(tx, l, k, erased);
    if (nl != l) n->left.write(tx, nl);
    return erased ? rebalance(tx, n) : n;
  }
  if (k > n->key) {
    AVLNode* r = n->right.read(tx);
    AVLNode* nr = eraseRec(tx, r, k, erased);
    if (nr != r) n->right.write(tx, nr);
    return erased ? rebalance(tx, n) : n;
  }
  // Found the node to delete.
  erased = true;
  AVLNode* l = n->left.read(tx);
  AVLNode* r = n->right.read(tx);
  tx.onCommit([this, n] { retireNode(n); });
  if (l == nullptr) return r;
  if (r == nullptr) return l;
  // Two children: the successor node replaces n (keys are immutable, so we
  // relink the successor node itself rather than copying its key).
  AVLNode* succ = nullptr;
  AVLNode* newRight = detachMin(tx, r, succ);
  succ->right.write(tx, newRight);
  succ->left.write(tx, l);
  return rebalance(tx, succ);
}

bool AVLTree::insertTx(stm::Tx& tx, Key k, Value v) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  bool inserted = false;
  AVLNode* r = root_.read(tx);
  AVLNode* nr = insertRec(tx, r, k, v, inserted);
  if (nr != r) root_.write(tx, nr);
  return inserted;
}

bool AVLTree::eraseTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  bool erased = false;
  AVLNode* r = root_.read(tx);
  AVLNode* nr = eraseRec(tx, r, k, erased);
  if (nr != r) root_.write(tx, nr);
  return erased;
}

bool AVLTree::containsTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  AVLNode* x = root_.read(tx);
  while (x != nullptr && x->key != k) {
    x = (k < x->key) ? x->left.read(tx) : x->right.read(tx);
  }
  return x != nullptr;
}

std::optional<Value> AVLTree::getTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  AVLNode* x = root_.read(tx);
  while (x != nullptr && x->key != k) {
    x = (k < x->key) ? x->left.read(tx) : x->right.read(tx);
  }
  if (x == nullptr) return std::nullopt;
  return x->value.read(tx);
}

bool AVLTree::insert(Key k, Value v) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r =
      stm::atomically(domain_, [&](stm::Tx& tx) { return insertTx(tx, k, v); });
  st.endOp();
  return r;
}

bool AVLTree::erase(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, [&](stm::Tx& tx) { return eraseTx(tx, k); });
  st.endOp();
  return r;
}

bool AVLTree::contains(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, readTxKind(),
                                 [&](stm::Tx& tx) { return containsTx(tx, k); });
  st.endOp();
  return r;
}

std::optional<Value> AVLTree::get(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const auto r = stm::atomically(domain_, readTxKind(),
                                 [&](stm::Tx& tx) { return getTx(tx, k); });
  st.endOp();
  return r;
}

bool AVLTree::move(Key from, Key to) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, [&](stm::Tx& tx) {
    if (containsTx(tx, to)) return false;
    const std::optional<Value> v = getTx(tx, from);
    if (!v) return false;
    eraseTx(tx, from);
    if (!insertTx(tx, to, *v)) tx.restart();  // never lose the erased key
    return true;
  });
  st.endOp();
  return r;
}

namespace {
std::size_t avlCountRange(stm::Tx& tx, AVLNode* n, Key lo, Key hi) {
  if (n == nullptr) return 0;
  std::size_t count = 0;
  if (lo < n->key) count += avlCountRange(tx, n->left.read(tx), lo, hi);
  if (lo <= n->key && n->key <= hi) ++count;
  if (hi > n->key) count += avlCountRange(tx, n->right.read(tx), lo, hi);
  return count;
}
}  // namespace

std::size_t AVLTree::countRangeTx(stm::Tx& tx, Key lo, Key hi) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  return avlCountRange(tx, root_.read(tx), lo, hi);
}

std::size_t AVLTree::countRange(Key lo, Key hi) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  // ReadOnly unconditionally — never elastic (countRange promises a
  // consistent snapshot; see SFTree::countRange).
  const auto r = stm::atomically(
      domain_, stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return countRangeTx(tx, lo, hi); });
  st.endOp();
  return r;
}

void AVLTree::retireNode(AVLNode* n) {
  std::lock_guard<std::mutex> lk(limboMu_);
  limbo_.retire(n, &AVLTree::deleteNode);
  if (++retireTick_ % 64 == 0) {
    limbo_.tryCollect(registry_);
    limbo_.openEpoch(registry_);
  }
}

std::size_t AVLTree::size() {
  std::size_t n = 0;
  std::stack<AVLNode*> stack;
  if (AVLNode* r = root_.loadRelaxed()) stack.push(r);
  while (!stack.empty()) {
    AVLNode* x = stack.top();
    stack.pop();
    ++n;
    if (AVLNode* l = x->left.loadRelaxed()) stack.push(l);
    if (AVLNode* r = x->right.loadRelaxed()) stack.push(r);
  }
  return n;
}

namespace {
int avlHeight(AVLNode* n) {
  if (n == nullptr) return 0;
  return 1 + std::max(avlHeight(n->left.loadRelaxed()),
                      avlHeight(n->right.loadRelaxed()));
}
void avlInorder(AVLNode* n, std::vector<Key>& out) {
  if (n == nullptr) return;
  avlInorder(n->left.loadRelaxed(), out);
  out.push_back(n->key);
  avlInorder(n->right.loadRelaxed(), out);
}
}  // namespace

int AVLTree::height() { return avlHeight(root_.loadRelaxed()); }

std::vector<Key> AVLTree::keysInOrder() {
  std::vector<Key> out;
  avlInorder(root_.loadRelaxed(), out);
  return out;
}

}  // namespace sftree::trees
