#include "trees/sftree.hpp"

#include "gc/tx_guard.hpp"
#include "obs/clock.hpp"
#include "obs/stats_bridge.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stack>

namespace sftree::trees {

namespace {

// Defensive liveness valve: the optimized find can in principle chase
// escape pointers through a churning region for a long time; force a retry
// (fresh snapshot, backoff) if a traversal runs away.
constexpr int kFindStepLimit = 1'000'000;

// Maintenance recursion bound (tree height); transiently unbalanced trees
// are at worst linear in size, which fits comfortably.
constexpr int kMaintenanceDepthLimit = 1 << 20;

}  // namespace

SFTree::SFTree(SFTreeConfig cfg)
    : cfg_(cfg),
      domain_(cfg.domain != nullptr ? *cfg.domain : stm::defaultDomain()) {
  root_ = arena_.create(kInfiniteKey, 0);
  // Updates publish violations only when someone will ever drain them: the
  // no-restructuring baseline must not accumulate queue entries.
  captureViolations_ =
      cfg_.targetedMaintenance && (cfg_.rotations || cfg_.removals);
  // Splaying needs both the queue (access ticks ride it) and rotations (the
  // promotions are rotations); anything less degrades to Off.
  splayEnabled_ = cfg_.splay != SplayPolicy::Off && cfg_.rotations &&
                  captureViolations_;
  splay_ = cfg_.splayParams();
  if (splay_.decayHalfLifeNs == 0) splay_.decayHalfLifeNs = 1;
  if (splay_.promoteDen == 0) splay_.promoteDen = 1;
  accessSampleMask_ = (std::uint32_t{1} << splay_.sampleShift) - 1;
  createdTick_ = obs::tick();
  pathBuf_.reserve(64);
  if (cfg_.startMaintenance && (cfg_.rotations || cfg_.removals)) {
    startMaintenance();
  }
}

SFTree::~SFTree() {
  stopMaintenance();
  // Free the reachable tree. Retired (unlinked) nodes are owned by the
  // limbo list, whose destructor frees them; reachable nodes form a proper
  // binary tree (only NotRemoved nodes are reachable from the root).
  std::stack<SFNode*> stack;
  stack.push(root_);
  while (!stack.empty()) {
    SFNode* n = stack.top();
    stack.pop();
    if (SFNode* l = n->left.loadRelaxed()) stack.push(l);
    if (SFNode* r = n->right.loadRelaxed()) stack.push(r);
    deleteNode(n);
  }
}

// --------------------------------------------------------------------------
// find — Algorithm 1 (portable): plain traversal, every child pointer is a
// transactional read, so any concurrent restructuring along the path is
// caught by validation.
// --------------------------------------------------------------------------
SFNode* SFTree::findPortable(stm::Tx& tx, Key k) const {
  SFNode* next = root_;
  SFNode* curr;
  for (;;) {
    curr = next;
    if (curr->key == k) break;
    next = (k < curr->key) ? curr->left.read(tx) : curr->right.read(tx);
    if (next == nullptr) break;
  }
  return curr;
}

// --------------------------------------------------------------------------
// find — Algorithm 2 (optimized): the traversal uses unit loads; only the
// final node's `removed` flag, its (null) child pointer, and the parent's
// link to it are read transactionally, pinning exactly the position the
// caller depends on. Traversals may walk across removed nodes: removal and
// copy-on-rotate leave escape pointers that always lead back into the tree
// (Lemmas 11-16).
// --------------------------------------------------------------------------
SFNode* SFTree::findOptimized(stm::Tx& tx, Key k, bool pin) const {
  SFNode* parent = root_;
  SFNode* curr = root_;
  SFNode* next = root_;
  int steps = 0;
  // Pins recorded while examining a position that is later abandoned are
  // demoted back to cut reads (see Tx::dropPinsAfter): only the returned
  // position's pins must survive to commit, and keeping abandoned ones
  // would make a search through a churning region quadratically expensive.
  const std::size_t pinMark = pin ? tx.pinMark() : 0;
  for (;;) {
    // Inner descent.
    for (;;) {
      if (++steps > kFindStepLimit) tx.restart();
      if (pin) tx.dropPinsAfter(pinMark);
      parent = curr;
      curr = next;
      if (curr->key == k) {
        const RemState rem =
            pin ? curr->removed.readPinned(tx) : curr->removed.read(tx);
        if (rem == RemState::NotRemoved) break;  // candidate found
        // The node with our key was physically removed. If it was removed
        // by a left rotation its replacement is in the right subtree
        // (paper line 39); in every other case the left pointer leads to a
        // node whose range still covers k (Lemma 16).
        next = (rem == RemState::RemovedByLeftRot) ? curr->right.uread(tx)
                                                   : curr->left.uread(tx);
        if (next == nullptr) {
          next = (rem == RemState::RemovedByLeftRot) ? curr->left.uread(tx)
                                                     : curr->right.uread(tx);
        }
        if (next == nullptr) tx.restart();  // cannot happen on a valid tree
        continue;
      }
      const bool goLeft = k < curr->key;
      next = goLeft ? curr->left.uread(tx) : curr->right.uread(tx);
      if (next != nullptr) continue;
      // Reached a null child. Pin it if the node is still in the tree.
      const RemState rem =
          pin ? curr->removed.readPinned(tx) : curr->removed.read(tx);
      if (rem == RemState::NotRemoved) {
        next = goLeft ? (pin ? curr->left.readPinned(tx) : curr->left.read(tx))
                      : (pin ? curr->right.readPinned(tx)
                             : curr->right.read(tx));
        if (next == nullptr) break;  // curr is the insertion point for k
        continue;                    // a child appeared meanwhile
      }
      // Removed node with a null child: escape through the other child,
      // whose range is at least as large as ours was (Lemma 16).
      next = goLeft ? curr->right.uread(tx) : curr->left.uread(tx);
      if (next == nullptr) tx.restart();  // cannot happen on a valid tree
    }
    // Validate the parent's link to the candidate with a transactional
    // read: this both confirms the position and makes any concurrent
    // rotation/removal at this node a detectable conflict.
    if (curr == parent) return curr;  // candidate is the root sentinel
    SFNode* tmp;
    if (curr->key < parent->key) {
      tmp = pin ? parent->left.readPinned(tx) : parent->left.read(tx);
    } else {
      tmp = pin ? parent->right.readPinned(tx) : parent->right.read(tx);
    }
    if (tmp == curr) return curr;
    // The link changed: re-examine the candidate starting from the parent.
    next = curr;
    curr = parent;
  }
}

SFNode* SFTree::find(stm::Tx& tx, Key k, bool pin) const {
  return cfg_.ops == OpsVariant::Portable ? findPortable(tx, k)
                                          : findOptimized(tx, k, pin);
}

// --------------------------------------------------------------------------
// Abstract operations
// --------------------------------------------------------------------------
bool SFTree::containsTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k);
  if (curr->key != k) return false;
  if (curr->deleted.read(tx)) return false;
  // Lookup hit: feed the splay heuristic (sampled; no-op when disabled).
  captureAccess(tx, k);
  return true;
}

std::optional<Value> SFTree::getTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k);
  if (curr->key != k) return std::nullopt;
  if (curr->deleted.read(tx)) return std::nullopt;
  captureAccess(tx, k);
  return curr->value.read(tx);
}

bool SFTree::insertTx(stm::Tx& tx, Key k, Value v) {
  assert(k < kInfiniteKey && "user keys must be < +inf sentinel");
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k, /*pin=*/true);
  if (curr->key == k) {
    if (curr->deleted.readPinned(tx)) {
      // Logically deleted: revive the node (abstraction-only update). The
      // position reads this revive depends on — find()'s pin of
      // curr->removed, and the deleted flag itself — are recorded with
      // pinned reads, so even under elastic mode no window cut can drop
      // them before the first write folds the window into the read set: a
      // concurrent rotation-copy or physical removal of curr stays a
      // detectable conflict all the way to commit (otherwise the revive
      // could commit onto an unlinked node and be lost).
      if (cfg_.ops == OpsVariant::Optimized &&
          curr->removed.readPinned(tx) != RemState::NotRemoved) {
        tx.restart();
      }
      curr->deleted.write(tx, false);
      curr->value.write(tx, v);
      updateTicks_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  // find() pinned the null child pointer, so a concurrent insert of the
  // same key is a write-write/read-write conflict here.
  SFNode* nn = arena_.create(k, v);
  tx.onAbortDelete(nn, &SFTree::deleteNode);
  if (k < curr->key) {
    curr->left.write(tx, nn);
  } else {
    curr->right.write(tx, nn);
  }
  updateTicks_.fetch_add(1, std::memory_order_relaxed);
  // The fresh leaf may unbalance its ancestors: hand the key to the
  // maintenance side once (and only once) this transaction commits.
  captureViolation(tx, k, ViolationKind::kInsert);
  return true;
}

bool SFTree::eraseTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k, /*pin=*/true);
  if (curr->key != k) return false;
  if (curr->deleted.readPinned(tx)) return false;
  // Same elastic-cut subtlety as the revive path in insertTx: the removal
  // flag is pinned into the permanent read set, so it is validated at
  // commit no matter how many traversal reads the elastic window cuts
  // in between.
  if (cfg_.ops == OpsVariant::Optimized &&
      curr->removed.readPinned(tx) != RemState::NotRemoved) {
    tx.restart();
  }
  // Logical deletion only: the structure is untouched (paper: "this
  // operation never modifies the tree structure"); the maintenance thread
  // unlinks the node later.
  curr->deleted.write(tx, true);
  updateTicks_.fetch_add(1, std::memory_order_relaxed);
  // A logically deleted node is a physical-removal candidate: publish it
  // to the maintenance side at commit.
  captureViolation(tx, k, ViolationKind::kErase);
  return true;
}

namespace {
std::size_t countRangeRec(stm::Tx& tx, SFNode* n, Key lo, Key hi) {
  if (n == nullptr) return 0;
  std::size_t count = 0;
  if (lo < n->key) {
    count += countRangeRec(tx, n->left.read(tx), lo, hi);
  }
  if (lo <= n->key && n->key <= hi && !n->deleted.read(tx)) ++count;
  if (hi > n->key) {
    count += countRangeRec(tx, n->right.read(tx), lo, hi);
  }
  return count;
}
}  // namespace

std::size_t SFTree::countRangeTx(stm::Tx& tx, Key lo, Key hi) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  // The sentinel's key is +inf, so the user range never includes it.
  return countRangeRec(tx, root_->left.read(tx), lo, hi);
}

std::size_t SFTree::countRange(Key lo, Key hi) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  // ReadOnly unconditionally — never elastic: countRange promises a
  // consistent snapshot of the whole range, and elastic cuts would let a
  // concurrent composed move be double-counted or missed. The RO mode's
  // per-read validation preserves full snapshot semantics.
  const auto r = stm::atomically(
      domain_, stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return countRangeTx(tx, lo, hi); });
  st.endOp();
  return r;
}

// --------------------------------------------------------------------------
// Bulk relocation (shard migration): extract = one in-order walk that
// logically deletes and collects matching keys; adopt = batch insert. Both
// compose into the caller's (cross-domain) transaction, so a batch moves
// atomically: no reader can see a migrating key in both trees or in
// neither.
// --------------------------------------------------------------------------
struct SFTree::ExtractCtx {
  std::size_t maxN;
  std::size_t examineLimit;
  std::size_t examined = 0;
  const std::function<bool(Key)>* pred;
  std::vector<ExtractedKV>* out;
  Key nextLo = 0;
  // Extraction mode (migration): collected keys are logically deleted and
  // published to maintenance. Scan mode (checkpoint streaming) collects
  // only — the walk writes nothing, so it can run zero-logging ReadOnly.
  bool mutate = true;
};

bool SFTree::extractWalk(stm::Tx& tx, SFNode* n, Key lo, ExtractCtx& c) {
  if (n == nullptr) return true;
  if (lo < n->key) {
    if (!extractWalk(tx, n->left.read(tx), lo, c)) return false;
  }
  if (n->key >= lo) {
    // Budget check sits on the key boundary so the resume cursor is exact:
    // every present key in [lo, nextLo) has been examined, nothing past it.
    if (c.out->size() >= c.maxN || c.examined >= c.examineLimit) {
      c.nextLo = n->key;
      return false;
    }
    ++c.examined;
    if ((*c.pred)(n->key) && !n->deleted.read(tx)) {
      c.out->push_back(ExtractedKV{n->key, n->value.read(tx)});
      if (c.mutate) {
        n->deleted.write(tx, true);
        // The logically deleted node is a physical-removal candidate for
        // this tree's maintenance, exactly as after eraseTx.
        captureViolation(tx, n->key, ViolationKind::kErase);
      }
    }
  }
  return extractWalk(tx, n->right.read(tx), lo, c);
}

bool SFTree::extractRangeTx(stm::Tx& tx, Key lo, std::size_t maxN,
                            const std::function<bool(Key)>& pred,
                            std::vector<ExtractedKV>& out, Key& nextLo) {
  assert(tx.kind() != stm::TxKind::Elastic &&
         "extractRangeTx requires a Normal transaction (no pinning here)");
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  out.clear();  // the enclosing transaction may retry this attempt
  ExtractCtx c;
  c.maxN = maxN;
  // Bound the read set even when pred rejects a long stretch of keys: a
  // stopped-early walk just resumes from nextLo in the next batch.
  c.examineLimit = std::max<std::size_t>(4 * maxN, 256);
  c.pred = &pred;
  c.out = &out;
  const bool complete = extractWalk(tx, root_->left.read(tx), lo, c);
  if (!out.empty()) {
    const auto m = static_cast<std::int64_t>(out.size());
    tx.onCommit([this, m] {
      sizeEstimate_.fetch_sub(m, std::memory_order_relaxed);
    });
    updateTicks_.fetch_add(out.size(), std::memory_order_relaxed);
  }
  if (!complete) nextLo = c.nextLo;
  return complete;
}

bool SFTree::scanRangeTx(stm::Tx& tx, Key lo, std::size_t maxN,
                         const std::function<bool(Key)>& pred,
                         std::vector<ExtractedKV>& out, Key& nextLo) {
  assert(tx.kind() != stm::TxKind::Elastic &&
         "scanRangeTx requires Normal/ReadOnly (no pinning here)");
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  out.clear();  // the enclosing transaction may retry this attempt
  ExtractCtx c;
  c.maxN = maxN;
  c.examineLimit = std::max<std::size_t>(4 * maxN, 256);
  c.pred = &pred;
  c.out = &out;
  c.mutate = false;
  const bool complete = extractWalk(tx, root_->left.read(tx), lo, c);
  if (!complete) nextLo = c.nextLo;
  return complete;
}

bool SFTree::reserveAbsentTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k, /*pin=*/true);
  if (curr->key == k) {
    if (!curr->deleted.readPinned(tx)) return false;  // present
    // Same elastic-cut discipline as eraseTx/the revive path: the removal
    // flag is pinned so a concurrent rotation-copy stays a conflict.
    if (cfg_.ops == OpsVariant::Optimized &&
        curr->removed.readPinned(tx) != RemState::NotRemoved) {
      tx.restart();
    }
    // Value-preserving write: locks the revive point against a concurrent
    // insert flipping the flag back.
    curr->deleted.write(tx, true);
    return true;
  }
  // Absent: find() pinned the null child k would link into; re-write it
  // with its current (null) value so a concurrent insert of k collides
  // write-write instead of committing after us.
  if (k < curr->key) {
    curr->left.write(tx, curr->left.readPinned(tx));
  } else {
    curr->right.write(tx, curr->right.readPinned(tx));
  }
  return true;
}

std::size_t SFTree::adoptRangeTx(stm::Tx& tx, const ExtractedKV* kvs,
                                 std::size_t n) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  std::size_t inserted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (insertTx(tx, kvs[i].key, kvs[i].value)) ++inserted;
  }
  if (inserted != 0) {
    const auto m = static_cast<std::int64_t>(inserted);
    tx.onCommit([this, m] {
      sizeEstimate_.fetch_add(m, std::memory_order_relaxed);
    });
  }
  return inserted;
}

// Elastic cuts are only safe for Algorithm 2's updates (see SFTreeConfig).
// ReadOnly is never an update kind: it would promote on the first write of
// every attempt.
stm::TxKind SFTree::updateTxKind() const {
  if (cfg_.ops == OpsVariant::Optimized && cfg_.txKind == stm::TxKind::Elastic) {
    return stm::TxKind::Elastic;
  }
  return stm::TxKind::Normal;
}

// Read-only operations run elastic when configured (hand-over-hand reads),
// zero-logging ReadOnly otherwise — a write in the body (impossible today)
// would transparently promote, so the hint is always safe.
stm::TxKind SFTree::readTxKind() const {
  if (cfg_.txKind == stm::TxKind::Elastic) return stm::TxKind::Elastic;
  return stm::TxKind::ReadOnly;
}

bool SFTree::insert(Key k, Value v) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(
      domain_, updateTxKind(), [&](stm::Tx& tx) { return insertTx(tx, k, v); });
  st.endOp();
  if (r) sizeEstimate_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

bool SFTree::erase(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(
      domain_, updateTxKind(), [&](stm::Tx& tx) { return eraseTx(tx, k); });
  st.endOp();
  if (r) sizeEstimate_.fetch_sub(1, std::memory_order_relaxed);
  return r;
}

bool SFTree::contains(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(
      domain_, readTxKind(), [&](stm::Tx& tx) { return containsTx(tx, k); });
  st.endOp();
  return r;
}

std::optional<Value> SFTree::get(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const auto r = stm::atomically(domain_, readTxKind(),
                                 [&](stm::Tx& tx) { return getTx(tx, k); });
  st.endOp();
  return r;
}

bool SFTree::move(Key from, Key to) {
  // Reusability (paper §5.4): compose erase + insert from the public
  // interface into one atomic, deadlock-free operation via flat nesting.
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, updateTxKind(), [&](stm::Tx& tx) {
    if (containsTx(tx, to)) return false;
    const std::optional<Value> v = getTx(tx, from);
    if (!v) return false;
    if (!eraseTx(tx, from)) {
      // Under elastic reads the getTx(from) above may have been cut from
      // the validation window; a concurrent erase of `from` can land in
      // between, making this erase find the key already deleted. Going on
      // to insert `to` anyway would create a key out of thin air (+1); a
      // restart re-reads `from` and returns false cleanly.
      tx.restart();
    }
    if (!insertTx(tx, to, *v)) {
      // Same cut, other side: a concurrent insert of `to` can slip past
      // the earlier contains(to). Retrying (which discards the erase)
      // keeps the move atomic instead of losing the key.
      tx.restart();
    }
    return true;
  });
  st.endOp();
  return r;
}

// --------------------------------------------------------------------------
// Structural transactions (maintenance thread only)
// --------------------------------------------------------------------------
SFTree::StructuralResult SFTree::rotateRight(stm::Tx& tx, SFNode* parent,
                                             bool leftChild) {
  if (cfg_.ops == OpsVariant::Optimized &&
      parent->removed.read(tx) != RemState::NotRemoved) {
    return {};
  }
  SFNode* n = leftChild ? parent->left.read(tx) : parent->right.read(tx);
  if (n == nullptr) return {};
  SFNode* l = n->left.read(tx);
  if (l == nullptr) return {};
  SFNode* lr = l->right.read(tx);

  if (cfg_.ops == OpsVariant::Portable) {
    // Classical in-place rotation (Figure 2(b)) inside one transaction.
    n->left.write(tx, lr);
    l->right.write(tx, n);
    // update-balance-values(): advisory, maintenance-private (a stale value
    // left by an aborted attempt is refreshed by the next traversal).
    n->leftH = l->rightH;
    n->localH = std::max(n->leftH, n->rightH) + 1;
    l->rightH = n->localH;
    l->localH = std::max(l->leftH, l->rightH) + 1;
  } else {
    // Copy-on-rotate (Figure 2(c)): n is unlinked and replaced by a fresh
    // copy n' placed under l, so a traversal preempted at n still has a
    // path to the subtree that held its target.
    SFNode* r = n->right.read(tx);
    SFNode* nn = arena_.create(n->key, n->value.read(tx));
    tx.onAbortDelete(nn, &SFTree::deleteNode);
    nn->deleted.storeRelaxed(n->deleted.read(tx));
    nn->left.storeRelaxed(lr);
    nn->right.storeRelaxed(r);
    nn->leftH = l->rightH;
    nn->rightH = n->rightH;
    nn->localH = std::max(nn->leftH, nn->rightH) + 1;
    // The copy inherits the original's heat: demotion must not double as a
    // heat reset, or splay promotions would erase the very signal that
    // protects the node from churn.
    nn->heat = n->heat;
    nn->heatEpoch = n->heatEpoch;
    l->right.write(tx, nn);
    n->removed.write(tx, RemState::Removed);
    l->rightH = nn->localH;
    l->localH = std::max(l->leftH, l->rightH) + 1;
  }
  if (leftChild) {
    parent->left.write(tx, l);
  } else {
    parent->right.write(tx, l);
  }
  return {true, cfg_.ops == OpsVariant::Optimized ? n : nullptr};
}

SFTree::StructuralResult SFTree::rotateLeft(stm::Tx& tx, SFNode* parent,
                                            bool leftChild) {
  if (cfg_.ops == OpsVariant::Optimized &&
      parent->removed.read(tx) != RemState::NotRemoved) {
    return {};
  }
  SFNode* n = leftChild ? parent->left.read(tx) : parent->right.read(tx);
  if (n == nullptr) return {};
  SFNode* r = n->right.read(tx);
  if (r == nullptr) return {};
  SFNode* rl = r->left.read(tx);

  if (cfg_.ops == OpsVariant::Portable) {
    n->right.write(tx, rl);
    r->left.write(tx, n);
    n->rightH = r->leftH;
    n->localH = std::max(n->leftH, n->rightH) + 1;
    r->leftH = n->localH;
    r->localH = std::max(r->leftH, r->rightH) + 1;
  } else {
    SFNode* l = n->left.read(tx);
    SFNode* nn = arena_.create(n->key, n->value.read(tx));
    tx.onAbortDelete(nn, &SFTree::deleteNode);
    nn->deleted.storeRelaxed(n->deleted.read(tx));
    nn->left.storeRelaxed(l);
    nn->right.storeRelaxed(rl);
    nn->leftH = n->leftH;
    nn->rightH = r->leftH;
    nn->localH = std::max(nn->leftH, nn->rightH) + 1;
    nn->heat = n->heat;
    nn->heatEpoch = n->heatEpoch;
    r->left.write(tx, nn);
    // A node removed by a *left* rotation is replaced by a copy living in
    // its right subtree; find() must know to go right on a key match.
    n->removed.write(tx, RemState::RemovedByLeftRot);
    r->leftH = nn->localH;
    r->localH = std::max(r->leftH, r->rightH) + 1;
  }
  if (leftChild) {
    parent->left.write(tx, r);
  } else {
    parent->right.write(tx, r);
  }
  return {true, cfg_.ops == OpsVariant::Optimized ? n : nullptr};
}

SFTree::StructuralResult SFTree::removePhysical(stm::Tx& tx, SFNode* parent,
                                                bool leftChild) {
  if (cfg_.ops == OpsVariant::Optimized &&
      parent->removed.read(tx) != RemState::NotRemoved) {
    return {};
  }
  SFNode* n = leftChild ? parent->left.read(tx) : parent->right.read(tx);
  if (n == nullptr) return {};
  if (!n->deleted.read(tx)) return {};
  SFNode* l = n->left.read(tx);
  SFNode* r = n->right.read(tx);
  if (l != nullptr && r != nullptr) {
    // Only nodes with at most one child are physically removed (paper:
    // removing such nodes is enough to keep the tree from growing).
    return {};
  }
  SFNode* child = (l != nullptr) ? l : r;
  if (leftChild) {
    parent->left.write(tx, child);
  } else {
    parent->right.write(tx, child);
  }
  if (cfg_.ops == OpsVariant::Optimized) {
    // Escape pointers: a traversal preempted on n climbs back to the
    // parent, which still covers n's key range (Lemma 15).
    n->left.write(tx, parent);
    n->right.write(tx, parent);
    n->removed.write(tx, RemState::Removed);
  }
  return {true, n};
}

bool SFTree::tryRotateRight(SFNode* parent, bool leftChild) {
  const StructuralResult res = stm::atomically(
      domain_, [&](stm::Tx& tx) { return rotateRight(tx, parent, leftChild); });
  if (res.unlinked != nullptr) retireNode(res.unlinked);
  return res.changed;
}

bool SFTree::tryRotateLeft(SFNode* parent, bool leftChild) {
  const StructuralResult res = stm::atomically(
      domain_, [&](stm::Tx& tx) { return rotateLeft(tx, parent, leftChild); });
  if (res.unlinked != nullptr) retireNode(res.unlinked);
  return res.changed;
}

bool SFTree::tryRemovePhysical(SFNode* parent, bool leftChild) {
  const StructuralResult res = stm::atomically(
      domain_, [&](stm::Tx& tx) { return removePhysical(tx, parent, leftChild); });
  if (res.unlinked != nullptr) retireNode(res.unlinked);
  return res.changed;
}

void SFTree::retireNode(SFNode* n) {
  limbo_.retire(n, &SFTree::deleteNode);
  std::lock_guard<std::mutex> lk(maintStatsMu_);
  ++maintStats_.nodesRetired;
}

void SFTree::captureViolation(stm::Tx& tx, Key k, ViolationKind kind) {
  if (!captureViolations_) return;
  // Runs when the (outermost, for composed operations) transaction commits;
  // dropped on abort. The hook captures only the key — entries must not
  // dangle into nodes the maintenance side may retire.
  tx.onCommit([this, k, kind] { violations_.publish(k, kind); });
}

void SFTree::captureAccess(stm::Tx& tx, Key k) {
  if (!splayEnabled_) return;
  // Per-thread 1-in-2^shift sampling, shared across trees: the counter costs
  // one TLS increment per hit, and only sampled hits pay the commit hook +
  // queue publish. The heat estimate is lossy by design, so approximate
  // per-tree rates under interleaved multi-tree traffic are fine.
  static thread_local std::uint32_t sampleCtr = 0;
  if ((++sampleCtr & accessSampleMask_) != 0) return;
  tx.onCommit([this, k] { violations_.publish(k, ViolationKind::kAccess); });
}

std::uint32_t SFTree::decayedHeat(const SFNode* n) const {
  // heatEpoch only moves forward and only the maintenance worker writes it,
  // so the delta is non-negative.
  const std::uint32_t delta = heatEpochNow_ - n->heatEpoch;
  if (delta == 0) return n->heat;
  return delta >= 32 ? 0 : (n->heat >> delta);
}

void SFTree::bumpHeat(SFNode* n, std::uint32_t ticks) {
  // Normalize to the current epoch, then saturate well below overflow so a
  // pathological burst cannot wrap the estimate.
  constexpr std::uint32_t kHeatCap = std::uint32_t{1} << 24;
  const std::uint64_t h =
      static_cast<std::uint64_t>(decayedHeat(n)) + ticks;
  n->heatEpoch = heatEpochNow_;
  n->heat = static_cast<std::uint32_t>(std::min<std::uint64_t>(h, kHeatCap));
}

// --------------------------------------------------------------------------
// Maintenance thread (paper §3.1/3.2/3.4): one background thread repeatedly
// performs a depth-first traversal that propagates balance estimates,
// rotates unbalanced nodes in node-local transactions, physically removes
// logically deleted nodes, and garbage-collects retired nodes after
// quiescence.
// --------------------------------------------------------------------------
void SFTree::startMaintenance() {
  if (maintenanceThread_.joinable()) return;
  stopFlag_.store(false, std::memory_order_release);
  maintenanceThread_ = std::thread([this] { maintenanceLoop(); });
}

void SFTree::stopMaintenance() {
  if (!maintenanceThread_.joinable()) return;
  stopFlag_.store(true, std::memory_order_release);
  maintenanceThread_.join();
}

void SFTree::maintenanceLoop() {
  while (!stopFlag_.load(std::memory_order_acquire)) {
    const bool didWork = runMaintenancePass(&stopFlag_);
    if (cfg_.interPassPause.count() > 0) {
      std::this_thread::sleep_for(cfg_.interPassPause);
    }
    if (!didWork && cfg_.idlePause.count() > 0) {
      std::this_thread::sleep_for(cfg_.idlePause);
    }
  }
}

bool SFTree::runMaintenancePass(const std::atomic<bool>* cancel) {
  bool fullSweep = !cfg_.targetedMaintenance;
  bool sweepDeferrable = false;
  if (!fullSweep) {
    // Periodic fallback sweep: the safety net for anything the queue could
    // not carry — drain/update races absorbed by the dedup handshake,
    // deleted two-child nodes that only became removable after their
    // subtree emptied, dropped captures on overflow. The *periodic* sweep
    // is deferrable: a drain that carried only kAccess splay traffic left
    // no structural debt for the sweep to find (maintainOnce decides). An
    // overflow sweep is not — dropped captures are exactly the missed work
    // only a sweep recovers.
    ++passesSinceSweep_;
    if (cfg_.fullSweepPeriod > 0 && passesSinceSweep_ >= cfg_.fullSweepPeriod) {
      fullSweep = true;
      sweepDeferrable = true;
    }
    if (violations_.consumeOverflow()) {
      fullSweep = true;
      sweepDeferrable = false;
    }
  }
  return maintainOnce(cancel, fullSweep, sweepDeferrable);
}

bool SFTree::maintainOnce(const std::atomic<bool>* cancel, bool fullSweep,
                          bool sweepDeferrable) {
  const std::uint64_t passStart = obs::tick();
  if (splayEnabled_) {
    // One decay-epoch refresh and one fresh rotation budget per pass: every
    // heat comparison inside the pass sees a consistent epoch, and the
    // budget caps the pass's promotion latency no matter how hot the queue.
    heatEpochNow_ = static_cast<std::uint32_t>(
        obs::ticksToNs(passStart - createdTick_) / splay_.decayHalfLifeNs);
    splayBudgetLeft_ = splay_.rotationBudget;
    splayBudgetHit_ = false;
  }
  limbo_.openEpoch(registry_);
  bool didWork = false;
  bool sawStructural = false;
  bool sweepDeferred = false;
  if (cfg_.targetedMaintenance) {
    if (drainViolations(cancel, sawStructural)) didWork = true;
  }
  if (fullSweep && sweepDeferrable && !sawStructural &&
      cfg_.fullSweepPeriod > 0 &&
      passesSinceSweep_ < 4 * cfg_.fullSweepPeriod) {
    // Splay-aware backoff: this period's drain was pure kAccess traffic
    // (or empty) — structurally clean, nothing for the safety net to
    // recover — so skip the O(n) DFS. passesSinceSweep_ keeps climbing, so
    // the period re-fires next pass and the 4x cap bounds how long a
    // dropped-entry race can hide (quiesceNow still always sweeps).
    fullSweep = false;
    sweepDeferred = true;
  }
  if (fullSweep) {
    SFNode* top = root_->left.loadAcquire();
    maintainSubtree(root_, top, /*leftChild=*/true, didWork, 0, cancel);
    passesSinceSweep_ = 0;
  }
  limbo_.tryCollect(registry_);
  {
    const std::uint64_t passNs = obs::ticksToNs(obs::tick() - passStart);
    if (obs::traceEnabled()) {
      obs::trace(obs::TraceKind::kMaintPass,
                 reinterpret_cast<std::uint64_t>(this), passNs, 0,
                 fullSweep ? 1 : 0);
    }
    std::lock_guard<std::mutex> lk(maintStatsMu_);
    maintStats_.passNs.record(passNs);
    ++maintStats_.traversals;
    if (fullSweep) ++maintStats_.fullSweeps;
    if (splayBudgetHit_) {
      ++maintStats_.splayBudgetStops;
      splayBudgetHit_ = false;
    }
    maintStats_.nodesFreed = limbo_.freedTotal();
    if (sweepDeferred) ++maintStats_.sweepsDeferred;
    // passVisited_ is worker-private; fold it into the guarded stats once
    // per pass so visits cost no synchronization per node.
    maintStats_.nodesVisited += passVisited_;
    passVisited_ = 0;
    maintStats_.sharedPrefixSkips += passPrefixSkips_;
    passPrefixSkips_ = 0;
  }
  return didWork;
}

// --------------------------------------------------------------------------
// Targeted repair: drain the mutator-fed violation queue and fix only the
// affected root-paths. All plain (non-transactional) loads below are safe
// because the worker running the pass is the only structural mutator of the
// tree (the runMaintenancePass contract): concurrent abstract operations
// only link fresh leaves (published with release stores) and flip flags.
// --------------------------------------------------------------------------
bool SFTree::drainViolations(const std::atomic<bool>* cancel,
                             bool& sawStructural) {
  bool didWork = false;
  // Collect, then sort by key, then repair: key-sorted neighbors share the
  // longest possible root-path prefixes, so each repair can resume the
  // previous entry's recorded walk instead of re-descending from the root
  // (sharedPrefixSkips counts the avoided steps). The dedup claims were
  // already released by the drain, so a concurrent update to a collected
  // key re-enqueues normally and is simply repaired again next pass.
  drainBuf_.clear();
  violations_.drain([&](Key k, ViolationKind kind, std::uint32_t weight) {
    drainBuf_.push_back(DrainEntry{k, weight, kind});
    return cancel == nullptr || !cancel->load(std::memory_order_relaxed);
  });
  std::sort(drainBuf_.begin(), drainBuf_.end(),
            [](const DrainEntry& a, const DrainEntry& b) {
              return a.key < b.key;
            });
  bool reusePath = false;
  for (std::size_t i = 0; i < drainBuf_.size(); ++i) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      // Cancelled mid-batch: hand the unprocessed tail back to the queue so
      // the next pass (or quiesceNow) repairs it. An access entry's
      // absorbed-tick weight is dropped by the round-trip — heat is a lossy
      // estimate by contract.
      for (std::size_t j = i; j < drainBuf_.size(); ++j) {
        violations_.publish(drainBuf_[j].key, drainBuf_[j].kind);
      }
      break;
    }
    const DrainEntry& e = drainBuf_[i];
    if (e.kind != ViolationKind::kAccess) sawStructural = true;
    bool entryWork = false;
    processViolation(e.key, e.kind, e.weight, entryWork, reusePath);
    didWork |= entryWork;
    // A repair that did structural work (rotations, removals, promotions)
    // may have retired nodes recorded in pathBuf_; only then is the
    // recorded path unusable for the next entry.
    reusePath = !entryWork;
  }
  return didWork;
}

void SFTree::processViolation(Key k, ViolationKind kind, std::uint32_t ticks,
                              bool& didWork, bool reusePath) {
  // Root-path walk to k's position, recording the path. The walk can only
  // meet reachable (never removed) nodes; nodes this pass itself retires
  // stay readable until a later pass's collection epoch.
  SFNode* parent = root_;
  SFNode* node = root_->left.loadAcquire();
  bool leftChild = true;
  bool foundViaPrefix = false;
  if (reusePath && !pathBuf_.empty() && pathBuf_.front().node == node) {
    // Follow the previous entry's recorded path while it matches k's search
    // path. Safe: the previous repair did no structural work (drain
    // contract), and concurrent mutators only link fresh leaves below null
    // children, so every recorded interior node is still reachable at the
    // recorded position.
    std::size_t keep = 0;
    for (;;) {
      SFNode* n = pathBuf_[keep].node;
      if (n->key == k) {
        // k's node is itself on the recorded path: the prefix above it is
        // the whole ancestor chain.
        parent = pathBuf_[keep].parent;
        node = n;
        leftChild = pathBuf_[keep].leftChild;
        pathBuf_.resize(keep);
        passPrefixSkips_ += keep;
        foundViaPrefix = true;
        break;
      }
      const bool dir = k < n->key;
      if (keep + 1 < pathBuf_.size() && pathBuf_[keep + 1].leftChild == dir) {
        ++keep;
        continue;
      }
      // Diverged (or the recorded path ended): resume the live walk from
      // n's dir child with the shared prefix kept as recorded ancestors.
      parent = n;
      leftChild = dir;
      node = dir ? n->left.loadAcquire() : n->right.loadAcquire();
      pathBuf_.resize(keep + 1);
      passPrefixSkips_ += keep + 1;
      break;
    }
  } else {
    pathBuf_.clear();
  }
  if (!foundViaPrefix) {
    int steps = static_cast<int>(pathBuf_.size());
    while (node != nullptr && node->key != k) {
      ++passVisited_;
      pathBuf_.push_back(PathStep{parent, node, leftChild});
      parent = node;
      leftChild = k < node->key;
      node = leftChild ? node->left.loadAcquire() : node->right.loadAcquire();
      if (++steps > kMaintenanceDepthLimit) return;  // defensive
    }
  }

  if (kind == ViolationKind::kAccess) {
    // Heat fold + bounded promotion. A stale tick (key physically removed
    // or logically deleted since the sampled lookup) is simply dropped —
    // the estimate is lossy by contract, and nothing structural is owed.
    {
      std::lock_guard<std::mutex> lk(maintStatsMu_);
      ++maintStats_.accessEntriesDrained;
      if (node != nullptr) {
        maintStats_.accessTicksConsumed += ticks;
        maintStats_.accessDepth.record(pathBuf_.size() + 1);
      }
    }
    if (node == nullptr) return;
    ++passVisited_;
    if (node->deleted.loadAcquire()) return;
    bumpHeat(node, ticks);
    splayPromote(parent, node, leftChild, didWork);
    // Promotions changed subtree shapes under the remaining ancestors:
    // refresh their estimates bottom-up (breaks immediately when nothing
    // was promoted).
    for (auto it = pathBuf_.rbegin(); it != pathBuf_.rend(); ++it) {
      ++passVisited_;
      if (!rebalanceAt(it->parent, it->node, it->leftChild, didWork)) break;
    }
    return;
  }

  if (kind == ViolationKind::kErase) {
    // Pure-removal repair: probe the unlink, and only climb when something
    // was actually removed — a refused removal (two children, flag cleared
    // by a revive, node already gone) left every height untouched, so the
    // bottom-up walk would terminate at its first level anyway.
    if (node == nullptr) return;
    ++passVisited_;
    bool removedAny = false;
    while (tryRemoveAt(parent, node, leftChild, didWork)) {
      removedAny = true;
    }
    if (!removedAny) return;
    if (node != nullptr) rebalanceAt(parent, node, leftChild, didWork);
  } else {
    // kInsert: the fresh leaf cannot itself need removal (any later erase
    // queued its own kErase entry), so go straight to the rebalance.
    if (node != nullptr) {
      ++passVisited_;
      rebalanceAt(parent, node, leftChild, didWork);
    }
  }

  // Bottom-up along the recorded root-path: refresh the balance estimates
  // and rotate where the AVL bound is violated. A rotation at a deeper
  // position only replaces that position's subtree root, so the recorded
  // ancestors stay valid; each step re-reads its children's estimates. The
  // walk stops as soon as a level neither removed nor changed height nor
  // rotated (the classic AVL fixup termination): above that point the
  // ancestors' inputs are exactly what they already were, so the remaining
  // climb would be pure rediscovery — the cost this queue exists to avoid.
  for (auto it = pathBuf_.rbegin(); it != pathBuf_.rend(); ++it) {
    ++passVisited_;
    bool levelChanged = false;
    while (tryRemoveAt(it->parent, it->node, it->leftChild, didWork)) {
      levelChanged = true;
    }
    if (it->node != nullptr) {
      levelChanged |= rebalanceAt(it->parent, it->node, it->leftChild,
                                  didWork);
    }
    if (!levelChanged) break;
  }
}

// --------------------------------------------------------------------------
// Semantic splaying (docs/splaying.md): rotate a hot node toward the root in
// the same node-local maintenance transactions the rebalancer uses, so the
// promotion work — like all restructuring in this tree — stays off the
// abort-prone application path. Each zig is one rotation at the *parent's*
// position that lifts `node` over its parent (our rotation primitives lift
// the named child intact and demote-copy the parent, so `node` survives
// every step). Aligned double-links additionally take the classic zig-zig
// shortcut: lift the parent over the grandparent first, which straightens
// the path so the follow-up zig leaves the subtree better balanced than two
// independent single rotations would.
// --------------------------------------------------------------------------
void SFTree::splayPromote(SFNode*& parent, SFNode*& node, bool& leftChild,
                          bool& didWork) {
  if (!splayEnabled_) return;
  bool zigzigArmed = false;  // previous iteration lifted our parent (half a
                             // zig-zig); the next zig completes the pair
  while (pathBuf_.size() > static_cast<std::size_t>(splay_.minDepth)) {
    const std::uint64_t nh = decayedHeat(node);
    if (nh < splay_.minHeat) break;  // hysteresis floor
    PathStep& par = pathBuf_.back();
    // Dominance margin: only promote past a parent the node is num/den
    // hotter than, so two comparably hot keys do not thrash one position.
    if (nh * splay_.promoteDen <=
        static_cast<std::uint64_t>(decayedHeat(par.node)) * splay_.promoteNum) {
      break;
    }
    if (splayBudgetLeft_ == 0) {
      splayBudgetHit_ = true;
      break;
    }
    // Zig-zig head start: when the two links are aligned and the node also
    // dominates its grandparent, rotate the grandparent first.
    if (!zigzigArmed && splayBudgetLeft_ >= 2 &&
        pathBuf_.size() > static_cast<std::size_t>(splay_.minDepth) + 1 &&
        par.leftChild == leftChild) {
      PathStep& gp = pathBuf_[pathBuf_.size() - 2];
      if (nh * splay_.promoteDen >
          static_cast<std::uint64_t>(decayedHeat(gp.node)) *
              splay_.promoteNum) {
        const bool ok = leftChild ? tryRotateRight(gp.parent, gp.leftChild)
                                  : tryRotateLeft(gp.parent, gp.leftChild);
        if (!ok) {
          std::lock_guard<std::mutex> lk(maintStatsMu_);
          ++maintStats_.failedStructuralOps;
          break;
        }
        didWork = true;
        --splayBudgetLeft_;
        // The parent now owns the grandparent's position; `node` is still
        // its `leftChild`-side child. Rewrite the tail of the path to match
        // and let the generic zig below finish the pair.
        const PathStep lifted{gp.parent, par.node, gp.leftChild};
        pathBuf_.pop_back();
        pathBuf_.back() = lifted;
        {
          std::lock_guard<std::mutex> lk(maintStatsMu_);
          ++maintStats_.rotations;
          ++maintStats_.splaySteps;
        }
        zigzigArmed = true;
        continue;
      }
    }
    // Zig: lift `node` over its parent at the parent's position.
    const PathStep ps = par;
    const bool ok = leftChild ? tryRotateRight(ps.parent, ps.leftChild)
                              : tryRotateLeft(ps.parent, ps.leftChild);
    if (!ok) {
      std::lock_guard<std::mutex> lk(maintStatsMu_);
      ++maintStats_.failedStructuralOps;
      break;
    }
    didWork = true;
    --splayBudgetLeft_;
    pathBuf_.pop_back();
    parent = ps.parent;
    leftChild = ps.leftChild;
    {
      std::lock_guard<std::mutex> lk(maintStatsMu_);
      ++maintStats_.splaySteps;
      ++maintStats_.rotations;
      if (zigzigArmed) ++maintStats_.splayZigZigs;
    }
    if (obs::traceEnabled()) {
      obs::trace(obs::TraceKind::kSplayStep,
                 static_cast<std::uint64_t>(node->key),
                 static_cast<std::uint64_t>(pathBuf_.size() + 1), 0,
                 zigzigArmed ? 1 : 0);
    }
    zigzigArmed = false;
  }
}

bool SFTree::tryRemoveAt(SFNode* parent, SFNode*& node, bool leftChild,
                         bool& didWork) {
  if (!cfg_.removals || node == nullptr) return false;
  if (!node->deleted.loadAcquire()) return false;
  if (node->left.loadAcquire() != nullptr &&
      node->right.loadAcquire() != nullptr) {
    // Only nodes with at most one child are physically removed; a deleted
    // two-child node becomes removable once one side empties (rediscovered
    // by the fallback sweep).
    return false;
  }
  if (tryRemovePhysical(parent, leftChild)) {
    didWork = true;
    {
      std::lock_guard<std::mutex> lk(maintStatsMu_);
      ++maintStats_.removals;
    }
    // Continue with whatever took the node's place.
    node = leftChild ? parent->left.loadAcquire() : parent->right.loadAcquire();
    return true;
  }
  std::lock_guard<std::mutex> lk(maintStatsMu_);
  ++maintStats_.failedStructuralOps;
  return false;
}

bool SFTree::rebalanceAt(SFNode* parent, SFNode* node, bool leftChild,
                         bool& didWork) {
  // Refresh this node's balance estimates from its children's stored ones
  // (paper §3.1, "propagation"; the estimates are maintenance-private and
  // tolerate staleness — off-path subtrees carry their own queue entries).
  SFNode* l = node->left.loadAcquire();
  SFNode* r = node->right.loadAcquire();
  const int lh = l != nullptr ? l->localH : 0;
  const int rh = r != nullptr ? r->localH : 0;
  const bool heightChanged =
      node->leftH != lh || node->rightH != rh ||
      node->localH != std::max(lh, rh) + 1;
  node->leftH = lh;
  node->rightH = rh;
  node->localH = std::max(lh, rh) + 1;

  if (!cfg_.rotations) return heightChanged;
  // Hot-protection slack (docs/splaying.md): the demoting rotation below
  // would push a splay-promoted node back down, so while a node is hot its
  // AVL bound is relaxed by `slack` levels — beyond that, balance wins
  // (lookups of everything routed through this subtree pay the skew).
  // Applies to sweeps too: the fallback sweep must not undo what the
  // targeted pass just promoted.
  if (splayEnabled_) {
    const int imb = lh > rh ? lh - rh : rh - lh;
    if (imb > 1 && imb <= 1 + splay_.slack &&
        decayedHeat(node) >= splay_.minHeat) {
      std::lock_guard<std::mutex> lk(maintStatsMu_);
      ++maintStats_.rebalanceSkippedHot;
      return heightChanged;
    }
  }
  if (lh - rh > 1) {
    // Left-heavy. If the left child leans right, first rotate it left so a
    // single right rotation at `node` balances (two node-local
    // transactions, as in the paper's distributed rotation).
    SFNode* child = node->left.loadAcquire();
    if (child != nullptr && child->rightH > child->leftH) {
      if (tryRotateLeft(node, /*leftChild=*/true)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      }
      child = node->left.loadAcquire();
    }
    // Re-check after the inner rotation: rotating a node the inner step
    // already balanced would tilt it the other way and oscillate forever.
    const int freshLh = child != nullptr ? child->localH : 0;
    if (freshLh - rh > 1) {
      if (tryRotateRight(parent, leftChild)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      } else {
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.failedStructuralOps;
      }
    }
    // `node` may have been retired by the rotation: the caller re-reads the
    // parent's link (or lets the next pass refresh the estimates).
    return true;
  }
  if (rh - lh > 1) {
    SFNode* child = node->right.loadAcquire();
    if (child != nullptr && child->leftH > child->rightH) {
      if (tryRotateRight(node, /*leftChild=*/false)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      }
      child = node->right.loadAcquire();
    }
    const int freshRh = child != nullptr ? child->localH : 0;
    if (freshRh - lh > 1) {
      if (tryRotateLeft(parent, leftChild)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      } else {
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.failedStructuralOps;
      }
    }
    return true;
  }
  return heightChanged;
}

void SFTree::maintainSubtree(SFNode* parent, SFNode* node, bool leftChild,
                             bool& didWork, int depth,
                             const std::atomic<bool>* cancel) {
  if (node == nullptr) return;
  if (depth > kMaintenanceDepthLimit) return;
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
  ++passVisited_;

  // Physical removal first; continue with whatever took the node's place.
  while (tryRemoveAt(parent, node, leftChild, didWork)) {
    if (node != nullptr) ++passVisited_;
  }
  if (node == nullptr) return;

  // Depth-first recursion, then propagate + rotate on the way up.
  maintainSubtree(node, node->left.loadAcquire(), /*leftChild=*/true, didWork,
                  depth + 1, cancel);
  maintainSubtree(node, node->right.loadAcquire(), /*leftChild=*/false,
                  didWork, depth + 1, cancel);
  rebalanceAt(parent, node, leftChild, didWork);
}

int SFTree::quiesceNow(int maxPasses) {
  assert(!maintenanceThread_.joinable() &&
         "stop the maintenance thread before quiescing manually");
  for (int pass = 1; pass <= maxPasses; ++pass) {
    // Drain the queue first; once it is empty every pass includes a full
    // sweep, and a clean sweep over an empty queue is the fixpoint.
    const bool sweep =
        !cfg_.targetedMaintenance || violations_.depth() == 0;
    violations_.consumeOverflow();  // sweeps below cover any dropped entries
    const bool didWork = maintainOnce(nullptr, sweep);
    if (!didWork && sweep && violations_.depth() == 0) return pass;
  }
  return maxPasses;
}

MaintenanceStats SFTree::maintenanceStats() const {
  std::lock_guard<std::mutex> lk(maintStatsMu_);
  MaintenanceStats out = maintStats_;
  out.queue = violations_.stats();
  return out;
}

obs::MetricsRegistry::Registration SFTree::registerMetrics(
    obs::MetricsRegistry& reg, std::string prefix) {
  return reg.add(std::move(prefix), [this](obs::MetricSink& out) {
    obs::emitMaintenanceStats(out, "maintenance", maintenanceStats());
    out.gauge("size_estimate", static_cast<double>(sizeEstimate()));
    out.counter("update_ticks", updateTicks());
    out.gauge("violation_queue_depth",
              static_cast<double>(violationQueueDepth()));
    out.gauge("limbo_pending", static_cast<double>(limboPending()));
    obs::emitArenaStats(out, "arena", arenaForStats());
  });
}

// --------------------------------------------------------------------------
// Quiesced introspection
// --------------------------------------------------------------------------
std::size_t SFTree::abstractSize() {
  std::size_t count = 0;
  std::stack<SFNode*> stack;
  if (SFNode* top = root_->left.loadAcquire()) stack.push(top);
  while (!stack.empty()) {
    SFNode* n = stack.top();
    stack.pop();
    if (!n->deleted.loadAcquire()) ++count;
    if (SFNode* l = n->left.loadAcquire()) stack.push(l);
    if (SFNode* r = n->right.loadAcquire()) stack.push(r);
  }
  return count;
}

std::size_t SFTree::structuralSize() {
  std::size_t count = 0;
  std::stack<SFNode*> stack;
  if (SFNode* top = root_->left.loadAcquire()) stack.push(top);
  while (!stack.empty()) {
    SFNode* n = stack.top();
    stack.pop();
    ++count;
    if (SFNode* l = n->left.loadAcquire()) stack.push(l);
    if (SFNode* r = n->right.loadAcquire()) stack.push(r);
  }
  return count;
}

namespace {
int subtreeHeight(SFNode* n) {
  if (n == nullptr) return 0;
  return 1 + std::max(subtreeHeight(n->left.loadAcquire()),
                      subtreeHeight(n->right.loadAcquire()));
}

void inorder(SFNode* n, std::vector<Key>& out) {
  if (n == nullptr) return;
  inorder(n->left.loadAcquire(), out);
  if (!n->deleted.loadAcquire()) out.push_back(n->key);
  inorder(n->right.loadAcquire(), out);
}
}  // namespace

int SFTree::height() { return subtreeHeight(root_->left.loadAcquire()); }

std::vector<Key> SFTree::keysInOrder() {
  std::vector<Key> out;
  inorder(root_->left.loadAcquire(), out);
  return out;
}

}  // namespace sftree::trees
