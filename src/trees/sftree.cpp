#include "trees/sftree.hpp"

#include "gc/tx_guard.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stack>

namespace sftree::trees {

namespace {

// Defensive liveness valve: the optimized find can in principle chase
// escape pointers through a churning region for a long time; force a retry
// (fresh snapshot, backoff) if a traversal runs away.
constexpr int kFindStepLimit = 1'000'000;

// Maintenance recursion bound (tree height); transiently unbalanced trees
// are at worst linear in size, which fits comfortably.
constexpr int kMaintenanceDepthLimit = 1 << 20;

}  // namespace

SFTree::SFTree(SFTreeConfig cfg)
    : cfg_(cfg),
      domain_(cfg.domain != nullptr ? *cfg.domain : stm::defaultDomain()) {
  root_ = arena_.create(kInfiniteKey, 0);
  if (cfg_.startMaintenance && (cfg_.rotations || cfg_.removals)) {
    startMaintenance();
  }
}

SFTree::~SFTree() {
  stopMaintenance();
  // Free the reachable tree. Retired (unlinked) nodes are owned by the
  // limbo list, whose destructor frees them; reachable nodes form a proper
  // binary tree (only NotRemoved nodes are reachable from the root).
  std::stack<SFNode*> stack;
  stack.push(root_);
  while (!stack.empty()) {
    SFNode* n = stack.top();
    stack.pop();
    if (SFNode* l = n->left.loadRelaxed()) stack.push(l);
    if (SFNode* r = n->right.loadRelaxed()) stack.push(r);
    deleteNode(n);
  }
}

// --------------------------------------------------------------------------
// find — Algorithm 1 (portable): plain traversal, every child pointer is a
// transactional read, so any concurrent restructuring along the path is
// caught by validation.
// --------------------------------------------------------------------------
SFNode* SFTree::findPortable(stm::Tx& tx, Key k) const {
  SFNode* next = root_;
  SFNode* curr;
  for (;;) {
    curr = next;
    if (curr->key == k) break;
    next = (k < curr->key) ? curr->left.read(tx) : curr->right.read(tx);
    if (next == nullptr) break;
  }
  return curr;
}

// --------------------------------------------------------------------------
// find — Algorithm 2 (optimized): the traversal uses unit loads; only the
// final node's `removed` flag, its (null) child pointer, and the parent's
// link to it are read transactionally, pinning exactly the position the
// caller depends on. Traversals may walk across removed nodes: removal and
// copy-on-rotate leave escape pointers that always lead back into the tree
// (Lemmas 11-16).
// --------------------------------------------------------------------------
SFNode* SFTree::findOptimized(stm::Tx& tx, Key k) const {
  SFNode* parent = root_;
  SFNode* curr = root_;
  SFNode* next = root_;
  int steps = 0;
  for (;;) {
    // Inner descent.
    for (;;) {
      if (++steps > kFindStepLimit) tx.restart();
      parent = curr;
      curr = next;
      if (curr->key == k) {
        const RemState rem = curr->removed.read(tx);
        if (rem == RemState::NotRemoved) break;  // candidate found
        // The node with our key was physically removed. If it was removed
        // by a left rotation its replacement is in the right subtree
        // (paper line 39); in every other case the left pointer leads to a
        // node whose range still covers k (Lemma 16).
        next = (rem == RemState::RemovedByLeftRot) ? curr->right.uread(tx)
                                                   : curr->left.uread(tx);
        if (next == nullptr) {
          next = (rem == RemState::RemovedByLeftRot) ? curr->left.uread(tx)
                                                     : curr->right.uread(tx);
        }
        if (next == nullptr) tx.restart();  // cannot happen on a valid tree
        continue;
      }
      const bool goLeft = k < curr->key;
      next = goLeft ? curr->left.uread(tx) : curr->right.uread(tx);
      if (next != nullptr) continue;
      // Reached a null child. Pin it if the node is still in the tree.
      const RemState rem = curr->removed.read(tx);
      if (rem == RemState::NotRemoved) {
        next = goLeft ? curr->left.read(tx) : curr->right.read(tx);
        if (next == nullptr) break;  // curr is the insertion point for k
        continue;                    // a child appeared meanwhile
      }
      // Removed node with a null child: escape through the other child,
      // whose range is at least as large as ours was (Lemma 16).
      next = goLeft ? curr->right.uread(tx) : curr->left.uread(tx);
      if (next == nullptr) tx.restart();  // cannot happen on a valid tree
    }
    // Validate the parent's link to the candidate with a transactional
    // read: this both confirms the position and makes any concurrent
    // rotation/removal at this node a detectable conflict.
    if (curr == parent) return curr;  // candidate is the root sentinel
    SFNode* tmp = (curr->key < parent->key) ? parent->left.read(tx)
                                            : parent->right.read(tx);
    if (tmp == curr) return curr;
    // The link changed: re-examine the candidate starting from the parent.
    next = curr;
    curr = parent;
  }
}

SFNode* SFTree::find(stm::Tx& tx, Key k) const {
  return cfg_.ops == OpsVariant::Portable ? findPortable(tx, k)
                                          : findOptimized(tx, k);
}

// --------------------------------------------------------------------------
// Abstract operations
// --------------------------------------------------------------------------
bool SFTree::containsTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k);
  if (curr->key != k) return false;
  return !curr->deleted.read(tx);
}

std::optional<Value> SFTree::getTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k);
  if (curr->key != k) return std::nullopt;
  if (curr->deleted.read(tx)) return std::nullopt;
  return curr->value.read(tx);
}

bool SFTree::insertTx(stm::Tx& tx, Key k, Value v) {
  assert(k < kInfiniteKey && "user keys must be < +inf sentinel");
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k);
  if (curr->key == k) {
    if (curr->deleted.read(tx)) {
      // Logically deleted: revive the node (abstraction-only update).
      // Elastic mode cuts all but the most recent reads, so find()'s pin of
      // curr->removed may have slid out of the window by now; re-pin it
      // directly before the first write (which folds the window into the
      // read set) so a concurrent rotation-copy or physical removal of
      // curr is a detectable conflict — otherwise the revive could commit
      // onto an unlinked node and be lost.
      if (cfg_.ops == OpsVariant::Optimized &&
          curr->removed.read(tx) != RemState::NotRemoved) {
        tx.restart();
      }
      curr->deleted.write(tx, false);
      curr->value.write(tx, v);
      updateTicks_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  // find() transactionally read the null child pointer, so a concurrent
  // insert of the same key is a write-write/read-write conflict here.
  SFNode* nn = arena_.create(k, v);
  tx.onAbortDelete(nn, &SFTree::deleteNode);
  if (k < curr->key) {
    curr->left.write(tx, nn);
  } else {
    curr->right.write(tx, nn);
  }
  updateTicks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SFTree::eraseTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  SFNode* curr = find(tx, k);
  if (curr->key != k) return false;
  if (curr->deleted.read(tx)) return false;
  // Same elastic-cut subtlety as the revive path in insertTx: re-pin the
  // removal flag right before the write so the window still holds it when
  // it is folded into the read set.
  if (cfg_.ops == OpsVariant::Optimized &&
      curr->removed.read(tx) != RemState::NotRemoved) {
    tx.restart();
  }
  // Logical deletion only: the structure is untouched (paper: "this
  // operation never modifies the tree structure"); the maintenance thread
  // unlinks the node later.
  curr->deleted.write(tx, true);
  updateTicks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

namespace {
std::size_t countRangeRec(stm::Tx& tx, SFNode* n, Key lo, Key hi) {
  if (n == nullptr) return 0;
  std::size_t count = 0;
  if (lo < n->key) {
    count += countRangeRec(tx, n->left.read(tx), lo, hi);
  }
  if (lo <= n->key && n->key <= hi && !n->deleted.read(tx)) ++count;
  if (hi > n->key) {
    count += countRangeRec(tx, n->right.read(tx), lo, hi);
  }
  return count;
}
}  // namespace

std::size_t SFTree::countRangeTx(stm::Tx& tx, Key lo, Key hi) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  // The sentinel's key is +inf, so the user range never includes it.
  return countRangeRec(tx, root_->left.read(tx), lo, hi);
}

std::size_t SFTree::countRange(Key lo, Key hi) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  // ReadOnly unconditionally — never elastic: countRange promises a
  // consistent snapshot of the whole range, and elastic cuts would let a
  // concurrent composed move be double-counted or missed. The RO mode's
  // per-read validation preserves full snapshot semantics.
  const auto r = stm::atomically(
      domain_, stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return countRangeTx(tx, lo, hi); });
  st.endOp();
  return r;
}

// Elastic cuts are only safe for Algorithm 2's updates (see SFTreeConfig).
// ReadOnly is never an update kind: it would promote on the first write of
// every attempt.
stm::TxKind SFTree::updateTxKind() const {
  if (cfg_.ops == OpsVariant::Optimized && cfg_.txKind == stm::TxKind::Elastic) {
    return stm::TxKind::Elastic;
  }
  return stm::TxKind::Normal;
}

// Read-only operations run elastic when configured (hand-over-hand reads),
// zero-logging ReadOnly otherwise — a write in the body (impossible today)
// would transparently promote, so the hint is always safe.
stm::TxKind SFTree::readTxKind() const {
  if (cfg_.txKind == stm::TxKind::Elastic) return stm::TxKind::Elastic;
  return stm::TxKind::ReadOnly;
}

bool SFTree::insert(Key k, Value v) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(
      domain_, updateTxKind(), [&](stm::Tx& tx) { return insertTx(tx, k, v); });
  st.endOp();
  if (r) sizeEstimate_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

bool SFTree::erase(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(
      domain_, updateTxKind(), [&](stm::Tx& tx) { return eraseTx(tx, k); });
  st.endOp();
  if (r) sizeEstimate_.fetch_sub(1, std::memory_order_relaxed);
  return r;
}

bool SFTree::contains(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(
      domain_, readTxKind(), [&](stm::Tx& tx) { return containsTx(tx, k); });
  st.endOp();
  return r;
}

std::optional<Value> SFTree::get(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const auto r = stm::atomically(domain_, readTxKind(),
                                 [&](stm::Tx& tx) { return getTx(tx, k); });
  st.endOp();
  return r;
}

bool SFTree::move(Key from, Key to) {
  // Reusability (paper §5.4): compose erase + insert from the public
  // interface into one atomic, deadlock-free operation via flat nesting.
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, updateTxKind(), [&](stm::Tx& tx) {
    if (containsTx(tx, to)) return false;
    const std::optional<Value> v = getTx(tx, from);
    if (!v) return false;
    eraseTx(tx, from);
    if (!insertTx(tx, to, *v)) {
      // Under elastic reads the earlier contains(to) may have been cut from
      // the validation window; a concurrent insert of `to` then makes this
      // insert fail. Retrying (which discards the erase) keeps the move
      // atomic instead of losing the key.
      tx.restart();
    }
    return true;
  });
  st.endOp();
  return r;
}

// --------------------------------------------------------------------------
// Structural transactions (maintenance thread only)
// --------------------------------------------------------------------------
SFTree::StructuralResult SFTree::rotateRight(stm::Tx& tx, SFNode* parent,
                                             bool leftChild) {
  if (cfg_.ops == OpsVariant::Optimized &&
      parent->removed.read(tx) != RemState::NotRemoved) {
    return {};
  }
  SFNode* n = leftChild ? parent->left.read(tx) : parent->right.read(tx);
  if (n == nullptr) return {};
  SFNode* l = n->left.read(tx);
  if (l == nullptr) return {};
  SFNode* lr = l->right.read(tx);

  if (cfg_.ops == OpsVariant::Portable) {
    // Classical in-place rotation (Figure 2(b)) inside one transaction.
    n->left.write(tx, lr);
    l->right.write(tx, n);
    // update-balance-values(): advisory, maintenance-private (a stale value
    // left by an aborted attempt is refreshed by the next traversal).
    n->leftH = l->rightH;
    n->localH = std::max(n->leftH, n->rightH) + 1;
    l->rightH = n->localH;
    l->localH = std::max(l->leftH, l->rightH) + 1;
  } else {
    // Copy-on-rotate (Figure 2(c)): n is unlinked and replaced by a fresh
    // copy n' placed under l, so a traversal preempted at n still has a
    // path to the subtree that held its target.
    SFNode* r = n->right.read(tx);
    SFNode* nn = arena_.create(n->key, n->value.read(tx));
    tx.onAbortDelete(nn, &SFTree::deleteNode);
    nn->deleted.storeRelaxed(n->deleted.read(tx));
    nn->left.storeRelaxed(lr);
    nn->right.storeRelaxed(r);
    nn->leftH = l->rightH;
    nn->rightH = n->rightH;
    nn->localH = std::max(nn->leftH, nn->rightH) + 1;
    l->right.write(tx, nn);
    n->removed.write(tx, RemState::Removed);
    l->rightH = nn->localH;
    l->localH = std::max(l->leftH, l->rightH) + 1;
  }
  if (leftChild) {
    parent->left.write(tx, l);
  } else {
    parent->right.write(tx, l);
  }
  return {true, cfg_.ops == OpsVariant::Optimized ? n : nullptr};
}

SFTree::StructuralResult SFTree::rotateLeft(stm::Tx& tx, SFNode* parent,
                                            bool leftChild) {
  if (cfg_.ops == OpsVariant::Optimized &&
      parent->removed.read(tx) != RemState::NotRemoved) {
    return {};
  }
  SFNode* n = leftChild ? parent->left.read(tx) : parent->right.read(tx);
  if (n == nullptr) return {};
  SFNode* r = n->right.read(tx);
  if (r == nullptr) return {};
  SFNode* rl = r->left.read(tx);

  if (cfg_.ops == OpsVariant::Portable) {
    n->right.write(tx, rl);
    r->left.write(tx, n);
    n->rightH = r->leftH;
    n->localH = std::max(n->leftH, n->rightH) + 1;
    r->leftH = n->localH;
    r->localH = std::max(r->leftH, r->rightH) + 1;
  } else {
    SFNode* l = n->left.read(tx);
    SFNode* nn = arena_.create(n->key, n->value.read(tx));
    tx.onAbortDelete(nn, &SFTree::deleteNode);
    nn->deleted.storeRelaxed(n->deleted.read(tx));
    nn->left.storeRelaxed(l);
    nn->right.storeRelaxed(rl);
    nn->leftH = n->leftH;
    nn->rightH = r->leftH;
    nn->localH = std::max(nn->leftH, nn->rightH) + 1;
    r->left.write(tx, nn);
    // A node removed by a *left* rotation is replaced by a copy living in
    // its right subtree; find() must know to go right on a key match.
    n->removed.write(tx, RemState::RemovedByLeftRot);
    r->leftH = nn->localH;
    r->localH = std::max(r->leftH, r->rightH) + 1;
  }
  if (leftChild) {
    parent->left.write(tx, r);
  } else {
    parent->right.write(tx, r);
  }
  return {true, cfg_.ops == OpsVariant::Optimized ? n : nullptr};
}

SFTree::StructuralResult SFTree::removePhysical(stm::Tx& tx, SFNode* parent,
                                                bool leftChild) {
  if (cfg_.ops == OpsVariant::Optimized &&
      parent->removed.read(tx) != RemState::NotRemoved) {
    return {};
  }
  SFNode* n = leftChild ? parent->left.read(tx) : parent->right.read(tx);
  if (n == nullptr) return {};
  if (!n->deleted.read(tx)) return {};
  SFNode* l = n->left.read(tx);
  SFNode* r = n->right.read(tx);
  if (l != nullptr && r != nullptr) {
    // Only nodes with at most one child are physically removed (paper:
    // removing such nodes is enough to keep the tree from growing).
    return {};
  }
  SFNode* child = (l != nullptr) ? l : r;
  if (leftChild) {
    parent->left.write(tx, child);
  } else {
    parent->right.write(tx, child);
  }
  if (cfg_.ops == OpsVariant::Optimized) {
    // Escape pointers: a traversal preempted on n climbs back to the
    // parent, which still covers n's key range (Lemma 15).
    n->left.write(tx, parent);
    n->right.write(tx, parent);
    n->removed.write(tx, RemState::Removed);
  }
  return {true, n};
}

bool SFTree::tryRotateRight(SFNode* parent, bool leftChild) {
  const StructuralResult res = stm::atomically(
      domain_, [&](stm::Tx& tx) { return rotateRight(tx, parent, leftChild); });
  if (res.unlinked != nullptr) retireNode(res.unlinked);
  return res.changed;
}

bool SFTree::tryRotateLeft(SFNode* parent, bool leftChild) {
  const StructuralResult res = stm::atomically(
      domain_, [&](stm::Tx& tx) { return rotateLeft(tx, parent, leftChild); });
  if (res.unlinked != nullptr) retireNode(res.unlinked);
  return res.changed;
}

bool SFTree::tryRemovePhysical(SFNode* parent, bool leftChild) {
  const StructuralResult res = stm::atomically(
      domain_, [&](stm::Tx& tx) { return removePhysical(tx, parent, leftChild); });
  if (res.unlinked != nullptr) retireNode(res.unlinked);
  return res.changed;
}

void SFTree::retireNode(SFNode* n) {
  limbo_.retire(n, &SFTree::deleteNode);
  std::lock_guard<std::mutex> lk(maintStatsMu_);
  ++maintStats_.nodesRetired;
}

// --------------------------------------------------------------------------
// Maintenance thread (paper §3.1/3.2/3.4): one background thread repeatedly
// performs a depth-first traversal that propagates balance estimates,
// rotates unbalanced nodes in node-local transactions, physically removes
// logically deleted nodes, and garbage-collects retired nodes after
// quiescence.
// --------------------------------------------------------------------------
void SFTree::startMaintenance() {
  if (maintenanceThread_.joinable()) return;
  stopFlag_.store(false, std::memory_order_release);
  maintenanceThread_ = std::thread([this] { maintenanceLoop(); });
}

void SFTree::stopMaintenance() {
  if (!maintenanceThread_.joinable()) return;
  stopFlag_.store(true, std::memory_order_release);
  maintenanceThread_.join();
}

void SFTree::maintenanceLoop() {
  while (!stopFlag_.load(std::memory_order_acquire)) {
    const bool didWork = runMaintenancePass(&stopFlag_);
    if (cfg_.interPassPause.count() > 0) {
      std::this_thread::sleep_for(cfg_.interPassPause);
    }
    if (!didWork && cfg_.idlePause.count() > 0) {
      std::this_thread::sleep_for(cfg_.idlePause);
    }
  }
}

bool SFTree::runMaintenancePass(const std::atomic<bool>* cancel) {
  limbo_.openEpoch(registry_);
  bool didWork = false;
  SFNode* top = root_->left.loadAcquire();
  maintainSubtree(root_, top, /*leftChild=*/true, didWork, 0, cancel);
  limbo_.tryCollect(registry_);
  {
    std::lock_guard<std::mutex> lk(maintStatsMu_);
    ++maintStats_.traversals;
    maintStats_.nodesFreed = limbo_.freedTotal();
  }
  return didWork;
}

int SFTree::maintainSubtree(SFNode* parent, SFNode* node, bool leftChild,
                            bool& didWork, int depth,
                            const std::atomic<bool>* cancel) {
  if (node == nullptr) return 0;
  if (depth > kMaintenanceDepthLimit) return node->localH;
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return node->localH;
  }

  // Physical removal first: logically deleted nodes with at most one child
  // are unlinked (the transaction re-checks everything; the flags here are
  // only hints).
  if (cfg_.removals && node->deleted.loadAcquire() &&
      (node->left.loadAcquire() == nullptr ||
       node->right.loadAcquire() == nullptr)) {
    if (tryRemovePhysical(parent, leftChild)) {
      didWork = true;
      {
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.removals;
      }
      // Continue with whatever took the node's place.
      SFNode* replacement =
          leftChild ? parent->left.loadAcquire() : parent->right.loadAcquire();
      return maintainSubtree(parent, replacement, leftChild, didWork, depth,
                             cancel);
    }
    std::lock_guard<std::mutex> lk(maintStatsMu_);
    ++maintStats_.failedStructuralOps;
  }

  // Depth-first: propagate balance estimates bottom-up (paper §3.1,
  // "propagation"). These fields are maintenance-private.
  SFNode* l = node->left.loadAcquire();
  const int lh = maintainSubtree(node, l, /*leftChild=*/true, didWork,
                                 depth + 1, cancel);
  SFNode* r = node->right.loadAcquire();
  const int rh = maintainSubtree(node, r, /*leftChild=*/false, didWork,
                                 depth + 1, cancel);
  node->leftH = lh;
  node->rightH = rh;
  node->localH = std::max(lh, rh) + 1;
  const int resultH = node->localH;

  if (!cfg_.rotations) return resultH;
  if (lh - rh > 1) {
    // Left-heavy. If the left child leans right, first rotate it left so a
    // single right rotation at `node` balances (two node-local
    // transactions, as in the paper's distributed rotation).
    SFNode* child = node->left.loadAcquire();
    if (child != nullptr && child->rightH > child->leftH) {
      if (tryRotateLeft(node, /*leftChild=*/true)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      }
      child = node->left.loadAcquire();
    }
    // Re-check after the inner rotation: rotating a node the inner step
    // already balanced would tilt it the other way and oscillate forever.
    const int freshLh = child != nullptr ? child->localH : 0;
    if (freshLh - rh > 1) {
      if (tryRotateRight(parent, leftChild)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      } else {
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.failedStructuralOps;
      }
    }
    // `node` may have been retired by the rotation: report the stale height
    // and let the next traversal refresh the estimates.
  } else if (rh - lh > 1) {
    SFNode* child = node->right.loadAcquire();
    if (child != nullptr && child->leftH > child->rightH) {
      if (tryRotateRight(node, /*leftChild=*/false)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      }
      child = node->right.loadAcquire();
    }
    const int freshRh = child != nullptr ? child->localH : 0;
    if (freshRh - lh > 1) {
      if (tryRotateLeft(parent, leftChild)) {
        didWork = true;
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.rotations;
      } else {
        std::lock_guard<std::mutex> lk(maintStatsMu_);
        ++maintStats_.failedStructuralOps;
      }
    }
  }
  return resultH;
}

int SFTree::quiesceNow(int maxPasses) {
  assert(!maintenanceThread_.joinable() &&
         "stop the maintenance thread before quiescing manually");
  for (int pass = 1; pass <= maxPasses; ++pass) {
    if (!runMaintenancePass()) return pass;
  }
  return maxPasses;
}

MaintenanceStats SFTree::maintenanceStats() const {
  std::lock_guard<std::mutex> lk(maintStatsMu_);
  return maintStats_;
}

// --------------------------------------------------------------------------
// Quiesced introspection
// --------------------------------------------------------------------------
std::size_t SFTree::abstractSize() {
  std::size_t count = 0;
  std::stack<SFNode*> stack;
  if (SFNode* top = root_->left.loadAcquire()) stack.push(top);
  while (!stack.empty()) {
    SFNode* n = stack.top();
    stack.pop();
    if (!n->deleted.loadAcquire()) ++count;
    if (SFNode* l = n->left.loadAcquire()) stack.push(l);
    if (SFNode* r = n->right.loadAcquire()) stack.push(r);
  }
  return count;
}

std::size_t SFTree::structuralSize() {
  std::size_t count = 0;
  std::stack<SFNode*> stack;
  if (SFNode* top = root_->left.loadAcquire()) stack.push(top);
  while (!stack.empty()) {
    SFNode* n = stack.top();
    stack.pop();
    ++count;
    if (SFNode* l = n->left.loadAcquire()) stack.push(l);
    if (SFNode* r = n->right.loadAcquire()) stack.push(r);
  }
  return count;
}

namespace {
int subtreeHeight(SFNode* n) {
  if (n == nullptr) return 0;
  return 1 + std::max(subtreeHeight(n->left.loadAcquire()),
                      subtreeHeight(n->right.loadAcquire()));
}

void inorder(SFNode* n, std::vector<Key>& out) {
  if (n == nullptr) return;
  inorder(n->left.loadAcquire(), out);
  if (!n->deleted.loadAcquire()) out.push_back(n->key);
  inorder(n->right.loadAcquire(), out);
}
}  // namespace

int SFTree::height() { return subtreeHeight(root_->left.loadAcquire()); }

std::vector<Key> SFTree::keysInOrder() {
  std::vector<Key> out;
  inorder(root_->left.loadAcquire(), out);
  return out;
}

}  // namespace sftree::trees
