#include "trees/tree_checks.hpp"

#include <algorithm>
#include <sstream>

namespace sftree::trees {

namespace {

struct SFCheckState {
  CheckResult result;
};

bool checkSFSubtree(SFNode* n, Key lo, Key hi, SFCheckState& st) {
  if (n == nullptr) return true;
  if (!(lo < n->key && n->key < hi)) {
    std::ostringstream os;
    os << "BST violation: key " << n->key << " outside (" << lo << ", " << hi
       << ")";
    st.result = CheckResult::failure(os.str());
    return false;
  }
  if (n->removed.loadRelaxed() != RemState::NotRemoved) {
    std::ostringstream os;
    os << "reachable node " << n->key << " is marked removed";
    st.result = CheckResult::failure(os.str());
    return false;
  }
  return checkSFSubtree(n->left.loadRelaxed(), lo, n->key, st) &&
         checkSFSubtree(n->right.loadRelaxed(), n->key, hi, st);
}

}  // namespace

CheckResult checkSFTree(SFTree& tree) {
  SFNode* root = tree.rootForTest();
  if (root->key != kInfiniteKey) {
    return CheckResult::failure("root sentinel key is not +inf");
  }
  if (root->right.loadRelaxed() != nullptr) {
    return CheckResult::failure("root sentinel has a right child");
  }
  if (root->removed.loadRelaxed() != RemState::NotRemoved) {
    return CheckResult::failure("root sentinel is marked removed");
  }
  SFCheckState st;
  checkSFSubtree(root->left.loadRelaxed(), std::numeric_limits<Key>::min(),
                 kInfiniteKey, st);
  return st.result;
}

namespace {

struct RBCheckState {
  CheckResult result;
};

// Returns black height of the subtree, or -1 on violation.
int checkRBSubtree(RBNode* n, RBNode* expectedParent, Key lo, Key hi,
                   RBCheckState& st) {
  if (n == nullptr) return 1;  // null leaves are black
  if (!(lo < n->key && n->key < hi)) {
    std::ostringstream os;
    os << "BST violation: key " << n->key << " outside (" << lo << ", " << hi
       << ")";
    st.result = CheckResult::failure(os.str());
    return -1;
  }
  if (n->parent.loadRelaxed() != expectedParent) {
    std::ostringstream os;
    os << "parent pointer of " << n->key << " is inconsistent";
    st.result = CheckResult::failure(os.str());
    return -1;
  }
  RBNode* l = n->left.loadRelaxed();
  RBNode* r = n->right.loadRelaxed();
  const bool red = n->color.loadRelaxed() == RBColor::Red;
  if (red) {
    const bool leftRed = l != nullptr && l->color.loadRelaxed() == RBColor::Red;
    const bool rightRed =
        r != nullptr && r->color.loadRelaxed() == RBColor::Red;
    if (leftRed || rightRed) {
      std::ostringstream os;
      os << "red node " << n->key << " has a red child";
      st.result = CheckResult::failure(os.str());
      return -1;
    }
  }
  const int lh = checkRBSubtree(l, n, lo, n->key, st);
  if (lh < 0) return -1;
  const int rh = checkRBSubtree(r, n, n->key, hi, st);
  if (rh < 0) return -1;
  if (lh != rh) {
    std::ostringstream os;
    os << "black-height mismatch at " << n->key << " (" << lh << " vs " << rh
       << ")";
    st.result = CheckResult::failure(os.str());
    return -1;
  }
  return lh + (red ? 0 : 1);
}

}  // namespace

CheckResult checkRBTree(RBTree& tree) {
  RBNode* root = tree.rootForTest();
  if (root == nullptr) return {};
  if (root->color.loadRelaxed() != RBColor::Black) {
    return CheckResult::failure("root is not black");
  }
  RBCheckState st;
  checkRBSubtree(root, nullptr, std::numeric_limits<Key>::min(),
                 std::numeric_limits<Key>::max(), st);
  return st.result;
}

namespace {

struct AVLCheckState {
  CheckResult result;
};

// Returns the actual height, or -1 on violation.
int checkAVLSubtree(AVLNode* n, Key lo, Key hi, AVLCheckState& st) {
  if (n == nullptr) return 0;
  if (!(lo < n->key && n->key < hi)) {
    std::ostringstream os;
    os << "BST violation: key " << n->key << " outside (" << lo << ", " << hi
       << ")";
    st.result = CheckResult::failure(os.str());
    return -1;
  }
  const int lh = checkAVLSubtree(n->left.loadRelaxed(), lo, n->key, st);
  if (lh < 0) return -1;
  const int rh = checkAVLSubtree(n->right.loadRelaxed(), n->key, hi, st);
  if (rh < 0) return -1;
  const int h = 1 + std::max(lh, rh);
  if (n->height.loadRelaxed() != h) {
    std::ostringstream os;
    os << "stored height of " << n->key << " is " << n->height.loadRelaxed()
       << ", actual " << h;
    st.result = CheckResult::failure(os.str());
    return -1;
  }
  if (lh - rh > 1 || rh - lh > 1) {
    std::ostringstream os;
    os << "balance violation at " << n->key << " (" << lh << " vs " << rh
       << ")";
    st.result = CheckResult::failure(os.str());
    return -1;
  }
  return h;
}

}  // namespace

CheckResult checkAVLTree(AVLTree& tree) {
  AVLCheckState st;
  checkAVLSubtree(tree.rootForTest(), std::numeric_limits<Key>::min(),
                  std::numeric_limits<Key>::max(), st);
  return st.result;
}

}  // namespace sftree::trees
