// Transaction-based AVL tree — the paper's second baseline (STAMP's AVL).
//
// Update operations rebalance *inside the same transaction* that modifies
// the abstraction, walking back up the insertion/deletion path and rotating
// wherever the balance factor leaves {-1, 0, +1}. Heights are transactional
// fields: they are part of what commits atomically, which is exactly the
// tight coupling whose cost the paper measures.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "gc/limbo_list.hpp"
#include "gc/thread_registry.hpp"
#include "mem/arena.hpp"
#include "stm/stm.hpp"
#include "trees/key.hpp"

namespace sftree::trees {

struct AVLNode {
  const Key key;
  stm::TxField<Value> value;
  stm::TxField<AVLNode*> left;
  stm::TxField<AVLNode*> right;
  stm::TxField<std::int64_t> height;  // height of the subtree rooted here

  AVLNode(Key k, Value v) : key(k), value(v), height(1) {}
};

struct AVLTreeConfig {
  // Elastic applies to read-only operations only (see RBTreeConfig).
  stm::TxKind txKind = stm::TxKind::Normal;
  // STM clock domain; null selects the process default.
  stm::Domain* domain = nullptr;
};

class AVLTree {
 public:
  explicit AVLTree(AVLTreeConfig cfg = {});
  ~AVLTree();

  AVLTree(const AVLTree&) = delete;
  AVLTree& operator=(const AVLTree&) = delete;

  bool insert(Key k, Value v);
  bool erase(Key k);
  bool contains(Key k);
  std::optional<Value> get(Key k);
  bool move(Key from, Key to);

  bool insertTx(stm::Tx& tx, Key k, Value v);
  bool eraseTx(stm::Tx& tx, Key k);
  bool containsTx(stm::Tx& tx, Key k);
  std::optional<Value> getTx(stm::Tx& tx, Key k);
  // Snapshot count of keys in [lo, hi] (composable).
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi);
  std::size_t countRange(Key lo, Key hi);

  // Quiesced introspection.
  std::size_t size();
  int height();
  std::vector<Key> keysInOrder();
  stm::Domain& domain() const { return domain_; }
  AVLNode* rootForTest() { return root_.loadRelaxed(); }

 private:
  static std::int64_t nodeHeight(stm::Tx& tx, AVLNode* n) {
    return n == nullptr ? 0 : n->height.read(tx);
  }

  AVLNode* rotateRight(stm::Tx& tx, AVLNode* n);
  AVLNode* rotateLeft(stm::Tx& tx, AVLNode* n);
  // Recomputes n's height and applies at most two rotations; returns the
  // (possibly new) subtree root.
  AVLNode* rebalance(stm::Tx& tx, AVLNode* n);

  AVLNode* insertRec(stm::Tx& tx, AVLNode* n, Key k, Value v, bool& inserted);
  AVLNode* eraseRec(stm::Tx& tx, AVLNode* n, Key k, bool& erased);
  // Removes the leftmost node of the subtree, returning it through `minOut`.
  AVLNode* detachMin(stm::Tx& tx, AVLNode* n, AVLNode*& minOut);

  void retireNode(AVLNode* n);
  static void deleteNode(void* p) { mem::NodeArena<AVLNode>::destroy(p); }
  // Read-only operations run elastic when configured, zero-logging
  // ReadOnly otherwise.
  stm::TxKind readTxKind() const {
    return cfg_.txKind == stm::TxKind::Elastic ? stm::TxKind::Elastic
                                               : stm::TxKind::ReadOnly;
  }

  AVLTreeConfig cfg_;
  stm::Domain& domain_;
  // Declared before the limbo list so retired nodes can recycle into it
  // during destruction.
  mem::NodeArena<AVLNode> arena_;
  stm::TxField<AVLNode*> root_{nullptr};

  gc::ThreadRegistry registry_;
  std::mutex limboMu_;
  gc::LimboList limbo_;
  std::uint64_t retireTick_ = 0;
};

}  // namespace sftree::trees
