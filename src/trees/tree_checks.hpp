// Structural invariant checkers used by the test suite. All checkers assume
// a quiesced tree (no concurrent operations, maintenance stopped).
#pragma once

#include <string>

#include "trees/avltree.hpp"
#include "trees/rbtree.hpp"
#include "trees/sftree.hpp"

namespace sftree::trees {

struct CheckResult {
  bool ok = true;
  std::string error;  // first violated invariant, for diagnostics

  static CheckResult failure(std::string msg) { return {false, std::move(msg)}; }
};

// Speculation-friendly tree:
//  * reachable nodes form a valid BST (keys within their ranges, Lemma 6/7)
//  * every reachable node has removed == NotRemoved (Lemma 5)
//  * the root sentinel holds key +inf with an empty right subtree
CheckResult checkSFTree(SFTree& tree);

// Red-black tree:
//  * valid BST
//  * root is black, no red node has a red child
//  * every root-to-null path has the same black height
//  * child->parent pointers are consistent
CheckResult checkRBTree(RBTree& tree);

// AVL tree:
//  * valid BST
//  * stored heights are exact
//  * balance factor of every node is in {-1, 0, +1}
CheckResult checkAVLTree(AVLTree& tree);

}  // namespace sftree::trees
