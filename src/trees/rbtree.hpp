// Transaction-based red-black tree — the paper's primary baseline.
//
// This is the classical algorithm used by the Oracle Labs / STAMP library
// the paper evaluates against: a CLRS-style red-black tree with parent
// pointers and *no sentinel nodes* (the paper notes the STAMP version
// removed sentinels to avoid false conflicts). Every operation — the
// abstraction change, the structural adaptation, the threshold check and
// the rebalancing — runs inside one transaction, which is precisely the
// tight coupling the speculation-friendly tree removes.
//
// Unlinked nodes are reclaimed through the same quiescence scheme as the
// SF tree (per-tree registry + limbo list), amortized over erase calls.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "gc/limbo_list.hpp"
#include "gc/thread_registry.hpp"
#include "mem/arena.hpp"
#include "stm/stm.hpp"
#include "trees/key.hpp"

namespace sftree::trees {

enum class RBColor : std::uint8_t { Red, Black };

struct RBNode {
  const Key key;
  stm::TxField<Value> value;
  stm::TxField<RBNode*> left;
  stm::TxField<RBNode*> right;
  stm::TxField<RBNode*> parent;
  stm::TxField<RBColor> color;

  RBNode(Key k, Value v) : key(k), value(v), color(RBColor::Red) {}
};

struct RBTreeConfig {
  // Elastic kind applies to read-only operations (contains/get) only;
  // updates always run as normal transactions. (E-STM cut semantics are
  // unsafe for a structure whose delete physically transplants nodes; see
  // DESIGN.md.)
  stm::TxKind txKind = stm::TxKind::Normal;
  // STM clock domain; null selects the process default.
  stm::Domain* domain = nullptr;
};

class RBTree {
 public:
  explicit RBTree(RBTreeConfig cfg = {});
  ~RBTree();

  RBTree(const RBTree&) = delete;
  RBTree& operator=(const RBTree&) = delete;

  bool insert(Key k, Value v);
  bool erase(Key k);
  bool contains(Key k);
  std::optional<Value> get(Key k);
  bool move(Key from, Key to);

  bool insertTx(stm::Tx& tx, Key k, Value v);
  bool eraseTx(stm::Tx& tx, Key k);
  bool containsTx(stm::Tx& tx, Key k);
  std::optional<Value> getTx(stm::Tx& tx, Key k);
  // Snapshot count of keys in [lo, hi] (composable).
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi);
  std::size_t countRange(Key lo, Key hi);

  // Quiesced introspection (no concurrent operations).
  std::size_t size();
  int height();
  std::vector<Key> keysInOrder();
  stm::Domain& domain() const { return domain_; }
  RBNode* rootForTest() { return root_.loadRelaxed(); }

 private:
  RBNode* searchTx(stm::Tx& tx, Key k);

  void leftRotate(stm::Tx& tx, RBNode* x);
  void rightRotate(stm::Tx& tx, RBNode* x);
  void insertFixup(stm::Tx& tx, RBNode* z);
  // v replaces the subtree rooted at u.
  void transplant(stm::Tx& tx, RBNode* u, RBNode* v);
  void eraseFixup(stm::Tx& tx, RBNode* x, RBNode* xParent);

  void retireNode(RBNode* n);
  static void deleteNode(void* p) { mem::NodeArena<RBNode>::destroy(p); }
  // Read-only operations run elastic when configured, zero-logging
  // ReadOnly otherwise.
  stm::TxKind readTxKind() const {
    return cfg_.txKind == stm::TxKind::Elastic ? stm::TxKind::Elastic
                                               : stm::TxKind::ReadOnly;
  }

  RBTreeConfig cfg_;
  stm::Domain& domain_;
  // Declared before the limbo list so retired nodes can recycle into it
  // during destruction.
  mem::NodeArena<RBNode> arena_;
  stm::TxField<RBNode*> root_{nullptr};

  gc::ThreadRegistry registry_;
  std::mutex limboMu_;
  gc::LimboList limbo_;
  std::uint64_t retireTick_ = 0;
};

}  // namespace sftree::trees
