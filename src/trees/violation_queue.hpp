// Mutator-fed violation queue: the channel between abstract operations and
// targeted maintenance.
//
// The paper decouples structural adaptation from the abstract operations but
// still *discovers* the work by depth-first sweeping the whole tree — O(n)
// per pass even when only a handful of nodes are unbalanced or logically
// deleted. The violation queue inverts the discovery: an update transaction
// that creates a potential violation (a new leaf that may unbalance its
// ancestors, a logical deletion awaiting physical removal) publishes the
// *key* of the violated position at commit time, and the maintenance pass
// drains the queue and repairs only the affected root-paths. Adaptation cost
// then tracks update activity, not tree size (the self-adjusting-tree
// lesson; see docs/maintenance.md).
//
// Entries carry a ViolationKind so the drain can repair exactly what the
// publisher saw:
//
//   kInsert  a fresh leaf linked in — ancestors may be unbalanced, but
//            nothing on the path needs physical removal (any removable node
//            carries its own kErase entry), so the repair skips the
//            removal probes.
//   kErase   a logical deletion — the node is a physical-removal candidate.
//            If the removal is refused (two children, already gone), the
//            subtree heights did not change and the repair skips the
//            bottom-up rebalance walk entirely.
//   kAccess  a sampled lookup hit — no violation at all, but fuel for the
//            access-frequency splay heuristic (docs/splaying.md): the drain
//            folds the ticks into the node's decayed heat estimate and may
//            promote it toward the root. Published by read-only commits,
//            sampled 1-in-2^k per thread so the read path stays cheap.
//
// Design constraints and the shapes they force:
//
//  * Keys, not node pointers. A queued entry can outlive its node (physical
//    removal, copy-on-rotate retirement, arena recycling), so entries carry
//    the key and the drain re-walks the root-path — which the targeted
//    repair needs anyway. No entry ever dangles.
//  * Sharded MPSC Treiber stacks. Producers are the application threads
//    (commit hooks), the consumer is whichever maintenance worker runs the
//    tree's pass (at most one at a time, same contract as
//    SFTree::runMaintenancePass). Producers hash their thread onto one of a
//    few stacks so concurrent commits do not serialize on one CAS line;
//    drain order is irrelevant (repair is idempotent and positional).
//  * Arena-backed entries. Entry nodes come from a mem::SlabArena and are
//    recycled by the consumer, so steady-state enqueue/drain allocates
//    nothing from the global heap (same motivation as the tree node arenas).
//  * Lossy commit-time dedup, one claim space per kind. A small table of
//    per-slot key claims (hash(key) -> key) absorbs the common burst of
//    repeated updates to one hot key: an enqueue whose claim is already
//    present skips the push. The claim spaces are per kind so an erase
//    following an un-drained insert of the same key is never silently
//    absorbed into an entry whose repair would skip the removal — dedup can
//    suppress duplicates of the *same* kind, never lose a violation of
//    another. The claim is released by the drain *before* it examines the
//    node state (acq_rel exchange on both sides), so an update that commits
//    while its key is being repaired always re-enqueues. Collisions merely
//    overwrite a claim, which re-admits one duplicate: benign.
//  * Counted access dedup. Heat estimation needs *how often*, not just
//    *whether*, so a deduped kAccess capture increments a per-slot absorbed
//    tick counter instead of vanishing; the drain hands the entry's weight
//    (1 + absorbed) to the consumer. A claim overwritten by a colliding key
//    drops the orphaned ticks (heat is a lossy estimate by contract).
//  * Bounded depth. Past kMaxDepth the enqueue drops the entry and raises a
//    sticky overflow flag instead; the maintenance pass that observes the
//    flag falls back to a full sweep (the safety net for anything the queue
//    missed). A tree mutated heavily while its maintenance is stopped
//    therefore wastes bounded memory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "mem/arena.hpp"
#include "trees/key.hpp"

namespace sftree::trees {

enum class ViolationKind : std::uint8_t {
  kInsert = 0,
  kErase = 1,
  kAccess = 2,
};

inline constexpr std::size_t kViolationKindCount = 3;

// Aggregate counters (racy snapshots; exact when the producer side is
// quiescent).
struct ViolationQueueStats {
  std::uint64_t captured = 0;       // commit hooks that reported a violation
  std::uint64_t enqueued = 0;       // entries actually pushed (captured - deduped)
  std::uint64_t deduped = 0;        // captures absorbed by an existing claim
  std::uint64_t drained = 0;        // entries consumed by maintenance
  std::uint64_t dropped = 0;        // captures dropped on overflow
  std::uint64_t overflows = 0;      // times the overflow flag was raised
  std::uint64_t absorbedTicks = 0;  // deduped kAccess captures counted into
                                    // the pending entry's weight
  std::uint64_t drainLatencyUsSum = 0;  // enqueue -> drain, summed over drained
  std::uint64_t depth() const { return enqueued - drained; }
  double meanDrainLatencyUs() const {
    return drained == 0 ? 0.0
                        : static_cast<double>(drainLatencyUsSum) /
                              static_cast<double>(drained);
  }
};

class ViolationQueue {
 public:
  static constexpr std::size_t kShards = 8;      // power of two
  static constexpr std::size_t kDedupSlots = 2048;  // power of two, per kind
  static constexpr std::uint64_t kMaxDepth = std::uint64_t{1} << 20;

  ViolationQueue() {
    for (auto& space : dedup_) {
      for (auto& s : space) s.key.store(kNoClaim, std::memory_order_relaxed);
    }
  }

  ViolationQueue(const ViolationQueue&) = delete;
  ViolationQueue& operator=(const ViolationQueue&) = delete;

  ~ViolationQueue() {
    for (auto& s : shards_) {
      Entry* e = s.head.load(std::memory_order_acquire);
      while (e != nullptr) {
        Entry* next = e->next;
        mem::SlabArena::recycle(e);
        e = next;
      }
    }
  }

  // Producer side (commit hooks, any thread). Returns true when an entry was
  // pushed, false when the capture was deduped or dropped on overflow.
  bool publish(Key k, ViolationKind kind = ViolationKind::kInsert) {
    captured_.fetch_add(1, std::memory_order_relaxed);
    // Claim the kind's dedup slot first: acq_rel pairs with the drain's
    // release, so whichever side wins the exchange race, either the claim is
    // fresh (we push) or the drain that holds it will observe this update's
    // committed state after clearing it.
    auto& slot = dedup_[kindIndex(kind)][slotFor(k)];
    const Key prev = slot.key.exchange(k, std::memory_order_acq_rel);
    if (prev == k) {
      deduped_.fetch_add(1, std::memory_order_relaxed);
      if (kind == ViolationKind::kAccess) {
        // Preserve the tick: the pending entry drains with this weight.
        slot.extra.fetch_add(1, std::memory_order_relaxed);
        absorbedTicks_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    if (kind == ViolationKind::kAccess && prev != kNoClaim) {
      // Collision takeover: the absorbed ticks in the slot belong to the
      // overwritten key, whose entry will drain with weight 1. Drop them
      // rather than credit them to us (heat is lossy by contract).
      slot.extra.store(0, std::memory_order_relaxed);
    }
    if (depth() >= kMaxDepth) {
      // Drop the capture and raise the sweep flag — and release the claim
      // just installed, so later captures of this key are not silently
      // absorbed by a claim that has no queued entry behind it.
      releaseClaim(k, kind);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (!overflow_.exchange(true, std::memory_order_acq_rel)) {
        overflows_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    auto* e = static_cast<Entry*>(arena_.allocate());
    e->key = k;
    e->enqueuedUs = nowUs();
    e->kind = kind;
    Shard& s = shards_[shardFor()];
    e->next = s.head.load(std::memory_order_relaxed);
    while (!s.head.compare_exchange_weak(e->next, e, std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Consumer side (single maintenance worker at a time). Pops every entry
  // present at the start of the drain and invokes fn(key, kind, weight) for
  // each after releasing the key's dedup claim (weight is 1 plus the ticks
  // absorbed by an access entry's claim while it sat queued; 1 for the
  // structural kinds). fn returning false stops the drain; the remaining
  // entries are pushed back intact (their enqueue timestamps preserved).
  // Returns the number of entries consumed.
  template <typename F>
  std::size_t drain(F&& fn) {
    std::size_t consumed = 0;
    const std::uint64_t now = nowUs();
    for (auto& s : shards_) {
      Entry* e = s.head.exchange(nullptr, std::memory_order_acq_rel);
      while (e != nullptr) {
        Entry* next = e->next;
        const std::uint32_t weight =
            1 + releaseClaim(e->key, e->kind);
        drainLatencyUsSum_.fetch_add(
            now > e->enqueuedUs ? now - e->enqueuedUs : 0,
            std::memory_order_relaxed);
        drained_.fetch_add(1, std::memory_order_relaxed);
        ++consumed;
        const bool keepGoing = fn(e->key, e->kind, weight);
        mem::SlabArena::recycle(e);
        if (!keepGoing) {
          while (next != nullptr) {
            Entry* after = next->next;
            pushBack(s, next);
            next = after;
          }
          return consumed;
        }
        e = next;
      }
    }
    return consumed;
  }

  // Entries currently queued (racy snapshot).
  std::uint64_t depth() const {
    const std::uint64_t enq = enqueued_.load(std::memory_order_relaxed);
    const std::uint64_t dr = drained_.load(std::memory_order_relaxed);
    return enq > dr ? enq - dr : 0;
  }

  // Consumes the sticky overflow flag: true when captures were dropped since
  // the last call, i.e. the caller must fall back to a full sweep.
  bool consumeOverflow() {
    return overflow_.exchange(false, std::memory_order_acq_rel);
  }

  ViolationQueueStats stats() const {
    ViolationQueueStats out;
    out.captured = captured_.load(std::memory_order_relaxed);
    out.enqueued = enqueued_.load(std::memory_order_relaxed);
    out.deduped = deduped_.load(std::memory_order_relaxed);
    out.drained = drained_.load(std::memory_order_relaxed);
    out.dropped = dropped_.load(std::memory_order_relaxed);
    out.overflows = overflows_.load(std::memory_order_relaxed);
    out.absorbedTicks = absorbedTicks_.load(std::memory_order_relaxed);
    out.drainLatencyUsSum =
        drainLatencyUsSum_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  struct Entry {
    Entry* next;
    Key key;
    std::uint64_t enqueuedUs;
    ViolationKind kind;
  };

  struct alignas(64) Shard {
    std::atomic<Entry*> head{nullptr};
  };

  // One cache line per slot: claim exchanges ride every update commit, and
  // two concurrently hot keys must not false-share. `extra` counts absorbed
  // access ticks while the slot's claim is held (kAccess space only).
  struct alignas(64) DedupSlot {
    std::atomic<Key> key;
    std::atomic<std::uint32_t> extra{0};
  };

  // The sentinel never appears as a user key (SFTree asserts k < +inf).
  static constexpr Key kNoClaim = kInfiniteKey;

  static std::size_t kindIndex(ViolationKind k) {
    return static_cast<std::size_t>(k);
  }

  static std::uint64_t nowUs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static std::size_t shardFor() {
    // Hash the thread onto a shard, like the arena's free-list shards.
    static thread_local const std::size_t shard = [] {
      static std::atomic<std::size_t> counter{0};
      return counter.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    }();
    return shard;
  }

  static std::size_t slotFor(Key k) {
    auto h = static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> 32) & (kDedupSlots - 1);
  }

  // Releases k's claim in its kind space and returns the absorbed ticks
  // collected while the claim was held (kAccess; 0 for the structural
  // kinds). Only releases our own key's claim: a collision may have
  // overwritten it with another key whose entry is still queued. The ticks
  // are grabbed *before* the release so a fresh burst starting right after
  // the release is not stolen from the next entry; a tick landing between
  // the grab and the release leaks into the slot's next claimant — lossy by
  // contract, like the collision cases.
  std::uint32_t releaseClaim(Key k, ViolationKind kind) {
    auto& slot = dedup_[kindIndex(kind)][slotFor(k)];
    std::uint32_t ticks = 0;
    if (kind == ViolationKind::kAccess &&
        slot.key.load(std::memory_order_acquire) == k) {
      ticks = slot.extra.exchange(0, std::memory_order_acq_rel);
    }
    Key expected = k;
    slot.key.compare_exchange_strong(expected, kNoClaim,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
    return ticks;
  }

  void pushBack(Shard& s, Entry* e) {
    e->next = s.head.load(std::memory_order_relaxed);
    while (!s.head.compare_exchange_weak(e->next, e, std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
  }

  mem::SlabArena arena_{sizeof(Entry)};
  Shard shards_[kShards];
  DedupSlot dedup_[kViolationKindCount][kDedupSlots];

  std::atomic<std::uint64_t> captured_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> deduped_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> absorbedTicks_{0};
  std::atomic<std::uint64_t> drainLatencyUsSum_{0};
  std::atomic<bool> overflow_{false};
};

}  // namespace sftree::trees
