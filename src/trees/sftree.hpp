// The speculation-friendly binary search tree (paper §3).
//
// Abstract transactions (insert / delete / contains) only touch the
// abstraction: insertion links a leaf or clears a `deleted` flag; deletion
// *logically* deletes by setting the flag; contains reads it. All
// restructuring — local rotations, physical removal of logically deleted
// nodes, balance propagation and garbage collection — happens in small
// node-local transactions executed by one background maintenance thread
// (§3.1, §3.2, §3.4).
//
// Two operation variants are provided:
//  * Portable (Algorithm 1): every shared access is a transactional read or
//    write; works on any TM that implements the standard interface.
//  * Optimized (Algorithm 2): traversals use unit loads (`uread`) and nodes
//    carry a `removed` flag (false / true / true-by-left-rotation); rotation
//    replaces the rotated node with a fresh copy so that preempted
//    traversals keep a path to their target.
//
// The same class also serves as the paper's *no-restructuring* baseline
// (NRtree): construct it with maintenance disabled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gc/limbo_list.hpp"
#include "gc/thread_registry.hpp"
#include "mem/arena.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "stm/stm.hpp"
#include "trees/key.hpp"
#include "trees/violation_queue.hpp"

namespace sftree::trees {

// Physical-removal state of a node (Algorithm 2). A removed node is no
// longer reachable from the root but remains traversable: its child pointers
// lead back into the tree. RemovedByLeftRot tells a find() that stopped on a
// node with its own key that the replacement node is in the *right* subtree.
enum class RemState : std::uint8_t {
  NotRemoved = 0,
  Removed = 1,
  RemovedByLeftRot = 2,
};

struct SFNode {
  const Key key;
  stm::TxField<Value> value;
  stm::TxField<SFNode*> left;
  stm::TxField<SFNode*> right;
  stm::TxField<bool> deleted;     // logical deletion flag (paper `del`)
  stm::TxField<RemState> removed; // physical removal flag (paper `rem`)

  // Balance estimates (paper: left-h / right-h / local-h). Read and written
  // exclusively by the single maintenance thread — deliberately plain.
  int leftH = 0;
  int rightH = 0;
  int localH = 1;

  // Decayed access-heat estimate driving the splay heuristic
  // (docs/splaying.md). Same single-structural-mutator discipline as the
  // balance estimates: only the maintenance pass reads or writes these.
  // `heat` is a saturating tick count; `heatEpoch` stamps the decay epoch it
  // was last normalized to (heat halves once per elapsed epoch).
  std::uint32_t heat = 0;
  std::uint32_t heatEpoch = 0;

  SFNode(Key k, Value v) : key(k), value(v) {}
};

enum class OpsVariant : std::uint8_t {
  Portable,   // Algorithm 1
  Optimized,  // Algorithm 2
};

// Access-frequency-driven restructuring (semantic splaying). Off = the
// maintenance pass only rebalances and removes, exactly as before.
// Conservative promotes only strongly dominant hot keys with a small
// per-pass rotation budget; Aggressive samples more, promotes on a lower
// dominance margin, and spends a larger budget. See docs/splaying.md.
enum class SplayPolicy : std::uint8_t {
  Off = 0,
  Conservative = 1,
  Aggressive = 2,
};

// Tuning knobs behind a SplayPolicy; SFTreeConfig::splayParams() maps the
// policy to these defaults, and tests override them directly.
struct SplayParams {
  // Read-path sampling: a thread publishes one access tick per 2^shift
  // lookup hits (0 = every hit; tests use 0 for determinism).
  std::uint32_t sampleShift = 6;
  // Heat floor: below this decayed heat a node is never promoted and never
  // shielded from rebalancing (the hysteresis that keeps uniform workloads
  // churn-free — uniform traffic spreads ticks too thin to reach the floor).
  std::uint32_t minHeat = 8;
  // Dominance margin: promote only when heat(node) * den > heat(parent) *
  // num, i.e. the node is num/den hotter than what it would demote.
  std::uint32_t promoteNum = 2;
  std::uint32_t promoteDen = 1;
  // Never promote into the top `minDepth` levels below the sentinel: the
  // near-root region is the whole tree's traffic funnel, and rotating it
  // invalidates every concurrent traversal for marginal depth gain.
  int minDepth = 2;
  // Hot-protection slack: a hot node is exempt from demoting rotations
  // while its AVL imbalance is within 1 + slack (beyond that, balance
  // wins). A freshly promoted node carries the demoted root-path on one
  // side, so its transient imbalance is on the order of its old depth; the
  // slack must cover that window while ordinary rebalancing compacts the
  // (cold) chain underneath it — too-tight slack makes every sweep undo
  // the promotion. Heat decay, not this cap, is the steady-state exit.
  int slack = 8;
  // Per-pass ceiling on splay rotations, keeping maintenance pass latency
  // (MaintenanceStats::passNs) bounded under hot-set migration.
  std::uint32_t rotationBudget = 64;
  // Heat halves once per this many nanoseconds, so yesterday's hot set
  // cannot pin today's tree shape.
  std::uint64_t decayHalfLifeNs = 200'000'000;  // 200 ms
};

struct SFTreeConfig {
  OpsVariant ops = OpsVariant::Optimized;
  // STM clock domain the tree's transactions run against; null selects the
  // process default. Give independent trees independent domains (e.g. one
  // per shard) to take their commits off the shared version clock.
  stm::Domain* domain = nullptr;
  // Transaction kind used by the abstract operations (Normal, or Elastic to
  // run on the E-STM-equivalent mode). With the Portable ops variant,
  // Elastic applies to read-only operations only: Algorithm 1's updates
  // rely on full read-set validation to detect a physically removed
  // insertion point, which elastic cuts would skip. Algorithm 2's
  // transactional `removed`/parent-link reads make its updates safe under
  // elastic cuts, so the Optimized variant runs every operation elastic.
  stm::TxKind txKind = stm::TxKind::Normal;
  // Background restructuring. Turning both off yields the paper's
  // no-restructuring baseline (NRtree): no rotations and no physical
  // removal ("the no-restructuring tree does not physically remove nodes").
  bool rotations = true;
  bool removals = true;
  // Spawn the dedicated background maintenance thread. Set to false either
  // for the no-restructuring baseline or when the tree is *externally
  // maintained*: an owner (e.g. shard::MaintenanceScheduler) drives
  // runMaintenancePass() itself and multiplexes many trees onto a small
  // worker pool.
  bool startMaintenance = true;
  // Targeted maintenance: update transactions publish the keys they
  // unbalance or logically delete into the tree's violation queue at commit
  // time, and a maintenance pass drains the queue and repairs only the
  // affected root-paths instead of sweeping the whole tree. Off = every
  // pass is a full depth-first sweep (the paper's original discovery mode).
  bool targetedMaintenance = true;
  // With targeted maintenance, every Nth pass additionally runs a full
  // depth-first sweep as a safety net for missed or stale queue entries
  // (drain races, deleted two-child nodes that only become removable
  // later). 0 disables the periodic fallback entirely (an overflowing
  // queue still forces one); quiesceNow() always finishes with clean
  // sweeps regardless.
  int fullSweepPeriod = 64;
  // Pause between two depth-first maintenance traversals when the previous
  // one found no work, to avoid burning a core on an idle tree.
  std::chrono::microseconds idlePause{100};
  // Pause after *every* traversal. The paper's rotator runs continuously on
  // a dedicated core; on machines with few cores a small duty-cycle
  // throttle keeps the rotator from starving the application threads
  // (used by the vacation tables, which run four trees at once).
  std::chrono::microseconds interPassPause{0};
  // Access-frequency splaying (docs/splaying.md). Requires rotations and
  // targeted maintenance: the access ticks ride the violation queue and the
  // promotions ride the maintenance rotation machinery. Ignored (treated as
  // Off) when either is disabled.
  SplayPolicy splay = SplayPolicy::Off;
  // Explicit knob override for tests/benches; unset maps the policy to its
  // built-in defaults (see SFTreeConfig::splayParams).
  std::optional<SplayParams> splayParamsOverride;

  SplayParams splayParams() const {
    if (splayParamsOverride) return *splayParamsOverride;
    SplayParams p;  // Conservative defaults
    if (splay == SplayPolicy::Aggressive) {
      // Aggressive turns up the *actuation* knobs only. Sampling stays at
      // the Conservative 1-in-64: the per-publish cost (commit hook + queue
      // CAS) is what the <= 2% read budget pays for, and the heat estimate
      // is ratio-scaled by the dominance margin, so denser ticks buy
      // nothing but read-path overhead (1-in-16 measured ~6%).
      p.minHeat = 4;
      p.promoteNum = 5;
      p.promoteDen = 4;
      p.minDepth = 1;
      p.slack = 32;
      p.rotationBudget = 256;
      p.decayHalfLifeNs = 500'000'000;
    }
    return p;
  }
};

struct MaintenanceStats {
  std::uint64_t traversals = 0;   // maintenance passes (targeted or sweep)
  std::uint64_t fullSweeps = 0;   // passes that included a full DFS sweep
  std::uint64_t rotations = 0;
  std::uint64_t removals = 0;
  std::uint64_t failedStructuralOps = 0;
  std::uint64_t nodesFreed = 0;
  std::uint64_t nodesRetired = 0;
  // Nodes examined by maintenance (every DFS visit + every root-path step):
  // the "maintenance work" numerator — divide by committed updates to get
  // the cost the targeted mode is built to shrink.
  std::uint64_t nodesVisited = 0;
  // Root-path steps a targeted drain avoided re-walking because consecutive
  // (key-sorted) entries shared a recorded prefix — visits that would have
  // counted into nodesVisited otherwise.
  std::uint64_t sharedPrefixSkips = 0;
  // Periodic fallback sweeps deferred because the drain carried no
  // structural violations (pure kAccess splay traffic); capped at 4x
  // fullSweepPeriod, after which the sweep runs regardless.
  std::uint64_t sweepsDeferred = 0;
  // --- splay heuristic (docs/splaying.md; all zero when SplayPolicy::Off) --
  std::uint64_t accessEntriesDrained = 0;  // kAccess queue entries consumed
  std::uint64_t accessTicksConsumed = 0;   // total sampled-tick weight folded
                                           // into node heat
  std::uint64_t splaySteps = 0;            // promotion rotations performed
  std::uint64_t splayZigZigs = 0;          // the subset done as zig-zig pairs
  std::uint64_t splayBudgetStops = 0;      // passes that hit rotationBudget
  std::uint64_t rebalanceSkippedHot = 0;   // demoting rotations skipped by
                                           // hot-protection slack
  // Depth (root-path length) at which drained access entries found their
  // node: the hot-set depth gauge — splaying should drag its mass left.
  obs::LogHistogram accessDepth;
  // Drain-pass latency (ns per maintainOnce pass, targeted or sweep).
  obs::LogHistogram passNs;
  // Violation-queue view (see ViolationQueueStats for field meanings).
  ViolationQueueStats queue;
};

class SFTree {
 public:
  explicit SFTree(SFTreeConfig cfg = {});
  ~SFTree();

  SFTree(const SFTree&) = delete;
  SFTree& operator=(const SFTree&) = delete;

  // --- abstract operations (thread-safe, transactional) --------------------
  // Each runs in its own transaction, or joins the caller's transaction when
  // invoked inside stm::atomically (flat nesting), which is what makes
  // composed operations such as move() atomic.
  bool insert(Key k, Value v);
  bool erase(Key k);
  bool contains(Key k);
  std::optional<Value> get(Key k);
  // Composed operation from the paper's reusability experiment (§5.4):
  // atomically relocate the value at `from` to key `to`.
  bool move(Key from, Key to);

  // Transaction-composable variants.
  bool insertTx(stm::Tx& tx, Key k, Value v);
  bool eraseTx(stm::Tx& tx, Key k);
  bool containsTx(stm::Tx& tx, Key k);
  std::optional<Value> getTx(stm::Tx& tx, Key k);
  // Snapshot count of present keys in [lo, hi]; composes with other
  // operations (consistent at commit). Reads the whole matching region
  // transactionally — expensive by design, but *possible*, unlike on trees
  // that bypass TM bookkeeping (paper §6).
  std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi);
  std::size_t countRange(Key lo, Key hi);

  // --- bulk relocation (shard migration) ------------------------------------
  // One extracted (key, value) pair of a batched range move.
  struct ExtractedKV {
    Key key;
    Value value;
  };
  // Migration source half of a batched range move: one in-order
  // transactional walk from `lo` upward that collects and logically deletes
  // the present keys `pred` accepts — a single amortized descent instead of
  // one find() per key. The walk stops after `maxN` extractions (or an
  // internal examine budget, so a pred that rejects a long stretch cannot
  // grow one transaction's read set without bound). `out` is cleared first:
  // the enclosing transaction may retry, and each attempt must rebuild it.
  // Returns true when the walk exhausted the key space; false when it
  // stopped early, with `nextLo` set to the first key not yet examined
  // (resume cursor). Must run under TxKind::Normal (elastic window cuts
  // could evict the walk's position reads; there is no pinning here).
  bool extractRangeTx(stm::Tx& tx, Key lo, std::size_t maxN,
                      const std::function<bool(Key)>& pred,
                      std::vector<ExtractedKV>& out, Key& nextLo);
  // Migration destination half: inserts every pair inside the enclosing
  // transaction — the per-key link-in is unavoidable, but one transaction
  // (and one cross-domain join) amortizes over the whole batch. Returns the
  // number actually inserted; a key already present is skipped, which the
  // caller should treat as an invariant violation (a migrating key lives in
  // exactly one committed shard).
  std::size_t adoptRangeTx(stm::Tx& tx, const ExtractedKV* kvs,
                           std::size_t n);
  // Read-only sibling of extractRangeTx: the same in-order walk, budgets
  // and resume cursor, but it only *collects* the present pred-matching
  // pairs — no logical deletes, no violation publishes, no size-estimate
  // settlement. Safe under TxKind::ReadOnly (every read is validated in
  // place; a stale read restarts the enclosing operation body), which is
  // what lets a checkpoint stream a tree chunk-by-chunk without ever
  // blocking or aborting writers. Must not run Elastic (window cuts could
  // evict the walk's position reads; there is no pinning here).
  bool scanRangeTx(stm::Tx& tx, Key lo, std::size_t maxN,
                   const std::function<bool(Key)>& pred,
                   std::vector<ExtractedKV>& out, Key& nextLo);
  // Exclusive absence check: returns false when k is present; otherwise
  // *write-locks* k's position (a value-preserving write to the null child
  // or the deleted flag, pinned like an update's position reads) and
  // returns true. Unlike containsTx the conclusion survives an elastic
  // transaction's window cuts (pins + the write fold the window), and a
  // concurrent insert of k collides write-write at commit instead of
  // serializing after us. ShardedMap's migration-window insert path uses
  // this as its safe-under-any-TxKind "prev lacks the key" check. (Note:
  // position locks alone cannot order routing-table transitions — an
  // unrelated insert can relocate k's insertion point past the reserved
  // position; cross-table ordering comes from the map's transactional
  // table read.)
  bool reserveAbsentTx(stm::Tx& tx, Key k);

  // --- maintenance control --------------------------------------------------
  void startMaintenance();
  void stopMaintenance();
  bool maintenanceRunning() const { return maintenanceThread_.joinable(); }
  // One full depth-first maintenance pass (propagation + rotations +
  // physical removals + GC epoch) on the calling thread; returns true when
  // the pass performed at least one structural change. This is the hook an
  // external scheduler drives; at most one thread may run it at a time and
  // it must not race the dedicated maintenance thread. `cancel` (optional)
  // aborts the traversal early when set to true.
  bool runMaintenancePass(const std::atomic<bool>* cancel = nullptr);
  // Runs maintenance traversals on the calling thread until a full pass
  // performs no structural change (tests; maintenance thread must be
  // stopped). Returns the number of passes.
  int quiesceNow(int maxPasses = 1000);

  MaintenanceStats maintenanceStats() const;

  // Registers this tree's snapshot metrics (maintenance counters incl. the
  // drain-pass histogram, queue occupancy, size estimate, arena footprint)
  // under "<prefix>." in `reg`. The tree must outlive the registration.
  [[nodiscard]] obs::MetricsRegistry::Registration registerMetrics(
      obs::MetricsRegistry& reg, std::string prefix);

  // Entries currently waiting in the violation queue (racy snapshot). This
  // is the occupancy an external scheduler uses to steer workers toward the
  // hottest shards.
  std::uint64_t violationQueueDepth() const { return violations_.depth(); }

  // Monotonic activity counter: bumped inside every update attempt that
  // reached its write (insertTx/eraseTx, so composed operations count too).
  // A hint, not an exact tally — aborted-and-retried transactions tick more
  // than once, which is fine for its purpose: an external scheduler
  // compares successive readings to tell hot trees from idle ones.
  std::uint64_t updateTicks() const {
    return updateTicks_.load(std::memory_order_relaxed);
  }

  // --- introspection (quiesced use: no concurrent operations) --------------
  std::size_t abstractSize();        // number of non-deleted reachable keys
  std::size_t structuralSize();      // number of reachable nodes
  int height();                      // height of the reachable tree
  std::vector<Key> keysInOrder();    // abstraction contents, sorted
  std::size_t limboPending() const { return limbo_.pending(); }

  // Committed-size estimate maintained outside transactions; exact once all
  // operations have returned.
  std::int64_t sizeEstimate() const {
    return sizeEstimate_.load(std::memory_order_relaxed);
  }
  // Estimate adjustment hook for composed multi-tree operations (e.g.
  // ShardedMap's migration-window single-key paths) that go through the
  // Tx-composable entry points and so bypass the insert/erase wrappers'
  // own bookkeeping.
  void bumpSizeEstimate(std::int64_t d) {
    sizeEstimate_.fetch_add(d, std::memory_order_relaxed);
  }
  // Read-only view of the node arena (shard-retirement diagnostics: the
  // slabs this tree's destruction frees wholesale).
  const mem::SlabArena& arenaForStats() const { return arena_.raw(); }

  const SFTreeConfig& config() const { return cfg_; }
  // The STM clock domain this tree runs on (the configured one, or the
  // process default).
  stm::Domain& domain() const { return domain_; }
  // Transaction kind for update operations (elastic only when safe; see
  // SFTreeConfig::txKind). Public so composed multi-tree operations (e.g.
  // ShardedMap::move) run under the same safety rule as the tree's own.
  stm::TxKind updateTxKind() const;
  // Transaction kind for read-only operations (contains/get/countRange):
  // the configured elastic mode, or zero-logging ReadOnly otherwise. Public
  // for the same composed-operation reason as updateTxKind.
  stm::TxKind readTxKind() const;
  SFNode* rootForTest() { return root_; }
  gc::ThreadRegistry& registryForTest() { return registry_; }

 private:

  // --- find (both variants) -------------------------------------------------
  // Returns the node with key k, or the node whose null child is the unique
  // insertion point for k (paper: find "returns the correct location").
  // `pin` (update paths) records the position reads — the candidate's
  // removed flag, the pinned null child, the parent link — in the permanent
  // read set so an elastic transaction's window cuts cannot evict them
  // before the first write folds the window in (see Tx::readPinned).
  SFNode* findPortable(stm::Tx& tx, Key k) const;
  SFNode* findOptimized(stm::Tx& tx, Key k, bool pin) const;
  SFNode* find(stm::Tx& tx, Key k, bool pin = false) const;

  // --- structural transactions (maintenance thread) ------------------------
  // `changed` is true when the tree was modified; the returned pointer is
  // the node that left the tree (to retire after commit), if any.
  // `leftChild` selects which child of `parent` is the target node.
  struct StructuralResult {
    bool changed = false;
    SFNode* unlinked = nullptr;
  };
  StructuralResult rotateRight(stm::Tx& tx, SFNode* parent, bool leftChild);
  StructuralResult rotateLeft(stm::Tx& tx, SFNode* parent, bool leftChild);
  StructuralResult removePhysical(stm::Tx& tx, SFNode* parent,
                                  bool leftChild);

  // Attempt wrappers running their own transaction and handling retirement.
  bool tryRotateRight(SFNode* parent, bool leftChild);
  bool tryRotateLeft(SFNode* parent, bool leftChild);
  bool tryRemovePhysical(SFNode* parent, bool leftChild);

  // --- maintenance ----------------------------------------------------------
  void maintenanceLoop();
  // One maintenance pass body: optional targeted drain plus (when
  // `fullSweep`) a depth-first sweep, bracketed by one GC epoch. A
  // `sweepDeferrable` sweep (the periodic fallback) is skipped when the
  // drain carried only kAccess entries — splay traffic is not the kind of
  // missed work the safety-net sweep exists to recover — until the deferral
  // cap (4x fullSweepPeriod) forces it.
  bool maintainOnce(const std::atomic<bool>* cancel, bool fullSweep,
                    bool sweepDeferrable = false);
  // Depth-first sweep: propagates heights, triggers rotations/removals.
  void maintainSubtree(SFNode* parent, SFNode* node, bool leftChild,
                       bool& didWork, int depth,
                       const std::atomic<bool>* cancel);
  // Targeted path: drains the violation queue into drainBuf_, sorts the
  // entries by key (consecutive entries then share maximal root-path
  // prefixes, which processViolation reuses), and repairs each. Returns
  // true when structural work happened; sets `sawStructural` when any
  // drained entry was a structural kind (kInsert/kErase), the signal the
  // sweep-deferral backoff keys on.
  bool drainViolations(const std::atomic<bool>* cancel, bool& sawStructural);
  // Repairs one drained queue entry. The kind selects the repair: kInsert
  // rebalances the root-path (no removal probes — any removable node has
  // its own kErase entry), kErase probes the physical removal and skips the
  // bottom-up rebalance when nothing was unlinked (heights unchanged),
  // kAccess folds `ticks` into the node's heat and may splay it toward the
  // root (docs/splaying.md). With `reusePath`, the walk first follows the
  // path recorded in pathBuf_ by the previous entry as far as it matches
  // k's search path (valid only when that entry did no structural work —
  // concurrent mutators only link fresh leaves, so recorded interior nodes
  // stay on their root-paths; only this worker's own rotations/removals
  // invalidate them).
  void processViolation(Key k, ViolationKind kind, std::uint32_t ticks,
                        bool& didWork, bool reusePath);
  // If the node hanging off (parent, leftChild) is a removable logically
  // deleted node, unlink it and load its replacement into `node`. Returns
  // true on a successful removal.
  bool tryRemoveAt(SFNode* parent, SFNode*& node, bool leftChild,
                   bool& didWork);
  // Refreshes node's balance estimates from its children's stored estimates
  // and rotates when the AVL bound is violated (`node` may be retired by
  // the rotation; the caller re-reads the parent's link afterwards).
  // Returns true when the node's stored height changed or a rotation was
  // attempted — i.e. when the ancestors' estimates may now be stale. A
  // false return lets a root-path walk stop propagating early (the classic
  // AVL fixup termination).
  bool rebalanceAt(SFNode* parent, SFNode* node, bool leftChild,
                   bool& didWork);
  // Publishes a violation at key k when this update transaction commits.
  void captureViolation(stm::Tx& tx, Key k, ViolationKind kind);
  // Read-path side of the splay heuristic: publishes a sampled kAccess tick
  // at commit (1 per 2^sampleShift lookup hits per thread; no-op unless
  // splaying is enabled, so the read path pays one predictable branch).
  void captureAccess(stm::Tx& tx, Key k);
  // Node heat, normalized to the current decay epoch (maintenance worker
  // only, like the balance estimates).
  std::uint32_t decayedHeat(const SFNode* n) const;
  void bumpHeat(SFNode* n, std::uint32_t ticks);
  // Bounded promotion loop: rotates `node` (position (parent, leftChild),
  // ancestors in pathBuf_) toward the root while it dominates its parent's
  // heat, preferring zig-zig pairs on aligned links. Updates the position
  // arguments and pops the promoted levels off pathBuf_.
  void splayPromote(SFNode*& parent, SFNode*& node, bool& leftChild,
                    bool& didWork);
  void retireNode(SFNode* n);

  // In-order walker behind extractRangeTx and scanRangeTx (ExtractCtx::
  // mutate selects between them). Returns true to keep going, false once a
  // budget stopped the walk (c.nextLo set to the first unexamined key).
  struct ExtractCtx;
  bool extractWalk(stm::Tx& tx, SFNode* n, Key lo, ExtractCtx& c);

  static void deleteNode(void* p) { mem::NodeArena<SFNode>::destroy(p); }

  SFTreeConfig cfg_;
  stm::Domain& domain_;
  // Node storage. Declared before the limbo list so retired nodes can still
  // recycle into it during destruction; one arena per tree keeps a
  // per-shard-domain deployment's node memory per domain.
  mem::NodeArena<SFNode> arena_;
  SFNode* root_;  // sentinel, key == kInfiniteKey, never rotated/removed

  gc::ThreadRegistry registry_;
  gc::LimboList limbo_;  // touched only by the maintenance thread

  // Mutator -> maintenance violation channel. True when updates publish
  // into it (targeted mode with some restructuring enabled).
  ViolationQueue violations_;
  bool captureViolations_ = false;

  // Splay heuristic state (docs/splaying.md). splayEnabled_ folds the
  // policy with its prerequisites (rotations + targeted maintenance) so the
  // read path tests one bool. The epoch/budget fields follow the
  // maintenance-worker-only discipline of passVisited_.
  bool splayEnabled_ = false;
  SplayParams splay_{};
  std::uint32_t accessSampleMask_ = 0;
  std::uint64_t createdTick_ = 0;
  std::uint32_t heatEpochNow_ = 0;
  std::uint32_t splayBudgetLeft_ = 0;
  bool splayBudgetHit_ = false;

  std::thread maintenanceThread_;
  std::atomic<bool> stopFlag_{false};
  MaintenanceStats maintStats_;
  mutable std::mutex maintStatsMu_;
  // Passes since the last full sweep, and nodes visited by the current
  // pass (maintenance thread / single external worker only, like the limbo
  // list; passVisited_ folds into maintStats_ under the mutex per pass).
  int passesSinceSweep_ = 0;
  std::uint64_t passVisited_ = 0;
  // Scratch for processViolation's root-path walk (consumer-only).
  struct PathStep {
    SFNode* parent;
    SFNode* node;
    bool leftChild;
  };
  std::vector<PathStep> pathBuf_;
  // Drain batch scratch (consumer-only): entries collected per pass, sorted
  // by key for the shared-prefix walk reuse. passPrefixSkips_ accumulates
  // the avoided steps and folds into maintStats_ like passVisited_.
  struct DrainEntry {
    Key key;
    std::uint32_t weight;
    ViolationKind kind;
  };
  std::vector<DrainEntry> drainBuf_;
  std::uint64_t passPrefixSkips_ = 0;

  std::atomic<std::int64_t> sizeEstimate_{0};
  std::atomic<std::uint64_t> updateTicks_{0};
};

}  // namespace sftree::trees
