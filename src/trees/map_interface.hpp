// Type-erased transactional map interface: lets the benchmark harness, the
// vacation application and the tests swap tree implementations (the paper's
// RBtree / AVLtree / SFtree / Opt-SFtree / NRtree) behind one API.
#pragma once

#include <chrono>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stm/stm.hpp"
#include "trees/key.hpp"

namespace sftree::shard {
class MaintenanceScheduler;
}

namespace sftree::trees {

class ITransactionalMap {
 public:
  virtual ~ITransactionalMap() = default;

  // Self-contained operations (each runs its own transaction, or joins an
  // enclosing one by flat nesting).
  virtual bool insert(Key k, Value v) = 0;
  virtual bool erase(Key k) = 0;
  virtual bool contains(Key k) = 0;
  virtual std::optional<Value> get(Key k) = 0;
  virtual bool move(Key from, Key to) = 0;

  // Transaction-composable variants for building larger atomic operations
  // (used by the vacation application).
  virtual bool insertTx(stm::Tx& tx, Key k, Value v) = 0;
  virtual bool eraseTx(stm::Tx& tx, Key k) = 0;
  virtual bool containsTx(stm::Tx& tx, Key k) = 0;
  virtual std::optional<Value> getTx(stm::Tx& tx, Key k) = 0;

  // Transactional range count over [lo, hi] — the kind of composed
  // operation the paper notes is impossible to retrofit onto trees that
  // sidestep TM bookkeeping (§6, the Bronson et al. size() discussion).
  // Consistent snapshot semantics: composes with other operations.
  virtual std::size_t countRangeTx(stm::Tx& tx, Key lo, Key hi) = 0;
  virtual std::size_t countRange(Key lo, Key hi) {
    // ReadOnly hint: zero-logging snapshot reads; a write in an override's
    // body would transparently promote, so this is always safe.
    return stm::atomically(
        stm::TxKind::ReadOnly,
        [&](stm::Tx& tx) { return countRangeTx(tx, lo, hi); });
  }
  // Transactional size: a snapshot cardinality of the whole set.
  virtual std::size_t sizeTx(stm::Tx& tx) {
    return countRangeTx(tx, std::numeric_limits<Key>::min(),
                        kInfiniteKey - 1);
  }

  // Quiesced introspection (no concurrent operations).
  virtual std::size_t size() = 0;
  virtual int height() = 0;
  virtual std::vector<Key> keysInOrder() = 0;

  // Blocks until background restructuring (if any) has settled; no-op for
  // trees without a maintenance thread.
  virtual void quiesce() {}
};

// The tree configurations evaluated in the paper.
enum class MapKind {
  SFTree,     // speculation-friendly tree, portable ops (Algorithm 1)
  OptSFTree,  // speculation-friendly tree, optimized ops (Algorithm 2)
  NRTree,     // no-restructuring baseline (no rotations, no removal)
  RBTree,     // transactional red-black tree (Oracle/STAMP baseline)
  AVLTree,    // transactional AVL tree (STAMP baseline)
  // NOT thread-safe: a plain std::map with no synchronization, used as the
  // "bare sequential code" baseline of the paper's Figure 6 speedups.
  // Single-threaded use only; excluded from allMapKinds().
  SeqSTL,
};

const char* mapKindName(MapKind kind);
// The five concurrent trees (excludes the sequential baseline).
std::vector<MapKind> allMapKinds();

// Extra construction knobs (only meaningful for trees with a maintenance
// thread; ignored elsewhere).
struct MapOptions {
  // Duty-cycle throttle for the rotator thread; 0 = run continuously as in
  // the paper. Only used when the tree runs its own dedicated maintenance
  // thread (scheduler == nullptr).
  std::chrono::microseconds maintenanceThrottle{0};
  // STM clock domain the map's transactions run against; null selects the
  // process default (ignored by the sequential baseline).
  stm::Domain* domain = nullptr;
  // Shared maintenance pool (not owned; must outlive the map). When set,
  // trees that need restructuring are built externally maintained and
  // register their maintenance pass with this scheduler instead of
  // spawning a dedicated thread each.
  shard::MaintenanceScheduler* scheduler = nullptr;
  // Name for the scheduler entry (diagnostics: MaintenanceScheduler::
  // treeStats). Defaults to the map kind's name.
  std::string name;
};

// Factory. `txKind` selects the TM mode the tree's operations use
// (Normal == TinySTM-style opaque transactions, Elastic == E-STM).
std::unique_ptr<ITransactionalMap> makeMap(
    MapKind kind, stm::TxKind txKind = stm::TxKind::Normal,
    const MapOptions& options = {});

}  // namespace sftree::trees
