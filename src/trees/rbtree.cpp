#include "trees/rbtree.hpp"

#include "gc/tx_guard.hpp"

#include <algorithm>
#include <stack>

namespace sftree::trees {

namespace {

inline bool isBlack(stm::Tx& tx, RBNode* n) {
  return n == nullptr || n->color.read(tx) == RBColor::Black;
}

}  // namespace

RBTree::RBTree(RBTreeConfig cfg)
    : cfg_(cfg),
      domain_(cfg.domain != nullptr ? *cfg.domain : stm::defaultDomain()) {}

RBTree::~RBTree() {
  // Free the reachable tree; the limbo list destructor frees unlinked
  // nodes. Callers guarantee no concurrent access during destruction.
  std::stack<RBNode*> stack;
  if (RBNode* r = root_.loadRelaxed()) stack.push(r);
  while (!stack.empty()) {
    RBNode* n = stack.top();
    stack.pop();
    if (RBNode* l = n->left.loadRelaxed()) stack.push(l);
    if (RBNode* r = n->right.loadRelaxed()) stack.push(r);
    deleteNode(n);
  }
}

RBNode* RBTree::searchTx(stm::Tx& tx, Key k) {
  RBNode* x = root_.read(tx);
  while (x != nullptr && x->key != k) {
    x = (k < x->key) ? x->left.read(tx) : x->right.read(tx);
  }
  return x;
}

void RBTree::leftRotate(stm::Tx& tx, RBNode* x) {
  RBNode* y = x->right.read(tx);
  RBNode* yl = y->left.read(tx);
  x->right.write(tx, yl);
  if (yl != nullptr) yl->parent.write(tx, x);
  RBNode* xp = x->parent.read(tx);
  y->parent.write(tx, xp);
  if (xp == nullptr) {
    root_.write(tx, y);
  } else if (xp->left.read(tx) == x) {
    xp->left.write(tx, y);
  } else {
    xp->right.write(tx, y);
  }
  y->left.write(tx, x);
  x->parent.write(tx, y);
}

void RBTree::rightRotate(stm::Tx& tx, RBNode* x) {
  RBNode* y = x->left.read(tx);
  RBNode* yr = y->right.read(tx);
  x->left.write(tx, yr);
  if (yr != nullptr) yr->parent.write(tx, x);
  RBNode* xp = x->parent.read(tx);
  y->parent.write(tx, xp);
  if (xp == nullptr) {
    root_.write(tx, y);
  } else if (xp->right.read(tx) == x) {
    xp->right.write(tx, y);
  } else {
    xp->left.write(tx, y);
  }
  y->right.write(tx, x);
  x->parent.write(tx, y);
}

void RBTree::insertFixup(stm::Tx& tx, RBNode* z) {
  for (;;) {
    RBNode* zp = z->parent.read(tx);
    if (zp == nullptr || zp->color.read(tx) == RBColor::Black) break;
    RBNode* zpp = zp->parent.read(tx);  // red parent => grandparent exists
    if (zp == zpp->left.read(tx)) {
      RBNode* uncle = zpp->right.read(tx);
      if (uncle != nullptr && uncle->color.read(tx) == RBColor::Red) {
        zp->color.write(tx, RBColor::Black);
        uncle->color.write(tx, RBColor::Black);
        zpp->color.write(tx, RBColor::Red);
        z = zpp;
        continue;
      }
      if (z == zp->right.read(tx)) {
        z = zp;
        leftRotate(tx, z);
        zp = z->parent.read(tx);
        zpp = zp->parent.read(tx);
      }
      zp->color.write(tx, RBColor::Black);
      zpp->color.write(tx, RBColor::Red);
      rightRotate(tx, zpp);
    } else {
      RBNode* uncle = zpp->left.read(tx);
      if (uncle != nullptr && uncle->color.read(tx) == RBColor::Red) {
        zp->color.write(tx, RBColor::Black);
        uncle->color.write(tx, RBColor::Black);
        zpp->color.write(tx, RBColor::Red);
        z = zpp;
        continue;
      }
      if (z == zp->left.read(tx)) {
        z = zp;
        rightRotate(tx, z);
        zp = z->parent.read(tx);
        zpp = zp->parent.read(tx);
      }
      zp->color.write(tx, RBColor::Black);
      zpp->color.write(tx, RBColor::Red);
      leftRotate(tx, zpp);
    }
  }
  RBNode* root = root_.read(tx);
  if (root->color.read(tx) != RBColor::Black) {
    root->color.write(tx, RBColor::Black);
  }
}

bool RBTree::insertTx(stm::Tx& tx, Key k, Value v) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  RBNode* y = nullptr;
  RBNode* x = root_.read(tx);
  while (x != nullptr) {
    if (x->key == k) return false;  // present: set semantics
    y = x;
    x = (k < x->key) ? x->left.read(tx) : x->right.read(tx);
  }
  RBNode* z = arena_.create(k, v);
  tx.onAbortDelete(z, &RBTree::deleteNode);
  z->parent.storeRelaxed(y);
  if (y == nullptr) {
    root_.write(tx, z);
  } else if (k < y->key) {
    y->left.write(tx, z);
  } else {
    y->right.write(tx, z);
  }
  insertFixup(tx, z);
  return true;
}

void RBTree::transplant(stm::Tx& tx, RBNode* u, RBNode* v) {
  RBNode* up = u->parent.read(tx);
  if (up == nullptr) {
    root_.write(tx, v);
  } else if (up->left.read(tx) == u) {
    up->left.write(tx, v);
  } else {
    up->right.write(tx, v);
  }
  if (v != nullptr) v->parent.write(tx, up);
}

void RBTree::eraseFixup(stm::Tx& tx, RBNode* x, RBNode* xParent) {
  while (x != root_.read(tx) && isBlack(tx, x)) {
    // x may be null, but then xParent identifies its (conceptual) position.
    if (x == xParent->left.read(tx)) {
      RBNode* w = xParent->right.read(tx);  // sibling: non-null (black height)
      if (w->color.read(tx) == RBColor::Red) {
        w->color.write(tx, RBColor::Black);
        xParent->color.write(tx, RBColor::Red);
        leftRotate(tx, xParent);
        w = xParent->right.read(tx);
      }
      RBNode* wl = w->left.read(tx);
      RBNode* wr = w->right.read(tx);
      if (isBlack(tx, wl) && isBlack(tx, wr)) {
        w->color.write(tx, RBColor::Red);
        x = xParent;
        xParent = x->parent.read(tx);
      } else {
        if (isBlack(tx, wr)) {
          if (wl != nullptr) wl->color.write(tx, RBColor::Black);
          w->color.write(tx, RBColor::Red);
          rightRotate(tx, w);
          w = xParent->right.read(tx);
          wr = w->right.read(tx);
        }
        w->color.write(tx, xParent->color.read(tx));
        xParent->color.write(tx, RBColor::Black);
        if (wr != nullptr) wr->color.write(tx, RBColor::Black);
        leftRotate(tx, xParent);
        x = root_.read(tx);
        break;
      }
    } else {
      RBNode* w = xParent->left.read(tx);
      if (w->color.read(tx) == RBColor::Red) {
        w->color.write(tx, RBColor::Black);
        xParent->color.write(tx, RBColor::Red);
        rightRotate(tx, xParent);
        w = xParent->left.read(tx);
      }
      RBNode* wr = w->right.read(tx);
      RBNode* wl = w->left.read(tx);
      if (isBlack(tx, wr) && isBlack(tx, wl)) {
        w->color.write(tx, RBColor::Red);
        x = xParent;
        xParent = x->parent.read(tx);
      } else {
        if (isBlack(tx, wl)) {
          if (wr != nullptr) wr->color.write(tx, RBColor::Black);
          w->color.write(tx, RBColor::Red);
          leftRotate(tx, w);
          w = xParent->left.read(tx);
          wl = w->left.read(tx);
        }
        w->color.write(tx, xParent->color.read(tx));
        xParent->color.write(tx, RBColor::Black);
        if (wl != nullptr) wl->color.write(tx, RBColor::Black);
        rightRotate(tx, xParent);
        x = root_.read(tx);
        break;
      }
    }
  }
  if (x != nullptr && x->color.read(tx) != RBColor::Black) {
    x->color.write(tx, RBColor::Black);
  }
}

bool RBTree::eraseTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  RBNode* z = searchTx(tx, k);
  if (z == nullptr) return false;

  RBNode* x = nullptr;
  RBNode* xParent = nullptr;
  RBColor removedColor = z->color.read(tx);
  RBNode* zl = z->left.read(tx);
  RBNode* zr = z->right.read(tx);

  if (zl == nullptr) {
    x = zr;
    xParent = z->parent.read(tx);
    transplant(tx, z, zr);
  } else if (zr == nullptr) {
    x = zl;
    xParent = z->parent.read(tx);
    transplant(tx, z, zl);
  } else {
    // Successor y = leftmost node of the right subtree replaces z.
    RBNode* y = zr;
    for (RBNode* yl = y->left.read(tx); yl != nullptr;
         yl = y->left.read(tx)) {
      y = yl;
    }
    removedColor = y->color.read(tx);
    x = y->right.read(tx);
    if (y->parent.read(tx) == z) {
      xParent = y;
    } else {
      xParent = y->parent.read(tx);
      transplant(tx, y, x);
      y->right.write(tx, zr);
      zr->parent.write(tx, y);
    }
    transplant(tx, z, y);
    zl = z->left.read(tx);  // unchanged, but re-read for clarity
    y->left.write(tx, zl);
    zl->parent.write(tx, y);
    y->color.write(tx, z->color.read(tx));
  }

  if (removedColor == RBColor::Black) {
    eraseFixup(tx, x, xParent);
  }
  // z is unlinked once this (outermost) transaction commits; defer the
  // retirement until then so an aborted enclosing transaction never retires
  // a node that is still reachable.
  tx.onCommit([this, z] { retireNode(z); });
  return true;
}

bool RBTree::insert(Key k, Value v) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r =
      stm::atomically(domain_, [&](stm::Tx& tx) { return insertTx(tx, k, v); });
  st.endOp();
  return r;
}

bool RBTree::erase(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, [&](stm::Tx& tx) { return eraseTx(tx, k); });
  st.endOp();
  return r;
}

bool RBTree::contains(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, readTxKind(), [&](stm::Tx& tx) {
    return containsTx(tx, k);
  });
  st.endOp();
  return r;
}

bool RBTree::containsTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  return searchTx(tx, k) != nullptr;
}

std::optional<Value> RBTree::getTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  RBNode* n = searchTx(tx, k);
  if (n == nullptr) return std::nullopt;
  return n->value.read(tx);
}

std::optional<Value> RBTree::get(Key k) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const auto r = stm::atomically(domain_, readTxKind(),
                                 [&](stm::Tx& tx) { return getTx(tx, k); });
  st.endOp();
  return r;
}

bool RBTree::move(Key from, Key to) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  const bool r = stm::atomically(domain_, [&](stm::Tx& tx) {
    if (containsTx(tx, to)) return false;
    const std::optional<Value> v = getTx(tx, from);
    if (!v) return false;
    eraseTx(tx, from);
    if (!insertTx(tx, to, *v)) tx.restart();  // never lose the erased key
    return true;
  });
  st.endOp();
  return r;
}

namespace {
std::size_t rbCountRange(stm::Tx& tx, RBNode* n, Key lo, Key hi) {
  if (n == nullptr) return 0;
  std::size_t count = 0;
  if (lo < n->key) count += rbCountRange(tx, n->left.read(tx), lo, hi);
  if (lo <= n->key && n->key <= hi) ++count;
  if (hi > n->key) count += rbCountRange(tx, n->right.read(tx), lo, hi);
  return count;
}
}  // namespace

std::size_t RBTree::countRangeTx(stm::Tx& tx, Key lo, Key hi) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  return rbCountRange(tx, root_.read(tx), lo, hi);
}

std::size_t RBTree::countRange(Key lo, Key hi) {
  auto& st = stm::threadStats(domain_);
  st.beginOp();
  // ReadOnly unconditionally — never elastic (countRange promises a
  // consistent snapshot; see SFTree::countRange).
  const auto r = stm::atomically(
      domain_, stm::TxKind::ReadOnly,
      [&](stm::Tx& tx) { return countRangeTx(tx, lo, hi); });
  st.endOp();
  return r;
}

void RBTree::retireNode(RBNode* n) {
  std::lock_guard<std::mutex> lk(limboMu_);
  limbo_.retire(n, &RBTree::deleteNode);
  // Amortized collection: close out the previous epoch if it quiesced and
  // open a new one.
  if (++retireTick_ % 64 == 0) {
    limbo_.tryCollect(registry_);
    limbo_.openEpoch(registry_);
  }
}

std::size_t RBTree::size() {
  std::size_t n = 0;
  std::stack<RBNode*> stack;
  if (RBNode* r = root_.loadRelaxed()) stack.push(r);
  while (!stack.empty()) {
    RBNode* x = stack.top();
    stack.pop();
    ++n;
    if (RBNode* l = x->left.loadRelaxed()) stack.push(l);
    if (RBNode* r = x->right.loadRelaxed()) stack.push(r);
  }
  return n;
}

namespace {
int rbHeight(RBNode* n) {
  if (n == nullptr) return 0;
  return 1 + std::max(rbHeight(n->left.loadRelaxed()),
                      rbHeight(n->right.loadRelaxed()));
}
void rbInorder(RBNode* n, std::vector<Key>& out) {
  if (n == nullptr) return;
  rbInorder(n->left.loadRelaxed(), out);
  out.push_back(n->key);
  rbInorder(n->right.loadRelaxed(), out);
}
}  // namespace

int RBTree::height() { return rbHeight(root_.loadRelaxed()); }

std::vector<Key> RBTree::keysInOrder() {
  std::vector<Key> out;
  rbInorder(root_.loadRelaxed(), out);
  return out;
}

}  // namespace sftree::trees
