// Typed word-sized transactional fields.
//
// A TxField<T> is the unit of sharing: all concurrent access goes through a
// transaction (read/write/uread). Plain accessors exist for initialization
// and for single-owner contexts (e.g. the maintenance thread's private
// balance metadata) and are named to make that visible at call sites.
#pragma once

#include <atomic>
#include <type_traits>

#include "stm/tx.hpp"
#include "stm/word.hpp"

namespace sftree::stm {

template <typename T>
class TxField {
 public:
  TxField() : raw_(RawCodec<T>::encode(T{})) {}
  explicit TxField(T v) : raw_(RawCodec<T>::encode(v)) {}

  TxField(const TxField&) = delete;
  TxField& operator=(const TxField&) = delete;

  // Transactional read (recorded in the read set / elastic window).
  // Non-pointer fields route through readScalar, which batched NOrec
  // read-only transactions may validate lazily; pointer fields always take
  // the per-read-validated path so a traversal never dereferences an
  // unvalidated pointer (see Tx::readScalar).
  T read(Tx& tx) const {
    if constexpr (std::is_pointer_v<T>) {
      return RawCodec<T>::decode(tx.read(&raw_));
    } else {
      return RawCodec<T>::decode(tx.readScalar(&raw_));
    }
  }

  // Transactional write (buffered until commit).
  void write(Tx& tx, T v) {
    tx.write(&raw_, RawCodec<T>::encode(v));
  }

  // Unit load: latest committed value, no read-set entry (paper's uread).
  T uread(Tx& tx) const {
    return RawCodec<T>::decode(tx.uread(&raw_));
  }

  // Transactional read pinned into the permanent read set even during an
  // elastic transaction's window phase (see Tx::readPinned): for position
  // reads an update's correctness depends on.
  T readPinned(Tx& tx) const {
    return RawCodec<T>::decode(tx.readPinned(&raw_));
  }

  // Latest value outside any transaction. Single-word atomic; may observe a
  // value an in-flight commit is writing back, so only use where that is
  // acceptable (diagnostics, quiesced checks, single-owner metadata).
  T loadRelaxed() const {
    return RawCodec<T>::decode(
        std::atomic_ref<Word>(const_cast<Word&>(raw_))
            .load(std::memory_order_relaxed));
  }

  // As loadRelaxed, but acquire-ordered: pairs with the STM's release
  // write-back so that dereferencing a pointer loaded this way observes the
  // pointee's initialization (maintenance-thread traversals).
  T loadAcquire() const {
    return RawCodec<T>::decode(
        std::atomic_ref<Word>(const_cast<Word&>(raw_))
            .load(std::memory_order_acquire));
  }

  // Non-transactional store for initialization or single-owner fields.
  void storeRelaxed(T v) {
    std::atomic_ref<Word>(raw_).store(RawCodec<T>::encode(v),
                                      std::memory_order_relaxed);
  }

 private:
  alignas(sizeof(Word)) Word raw_;
};

}  // namespace sftree::stm
