// Ownership records (orecs) and the global orec table.
//
// Every shared word hashes to one orec. An orec word encodes either
//   * unlocked + version:  (version << 1)          -- LSB clear
//   * locked by tx:        (descriptor ptr | 1)    -- LSB set
// Versions are commit timestamps from the global clock, so they strictly
// increase; the pointer encoding relies on descriptors being 8-byte aligned.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "stm/word.hpp"

namespace sftree::stm {

class Tx;  // forward declaration; orecs store owner pointers when locked

using OrecWord = std::uint64_t;

namespace orec {

inline constexpr OrecWord kLockBit = 1;

inline bool isLocked(OrecWord w) { return (w & kLockBit) != 0; }

inline std::uint64_t version(OrecWord w) { return w >> 1; }

inline OrecWord makeVersion(std::uint64_t ts) { return ts << 1; }

inline OrecWord makeLocked(const Tx* owner) {
  return reinterpret_cast<OrecWord>(owner) | kLockBit;
}

inline Tx* owner(OrecWord w) {
  return reinterpret_cast<Tx*>(w & ~kLockBit);
}

}  // namespace orec

// A fixed-size striped lock/version table, one per stm::Domain. The table
// is deliberately not resizable: the memory addressed by transactions maps
// onto it by hashing, exactly as in TinySTM's ownership array.
class OrecTable {
 public:
  // Default: 2^20 orecs * 8 B = 8 MiB. Large enough that false conflicts
  // are rare in the benchmarks, small enough to stay cache-friendly. A
  // domain guarding a fraction of the process's transactional traffic can
  // be constructed smaller (Config::orecLogSize). Tests can additionally
  // exercise hash collisions by artificially shrinking the mask (see
  // maskForTest).
  static constexpr std::size_t kLogSize = 20;
  static constexpr std::size_t kSize = std::size_t{1} << kLogSize;

  explicit OrecTable(std::size_t logSize = kLogSize)
      : size_(std::size_t{1} << logSize),
        mask_(size_ - 1),
        // Value-initialized: all orecs start unlocked at version 0.
        table_(std::make_unique<std::atomic<OrecWord>[]>(size_)) {}

  std::atomic<OrecWord>* forAddress(const void* addr) {
    // Word-granularity mapping with a Fibonacci multiplicative mix so that
    // consecutive fields of one node spread across stripes.
    auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    a *= 0x9E3779B97F4A7C15ULL;
    return &table_[(a >> 16) & mask_];
  }

  // Test hook: constrain the effective table size to force collisions.
  void setMaskForTest(std::size_t mask) { mask_ = mask; }
  std::size_t mask() const { return mask_; }

  void resetForTest() {
    for (std::size_t i = 0; i <= mask_; ++i) {
      table_[i].store(0, std::memory_order_relaxed);
    }
    mask_ = size_ - 1;
  }

 private:
  std::size_t size_;
  std::size_t mask_;
  std::unique_ptr<std::atomic<OrecWord>[]> table_;
};

}  // namespace sftree::stm
