// Word-level type plumbing for the software transactional memory.
//
// The STM operates on machine words (uintptr_t). Every shared field that a
// transaction may access must be exactly one word wide and word-aligned;
// RawCodec converts the user-visible field types (integers, pointers, bools,
// enums) to and from that representation.
#pragma once

#include <cstdint>
#include <type_traits>

namespace sftree::stm {

using Word = std::uintptr_t;

static_assert(sizeof(Word) == 8, "the STM assumes a 64-bit platform");

// Converts T <-> Word. Only word-sized-or-smaller trivially copyable types
// are supported; wider payloads must be boxed behind a pointer.
template <typename T>
struct RawCodec {
  static_assert(sizeof(T) <= sizeof(Word),
                "transactional fields must fit in one machine word");
  static_assert(std::is_trivially_copyable_v<T>,
                "transactional fields must be trivially copyable");

  static Word encode(T value) {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<Word>(value);
    } else if constexpr (std::is_enum_v<T>) {
      return static_cast<Word>(static_cast<std::underlying_type_t<T>>(value));
    } else if constexpr (std::is_integral_v<T>) {
      // Sign-extends through the unsigned conversion and back symmetrically.
      return static_cast<Word>(value);
    } else {
      static_assert(std::is_pointer_v<T> || std::is_enum_v<T> ||
                        std::is_integral_v<T>,
                    "unsupported transactional field type");
      return 0;
    }
  }

  static T decode(Word raw) {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<T>(raw);
    } else if constexpr (std::is_enum_v<T>) {
      return static_cast<T>(static_cast<std::underlying_type_t<T>>(raw));
    } else {
      return static_cast<T>(raw);
    }
  }
};

}  // namespace sftree::stm
