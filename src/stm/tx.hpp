// Transaction descriptor: read/write sets, speculative loads and stores,
// commit and abort.
//
// The algorithm is a word-based, lazy-snapshot STM in the TL2/TinySTM
// family:
//   * a transaction records its begin snapshot `rv` from the domain clock;
//   * every transactional read double-checks the orec around the data load
//     and, when the location is newer than `rv`, tries to *extend* the
//     snapshot by revalidating the read set against the current clock;
//   * writes are buffered (write-back) in both lock modes; Lazy (CTL) locks
//     orecs at commit, Eager (ETL) locks them at the first write;
//   * commit increments the clock, validates the read set (unless the
//     transaction saw the immediately preceding timestamp), writes back and
//     releases the orecs with the new version.
//
// Unit loads (`uread`) return the latest committed value without any read
// set bookkeeping; elastic transactions keep a sliding window of the most
// recent reads instead of the full read set until their first write.
//
// --- Read-only mode --------------------------------------------------------
// TxKind::ReadOnly runs the orec backend with *zero* read-set logging: every
// read is validated in place against the begin snapshot (sandwiched load,
// version <= rv), so commit has nothing to validate and nothing to log. A
// read that observes a newer version cannot extend the snapshot (there is no
// read set to revalidate), so it re-reads the clock and restarts the
// operation body at the fresh snapshot — counted as an RO snapshot
// extension, not an abort, and exempt from backoff. A write inside a
// ReadOnly transaction (or too many stale restarts in a row) transparently
// promotes the transaction: the attempt restarts in Normal (read-write)
// mode, so the hint can never cost correctness. On NOrec, ReadOnly keeps
// the value log (NOrec cannot validate without it) but skips all write-set
// machinery.
//
// --- Write-set lookup ------------------------------------------------------
// Read-after-write and locked-orec lookups are gated by a coarse address
// bloom filter and served by the write set directly while it is small; past
// kWriteIndexThreshold entries two per-transaction open-addressing tables
// (address -> entry, locked orec -> holding entry) replace the linear scan,
// so large transactions (tree rotations, move, vacation) stop paying O(W)
// per access.
//
// --- Clock domains ---------------------------------------------------------
// A transaction is rooted in one stm::Domain (the argument of atomically)
// but may *join* further domains mid-flight via DomainScope — this is how a
// cross-shard move composes two trees that live on different clocks. The
// descriptor keeps one DomainView (snapshot rv, commit timestamp wv) per
// joined domain; reads and writes are attributed to the innermost scope's
// domain. Snapshot extension in any domain revalidates the *entire* read
// set, which is what makes the combined multi-domain snapshot consistent.
// Commit acquires write locks domain-by-domain in canonical (pointer)
// order, ticks each written domain's clock for a per-domain timestamp,
// validates, writes back and releases — so the transaction becomes visible
// in all domains atomically. All joined domains must share one TM backend;
// the root domain's lock mode and elastic window govern the transaction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/abort_cause.hpp"
#include "stm/clock.hpp"
#include "stm/config.hpp"
#include "stm/hooks.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "stm/word.hpp"

namespace sftree::stm {

class Domain;

// Thrown by the STM to roll back a speculative execution; caught only by the
// retry loop in stm::atomically. User code must never swallow it.
struct TxAbort {};

class alignas(64) Tx {
 public:
  Tx();
  ~Tx();

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // --- lifecycle (called by stm::atomically) -------------------------------
  // `stats` is the calling thread's slot for `d` (the root domain); every
  // counter this attempt produces — including accesses made in joined
  // domains — is attributed to the root domain's registry.
  void begin(Domain& d, TxKind kind, ThreadStats& stats);
  void commit();
  // Releases any held locks, bumps stats, prepares for retry. Does not throw.
  void onAbort();
  bool active() const { return active_; }
  TxKind kind() const { return kind_; }
  // True while this attempt runs in zero-logging read-only mode.
  bool readOnlyMode() const { return ro_; }
  std::uint32_t attempts() const { return attempts_; }
  void resetAttempts() {
    attempts_ = 0;
    roPromoted_ = false;  // the RO hint applies afresh to the next operation
  }
  // True once, after an abort that was a deliberate restart (RO snapshot
  // refresh or RO->RW promotion) rather than a conflict: the retry loop
  // skips contention backoff for it.
  bool consumeBackoffWaiver() {
    const bool w = backoffWaiver_;
    backoffWaiver_ = false;
    return w;
  }

  // The domain the current attempt was begun in. Precondition: begin() has
  // run at least once.
  Domain& rootDomain() const { return *views_.front().domain; }
  // The domain the next access will be attributed to (innermost scope).
  Domain& currentDomain() const { return *views_[curView_].domain; }

  // --- domain scoping (called by DomainScope / stm::atomically) ------------
  // Makes `d` the current access domain, joining it (fresh snapshot) if the
  // transaction has not touched it yet. Returns the previous scope index
  // for exitDomain. Precondition: active(), and d's backend matches the
  // root domain's.
  std::size_t enterDomain(Domain& d);
  void exitDomain(std::size_t prev) { curView_ = prev; }

  // --- speculative accesses -------------------------------------------------
  // Transactional read: recorded and validated; opacity preserved.
  Word read(const Word* addr);
  // Transactional read of a value the caller will never dereference.
  // Identical to read() except that a zero-write-set ReadOnly transaction
  // on the NOrec backend may defer its sequence-lock check to the next
  // batch boundary (Config::norecRoBatch) — safe only because a stale
  // scalar can at worst steer bounded wasted work, unlike a stale pointer,
  // which could be chased into reclaimed memory. TxField selects this
  // overload for non-pointer field types.
  Word readScalar(const Word* addr);
  // Transactional write (buffered).
  void write(Word* addr, Word value);
  // Unit load: latest committed value, no read-set entry (TinySTM unit
  // loads; the paper's `uread`). Spins while the location is being
  // committed by another transaction.
  Word uread(const Word* addr);
  // Transactional read recorded in the *permanent* read set even while an
  // elastic transaction is still in its window phase. Elastic cuts must
  // never evict the position reads an update's correctness hangs on (a
  // node's removed flag, the null child an insert links into, the parent
  // link find() validated): pin those, leave traversal reads cuttable.
  // Identical to read() outside the elastic window phase.
  Word readPinned(const Word* addr);
  // Pin bookkeeping for speculative position pins. A traversal pins the
  // reads of each candidate position as it examines it; when the candidate
  // is abandoned (its parent link failed validation, a child appeared), the
  // abandoned pins are demoted back to cut reads with dropPinsAfter —
  // otherwise a churning search region grows the pin set without bound and
  // every hand-over-hand validation over it turns quadratic. Dropping is
  // sound for exactly the reason elastic cuts are: an abandoned candidate's
  // values only steered the traversal, and the position finally returned
  // carries its own still-pinned reads. Both are no-ops outside the elastic
  // window phase (in read-write mode the read set must never shrink).
  std::size_t pinMark() const { return elasticPhase_ ? readSet_.size() : 0; }
  void dropPinsAfter(std::size_t mark) {
    if (elasticPhase_ && readSet_.size() > mark) readSet_.resize(mark);
  }

  // Aborts the current speculation and retries from the top.
  [[noreturn]] void restart();

  // Registers memory allocated speculatively inside this transaction: if the
  // current attempt aborts, `deleter(ptr)` runs; if it commits, ownership
  // has been published and the hook is dropped (TinySTM's stm_malloc
  // equivalent — prevents leaks across retries).
  void onAbortDelete(void* ptr, void (*deleter)(void*));

  // Registers an action to run after this transaction commits; dropped if
  // the attempt aborts (TinySTM's stm_free equivalent: defer side effects —
  // typically retiring an unlinked node — until the unlink is durable).
  // Composes correctly with flat nesting: hooks registered by nested
  // operations run only when the outermost transaction commits. Hooks are
  // stored inline (no allocation) while their captures fit SmallHook.
  template <typename F>
  void onCommit(F&& hook) {
    commitHooks_.push(std::forward<F>(hook));
  }

  // Registers an action that runs when the current attempt *ends* — after
  // commit or abort, i.e. after the last validation that may re-read
  // logged addresses. Used to defer quiescence-GC completion signals past
  // the transaction's final value-based revalidation (a NOrec commit
  // re-reads every logged address; nodes referenced by an already-returned
  // operation must not be freed before that). Re-registered by the
  // operation body on every retry. Hooks run in reverse registration order
  // (see runTxEndHooks).
  template <typename F>
  void onTxEnd(F&& hook) {
    txEndHooks_.push(std::forward<F>(hook));
  }

  // Registers an action that runs once the attempt has fully *settled* —
  // after the tx-end hooks AND, on commit, after every commit hook. This
  // is the outermost release point: ShardedMap's operation-census tickets
  // live here, because the commit hooks they must outlive (violation-queue
  // publishes, size-estimate settlements) still touch tree memory that a
  // shard retirement frees the moment the census drains. Run in reverse
  // registration order; like tx-end hooks they must not start transactions
  // or register further hooks. Re-registered by the body on every retry.
  template <typename F>
  void onSettled(F&& hook) {
    settledHooks_.push(std::forward<F>(hook));
  }

  // One (domain, snapshot) pair per joined domain: the per-domain begin
  // snapshots the current attempt's reads are consistent at (views_[i].rv,
  // refreshed by snapshot extension). Sampled at body end by consumers that
  // need cut provenance — the checkpoint writer stamps the forced-cut
  // transaction's joined-domain snapshots into the manifest, recording
  // *where on each clock* the multi-domain read-only view was pinned.
  // Precondition: active().
  struct SnapshotStamp {
    const Domain* domain;
    std::uint64_t rv;
  };
  std::vector<SnapshotStamp> snapshotStamps() const {
    std::vector<SnapshotStamp> out;
    out.reserve(views_.size());
    for (const DomainView& v : views_) out.push_back({v.domain, v.rv});
    return out;
  }

  // The root domain's (thread, domain) statistics slot. Precondition:
  // begin() has run at least once.
  ThreadStats& stats() { return *stats_; }
  const ThreadStats& stats() const { return *stats_; }

 private:
  // Per-joined-domain state. views_[0] is the root domain's view.
  struct DomainView {
    Domain* domain;
    std::uint64_t rv = 0;   // snapshot (read version / NOrec sequence)
    std::uint64_t wv = 0;   // commit timestamp (set during commit)
    bool seqLocked = false;  // NOrec: this view's sequence lock is held
    // RO mode: at least one zero-logging read was served from this view's
    // snapshot. Joining a further domain must then verify this domain's
    // clock has not moved (there is no read set to revalidate).
    bool roTouched = false;
    // RO mode: the clock fast path is sound for this view — no committer
    // was mid-write-back when the snapshot was taken (see
    // Domain::writebackActive). Falls back to per-read orec validation
    // otherwise.
    bool roFast = false;
    // This transaction holds a +1 on the domain's writebackActive counter
    // (writing commit in progress); released by endWritebacks().
    bool wbActive = false;
  };

  struct ReadEntry {
    std::atomic<OrecWord>* orec;
    std::uint64_t version;
  };
  // NOrec value log entry: validation re-reads the address and compares.
  struct ValueEntry {
    const Word* addr;
    Word value;
    std::size_t view;  // domain whose sequence lock guards the address
  };
  struct WriteEntry {
    Word* addr;
    Word value;
    std::atomic<OrecWord>* orec;
    std::uint64_t prevVersion;  // version observed when the orec was locked
    bool locked;                // this entry holds the orec lock
    std::size_t view;           // domain the address belongs to
  };

  // Consistent (orec-sandwiched) load of a committed value. Returns the
  // value and the orec version it was valid at. Spins across concurrent
  // commits; aborts on encountering a lock held by another transaction when
  // `spinOnLock` is false.
  struct SampledWord {
    Word value;
    std::uint64_t version;
  };
  SampledWord sampleCommitted(const Word* addr, std::atomic<OrecWord>* orec,
                              bool spinOnLock);

  // Write-set lookup. Linear over the (small) write set below
  // kWriteIndexThreshold entries; served by the open-addressing indexes
  // above it. findLockedByOrec returns the entry that *holds* the lock on
  // `orec` (the one carrying the stripe's pre-lock version), or null.
  static constexpr std::size_t kWriteIndexThreshold = 8;
  WriteEntry* findWrite(const Word* addr);
  WriteEntry* findLockedByOrec(const std::atomic<OrecWord>* orec);

  // Open-addressing helpers. Both tables store writeSet_ positions + 1 (0 ==
  // empty slot) and share one capacity, kept at most half full. rebuild
  // (re)creates both from writeSet_ — on first activation and on growth.
  void rebuildWriteIndexes();
  void writeIndexInsert(const Word* addr, std::size_t pos);
  void orecIndexInsert(const std::atomic<OrecWord>* orec, std::size_t pos);
  // Records that writeSet_[pos] now holds its orec's lock.
  void noteOrecLocked(std::size_t pos);

  // --- read-only mode -------------------------------------------------------
  // Zero-logging transactional read (orec backend).
  Word roRead(const Word* addr);
  // Restart of the operation body at a fresh snapshot (or, past
  // kRoPromoteAttempts, in read-write mode). Not counted as an abort; waives
  // the retry backoff.
  [[noreturn]] void roRestart();
  // Promotes the transaction to read-write mode and restarts the attempt.
  [[noreturn]] void roPromote();

  // Validates every read-set (and elastic-window) entry: each orec is either
  // at the recorded version, or locked by this very transaction having been
  // locked at the recorded version.
  bool validateReadSet() const;
  bool validateEntry(const ReadEntry& e) const;

  // Attempts to advance views_[viewIdx].rv to that domain's current clock.
  // Revalidates the *whole* read set (all domains) so the combined snapshot
  // stays consistent; aborts the caller on failure (returns only on
  // success).
  void extendSnapshot(std::size_t viewIdx);

  // Write-set view indices with at least one entry, ordered by domain
  // pointer — the canonical multi-domain acquisition order.
  std::vector<std::size_t> writingViewsInOrder() const;

  // Elastic helpers.
  void elasticRecord(std::atomic<OrecWord>* orec, std::uint64_t version);
  void elasticValidateWindow();
  void foldElasticWindowIntoReadSet();

  // Drops the +1 this attempt holds on every joined domain's in-flight
  // census (Domain::txEnter). Runs at attempt end, after the final
  // validation reads — the census is what Domain::awaitQuiescence gates
  // domain retirement on.
  void exitDomainsInFlight();

  void acquireOrecForWrite(WriteEntry& we);
  void releaseHeldLocks(bool restoreOldVersion);
  void releaseNorecSeqLocks();
  // Drops every writebackActive hold this transaction still has (after the
  // write-back completed, or on abort between tick and write-back).
  void endWritebacks();
  void runCommitHooks();
  void runTxEndHooks();
  // Runs the commit hooks and then the settled hooks, stealing the latter
  // first: a commit hook may start a new transaction, whose begin() resets
  // this descriptor's hook storage.
  void runCommitAndSettledHooks();
  void runSettledHooks();
  void flushReadStats() {
    if (pendingReads_ != 0) {
      stats_->onReadBatch(pendingReads_);
      pendingReads_ = 0;
    }
    if (pendingUreads_ != 0) {
      stats_->onUreadBatch(pendingUreads_);
      pendingUreads_ = 0;
    }
    if (pendingWriteLookups_ != 0) {
      stats_->onWriteLookup(pendingWriteLookups_, pendingWriteProbes_);
      pendingWriteLookups_ = 0;
      pendingWriteProbes_ = 0;
    }
  }

  // --- NOrec backend ---------------------------------------------------------
  Word norecRead(const Word* addr);
  // Scalar-only batched variant of norecRead (see readScalar).
  Word norecReadScalar(const Word* addr);
  Word norecUread(const Word* addr);
  // Batched RO validation: checks every joined domain's sequence lock and,
  // when any moved past its snapshot, runs the full value-based
  // revalidation. Resets the unvalidated-read counter.
  void norecRoFlushValidation();
  // Waits for every joined domain's sequence lock to be free (bounded spin
  // while this transaction itself holds sequence locks, to stay
  // deadlock-free), re-reads the value log; aborts on mismatch, else
  // refreshes every view's snapshot.
  // `mismatchCause` tags the abort raised on a value-log mismatch
  // (NorecValidation normally; CrossDomainJoin when validating a join).
  void norecValidate(
      obs::AbortCause mismatchCause = obs::AbortCause::kNorecValidation);
  void norecCommit();
  static std::uint64_t norecWaitEven(Domain& d);

  [[noreturn]] void abortSelf(obs::AbortCause cause);
  // Attempt epilogue: records the attempt-latency histogram and emits the
  // commit/abort trace record. Runs on every attempt end.
  void finishAttempt(bool committed);

  TxKind kind_ = TxKind::Normal;
  bool active_ = false;
  bool elasticPhase_ = false;  // true while elastic and write-free
  bool ro_ = false;            // this attempt runs in read-only mode
  // Sticky across retries of one operation (cleared by resetAttempts): the
  // RO hint was withdrawn — a write occurred or stale restarts piled up —
  // and further attempts run in Normal mode.
  bool roPromoted_ = false;
  // The abort in flight is a deliberate restart (snapshot refresh or
  // promotion), not a conflict: skip the abort counter and the backoff.
  bool abortIsRestart_ = false;
  bool backoffWaiver_ = false;
  // Taxonomy tag of the abort/restart in flight. Reset to kUserRestart at
  // begin() so an abort nothing tagged (tx.restart(), a user exception
  // unwinding through stm::atomically) is attributed to the user.
  obs::AbortCause abortCause_ = obs::AbortCause::kUserRestart;
  // Attempt latency: begin() latches the timing toggle and timestamp once
  // per attempt (obs::txTimingEnabled() is the always-on default, sampled
  // 1-in-(mask+1) attempts via timingSeq_).
  bool timed_ = false;
  std::uint32_t timingSeq_ = 0;
  std::uint64_t beginTick_ = 0;
  // Per-attempt read/lookup counters, flushed to the stats slot once at
  // attempt end (commit or abort) — keeps the atomic-ref pairs off every
  // read and write-set probe. pendingReads_ doubles as the "has this
  // attempt read anything yet" test the RO mode's free first-read snapshot
  // slide relies on.
  std::uint64_t pendingReads_ = 0;
  std::uint64_t pendingUreads_ = 0;
  std::uint64_t pendingWriteLookups_ = 0;
  std::uint64_t pendingWriteProbes_ = 0;
  // NOrec RO mode: reads logged since the last validation point (batched
  // validation flushes when it reaches cfg_.norecRoBatch).
  std::uint32_t norecRoPending_ = 0;
  std::uint32_t attempts_ = 0;
  Config cfg_{};               // root domain's config, latched at begin()
  TmBackend backend_ = TmBackend::Orec;

  std::vector<DomainView> views_;
  std::size_t curView_ = 0;

  struct AllocEntry {
    void* ptr;
    void (*deleter)(void*);
  };

  std::vector<ReadEntry> readSet_;
  std::vector<WriteEntry> writeSet_;
  std::vector<ValueEntry> valueLog_;  // NOrec backend only
  std::vector<AllocEntry> speculativeAllocs_;
  HookVec commitHooks_;
  HookVec txEndHooks_;
  HookVec settledHooks_;
  std::uint64_t writeSigs_ = 0;  // bloom signature over write addresses

  // Open-addressing indexes over writeSet_, active once the write set
  // outgrows kWriteIndexThreshold (idxMask_ == 0 means inactive). Slots
  // hold position + 1; 0 is empty.
  std::vector<std::uint32_t> writeIdx_;  // keyed by written address
  std::vector<std::uint32_t> orecIdx_;   // keyed by locked orec
  std::size_t idxMask_ = 0;

  // Elastic sliding window (size config.elasticWindow, kept tiny).
  std::vector<ReadEntry> window_;
  std::size_t windowNext_ = 0;

  // Scratch for norecValidate (avoids per-validation allocation).
  std::vector<std::uint64_t> seqSnap_;

  ThreadStats* stats_ = nullptr;  // root domain's slot for this thread
};

// RAII domain scope: inside a transaction, makes `d` the domain that
// transactional accesses are attributed to. Data structures bound to a
// non-default domain open one of these at the top of their Tx-composable
// operations, so a flat-nested caller transparently becomes a cross-domain
// transaction. Cheap when `d` is already the current domain.
class DomainScope {
 public:
  DomainScope(Tx& tx, Domain& d) : tx_(tx), prev_(tx.enterDomain(d)) {}
  ~DomainScope() { tx_.exitDomain(prev_); }

  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  Tx& tx_;
  std::size_t prev_;
};

}  // namespace sftree::stm
