// Transaction descriptor: read/write sets, speculative loads and stores,
// commit and abort.
//
// The algorithm is a word-based, lazy-snapshot STM in the TL2/TinySTM
// family:
//   * a transaction records its begin snapshot `rv` from the domain clock;
//   * every transactional read double-checks the orec around the data load
//     and, when the location is newer than `rv`, tries to *extend* the
//     snapshot by revalidating the read set against the current clock;
//   * writes are buffered (write-back) in both lock modes; Lazy (CTL) locks
//     orecs at commit, Eager (ETL) locks them at the first write;
//   * commit increments the clock, validates the read set (unless the
//     transaction saw the immediately preceding timestamp), writes back and
//     releases the orecs with the new version.
//
// Unit loads (`uread`) return the latest committed value without any read
// set bookkeeping; elastic transactions keep a sliding window of the most
// recent reads instead of the full read set until their first write.
//
// --- Clock domains ---------------------------------------------------------
// A transaction is rooted in one stm::Domain (the argument of atomically)
// but may *join* further domains mid-flight via DomainScope — this is how a
// cross-shard move composes two trees that live on different clocks. The
// descriptor keeps one DomainView (snapshot rv, commit timestamp wv) per
// joined domain; reads and writes are attributed to the innermost scope's
// domain. Snapshot extension in any domain revalidates the *entire* read
// set, which is what makes the combined multi-domain snapshot consistent.
// Commit acquires write locks domain-by-domain in canonical (pointer)
// order, ticks each written domain's clock for a per-domain timestamp,
// validates, writes back and releases — so the transaction becomes visible
// in all domains atomically. All joined domains must share one TM backend;
// the root domain's lock mode and elastic window govern the transaction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "stm/clock.hpp"
#include "stm/config.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "stm/word.hpp"

namespace sftree::stm {

class Domain;

// Thrown by the STM to roll back a speculative execution; caught only by the
// retry loop in stm::atomically. User code must never swallow it.
struct TxAbort {};

class alignas(64) Tx {
 public:
  Tx();
  ~Tx();

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // --- lifecycle (called by stm::atomically) -------------------------------
  // `stats` is the calling thread's slot for `d` (the root domain); every
  // counter this attempt produces — including accesses made in joined
  // domains — is attributed to the root domain's registry.
  void begin(Domain& d, TxKind kind, ThreadStats& stats);
  void commit();
  // Releases any held locks, bumps stats, prepares for retry. Does not throw.
  void onAbort();
  bool active() const { return active_; }
  TxKind kind() const { return kind_; }
  std::uint32_t attempts() const { return attempts_; }
  void resetAttempts() { attempts_ = 0; }

  // The domain the current attempt was begun in. Precondition: begin() has
  // run at least once.
  Domain& rootDomain() const { return *views_.front().domain; }
  // The domain the next access will be attributed to (innermost scope).
  Domain& currentDomain() const { return *views_[curView_].domain; }

  // --- domain scoping (called by DomainScope / stm::atomically) ------------
  // Makes `d` the current access domain, joining it (fresh snapshot) if the
  // transaction has not touched it yet. Returns the previous scope index
  // for exitDomain. Precondition: active(), and d's backend matches the
  // root domain's.
  std::size_t enterDomain(Domain& d);
  void exitDomain(std::size_t prev) { curView_ = prev; }

  // --- speculative accesses -------------------------------------------------
  // Transactional read: recorded and validated; opacity preserved.
  Word read(const Word* addr);
  // Transactional write (buffered).
  void write(Word* addr, Word value);
  // Unit load: latest committed value, no read-set entry (TinySTM unit
  // loads; the paper's `uread`). Spins while the location is being
  // committed by another transaction.
  Word uread(const Word* addr);

  // Aborts the current speculation and retries from the top.
  [[noreturn]] void restart();

  // Registers memory allocated speculatively inside this transaction: if the
  // current attempt aborts, `deleter(ptr)` runs; if it commits, ownership
  // has been published and the hook is dropped (TinySTM's stm_malloc
  // equivalent — prevents leaks across retries).
  void onAbortDelete(void* ptr, void (*deleter)(void*));

  // Registers an action to run after this transaction commits; dropped if
  // the attempt aborts (TinySTM's stm_free equivalent: defer side effects —
  // typically retiring an unlinked node — until the unlink is durable).
  // Composes correctly with flat nesting: hooks registered by nested
  // operations run only when the outermost transaction commits.
  void onCommit(std::function<void()> hook);

  // Registers an action that runs when the current attempt *ends* — after
  // commit or abort, i.e. after the last validation that may re-read
  // logged addresses. Used to defer quiescence-GC completion signals past
  // the transaction's final value-based revalidation (a NOrec commit
  // re-reads every logged address; nodes referenced by an already-returned
  // operation must not be freed before that). Re-registered by the
  // operation body on every retry.
  void onTxEnd(std::function<void()> hook);

  // The root domain's (thread, domain) statistics slot. Precondition:
  // begin() has run at least once.
  ThreadStats& stats() { return *stats_; }
  const ThreadStats& stats() const { return *stats_; }

 private:
  // Per-joined-domain state. views_[0] is the root domain's view.
  struct DomainView {
    Domain* domain;
    std::uint64_t rv = 0;   // snapshot (read version / NOrec sequence)
    std::uint64_t wv = 0;   // commit timestamp (set during commit)
    bool seqLocked = false;  // NOrec: this view's sequence lock is held
  };

  struct ReadEntry {
    std::atomic<OrecWord>* orec;
    std::uint64_t version;
  };
  // NOrec value log entry: validation re-reads the address and compares.
  struct ValueEntry {
    const Word* addr;
    Word value;
    std::size_t view;  // domain whose sequence lock guards the address
  };
  struct WriteEntry {
    Word* addr;
    Word value;
    std::atomic<OrecWord>* orec;
    std::uint64_t prevVersion;  // version observed when the orec was locked
    bool locked;                // this entry holds the orec lock
    std::size_t view;           // domain the address belongs to
  };

  // Consistent (orec-sandwiched) load of a committed value. Returns the
  // value and the orec version it was valid at. Spins across concurrent
  // commits; aborts on encountering a lock held by another transaction when
  // `spinOnLock` is false.
  struct SampledWord {
    Word value;
    std::uint64_t version;
  };
  SampledWord sampleCommitted(const Word* addr, std::atomic<OrecWord>* orec,
                              bool spinOnLock);

  WriteEntry* findWrite(const Word* addr);
  WriteEntry* findWriteByOrec(const std::atomic<OrecWord>* orec);

  // Validates every read-set (and elastic-window) entry: each orec is either
  // at the recorded version, or locked by this very transaction having been
  // locked at the recorded version.
  bool validateReadSet() const;
  bool validateEntry(const ReadEntry& e) const;

  // Attempts to advance views_[viewIdx].rv to that domain's current clock.
  // Revalidates the *whole* read set (all domains) so the combined snapshot
  // stays consistent; aborts the caller on failure (returns only on
  // success).
  void extendSnapshot(std::size_t viewIdx);

  // Write-set view indices with at least one entry, ordered by domain
  // pointer — the canonical multi-domain acquisition order.
  std::vector<std::size_t> writingViewsInOrder() const;

  // Elastic helpers.
  void elasticRecord(std::atomic<OrecWord>* orec, std::uint64_t version);
  void elasticValidateWindow();
  void foldElasticWindowIntoReadSet();

  void acquireOrecForWrite(WriteEntry& we);
  void releaseHeldLocks(bool restoreOldVersion);
  void releaseNorecSeqLocks();
  void runCommitHooks();
  void runTxEndHooks();

  // --- NOrec backend ---------------------------------------------------------
  Word norecRead(const Word* addr);
  Word norecUread(const Word* addr);
  // Waits for every joined domain's sequence lock to be free (bounded spin
  // while this transaction itself holds sequence locks, to stay
  // deadlock-free), re-reads the value log; aborts on mismatch, else
  // refreshes every view's snapshot.
  void norecValidate();
  void norecCommit();
  static std::uint64_t norecWaitEven(Domain& d);

  [[noreturn]] void abortSelf();

  TxKind kind_ = TxKind::Normal;
  bool active_ = false;
  bool elasticPhase_ = false;  // true while elastic and write-free
  std::uint32_t attempts_ = 0;
  Config cfg_{};               // root domain's config, latched at begin()
  TmBackend backend_ = TmBackend::Orec;

  std::vector<DomainView> views_;
  std::size_t curView_ = 0;

  struct AllocEntry {
    void* ptr;
    void (*deleter)(void*);
  };

  std::vector<ReadEntry> readSet_;
  std::vector<WriteEntry> writeSet_;
  std::vector<ValueEntry> valueLog_;  // NOrec backend only
  std::vector<AllocEntry> speculativeAllocs_;
  std::vector<std::function<void()>> commitHooks_;
  std::vector<std::function<void()>> txEndHooks_;
  std::uint64_t writeSigs_ = 0;  // bloom signature over write addresses

  // Elastic sliding window (size config.elasticWindow, kept tiny).
  std::vector<ReadEntry> window_;
  std::size_t windowNext_ = 0;

  // Scratch for norecValidate (avoids per-validation allocation).
  std::vector<std::uint64_t> seqSnap_;

  ThreadStats* stats_ = nullptr;  // root domain's slot for this thread
};

// RAII domain scope: inside a transaction, makes `d` the domain that
// transactional accesses are attributed to. Data structures bound to a
// non-default domain open one of these at the top of their Tx-composable
// operations, so a flat-nested caller transparently becomes a cross-domain
// transaction. Cheap when `d` is already the current domain.
class DomainScope {
 public:
  DomainScope(Tx& tx, Domain& d) : tx_(tx), prev_(tx.enterDomain(d)) {}
  ~DomainScope() { tx_.exitDomain(prev_); }

  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  Tx& tx_;
  std::size_t prev_;
};

}  // namespace sftree::stm
