// Transaction descriptor: read/write sets, speculative loads and stores,
// commit and abort.
//
// The algorithm is a word-based, lazy-snapshot STM in the TL2/TinySTM
// family:
//   * a transaction records its begin snapshot `rv` from the global clock;
//   * every transactional read double-checks the orec around the data load
//     and, when the location is newer than `rv`, tries to *extend* the
//     snapshot by revalidating the read set against the current clock;
//   * writes are buffered (write-back) in both lock modes; Lazy (CTL) locks
//     orecs at commit, Eager (ETL) locks them at the first write;
//   * commit increments the clock, validates the read set (unless the
//     transaction saw the immediately preceding timestamp), writes back and
//     releases the orecs with the new version.
//
// Unit loads (`uread`) return the latest committed value without any read
// set bookkeeping; elastic transactions keep a sliding window of the most
// recent reads instead of the full read set until their first write.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stm/clock.hpp"
#include "stm/config.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "stm/word.hpp"

namespace sftree::stm {

class Runtime;

// Thrown by the STM to roll back a speculative execution; caught only by the
// retry loop in stm::atomically. User code must never swallow it.
struct TxAbort {};

class alignas(64) Tx {
 public:
  explicit Tx(Runtime& rt);
  ~Tx();

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // --- lifecycle (called by stm::atomically) -------------------------------
  void begin(TxKind kind);
  void commit();
  // Releases any held locks, bumps stats, prepares for retry. Does not throw.
  void onAbort();
  bool active() const { return active_; }
  TxKind kind() const { return kind_; }
  std::uint32_t attempts() const { return attempts_; }
  void resetAttempts() { attempts_ = 0; }

  // --- speculative accesses -------------------------------------------------
  // Transactional read: recorded and validated; opacity preserved.
  Word read(const Word* addr);
  // Transactional write (buffered).
  void write(Word* addr, Word value);
  // Unit load: latest committed value, no read-set entry (TinySTM unit
  // loads; the paper's `uread`). Spins while the location is being
  // committed by another transaction.
  Word uread(const Word* addr);

  // Aborts the current speculation and retries from the top.
  [[noreturn]] void restart();

  // Registers memory allocated speculatively inside this transaction: if the
  // current attempt aborts, `deleter(ptr)` runs; if it commits, ownership
  // has been published and the hook is dropped (TinySTM's stm_malloc
  // equivalent — prevents leaks across retries).
  void onAbortDelete(void* ptr, void (*deleter)(void*));

  // Registers an action to run after this transaction commits; dropped if
  // the attempt aborts (TinySTM's stm_free equivalent: defer side effects —
  // typically retiring an unlinked node — until the unlink is durable).
  // Composes correctly with flat nesting: hooks registered by nested
  // operations run only when the outermost transaction commits.
  void onCommit(std::function<void()> hook);

  ThreadStats& stats() { return stats_; }
  const ThreadStats& stats() const { return stats_; }

  Runtime& runtime() { return rt_; }

 private:
  struct ReadEntry {
    std::atomic<OrecWord>* orec;
    std::uint64_t version;
  };
  // NOrec value log entry: validation re-reads the address and compares.
  struct ValueEntry {
    const Word* addr;
    Word value;
  };
  struct WriteEntry {
    Word* addr;
    Word value;
    std::atomic<OrecWord>* orec;
    std::uint64_t prevVersion;  // version observed when the orec was locked
    bool locked;                // this entry holds the orec lock
  };

  // Consistent (orec-sandwiched) load of a committed value. Returns the
  // value and the orec version it was valid at. Spins across concurrent
  // commits; aborts on encountering a lock held by another transaction when
  // `spinOnLock` is false.
  struct SampledWord {
    Word value;
    std::uint64_t version;
  };
  SampledWord sampleCommitted(const Word* addr, std::atomic<OrecWord>* orec,
                              bool spinOnLock);

  WriteEntry* findWrite(const Word* addr);
  WriteEntry* findWriteByOrec(const std::atomic<OrecWord>* orec);

  // Validates every read-set (and elastic-window) entry: each orec is either
  // at the recorded version, or locked by this very transaction having been
  // locked at the recorded version.
  bool validateReadSet() const;
  bool validateEntry(const ReadEntry& e) const;

  // Attempts to advance rv to the current clock; aborts the caller on
  // failure (returns only on success).
  void extendSnapshot();

  // Elastic helpers.
  void elasticRecord(std::atomic<OrecWord>* orec, std::uint64_t version);
  void elasticValidateWindow();
  void foldElasticWindowIntoReadSet();

  void acquireOrecForWrite(WriteEntry& we);
  void releaseHeldLocks(bool restoreOldVersion, std::uint64_t newVersion);
  void runCommitHooks();

  // --- NOrec backend ---------------------------------------------------------
  Word norecRead(const Word* addr);
  Word norecUread(const Word* addr);
  // Waits for the global sequence lock to be free, re-reads the value log;
  // aborts on mismatch, else returns the new consistent snapshot.
  std::uint64_t norecValidate();
  void norecCommit();

  [[noreturn]] void abortSelf();

  Runtime& rt_;
  TxKind kind_ = TxKind::Normal;
  bool active_ = false;
  bool elasticPhase_ = false;  // true while elastic and write-free
  std::uint64_t rv_ = 0;       // snapshot (read version)
  std::uint32_t attempts_ = 0;

  struct AllocEntry {
    void* ptr;
    void (*deleter)(void*);
  };

  std::vector<ReadEntry> readSet_;
  std::vector<WriteEntry> writeSet_;
  std::vector<ValueEntry> valueLog_;  // NOrec backend only
  std::vector<AllocEntry> speculativeAllocs_;
  std::vector<std::function<void()>> commitHooks_;
  std::uint64_t writeSigs_ = 0;  // bloom signature over write addresses
  TmBackend backend_ = TmBackend::Orec;  // latched at begin()

  // Elastic sliding window (size config.elasticWindow, kept tiny).
  std::vector<ReadEntry> window_;
  std::size_t windowNext_ = 0;

  ThreadStats stats_;

  friend class Runtime;
};

}  // namespace sftree::stm
