// TM domains: instantiable STM clock domains.
//
// A Domain owns every piece of process-global TM metadata the singleton
// runtime used to hold: the TL2/TinySTM version clock, the orec table, the
// NOrec global sequence lock, the configuration, and the per-thread
// statistics registry. Independent data structures can now run on
// independent domains, so their commits no longer contend on one shared
// clock cache line — the sharded map gives each shard its own domain and
// scales like N separate trees.
//
// A single transaction may span several domains (e.g. a cross-shard move):
// the descriptor keeps one snapshot per domain it touches and commits with
// per-domain timestamps under an ordered multi-domain lock acquisition (see
// tx.hpp and docs/stm.md). All domains joined by one transaction must use
// the same TM backend.
//
// `defaultDomain()` is the process-wide default every legacy call site maps
// onto; single-tree users never need to name a domain.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "stm/clock.hpp"
#include "stm/config.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"

namespace sftree::stm {

class Domain;

// The calling thread's stripe for striped counter censuses (stable per
// thread; splitmix-mixed thread_local address). `stripes` must be a power
// of two. Shared by Domain's transaction census and ShardedMap's
// operation census so the hashing cannot silently diverge.
std::size_t threadStripe(std::size_t stripes);

namespace detail {

// One (thread, domain) statistics slot, co-owned by the thread's context
// and the domain's registry. `domain` is written under the global slot
// registry mutex (attach, thread exit, domain destruction) and read with a
// relaxed atomic by the owning thread's fast path; a null domain marks a
// detached slot (its domain died first).
struct StatsSlot {
  std::atomic<Domain*> domain{nullptr};
  ThreadStats stats;
};

// Creates the calling thread's slot for `d`, registers it with the domain
// and appends it to `slots` (the thread's ownership list). Lookup and
// dead-slot pruning live in ThreadContext::statsFor, next to the pointer
// cache that pruning must invalidate. Defined in domain.cpp.
StatsSlot* attachSlotFor(Domain& d,
                         std::vector<std::shared_ptr<StatsSlot>>& slots);

// Thread exit: folds every still-attached slot into its domain's departed
// statistics. Defined in domain.cpp.
void retireThreadSlots(std::vector<std::shared_ptr<StatsSlot>>& slots);

}  // namespace detail

class Domain {
 public:
  explicit Domain(Config cfg = {}) : orecs_(cfg.orecLogSize), config_(cfg) {}
  // Striped in-flight transaction census (see txEnter below).
  static constexpr std::size_t kTxStripes = 16;
  // Detaches every live statistics slot (threads that used this domain may
  // outlive it; their slots must not dangle into freed memory).
  ~Domain();

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  GlobalClock& clock() { return clock_; }
  OrecTable& orecs() { return orecs_; }
  // NOrec global sequence lock: even = free, odd = a writer is committing.
  std::atomic<std::uint64_t>& norecSeq() { return norecSeq_; }
  // Number of orec-backend committers currently between their clock tick
  // and the end of their write-back. Zero-logging read-only snapshots may
  // use the clock fast path only when this is zero at snapshot time: a
  // commit that ticked *before* the snapshot could otherwise still be
  // writing back, which the reader's clock-equality check cannot see.
  std::atomic<std::uint64_t>& writebackActive() { return writebackActive_; }

  const Config& config() const { return config_; }
  // Must only be called while no transaction is running against this domain
  // (e.g. between benchmark phases); the lock mode is read at begin().
  void setConfig(const Config& c) { config_ = c; }
  void setLockMode(LockMode m) { config_.lockMode = m; }

  // Sum of all per-thread statistics accumulated against this domain. Only
  // exact when no transactions are in flight; during a run it is an
  // (acceptable) racy snapshot for progress reporting.
  ThreadStats aggregateStats();
  // Zeroes every registered slot's counters (quiescent use only).
  void resetStats();

  // --- retirement / quiescence ----------------------------------------------
  // In-flight transaction census: every attempt that roots in or joins this
  // domain holds a +1 between Tx::begin/enterDomain and the end of the
  // attempt (commit or abort, after the final validation reads). The
  // counters are striped by thread so the census costs one RMW on a mostly
  // thread-private line per attempt, not a shared hot line — the whole point
  // of per-shard domains is *not* sharing such a line.
  void txEnter() {
    txInFlight_[threadStripe(kTxStripes)].n.fetch_add(
        1, std::memory_order_acq_rel);
  }
  void txExit() {
    txInFlight_[threadStripe(kTxStripes)].n.fetch_sub(
        1, std::memory_order_release);
  }
  // Racy sum; exact (and stable) only once nothing can start a new
  // transaction against this domain.
  std::uint64_t txInFlight() const {
    std::uint64_t sum = 0;
    for (const auto& s : txInFlight_) sum += s.n.load(std::memory_order_acquire);
    return sum;
  }
  // Retirement gate: blocks until no transaction is in flight against this
  // domain. Only meaningful after the caller has made the domain
  // unreachable for *new* transactions (e.g. ShardedMap republished its
  // routing table and drained the op guard) — with new entries excluded,
  // a zero census is stable and the domain (and the structures on it) can
  // be destroyed. Returns false if maxSpins elapsed first.
  bool awaitQuiescence(std::uint64_t maxSpins = ~std::uint64_t{0});

 private:
  friend detail::StatsSlot* detail::attachSlotFor(
      Domain&, std::vector<std::shared_ptr<detail::StatsSlot>>&);
  friend void detail::retireThreadSlots(
      std::vector<std::shared_ptr<detail::StatsSlot>>&);

  struct alignas(64) TxStripe {
    std::atomic<std::uint64_t> n{0};
  };

  GlobalClock clock_;
  OrecTable orecs_;
  Config config_;
  alignas(64) std::atomic<std::uint64_t> norecSeq_{0};
  alignas(64) std::atomic<std::uint64_t> writebackActive_{0};
  TxStripe txInFlight_[kTxStripes];

  // Guarded by the global slot registry mutex (domain.cpp).
  std::vector<std::shared_ptr<detail::StatsSlot>> live_;
  ThreadStats departed_;
};

// The process-wide default domain: what the pre-domain singleton runtime
// was, and what every domain-less overload binds to.
Domain& defaultDomain();

}  // namespace sftree::stm
