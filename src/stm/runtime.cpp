#include "stm/runtime.hpp"

#include <algorithm>

namespace sftree::stm {

namespace detail {

ThreadContext::~ThreadContext() { retireThreadSlots(slots); }

Tx& ThreadContext::acquire() {
  if (!tx) tx = std::make_unique<Tx>();
  return *tx;
}

ThreadStats& ThreadContext::statsFor(Domain& d) {
  // Fast path: direct-mapped cache hit whose slot still belongs to `d`. A
  // slot whose domain died reads null here and falls through to the slow
  // path — so a recycled Domain address can never alias a stale slot.
  const std::size_t bucket =
      (reinterpret_cast<std::uintptr_t>(&d) >> 6) & (kSlotCacheSize - 1);
  StatsSlot* cached = slotCache[bucket];
  if (cached != nullptr &&
      cached->domain.load(std::memory_order_relaxed) == &d) {
    return cached->stats;
  }
  // Slow path: one scan of this thread's slots; dead slots (their domain
  // was destroyed and nulled the back-pointer) are pruned only when one is
  // actually seen. Relaxed reads are enough: only this thread's own
  // entries are inspected, and a dying domain nulls its slots before its
  // address can be reused.
  StatsSlot* found = nullptr;
  bool sawDead = false;
  for (const auto& s : slots) {
    Domain* sd = s->domain.load(std::memory_order_relaxed);
    if (sd == &d) {
      found = s.get();
      break;
    }
    sawDead |= (sd == nullptr);
  }
  if (sawDead) {
    // Evict cache entries that point at slots about to be freed — the
    // cache stores raw pointers, and a dangling one could later be
    // revalidated against recycled memory.
    for (auto& c : slotCache) {
      if (c != nullptr && c->domain.load(std::memory_order_relaxed) == nullptr) {
        c = nullptr;
      }
    }
    slots.erase(std::remove_if(slots.begin(), slots.end(),
                               [](const std::shared_ptr<StatsSlot>& s) {
                                 return s->domain.load(
                                            std::memory_order_relaxed) ==
                                        nullptr;
                               }),
                slots.end());
  }
  if (found == nullptr) found = attachSlotFor(d, slots);
  slotCache[bucket] = found;
  return found->stats;
}

ThreadContext& context() {
  thread_local ThreadContext ctx;
  return ctx;
}

namespace {
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

// xorshift64* — cheap thread-local randomness for backoff jitter.
inline std::uint64_t nextRandom(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1DULL;
}
}  // namespace

void backoff(Tx& tx) {
  // Deliberate restarts (RO snapshot refresh, RO->RW promotion) are not
  // conflicts; waiting would only delay the fresh snapshot.
  if (tx.consumeBackoffWaiver()) return;
  const Config& cfg = tx.rootDomain().config();
  const std::uint32_t shift = std::min<std::uint32_t>(tx.attempts(), 16);
  std::uint64_t ceiling = std::uint64_t{cfg.backoffMinSpins} << shift;
  ceiling = std::min<std::uint64_t>(ceiling, cfg.backoffMaxSpins);
  thread_local std::uint64_t seed =
      0x9E3779B97F4A7C15ULL ^ reinterpret_cast<std::uintptr_t>(&tx);
  const std::uint64_t spins = nextRandom(seed) % (ceiling + 1);
  for (std::uint64_t i = 0; i < spins; ++i) cpuRelax();
}

}  // namespace detail

bool inTransaction() {
  detail::ThreadContext& ctx = detail::context();
  return ctx.tx != nullptr && ctx.tx->active();
}

Tx& currentTx() { return *detail::context().tx; }

ThreadStats& threadStats(Domain& d) { return detail::context().statsFor(d); }

ThreadStats& threadStats() { return threadStats(defaultDomain()); }

}  // namespace sftree::stm
