#include "stm/runtime.hpp"

#include <algorithm>

namespace sftree::stm {

Runtime& Runtime::instance() {
  static Runtime rt;
  return rt;
}

void Runtime::registerTx(Tx* tx) {
  std::lock_guard<std::mutex> lk(mu_);
  live_.push_back(tx);
}

void Runtime::unregisterTx(Tx* tx) {
  std::lock_guard<std::mutex> lk(mu_);
  departed_ += tx->stats();
  live_.erase(std::remove(live_.begin(), live_.end(), tx), live_.end());
}

ThreadStats Runtime::aggregateStats() {
  std::lock_guard<std::mutex> lk(mu_);
  ThreadStats total = departed_;
  for (Tx* tx : live_) total += tx->stats();
  return total;
}

void Runtime::resetStats() {
  std::lock_guard<std::mutex> lk(mu_);
  departed_.reset();
  for (Tx* tx : live_) tx->stats().reset();
}

namespace detail {

ThreadContext::~ThreadContext() {
  if (tx) Runtime::instance().unregisterTx(tx.get());
}

Tx& ThreadContext::acquire() {
  if (!tx) {
    tx = std::make_unique<Tx>(Runtime::instance());
    Runtime::instance().registerTx(tx.get());
  }
  return *tx;
}

ThreadContext& context() {
  thread_local ThreadContext ctx;
  return ctx;
}

namespace {
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

// xorshift64* — cheap thread-local randomness for backoff jitter.
inline std::uint64_t nextRandom(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545F4914F6CDD1DULL;
}
}  // namespace

void backoff(Tx& tx) {
  const Config& cfg = Runtime::instance().config();
  const std::uint32_t shift = std::min<std::uint32_t>(tx.attempts(), 16);
  std::uint64_t ceiling = std::uint64_t{cfg.backoffMinSpins} << shift;
  ceiling = std::min<std::uint64_t>(ceiling, cfg.backoffMaxSpins);
  thread_local std::uint64_t seed =
      0x9E3779B97F4A7C15ULL ^ reinterpret_cast<std::uintptr_t>(&tx);
  const std::uint64_t spins = nextRandom(seed) % (ceiling + 1);
  for (std::uint64_t i = 0; i < spins; ++i) cpuRelax();
}

}  // namespace detail

bool inTransaction() {
  detail::ThreadContext& ctx = detail::context();
  return ctx.tx != nullptr && ctx.tx->active();
}

Tx& currentTx() { return *detail::context().tx; }

ThreadStats& threadStats() { return detail::context().acquire().stats(); }

}  // namespace sftree::stm
