// STM configuration knobs.
#pragma once

#include <cstdint>

namespace sftree::stm {

// When write locks are acquired.
//  * Lazy  == TinySTM-CTL (commit-time locking): writes are buffered and the
//    orecs are locked only during commit. This is the paper's default
//    configuration ("TinySTM-CTL, i.e., with lazy acquirement").
//  * Eager == TinySTM-ETL (encounter-time locking): the orec is locked at the
//    first write; values are still buffered (write-back).
enum class LockMode : std::uint8_t { Lazy, Eager };

// Which TM algorithm backs the transactions.
//  * Orec: the TinySTM/TL2-style word STM above (orec table + version
//    clock); LockMode selects CTL vs ETL.
//  * NOrec: Dalessandro/Spear/Scott's NOrec — a single global sequence lock
//    with value-based revalidation and no per-location metadata. Included
//    to demonstrate the paper's §5.3 claim that the speculation-friendly
//    tree's benefit is independent of the TM algorithm (NOrec is one of
//    the TMs synchrobench exercises). LockMode is ignored; commit-time
//    write-back happens under the global lock.
enum class TmBackend : std::uint8_t { Orec, NOrec };

// Transaction kind.
//  * Normal: opaque TL2-style transaction.
//  * Elastic: E-STM style. While the transaction has not written, reads are
//    tracked hand-over-hand in a small sliding window; older reads are
//    implicitly dropped ("cut") instead of being validated at commit. After
//    the first write the transaction behaves like a Normal one (the window
//    is folded into the read set).
//  * ReadOnly: a hint that the transaction will not write. On the orec
//    backend reads are validated against a fixed snapshot with *no read-set
//    logging* (a stale snapshot re-reads the clock and restarts the body
//    instead of revalidating); on NOrec the value log is kept but the
//    write-set machinery is skipped. A write inside a ReadOnly transaction
//    transparently restarts the attempt in read-write (Normal) mode, so the
//    hint is always safe.
enum class TxKind : std::uint8_t { Normal, Elastic, ReadOnly };

struct Config {
  LockMode lockMode = LockMode::Lazy;
  TmBackend backend = TmBackend::Orec;
  // Elastic window: number of most recent reads that must stay valid.
  // The E-STM paper uses pairs of hand-over-hand reads.
  std::uint32_t elasticWindow = 2;
  // NOrec read-only batching: a zero-write-set ReadOnly transaction on the
  // NOrec backend checks the sequence locks once every this many *scalar*
  // (non-pointer) reads — plus at commit and at every domain join —
  // instead of per read. Values read between checks are still logged, so
  // the value-based revalidation at the next batch boundary catches
  // anything a concurrent writer published in between; large read-only
  // scans (countRange) then pay the seqlock cache line once per batch for
  // their flag/value reads. Pointer reads always validate per read: a
  // traversal must never dereference an unvalidated pointer, or it could
  // wander into memory the quiescence GC legitimately reclaimed (TxField
  // routes field types accordingly). 1 restores per-read validation
  // everywhere.
  std::uint32_t norecRoBatch = 32;
  // Contention management: bounded randomized exponential backoff.
  std::uint32_t backoffMinSpins = 32;
  std::uint32_t backoffMaxSpins = 1 << 14;
  // log2 of the domain's orec table size (2^20 orecs * 8 B = 8 MiB, the
  // TinySTM-scale default). A process running many domains should shrink
  // each domain's table: a domain that guards 1/N of the address traffic
  // needs 1/N of the stripes for the same false-conflict rate, and the
  // combined tables otherwise blow the cache (ShardedMap does this
  // automatically for per-shard domains).
  std::uint32_t orecLogSize = 20;
};

}  // namespace sftree::stm
