#include "stm/domain.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>

namespace sftree::stm {

namespace detail {
namespace {

// One mutex guards every domain's slot registry and every slot's `domain`
// transition. Slot traffic is rare (thread birth/exit, domain
// construction/destruction, aggregate queries), so a single lock keeps the
// lifetime protocol trivially deadlock-free: the mutex is leaked so that
// thread_local destructors running during process teardown can still take
// it safely regardless of static destruction order.
std::mutex& registryMu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

StatsSlot* attachSlotFor(Domain& d,
                         std::vector<std::shared_ptr<StatsSlot>>& slots) {
  auto slot = std::make_shared<StatsSlot>();
  {
    std::lock_guard<std::mutex> lk(registryMu());
    slot->domain.store(&d, std::memory_order_relaxed);
    d.live_.push_back(slot);
  }
  slots.push_back(slot);
  return slots.back().get();
}

void retireThreadSlots(std::vector<std::shared_ptr<StatsSlot>>& slots) {
  std::lock_guard<std::mutex> lk(registryMu());
  for (const auto& slot : slots) {
    Domain* d = slot->domain.load(std::memory_order_relaxed);
    if (d == nullptr) continue;  // domain died first
    // The domain cannot be mid-destruction: its destructor detaches slots
    // under the same mutex we hold.
    d->departed_ += slot->stats.snapshot();
    d->live_.erase(std::remove(d->live_.begin(), d->live_.end(), slot),
                   d->live_.end());
    slot->domain.store(nullptr, std::memory_order_relaxed);
  }
  slots.clear();
}

}  // namespace detail

std::size_t threadStripe(std::size_t stripes) {
  static thread_local char anchor;
  auto a = reinterpret_cast<std::uintptr_t>(&anchor) >> 4;
  a *= 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(a >> 32) & (stripes - 1);
}

bool Domain::awaitQuiescence(std::uint64_t maxSpins) {
  for (std::uint64_t spin = 0; txInFlight() != 0; ++spin) {
    if (spin >= maxSpins) return false;
    std::this_thread::yield();
  }
  return true;
}

Domain::~Domain() {
  std::lock_guard<std::mutex> lk(detail::registryMu());
  for (const auto& slot : live_) {
    slot->domain.store(nullptr, std::memory_order_relaxed);
  }
  live_.clear();
}

ThreadStats Domain::aggregateStats() {
  std::lock_guard<std::mutex> lk(detail::registryMu());
  ThreadStats total = departed_;
  for (const auto& slot : live_) total += slot->stats.snapshot();
  return total;
}

void Domain::resetStats() {
  std::lock_guard<std::mutex> lk(detail::registryMu());
  departed_ = ThreadStats{};
  for (const auto& slot : live_) slot->stats.reset();
}

Domain& defaultDomain() {
  static Domain d;
  return d;
}

}  // namespace sftree::stm
