// Public STM interface.
//
//   stm::atomically([](stm::Tx& tx) { ... });                 // normal
//   stm::atomically(stm::TxKind::Elastic, [](stm::Tx& tx) {}); // elastic
//
// Transactions retry automatically on conflict with randomized exponential
// backoff. Nested atomically() calls are flattened into the enclosing
// transaction (flat nesting), which is what makes composed operations such
// as the tree `move` (paper §5.4) atomic and deadlock-free.
#pragma once

#include <type_traits>
#include <utility>

#include "stm/config.hpp"
#include "stm/field.hpp"
#include "stm/runtime.hpp"
#include "stm/stats.hpp"
#include "stm/tx.hpp"

namespace sftree::stm {

template <typename F>
auto atomically(TxKind kind, F&& fn) -> std::invoke_result_t<F&, Tx&> {
  using R = std::invoke_result_t<F&, Tx&>;
  Tx& tx = detail::context().acquire();
  if (tx.active()) {
    // Flat nesting: run inline as part of the enclosing transaction. An
    // abort unwinds to the outermost retry loop.
    return fn(tx);
  }
  for (;;) {
    tx.begin(kind);
    try {
      if constexpr (std::is_void_v<R>) {
        fn(tx);
        tx.commit();
        tx.resetAttempts();
        return;
      } else {
        R result = fn(tx);
        tx.commit();
        tx.resetAttempts();
        return result;
      }
    } catch (TxAbort&) {
      tx.onAbort();
      detail::backoff(tx);
    } catch (...) {
      // A user exception aborts the transaction (speculative state is
      // rolled back, locks released, allocations freed) and propagates.
      tx.onAbort();
      throw;
    }
  }
}

template <typename F>
auto atomically(F&& fn) -> std::invoke_result_t<F&, Tx&> {
  return atomically(TxKind::Normal, std::forward<F>(fn));
}

}  // namespace sftree::stm
