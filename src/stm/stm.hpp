// Public STM interface.
//
//   stm::atomically([](stm::Tx& tx) { ... });                  // default domain
//   stm::atomically(stm::TxKind::Elastic, [](stm::Tx& tx) {}); // elastic
//   stm::atomically(domain, [](stm::Tx& tx) { ... });          // explicit domain
//
// Transactions retry automatically on conflict with randomized exponential
// backoff. Nested atomically() calls are flattened into the enclosing
// transaction (flat nesting), which is what makes composed operations such
// as the tree `move` (paper §5.4) atomic and deadlock-free. A nested call
// against a *different* domain joins that domain into the enclosing
// transaction (multi-domain commit; see tx.hpp and docs/stm.md) — this is
// how a cross-shard move spans two per-shard clock domains atomically.
#pragma once

#include <type_traits>
#include <utility>

#include "stm/config.hpp"
#include "stm/domain.hpp"
#include "stm/field.hpp"
#include "stm/runtime.hpp"
#include "stm/stats.hpp"
#include "stm/tx.hpp"

namespace sftree::stm {

template <typename F>
auto atomically(Domain& d, TxKind kind, F&& fn)
    -> std::invoke_result_t<F&, Tx&> {
  using R = std::invoke_result_t<F&, Tx&>;
  detail::ThreadContext& ctx = detail::context();
  Tx& tx = ctx.acquire();
  if (tx.active()) {
    // Flat nesting: run inline as part of the enclosing transaction,
    // scoped to `d` (joining it if the transaction has not touched it
    // yet). An abort unwinds to the outermost retry loop.
    DomainScope scope(tx, d);
    return fn(tx);
  }
  ThreadStats& stats = ctx.statsFor(d);
  for (;;) {
    tx.begin(d, kind, stats);
    try {
      if constexpr (std::is_void_v<R>) {
        fn(tx);
        tx.commit();
        tx.resetAttempts();
        return;
      } else {
        R result = fn(tx);
        tx.commit();
        tx.resetAttempts();
        return result;
      }
    } catch (TxAbort&) {
      tx.onAbort();
      detail::backoff(tx);
    } catch (...) {
      // A user exception aborts the transaction (speculative state is
      // rolled back, locks released, allocations freed) and propagates.
      tx.onAbort();
      throw;
    }
  }
}

template <typename F>
auto atomically(Domain& d, F&& fn) -> std::invoke_result_t<F&, Tx&> {
  return atomically(d, TxKind::Normal, std::forward<F>(fn));
}

template <typename F>
auto atomically(TxKind kind, F&& fn) -> std::invoke_result_t<F&, Tx&> {
  return atomically(defaultDomain(), kind, std::forward<F>(fn));
}

template <typename F>
auto atomically(F&& fn) -> std::invoke_result_t<F&, Tx&> {
  return atomically(defaultDomain(), TxKind::Normal, std::forward<F>(fn));
}

}  // namespace sftree::stm
