// Per-thread and aggregated STM statistics.
//
// The paper's Table 1 reports the *maximum number of transactional reads per
// operation*, counting the reads of every aborted attempt plus the read set
// of the committed attempt. ThreadStats therefore exposes an "operation
// bracket" (beginOp/endOp): data-structure operations wrap each abstract
// operation in a bracket and the STM accumulates reads into it across
// retries.
#pragma once

#include <algorithm>
#include <cstdint>

namespace sftree::stm {

struct ThreadStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t reads = 0;        // transactional reads (recorded in read set)
  std::uint64_t ureads = 0;       // unit loads (not recorded)
  std::uint64_t writes = 0;
  std::uint64_t elasticCuts = 0;  // elastic window slides past an old entry
  std::uint64_t snapshotExtensions = 0;

  // Operation bracket (Table 1 instrumentation). Reentrant: nested brackets
  // (an operation composed into an enclosing one, e.g. inside vacation
  // transactions) fold into the outermost bracket.
  std::uint64_t ops = 0;
  std::uint64_t opReads = 0;      // reads since beginOp, across retries
  std::uint64_t maxOpReads = 0;
  std::uint64_t totalOpReads = 0;
  int opDepth = 0;
  bool opOpen = false;

  void beginOp() {
    if (opDepth++ > 0) return;
    opOpen = true;
    opReads = 0;
  }

  void endOp() {
    if (opDepth > 0 && --opDepth > 0) return;
    if (!opOpen) return;
    opOpen = false;
    ++ops;
    totalOpReads += opReads;
    maxOpReads = std::max(maxOpReads, opReads);
  }

  void onRead() {
    ++reads;
    if (opOpen) ++opReads;
  }

  void onUread() {
    ++ureads;
    // Unit loads are deliberately *not* counted as transactional reads in
    // the operation bracket: Table 1 counts reads that incur TM bookkeeping.
  }

  void reset() { *this = ThreadStats{}; }

  ThreadStats& operator+=(const ThreadStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    reads += o.reads;
    ureads += o.ureads;
    writes += o.writes;
    elasticCuts += o.elasticCuts;
    snapshotExtensions += o.snapshotExtensions;
    ops += o.ops;
    totalOpReads += o.totalOpReads;
    maxOpReads = std::max(maxOpReads, o.maxOpReads);
    return *this;
  }

  double abortRatio() const {
    const double attempts = static_cast<double>(commits + aborts);
    return attempts == 0.0 ? 0.0 : static_cast<double>(aborts) / attempts;
  }

  double meanOpReads() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(totalOpReads) / static_cast<double>(ops);
  }
};

}  // namespace sftree::stm
