// Per-thread and aggregated STM statistics.
//
// The paper's Table 1 reports the *maximum number of transactional reads per
// operation*, counting the reads of every aborted attempt plus the read set
// of the committed attempt. ThreadStats therefore exposes an "operation
// bracket" (beginOp/endOp): data-structure operations wrap each abstract
// operation in a bracket and the STM accumulates reads into it across
// retries.
//
// Counters live in per-(thread, domain) slots that an aggregator may read
// while the owning thread is still running transactions. All mutations and
// snapshot reads therefore go through relaxed single-word atomics: the
// owning thread is the only writer, so the compiled fast path is a plain
// load/add/store, while concurrent snapshots stay well-defined (they remain
// *semantically* racy — a snapshot taken mid-run mixes counters from
// different instants, which is fine for progress reporting).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "obs/abort_cause.hpp"
#include "obs/histogram.hpp"

namespace sftree::stm {

namespace detail {

inline std::uint64_t statLoad(const std::uint64_t& c) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(c))
      .load(std::memory_order_relaxed);
}

inline void statStore(std::uint64_t& c, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(c).store(v, std::memory_order_relaxed);
}

// Single-writer increment: compiles to a plain add, no lock prefix.
inline void statBump(std::uint64_t& c, std::uint64_t delta = 1) {
  statStore(c, statLoad(c) + delta);
}

}  // namespace detail

struct ThreadStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t reads = 0;        // transactional reads (recorded in read set)
  std::uint64_t ureads = 0;       // unit loads (not recorded)
  std::uint64_t writes = 0;
  std::uint64_t elasticCuts = 0;  // elastic window slides past an old entry
  std::uint64_t snapshotExtensions = 0;
  // Read-only transaction mode (TxKind::ReadOnly) breakdown.
  std::uint64_t roCommits = 0;  // commits that ran in zero-logging RO mode
  // Stale RO snapshot: clock re-read + restart of the op body (the RO
  // equivalent of a snapshot extension; not counted as an abort).
  std::uint64_t roSnapshotExtensions = 0;
  std::uint64_t roPromotions = 0;  // write inside RO -> restarted read-write
  // Write-set lookup cost: findWrite/locked-orec probes that passed the
  // bloom filter, and the total entries/slots they examined. The mean
  // probe length is the O(W)-scan regression canary.
  std::uint64_t writeLookups = 0;
  std::uint64_t writeProbes = 0;
  // Abort/restart taxonomy (see obs/abort_cause.hpp). The conflict-cause
  // entries partition `aborts` exactly: conflictAbortTotal() == aborts.
  // The restart entries (RO snapshot extension / promotion) tag intentional
  // restarts and do not contribute to `aborts`; abortsByCause[kRoPromotion]
  // tracks roPromotions, and abortsByCause[kRoSnapshotExtension] counts only
  // extensions that restarted the op body (a subset of roSnapshotExtensions,
  // which also counts free mid-read slides).
  std::uint64_t abortsByCause[obs::kAbortCauseCount] = {};
  // Attempt latency (ns), split by outcome; recorded per attempt when
  // obs::txTimingEnabled() (the default).
  obs::LogHistogram txCommitNs;
  obs::LogHistogram txAbortNs;

  // Operation bracket (Table 1 instrumentation). Reentrant: nested brackets
  // (an operation composed into an enclosing one, e.g. inside vacation
  // transactions) fold into the outermost bracket. Bracket-internal state
  // (opReads, opDepth, opOpen) is owner-thread-only and never aggregated.
  std::uint64_t ops = 0;
  std::uint64_t opReads = 0;      // reads since beginOp, across retries
  std::uint64_t maxOpReads = 0;
  std::uint64_t totalOpReads = 0;
  int opDepth = 0;
  bool opOpen = false;

  void beginOp() {
    if (opDepth++ > 0) return;
    opOpen = true;
    opReads = 0;
  }

  void endOp() {
    if (opDepth > 0 && --opDepth > 0) return;
    if (!opOpen) return;
    opOpen = false;
    detail::statBump(ops);
    detail::statBump(totalOpReads, opReads);
    detail::statStore(maxOpReads,
                      std::max(detail::statLoad(maxOpReads), opReads));
  }

  void onRead() {
    detail::statBump(reads);
    if (opOpen) ++opReads;
  }

  // Batched variant: the Tx counts reads in a plain register-resident
  // counter and flushes once per attempt (commit or abort), taking the
  // atomic-ref pair off the per-read fast path.
  void onReadBatch(std::uint64_t n) {
    detail::statBump(reads, n);
    if (opOpen) opReads += n;
  }

  void onUread() {
    detail::statBump(ureads);
    // Unit loads are deliberately *not* counted as transactional reads in
    // the operation bracket: Table 1 counts reads that incur TM bookkeeping.
  }

  void onUreadBatch(std::uint64_t n) { detail::statBump(ureads, n); }

  void onWrite() { detail::statBump(writes); }
  void onCommit() { detail::statBump(commits); }
  void onAbort(obs::AbortCause c) {
    detail::statBump(aborts);
    detail::statBump(abortsByCause[obs::abortCauseIndex(c)]);
  }
  // Intentional restart (RO snapshot extension / promotion): taxonomy only,
  // not an abort.
  void onRestart(obs::AbortCause c) {
    detail::statBump(abortsByCause[obs::abortCauseIndex(c)]);
  }
  void onElasticCut() { detail::statBump(elasticCuts); }
  void onSnapshotExtension() { detail::statBump(snapshotExtensions); }
  void onRoCommit() { detail::statBump(roCommits); }
  void onRoSnapshotExtension() { detail::statBump(roSnapshotExtensions); }
  void onRoPromotion() { detail::statBump(roPromotions); }
  // Batched like onReadBatch: the Tx accumulates lookup/probe counts in
  // plain members and flushes once per attempt.
  void onWriteLookup(std::uint64_t lookups, std::uint64_t probes) {
    detail::statBump(writeLookups, lookups);
    detail::statBump(writeProbes, probes);
  }

  // Concurrency-safe copy of the aggregatable counters (bracket internals
  // are left at their defaults). Used when summing over live slots.
  ThreadStats snapshot() const {
    ThreadStats out;
    out.commits = detail::statLoad(commits);
    out.aborts = detail::statLoad(aborts);
    out.reads = detail::statLoad(reads);
    out.ureads = detail::statLoad(ureads);
    out.writes = detail::statLoad(writes);
    out.elasticCuts = detail::statLoad(elasticCuts);
    out.snapshotExtensions = detail::statLoad(snapshotExtensions);
    out.roCommits = detail::statLoad(roCommits);
    out.roSnapshotExtensions = detail::statLoad(roSnapshotExtensions);
    out.roPromotions = detail::statLoad(roPromotions);
    out.writeLookups = detail::statLoad(writeLookups);
    out.writeProbes = detail::statLoad(writeProbes);
    for (std::size_t i = 0; i < obs::kAbortCauseCount; ++i)
      out.abortsByCause[i] = detail::statLoad(abortsByCause[i]);
    out.txCommitNs = txCommitNs.snapshot();
    out.txAbortNs = txAbortNs.snapshot();
    out.ops = detail::statLoad(ops);
    out.totalOpReads = detail::statLoad(totalOpReads);
    out.maxOpReads = detail::statLoad(maxOpReads);
    return out;
  }

  // Quiescent use only (no transactions in flight on this slot's thread,
  // or the loss of in-flight increments is acceptable).
  void reset() {
    detail::statStore(commits, 0);
    detail::statStore(aborts, 0);
    detail::statStore(reads, 0);
    detail::statStore(ureads, 0);
    detail::statStore(writes, 0);
    detail::statStore(elasticCuts, 0);
    detail::statStore(snapshotExtensions, 0);
    detail::statStore(roCommits, 0);
    detail::statStore(roSnapshotExtensions, 0);
    detail::statStore(roPromotions, 0);
    detail::statStore(writeLookups, 0);
    detail::statStore(writeProbes, 0);
    for (std::size_t i = 0; i < obs::kAbortCauseCount; ++i)
      detail::statStore(abortsByCause[i], 0);
    txCommitNs.reset();
    txAbortNs.reset();
    detail::statStore(ops, 0);
    detail::statStore(totalOpReads, 0);
    detail::statStore(maxOpReads, 0);
  }

  // Plain aggregation of two private copies (not concurrency-safe; use
  // snapshot() to lift a live slot into a private copy first).
  ThreadStats& operator+=(const ThreadStats& o) {
    commits += o.commits;
    aborts += o.aborts;
    reads += o.reads;
    ureads += o.ureads;
    writes += o.writes;
    elasticCuts += o.elasticCuts;
    snapshotExtensions += o.snapshotExtensions;
    roCommits += o.roCommits;
    roSnapshotExtensions += o.roSnapshotExtensions;
    roPromotions += o.roPromotions;
    writeLookups += o.writeLookups;
    writeProbes += o.writeProbes;
    for (std::size_t i = 0; i < obs::kAbortCauseCount; ++i)
      abortsByCause[i] += o.abortsByCause[i];
    txCommitNs += o.txCommitNs;
    txAbortNs += o.txAbortNs;
    ops += o.ops;
    totalOpReads += o.totalOpReads;
    maxOpReads = std::max(maxOpReads, o.maxOpReads);
    return *this;
  }

  // Sum of the conflict-cause counters; equals `aborts` by construction.
  std::uint64_t conflictAbortTotal() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < obs::kFirstRestartCause; ++i)
      total += detail::statLoad(abortsByCause[i]);
    return total;
  }

  std::uint64_t abortsFor(obs::AbortCause c) const {
    return detail::statLoad(abortsByCause[obs::abortCauseIndex(c)]);
  }

  double abortRatio() const {
    const double attempts = static_cast<double>(commits + aborts);
    return attempts == 0.0 ? 0.0 : static_cast<double>(aborts) / attempts;
  }

  double meanOpReads() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(totalOpReads) / static_cast<double>(ops);
  }

  double meanWriteProbe() const {
    return writeLookups == 0 ? 0.0
                             : static_cast<double>(writeProbes) /
                                   static_cast<double>(writeLookups);
  }
};

}  // namespace sftree::stm
