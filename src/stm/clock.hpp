// Version clock (TL2 / TinySTM style), one per stm::Domain.
#pragma once

#include <atomic>
#include <cstdint>

namespace sftree::stm {

// A monotonically increasing commit timestamp shared by all transactions
// running against one domain. Read at transaction begin (snapshot),
// incremented once per writing commit.
class GlobalClock {
 public:
  std::uint64_t now() const { return time_.load(std::memory_order_acquire); }

  // Returns the new (post-increment) commit timestamp.
  std::uint64_t tick() { return time_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  void resetForTest() { time_.store(0, std::memory_order_release); }

 private:
  alignas(64) std::atomic<std::uint64_t> time_{0};
};

}  // namespace sftree::stm
