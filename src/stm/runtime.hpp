// Per-thread transaction context, retry backoff, and the legacy singleton
// shim. The process-global state the old `Runtime` singleton held now lives
// in instantiable stm::Domain objects (see domain.hpp); this header keeps
// the thread-side machinery: one lazily created transaction descriptor per
// thread, plus the per-(thread, domain) statistics slots.
#pragma once

#include <memory>
#include <vector>

#include "stm/domain.hpp"
#include "stm/stats.hpp"
#include "stm/tx.hpp"

namespace sftree::stm {

namespace detail {

// Per-thread transaction context. The descriptor is created lazily on the
// first atomically() and its per-domain statistics slots are folded back
// into their domains when the thread exits.
struct ThreadContext {
  std::unique_ptr<Tx> tx;
  std::vector<std::shared_ptr<StatsSlot>> slots;
  // Direct-mapped slot cache keyed on the domain pointer: a thread driving
  // a per-shard map alternates domains on every operation, so a single
  // most-recently-used entry would miss almost always. Entries self-
  // invalidate (a dead domain nulls its slots' back-pointers), so a stale
  // entry can never alias a new domain at the same address.
  static constexpr std::size_t kSlotCacheSize = 16;  // power of two
  StatsSlot* slotCache[kSlotCacheSize] = {};

  ~ThreadContext();
  Tx& acquire();
  // The calling thread's statistics slot for `d` (created on first use).
  ThreadStats& statsFor(Domain& d);
};

ThreadContext& context();

// Bounded randomized exponential backoff keyed on the retry count.
void backoff(Tx& tx);

}  // namespace detail

// True when the calling thread is inside a transaction.
bool inTransaction();

// The calling thread's active transaction. Precondition: inTransaction().
Tx& currentTx();

// The calling thread's statistics against `d` (slot created on demand).
ThreadStats& threadStats(Domain& d);
// Convenience overload for the default process domain.
ThreadStats& threadStats();

// Legacy shim for the pre-domain singleton API: `Runtime::instance()` is
// the default process domain. New code should use stm::defaultDomain() or
// carry an explicit Domain.
class Runtime {
 public:
  static Domain& instance() { return defaultDomain(); }
};

}  // namespace sftree::stm
