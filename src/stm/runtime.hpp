// Process-wide STM runtime: clock, orec table, configuration and the thread
// registry used for statistics aggregation.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "stm/clock.hpp"
#include "stm/config.hpp"
#include "stm/orec.hpp"
#include "stm/stats.hpp"
#include "stm/tx.hpp"

namespace sftree::stm {

class Runtime {
 public:
  static Runtime& instance();

  GlobalClock& clock() { return clock_; }
  OrecTable& orecs() { return orecs_; }
  // NOrec global sequence lock: even = free, odd = a writer is committing.
  std::atomic<std::uint64_t>& norecSeq() { return norecSeq_; }

  const Config& config() const { return config_; }
  // Must only be called while no transaction is running (e.g. between
  // benchmark phases); the lock mode is read at every write/commit.
  void setConfig(const Config& c) { config_ = c; }
  void setLockMode(LockMode m) { config_.lockMode = m; }

  // --- thread registry -----------------------------------------------------
  // Descriptors register on creation so that aggregate statistics include
  // every thread that ever ran transactions (departed threads fold their
  // stats into `departed_`).
  void registerTx(Tx* tx);
  void unregisterTx(Tx* tx);

  // Sum of all per-thread statistics. Only exact when no transactions are in
  // flight; during a run it is an (acceptable) racy snapshot for progress
  // reporting.
  ThreadStats aggregateStats();
  // Zeroes every registered thread's counters (quiescent use only).
  void resetStats();

 private:
  Runtime() = default;

  GlobalClock clock_;
  OrecTable orecs_;
  Config config_;
  alignas(64) std::atomic<std::uint64_t> norecSeq_{0};

  std::mutex mu_;
  std::vector<Tx*> live_;
  ThreadStats departed_;
};

namespace detail {

// Per-thread transaction context. The descriptor is created lazily on the
// first atomically() and unregistered when the thread exits.
struct ThreadContext {
  std::unique_ptr<Tx> tx;

  ~ThreadContext();
  Tx& acquire();
};

ThreadContext& context();

// Bounded randomized exponential backoff keyed on the retry count.
void backoff(Tx& tx);

}  // namespace detail

// True when the calling thread is inside a transaction.
bool inTransaction();

// The calling thread's active transaction. Precondition: inTransaction().
Tx& currentTx();

// The calling thread's statistics (descriptor created on demand).
ThreadStats& threadStats();

}  // namespace sftree::stm
