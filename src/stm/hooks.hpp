// Inline-buffer callback storage for transaction hooks.
//
// Commit and tx-end hooks fire on essentially every tree update (retire an
// unlinked node, signal quiescence completion) and capture at most a couple
// of pointers. Storing them as std::vector<std::function<void()>> pays a
// heap allocation whenever the vector's buffer is stolen at commit and
// whenever a capture outgrows std::function's small buffer. SmallHook keeps
// the callable inline (48 bytes of capture, enough for several pointers)
// and HookVec keeps the first few hooks in the object itself, so the common
// one-or-two-hook transaction allocates nothing.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sftree::stm {

class SmallHook {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallHook() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallHook>>>
  SmallHook(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      static constexpr Ops ops = {
          [](void* p) { (*static_cast<Fn*>(p))(); },
          [](void* p) { static_cast<Fn*>(p)->~Fn(); },
          [](void* dst, void* src) {
            new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          },
      };
      new (buf_) Fn(std::forward<F>(f));
      ops_ = &ops;
    } else {
      // Oversized capture: one heap block, pointer stored inline.
      static constexpr Ops ops = {
          [](void* p) { (**static_cast<Fn**>(p))(); },
          [](void* p) { delete *static_cast<Fn**>(p); },
          [](void* dst, void* src) {
            *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
          },
      };
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &ops;
    }
  }

  SmallHook(SmallHook&& o) noexcept { moveFrom(o); }
  SmallHook& operator=(SmallHook&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }

  SmallHook(const SmallHook&) = delete;
  SmallHook& operator=(const SmallHook&) = delete;

  ~SmallHook() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    // Moves the callable from src into dst's (raw) buffer and ends src's
    // lifetime; dst takes the same ops.
    void (*relocate)(void* dst, void* src);
  };

  void moveFrom(SmallHook& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// A sequence of SmallHooks with inline storage for the first few. clear()
// keeps the overflow vector's capacity, so a reused transaction descriptor
// reaches a steady state with zero allocation per transaction.
class HookVec {
 public:
  static constexpr std::size_t kInlineHooks = 4;

  HookVec() = default;
  HookVec(HookVec&& o) noexcept : count_(o.count_) {
    const std::size_t n = count_ < kInlineHooks ? count_ : kInlineHooks;
    for (std::size_t i = 0; i < n; ++i) {
      new (slot(i)) SmallHook(std::move(*o.slot(i)));
      o.slot(i)->~SmallHook();
    }
    overflow_ = std::move(o.overflow_);
    o.count_ = 0;
  }

  HookVec(const HookVec&) = delete;
  HookVec& operator=(const HookVec&) = delete;
  HookVec& operator=(HookVec&&) = delete;

  ~HookVec() { clear(); }

  template <typename F>
  void push(F&& f) {
    if (count_ < kInlineHooks) {
      new (slot(count_)) SmallHook(std::forward<F>(f));
    } else {
      overflow_.emplace_back(std::forward<F>(f));
    }
    ++count_;
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  // Invokes every hook in registration order. Hooks must not add hooks to
  // this same HookVec while running (commit hooks that may start new
  // transactions are stolen into a local HookVec first; see Tx).
  void runAll() {
    const std::size_t n = count_ < kInlineHooks ? count_ : kInlineHooks;
    for (std::size_t i = 0; i < n; ++i) (*slot(i))();
    for (auto& h : overflow_) h();
  }

  // Invokes every hook in REVERSE registration order — guard-release
  // semantics: tx-end hooks are typically completion signals for scopes
  // the operation entered in order (a map-level census ticket, then the
  // tree-level quiescence guards inside it), and an outer scope must not
  // be released while an inner scope's signal is still pending: the
  // census ticket is exactly what keeps the tree (and its registry) alive
  // for the inner hook to touch.
  void runAllReverse() {
    for (auto it = overflow_.rbegin(); it != overflow_.rend(); ++it) (*it)();
    const std::size_t n = count_ < kInlineHooks ? count_ : kInlineHooks;
    for (std::size_t i = n; i-- > 0;) (*slot(i))();
  }

  void clear() {
    const std::size_t n = count_ < kInlineHooks ? count_ : kInlineHooks;
    for (std::size_t i = 0; i < n; ++i) slot(i)->~SmallHook();
    overflow_.clear();  // keeps capacity
    count_ = 0;
  }

 private:
  SmallHook* slot(std::size_t i) {
    return std::launder(reinterpret_cast<SmallHook*>(
        inline_ + i * sizeof(SmallHook)));
  }

  std::size_t count_ = 0;
  alignas(SmallHook) unsigned char inline_[kInlineHooks * sizeof(SmallHook)];
  std::vector<SmallHook> overflow_;
};

}  // namespace sftree::stm
