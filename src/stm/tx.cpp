#include "stm/tx.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>

#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "stm/domain.hpp"

namespace sftree::stm {

namespace {

inline Word atomicLoadWord(const Word* addr) {
  return std::atomic_ref<Word>(*const_cast<Word*>(addr))
      .load(std::memory_order_relaxed);
}

inline void atomicStoreWord(Word* addr, Word value) {
  // Release so that a non-transactional acquire load of (say) a freshly
  // published node pointer also observes the node's initialization — the
  // maintenance thread's traversal relies on this.
  std::atomic_ref<Word>(*addr).store(value, std::memory_order_release);
}

inline std::uint64_t addressSignature(const void* addr) {
  auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  a *= 0x9E3779B97F4A7C15ULL;
  return std::uint64_t{1} << (a >> 58);
}

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

// Bound on waiting for another domain's NOrec writer while this transaction
// itself holds one or more sequence locks. Two cross-domain writers waiting
// for each other's lock would otherwise spin forever; past the bound the
// younger wait aborts (randomized backoff then breaks the symmetry).
constexpr std::uint64_t kNorecHeldSpinLimit = 1 << 12;

}  // namespace

Tx::Tx() {
  readSet_.reserve(256);
  writeSet_.reserve(64);
  views_.reserve(4);
}

Tx::~Tx() = default;

std::uint64_t Tx::norecWaitEven(Domain& d) {
  for (;;) {
    const std::uint64_t s = d.norecSeq().load(std::memory_order_acquire);
    if ((s & 1) == 0) return s;
    cpuRelax();
  }
}

void Tx::begin(Domain& d, TxKind kind, ThreadStats& stats) {
  assert(!active_ && "flat nesting is handled by stm::atomically");
  stats_ = &stats;
  kind_ = kind;
  active_ = true;
  cfg_ = d.config();
  backend_ = cfg_.backend;
  // The ReadOnly hint survives until a write (or a run of stale restarts)
  // withdraws it; roPromoted_ then forces the remaining attempts of this
  // operation into Normal mode.
  ro_ = (kind == TxKind::ReadOnly) && !roPromoted_;
  pendingReads_ = 0;
  pendingUreads_ = 0;
  norecRoPending_ = 0;
  abortIsRestart_ = false;
  views_.clear();
  views_.push_back(DomainView{&d});
  curView_ = 0;
  d.txEnter();  // released by exitDomainsInFlight at attempt end
  if (backend_ == TmBackend::NOrec) {
    // NOrec has no per-location metadata; elastic windows do not apply.
    elasticPhase_ = false;
    // Snapshot: wait until no writer holds the domain's sequence lock.
    views_[0].rv = norecWaitEven(d);
  } else {
    elasticPhase_ = (kind == TxKind::Elastic);
    views_[0].rv = d.clock().now();
    if (ro_) {
      // The clock fast path is only sound when no committer that ticked
      // before our snapshot is still writing back (its stores would be
      // invisible to the clock-equality check).
      views_[0].roFast =
          d.writebackActive().load(std::memory_order_acquire) == 0;
    }
  }
  readSet_.clear();
  valueLog_.clear();
  writeSet_.clear();
  speculativeAllocs_.clear();
  commitHooks_.clear();
  txEndHooks_.clear();
  settledHooks_.clear();
  writeSigs_ = 0;
  idxMask_ = 0;
  window_.clear();
  if (elasticPhase_) window_.reserve(cfg_.elasticWindow);
  windowNext_ = 0;
  abortCause_ = obs::AbortCause::kUserRestart;
  // Sampled: one attempt in (mask+1) pays the timestamp reads; the
  // disabled/unsampled fast path is one relaxed load plus a counter bump.
  timed_ = obs::txTimingEnabled() &&
           (timingSeq_++ & obs::txTimingSampleMask()) == 0;
  if (timed_) beginTick_ = obs::tick();
  ++attempts_;
}

std::size_t Tx::enterDomain(Domain& d) {
  assert(active_ && "DomainScope requires an active transaction");
  const std::size_t prev = curView_;
  if (views_[curView_].domain == &d) return prev;
  for (std::size_t i = 0; i < views_.size(); ++i) {
    if (views_[i].domain == &d) {
      curView_ = i;
      return prev;
    }
  }
  // Join a new clock domain mid-transaction with a fresh snapshot. The
  // join is a snapshot *advance* in real time: the new domain's clock may
  // already reflect cross-domain commits that invalidated reads this
  // transaction performed earlier, so — exactly like a snapshot extension —
  // everything read so far must be revalidated before any value from the
  // new snapshot becomes visible. Without this, a reader could see the old
  // half of a cross-domain commit in one domain and the new half in the
  // other.
  assert(d.config().backend == backend_ &&
         "all domains joined by one transaction must share a TM backend");
  DomainView v{&d};
  v.rv = (backend_ == TmBackend::NOrec) ? norecWaitEven(d) : d.clock().now();
  if (ro_ && backend_ == TmBackend::Orec) {
    v.roFast = d.writebackActive().load(std::memory_order_acquire) == 0;
    // Zero-logging mode has no read set to revalidate. The join is still a
    // snapshot advance, so it is only sound if no domain we already read
    // from has committed since its snapshot — the clocks and write-back
    // gates stand in for the read set, and they are checked *after* the
    // new snapshot is taken: if the new rv includes any tick of a
    // cross-domain commit, that committer raised every gate before its
    // first tick, so we either see its gate or (once it finished) its
    // tick in the touched domain. A hit restarts the op body at fresh
    // snapshots.
    for (const DomainView& tv : views_) {
      if (tv.roTouched &&
          (tv.domain->clock().now() != tv.rv ||
           tv.domain->writebackActive().load(std::memory_order_acquire) !=
               0)) {
        stats_->onRoSnapshotExtension();
        roRestart();
      }
    }
  }
  // Enter the census only once the view is recorded: exitDomainsInFlight
  // releases exactly the domains present in views_, and both the RO
  // restart above and push_back itself (allocation) may throw — txEnter is
  // the one step here that cannot.
  views_.push_back(v);
  d.txEnter();  // released by exitDomainsInFlight at attempt end
  curView_ = views_.size() - 1;
  if (backend_ == TmBackend::NOrec) {
    if (!valueLog_.empty()) norecValidate(obs::AbortCause::kCrossDomainJoin);
  } else if (!readSet_.empty() || !window_.empty()) {
    if (!validateReadSet()) abortSelf(obs::AbortCause::kCrossDomainJoin);
  }
  return prev;
}

[[noreturn]] void Tx::abortSelf(obs::AbortCause cause) {
  abortCause_ = cause;
  throw TxAbort{};
}

[[noreturn]] void Tx::restart() { abortSelf(obs::AbortCause::kUserRestart); }

void Tx::finishAttempt(bool committed) {
  if (timed_ && stats_ != nullptr) {
    const std::uint64_t ns = obs::ticksToNs(obs::tick() - beginTick_);
    (committed ? stats_->txCommitNs : stats_->txAbortNs).record(ns);
  }
  if (obs::traceEnabled()) {
    const obs::TraceKind kind = committed        ? obs::TraceKind::kTxCommit
                                : abortIsRestart_ ? obs::TraceKind::kTxRestart
                                                  : obs::TraceKind::kTxAbort;
    obs::trace(kind, reinterpret_cast<std::uint64_t>(views_.front().domain),
               attempts_, static_cast<std::uint8_t>(abortCause_),
               static_cast<std::uint16_t>(kind_));
  }
}

void Tx::onAbort() {
  releaseHeldLocks(/*restoreOldVersion=*/true);
  endWritebacks();
  releaseNorecSeqLocks();
  // LIFO: a speculative allocation may depend on an earlier one (a node
  // carved from a speculatively created structure's arena); roll back in
  // reverse registration order so dependents are freed before owners.
  for (auto it = speculativeAllocs_.rbegin(); it != speculativeAllocs_.rend();
       ++it) {
    it->deleter(it->ptr);
  }
  speculativeAllocs_.clear();
  commitHooks_.clear();
  if (stats_ != nullptr) flushReadStats();
  finishAttempt(/*committed=*/false);
  if (abortIsRestart_) {
    // RO snapshot refresh or RO->RW promotion: a deliberate restart, not a
    // conflict — its own counter tracks it, and the taxonomy tags it under
    // a restart cause that stays out of the `aborts` sum.
    abortIsRestart_ = false;
    if (stats_ != nullptr) stats_->onRestart(abortCause_);
  } else if (stats_ != nullptr) {
    stats_->onAbort(abortCause_);
  }
  exitDomainsInFlight();
  active_ = false;
  runTxEndHooks();
  runSettledHooks();
}

void Tx::exitDomainsInFlight() {
  for (const DomainView& v : views_) v.domain->txExit();
}

void Tx::onAbortDelete(void* ptr, void (*deleter)(void*)) {
  speculativeAllocs_.push_back(AllocEntry{ptr, deleter});
}

// --- write-set lookup -------------------------------------------------------

namespace {

inline std::size_t pointerHash(const void* p) {
  auto a = reinterpret_cast<std::uintptr_t>(p) >> 3;
  a *= 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(a >> 32 ^ a);
}

}  // namespace

void Tx::writeIndexInsert(const Word* addr, std::size_t pos) {
  std::size_t slot = pointerHash(addr) & idxMask_;
  while (writeIdx_[slot] != 0) slot = (slot + 1) & idxMask_;
  writeIdx_[slot] = static_cast<std::uint32_t>(pos + 1);
}

void Tx::orecIndexInsert(const std::atomic<OrecWord>* orec, std::size_t pos) {
  std::size_t slot = pointerHash(orec) & idxMask_;
  while (orecIdx_[slot] != 0) slot = (slot + 1) & idxMask_;
  orecIdx_[slot] = static_cast<std::uint32_t>(pos + 1);
}

void Tx::rebuildWriteIndexes() {
  // Capacity >= 4x the write set keeps both tables under half full until
  // the set doubles again (distinct locked orecs never outnumber entries).
  std::size_t cap = 4 * kWriteIndexThreshold;
  while (cap < 4 * writeSet_.size()) cap <<= 1;
  idxMask_ = cap - 1;
  writeIdx_.assign(cap, 0);
  orecIdx_.assign(cap, 0);
  for (std::size_t i = 0; i < writeSet_.size(); ++i) {
    writeIndexInsert(writeSet_[i].addr, i);
    if (writeSet_[i].locked) orecIndexInsert(writeSet_[i].orec, i);
  }
}

void Tx::noteOrecLocked(std::size_t pos) {
  if (idxMask_ != 0) orecIndexInsert(writeSet_[pos].orec, pos);
}

Tx::WriteEntry* Tx::findWrite(const Word* addr) {
  // Most recent write first: read-after-write overwhelmingly targets the
  // location just written (AVL/RB rebalancing re-reads the height/color it
  // updated one step earlier).
  if (!writeSet_.empty() && writeSet_.back().addr == addr) {
    ++pendingWriteLookups_;
    ++pendingWriteProbes_;
    return &writeSet_.back();
  }
  ++pendingWriteLookups_;
  if (idxMask_ == 0) {
    for (auto it = writeSet_.rbegin(); it != writeSet_.rend(); ++it) {
      ++pendingWriteProbes_;
      if (it->addr == addr) return &*it;
    }
    return nullptr;
  }
  std::size_t slot = pointerHash(addr) & idxMask_;
  ++pendingWriteProbes_;
  while (writeIdx_[slot] != 0) {
    WriteEntry& we = writeSet_[writeIdx_[slot] - 1];
    if (we.addr == addr) return &we;
    slot = (slot + 1) & idxMask_;
    ++pendingWriteProbes_;
  }
  return nullptr;
}

Tx::WriteEntry* Tx::findLockedByOrec(const std::atomic<OrecWord>* orec) {
  if (idxMask_ == 0) {
    for (auto& we : writeSet_) {
      if (we.orec == orec && we.locked) return &we;
    }
    return nullptr;
  }
  std::size_t slot = pointerHash(orec) & idxMask_;
  while (orecIdx_[slot] != 0) {
    WriteEntry& we = writeSet_[orecIdx_[slot] - 1];
    if (we.orec == orec) return &we;
    slot = (slot + 1) & idxMask_;
  }
  return nullptr;
}

Tx::SampledWord Tx::sampleCommitted(const Word* addr,
                                    std::atomic<OrecWord>* orec,
                                    bool spinOnLock) {
  for (;;) {
    OrecWord v1 = orec->load(std::memory_order_acquire);
    if (orec::isLocked(v1)) {
      if (orec::owner(v1) == this) {
        // We hold the lock (eager mode). Memory still has the committed
        // value because writes are buffered until commit.
        WriteEntry* we = findLockedByOrec(orec);
        return {atomicLoadWord(addr),
                we ? we->prevVersion : views_[curView_].rv};
      }
      if (spinOnLock) {
        cpuRelax();
        continue;
      }
      abortSelf(obs::AbortCause::kLockConflict);
    }
    Word value = atomicLoadWord(addr);
    std::atomic_thread_fence(std::memory_order_acquire);
    OrecWord v2 = orec->load(std::memory_order_relaxed);
    if (v1 == v2) return {value, orec::version(v1)};
    // A commit slipped in between; retry the sandwich.
  }
}

[[noreturn]] void Tx::roRestart() {
  // A stale RO restart re-runs the whole operation body, where a logged
  // transaction would have revalidated its read set in place and carried
  // on. One restart is cheap insurance on a quiet domain; a second means
  // writers are winning the race — withdraw the hint and retry with a
  // read set.
  constexpr std::uint32_t kRoPromoteAttempts = 2;
  if (attempts_ >= kRoPromoteAttempts) roPromoted_ = true;
  abortCause_ = obs::AbortCause::kRoSnapshotExtension;
  abortIsRestart_ = true;
  backoffWaiver_ = true;
  throw TxAbort{};
}

[[noreturn]] void Tx::roPromote() {
  stats_->onRoPromotion();
  roPromoted_ = true;
  abortCause_ = obs::AbortCause::kRoPromotion;
  abortIsRestart_ = true;
  backoffWaiver_ = true;
  throw TxAbort{};
}

Word Tx::roRead(const Word* addr) {
  DomainView& v = views_[curView_];
  // Fast path: if the domain's clock still equals the snapshot, the value
  // just loaded cannot contain any post-snapshot write-back — a committer
  // ticks the clock *before* writing back, and the write-back's release
  // store paired with our acquire fence makes the tick visible with the
  // data. The read is then consistent at rv with no orec probe at all
  // (the orec table is 8 MiB of cold lines; the clock is one hot line).
  if (v.roFast) {
    const Word fast = atomicLoadWord(addr);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (v.domain->clock().now() == v.rv) {
      v.roTouched = true;
      ++pendingReads_;
      return fast;
    }
    // The clock is monotonic and rv is pinned: once it moved, the fast
    // path cannot succeed again until a free snapshot slide renews it.
    v.roFast = false;
  }
  // The clock moved past the snapshot: validate this read against its orec
  // (location unchanged since rv => still consistent at rv).
  std::atomic<OrecWord>* orec = v.domain->orecs().forAddress(addr);
  for (;;) {
    SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/false);
    if (s.version <= v.rv) {
      // The location has not changed since the snapshot: the value is part
      // of a consistent state at rv. Nothing is logged.
      v.roTouched = true;
      ++pendingReads_;
      return s.value;
    }
    stats_->onRoSnapshotExtension();
    if (pendingReads_ == 0) {
      // Nothing read yet anywhere: sliding this view's snapshot forward is
      // free (the RO analogue of a successful snapshot extension). The
      // write-back gate must be sampled *after* the clock: a committer
      // whose tick the new snapshot includes raised its gate before that
      // tick, so this order either sees the gate or the committer has
      // finished.
      v.rv = v.domain->clock().now();
      v.roFast =
          v.domain->writebackActive().load(std::memory_order_acquire) == 0;
      continue;
    }
    // Earlier zero-logging reads cannot be revalidated; re-read the clock
    // on retry and restart the operation body at the fresh snapshot.
    roRestart();
  }
}

Word Tx::read(const Word* addr) {
  assert(active_);
  if (ro_) {
    // Read-only mode: no write set to consult (a write would have promoted
    // the transaction), no read-set logging on the orec backend.
    if (backend_ == TmBackend::NOrec) return norecRead(addr);
    return roRead(addr);
  }
  if ((writeSigs_ & addressSignature(addr)) != 0) {
    if (WriteEntry* we = findWrite(addr)) {
      ++pendingReads_;
      return we->value;
    }
  }
  if (backend_ == TmBackend::NOrec) return norecRead(addr);
  DomainView& v = views_[curView_];
  std::atomic<OrecWord>* orec = v.domain->orecs().forAddress(addr);

  if (elasticPhase_) {
    // Hand-over-hand: the new read must be consistent with the (at most
    // `elasticWindow`) most recent reads; anything older was cut.
    SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/false);
    elasticValidateWindow();
    elasticRecord(orec, s.version);
    if (s.version > v.rv) v.rv = s.version;
    ++pendingReads_;
    return s.value;
  }

  for (;;) {
    SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/false);
    if (s.version > v.rv) {
      // The location is newer than our snapshot of its domain: try to slide
      // the snapshot forward (lazy snapshot extension) and re-sample.
      extendSnapshot(curView_);
      continue;
    }
    readSet_.push_back(ReadEntry{orec, s.version});
    ++pendingReads_;
    return s.value;
  }
}

Word Tx::readPinned(const Word* addr) {
  assert(active_);
  if (!elasticPhase_) return read(addr);
  // Elastic window phase. There is no write set yet (the first write ends
  // the phase), so go straight to a hand-over-hand sample — but record the
  // entry in the permanent read set instead of the sliding window, so no
  // later cut can evict it before the first write folds the window in.
  if (backend_ == TmBackend::NOrec) return norecRead(addr);
  DomainView& v = views_[curView_];
  std::atomic<OrecWord>* orec = v.domain->orecs().forAddress(addr);
  SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/false);
  elasticValidateWindow();
  readSet_.push_back(ReadEntry{orec, s.version});
  if (s.version > v.rv) v.rv = s.version;
  ++pendingReads_;
  return s.value;
}

Word Tx::uread(const Word* addr) {
  assert(active_);
  if ((writeSigs_ & addressSignature(addr)) != 0) {
    if (WriteEntry* we = findWrite(addr)) {
      ++pendingUreads_;
      return we->value;
    }
  }
  if (backend_ == TmBackend::NOrec) return norecUread(addr);
  std::atomic<OrecWord>* orec =
      views_[curView_].domain->orecs().forAddress(addr);
  SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/true);
  ++pendingUreads_;
  return s.value;
}

void Tx::write(Word* addr, Word value) {
  assert(active_);
  if (ro_) {
    // The ReadOnly hint was wrong for this execution: transparently restart
    // the attempt in read-write mode (zero-logging reads cannot be
    // retroactively logged, so the body must re-run).
    roPromote();
  }
  stats_->onWrite();
  if (elasticPhase_) {
    // First write: the elastic transaction becomes a normal one; the reads
    // still in the window must now stay valid until commit.
    foldElasticWindowIntoReadSet();
    elasticPhase_ = false;
  }
  if ((writeSigs_ & addressSignature(addr)) != 0) {
    if (WriteEntry* we = findWrite(addr)) {
      we->value = value;
      return;
    }
  }
  WriteEntry we{addr, value,
                views_[curView_].domain->orecs().forAddress(addr),
                /*prevVersion=*/0, /*locked=*/false, /*view=*/curView_};
  if (backend_ == TmBackend::Orec && cfg_.lockMode == LockMode::Eager) {
    acquireOrecForWrite(we);
  }
  writeSet_.push_back(we);
  writeSigs_ |= addressSignature(addr);
  if (idxMask_ != 0) {
    writeIndexInsert(addr, writeSet_.size() - 1);
    if (we.locked) orecIndexInsert(we.orec, writeSet_.size() - 1);
    if (4 * writeSet_.size() > idxMask_ + 1) rebuildWriteIndexes();
  } else if (writeSet_.size() > kWriteIndexThreshold) {
    rebuildWriteIndexes();
  }
}

void Tx::acquireOrecForWrite(WriteEntry& we) {
  DomainView& v = views_[we.view];
  for (;;) {
    OrecWord cur = we.orec->load(std::memory_order_acquire);
    if (orec::isLocked(cur)) {
      if (orec::owner(cur) == this) {
        // Another write entry of ours already owns this orec stripe.
        WriteEntry* holder = findLockedByOrec(we.orec);
        we.prevVersion = holder ? holder->prevVersion : v.rv;
        we.locked = false;
        return;
      }
      abortSelf(obs::AbortCause::kLockConflict);
    }
    if (orec::version(cur) > v.rv) {
      // Keep the snapshot consistent so read-after-write on this stripe is
      // safe; extension aborts us if the read set is stale.
      extendSnapshot(we.view);
      continue;
    }
    if (we.orec->compare_exchange_weak(cur, orec::makeLocked(this),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      we.prevVersion = orec::version(cur);
      we.locked = true;
      return;
    }
  }
}

bool Tx::validateEntry(const ReadEntry& e) const {
  OrecWord cur = e.orec->load(std::memory_order_acquire);
  if (orec::isLocked(cur)) {
    if (orec::owner(cur) != this) return false;
    const WriteEntry* we = const_cast<Tx*>(this)->findLockedByOrec(e.orec);
    return we != nullptr && we->prevVersion == e.version;
  }
  return orec::version(cur) == e.version;
}

bool Tx::validateReadSet() const {
  for (const ReadEntry& e : readSet_) {
    if (!validateEntry(e)) return false;
  }
  for (const ReadEntry& e : window_) {
    if (!validateEntry(e)) return false;
  }
  return true;
}

void Tx::extendSnapshot(std::size_t viewIdx) {
  DomainView& v = views_[viewIdx];
  const std::uint64_t now = v.domain->clock().now();
  // The whole read set — including entries from other domains — must still
  // hold: this is what keeps a multi-domain snapshot globally consistent
  // (a cross-domain commit that invalidated any earlier read is caught
  // here before the extension makes its effects readable).
  if (!validateReadSet()) abortSelf(obs::AbortCause::kReadValidation);
  v.rv = now;
  stats_->onSnapshotExtension();
}

void Tx::elasticRecord(std::atomic<OrecWord>* orec, std::uint64_t version) {
  const std::size_t cap = cfg_.elasticWindow;
  if (window_.size() < cap) {
    window_.push_back(ReadEntry{orec, version});
    return;
  }
  // Overwrite the oldest entry: this is the "cut" — the evicted read is no
  // longer part of the transaction's consistency obligation.
  window_[windowNext_] = ReadEntry{orec, version};
  windowNext_ = (windowNext_ + 1) % cap;
  stats_->onElasticCut();
}

void Tx::elasticValidateWindow() {
  for (const ReadEntry& e : window_) {
    if (!validateEntry(e)) abortSelf(obs::AbortCause::kElasticValidation);
  }
  // Pinned reads (readPinned) sit in the permanent read set even during the
  // window phase. They join every hand-over-hand validation so the elastic
  // rv slide — and the rv+1 == wv commit shortcut built on it — can never
  // outrun them.
  for (const ReadEntry& e : readSet_) {
    if (!validateEntry(e)) abortSelf(obs::AbortCause::kElasticValidation);
  }
}

void Tx::foldElasticWindowIntoReadSet() {
  for (const ReadEntry& e : window_) readSet_.push_back(e);
  window_.clear();
  windowNext_ = 0;
}

void Tx::releaseHeldLocks(bool restoreOldVersion) {
  for (auto& we : writeSet_) {
    if (!we.locked) continue;
    const OrecWord out = restoreOldVersion
                             ? orec::makeVersion(we.prevVersion)
                             : orec::makeVersion(views_[we.view].wv);
    we.orec->store(out, std::memory_order_release);
    we.locked = false;
  }
}

void Tx::endWritebacks() {
  for (auto& v : views_) {
    if (!v.wbActive) continue;
    v.wbActive = false;
    v.domain->writebackActive().fetch_sub(1, std::memory_order_release);
  }
}

void Tx::releaseNorecSeqLocks() {
  for (auto& v : views_) {
    if (!v.seqLocked) continue;
    // Nothing was written back: restoring the pre-lock sequence value marks
    // the domain free with its snapshot unchanged.
    v.domain->norecSeq().store(v.rv, std::memory_order_release);
    v.seqLocked = false;
  }
}

std::vector<std::size_t> Tx::writingViewsInOrder() const {
  std::vector<std::size_t> order;
  for (const auto& we : writeSet_) {
    if (std::find(order.begin(), order.end(), we.view) == order.end()) {
      order.push_back(we.view);
    }
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return views_[a].domain < views_[b].domain;
  });
  return order;
}

void Tx::commit() {
  assert(active_);
  if (backend_ == TmBackend::NOrec) {
    norecCommit();
    return;
  }
  if (writeSet_.empty()) {
    // Read-only: every read was validated against the snapshot (normal /
    // zero-logging RO) or hand-over-hand (elastic); nothing to publish.
    // This holds across domains too: any read that post-dated a
    // cross-domain commit forced an extension (or an RO restart), which
    // revalidated every domain's entries.
    speculativeAllocs_.clear();  // committed: caller keeps ownership
    flushReadStats();
    stats_->onCommit();
    if (ro_) stats_->onRoCommit();
    finishAttempt(/*committed=*/true);
    exitDomainsInFlight();
    active_ = false;
    runTxEndHooks();
    runCommitAndSettledHooks();
    return;
  }

  const bool singleDomain = views_.size() == 1;

  if (cfg_.lockMode == LockMode::Lazy) {
    // Commit-time locking: acquire every write orec now. Multi-domain
    // transactions acquire domain-by-domain in canonical (pointer) order —
    // combined with never *waiting* on a held orec (conflicts abort), the
    // acquisition phase is deadlock-free by construction. The common
    // single-domain case walks the write set in insertion order without
    // building an index.
    const auto lockEntry = [this](WriteEntry& we) {
      DomainView& v = views_[we.view];
      for (;;) {
        OrecWord cur = we.orec->load(std::memory_order_acquire);
        if (orec::isLocked(cur)) {
          // Owned by someone else (self-ownership is impossible here: all
          // our locks come from earlier iterations, which are deduplicated
          // by the caller). Abort and retry with backoff.
          abortSelf(obs::AbortCause::kLockConflict);
        }
        if (orec::version(cur) > v.rv) {
          extendSnapshot(we.view);
          continue;
        }
        if (we.orec->compare_exchange_weak(cur, orec::makeLocked(this),
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
          we.prevVersion = orec::version(cur);
          we.locked = true;
          return;
        }
      }
    };
    // One dedup+lock loop serves both orders: an earlier-acquired entry on
    // the same orec stripe (found via the locked-orec lookup — O(1) once
    // the index is active) donates its prevVersion instead of re-locking.
    const auto acquireInOrder = [&](auto indexAt) {
      for (std::size_t p = 0; p < writeSet_.size(); ++p) {
        const std::size_t pos = indexAt(p);
        WriteEntry& we = writeSet_[pos];
        if (const WriteEntry* holder = findLockedByOrec(we.orec)) {
          we.prevVersion = holder->prevVersion;
          continue;
        }
        lockEntry(we);
        noteOrecLocked(pos);
      }
    };
    if (singleDomain) {
      acquireInOrder([](std::size_t p) { return p; });
    } else {
      std::vector<std::size_t> acq(writeSet_.size());
      std::iota(acq.begin(), acq.end(), std::size_t{0});
      std::stable_sort(acq.begin(), acq.end(),
                       [this](std::size_t a, std::size_t b) {
                         return views_[writeSet_[a].view].domain <
                                views_[writeSet_[b].view].domain;
                       });
      acquireInOrder([&acq](std::size_t p) { return acq[p]; });
    }
  }

  // Per-domain commit timestamps: tick every written domain's clock while
  // all write locks are held, in the same canonical order. Each written
  // domain's write-back gate goes up before its tick (so zero-logging
  // readers never pair our tick with a half-done write-back) and comes
  // down after the locks are released.
  if (singleDomain) {
    views_[0].domain->writebackActive().fetch_add(1,
                                                  std::memory_order_acq_rel);
    views_[0].wbActive = true;
    views_[0].wv = views_[0].domain->clock().tick();
    if (views_[0].rv + 1 != views_[0].wv) {
      // Someone committed since our snapshot; the read set must still hold.
      if (!validateReadSet()) abortSelf(obs::AbortCause::kReadValidation);
    }
  } else {
    // All write-back gates must be up before the *first* tick: a
    // zero-logging reader that observes any of our ticks must be able to
    // see a raised gate on every domain we write, or it could pair the
    // already-ticked half of this commit with the not-yet-ticked half.
    const std::vector<std::size_t> order = writingViewsInOrder();
    for (const std::size_t idx : order) {
      views_[idx].domain->writebackActive().fetch_add(
          1, std::memory_order_acq_rel);
      views_[idx].wbActive = true;
    }
    for (const std::size_t idx : order) {
      views_[idx].wv = views_[idx].domain->clock().tick();
    }
    // The single-domain rv+1 == wv shortcut does not compose across
    // clocks; a multi-domain commit always validates.
    if (!validateReadSet()) abortSelf(obs::AbortCause::kReadValidation);
  }
  for (const WriteEntry& we : writeSet_) {
    atomicStoreWord(we.addr, we.value);
  }
  releaseHeldLocks(/*restoreOldVersion=*/false);
  endWritebacks();
  speculativeAllocs_.clear();  // published: ownership transferred
  flushReadStats();
  stats_->onCommit();
  finishAttempt(/*committed=*/true);
  exitDomainsInFlight();
  active_ = false;
  runTxEndHooks();
  runCommitAndSettledHooks();
}

// --- NOrec backend (Dalessandro, Spear, Scott — PPoPP 2010) ----------------
// One sequence lock per domain; reads log (address, value) pairs and
// revalidate by re-reading whenever a joined domain's sequence number
// moves; writers publish under the lock(s). No per-location metadata at
// all. Cross-domain commits take every written domain's sequence lock in
// canonical order before writing back.

// Batched RO validation for *scalar* reads: log the value optimistically
// and check the sequence locks only once every norecRoBatch reads (plus at
// every domain join and at commit) instead of per read. A value observed
// while a writer is mid-publish is caught by the value-based revalidation
// at the next batch boundary, and no read escapes the transaction without
// a validation point after it (norecCommit flushes the tail) — the
// committed snapshot is exactly as consistent as with per-read checks.
// Between boundaries the body may branch on a transiently stale scalar,
// which only wastes bounded work until the next boundary aborts the
// attempt.
//
// Pointer-bearing reads must NOT take this path: a traversal that
// dereferences an unvalidated pointer can wander into a node that
// quiescence reclamation legitimately freed and recycled — only the
// per-read check ties the reader's pointer chain to a consistent instant
// at which every node in it is still in its grace period. TxField routes
// non-pointer fields here and pointer fields to the validated read.
Word Tx::norecReadScalar(const Word* addr) {
  if (!(ro_ && cfg_.norecRoBatch > 1)) return norecRead(addr);
  const Word value = std::atomic_ref<Word>(*const_cast<Word*>(addr))
                         .load(std::memory_order_acquire);
  valueLog_.push_back(ValueEntry{addr, value, curView_});
  ++pendingReads_;
  if (++norecRoPending_ >= cfg_.norecRoBatch) norecRoFlushValidation();
  return value;
}

Word Tx::readScalar(const Word* addr) {
  assert(active_);
  if (ro_ && backend_ == TmBackend::NOrec && writeSet_.empty()) {
    return norecReadScalar(addr);
  }
  return read(addr);
}

Word Tx::norecRead(const Word* addr) {
  for (;;) {
    const Word value = atomicLoadWord(addr);
    std::atomic_thread_fence(std::memory_order_acquire);
    DomainView& v = views_[curView_];
    if (v.domain->norecSeq().load(std::memory_order_acquire) == v.rv) {
      valueLog_.push_back(ValueEntry{addr, value, curView_});
      ++pendingReads_;
      return value;
    }
    // A writer committed since our snapshot of this domain: revalidate the
    // whole log (all domains) and re-sample.
    norecValidate();
  }
}

Word Tx::norecUread(const Word* addr) {
  // A unit load only needs a committed value of this single word: sample
  // the domain's sequence lock around the load.
  std::atomic<std::uint64_t>& seq = views_[curView_].domain->norecSeq();
  for (;;) {
    const std::uint64_t s1 = seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) {
      cpuRelax();
      continue;
    }
    const Word value = atomicLoadWord(addr);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_relaxed) == s1) {
      ++pendingUreads_;
      return value;
    }
  }
}

void Tx::norecRoFlushValidation() {
  norecRoPending_ = 0;
  for (const DomainView& v : views_) {
    if (v.domain->norecSeq().load(std::memory_order_acquire) != v.rv) {
      // A writer committed somewhere since the snapshot: fall back to the
      // full value-based revalidation (aborts on mismatch, else refreshes
      // every view's snapshot — the RO analogue of a snapshot extension).
      stats_->onRoSnapshotExtension();
      norecValidate();
      return;
    }
  }
}

void Tx::norecValidate(obs::AbortCause mismatchCause) {
  bool holdingLocks = false;
  for (const auto& v : views_) holdingLocks |= v.seqLocked;
  seqSnap_.resize(views_.size());
  for (;;) {
    for (std::size_t i = 0; i < views_.size(); ++i) {
      DomainView& v = views_[i];
      if (v.seqLocked) continue;  // frozen by us: cannot move
      std::uint64_t spins = 0;
      for (;;) {
        const std::uint64_t s =
            v.domain->norecSeq().load(std::memory_order_acquire);
        if ((s & 1) == 0) {
          seqSnap_[i] = s;
          break;
        }
        // While we hold sequence locks ourselves, waiting unboundedly for
        // another domain's writer could deadlock with a writer waiting for
        // ours; bound the wait and abort (backoff breaks the symmetry).
        if (holdingLocks && ++spins > kNorecHeldSpinLimit)
          abortSelf(obs::AbortCause::kLockConflict);
        cpuRelax();
      }
    }
    bool ok = true;
    for (const ValueEntry& e : valueLog_) {
      if (atomicLoadWord(e.addr) != e.value) {
        ok = false;
        break;
      }
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    bool moved = false;
    for (std::size_t i = 0; i < views_.size(); ++i) {
      if (views_[i].seqLocked) continue;
      if (views_[i].domain->norecSeq().load(std::memory_order_relaxed) !=
          seqSnap_[i]) {
        moved = true;
        break;
      }
    }
    if (moved) continue;
    if (!ok) abortSelf(mismatchCause);
    for (std::size_t i = 0; i < views_.size(); ++i) {
      if (!views_[i].seqLocked) views_[i].rv = seqSnap_[i];
    }
    norecRoPending_ = 0;  // everything logged was just revalidated
    return;
  }
}

void Tx::norecCommit() {
  if (writeSet_.empty()) {
    // Read-only transactions are always consistent at their last
    // validation point. Batched RO reads past that point are flushed here,
    // so the commit itself is the final validation point.
    if (ro_ && norecRoPending_ != 0) norecRoFlushValidation();
    speculativeAllocs_.clear();
    flushReadStats();
    stats_->onCommit();
    if (ro_) stats_->onRoCommit();
    finishAttempt(/*committed=*/true);
    exitDomainsInFlight();
    active_ = false;
    runTxEndHooks();
    runCommitAndSettledHooks();
    return;
  }
  // Acquire every written domain's sequence lock in canonical order (the
  // dominant single-domain case skips building the order).
  const auto lockView = [this](DomainView& v) {
    std::uint64_t s = v.rv;
    while (!v.domain->norecSeq().compare_exchange_weak(
        s, s + 1, std::memory_order_acq_rel, std::memory_order_relaxed)) {
      norecValidate();  // aborts on value mismatch; refreshes v.rv
      s = v.rv;
    }
    v.rv = s;
    v.seqLocked = true;
  };
  if (views_.size() == 1) {
    lockView(views_[0]);
  } else {
    for (const std::size_t idx : writingViewsInOrder()) {
      lockView(views_[idx]);
    }
  }
  // Locks held: reads in written domains are implicitly valid (their
  // sequence number had not moved since the last validation when the CAS
  // succeeded). Reads in read-only domains need one final validation to
  // pin the linearization point.
  bool readOnlyDomainEntries = false;
  for (const ValueEntry& e : valueLog_) {
    if (!views_[e.view].seqLocked) {
      readOnlyDomainEntries = true;
      break;
    }
  }
  if (readOnlyDomainEntries) norecValidate();
  // Publish.
  for (const WriteEntry& we : writeSet_) {
    atomicStoreWord(we.addr, we.value);
  }
  for (auto& v : views_) {
    if (!v.seqLocked) continue;
    v.seqLocked = false;
    v.domain->norecSeq().store(v.rv + 2, std::memory_order_release);
  }
  speculativeAllocs_.clear();
  flushReadStats();
  stats_->onCommit();
  finishAttempt(/*committed=*/true);
  exitDomainsInFlight();
  active_ = false;
  runTxEndHooks();
  runCommitAndSettledHooks();
}

void Tx::runTxEndHooks() {
  // Contract: tx-end hooks are completion signals — they must not start
  // transactions or register further hooks (onCommit is the hook point for
  // work that composes). HookVec keeps its storage across transactions (a
  // guard hook fires on essentially every transaction). Reverse order:
  // hooks are scope releases, and an outer scope (a ShardedMap census
  // ticket) must outlive the inner scopes registered after it (the trees'
  // quiescence-GC guards) — releasing the ticket first would let a
  // concurrent shard retirement free the very registry the inner hook is
  // about to signal.
  txEndHooks_.runAllReverse();
  txEndHooks_.clear();
}

void Tx::runSettledHooks() {
  if (settledHooks_.empty()) return;
  HookVec hooks(std::move(settledHooks_));
  settledHooks_.clear();
  hooks.runAllReverse();
}

void Tx::runCommitAndSettledHooks() {
  // Steal the settled hooks before the commit hooks run: a commit hook may
  // start a new transaction, and begin() resets this descriptor's hook
  // storage.
  HookVec settled(std::move(settledHooks_));
  settledHooks_.clear();
  runCommitHooks();
  settled.runAllReverse();
}

void Tx::runCommitHooks() {
  if (commitHooks_.empty()) return;
  // Steal the hooks first: a hook may start a new transaction, which
  // clears commitHooks_ in begin(). The steal moves the inline slots, so
  // the common one-or-two-hook commit still allocates nothing.
  HookVec hooks(std::move(commitHooks_));
  commitHooks_.clear();
  hooks.runAll();
}

}  // namespace sftree::stm
