#include "stm/tx.hpp"

#include <atomic>
#include <cassert>

#include "stm/runtime.hpp"

namespace sftree::stm {

namespace {

inline Word atomicLoadWord(const Word* addr) {
  return std::atomic_ref<Word>(*const_cast<Word*>(addr))
      .load(std::memory_order_relaxed);
}

inline void atomicStoreWord(Word* addr, Word value) {
  // Release so that a non-transactional acquire load of (say) a freshly
  // published node pointer also observes the node's initialization — the
  // maintenance thread's traversal relies on this.
  std::atomic_ref<Word>(*addr).store(value, std::memory_order_release);
}

inline std::uint64_t addressSignature(const void* addr) {
  auto a = reinterpret_cast<std::uintptr_t>(addr) >> 3;
  a *= 0x9E3779B97F4A7C15ULL;
  return std::uint64_t{1} << (a >> 58);
}

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

Tx::Tx(Runtime& rt) : rt_(rt) {
  readSet_.reserve(256);
  writeSet_.reserve(64);
  window_.reserve(rt.config().elasticWindow);
}

Tx::~Tx() = default;

void Tx::begin(TxKind kind) {
  assert(!active_ && "flat nesting is handled by stm::atomically");
  kind_ = kind;
  active_ = true;
  backend_ = rt_.config().backend;
  if (backend_ == TmBackend::NOrec) {
    // NOrec has no per-location metadata; elastic windows do not apply.
    elasticPhase_ = false;
    // Snapshot: wait until no writer holds the global sequence lock.
    for (;;) {
      const std::uint64_t s =
          rt_.norecSeq().load(std::memory_order_acquire);
      if ((s & 1) == 0) {
        rv_ = s;
        break;
      }
    }
  } else {
    elasticPhase_ = (kind == TxKind::Elastic);
    rv_ = rt_.clock().now();
  }
  readSet_.clear();
  valueLog_.clear();
  writeSet_.clear();
  speculativeAllocs_.clear();
  commitHooks_.clear();
  writeSigs_ = 0;
  window_.clear();
  windowNext_ = 0;
  ++attempts_;
}

[[noreturn]] void Tx::abortSelf() { throw TxAbort{}; }

[[noreturn]] void Tx::restart() { abortSelf(); }

void Tx::onAbort() {
  releaseHeldLocks(/*restoreOldVersion=*/true, /*newVersion=*/0);
  for (const AllocEntry& a : speculativeAllocs_) a.deleter(a.ptr);
  speculativeAllocs_.clear();
  commitHooks_.clear();
  ++stats_.aborts;
  active_ = false;
}

void Tx::onAbortDelete(void* ptr, void (*deleter)(void*)) {
  speculativeAllocs_.push_back(AllocEntry{ptr, deleter});
}

void Tx::onCommit(std::function<void()> hook) {
  commitHooks_.push_back(std::move(hook));
}

Tx::WriteEntry* Tx::findWrite(const Word* addr) {
  for (auto it = writeSet_.rbegin(); it != writeSet_.rend(); ++it) {
    if (it->addr == addr) return &*it;
  }
  return nullptr;
}

Tx::WriteEntry* Tx::findWriteByOrec(const std::atomic<OrecWord>* orec) {
  for (auto& we : writeSet_) {
    if (we.orec == orec && we.locked) return &we;
  }
  // Fall back to any entry on this orec (it records the right prevVersion
  // even when another entry holds the lock).
  for (auto& we : writeSet_) {
    if (we.orec == orec) return &we;
  }
  return nullptr;
}

Tx::SampledWord Tx::sampleCommitted(const Word* addr,
                                    std::atomic<OrecWord>* orec,
                                    bool spinOnLock) {
  for (;;) {
    OrecWord v1 = orec->load(std::memory_order_acquire);
    if (orec::isLocked(v1)) {
      if (orec::owner(v1) == this) {
        // We hold the lock (eager mode). Memory still has the committed
        // value because writes are buffered until commit.
        WriteEntry* we = findWriteByOrec(orec);
        return {atomicLoadWord(addr), we ? we->prevVersion : rv_};
      }
      if (spinOnLock) {
        cpuRelax();
        continue;
      }
      abortSelf();
    }
    Word value = atomicLoadWord(addr);
    std::atomic_thread_fence(std::memory_order_acquire);
    OrecWord v2 = orec->load(std::memory_order_relaxed);
    if (v1 == v2) return {value, orec::version(v1)};
    // A commit slipped in between; retry the sandwich.
  }
}

Word Tx::read(const Word* addr) {
  assert(active_);
  if ((writeSigs_ & addressSignature(addr)) != 0) {
    if (WriteEntry* we = findWrite(addr)) {
      stats_.onRead();
      return we->value;
    }
  }
  if (backend_ == TmBackend::NOrec) return norecRead(addr);
  std::atomic<OrecWord>* orec = rt_.orecs().forAddress(addr);

  if (elasticPhase_) {
    // Hand-over-hand: the new read must be consistent with the (at most
    // `elasticWindow`) most recent reads; anything older was cut.
    SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/false);
    elasticValidateWindow();
    elasticRecord(orec, s.version);
    if (s.version > rv_) rv_ = s.version;
    stats_.onRead();
    return s.value;
  }

  for (;;) {
    SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/false);
    if (s.version > rv_) {
      // The location is newer than our snapshot: try to slide the snapshot
      // forward (lazy snapshot extension) and re-sample.
      extendSnapshot();
      continue;
    }
    readSet_.push_back(ReadEntry{orec, s.version});
    stats_.onRead();
    return s.value;
  }
}

Word Tx::uread(const Word* addr) {
  assert(active_);
  if ((writeSigs_ & addressSignature(addr)) != 0) {
    if (WriteEntry* we = findWrite(addr)) {
      stats_.onUread();
      return we->value;
    }
  }
  if (backend_ == TmBackend::NOrec) return norecUread(addr);
  std::atomic<OrecWord>* orec = rt_.orecs().forAddress(addr);
  SampledWord s = sampleCommitted(addr, orec, /*spinOnLock=*/true);
  stats_.onUread();
  return s.value;
}

void Tx::write(Word* addr, Word value) {
  assert(active_);
  ++stats_.writes;
  if (elasticPhase_) {
    // First write: the elastic transaction becomes a normal one; the reads
    // still in the window must now stay valid until commit.
    foldElasticWindowIntoReadSet();
    elasticPhase_ = false;
  }
  if ((writeSigs_ & addressSignature(addr)) != 0) {
    if (WriteEntry* we = findWrite(addr)) {
      we->value = value;
      return;
    }
  }
  WriteEntry we{addr, value, rt_.orecs().forAddress(addr), /*prevVersion=*/0,
                /*locked=*/false};
  if (backend_ == TmBackend::Orec &&
      rt_.config().lockMode == LockMode::Eager) {
    acquireOrecForWrite(we);
  }
  writeSet_.push_back(we);
  writeSigs_ |= addressSignature(addr);
}

void Tx::acquireOrecForWrite(WriteEntry& we) {
  for (;;) {
    OrecWord cur = we.orec->load(std::memory_order_acquire);
    if (orec::isLocked(cur)) {
      if (orec::owner(cur) == this) {
        // Another write entry of ours already owns this orec stripe.
        WriteEntry* holder = findWriteByOrec(we.orec);
        we.prevVersion = holder ? holder->prevVersion : rv_;
        we.locked = false;
        return;
      }
      abortSelf();
    }
    if (orec::version(cur) > rv_) {
      // Keep the snapshot consistent so read-after-write on this stripe is
      // safe; extension aborts us if the read set is stale.
      extendSnapshot();
      continue;
    }
    if (we.orec->compare_exchange_weak(cur, orec::makeLocked(this),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      we.prevVersion = orec::version(cur);
      we.locked = true;
      return;
    }
  }
}

bool Tx::validateEntry(const ReadEntry& e) const {
  OrecWord cur = e.orec->load(std::memory_order_acquire);
  if (orec::isLocked(cur)) {
    if (orec::owner(cur) != this) return false;
    const WriteEntry* we = const_cast<Tx*>(this)->findWriteByOrec(e.orec);
    return we != nullptr && we->prevVersion == e.version;
  }
  return orec::version(cur) == e.version;
}

bool Tx::validateReadSet() const {
  for (const ReadEntry& e : readSet_) {
    if (!validateEntry(e)) return false;
  }
  for (const ReadEntry& e : window_) {
    if (!validateEntry(e)) return false;
  }
  return true;
}

void Tx::extendSnapshot() {
  const std::uint64_t now = rt_.clock().now();
  if (!validateReadSet()) abortSelf();
  rv_ = now;
  ++stats_.snapshotExtensions;
}

void Tx::elasticRecord(std::atomic<OrecWord>* orec, std::uint64_t version) {
  const std::size_t cap = rt_.config().elasticWindow;
  if (window_.size() < cap) {
    window_.push_back(ReadEntry{orec, version});
    return;
  }
  // Overwrite the oldest entry: this is the "cut" — the evicted read is no
  // longer part of the transaction's consistency obligation.
  window_[windowNext_] = ReadEntry{orec, version};
  windowNext_ = (windowNext_ + 1) % cap;
  ++stats_.elasticCuts;
}

void Tx::elasticValidateWindow() {
  for (const ReadEntry& e : window_) {
    if (!validateEntry(e)) abortSelf();
  }
}

void Tx::foldElasticWindowIntoReadSet() {
  for (const ReadEntry& e : window_) readSet_.push_back(e);
  window_.clear();
  windowNext_ = 0;
}

void Tx::releaseHeldLocks(bool restoreOldVersion, std::uint64_t newVersion) {
  for (auto& we : writeSet_) {
    if (!we.locked) continue;
    const OrecWord out = restoreOldVersion ? orec::makeVersion(we.prevVersion)
                                           : orec::makeVersion(newVersion);
    we.orec->store(out, std::memory_order_release);
    we.locked = false;
  }
}

void Tx::commit() {
  assert(active_);
  if (backend_ == TmBackend::NOrec) {
    norecCommit();
    return;
  }
  if (writeSet_.empty()) {
    // Read-only: every read was validated against the snapshot (normal) or
    // hand-over-hand (elastic); nothing to publish.
    speculativeAllocs_.clear();  // committed: caller keeps ownership
    ++stats_.commits;
    active_ = false;
    runCommitHooks();
    return;
  }

  if (rt_.config().lockMode == LockMode::Lazy) {
    // Commit-time locking: acquire every write orec now.
    for (std::size_t i = 0; i < writeSet_.size(); ++i) {
      WriteEntry& we = writeSet_[i];
      bool alreadyHeld = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (writeSet_[j].orec == we.orec) {
          we.prevVersion = writeSet_[j].prevVersion;
          alreadyHeld = true;
          break;
        }
      }
      if (alreadyHeld) continue;
      for (;;) {
        OrecWord cur = we.orec->load(std::memory_order_acquire);
        if (orec::isLocked(cur)) {
          // Owned by someone else (self-ownership is impossible here: all
          // our locks come from earlier iterations, which are deduplicated
          // above). Abort and retry with backoff.
          abortSelf();
        }
        if (orec::version(cur) > rv_) {
          extendSnapshot();
          continue;
        }
        if (we.orec->compare_exchange_weak(cur, orec::makeLocked(this),
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
          we.prevVersion = orec::version(cur);
          we.locked = true;
          break;
        }
      }
    }
  }

  const std::uint64_t wv = rt_.clock().tick();
  if (rv_ + 1 != wv) {
    // Someone committed since our snapshot; the read set must still hold.
    if (!validateReadSet()) abortSelf();
  }
  for (const WriteEntry& we : writeSet_) {
    atomicStoreWord(we.addr, we.value);
  }
  releaseHeldLocks(/*restoreOldVersion=*/false, wv);
  speculativeAllocs_.clear();  // published: ownership transferred
  ++stats_.commits;
  active_ = false;
  runCommitHooks();
}

// --- NOrec backend (Dalessandro, Spear, Scott — PPoPP 2010) ----------------
// One global sequence lock; reads log (address, value) pairs and revalidate
// by re-reading whenever the sequence number moves; writers publish under
// the lock. No per-location metadata at all.

Word Tx::norecRead(const Word* addr) {
  for (;;) {
    const Word value = atomicLoadWord(addr);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rt_.norecSeq().load(std::memory_order_acquire) == rv_) {
      valueLog_.push_back(ValueEntry{addr, value});
      stats_.onRead();
      return value;
    }
    // A writer committed since our snapshot: revalidate and re-sample.
    rv_ = norecValidate();
  }
}

Word Tx::norecUread(const Word* addr) {
  // A unit load only needs a committed value of this single word: sample
  // the sequence lock around the load.
  for (;;) {
    const std::uint64_t s1 = rt_.norecSeq().load(std::memory_order_acquire);
    if ((s1 & 1) != 0) {
      cpuRelax();
      continue;
    }
    const Word value = atomicLoadWord(addr);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rt_.norecSeq().load(std::memory_order_relaxed) == s1) {
      stats_.onUread();
      return value;
    }
  }
}

std::uint64_t Tx::norecValidate() {
  for (;;) {
    const std::uint64_t s = rt_.norecSeq().load(std::memory_order_acquire);
    if ((s & 1) != 0) {
      cpuRelax();
      continue;
    }
    bool ok = true;
    for (const ValueEntry& e : valueLog_) {
      if (atomicLoadWord(e.addr) != e.value) {
        ok = false;
        break;
      }
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rt_.norecSeq().load(std::memory_order_relaxed) != s) continue;
    if (!ok) abortSelf();
    return s;
  }
}

void Tx::norecCommit() {
  if (writeSet_.empty()) {
    // Read-only transactions are always consistent at their last
    // validation point.
    speculativeAllocs_.clear();
    ++stats_.commits;
    active_ = false;
    runCommitHooks();
    return;
  }
  std::uint64_t s = rv_;
  while (!rt_.norecSeq().compare_exchange_weak(
      s, s + 1, std::memory_order_acq_rel, std::memory_order_relaxed)) {
    s = norecValidate();  // aborts on value mismatch
    rv_ = s;
  }
  // Global lock held: publish.
  for (const WriteEntry& we : writeSet_) {
    atomicStoreWord(we.addr, we.value);
  }
  rt_.norecSeq().store(s + 2, std::memory_order_release);
  speculativeAllocs_.clear();
  ++stats_.commits;
  active_ = false;
  runCommitHooks();
}

void Tx::runCommitHooks() {
  if (commitHooks_.empty()) return;
  // Steal the hooks first: a hook may start a new transaction.
  std::vector<std::function<void()>> hooks;
  hooks.swap(commitHooks_);
  for (auto& h : hooks) h();
}

}  // namespace sftree::stm
