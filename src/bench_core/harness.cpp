#include "bench_core/harness.hpp"

#include <atomic>
#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "stm/runtime.hpp"

namespace sftree::bench {

void populate(trees::ITransactionalMap& map, const RunConfig& cfg) {
  Rng rng(cfg.seed ^ 0xC0FFEE);
  std::int64_t inserted = 0;
  while (inserted < cfg.initialSize) {
    const auto k = static_cast<sftree::Key>(
        rng.nextBounded(static_cast<std::uint64_t>(cfg.workload.keyRange)));
    if (map.insert(k, k)) ++inserted;
  }
}

RunResult runThroughput(trees::ITransactionalMap& map, const RunConfig& cfg) {
  struct ThreadCounters {
    std::uint64_t ops = 0;
    std::uint64_t effective = 0;
    std::uint64_t attempted = 0;
  };

  std::vector<stm::Domain*> domains = cfg.statsDomains;
  if (domains.empty()) domains.push_back(&stm::defaultDomain());
  for (stm::Domain* d : domains) d->resetStats();

  std::atomic<bool> stop{false};
  std::barrier sync(cfg.threads + 1);
  std::vector<ThreadCounters> counters(cfg.threads);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);

  for (int t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      WorkloadGenerator gen(cfg.workload, cfg.seed + 0x1000u * (t + 1));
      ThreadCounters local;
      sync.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        const Op op = gen.next();
        switch (op.type) {
          case OpType::Contains:
            map.contains(op.key);
            break;
          case OpType::Insert:
            ++local.attempted;
            if (map.insert(op.key, op.key)) ++local.effective;
            break;
          case OpType::Remove:
            ++local.attempted;
            if (map.erase(op.key)) ++local.effective;
            break;
          case OpType::Move:
            ++local.attempted;
            if (map.move(op.key, op.destKey)) ++local.effective;
            break;
        }
        ++local.ops;
      }
      counters[t] = local;
    });
  }

  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.durationMs));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  for (const auto& c : counters) {
    result.totalOps += c.ops;
    result.effectiveUpdates += c.effective;
    result.attemptedUpdates += c.attempted;
  }
  for (stm::Domain* d : domains) result.stm += d->aggregateStats();
  return result;
}

}  // namespace sftree::bench
