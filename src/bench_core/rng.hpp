// Small, fast, seedable PRNG (xoshiro-style xorshift) for workload
// generation. Deliberately not std::mt19937: benchmark inner loops sample a
// key per operation and the generator must be cheap and per-thread.
#pragma once

#include <cstdint>

namespace sftree::bench {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {
    // Warm up so that close seeds diverge.
    for (int i = 0; i < 4; ++i) next();
  }

  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  // Uniform in [0, bound).
  std::uint64_t nextBounded(std::uint64_t bound) { return next() % bound; }

  // Uniform in [0.0, 1.0).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool nextBool() { return (next() & 1) != 0; }

 private:
  std::uint64_t state_;
};

}  // namespace sftree::bench
