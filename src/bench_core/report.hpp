// Plain-text table rendering for the benchmark binaries: each bench prints
// the same rows/series as the paper's corresponding table or figure.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace sftree::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  Table& addRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(int v) { return std::to_string(v); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    printRow(os, header_, widths);
    std::size_t total = 0;
    for (auto w : widths) total += w + 3;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) printRow(os, row, widths);
    os.flush();
  }

 private:
  static void printRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < widths.size()) os << " | ";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sftree::bench
