// Reporting for the benchmark binaries: plain-text tables mirroring the
// paper's figures, plus a machine-readable JSON emitter (--json <path>)
// that writes BENCH_*.json files for the performance trajectory.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace sftree::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  Table& addRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(int v) { return std::to_string(v); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    printRow(os, header_, widths);
    std::size_t total = 0;
    for (auto w : widths) total += w + 3;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) printRow(os, row, widths);
    os.flush();
  }

 private:
  static void printRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < widths.size()) os << " | ";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// One flat JSON object with insertion-ordered fields. Values are stored
// pre-encoded so the record never needs a variant type.
class JsonRecord {
 public:
  JsonRecord& set(const std::string& key, const std::string& v) {
    return raw(key, quote(v));
  }
  JsonRecord& set(const std::string& key, const char* v) {
    return raw(key, quote(v));
  }
  JsonRecord& set(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  JsonRecord& set(const std::string& key, double v) {
    if (!std::isfinite(v)) return raw(key, "null");
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return raw(key, os.str());
  }
  JsonRecord& set(const std::string& key, std::int64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonRecord& set(const std::string& key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonRecord& set(const std::string& key, int v) {
    return set(key, static_cast<std::int64_t>(v));
  }

  void render(std::ostream& os, const std::string& indent) const {
    os << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) os << ",";
      os << "\n" << indent << "  " << quote(fields_[i].first) << ": "
         << fields_[i].second;
    }
    if (!fields_.empty()) os << "\n" << indent;
    os << "}";
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

 private:
  JsonRecord& raw(const std::string& key, std::string encoded) {
    fields_.emplace_back(key, std::move(encoded));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Machine-readable benchmark output:
//
//   {
//     "bench": "<name>",
//     "meta": { ...run configuration... },
//     "results": [ { ...one measured configuration... }, ... ]
//   }
//
// Usage: fill meta() once, addRecord() per measured point, then
// writeFile(cli.str("json", "")) — writeFile with an empty path is a no-op,
// so benches can call it unconditionally.
class JsonReport {
 public:
  explicit JsonReport(std::string benchName)
      : benchName_(std::move(benchName)) {}

  JsonRecord& meta() { return meta_; }
  JsonRecord& addRecord() {
    records_.emplace_back();
    return records_.back();
  }

  std::string toString() const {
    std::ostringstream os;
    os << "{\n  \"bench\": " << JsonRecord::quote(benchName_) << ",\n"
       << "  \"meta\": ";
    meta_.render(os, "  ");
    os << ",\n  \"results\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      if (i > 0) os << ",";
      os << "\n    ";
      records_[i].render(os, "    ");
    }
    if (!records_.empty()) os << "\n  ";
    os << "]\n}\n";
    return os.str();
  }

  // Writes the report to `path`; empty path is a no-op (returns true).
  // Reports failures on stderr so an unwritable path cannot silently drop
  // benchmark results.
  bool writeFile(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "json report: cannot open " << path << "\n";
      return false;
    }
    out << toString();
    out.flush();
    if (!out) {
      std::cerr << "json report: write to " << path << " failed\n";
      return false;
    }
    std::cout << "json report written to " << path << "\n";
    return true;
  }

 private:
  std::string benchName_;
  JsonRecord meta_;
  std::vector<JsonRecord> records_;
};

}  // namespace sftree::bench
