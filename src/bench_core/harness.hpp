// Duration-based multi-threaded throughput harness for the integer-set
// micro-benchmark (the synchrobench equivalent used by Figures 3-5 and
// Table 1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bench_core/workload.hpp"
#include "stm/domain.hpp"
#include "stm/stats.hpp"
#include "trees/map_interface.hpp"

namespace sftree::bench {

struct RunConfig {
  WorkloadConfig workload;
  int threads = 2;
  int durationMs = 200;
  std::int64_t initialSize = 1 << 12;  // paper: 2^12 elements
  std::uint64_t seed = 42;
  // Clock domains whose statistics the run resets before and aggregates
  // after (e.g. ShardedMap::domains() for a per-shard-domain map). Empty
  // selects the process default domain.
  std::vector<stm::Domain*> statsDomains;
};

struct RunResult {
  std::uint64_t totalOps = 0;
  std::uint64_t effectiveUpdates = 0;   // successful inserts+removes+moves
  std::uint64_t attemptedUpdates = 0;
  double seconds = 0.0;
  // Aggregated STM statistics over the run (reset before, sampled after).
  stm::ThreadStats stm;

  double opsPerMicrosecond() const {
    return seconds == 0.0 ? 0.0
                          : static_cast<double>(totalOps) / (seconds * 1e6);
  }
  double effectiveUpdateRatio() const {
    return totalOps == 0
               ? 0.0
               : 100.0 * static_cast<double>(effectiveUpdates) /
                     static_cast<double>(totalOps);
  }
};

// Fills the map with `initialSize` distinct keys drawn uniformly from the
// workload's key range (values equal keys).
void populate(trees::ITransactionalMap& map, const RunConfig& cfg);

// Runs the workload for cfg.durationMs across cfg.threads threads.
// Statistics of the whole process are reset at the start of the run.
RunResult runThroughput(trees::ITransactionalMap& map, const RunConfig& cfg);

}  // namespace sftree::bench
