// Minimal --key=value command-line parsing shared by the bench binaries.
// Every binary runs with no arguments using container-scale defaults;
// paper-scale sweeps are reached with flags like
//   fig3_microbench --threads=1,8,16,24,32,40,48 --duration-ms=10000
// and machine-readable results are requested with
//   fig3_microbench --json=BENCH_fig3.json
// Sharded scenarios take their shard-count sweep the same way:
//   shard_scaling --shards=1,2,4,8
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace sftree::bench {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string str(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

  std::int64_t integer(const std::string& key, std::int64_t dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::stoll(it->second);
  }

  double real(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::stod(it->second);
  }

  bool flag(const std::string& key, bool dflt = false) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    return it->second != "false" && it->second != "0";
  }

  // Comma-separated integer list, e.g. --threads=1,2,4.
  std::vector<int> intList(const std::string& key,
                           std::vector<int> dflt) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    std::vector<int> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) out.push_back(std::stoi(tok));
    }
    return out.empty() ? dflt : out;
  }

  // Destination for the machine-readable report (--json=<path>); empty
  // when not requested, which JsonReport::writeFile treats as a no-op.
  std::string jsonPath() const { return str("json", ""); }

  std::vector<double> realList(const std::string& key,
                               std::vector<double> dflt) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    std::vector<double> out;
    std::stringstream ss(it->second);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) out.push_back(std::stod(tok));
    }
    return out.empty() ? dflt : out;
  }

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace sftree::bench
