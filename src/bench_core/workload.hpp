// Integer-set micro-benchmark workloads (paper §5.2, synchrobench
// equivalent).
//
// * Normal: keys uniform over [0, keyRange); an update is an insert or a
//   remove with equal probability, so the expected set size stays at
//   keyRange/2 (the paper fixes the expectation to 2^12 this way).
// * Biased: "inserting (resp. deleting) random values skewed towards high
//   (resp. low) numbers in the value range: the values ... are skewed with a
//   fixed probability by incrementing (resp. decrementing) with an integer
//   uniformly taken within [0..9]". We realize this as drifting per-thread
//   cursors: each insert key is the previous insert key plus U[0..9]
//   (wrapping), each delete key the previous delete key minus U[0..9], which
//   yields the sustained high/low skew that collapses the no-restructuring
//   tree to a linear shape exactly as in Figure 3 (right).
//
// Update ratios are *effective*: the paper counts only operations that
// modified the structure. At steady state roughly half the attempted
// updates fail (insert of a present key / remove of an absent one), so the
// generator attempts updates at twice the target rate and the harness
// reports the measured effective ratio.
#pragma once

#include <cstdint>

#include "bench_core/rng.hpp"
#include "trees/key.hpp"

namespace sftree::bench {

enum class OpType { Contains, Insert, Remove, Move };

struct WorkloadConfig {
  std::int64_t keyRange = 1 << 13;  // 2x the expected set size of 2^12
  // Target effective update ratio in percent (paper: 0..50).
  double updatePercent = 10.0;
  // Of the update budget, fraction that are composed move operations
  // (Figure 5(b): 1%, 5%, 10% of all operations).
  double movePercent = 0.0;
  bool biased = false;
};

struct Op {
  OpType type;
  sftree::Key key;
  sftree::Key destKey;  // move only
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& cfg, std::uint64_t seed)
      : cfg_(cfg),
        rng_(seed),
        insertCursor_(static_cast<sftree::Key>(rng_.nextBounded(
            static_cast<std::uint64_t>(cfg.keyRange)))),
        deleteCursor_(static_cast<sftree::Key>(rng_.nextBounded(
            static_cast<std::uint64_t>(cfg.keyRange)))) {}

  Op next() {
    const double roll = rng_.nextDouble() * 100.0;
    const double attemptedUpdates = effectiveToAttempted(cfg_.updatePercent);
    const double movesShare = effectiveToAttempted(cfg_.movePercent);
    if (roll < movesShare) {
      return Op{OpType::Move, uniformKey(), uniformKey()};
    }
    if (roll < attemptedUpdates) {
      if (rng_.nextBool()) {
        return Op{OpType::Insert, insertKey(), 0};
      }
      return Op{OpType::Remove, removeKey(), 0};
    }
    return Op{OpType::Contains, uniformKey(), 0};
  }

  sftree::Key uniformKey() {
    return static_cast<sftree::Key>(
        rng_.nextBounded(static_cast<std::uint64_t>(cfg_.keyRange)));
  }

 private:
  // Attempted = 2x effective (capped), since ~half the attempts fail at
  // steady state.
  static double effectiveToAttempted(double effective) {
    const double attempted = 2.0 * effective;
    return attempted > 100.0 ? 100.0 : attempted;
  }

  sftree::Key insertKey() {
    if (!cfg_.biased) return uniformKey();
    insertCursor_ += static_cast<sftree::Key>(rng_.nextBounded(10));
    if (insertCursor_ >= cfg_.keyRange) insertCursor_ -= cfg_.keyRange;
    return insertCursor_;
  }

  sftree::Key removeKey() {
    if (!cfg_.biased) return uniformKey();
    deleteCursor_ -= static_cast<sftree::Key>(rng_.nextBounded(10));
    if (deleteCursor_ < 0) deleteCursor_ += cfg_.keyRange;
    return deleteCursor_;
  }

  WorkloadConfig cfg_;
  Rng rng_;
  sftree::Key insertCursor_;
  sftree::Key deleteCursor_;
};

}  // namespace sftree::bench
