// Integer-set micro-benchmark workloads (paper §5.2, synchrobench
// equivalent).
//
// * Normal: keys uniform over [0, keyRange); an update is an insert or a
//   remove with equal probability, so the expected set size stays at
//   keyRange/2 (the paper fixes the expectation to 2^12 this way).
// * Biased: "inserting (resp. deleting) random values skewed towards high
//   (resp. low) numbers in the value range: the values ... are skewed with a
//   fixed probability by incrementing (resp. decrementing) with an integer
//   uniformly taken within [0..9]". We realize this as drifting per-thread
//   cursors: each insert key is the previous insert key plus U[0..9]
//   (wrapping), each delete key the previous delete key minus U[0..9], which
//   yields the sustained high/low skew that collapses the no-restructuring
//   tree to a linear shape exactly as in Figure 3 (right).
//
// Update ratios are *effective*: the paper counts only operations that
// modified the structure. At steady state roughly half the attempted
// updates fail (insert of a present key / remove of an absent one), so the
// generator attempts updates at twice the target rate and the harness
// reports the measured effective ratio.
// * Zipf: keys drawn rank-wise from Zipf(s) (zipfS > 0 overrides uniform
//   and biased for every key draw) — the "millions of users, few of them
//   hot" access pattern the splay heuristic targets (docs/splaying.md).
//   Ranks scatter onto keys through a fixed multiplicative bijection so the
//   hot set is spread across the key space instead of clustering at the low
//   end (which would alias the biased workload's drift, and pile the heat
//   onto adjacent routing slots of a ShardedMap for the wrong reason).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "bench_core/rng.hpp"
#include "trees/key.hpp"

namespace sftree::bench {

enum class OpType { Contains, Insert, Remove, Move };

struct WorkloadConfig {
  std::int64_t keyRange = 1 << 13;  // 2x the expected set size of 2^12
  // Target effective update ratio in percent (paper: 0..50).
  double updatePercent = 10.0;
  // Of the update budget, fraction that are composed move operations
  // (Figure 5(b): 1%, 5%, 10% of all operations).
  double movePercent = 0.0;
  bool biased = false;
  // Zipf exponent; > 0 draws every key from Zipf(zipfS) over the range
  // (0.99 is the YCSB-style default for skewed runs).
  double zipfS = 0.0;
};

// Zipf(s) sampler over ranks [0, range), rank r with probability
// proportional to 1/(r+1)^s, inverted through a precomputed CDF (one
// binary search per draw). keyForRank exposes the rank -> key scatter so
// measurement code can enumerate the hot set.
class ZipfKeys {
 public:
  ZipfKeys(std::int64_t range, double s)
      : n_(static_cast<std::uint64_t>(range < 1 ? 1 : range)) {
    // The golden-ratio multiplier is odd but not prime; fall back to the
    // identity scatter for the rare range it fails to be coprime with
    // (the bijection matters more than the spreading).
    if (std::gcd(kScatter, n_) != 1) scatter_ = 1;
    cdf_.resize(static_cast<std::size_t>(n_));
    double sum = 0.0;
    for (std::size_t r = 0; r < cdf_.size(); ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = sum;
    }
    for (double& c : cdf_) c /= sum;
    cdf_.back() = 1.0;  // guard the lower_bound against rounding
  }

  sftree::Key pick(Rng& rng) const {
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto rank = static_cast<std::uint64_t>(
        it == cdf_.end() ? cdf_.size() - 1
                         : static_cast<std::size_t>(it - cdf_.begin()));
    return keyForRank(rank);
  }

  // The key rank r maps to (a fixed bijection on [0, range)): rank 0 is the
  // hottest key, rank 1 the second hottest, ...
  sftree::Key keyForRank(std::uint64_t rank) const {
    return static_cast<sftree::Key>((rank * scatter_) % n_);
  }

 private:
  static constexpr std::uint64_t kScatter = 0x9E3779B97F4A7C15ULL;
  std::uint64_t n_;
  std::uint64_t scatter_ = kScatter;
  std::vector<double> cdf_;
};

struct Op {
  OpType type;
  sftree::Key key;
  sftree::Key destKey;  // move only
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadConfig& cfg, std::uint64_t seed)
      : cfg_(cfg),
        rng_(seed),
        insertCursor_(static_cast<sftree::Key>(rng_.nextBounded(
            static_cast<std::uint64_t>(cfg.keyRange)))),
        deleteCursor_(static_cast<sftree::Key>(rng_.nextBounded(
            static_cast<std::uint64_t>(cfg.keyRange)))) {
    if (cfg_.zipfS > 0.0) zipf_.emplace(cfg_.keyRange, cfg_.zipfS);
  }

  Op next() {
    const double roll = rng_.nextDouble() * 100.0;
    const double attemptedUpdates = effectiveToAttempted(cfg_.updatePercent);
    const double movesShare = effectiveToAttempted(cfg_.movePercent);
    if (roll < movesShare) {
      return Op{OpType::Move, uniformKey(), uniformKey()};
    }
    if (roll < attemptedUpdates) {
      if (rng_.nextBool()) {
        return Op{OpType::Insert, insertKey(), 0};
      }
      return Op{OpType::Remove, removeKey(), 0};
    }
    return Op{OpType::Contains, uniformKey(), 0};
  }

  sftree::Key uniformKey() {
    if (zipf_) return zipf_->pick(rng_);
    return static_cast<sftree::Key>(
        rng_.nextBounded(static_cast<std::uint64_t>(cfg_.keyRange)));
  }

 private:
  // Attempted = 2x effective (capped), since ~half the attempts fail at
  // steady state.
  static double effectiveToAttempted(double effective) {
    const double attempted = 2.0 * effective;
    return attempted > 100.0 ? 100.0 : attempted;
  }

  // The drifting-cursor bias only applies to plain uniform draws; a Zipf
  // workload routes updates through the same skewed distribution as the
  // lookups (hot keys are hot for every operation type).
  sftree::Key insertKey() {
    if (!cfg_.biased || zipf_) return uniformKey();
    insertCursor_ += static_cast<sftree::Key>(rng_.nextBounded(10));
    if (insertCursor_ >= cfg_.keyRange) insertCursor_ -= cfg_.keyRange;
    return insertCursor_;
  }

  sftree::Key removeKey() {
    if (!cfg_.biased || zipf_) return uniformKey();
    deleteCursor_ -= static_cast<sftree::Key>(rng_.nextBounded(10));
    if (deleteCursor_ < 0) deleteCursor_ += cfg_.keyRange;
    return deleteCursor_;
  }

  WorkloadConfig cfg_;
  Rng rng_;
  sftree::Key insertCursor_;
  sftree::Key deleteCursor_;
  std::optional<ZipfKeys> zipf_;
};

}  // namespace sftree::bench
