// Shared --obs wiring for the bench binaries: one RAII object turns the
// observability surface on for a run and emits it at exit, so every bench
// gains the same flags without bespoke plumbing:
//
//   --obs                  print a MetricsRegistry text snapshot at exit
//   --obs-trace            enable the commit-event trace ring for the run
//   --obs-trace-dump=<p>   write the merged dumpTrace() to <p> at exit
//                          (implies --obs-trace)
//   --obs-report-ms=N      run a StatsReporter emitting one JSON line of
//                          metrics to stderr every N ms
//
// The binary registers its sources (trees, domains, maps, schedulers) on
// session.registry(); everything else — trace enable/disable, the periodic
// reporter's lifetime, the final render — is handled here.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_core/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sftree::bench {

class ObsSession {
 public:
  explicit ObsSession(const Cli& cli)
      : metrics_(cli.flag("obs")),
        traceDumpPath_(cli.str("obs-trace-dump", "")),
        trace_(cli.flag("obs-trace") || !traceDumpPath_.empty()) {
    if (trace_) obs::traceEnable();
    const std::int64_t periodMs = cli.integer("obs-report-ms", 0);
    if (periodMs > 0) {
      reporter_ = std::make_unique<obs::StatsReporter>(
          registry_, std::cerr, static_cast<std::uint64_t>(periodMs));
    }
  }

  ~ObsSession() {
    reporter_.reset();  // stop periodic emission before the final render
    if (metrics_) {
      std::fputs("\n[obs] metrics snapshot:\n", stdout);
      std::fputs(registry_.renderText().c_str(), stdout);
    }
    if (trace_) {
      if (!traceDumpPath_.empty()) {
        std::ofstream os(traceDumpPath_);
        if (os) {
          obs::dumpTrace(os);
          std::fprintf(stderr, "[obs] trace written to %s\n",
                       traceDumpPath_.c_str());
        } else {
          std::fprintf(stderr, "[obs] cannot open %s for the trace dump\n",
                       traceDumpPath_.c_str());
        }
      }
      obs::traceDisable();
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  // Register sources here; ignored (but harmless) when no --obs flag was
  // given — registration is cheap and collection only happens at exit.
  obs::MetricsRegistry& registry() { return registry_; }

  bool metricsRequested() const { return metrics_; }
  bool traceRequested() const { return trace_; }

 private:
  obs::MetricsRegistry registry_;
  bool metrics_ = false;
  std::string traceDumpPath_;
  bool trace_ = false;
  std::unique_ptr<obs::StatsReporter> reporter_;
};

}  // namespace sftree::bench
