// Batched serving tier: an open-loop request front-end over ShardedMap.
//
// Every number the benches produced before this layer was closed-loop
// thread throughput; a serving system sees an *arrival stream* instead —
// requests queue, wait, and either meet a latency objective or do not. The
// tier accepts Request{op, key, value} into per-executor MPSC submission
// queues (the violation queue's sharded Treiber-stack idiom, lifted to
// whole requests), and per-executor threads drain up to batchSize requests
// and execute each batch inside ONE transaction via the map's composable
// insertTx/eraseTx/getTx/containsTx. Coalescing K same-queue requests into
// a single commit amortizes the begin/validate/commit and orec traffic the
// STM pays per transaction — the batching analogue of flat combining,
// applied to a transactional map. It is also the same perf lever the paper
// pulls for maintenance: move shared-structure work off the caller's
// critical path and amortize it.
//
// Batching widens the conflict window (one hot key can abort a whole
// batch), so the executor adapts exactly like the migration batches
// (docs/sharding.md, "Adaptive migration batches"): a batch transaction
// that aborted at least once halves the next batch (AIMD, floor 1 — which
// IS one-transaction-per-op), two consecutive clean batches double it back
// toward the configured ceiling; and a batch that keeps aborting past
// batchRetryLimit attempts degrades to committing only its first request,
// so one conflicting key cannot convict the same batch repeatedly.
//
// Completion is a Future<Result> / callback API. Enqueue-to-completion
// latency rides the sampled TSC clock (obs::tick) into per-executor
// obs::LogHistograms, so p50/p99/p999 come from the metrics registry like
// every other subsystem's numbers. See docs/serving.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "shard/sharded_map.hpp"
#include "trees/key.hpp"

namespace sftree::serve {

enum class OpKind : std::uint8_t {
  kGet = 0,
  kContains = 1,
  kInsert = 2,
  kErase = 3,
};

inline bool isReadOp(OpKind op) {
  return op == OpKind::kGet || op == OpKind::kContains;
}

struct Request {
  OpKind op = OpKind::kGet;
  Key key = 0;
  Value value = 0;  // kInsert only
};

struct Result {
  OpKind op = OpKind::kGet;
  Key key = 0;
  // kInsert: inserted (false = already present). kErase: removed. kContains
  // / kGet: present. Meaningless when rejected.
  bool ok = false;
  // Admission control refused the request (queue at capacity, or submitted
  // after stop()); the operation did not run.
  bool rejected = false;
  std::optional<Value> value;     // kGet hit only
  std::uint64_t latencyNs = 0;    // enqueue -> completion
};

namespace detail {

// One in-flight request: the Treiber-stack node, the result slot and the
// completion state, refcounted between the executor and the Future (a
// callback-only submission holds a single reference). Heap-allocated per
// request: the serving tier sits above the STM fast path, and the queue
// node doubles as the future's shared state, so one allocation covers both.
struct PendingOp {
  PendingOp* next = nullptr;
  Request req;
  Result res;
  std::uint64_t enqueueTick = 0;
  std::function<void(const Result&)> callback;
  std::atomic<bool> done{false};
  std::atomic<int> refs{1};
  std::mutex mu;
  std::condition_variable cv;

  void release() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
  // Publishes res, wakes waiters, runs the callback (on the completing
  // thread), drops the completer's reference.
  void complete() {
    {
      std::lock_guard<std::mutex> lk(mu);
      done.store(true, std::memory_order_release);
    }
    cv.notify_all();
    if (callback) callback(res);
    release();
  }
};

}  // namespace detail

// Completion handle for one submitted request. Movable, not copyable;
// get()/wait() block until the executor (or the shutdown path) completed
// the request — every accepted request is guaranteed to complete.
class Future {
 public:
  Future() = default;
  explicit Future(detail::PendingOp* op) : op_(op) {}
  Future(Future&& o) noexcept : op_(o.op_) { o.op_ = nullptr; }
  Future& operator=(Future&& o) noexcept {
    if (this != &o) {
      reset();
      op_ = o.op_;
      o.op_ = nullptr;
    }
    return *this;
  }
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;
  ~Future() { reset(); }

  bool valid() const { return op_ != nullptr; }
  bool ready() const {
    return op_ != nullptr && op_->done.load(std::memory_order_acquire);
  }
  void wait() {
    if (op_ == nullptr || op_->done.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lk(op_->mu);
    op_->cv.wait(lk,
                 [this] { return op_->done.load(std::memory_order_acquire); });
  }
  // Blocks, returns the result, invalidates the future.
  Result get() {
    wait();
    Result r = op_->res;
    reset();
    return r;
  }

 private:
  void reset() {
    if (op_ != nullptr) {
      op_->release();
      op_ = nullptr;
    }
  }
  detail::PendingOp* op_ = nullptr;
};

struct ServingTierConfig {
  // Executor threads (and submission queues). 0 = one per shard the map has
  // at construction time.
  int executors = 0;
  // Requests coalesced into one transaction (the AIMD ceiling).
  std::size_t batchSize = 32;
  // Adapt the effective batch size to observed abort pressure (AIMD, the
  // migrationBatch shape): halve after a batch that aborted (floor 1 =
  // per-op transactions), double back after two clean batches.
  bool adaptiveBatch = true;
  // Attempts before a conflicting batch degrades to committing only its
  // first request (the rest run one transaction each).
  std::size_t batchRetryLimit = 2;
  // Admission bound per submission queue; submissions beyond it complete
  // immediately with rejected = true. 0 = unbounded.
  std::size_t queueCapacity = 1 << 16;
  // Executor idle nap while its queue is empty.
  std::chrono::microseconds idleWait{500};
};

// Aggregated counters + latency histograms (merged over executors; racy
// snapshots, exact when quiescent).
struct ServingTierStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t batchTxs = 0;       // batch transactions committed
  std::uint64_t batchedOps = 0;     // requests executed inside batch txs
  std::uint64_t perOpTxs = 0;       // requests executed one-tx-per-op
                                    // (conflict fallback tail)
  std::uint64_t conflictFallbacks = 0;  // batches that degraded to a prefix
  std::uint64_t batchShrinks = 0;   // AIMD halvings
  std::uint64_t batchGrows = 0;     // AIMD re-doublings
  std::uint64_t queueDepth = 0;     // currently queued (all executors)
  std::uint64_t maxQueueDepth = 0;  // high-water mark over any executor
  obs::LogHistogram latencyReadNs;    // enqueue -> completion, get/contains
  obs::LogHistogram latencyUpdateNs;  // enqueue -> completion, insert/erase
  obs::LogHistogram batchNs;          // batch transaction wall time
  obs::LogHistogram batchFill;        // requests committed per batch tx
};

class ServingTier {
 public:
  explicit ServingTier(shard::ShardedMap& map, ServingTierConfig cfg = {});
  ~ServingTier();  // stop()

  ServingTier(const ServingTier&) = delete;
  ServingTier& operator=(const ServingTier&) = delete;

  // Submit with a Future completion handle. Always returns a valid future;
  // an admission rejection completes it immediately with rejected = true.
  Future submit(const Request& r);
  // Submit with a completion callback (invoked once, on the executor thread
  // — or inline on this thread when the request is rejected). Returns false
  // when the request was rejected.
  bool submit(const Request& r, std::function<void(const Result&)> cb);

  // Stops accepting, drains every queue (each accepted request completes),
  // joins the executors. Idempotent; the destructor calls it.
  void stop();

  std::uint64_t queueDepth() const;
  int executors() const { return static_cast<int>(execs_.size()); }
  ServingTierStats stats() const;

  // Registers a snapshot source emitting the counters and the latency /
  // batch histograms. The tier must outlive the registration.
  [[nodiscard]] obs::MetricsRegistry::Registration registerMetrics(
      obs::MetricsRegistry& reg, std::string prefix);

 private:
  // One submission queue + its executor thread. The queue reuses the
  // violation queue's MPSC Treiber-stack idiom (CAS push, exchange-drain);
  // FIFO order is restored by reversing the drained chain into a backlog.
  struct alignas(64) Executor {
    std::atomic<detail::PendingOp*> head{nullptr};
    std::atomic<std::int64_t> depth{0};
    std::atomic<std::uint64_t> maxDepth{0};
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> sleeping{false};
    // Worker-owned drain state (FIFO backlog; backlogPos is the cursor).
    std::vector<detail::PendingOp*> backlog;
    std::size_t backlogPos = 0;
    std::size_t curBatch = 1;  // AIMD state
    int cleanStreak = 0;
    // Single-writer (the executor thread) counters and histograms; readers
    // take racy snapshots (the LogHistogram contract).
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> batchTxs{0};
    std::atomic<std::uint64_t> batchedOps{0};
    std::atomic<std::uint64_t> perOpTxs{0};
    std::atomic<std::uint64_t> conflictFallbacks{0};
    std::atomic<std::uint64_t> batchShrinks{0};
    std::atomic<std::uint64_t> batchGrows{0};
    obs::LogHistogram latencyReadNs;
    obs::LogHistogram latencyUpdateNs;
    obs::LogHistogram batchNs;
    obs::LogHistogram batchFill;
    std::thread thread;
  };

  std::size_t queueFor(Key k) const;
  detail::PendingOp* enqueue(const Request& r,
                             std::function<void(const Result&)> cb,
                             bool withFuture);
  void executorLoop(Executor& ex);
  void executeBatch(Executor& ex, detail::PendingOp* const* ops,
                    std::size_t n);
  void execOneTx(stm::Tx& tx, detail::PendingOp& op);
  void completeOp(Executor& ex, detail::PendingOp* op);

  shard::ShardedMap& map_;
  ServingTierConfig cfg_;
  std::vector<std::unique_ptr<Executor>> execs_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stopMu_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace sftree::serve
