#include "serve/serving.hpp"

#include <algorithm>
#include <utility>

#include "obs/clock.hpp"
#include "stm/stm.hpp"

namespace sftree::serve {

namespace {

// splitmix64 finalizer (the map's slot hash): adjacent keys scatter across
// submission queues, so one client scanning a key range load-balances the
// executors instead of hammering one.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ServingTier::ServingTier(shard::ShardedMap& map, ServingTierConfig cfg)
    : map_(map), cfg_(cfg) {
  if (cfg_.batchSize < 1) cfg_.batchSize = 1;
  if (cfg_.batchRetryLimit < 1) cfg_.batchRetryLimit = 1;
  int n = cfg_.executors > 0 ? cfg_.executors : map_.shardCount();
  if (n < 1) n = 1;
  execs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto ex = std::make_unique<Executor>();
    ex->curBatch = cfg_.batchSize;
    execs_.push_back(std::move(ex));
  }
  for (auto& ex : execs_) {
    Executor* e = ex.get();
    e->thread = std::thread([this, e] { executorLoop(*e); });
  }
}

ServingTier::~ServingTier() { stop(); }

std::size_t ServingTier::queueFor(Key k) const {
  return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(k)) %
                                  static_cast<std::uint64_t>(execs_.size()));
}

detail::PendingOp* ServingTier::enqueue(const Request& r,
                                        std::function<void(const Result&)> cb,
                                        bool withFuture) {
  auto* op = new detail::PendingOp;
  op->req = r;
  op->callback = std::move(cb);
  op->refs.store(withFuture ? 2 : 1, std::memory_order_relaxed);
  op->enqueueTick = obs::tick();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  Executor& ex = *execs_[queueFor(r.key)];
  const bool full =
      cfg_.queueCapacity > 0 &&
      ex.depth.load(std::memory_order_relaxed) >=
          static_cast<std::int64_t>(cfg_.queueCapacity);
  if (full || stop_.load(std::memory_order_acquire)) {
    // Admission control: complete inline with rejected = true (the callback,
    // if any, runs on this thread). The future reference, when requested,
    // keeps the op alive past complete().
    rejected_.fetch_add(1, std::memory_order_relaxed);
    op->res.op = r.op;
    op->res.key = r.key;
    op->res.rejected = true;
    op->res.latencyNs = obs::ticksToNs(obs::tick() - op->enqueueTick);
    op->complete();
    return withFuture ? op : nullptr;
  }

  ex.depth.fetch_add(1, std::memory_order_relaxed);
  // Treiber push (the violation queue's producer idiom).
  op->next = ex.head.load(std::memory_order_relaxed);
  while (!ex.head.compare_exchange_weak(op->next, op,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
  }
  // High-water mark (racy max; a gauge, not an invariant).
  const auto d =
      static_cast<std::uint64_t>(ex.depth.load(std::memory_order_relaxed));
  std::uint64_t prev = ex.maxDepth.load(std::memory_order_relaxed);
  while (d > prev && !ex.maxDepth.compare_exchange_weak(
                         prev, d, std::memory_order_relaxed)) {
  }
  if (ex.sleeping.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(ex.mu);
    ex.cv.notify_one();
  }
  return withFuture ? op : nullptr;
}

Future ServingTier::submit(const Request& r) {
  return Future(enqueue(r, nullptr, /*withFuture=*/true));
}

bool ServingTier::submit(const Request& r,
                         std::function<void(const Result&)> cb) {
  const std::uint64_t rejectedBefore =
      rejected_.load(std::memory_order_relaxed);
  enqueue(r, std::move(cb), /*withFuture=*/false);
  return rejected_.load(std::memory_order_relaxed) == rejectedBefore;
}

void ServingTier::stop() {
  std::lock_guard<std::mutex> stopLk(stopMu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& ex : execs_) {
    std::lock_guard<std::mutex> lk(ex->mu);
    ex->cv.notify_all();
  }
  for (auto& ex : execs_) {
    if (ex->thread.joinable()) ex->thread.join();
  }
  // Stragglers: a submitter that passed the admission check before stop_
  // was visible may have pushed after its executor drained and exited.
  // Nobody will execute them now — complete them as rejected so the
  // every-accepted-request-completes contract holds through shutdown.
  for (auto& ex : execs_) {
    detail::PendingOp* e = ex->head.exchange(nullptr, std::memory_order_acq_rel);
    while (e != nullptr) {
      detail::PendingOp* next = e->next;
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ex->depth.fetch_sub(1, std::memory_order_relaxed);
      e->res.op = e->req.op;
      e->res.key = e->req.key;
      e->res.rejected = true;
      e->res.latencyNs = obs::ticksToNs(obs::tick() - e->enqueueTick);
      e->complete();
      e = next;
    }
  }
  stopped_.store(true, std::memory_order_release);
}

void ServingTier::executorLoop(Executor& ex) {
  std::vector<detail::PendingOp*> batch;
  batch.reserve(cfg_.batchSize);
  for (;;) {
    if (ex.backlogPos >= ex.backlog.size()) {
      ex.backlog.clear();
      ex.backlogPos = 0;
      detail::PendingOp* head =
          ex.head.exchange(nullptr, std::memory_order_acq_rel);
      if (head == nullptr) {
        if (stop_.load(std::memory_order_acquire)) {
          // Drain-to-empty shutdown: exit only on an empty queue (the stop
          // path sweeps the racing-submitter window afterwards).
          if (ex.head.load(std::memory_order_acquire) == nullptr) break;
          continue;
        }
        std::unique_lock<std::mutex> lk(ex.mu);
        ex.sleeping.store(true, std::memory_order_release);
        if (ex.head.load(std::memory_order_acquire) == nullptr &&
            !stop_.load(std::memory_order_acquire)) {
          ex.cv.wait_for(lk, cfg_.idleWait);
        }
        ex.sleeping.store(false, std::memory_order_release);
        continue;
      }
      // The exchanged chain is LIFO (newest first); reverse it so batches
      // execute in arrival order.
      for (detail::PendingOp* e = head; e != nullptr; e = e->next) {
        ex.backlog.push_back(e);
      }
      std::reverse(ex.backlog.begin(), ex.backlog.end());
    }
    // Coalesce the longest run of same-class (read vs update) requests up
    // to the AIMD window: a homogeneous read batch rides the zero-logging
    // read-only mode, which a single update in the batch would forfeit for
    // every read in it. Runs are consecutive, so order is preserved.
    const std::size_t avail = ex.backlog.size() - ex.backlogPos;
    const std::size_t lim = std::min(avail, ex.curBatch);
    const bool readClass = isReadOp(ex.backlog[ex.backlogPos]->req.op);
    std::size_t take = 1;
    while (take < lim &&
           isReadOp(ex.backlog[ex.backlogPos + take]->req.op) == readClass) {
      ++take;
    }
    executeBatch(ex, ex.backlog.data() + ex.backlogPos, take);
    ex.backlogPos += take;
  }
}

void ServingTier::execOneTx(stm::Tx& tx, detail::PendingOp& op) {
  Result& r = op.res;
  // Rewritten on every attempt; only the post-commit values are published.
  r.op = op.req.op;
  r.key = op.req.key;
  r.rejected = false;
  r.value.reset();
  switch (op.req.op) {
    case OpKind::kGet:
      r.value = map_.getTx(tx, op.req.key);
      r.ok = r.value.has_value();
      break;
    case OpKind::kContains:
      r.ok = map_.containsTx(tx, op.req.key);
      break;
    case OpKind::kInsert:
      r.ok = map_.insertTx(tx, op.req.key, op.req.value);
      break;
    case OpKind::kErase:
      r.ok = map_.eraseTx(tx, op.req.key);
      break;
  }
}

void ServingTier::completeOp(Executor& ex, detail::PendingOp* op) {
  const std::uint64_t lat = obs::ticksToNs(obs::tick() - op->enqueueTick);
  op->res.latencyNs = lat;
  if (isReadOp(op->req.op)) {
    ex.latencyReadNs.record(lat);
  } else {
    ex.latencyUpdateNs.record(lat);
  }
  ex.completed.fetch_add(1, std::memory_order_relaxed);
  ex.depth.fetch_sub(1, std::memory_order_relaxed);
  op->complete();  // may delete op
}

void ServingTier::executeBatch(Executor& ex, detail::PendingOp* const* ops,
                               std::size_t n) {
  if (n == 0) return;
  // Root the batch in the first key's current shard domain; the map's
  // composable ops join further domains (and the routing domain) as the
  // batch touches them, with the multi-domain ordered commit keeping the
  // whole batch atomic.
  const int si = map_.shardIndexFor(ops[0]->req.key);
  stm::Domain& dom = map_.domainOf(si < 0 ? 0 : si);
  // The drain loop hands over homogeneous batches (one isReadOp class), so
  // the head op decides the mode: read batches ride the zero-logging
  // read-only path, update batches take full validation (the dual-path
  // migration checks rely on it).
  const stm::TxKind kind =
      isReadOp(ops[0]->req.op) ? stm::TxKind::ReadOnly : stm::TxKind::Normal;
  auto& st = stm::threadStats(dom);
  const std::uint64_t abortsBefore = st.conflictAbortTotal();
  std::size_t attempts = 0;
  std::size_t committed = n;
  const std::uint64_t t0 = obs::tick();
  st.beginOp();
  stm::atomically(dom, kind, [&](stm::Tx& tx) {
    // Conflict fallback: past the retry limit, commit only the first
    // request — a batch-sized conflict window collapses to a per-op one,
    // so a single hot key cannot convict the whole batch again.
    ++attempts;
    committed = attempts > cfg_.batchRetryLimit ? 1 : n;
    for (std::size_t i = 0; i < committed; ++i) execOneTx(tx, *ops[i]);
  });
  st.endOp();
  ex.batchNs.record(obs::ticksToNs(obs::tick() - t0));
  ex.batchFill.record(committed);
  ex.batchTxs.fetch_add(1, std::memory_order_relaxed);
  ex.batchedOps.fetch_add(committed, std::memory_order_relaxed);
  for (std::size_t i = 0; i < committed; ++i) completeOp(ex, ops[i]);

  if (committed < n) {
    // The convicted tail runs one transaction per request.
    ex.conflictFallbacks.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = committed; i < n; ++i) {
      detail::PendingOp& op = *ops[i];
      const stm::TxKind k1 =
          isReadOp(op.req.op) ? stm::TxKind::ReadOnly : stm::TxKind::Normal;
      st.beginOp();
      stm::atomically(dom, k1, [&](stm::Tx& tx) { execOneTx(tx, op); });
      st.endOp();
      ex.perOpTxs.fetch_add(1, std::memory_order_relaxed);
      completeOp(ex, ops[i]);
    }
  }

  // AIMD on abort pressure, the migrationBatch shape: halve after a batch
  // that aborted (floor 1 = per-op transactions), double back after two
  // consecutive clean batches. The executor thread runs the transactions,
  // so its own conflict-abort counter delta isolates this batch's aborts.
  if (cfg_.adaptiveBatch) {
    if (st.conflictAbortTotal() != abortsBefore) {
      ex.cleanStreak = 0;
      if (ex.curBatch > 1) {
        ex.curBatch = std::max<std::size_t>(1, ex.curBatch / 2);
        ex.batchShrinks.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (++ex.cleanStreak >= 2 && ex.curBatch < cfg_.batchSize) {
      ex.cleanStreak = 0;
      ex.curBatch = std::min(cfg_.batchSize, ex.curBatch * 2);
      ex.batchGrows.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t ServingTier::queueDepth() const {
  std::uint64_t d = 0;
  for (const auto& ex : execs_) {
    const std::int64_t v = ex->depth.load(std::memory_order_relaxed);
    if (v > 0) d += static_cast<std::uint64_t>(v);
  }
  return d;
}

ServingTierStats ServingTier::stats() const {
  ServingTierStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  for (const auto& ex : execs_) {
    s.completed += ex->completed.load(std::memory_order_relaxed);
    s.batchTxs += ex->batchTxs.load(std::memory_order_relaxed);
    s.batchedOps += ex->batchedOps.load(std::memory_order_relaxed);
    s.perOpTxs += ex->perOpTxs.load(std::memory_order_relaxed);
    s.conflictFallbacks +=
        ex->conflictFallbacks.load(std::memory_order_relaxed);
    s.batchShrinks += ex->batchShrinks.load(std::memory_order_relaxed);
    s.batchGrows += ex->batchGrows.load(std::memory_order_relaxed);
    const std::int64_t d = ex->depth.load(std::memory_order_relaxed);
    if (d > 0) s.queueDepth += static_cast<std::uint64_t>(d);
    s.maxQueueDepth = std::max(
        s.maxQueueDepth, ex->maxDepth.load(std::memory_order_relaxed));
    s.latencyReadNs += ex->latencyReadNs.snapshot();
    s.latencyUpdateNs += ex->latencyUpdateNs.snapshot();
    s.batchNs += ex->batchNs.snapshot();
    s.batchFill += ex->batchFill.snapshot();
  }
  return s;
}

obs::MetricsRegistry::Registration ServingTier::registerMetrics(
    obs::MetricsRegistry& reg, std::string prefix) {
  return reg.add(std::move(prefix), [this](obs::MetricSink& out) {
    const ServingTierStats s = stats();
    out.counter("submitted", s.submitted);
    out.counter("rejected", s.rejected);
    out.counter("completed", s.completed);
    out.counter("batch_txs", s.batchTxs);
    out.counter("batched_ops", s.batchedOps);
    out.counter("per_op_txs", s.perOpTxs);
    out.counter("conflict_fallbacks", s.conflictFallbacks);
    out.counter("batch_shrinks", s.batchShrinks);
    out.counter("batch_grows", s.batchGrows);
    out.gauge("queue_depth", static_cast<double>(s.queueDepth));
    out.counter("max_queue_depth", s.maxQueueDepth);
    out.gauge("executors", static_cast<double>(execs_.size()));
    out.histogram("latency_read_ns", s.latencyReadNs);
    out.histogram("latency_update_ns", s.latencyUpdateNs);
    out.histogram("batch_ns", s.batchNs);
    out.histogram("batch_fill", s.batchFill);
  });
}

}  // namespace sftree::serve
