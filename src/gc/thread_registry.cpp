#include "gc/thread_registry.hpp"

#include <unordered_map>

namespace sftree::gc {

namespace {

std::uint64_t nextRegistryId() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread cache: registry id -> slot. Keyed by id (not address) so a new
// registry reusing a dead one's address never aliases stale entries; slots
// are shared_ptr-owned so releasing at thread exit is safe even if the
// registry died first.
struct SlotCache {
  std::unordered_map<std::uint64_t, std::shared_ptr<ThreadRegistry::Slot>>
      slots;

  ~SlotCache() {
    for (auto& [id, slot] : slots) {
      slot->pending.store(false, std::memory_order_release);
      slot->inUse.store(false, std::memory_order_release);
    }
  }
};

SlotCache& slotCache() {
  thread_local SlotCache cache;
  return cache;
}

}  // namespace

ThreadRegistry::ThreadRegistry() : id_(nextRegistryId()) {}

ThreadRegistry::Slot& ThreadRegistry::currentSlot() {
  SlotCache& cache = slotCache();
  auto it = cache.slots.find(id_);
  if (it != cache.slots.end()) return *it->second;
  std::shared_ptr<Slot> s = acquireSlot();
  Slot& ref = *s;
  cache.slots.emplace(id_, std::move(s));
  return ref;
}

std::shared_ptr<ThreadRegistry::Slot> ThreadRegistry::acquireSlot() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& s : slots_) {
    bool expected = false;
    if (s->inUse.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      s->pending.store(false, std::memory_order_release);
      return s;
    }
  }
  slots_.push_back(std::make_shared<Slot>());
  slots_.back()->inUse.store(true, std::memory_order_release);
  return slots_.back();
}

ThreadRegistry::Snapshot ThreadRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  snap.reserve(slots_.size());
  for (const auto& s : slots_) {
    if (!s->inUse.load(std::memory_order_acquire)) continue;
    snap.push_back(SlotSnapshot{
        s.get(),
        s->pending.load(std::memory_order_acquire),
        s->completed.load(std::memory_order_acquire),
    });
  }
  return snap;
}

bool ThreadRegistry::quiescedSince(const Snapshot& snap) const {
  for (const SlotSnapshot& e : snap) {
    if (!e.pending) continue;  // had no operation in flight at snapshot time
    if (e.slot->completed.load(std::memory_order_acquire) > e.completed) {
      continue;  // that operation (at least) has finished since
    }
    if (!e.slot->pending.load(std::memory_order_acquire)) {
      continue;  // finished and no new operation started
    }
    return false;
  }
  return true;
}

std::size_t ThreadRegistry::slotCountForTest() const {
  std::lock_guard<std::mutex> lk(mu_);
  return slots_.size();
}

}  // namespace sftree::gc
