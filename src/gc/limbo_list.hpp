// Limbo list: retired nodes awaiting quiescence (paper §3.4).
//
// Single-consumer design matching the paper: only the maintenance thread
// retires nodes (it is the only physical remover) and only it collects.
// Protocol per maintenance traversal:
//
//   list.openEpoch(registry);   // remember list end + thread snapshot
//   ... full tree traversal ...
//   list.tryCollect(registry);  // free the remembered prefix if quiesced
//
// The paper observes the list stays a small fraction of the tree size; we
// expose counters so tests and benches can check that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "gc/thread_registry.hpp"

namespace sftree::gc {

class LimboList {
 public:
  using Deleter = void (*)(void*);

  LimboList() = default;
  LimboList(const LimboList&) = delete;
  LimboList& operator=(const LimboList&) = delete;

  // Frees everything still in limbo. Caller must guarantee no thread can
  // still reference retired nodes (tree destructor: workers joined).
  ~LimboList() { collectAll(); }

  // Maintenance thread only.
  void retire(void* ptr, Deleter deleter) {
    items_.push_back(Item{ptr, deleter});
    ++retiredTotal_;
  }

  // Starts a collection epoch: nodes retired so far become candidates.
  void openEpoch(const ThreadRegistry& registry) {
    epochEnd_ = items_.size();
    epochSnapshot_ = registry.snapshot();
    epochOpen_ = true;
  }

  // Frees the epoch's candidates when every thread pending at openEpoch has
  // since completed an operation. Returns the number of nodes freed.
  std::size_t tryCollect(const ThreadRegistry& registry) {
    if (!epochOpen_) return 0;
    if (!registry.quiescedSince(epochSnapshot_)) return 0;
    std::size_t freed = 0;
    while (freed < epochEnd_ && !items_.empty()) {
      Item item = items_.front();
      items_.pop_front();
      item.deleter(item.ptr);
      ++freed;
    }
    freedTotal_ += freed;
    epochOpen_ = false;
    epochEnd_ = 0;
    return freed;
  }

  // Unconditional collection (destructor / quiesced teardown).
  void collectAll() {
    while (!items_.empty()) {
      Item item = items_.front();
      items_.pop_front();
      item.deleter(item.ptr);
      ++freedTotal_;
    }
    epochOpen_ = false;
    epochEnd_ = 0;
  }

  std::size_t pending() const { return items_.size(); }
  std::uint64_t retiredTotal() const { return retiredTotal_; }
  std::uint64_t freedTotal() const { return freedTotal_; }

 private:
  struct Item {
    void* ptr;
    Deleter deleter;
  };

  std::deque<Item> items_;
  std::size_t epochEnd_ = 0;
  bool epochOpen_ = false;
  ThreadRegistry::Snapshot epochSnapshot_;
  std::uint64_t retiredTotal_ = 0;
  std::uint64_t freedTotal_ = 0;
};

}  // namespace sftree::gc
