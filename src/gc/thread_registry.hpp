// Thread registry for the paper's quiescence-based reclamation (§3.4).
//
// Every application thread that operates on a tree owns a slot with
//   * a boolean `pending`  — an abstract operation is in flight, and
//   * a counter `completed` — number of finished operations.
// The maintenance thread snapshots all slots before a traversal; after the
// traversal, retired nodes older than the snapshot may be freed once every
// slot has either completed an operation since the snapshot or had none
// pending at snapshot time (those threads can no longer hold references to
// nodes that were unlinked before the snapshot: any later search restarts
// from the root, which no longer reaches them).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sftree::gc {

class ThreadRegistry {
 public:
  struct alignas(64) Slot {
    std::atomic<bool> pending{false};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> inUse{false};
  };

  struct SlotSnapshot {
    const Slot* slot;
    bool pending;
    std::uint64_t completed;
  };
  using Snapshot = std::vector<SlotSnapshot>;

  ThreadRegistry();
  ~ThreadRegistry() = default;
  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  // The calling thread's slot in this registry (allocated or reused on
  // first use, cached thread-locally, released at thread exit). Slots are
  // shared_ptr-owned so a cached reference can never dangle even if the
  // registry is destroyed before the thread exits.
  Slot& currentSlot();

  // Copies every in-use slot's state (maintenance thread).
  Snapshot snapshot() const;

  // True when every thread that was mid-operation at snapshot time has
  // since completed at least one operation.
  bool quiescedSince(const Snapshot& snap) const;

  std::size_t slotCountForTest() const;

 private:
  std::shared_ptr<Slot> acquireSlot();

  const std::uint64_t id_;  // process-unique, never reused
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Slot>> slots_;
};

// RAII bracket around one abstract operation (insert/delete/contains/...).
// While alive, retired nodes the operation might still reference are kept.
class OpGuard {
 public:
  explicit OpGuard(ThreadRegistry& reg) : slot_(reg.currentSlot()) {
    slot_.pending.store(true, std::memory_order_release);
  }
  ~OpGuard() {
    slot_.completed.fetch_add(1, std::memory_order_release);
    slot_.pending.store(false, std::memory_order_release);
  }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  ThreadRegistry::Slot& slot_;
};

}  // namespace sftree::gc
