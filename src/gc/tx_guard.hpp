// Transaction-scoped operation bracket for quiescence-based reclamation.
//
// A plain gc::OpGuard signals completion when the operation body returns —
// but a transactional operation's memory references outlive its body: the
// enclosing transaction may revalidate (NOrec re-reads every logged
// address by value) up to and including commit, long after the guard was
// destroyed. Freeing a node between the body's return and the final
// validation is a use-after-free the quiescence protocol exists to prevent,
// so transactional operations must defer the completion signal to
// transaction end (commit *or* abort — either way the last validation has
// happened). Retried attempts re-register on re-execution.
#pragma once

#include "gc/thread_registry.hpp"
#include "stm/tx.hpp"

namespace sftree::gc {

// Marks an abstract operation in flight on `reg` until the enclosing
// transaction attempt ends. Replaces a stack OpGuard inside Tx-composable
// operation bodies.
inline void txOpGuard(sftree::stm::Tx& tx, ThreadRegistry& reg) {
  ThreadRegistry::Slot& slot = reg.currentSlot();
  slot.pending.store(true, std::memory_order_release);
  tx.onTxEnd([&slot] {
    slot.completed.fetch_add(1, std::memory_order_release);
    slot.pending.store(false, std::memory_order_release);
  });
}

}  // namespace sftree::gc
