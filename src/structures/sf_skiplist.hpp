// A speculation-friendly skip list — the paper's future-work direction
// ("the next challenge is to adapt this technique to a large body of data
// structures to derive a speculation-friendly library", §7) applied to the
// second structure synchrobench ships.
//
// Skip lists are probabilistically balanced, so only the *deletion*
// decoupling of §3.2 applies: erase() flips a logical-deletion flag in a
// tiny transaction; a background maintenance thread physically unlinks
// deleted towers in node-local transactions and reclaims them through the
// same §3.4 quiescence protocol as the tree.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gc/limbo_list.hpp"
#include "gc/thread_registry.hpp"
#include "mem/arena.hpp"
#include "stm/stm.hpp"
#include "trees/key.hpp"

namespace sftree::structures {

struct SkipListConfig {
  bool startMaintenance = true;
  std::chrono::microseconds idlePause{100};
  // STM clock domain; null selects the process default.
  stm::Domain* domain = nullptr;
};

class SFSkipList {
 public:
  static constexpr int kMaxLevel = 16;

  struct Node {
    const sftree::Key key;
    stm::TxField<sftree::Value> value;
    stm::TxField<bool> deleted;  // logical deletion (abstract transaction)
    stm::TxField<bool> removed;  // physically unlinked (maintenance)
    const int level;             // tower height, 1..kMaxLevel
    stm::TxField<Node*> next[kMaxLevel];

    Node(sftree::Key k, sftree::Value v, int lvl)
        : key(k), value(v), level(lvl) {}
  };

  using Config = SkipListConfig;

  explicit SFSkipList(Config cfg = {});
  ~SFSkipList();

  SFSkipList(const SFSkipList&) = delete;
  SFSkipList& operator=(const SFSkipList&) = delete;

  // --- abstract operations (thread-safe, transactional, composable) --------
  bool insert(sftree::Key k, sftree::Value v);
  bool erase(sftree::Key k);
  bool contains(sftree::Key k);
  std::optional<sftree::Value> get(sftree::Key k);

  bool insertTx(stm::Tx& tx, sftree::Key k, sftree::Value v);
  bool eraseTx(stm::Tx& tx, sftree::Key k);
  bool containsTx(stm::Tx& tx, sftree::Key k);
  std::optional<sftree::Value> getTx(stm::Tx& tx, sftree::Key k);

  // --- maintenance -----------------------------------------------------------
  void startMaintenance();
  void stopMaintenance();
  bool maintenanceRunning() const { return maintenanceThread_.joinable(); }
  // Runs unlink passes on the calling thread until nothing changes
  // (maintenance thread must be stopped).
  int quiesceNow(int maxPasses = 100);

  std::uint64_t unlinksForTest() const {
    return unlinks_.load(std::memory_order_relaxed);
  }
  std::size_t limboPending() const { return limbo_.pending(); }

  // --- quiesced introspection ------------------------------------------------
  std::size_t abstractSize();    // non-deleted reachable keys
  std::size_t structuralSize();  // reachable towers
  std::vector<sftree::Key> keysInOrder();

  stm::Domain& domain() const { return domain_; }

 private:
  // Fills preds/succs per level for key k; returns the node with key k
  // (still linked at level 0) or nullptr.
  Node* findTx(stm::Tx& tx, sftree::Key k, Node* preds[kMaxLevel],
               Node* succs[kMaxLevel]) const;

  int randomLevel();
  bool tryUnlink(Node* node);
  void maintenanceLoop();
  bool maintenancePass();

  static void deleteNode(void* p) { mem::NodeArena<Node>::destroy(p); }

  // Declared before the limbo list so retired towers can recycle into it
  // during destruction.
  mem::NodeArena<Node> arena_;
  Node* head_;  // sentinel tower of full height, key = min
  std::atomic<std::uint64_t> rngState_{0x853C49E6748FEA9BULL};
  std::atomic<std::uint64_t> unlinks_{0};

  Config cfg_;
  stm::Domain& domain_;
  gc::ThreadRegistry registry_;
  gc::LimboList limbo_;
  std::thread maintenanceThread_;
  std::atomic<bool> stopFlag_{false};
};

}  // namespace sftree::structures
