#include "structures/sf_skiplist.hpp"

#include "gc/tx_guard.hpp"

#include <limits>

namespace sftree::structures {

using sftree::Key;
using sftree::Value;

SFSkipList::SFSkipList(Config cfg)
    : cfg_(cfg),
      domain_(cfg.domain != nullptr ? *cfg.domain : stm::defaultDomain()) {
  head_ = arena_.create(std::numeric_limits<Key>::min(), 0, kMaxLevel);
  if (cfg_.startMaintenance) startMaintenance();
}

SFSkipList::~SFSkipList() {
  stopMaintenance();
  // Reachable towers form a simple list at level 0; unlinked towers are
  // owned by the limbo list.
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0].loadRelaxed();
    deleteNode(n);
    n = next;
  }
}

SFSkipList::Node* SFSkipList::findTx(stm::Tx& tx, Key k,
                                     Node* preds[kMaxLevel],
                                     Node* succs[kMaxLevel]) const {
  Node* x = head_;
  for (int l = kMaxLevel - 1; l >= 0; --l) {
    Node* nxt = x->next[l].read(tx);
    while (nxt != nullptr && nxt->key < k) {
      x = nxt;
      nxt = x->next[l].read(tx);
    }
    preds[l] = x;
    succs[l] = nxt;
  }
  return (succs[0] != nullptr && succs[0]->key == k) ? succs[0] : nullptr;
}

bool SFSkipList::containsTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  Node* preds[kMaxLevel];
  Node* succs[kMaxLevel];
  Node* n = findTx(tx, k, preds, succs);
  return n != nullptr && !n->deleted.read(tx);
}

std::optional<Value> SFSkipList::getTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  Node* preds[kMaxLevel];
  Node* succs[kMaxLevel];
  Node* n = findTx(tx, k, preds, succs);
  if (n == nullptr || n->deleted.read(tx)) return std::nullopt;
  return n->value.read(tx);
}

int SFSkipList::randomLevel() {
  // Geometric with p = 1/2, capped; xorshift on a shared relaxed state is
  // fine — quality only influences balance, not correctness.
  std::uint64_t s = rngState_.load(std::memory_order_relaxed);
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  rngState_.store(s, std::memory_order_relaxed);
  const std::uint64_t r = s * 0x2545F4914F6CDD1DULL;
  int lvl = 1;
  while (lvl < kMaxLevel && (r >> lvl & 1) != 0) ++lvl;
  return lvl;
}

bool SFSkipList::insertTx(stm::Tx& tx, Key k, Value v) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  Node* preds[kMaxLevel];
  Node* succs[kMaxLevel];
  Node* n = findTx(tx, k, preds, succs);
  if (n != nullptr) {
    if (n->deleted.read(tx)) {
      // Revive the logically deleted tower (abstraction-only update).
      n->deleted.write(tx, false);
      n->value.write(tx, v);
      return true;
    }
    return false;
  }
  const int lvl = randomLevel();
  Node* fresh = arena_.create(k, v, lvl);
  tx.onAbortDelete(fresh, &SFSkipList::deleteNode);
  for (int l = 0; l < lvl; ++l) {
    fresh->next[l].storeRelaxed(succs[l]);  // private until publication
  }
  for (int l = 0; l < lvl; ++l) {
    preds[l]->next[l].write(tx, fresh);
  }
  return true;
}

bool SFSkipList::eraseTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  Node* preds[kMaxLevel];
  Node* succs[kMaxLevel];
  Node* n = findTx(tx, k, preds, succs);
  if (n == nullptr) return false;
  if (n->deleted.read(tx)) return false;
  // Logical deletion only (§3.2): the structure is untouched; the
  // maintenance thread unlinks the tower later.
  n->deleted.write(tx, true);
  return true;
}

bool SFSkipList::insert(Key k, Value v) {
  return stm::atomically(domain_, [&](stm::Tx& tx) { return insertTx(tx, k, v); });
}
bool SFSkipList::erase(Key k) {
  return stm::atomically(domain_, [&](stm::Tx& tx) { return eraseTx(tx, k); });
}
bool SFSkipList::contains(Key k) {
  return stm::atomically(domain_, stm::TxKind::ReadOnly,
                         [&](stm::Tx& tx) { return containsTx(tx, k); });
}
std::optional<Value> SFSkipList::get(Key k) {
  return stm::atomically(domain_, stm::TxKind::ReadOnly,
                         [&](stm::Tx& tx) { return getTx(tx, k); });
}

// --------------------------------------------------------------------------
// Maintenance: physical unlinking of logically deleted towers, one
// node-local transaction per tower, then quiescence-based reclamation.
// --------------------------------------------------------------------------
bool SFSkipList::tryUnlink(Node* node) {
  const bool ok = stm::atomically(domain_, [&](stm::Tx& tx) {
    if (node->removed.read(tx)) return false;
    if (!node->deleted.read(tx)) return false;  // revived meanwhile
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (findTx(tx, node->key, preds, succs) != node) return false;
    for (int l = node->level - 1; l >= 0; --l) {
      if (preds[l]->next[l].read(tx) == node) {
        preds[l]->next[l].write(tx, node->next[l].read(tx));
      }
    }
    // The tower's own next pointers are left intact: a preempted traversal
    // standing on it still has its path forward (same escape argument as
    // the tree's removed nodes).
    node->removed.write(tx, true);
    return true;
  });
  if (ok) {
    limbo_.retire(node, &SFSkipList::deleteNode);
    unlinks_.fetch_add(1, std::memory_order_relaxed);
  }
  return ok;
}

bool SFSkipList::maintenancePass() {
  bool didWork = false;
  limbo_.openEpoch(registry_);
  Node* n = head_->next[0].loadAcquire();
  while (n != nullptr && !stopFlag_.load(std::memory_order_relaxed)) {
    Node* next = n->next[0].loadAcquire();
    if (n->deleted.loadAcquire() && !n->removed.loadAcquire()) {
      if (tryUnlink(n)) didWork = true;
    }
    n = next;
  }
  limbo_.tryCollect(registry_);
  return didWork;
}

void SFSkipList::maintenanceLoop() {
  while (!stopFlag_.load(std::memory_order_acquire)) {
    const bool didWork = maintenancePass();
    if (!didWork && cfg_.idlePause.count() > 0) {
      std::this_thread::sleep_for(cfg_.idlePause);
    }
  }
}

void SFSkipList::startMaintenance() {
  if (maintenanceThread_.joinable()) return;
  stopFlag_.store(false, std::memory_order_release);
  maintenanceThread_ = std::thread([this] { maintenanceLoop(); });
}

void SFSkipList::stopMaintenance() {
  if (!maintenanceThread_.joinable()) return;
  stopFlag_.store(true, std::memory_order_release);
  maintenanceThread_.join();
}

int SFSkipList::quiesceNow(int maxPasses) {
  stopFlag_.store(false, std::memory_order_release);
  for (int pass = 1; pass <= maxPasses; ++pass) {
    if (!maintenancePass()) return pass;
  }
  return maxPasses;
}

std::size_t SFSkipList::abstractSize() {
  std::size_t n = 0;
  for (Node* x = head_->next[0].loadAcquire(); x != nullptr;
       x = x->next[0].loadAcquire()) {
    if (!x->deleted.loadAcquire()) ++n;
  }
  return n;
}

std::size_t SFSkipList::structuralSize() {
  std::size_t n = 0;
  for (Node* x = head_->next[0].loadAcquire(); x != nullptr;
       x = x->next[0].loadAcquire()) {
    ++n;
  }
  return n;
}

std::vector<Key> SFSkipList::keysInOrder() {
  std::vector<Key> out;
  for (Node* x = head_->next[0].loadAcquire(); x != nullptr;
       x = x->next[0].loadAcquire()) {
    if (!x->deleted.loadAcquire()) out.push_back(x->key);
  }
  return out;
}

}  // namespace sftree::structures
