#include "structures/tmlist.hpp"

#include "gc/tx_guard.hpp"

namespace sftree::structures {

TMList::TMList(stm::Domain* domain)
    : domain_(domain != nullptr ? *domain : stm::defaultDomain()) {}

TMList::~TMList() {
  ListNode* n = head_.loadRelaxed();
  while (n != nullptr) {
    ListNode* next = n->next.loadRelaxed();
    deleteNode(n);
    n = next;
  }
}

bool TMList::insertTx(stm::Tx& tx, Key k, Value v) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  ListNode* prev = nullptr;
  ListNode* curr = head_.read(tx);
  while (curr != nullptr && curr->key < k) {
    prev = curr;
    curr = curr->next.read(tx);
  }
  if (curr != nullptr && curr->key == k) return false;
  ListNode* nn = arena_.create(k, v);
  tx.onAbortDelete(nn, &TMList::deleteNode);
  nn->next.storeRelaxed(curr);
  if (prev == nullptr) {
    head_.write(tx, nn);
  } else {
    prev->next.write(tx, nn);
  }
  return true;
}

bool TMList::eraseTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  ListNode* prev = nullptr;
  ListNode* curr = head_.read(tx);
  while (curr != nullptr && curr->key < k) {
    prev = curr;
    curr = curr->next.read(tx);
  }
  if (curr == nullptr || curr->key != k) return false;
  ListNode* next = curr->next.read(tx);
  if (prev == nullptr) {
    head_.write(tx, next);
  } else {
    prev->next.write(tx, next);
  }
  // Retire only once the unlink is durable (outermost commit); the limbo
  // list frees it after all in-flight operations have completed.
  ListNode* victim = curr;
  tx.onCommit([this, victim] { retireNode(victim); });
  return true;
}

bool TMList::containsTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  ListNode* curr = head_.read(tx);
  while (curr != nullptr && curr->key < k) curr = curr->next.read(tx);
  return curr != nullptr && curr->key == k;
}

std::optional<Value> TMList::getTx(stm::Tx& tx, Key k) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  ListNode* curr = head_.read(tx);
  while (curr != nullptr && curr->key < k) curr = curr->next.read(tx);
  if (curr == nullptr || curr->key != k) return std::nullopt;
  return curr->value.read(tx);
}

bool TMList::updateTx(stm::Tx& tx, Key k, Value v) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  ListNode* curr = head_.read(tx);
  while (curr != nullptr && curr->key < k) curr = curr->next.read(tx);
  if (curr == nullptr || curr->key != k) return false;
  curr->value.write(tx, v);
  return true;
}

std::size_t TMList::sizeTx(stm::Tx& tx) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  std::size_t n = 0;
  for (ListNode* curr = head_.read(tx); curr != nullptr;
       curr = curr->next.read(tx)) {
    ++n;
  }
  return n;
}

void TMList::forEachTx(stm::Tx& tx,
                       const std::function<void(Key, Value)>& fn) {
  stm::DomainScope dscope(tx, domain_);
  gc::txOpGuard(tx, registry_);
  for (ListNode* curr = head_.read(tx); curr != nullptr;
       curr = curr->next.read(tx)) {
    fn(curr->key, curr->value.read(tx));
  }
}

void TMList::retireNode(ListNode* n) {
  std::lock_guard<std::mutex> lk(limboMu_);
  limbo_.retire(n, &TMList::deleteNode);
  if (++retireTick_ % 64 == 0) {
    limbo_.tryCollect(registry_);
    limbo_.openEpoch(registry_);
  }
}

bool TMList::insert(Key k, Value v) {
  return stm::atomically(domain_, [&](stm::Tx& tx) { return insertTx(tx, k, v); });
}

bool TMList::erase(Key k) {
  return stm::atomically(domain_, [&](stm::Tx& tx) { return eraseTx(tx, k); });
}

bool TMList::contains(Key k) {
  return stm::atomically(domain_, stm::TxKind::ReadOnly,
                         [&](stm::Tx& tx) { return containsTx(tx, k); });
}

std::optional<Value> TMList::get(Key k) {
  return stm::atomically(domain_, stm::TxKind::ReadOnly,
                         [&](stm::Tx& tx) { return getTx(tx, k); });
}

std::size_t TMList::size() {
  return stm::atomically(domain_, stm::TxKind::ReadOnly,
                         [&](stm::Tx& tx) { return sizeTx(tx); });
}

std::vector<std::pair<Key, Value>> TMList::items() {
  std::vector<std::pair<Key, Value>> out;
  for (ListNode* n = head_.loadRelaxed(); n != nullptr;
       n = n->next.loadRelaxed()) {
    out.emplace_back(n->key, n->value.loadRelaxed());
  }
  return out;
}

}  // namespace sftree::structures
