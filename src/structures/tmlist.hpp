// Transactional sorted singly-linked list.
//
// A small transactional set/map used as a substrate by the vacation
// application (per-customer reservation lists, as in STAMP's list.c). All
// shared accesses go through the STM, so list operations compose with tree
// operations inside one transaction. Unlinked nodes are reclaimed through
// the same quiescence protocol as the trees (per-list registry + limbo).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "gc/limbo_list.hpp"
#include "gc/thread_registry.hpp"
#include "mem/arena.hpp"
#include "stm/stm.hpp"
#include "trees/key.hpp"

namespace sftree::structures {

using Key = sftree::Key;
using Value = sftree::Value;

struct ListNode {
  const Key key;
  stm::TxField<Value> value;
  stm::TxField<ListNode*> next;

  ListNode(Key k, Value v) : key(k), value(v) {}
};

// Sorted by key, unique keys.
class TMList {
 public:
  // `domain` is the STM clock domain the list's transactions run against;
  // null selects the process default.
  explicit TMList(stm::Domain* domain = nullptr);
  ~TMList();

  TMList(const TMList&) = delete;
  TMList& operator=(const TMList&) = delete;

  bool insertTx(stm::Tx& tx, Key k, Value v);
  bool eraseTx(stm::Tx& tx, Key k);
  bool containsTx(stm::Tx& tx, Key k);
  std::optional<Value> getTx(stm::Tx& tx, Key k);
  // Replaces the value of an existing key; false if absent.
  bool updateTx(stm::Tx& tx, Key k, Value v);
  std::size_t sizeTx(stm::Tx& tx);
  // Applies fn to every (key, value) pair, in key order.
  void forEachTx(stm::Tx& tx, const std::function<void(Key, Value)>& fn);

  // Convenience single-op wrappers.
  bool insert(Key k, Value v);
  bool erase(Key k);
  bool contains(Key k);
  std::optional<Value> get(Key k);
  std::size_t size();

  // Quiesced contents.
  std::vector<std::pair<Key, Value>> items();

  stm::Domain& domain() const { return domain_; }

 private:
  void retireNode(ListNode* n);
  static void deleteNode(void* p) { mem::NodeArena<ListNode>::destroy(p); }

  stm::Domain& domain_;
  // Declared before the limbo list so retired nodes can recycle into it
  // during destruction.
  mem::NodeArena<ListNode> arena_;
  stm::TxField<ListNode*> head_{nullptr};

  gc::ThreadRegistry registry_;
  std::mutex limboMu_;
  gc::LimboList limbo_;
  std::uint64_t retireTick_ = 0;
};

}  // namespace sftree::structures
