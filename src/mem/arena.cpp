#include "mem/arena.hpp"

#include <cassert>
#include <cstdint>

namespace sftree::mem {

namespace {

constexpr std::size_t roundUp(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

}  // namespace

SlabArena::SlabArena(std::size_t blockSize)
    : blockSize_(blockSize),
      // A free block doubles as a FreeNode; keep blocks a cache-line
      // multiple so consecutive blocks never share a line.
      stride_(roundUp(blockSize < sizeof(FreeNode) ? sizeof(FreeNode)
                                                   : blockSize,
                      kBlockAlign)) {
  assert(stride_ <= kSlabBytes - kBlockAlign && "block larger than a slab");
}

SlabArena::~SlabArena() {
  // Blocks are freed wholesale with their slabs; nodes must already be
  // destroyed (the structures' nodes are trivially destructible, and the
  // limbo lists run their deleters before the arena member is destroyed).
  for (void* slab : slabs_) {
    ::operator delete(slab, std::align_val_t{kSlabBytes});
  }
}

std::size_t SlabArena::threadShard() {
  // Distinct threads land on distinct shards until kFreeShards of them
  // collide; a thread keeps its shard for its lifetime.
  static std::atomic<std::size_t> nextId{0};
  thread_local const std::size_t id =
      nextId.fetch_add(1, std::memory_order_relaxed);
  return id & (kFreeShards - 1);
}

void* SlabArena::allocate() {
  FreeShard& shard = shards_[threadShard()];
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    if (FreeNode* n = shard.head) {
      shard.head = n->next;
      allocated_.fetch_add(1, std::memory_order_relaxed);
      return n;
    }
  }
  void* p = refill(shard);
  allocated_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void* SlabArena::refill(FreeShard& shard) {
  unsigned char* first;
  unsigned char* extraBegin;
  std::size_t extraCount;
  {
    std::lock_guard<std::mutex> lk(slabMu_);
    if (bumpNext_ == bumpEnd_) {
      auto* slab = static_cast<unsigned char*>(
          ::operator new(kSlabBytes, std::align_val_t{kSlabBytes}));
      new (slab) SlabHeader{this};
      slabs_.push_back(slab);
      bumpNext_ = slab + kBlockAlign;  // blocks start at the next line
      bumpEnd_ = slab + ((kSlabBytes - kBlockAlign) / stride_) * stride_ +
                 kBlockAlign;
    }
    const std::size_t avail =
        static_cast<std::size_t>(bumpEnd_ - bumpNext_) / stride_;
    const std::size_t take = avail < kRefillBatch ? avail : kRefillBatch;
    first = bumpNext_;
    extraBegin = bumpNext_ + stride_;
    extraCount = take - 1;
    bumpNext_ += take * stride_;
  }
  if (extraCount > 0) {
    // Chain the surplus blocks and donate them to the caller's shard.
    auto* head = reinterpret_cast<FreeNode*>(extraBegin);
    auto* tail =
        reinterpret_cast<FreeNode*>(extraBegin + (extraCount - 1) * stride_);
    for (std::size_t i = 0; i + 1 < extraCount; ++i) {
      reinterpret_cast<FreeNode*>(extraBegin + i * stride_)->next =
          reinterpret_cast<FreeNode*>(extraBegin + (i + 1) * stride_);
    }
    std::lock_guard<std::mutex> lk(shard.mu);
    tail->next = shard.head;
    shard.head = head;
  }
  return first;
}

void SlabArena::pushFree(void* p) {
  FreeShard& shard = shards_[threadShard()];
  auto* n = static_cast<FreeNode*>(p);
  std::lock_guard<std::mutex> lk(shard.mu);
  n->next = shard.head;
  shard.head = n;
  recycled_.fetch_add(1, std::memory_order_relaxed);
}

void SlabArena::recycle(void* p) {
  auto base = reinterpret_cast<std::uintptr_t>(p) & ~(kSlabBytes - 1);
  auto* header = reinterpret_cast<SlabHeader*>(base);
  header->owner->pushFree(p);
}

std::size_t SlabArena::slabCount() const {
  std::lock_guard<std::mutex> lk(const_cast<std::mutex&>(slabMu_));
  return slabs_.size();
}

}  // namespace sftree::mem
