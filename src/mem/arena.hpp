// Slab arena for tree/list node allocation.
//
// The structures allocate one fixed-size node per insert and retire nodes
// through the quiescence GC (gc/limbo_list.hpp). Routing that traffic
// through the global allocator costs a malloc/free round trip per node,
// scatters hot nodes across the heap (header words between every node), and
// funnels every domain's allocation through one allocator lock. The arena
// replaces it with:
//
//   * slabs: 64 KiB chunks, aligned to their own size, carved into
//     cache-line-aligned blocks of one fixed stride — no per-block header,
//     adjacent allocations are adjacent in memory;
//   * per-thread free-list shards: frees and reuses hash the calling thread
//     onto one of several independently locked free lists, so concurrent
//     allocation/retirement does not serialize on one lock;
//   * GC integration: `SlabArena::recycle(p)` finds the owning arena from
//     the slab header (slab base = pointer rounded down to the slab size),
//     so a limbo-list deleter can return a node to the arena of whatever
//     domain/structure it came from without carrying a context pointer.
//
// Safety against ABA on recycled nodes is inherited from the quiescence
// protocol: a node is only retired into the arena by the limbo list after
// every operation that could still reference it has completed, exactly as
// with the global allocator before. The arena never returns memory to the
// OS while alive; slabs are freed wholesale in the destructor.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace sftree::mem {

class SlabArena {
 public:
  // 64 KiB slabs: big enough that the bump path is rare, small enough that
  // an idle structure wastes little. Must be a power of two — recycle()
  // masks a block pointer down to its slab base.
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 16;
  static constexpr std::size_t kBlockAlign = 64;  // cache line
  static constexpr std::size_t kFreeShards = 8;   // power of two
  // Blocks handed from the bump region to a free shard per refill, so a
  // burst of allocations takes the slab mutex once, not per block.
  static constexpr std::size_t kRefillBatch = 16;

  explicit SlabArena(std::size_t blockSize);
  ~SlabArena();

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // One block, cache-line aligned, uninitialized. Never returns null
  // (allocation failure throws std::bad_alloc).
  void* allocate();

  // Returns a block to the arena that allocated it, found via the slab
  // header — callable from any thread, with or without a reference to the
  // arena (this is what lets a limbo-list deleter be a plain function
  // pointer). The block must have come from a live SlabArena.
  static void recycle(void* p);

  std::size_t blockSize() const { return blockSize_; }
  std::size_t strideBytes() const { return stride_; }

  // Diagnostics (racy snapshots, test use).
  std::size_t slabCount() const;
  std::uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  std::uint64_t recycled() const {
    return recycled_.load(std::memory_order_relaxed);
  }
  // Blocks currently handed out (allocated - recycled).
  std::int64_t liveBlocks() const {
    return static_cast<std::int64_t>(allocated()) -
           static_cast<std::int64_t>(recycled());
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  // At the base of every slab; blocks start at the next cache line.
  struct SlabHeader {
    SlabArena* owner;
  };

  struct alignas(64) FreeShard {
    std::mutex mu;
    FreeNode* head = nullptr;
  };

  void pushFree(void* p);
  // Carves up to kRefillBatch fresh blocks; returns one and pushes the rest
  // onto `shard`.
  void* refill(FreeShard& shard);

  static std::size_t threadShard();

  const std::size_t blockSize_;
  const std::size_t stride_;

  FreeShard shards_[kFreeShards];

  std::mutex slabMu_;  // guards slabs_ and the bump region
  std::vector<void*> slabs_;
  unsigned char* bumpNext_ = nullptr;
  unsigned char* bumpEnd_ = nullptr;

  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> recycled_{0};
};

// Typed convenience wrapper: placement-construction plus a deleter with the
// `void(*)(void*)` signature the limbo list and Tx::onAbortDelete expect.
template <typename T>
class NodeArena {
 public:
  NodeArena() : arena_(sizeof(T)) {}

  template <typename... Args>
  T* create(Args&&... args) {
    return new (arena_.allocate()) T(std::forward<Args>(args)...);
  }

  // Destroys and recycles a node created by any NodeArena<T> — the slab
  // header routes the block back to its owning arena, so this static
  // function is directly usable as a gc::LimboList deleter.
  static void destroy(void* p) {
    static_cast<T*>(p)->~T();
    SlabArena::recycle(p);
  }

  SlabArena& raw() { return arena_; }
  const SlabArena& raw() const { return arena_; }

 private:
  SlabArena arena_;
};

}  // namespace sftree::mem
