#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>

#include "obs/clock.hpp"
#include "stm/stm.hpp"

namespace sftree::ckpt {

namespace fs = std::filesystem;

namespace {

using KV = trees::SFTree::ExtractedKV;

std::string pathForId(const std::string& dir, std::uint64_t id) {
  return dir + "/ckpt-" + std::to_string(id) + ".sfc";
}

// Parse "ckpt-<id>.sfc" -> id.
std::optional<std::uint64_t> idFromName(const std::string& name) {
  const std::string pre = "ckpt-";
  const std::string suf = ".sfc";
  if (name.size() <= pre.size() + suf.size()) return std::nullopt;
  if (name.compare(0, pre.size(), pre) != 0) return std::nullopt;
  if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (std::size_t i = pre.size(); i < name.size() - suf.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return id;
}

// Checkpoint ids present in `dir`, newest first. `maxAnyId` additionally
// tracks temp files, so a writer never reuses the id of a half-written
// file a dead predecessor left behind.
std::vector<std::uint64_t> listIds(const std::string& dir,
                                   std::uint64_t* maxAnyId = nullptr) {
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    std::string name = ent.path().filename().string();
    const bool tmp = name.size() > 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (tmp) name = name.substr(0, name.size() - 4);
    const auto id = idFromName(name);
    if (!id) continue;
    if (maxAnyId != nullptr) *maxAnyId = std::max(*maxAnyId, *id);
    if (!tmp) ids.push_back(*id);
  }
  std::sort(ids.rbegin(), ids.rend());
  return ids;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Open-file cache for cross-file incremental references.
struct FileCache {
  std::string dir;
  std::map<std::uint64_t, FilePtr> open;

  std::FILE* get(std::uint64_t id) {
    auto it = open.find(id);
    if (it != open.end()) return it->second.get();
    FilePtr f(std::fopen(pathForId(dir, id).c_str(), "rb"));
    std::FILE* raw = f.get();
    open.emplace(id, std::move(f));
    return raw;
  }
};

// Read + validate one segment; when `out` is non-null, append the decoded
// pairs. Returns false on any structural or checksum mismatch.
bool readSegment(std::FILE* f, std::uint64_t offset, std::uint32_t expectSlot,
                 std::uint64_t expectCount, std::vector<KV>* out) {
  if (f == nullptr) return false;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) return false;
  unsigned char hdr[kSegmentHeaderBytes];
  if (std::fread(hdr, 1, sizeof hdr, f) != sizeof hdr) return false;
  ByteReader r(hdr, sizeof hdr);
  SegmentHeader sh;
  if (!sh.parse(r)) return false;
  if (sh.slot != expectSlot || sh.count != expectCount) return false;
  std::vector<unsigned char> payload(sh.payloadBytes);
  if (!payload.empty() &&
      std::fread(payload.data(), 1, payload.size(), f) != payload.size()) {
    return false;
  }
  if (crc32(payload.data(), payload.size()) != sh.payloadCrc) return false;
  if (out != nullptr) {
    ByteReader pr(payload.data(), payload.size());
    for (std::uint64_t i = 0; i < sh.count; ++i) {
      KV kv;
      kv.key = pr.getI64();
      kv.value = pr.getI64();
      out->push_back(kv);
    }
    if (!pr.ok) return false;
  }
  return true;
}

// Footer-first manifest load. Rejects torn files (SIGKILL mid-write, bad
// rename timing) without touching segment payloads.
bool loadManifest(const std::string& path, std::uint64_t expectId,
                  Manifest& m) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  if (std::fseek(f.get(), 0, SEEK_END) != 0) return false;
  const long size = std::ftell(f.get());
  if (size < static_cast<long>(kFileHeaderBytes + kFooterBytes)) return false;
  unsigned char fbytes[kFooterBytes];
  if (std::fseek(f.get(), size - static_cast<long>(kFooterBytes), SEEK_SET) !=
      0) {
    return false;
  }
  if (std::fread(fbytes, 1, sizeof fbytes, f.get()) != sizeof fbytes) {
    return false;
  }
  ByteReader fr(fbytes, sizeof fbytes);
  Footer foot;
  if (!foot.parse(fr)) return false;
  if (foot.manifestOffset + foot.manifestLen + kFooterBytes !=
      static_cast<std::uint64_t>(size)) {
    return false;
  }
  std::vector<unsigned char> mbytes(foot.manifestLen);
  if (std::fseek(f.get(), static_cast<long>(foot.manifestOffset), SEEK_SET) !=
      0) {
    return false;
  }
  if (std::fread(mbytes.data(), 1, mbytes.size(), f.get()) != mbytes.size()) {
    return false;
  }
  if (crc32(mbytes.data(), mbytes.size()) != foot.manifestCrc) return false;
  ByteReader mr(mbytes.data(), mbytes.size());
  if (!m.parse(mr)) return false;
  if (m.fileId != expectId) return false;
  // Header sanity (catches a manifest pasted into the wrong file).
  unsigned char hbytes[kFileHeaderBytes];
  if (std::fseek(f.get(), 0, SEEK_SET) != 0) return false;
  if (std::fread(hbytes, 1, sizeof hbytes, f.get()) != sizeof hbytes) {
    return false;
  }
  ByteReader hr(hbytes, sizeof hbytes);
  FileHeader head;
  if (!head.parse(hr)) return false;
  return head.fileId == expectId && head.routingSlots == m.routingSlots;
}

// Deep validation: every referenced segment (across files), payloads
// checksummed; optionally decode them into `slotKvs`.
bool verifyManifestSegments(const std::string& dir, const Manifest& m,
                            std::vector<std::vector<KV>>* slotKvs) {
  FileCache cache{dir, {}};
  if (slotKvs != nullptr) slotKvs->assign(m.routingSlots, {});
  for (const ManifestEntry& e : m.slots) {
    if (e.slot >= m.routingSlots) return false;
    std::vector<KV>* out =
        slotKvs != nullptr ? &(*slotKvs)[e.slot] : nullptr;
    if (!readSegment(cache.get(e.fileId), e.offset, e.slot, e.count, out)) {
      return false;
    }
  }
  return true;
}

std::uint64_t wallNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------------------
CheckpointWriter::CheckpointWriter(shard::ShardedMap& map, CheckpointConfig cfg)
    : map_(map), cfg_(std::move(cfg)) {}

CheckpointResult CheckpointWriter::full() { return write(false); }

CheckpointResult CheckpointWriter::incremental() { return write(true); }

CheckpointResult CheckpointWriter::write(bool allowReuse) {
  CheckpointResult res;
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);

  std::uint64_t maxAnyId = 0;
  const std::vector<std::uint64_t> ids = listIds(cfg_.dir, &maxAnyId);
  if (!parentScanned_) {
    parentScanned_ = true;
    // Adopt the newest fully-valid checkpoint on disk as the incremental
    // parent (deep verify once; later writes trust the manifest they just
    // produced). Torn predecessors are skipped.
    for (const std::uint64_t id : ids) {
      Manifest m;
      if (loadManifest(pathForId(cfg_.dir, id), id, m) &&
          verifyManifestSegments(cfg_.dir, m, nullptr)) {
        parent_ = std::move(m);
        break;
      }
    }
  }

  const auto S = static_cast<std::size_t>(map_.routingSlots());
  const bool reuse = allowReuse && parent_.has_value() &&
                     parent_->routingSlots == static_cast<std::uint32_t>(S);
  std::vector<std::uint64_t> baseline;
  if (reuse) {
    baseline.assign(S, kTickUnknown);
    for (const ManifestEntry& e : parent_->slots) {
      baseline[e.slot] = e.writeTick;
    }
  }

  const std::uint64_t t0 = obs::tick();
  SnapshotCursor cursor(map_, cfg_.snapshot);
  SnapshotResult snap = cursor.capture(baseline);
  res.streamNs = obs::ticksToNs(obs::tick() - t0);
  res.rounds = snap.rounds;
  res.forcedCut = snap.forcedCut;
  if (!snap.ok) {
    res.error = "snapshot capture failed";
    return res;
  }

  const std::uint64_t tw = obs::tick();
  const std::uint64_t id = std::max(maxAnyId, parent_ ? parent_->fileId : 0) + 1;
  const std::string finalPath = pathForId(cfg_.dir, id);
  const std::string tmpPath = finalPath + ".tmp";
  FilePtr f(std::fopen(tmpPath.c_str(), "wb"));
  if (f == nullptr) {
    res.error = "cannot open " + tmpPath;
    return res;
  }

  Manifest m;
  m.fileId = id;
  m.parentId = reuse ? parent_->fileId : 0;
  m.routingSlots = static_cast<std::uint32_t>(S);
  m.shardCount = static_cast<std::uint32_t>(snap.shardCount);
  m.forcedCut = snap.forcedCut ? 1 : 0;
  m.rounds = static_cast<std::uint32_t>(snap.rounds);
  m.cutStamps = snap.cutStamps;
  m.slots.resize(S);

  ByteBuf headBuf;
  FileHeader head;
  head.routingSlots = m.routingSlots;
  head.fileId = id;
  head.parentId = m.parentId;
  head.shardCount = m.shardCount;
  head.createdNs = wallNs();
  head.serialize(headBuf);
  if (std::fwrite(headBuf.data(), 1, headBuf.size(), f.get()) !=
      headBuf.size()) {
    res.error = "short write (header)";
    return res;
  }
  std::uint64_t offset = headBuf.size();
  res.bytesWritten = headBuf.size();

  int freshWritten = 0;
  for (std::size_t s = 0; s < S; ++s) {
    const SlotImage& img = snap.slots[s];
    ManifestEntry& e = m.slots[s];
    e.slot = static_cast<std::uint32_t>(s);
    e.ownerShard = s < snap.slotOwners.size() ? snap.slotOwners[s] : -1;
    e.writeTick = img.writeTick;
    if (!img.fresh) {
      // Certified clean against the parent cut: reference the originating
      // file's segment directly (parent entries are already flattened).
      const ManifestEntry& pe = parent_->slots[s];
      e.fileId = pe.fileId;
      e.offset = pe.offset;
      e.count = pe.count;
      e.writeTick = pe.writeTick;
      ++res.reusedSegments;
      m.keys += pe.count;
      continue;
    }
    ByteBuf seg;
    ByteBuf payload;
    for (const KV& kv : img.kvs) {
      payload.putI64(kv.key);
      payload.putI64(kv.value);
    }
    SegmentHeader sh;
    sh.slot = static_cast<std::uint32_t>(s);
    sh.count = img.kvs.size();
    sh.payloadBytes = payload.size();
    sh.payloadCrc = payload.crc();
    sh.serialize(seg);
    if (std::fwrite(seg.data(), 1, seg.size(), f.get()) != seg.size() ||
        (!payload.bytes.empty() &&
         std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
             payload.size())) {
      res.error = "short write (segment)";
      return res;
    }
    e.fileId = id;
    e.offset = offset;
    e.count = sh.count;
    offset += seg.size() + payload.size();
    res.bytesWritten += seg.size() + payload.size();
    m.keys += sh.count;
    ++res.freshSegments;
    ++freshWritten;
    if (cfg_.killAfterSegments >= 0 && freshWritten >= cfg_.killAfterSegments) {
      // Crash-injection hook: die with the temp file flushed but no footer
      // and no rename — restore must fall back to the previous checkpoint.
      std::fflush(f.get());
      std::raise(SIGKILL);
    }
  }

  ByteBuf manBuf;
  m.serialize(manBuf);
  Footer foot;
  foot.manifestOffset = offset;
  foot.manifestLen = manBuf.size();
  foot.manifestCrc = crc32(manBuf.data(), manBuf.size());
  ByteBuf footBuf;
  foot.serialize(footBuf);
  if (std::fwrite(manBuf.data(), 1, manBuf.size(), f.get()) != manBuf.size() ||
      std::fwrite(footBuf.data(), 1, footBuf.size(), f.get()) !=
          footBuf.size()) {
    res.error = "short write (manifest)";
    return res;
  }
  res.bytesWritten += manBuf.size() + footBuf.size();
  std::fflush(f.get());
  if (cfg_.killBeforeRename) {
    // Complete temp file, never published: restore must ignore it.
    std::raise(SIGKILL);
  }
  f.reset();  // close before rename
  fs::rename(tmpPath, finalPath, ec);
  if (ec) {
    res.error = "rename failed: " + ec.message();
    return res;
  }

  res.ok = true;
  res.fileId = id;
  res.path = finalPath;
  res.keys = m.keys;
  res.segments = m.slots.size();
  res.writeNs = obs::ticksToNs(obs::tick() - tw);
  parent_ = std::move(m);
  ++totalCheckpoints_;
  totalKeys_ += res.keys;
  totalBytes_ += res.bytesWritten;
  totalForcedCuts_ += res.forcedCut ? 1 : 0;
  totalReusedSegments_ += res.reusedSegments;
  return res;
}

obs::MetricsRegistry::Registration CheckpointWriter::registerMetrics(
    obs::MetricsRegistry& reg, std::string prefix) {
  return reg.add(std::move(prefix), [this](obs::MetricSink& out) {
    out.counter("checkpoints", totalCheckpoints_);
    out.counter("keys", totalKeys_);
    out.counter("bytes", totalBytes_);
    out.counter("forced_cuts", totalForcedCuts_);
    out.counter("reused_segments", totalReusedSegments_);
  });
}

// ---------------------------------------------------------------------------
// Restore / verify
// ---------------------------------------------------------------------------
std::optional<std::uint64_t> newestValidCheckpoint(const std::string& dir,
                                                   int* badFiles) {
  if (badFiles != nullptr) *badFiles = 0;
  for (const std::uint64_t id : listIds(dir)) {
    Manifest m;
    if (loadManifest(pathForId(dir, id), id, m) &&
        verifyManifestSegments(dir, m, nullptr)) {
      return id;
    }
    if (badFiles != nullptr) ++*badFiles;
  }
  return std::nullopt;
}

std::unique_ptr<shard::ShardedMap> restore(const std::string& dir,
                                           const RestoreOptions& opt,
                                           RestoreReport& report) {
  report = RestoreReport{};
  const std::uint64_t t0 = obs::tick();

  // Newest fully-valid checkpoint wins; torn/corrupt newer files are the
  // SIGKILL fallback path and just get skipped.
  Manifest m;
  bool found = false;
  for (const std::uint64_t id : listIds(dir)) {
    Manifest cand;
    if (loadManifest(pathForId(dir, id), id, cand)) {
      m = std::move(cand);
      found = true;
      break;
    }
    ++report.skippedFiles;
  }
  if (!found) {
    report.error = "no valid checkpoint in " + dir;
    return nullptr;
  }

  // Decode every referenced segment (cross-file for incrementals), with
  // full checksum validation — a corrupt segment rejects the whole file
  // and we retry older ones.
  std::vector<std::vector<KV>> slotKvs;
  while (!verifyManifestSegments(dir, m, &slotKvs)) {
    ++report.skippedFiles;
    const std::uint64_t bad = m.fileId;
    found = false;
    for (const std::uint64_t id : listIds(dir)) {
      if (id >= bad) continue;
      Manifest cand;
      if (loadManifest(pathForId(dir, id), id, cand)) {
        m = std::move(cand);
        found = true;
        break;
      }
      ++report.skippedFiles;
    }
    if (!found) {
      report.error = "no valid checkpoint in " + dir;
      return nullptr;
    }
  }

  // Rebuild the checkpointed topology: same slot count, same slot->shard
  // layout when the manifest's owners are usable (contiguous fallback).
  const auto S = static_cast<std::size_t>(m.routingSlots);
  const int shards = std::max(1, static_cast<int>(m.shardCount));
  std::vector<int> assign(S, 0);
  bool ownersOk = true;
  for (const ManifestEntry& e : m.slots) {
    if (e.ownerShard < 0 || e.ownerShard >= shards) {
      ownersOk = false;
      break;
    }
    assign[e.slot] = e.ownerShard;
  }
  if (!ownersOk) {
    for (std::size_t s = 0; s < S; ++s) {
      assign[s] = static_cast<int>(s * static_cast<std::size_t>(shards) / S);
    }
  }

  shard::ShardedMapConfig cfg = opt.mapConfig;
  cfg.shards = shards;
  cfg.routingSlots = static_cast<int>(S);
  cfg.initialSlotAssignment = assign;
  // The constructor re-registers every shard with cfg.scheduler.
  auto map = std::make_unique<shard::ShardedMap>(std::move(cfg));

  // Parallel bulk load: shards are independent trees, one loader thread
  // each (capped), adopting in batched transactions through the same path
  // migration uses — size estimates settle exactly.
  std::vector<std::vector<int>> shardSlots(static_cast<std::size_t>(shards));
  for (std::size_t s = 0; s < S; ++s) {
    shardSlots[static_cast<std::size_t>(assign[s])].push_back(
        static_cast<int>(s));
  }
  const std::size_t batchKeys = std::max<std::size_t>(1, opt.batchKeys);
  unsigned p = opt.parallelism > 0
                   ? static_cast<unsigned>(opt.parallelism)
                   : std::max(1u, std::thread::hardware_concurrency());
  p = std::min<unsigned>(p, static_cast<unsigned>(shards));
  std::atomic<int> nextShard{0};
  std::atomic<std::uint64_t> adoptedTotal{0};
  std::atomic<bool> failed{false};
  const auto loader = [&] {
    for (;;) {
      const int i = nextShard.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards || failed.load(std::memory_order_relaxed)) return;
      trees::SFTree& tree = map->shard(i);
      for (const int slot : shardSlots[static_cast<std::size_t>(i)]) {
        const std::vector<KV>& kvl = slotKvs[static_cast<std::size_t>(slot)];
        for (std::size_t off = 0; off < kvl.size(); off += batchKeys) {
          const std::size_t n = std::min(batchKeys, kvl.size() - off);
          const std::size_t adopted = stm::atomically(
              tree.domain(), stm::TxKind::Normal, [&](stm::Tx& tx) {
                return tree.adoptRangeTx(tx, kvl.data() + off, n);
              });
          if (adopted != n) {
            // Duplicate key in the image: certification broke somewhere.
            failed.store(true, std::memory_order_relaxed);
            return;
          }
          adoptedTotal.fetch_add(adopted, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(p);
  for (unsigned i = 0; i < p; ++i) threads.emplace_back(loader);
  for (std::thread& t : threads) t.join();
  if (failed.load() || adoptedTotal.load() != m.keys) {
    report.error = "restore adopted " + std::to_string(adoptedTotal.load()) +
                   " keys, manifest has " + std::to_string(m.keys);
    return nullptr;
  }

  report.ok = true;
  report.fileId = m.fileId;
  report.path = pathForId(dir, m.fileId);
  report.keys = m.keys;
  report.shards = shards;
  report.routingSlots = static_cast<int>(S);
  report.restoreNs = obs::ticksToNs(obs::tick() - t0);
  return map;
}

}  // namespace sftree::ckpt
