#pragma once

// SnapshotCursor: streams a linearizable whole-map image out of a live
// ShardedMap without blocking writers.
//
// The stream is chunked — one bounded ReadOnly transaction per chunk, so
// each chunk is internally consistent but the chunks commit at different
// instants. What makes the assembled image a single linearizable cut is
// the per-slot dirty-tick certification (docs/checkpoint.md):
//
//   round:  sample T1  ->  census drain  ->  stream chunks  ->  sweep Tf
//
// Every committing update bumps its slot's tick inside the transaction
// body (before it can commit, seq_cst). The drain forces any update that
// bumped before T1 to settle before the stream reads; an update that
// bumped after T1 shows up at the sweep as Tf != T1 and invalidates the
// slot. So a slot with Tf == T1 had constant content from the drain to the
// sweep — and since ALL slots (including ones streamed in earlier rounds
// and baseline-clean ones reused from a parent image) are re-checked at
// the same final sweep, all their constancy windows contain that one sweep
// instant: the image equals the map's state at the sweep. Writers never
// block; a hot slot just fails certification and retries.
//
// If optimistic rounds keep failing (pathologically hot slots), the cursor
// forces a cut: one ReadOnly transaction scans the still-dirty slots across
// every tree — its commit point C is the cut for those slots, and a post-C
// sweep re-certifies the others' windows around C. As a last resort the
// whole map is scanned in a single transaction. The forced-cut transaction
// runs behind a brief operation fence (ShardedMap::fencedOpsBegin): new
// operations park at census entry while in-flight ones drain, so the cut
// cannot be starved by sustained write traffic — without the fence a
// whole-map read set under a saturating write workload retries forever.
// Streaming chunks are attempt-bounded for the same reason: a chunk that
// keeps losing the validation race gives up and defers its slots to the
// forced cut rather than spinning.

#include <cstdint>
#include <vector>

#include "shard/sharded_map.hpp"

namespace sftree::ckpt {

struct SnapshotOptions {
  // Keys per streaming chunk transaction. Bounds the read-set each chunk
  // validates, which bounds the window writers can invalidate.
  std::size_t chunkKeys = 512;
  // Tick-certified rounds before falling back to a forced cut. 0 skips the
  // optimistic phase entirely (always force — deterministic cut-point
  // testing).
  int optimisticRounds = 4;
  // Forced-cut iterations before escalating to one whole-map transaction.
  int forcedRounds = 8;
};

struct SlotImage {
  // Certified dirty tick at the cut (kTickUnknown when the forced-cut
  // race window kept it from being pinned — see capture()).
  std::uint64_t writeTick = 0;
  // Streamed by this capture. false = certified clean against the caller's
  // baseline; kvs is empty and the parent image's segment is still valid.
  bool fresh = true;
  std::vector<trees::SFTree::ExtractedKV> kvs;
};

struct SnapshotResult {
  bool ok = false;
  std::vector<SlotImage> slots;  // size == map.routingSlots()
  std::vector<int> slotOwners;   // slot -> shard index (restore topology)
  int shardCount = 0;
  int rounds = 0;         // optimistic rounds consumed
  bool forcedCut = false;
  std::uint64_t keysStreamed = 0;
  // Forced cut only: the cut transaction's per-domain read stamps.
  std::vector<std::uint64_t> cutStamps;
};

class SnapshotCursor {
 public:
  explicit SnapshotCursor(shard::ShardedMap& map, SnapshotOptions opt = {});

  // Capture a consistent image. `baselineTicks` (size routingSlots, from a
  // parent image's manifest) marks slots whose tick still equals the
  // baseline as clean — certified at the same final sweep as the streamed
  // slots, so reusing their parent segments is exact, not approximate.
  // Empty baseline = full capture.
  SnapshotResult capture(
      const std::vector<std::uint64_t>& baselineTicks = {});

 private:
  enum class St : unsigned char { Pending, Staged, Clean, Forced };

  // One tree-anchored multi-chunk walk over the pending slots. Returns the
  // slots it settled (staged into kvs) and removes every slot it touched
  // from `remaining` (deferred slots stay Pending for the next round).
  void walkOne(std::vector<char>& remaining,
               const std::vector<std::uint64_t>& t1,
               std::vector<St>& st,
               std::vector<std::uint64_t>& tickAt,
               std::vector<std::vector<trees::SFTree::ExtractedKV>>& kvs,
               std::uint64_t& keysStreamed);

  shard::ShardedMap& map_;
  SnapshotOptions opt_;
};

}  // namespace sftree::ckpt
