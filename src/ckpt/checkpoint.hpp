#pragma once

// CheckpointWriter / restore: durable incremental checkpoints of a live
// ShardedMap, and the warm-restart path that rebuilds one from disk.
// Format in format.hpp; cut semantics in snapshot_cursor.hpp; the whole
// story in docs/checkpoint.md.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/snapshot_cursor.hpp"
#include "obs/metrics.hpp"
#include "shard/sharded_map.hpp"

namespace sftree::ckpt {

struct CheckpointConfig {
  // Directory checkpoints live in (created if missing). Files are named
  // ckpt-<id>.sfc with monotonically increasing ids; incremental manifests
  // reference clean segments in earlier files, so earlier files referenced
  // by the newest manifest must not be deleted.
  std::string dir;
  SnapshotOptions snapshot{};
  // Crash-injection hooks for the crash-and-restore CI tier: SIGKILL the
  // process after N fresh segments hit the (flushed) temp file, or right
  // before the rename that publishes it. Both must leave the directory
  // restorable from the previous complete checkpoint.
  int killAfterSegments = -1;
  bool killBeforeRename = false;
};

struct CheckpointResult {
  bool ok = false;
  std::uint64_t fileId = 0;
  std::string path;
  std::uint64_t keys = 0;       // keys in the full logical image
  std::uint64_t segments = 0;   // manifest rows (== routing slots)
  std::uint64_t freshSegments = 0;
  std::uint64_t reusedSegments = 0;
  std::uint64_t bytesWritten = 0;  // bytes physically written to this file
  int rounds = 0;
  bool forcedCut = false;
  std::uint64_t streamNs = 0;  // capture (snapshot stream) wall time
  std::uint64_t writeNs = 0;   // serialize+write+rename wall time
  std::string error;
};

class CheckpointWriter {
 public:
  CheckpointWriter(shard::ShardedMap& map, CheckpointConfig cfg);

  // Full image: every slot streamed fresh.
  CheckpointResult full();
  // Incremental: slots whose dirty tick still matches the newest valid
  // manifest reuse that manifest's segments; falls back to a full image
  // when no valid parent exists (or topology changed).
  CheckpointResult incremental();

  // Counters for dashboards: checkpoints taken, keys/bytes written,
  // forced cuts, reused segments.
  obs::MetricsRegistry::Registration registerMetrics(
      obs::MetricsRegistry& reg, std::string prefix);

 private:
  CheckpointResult write(bool allowReuse);

  shard::ShardedMap& map_;
  CheckpointConfig cfg_;
  // Newest complete manifest on disk, loaded lazily; the incremental
  // baseline and parent reference.
  std::optional<Manifest> parent_;
  bool parentScanned_ = false;
  // Lifetime totals for registerMetrics.
  std::uint64_t totalCheckpoints_ = 0;
  std::uint64_t totalKeys_ = 0;
  std::uint64_t totalBytes_ = 0;
  std::uint64_t totalForcedCuts_ = 0;
  std::uint64_t totalReusedSegments_ = 0;
};

struct RestoreOptions {
  // Template for the rebuilt map: scheduler, tree config, domain mode,
  // name, stm config are honored; shards / routingSlots /
  // initialSlotAssignment are overwritten from the manifest.
  shard::ShardedMapConfig mapConfig{};
  int parallelism = 0;        // shard-loader threads; 0 = hardware
  std::size_t batchKeys = 512;  // keys per adopt transaction
};

struct RestoreReport {
  bool ok = false;
  std::uint64_t fileId = 0;
  std::string path;
  std::uint64_t keys = 0;
  int shards = 0;
  int routingSlots = 0;
  // Newer files present but rejected (torn/corrupt) before a valid one
  // was found — the SIGKILL fallback count.
  int skippedFiles = 0;
  std::uint64_t restoreNs = 0;
  std::string error;
};

// Rebuild a ShardedMap from the newest fully-valid checkpoint in `dir`
// (torn or corrupt files are skipped with a fallback to the previous
// complete one). Shards are bulk-loaded in parallel through adoptRangeTx;
// the returned map is re-registered with the scheduler in
// opt.mapConfig.scheduler (metrics registration stays with the caller).
// Returns nullptr (report.ok == false) when no valid checkpoint exists.
std::unique_ptr<shard::ShardedMap> restore(const std::string& dir,
                                           const RestoreOptions& opt,
                                           RestoreReport& report);

// Validate every checkpoint file in `dir` newest-first: footer, manifest
// checksum, and every referenced segment's payload checksum (across files
// for incremental references). Returns the id of the newest fully-valid
// checkpoint, or nullopt. `badFiles`, if given, counts rejected files.
std::optional<std::uint64_t> newestValidCheckpoint(const std::string& dir,
                                                   int* badFiles = nullptr);

}  // namespace sftree::ckpt
