#include "ckpt/snapshot_cursor.hpp"

#include <algorithm>
#include <limits>

#include "ckpt/format.hpp"
#include "stm/stm.hpp"

namespace sftree::ckpt {

namespace {
using KV = trees::SFTree::ExtractedKV;

// Body attempts a streaming chunk gets before giving up (see walkOne).
constexpr int kMaxChunkAttempts = 64;

// RAII operation fence around the forced-cut transaction.
struct OpFence {
  explicit OpFence(shard::ShardedMap& m) : map(m) { map.fencedOpsBegin(); }
  ~OpFence() { map.fencedOpsEnd(); }
  OpFence(const OpFence&) = delete;
  OpFence& operator=(const OpFence&) = delete;
  shard::ShardedMap& map;
};
}  // namespace

SnapshotCursor::SnapshotCursor(shard::ShardedMap& map, SnapshotOptions opt)
    : map_(map), opt_(opt) {
  if (opt_.chunkKeys < 1) opt_.chunkKeys = 1;
  if (opt_.optimisticRounds < 0) opt_.optimisticRounds = 0;
  if (opt_.forcedRounds < 1) opt_.forcedRounds = 1;
}

void SnapshotCursor::walkOne(std::vector<char>& remaining,
                             const std::vector<std::uint64_t>& t1,
                             std::vector<St>& st,
                             std::vector<std::uint64_t>& tickAt,
                             std::vector<std::vector<KV>>& kvs,
                             std::uint64_t& keysStreamed) {
  const std::size_t S = remaining.size();
  int anchor = -1;
  for (std::size_t s = 0; s < S; ++s) {
    if (remaining[s]) {
      anchor = static_cast<int>(s);
      break;
    }
  }
  if (anchor < 0) return;

  // Targets are fixed at the first chunk: the slots the anchor's tree owns
  // outright, intersected with this round's remaining set. A completed
  // walk of one tree covers exactly its settled-owned slots (migrating
  // slots straddle two trees and are deferred; their migration batches
  // bump the dirty ticks, so deferral can't silently lose a key).
  const void* treeId = nullptr;
  std::vector<char> targetMask(S, 0);
  std::vector<int> targets;
  std::vector<std::vector<KV>> bufs(S);
  std::vector<KV> chunk;
  shard::ShardedMap::SnapshotChunk info;
  Key lo = std::numeric_limits<Key>::min();

  const auto abandon = [&](bool firstChunk) {
    // The anchor re-routed (or is migrating): a continued walk on the new
    // owner would never visit the old tree's tail, so partial buffers are
    // unusable. Drop the touched slots from this round; they stay Pending
    // and the next round (or the forced cut) re-walks them.
    if (firstChunk) {
      remaining[static_cast<std::size_t>(anchor)] = 0;
    } else {
      for (const int t : targets) remaining[static_cast<std::size_t>(t)] = 0;
    }
  };

  for (;;) {
    const std::vector<char>& predMask = (treeId == nullptr) ? remaining
                                                            : targetMask;
    const std::function<bool(Key)> pred = [&](Key k) {
      return predMask[map_.slotOfKey(k)] != 0;
    };
    // A chunk that keeps losing the validation race against writers must
    // not spin forever: after a bounded number of body attempts it commits
    // an empty body (trivial read set, always succeeds) and the walk is
    // abandoned — the slots stay Pending and the forced cut, which runs
    // behind an operation fence, finishes them. Without this bound a
    // sustained write workload can livelock a chunk while its restarting
    // body pins a GC epoch and node garbage piles up.
    int attempts = 0;
    bool gaveUp = false;
    stm::atomically(map_.snapshotRootDomain(), stm::TxKind::ReadOnly,
                    [&](stm::Tx& tx) {
                      if (++attempts > kMaxChunkAttempts) {
                        gaveUp = true;
                        return;
                      }
                      gaveUp = false;
                      map_.snapshotChunkTx(tx, anchor, lo, opt_.chunkKeys,
                                           pred, chunk, info);
                    });
    if (gaveUp || info.migrating) {
      abandon(treeId == nullptr);
      return;
    }
    if (treeId == nullptr) {
      treeId = info.treeId;
      for (const int s : info.ownedSettledSlots) {
        if (remaining[static_cast<std::size_t>(s)]) {
          targetMask[static_cast<std::size_t>(s)] = 1;
          targets.push_back(s);
        }
      }
      if (!targetMask[static_cast<std::size_t>(anchor)]) {
        // Anchor owned by this tree but not remaining: impossible (anchor
        // came from remaining and is settled here) — defensive.
        abandon(true);
        return;
      }
    } else if (info.treeId != treeId) {
      abandon(false);
      return;
    }
    for (const KV& kv : chunk) {
      const std::size_t s = map_.slotOfKey(kv.key);
      if (targetMask[s]) bufs[s].push_back(kv);
    }
    if (info.treeComplete) break;
    lo = info.nextLo;
  }

  for (const int t : targets) {
    const auto s = static_cast<std::size_t>(t);
    keysStreamed += bufs[s].size();
    kvs[s] = std::move(bufs[s]);
    st[s] = St::Staged;
    tickAt[s] = t1[s];
    remaining[s] = 0;
  }
}

SnapshotResult SnapshotCursor::capture(
    const std::vector<std::uint64_t>& baselineTicks) {
  const auto S = static_cast<std::size_t>(map_.routingSlots());
  const bool haveBaseline = baselineTicks.size() == S;

  std::vector<St> st(S, St::Pending);
  std::vector<std::uint64_t> tickAt(S, 0);
  std::vector<std::vector<KV>> kvs(S);
  SnapshotResult res;

  if (haveBaseline) {
    const auto now = map_.slotWriteTicks();
    for (std::size_t s = 0; s < S; ++s) {
      // kTickUnknown never matches a live tick: forced-cut slots whose
      // exact cut tick could not be pinned are always re-streamed.
      if (now[s] == baselineTicks[s]) {
        st[s] = St::Clean;
        tickAt[s] = baselineTicks[s];
      }
    }
  }

  // --- optimistic tick-certified rounds ---------------------------------
  bool done = false;
  for (int round = 0; round < opt_.optimisticRounds && !done; ++round) {
    ++res.rounds;
    const auto t1 = map_.slotWriteTicks();
    // Certification barrier: updates that bumped before the t1 sample have
    // settled once this returns — their commits are visible to the chunk
    // reads below, closing the bump-sampled-but-commit-missed race.
    map_.quiesceOps();

    std::vector<char> remaining(S, 0);
    bool any = false;
    for (std::size_t s = 0; s < S; ++s) {
      if (st[s] == St::Pending) {
        remaining[s] = 1;
        any = true;
      }
    }
    while (any) {
      walkOne(remaining, t1, st, tickAt, kvs, res.keysStreamed);
      any = std::any_of(remaining.begin(), remaining.end(),
                        [](char c) { return c != 0; });
    }

    // Final joint sweep: one sample instant every certified window must
    // contain. Staged slots re-check against the tick they streamed at —
    // including slots staged in EARLIER rounds, whose windows simply grow
    // to this sweep. Clean slots re-check against the parent baseline.
    const auto tf = map_.slotWriteTicks();
    done = true;
    for (std::size_t s = 0; s < S; ++s) {
      switch (st[s]) {
        case St::Pending:
          done = false;
          break;
        case St::Staged:
          if (tf[s] != tickAt[s]) {
            st[s] = St::Pending;
            kvs[s].clear();
            done = false;
          }
          break;
        case St::Clean:
          if (tf[s] != tickAt[s]) {
            st[s] = St::Pending;
            done = false;
          }
          break;
        case St::Forced:
          break;  // not reachable in the optimistic phase
      }
    }
    // Hot-map heuristic: when the sweep invalidates most of the map the
    // workload is writing everywhere faster than we can stream — further
    // optimistic rounds would re-stream everything just to fail the same
    // way. Go force the cut instead of burning rounds.
    if (!done) {
      const auto pending = static_cast<std::size_t>(
          std::count(st.begin(), st.end(), St::Pending));
      if (pending * 2 > S) break;
    }
  }

  // --- forced cut -------------------------------------------------------
  if (!done) {
    res.forcedCut = true;
    std::vector<char> staleMask(S, 0);
    for (std::size_t s = 0; s < S; ++s) {
      if (st[s] == St::Pending) staleMask[s] = 1;
    }
    for (int f = 0; f < opt_.forcedRounds && !done; ++f) {
      const bool escalate = (f == opt_.forcedRounds - 1);
      if (escalate) {
        // Last resort: one transaction over the whole map. Its commit IS
        // the cut for every slot; nothing is left to certify.
        std::fill(staleMask.begin(), staleMask.end(), 1);
      }
      const std::function<bool(Key)> pred = [&](Key k) {
        return staleMask[map_.slotOfKey(k)] != 0;
      };
      std::vector<KV> all;
      std::vector<std::uint64_t> stamps;
      std::vector<std::uint64_t> tPre, tPost;
      {
        // The forced cut is the one place writers feel the checkpoint: the
        // fence parks newly arriving operations and drains in-flight ones,
        // so the cut transaction runs against a near-quiescent map and
        // finishes in a bounded number of attempts. Without it, a
        // whole-map read set under sustained write traffic can starve
        // indefinitely. The pause lasts one scan of the stale slots.
        OpFence fence(map_);
        tPre = map_.slotWriteTicks();
        stm::atomically(map_.snapshotRootDomain(), stm::TxKind::ReadOnly,
                        [&](stm::Tx& tx) {
                          map_.snapshotAllTx(tx, pred, all);
                          stamps.clear();
                          for (const auto& sst : tx.snapshotStamps()) {
                            stamps.push_back(sst.rv);
                          }
                        });
        tPost = map_.slotWriteTicks();
      }
      for (std::size_t s = 0; s < S; ++s) {
        if (!staleMask[s]) continue;
        kvs[s].clear();
        st[s] = St::Forced;
        // Pin the slot's manifest tick only if no writer moved it across
        // the cut transaction — otherwise the tick at the commit point is
        // ambiguous and kTickUnknown keeps future incrementals honest.
        tickAt[s] = (tPre[s] == tPost[s]) ? tPre[s] : kTickUnknown;
      }
      for (const KV& kv : all) {
        const std::size_t s = map_.slotOfKey(kv.key);
        if (staleMask[s]) kvs[s].push_back(kv);
      }
      res.cutStamps = std::move(stamps);
      if (escalate) {
        done = true;
        break;
      }
      // Post-cut sweep: the cut transaction's commit point C lies inside
      // [stream-read, here] for every staged slot whose tick is still what
      // it streamed at, and inside the parent-certified window for clean
      // slots. A slot that moved joins the stale set and the whole set is
      // re-scanned at a new C.
      done = true;
      for (std::size_t s = 0; s < S; ++s) {
        if ((st[s] == St::Staged || st[s] == St::Clean) &&
            tPost[s] != tickAt[s]) {
          st[s] = St::Pending;
          kvs[s].clear();
          staleMask[s] = 1;
          done = false;
        }
      }
      if (!done) {
        // Re-mark the pending slots as stale for the next forced pass.
        for (std::size_t s = 0; s < S; ++s) {
          if (st[s] == St::Pending) staleMask[s] = 1;
        }
      }
    }
    for (std::size_t s = 0; s < S; ++s) {
      if (st[s] == St::Forced) res.keysStreamed += kvs[s].size();
    }
  }

  // --- assemble ---------------------------------------------------------
  res.ok = done;
  if (!res.ok) return res;
  res.slots.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    res.slots[s].writeTick = tickAt[s];
    res.slots[s].fresh = st[s] != St::Clean;
    res.slots[s].kvs = std::move(kvs[s]);
  }
  res.slotOwners = map_.slotOwners();
  res.shardCount = map_.shardCount();
  return res;
}

}  // namespace sftree::ckpt
