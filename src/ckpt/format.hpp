#pragma once

// On-disk checkpoint format (docs/checkpoint.md is the normative spec).
//
// A checkpoint file `ckpt-<id>.sfc` is written to `<id>.sfc.tmp` and
// renamed into place only after the footer landed, so a SIGKILL at any
// instant leaves either a complete file or an ignorable temp/truncated one:
//
//   FileHeader | Segment* | Manifest | Footer
//
// Every variable-size region carries its own CRC32 and the fixed-size
// Footer (validated first, from the end of the file) locates the Manifest,
// which in turn locates every Segment — including segments in *earlier*
// files: an incremental checkpoint re-emits only dirty slots and its
// manifest references the clean slots' segments in the originating files
// directly (flattened — restore never chases a parent chain).
//
// Integers are fixed-width native-endian (this is a warm-restart format
// for the machine that wrote it, not an interchange format).

#include <cstdint>
#include <cstring>
#include <vector>

namespace sftree::ckpt {

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// ---------------------------------------------------------------------------
inline const std::uint32_t* crc32Table() {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const std::uint32_t* table = crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Byte serialization helpers
// ---------------------------------------------------------------------------
struct ByteBuf {
  std::vector<unsigned char> bytes;

  void putU32(std::uint32_t v) { putRaw(&v, sizeof v); }
  void putU64(std::uint64_t v) { putRaw(&v, sizeof v); }
  void putI64(std::int64_t v) { putRaw(&v, sizeof v); }
  void putRaw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    bytes.insert(bytes.end(), b, b + n);
  }
  std::size_t size() const { return bytes.size(); }
  const unsigned char* data() const { return bytes.data(); }
  std::uint32_t crc() const { return crc32(bytes.data(), bytes.size()); }
};

// Bounds-checked reader: any out-of-range get flips `ok` and returns 0, so
// a torn or corrupt region parses to a rejected file instead of UB.
struct ByteReader {
  const unsigned char* p = nullptr;
  std::size_t n = 0;
  std::size_t off = 0;
  bool ok = true;

  ByteReader(const void* data, std::size_t len)
      : p(static_cast<const unsigned char*>(data)), n(len) {}

  std::uint32_t getU32() { return get<std::uint32_t>(); }
  std::uint64_t getU64() { return get<std::uint64_t>(); }
  std::int64_t getI64() { return get<std::int64_t>(); }

  template <class T>
  T get() {
    T v{};
    if (!ok || n - off < sizeof(T)) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p + off, sizeof(T));
    off += sizeof(T);
    return v;
  }
};

// ---------------------------------------------------------------------------
// Layout constants
// ---------------------------------------------------------------------------
// Region magics ("SFTCKPT1" etc. as little-endian u64 of the ASCII bytes).
constexpr std::uint64_t kFileMagic = 0x3154504B43544653ULL;      // "SFTCKPT1"
constexpr std::uint64_t kSegmentMagic = 0x3130474553434653ULL;   // "SFCSEG01"
constexpr std::uint64_t kManifestMagic = 0x31304E414D434653ULL;  // "SFCMAN01"
constexpr std::uint64_t kFooterMagic = 0x31304F4F46434653ULL;    // "SFCFOO01"
constexpr std::uint32_t kFormatVersion = 1;

// Per-KV payload cell: i64 key, i64 value.
constexpr std::size_t kKvBytes = 16;

// Serialized sizes (must match the write/read code below exactly).
constexpr std::size_t kFileHeaderBytes = 8 + 4 + 4 + 8 + 8 + 4 + 4 + 8 + 4;
constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 4 + 8 + 8 + 4;
constexpr std::size_t kFooterBytes = 8 + 8 + 8 + 4 + 4;

// A slot whose cut-time write tick could not be pinned exactly (forced-cut
// race window) gets this sentinel in the manifest: no live tick ever
// reaches it, so future incremental captures always treat the slot dirty.
constexpr std::uint64_t kTickUnknown = ~0ULL;

// ---------------------------------------------------------------------------
// Parsed structures
// ---------------------------------------------------------------------------
struct FileHeader {
  std::uint32_t version = kFormatVersion;
  std::uint32_t routingSlots = 0;
  std::uint64_t fileId = 0;
  std::uint64_t parentId = 0;  // 0 = full image
  std::uint32_t shardCount = 0;
  std::uint64_t createdNs = 0;

  void serialize(ByteBuf& b) const {
    b.putU64(kFileMagic);
    b.putU32(version);
    b.putU32(routingSlots);
    b.putU64(fileId);
    b.putU64(parentId);
    b.putU32(shardCount);
    b.putU32(0);  // reserved
    b.putU64(createdNs);
    b.putU32(b.crc());
  }
  bool parse(ByteReader& r) {
    const std::size_t start = r.off;
    if (r.getU64() != kFileMagic) return false;
    version = r.getU32();
    routingSlots = r.getU32();
    fileId = r.getU64();
    parentId = r.getU64();
    shardCount = r.getU32();
    (void)r.getU32();
    createdNs = r.getU64();
    const std::uint32_t want = crc32(r.p + start, r.off - start);
    return r.ok && r.getU32() == want && version == kFormatVersion;
  }
};

struct SegmentHeader {
  std::uint32_t slot = 0;
  std::uint64_t count = 0;
  std::uint64_t payloadBytes = 0;
  std::uint32_t payloadCrc = 0;

  void serialize(ByteBuf& b) const {
    b.putU64(kSegmentMagic);
    b.putU32(slot);
    b.putU32(0);  // reserved
    b.putU64(count);
    b.putU64(payloadBytes);
    b.putU32(payloadCrc);
  }
  bool parse(ByteReader& r) {
    if (r.getU64() != kSegmentMagic) return false;
    slot = r.getU32();
    (void)r.getU32();
    count = r.getU64();
    payloadBytes = r.getU64();
    payloadCrc = r.getU32();
    return r.ok && payloadBytes == count * kKvBytes;
  }
};

// One manifest row per routing slot. `fileId`/`offset` locate the slot's
// segment header in its ORIGINATING checkpoint file (flattened incremental
// references). `writeTick` is the slot's certified dirty tick at the cut —
// the baseline the next incremental capture compares against.
struct ManifestEntry {
  std::uint32_t slot = 0;
  std::int32_t ownerShard = 0;
  std::uint64_t fileId = 0;
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
  std::uint64_t writeTick = 0;
};

struct Manifest {
  std::uint64_t fileId = 0;
  std::uint64_t parentId = 0;
  std::uint32_t routingSlots = 0;
  std::uint32_t shardCount = 0;
  std::uint64_t keys = 0;
  std::uint32_t forcedCut = 0;
  std::uint32_t rounds = 0;
  std::vector<ManifestEntry> slots;
  // Forced-cut provenance: the cut transaction's per-domain read stamps
  // (Tx::snapshotStamps). Empty for an optimistic (tick-certified) cut.
  std::vector<std::uint64_t> cutStamps;

  void serialize(ByteBuf& b) const {
    b.putU64(kManifestMagic);
    b.putU64(fileId);
    b.putU64(parentId);
    b.putU32(routingSlots);
    b.putU32(shardCount);
    b.putU64(keys);
    b.putU32(forcedCut);
    b.putU32(rounds);
    b.putU32(static_cast<std::uint32_t>(slots.size()));
    b.putU32(static_cast<std::uint32_t>(cutStamps.size()));
    for (const ManifestEntry& e : slots) {
      b.putU32(e.slot);
      b.putU32(static_cast<std::uint32_t>(e.ownerShard));
      b.putU64(e.fileId);
      b.putU64(e.offset);
      b.putU64(e.count);
      b.putU64(e.writeTick);
    }
    for (const std::uint64_t s : cutStamps) b.putU64(s);
    b.putU32(b.crc());
  }
  bool parse(ByteReader& r) {
    const std::size_t start = r.off;
    if (r.getU64() != kManifestMagic) return false;
    fileId = r.getU64();
    parentId = r.getU64();
    routingSlots = r.getU32();
    shardCount = r.getU32();
    keys = r.getU64();
    forcedCut = r.getU32();
    rounds = r.getU32();
    const std::uint32_t nSlots = r.getU32();
    const std::uint32_t nStamps = r.getU32();
    if (!r.ok || nSlots != routingSlots) return false;
    slots.resize(nSlots);
    for (ManifestEntry& e : slots) {
      e.slot = r.getU32();
      e.ownerShard = static_cast<std::int32_t>(r.getU32());
      e.fileId = r.getU64();
      e.offset = r.getU64();
      e.count = r.getU64();
      e.writeTick = r.getU64();
    }
    cutStamps.resize(nStamps);
    for (std::uint64_t& s : cutStamps) s = r.getU64();
    if (!r.ok) return false;
    const std::uint32_t want = crc32(r.p + start, r.off - start);
    return r.getU32() == want;
  }
};

struct Footer {
  std::uint64_t manifestOffset = 0;
  std::uint64_t manifestLen = 0;
  std::uint32_t manifestCrc = 0;

  void serialize(ByteBuf& b) const {
    b.putU64(kFooterMagic);
    b.putU64(manifestOffset);
    b.putU64(manifestLen);
    b.putU32(manifestCrc);
    b.putU32(b.crc());
  }
  bool parse(ByteReader& r) {
    const std::size_t start = r.off;
    if (r.getU64() != kFooterMagic) return false;
    manifestOffset = r.getU64();
    manifestLen = r.getU64();
    manifestCrc = r.getU32();
    const std::uint32_t want = crc32(r.p + start, r.off - start);
    return r.ok && r.getU32() == want;
  }
};

}  // namespace sftree::ckpt
