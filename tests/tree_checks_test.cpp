// Self-tests for the invariant checkers: a checker that cannot detect a
// violation proves nothing, so we build deliberately broken trees and
// expect each check to fire.
#include <gtest/gtest.h>

#include "trees/tree_checks.hpp"

namespace trees = sftree::trees;
using sftree::Key;

namespace {

// --- SF tree -----------------------------------------------------------------

TEST(TreeChecksSelfTest, SFDetectsBstViolation) {
  trees::SFTreeConfig cfg;
  cfg.startMaintenance = false;
  trees::SFTree tree(cfg);
  tree.insert(10, 1);
  tree.insert(5, 1);
  // Corrupt: hang a too-large key under the left child.
  auto* root = tree.rootForTest();
  auto* n10 = root->left.loadRelaxed();
  auto* n5 = n10->left.loadRelaxed();
  auto* evil = new trees::SFNode(999, 0);
  n5->left.storeRelaxed(evil);
  const auto r = trees::checkSFTree(tree);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("BST violation"), std::string::npos);
  n5->left.storeRelaxed(nullptr);  // undo so the destructor walk is clean
  delete evil;
}

TEST(TreeChecksSelfTest, SFDetectsReachableRemovedNode) {
  trees::SFTreeConfig cfg;
  cfg.startMaintenance = false;
  trees::SFTree tree(cfg);
  tree.insert(10, 1);
  auto* n10 = tree.rootForTest()->left.loadRelaxed();
  n10->removed.storeRelaxed(trees::RemState::Removed);
  EXPECT_FALSE(trees::checkSFTree(tree).ok);
  n10->removed.storeRelaxed(trees::RemState::NotRemoved);
  EXPECT_TRUE(trees::checkSFTree(tree).ok);
}

// --- red-black ----------------------------------------------------------------

TEST(TreeChecksSelfTest, RBDetectsRedRedViolation) {
  trees::RBTree tree;
  for (Key k : {20, 10, 30}) tree.insert(k, k);
  ASSERT_TRUE(trees::checkRBTree(tree).ok);
  // Force a red node to have a red child.
  auto* root = tree.rootForTest();
  root->color.storeRelaxed(trees::RBColor::Black);
  auto* l = root->left.loadRelaxed();
  ASSERT_NE(l, nullptr);
  l->color.storeRelaxed(trees::RBColor::Red);
  auto* evil = new trees::RBNode(5, 0);  // fresh nodes are red
  evil->parent.storeRelaxed(l);
  l->left.storeRelaxed(evil);
  const auto r = trees::checkRBTree(tree);
  EXPECT_FALSE(r.ok);
  l->left.storeRelaxed(nullptr);
  delete evil;
}

TEST(TreeChecksSelfTest, RBDetectsBlackHeightMismatch) {
  trees::RBTree tree;
  for (Key k : {20, 10, 30}) tree.insert(k, k);
  // Make one side artificially black-deeper.
  auto* root = tree.rootForTest();
  auto* l = root->left.loadRelaxed();
  auto* evil = new trees::RBNode(5, 0);
  evil->color.storeRelaxed(trees::RBColor::Black);
  evil->parent.storeRelaxed(l);
  l->left.storeRelaxed(evil);
  const auto r = trees::checkRBTree(tree);
  EXPECT_FALSE(r.ok);
  l->left.storeRelaxed(nullptr);
  delete evil;
}

TEST(TreeChecksSelfTest, RBDetectsParentPointerCorruption) {
  trees::RBTree tree;
  for (Key k : {20, 10, 30}) tree.insert(k, k);
  auto* root = tree.rootForTest();
  auto* l = root->left.loadRelaxed();
  l->parent.storeRelaxed(l);  // self-parent
  EXPECT_FALSE(trees::checkRBTree(tree).ok);
  l->parent.storeRelaxed(root);
  EXPECT_TRUE(trees::checkRBTree(tree).ok);
}

TEST(TreeChecksSelfTest, RBDetectsRedRoot) {
  trees::RBTree tree;
  tree.insert(1, 1);
  tree.rootForTest()->color.storeRelaxed(trees::RBColor::Red);
  EXPECT_FALSE(trees::checkRBTree(tree).ok);
  tree.rootForTest()->color.storeRelaxed(trees::RBColor::Black);
}

// --- AVL -----------------------------------------------------------------------

TEST(TreeChecksSelfTest, AVLDetectsWrongStoredHeight) {
  trees::AVLTree tree;
  for (Key k : {20, 10, 30}) tree.insert(k, k);
  ASSERT_TRUE(trees::checkAVLTree(tree).ok);
  tree.rootForTest()->height.storeRelaxed(99);
  const auto r = trees::checkAVLTree(tree);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("stored height"), std::string::npos);
  tree.rootForTest()->height.storeRelaxed(2);
}

TEST(TreeChecksSelfTest, AVLDetectsImbalance) {
  trees::AVLTree tree;
  for (Key k : {20, 10, 30}) tree.insert(k, k);
  // Graft a deep chain under the left child without rebalancing.
  auto* root = tree.rootForTest();
  auto* l = root->left.loadRelaxed();
  auto* a = new trees::AVLNode(5, 0);
  auto* b = new trees::AVLNode(3, 0);
  a->left.storeRelaxed(b);
  a->height.storeRelaxed(2);
  l->left.storeRelaxed(a);
  l->height.storeRelaxed(3);
  root->height.storeRelaxed(4);
  const auto r = trees::checkAVLTree(tree);
  EXPECT_FALSE(r.ok);
  l->left.storeRelaxed(nullptr);
  delete b;
  delete a;
}

TEST(TreeChecksSelfTest, ValidTreesPassAllChecks) {
  trees::SFTreeConfig cfg;
  cfg.startMaintenance = false;
  trees::SFTree sf(cfg);
  trees::RBTree rb;
  trees::AVLTree avl;
  for (Key k : {8, 4, 12, 2, 6, 10, 14}) {
    sf.insert(k, k);
    rb.insert(k, k);
    avl.insert(k, k);
  }
  sf.quiesceNow();
  EXPECT_TRUE(trees::checkSFTree(sf).ok);
  EXPECT_TRUE(trees::checkRBTree(rb).ok);
  EXPECT_TRUE(trees::checkAVLTree(avl).ok);
}

}  // namespace
