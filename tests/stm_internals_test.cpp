// Unit tests for the STM's internal building blocks: orec encoding, the
// global clock, the word codec, commit/abort hooks, the operation-bracket
// statistics, and failure injection across retries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stm/stm.hpp"

namespace stm = sftree::stm;

namespace {

// --- orec encoding -----------------------------------------------------------

TEST(OrecEncodingTest, VersionRoundTrips) {
  for (std::uint64_t ts : {0ull, 1ull, 42ull, (1ull << 40), (1ull << 62)}) {
    const auto w = stm::orec::makeVersion(ts);
    EXPECT_FALSE(stm::orec::isLocked(w));
    EXPECT_EQ(stm::orec::version(w), ts);
  }
}

TEST(OrecEncodingTest, LockedEncodesOwner) {
  alignas(8) int dummy;
  const auto* owner = reinterpret_cast<stm::Tx*>(&dummy);
  const auto w = stm::orec::makeLocked(owner);
  EXPECT_TRUE(stm::orec::isLocked(w));
  EXPECT_EQ(stm::orec::owner(w), owner);
}

TEST(OrecEncodingTest, VersionZeroIsUnlocked) {
  EXPECT_FALSE(stm::orec::isLocked(0));
  EXPECT_EQ(stm::orec::version(0), 0u);
}

TEST(OrecTableTest, SameAddressSameOrec) {
  stm::OrecTable table;
  int x;
  EXPECT_EQ(table.forAddress(&x), table.forAddress(&x));
}

TEST(OrecTableTest, AdjacentWordsSpreadAcrossStripes) {
  stm::OrecTable table;
  // With a Fibonacci mix, consecutive words should rarely collide.
  std::int64_t words[64];
  int collisions = 0;
  for (int i = 1; i < 64; ++i) {
    if (table.forAddress(&words[i]) == table.forAddress(&words[i - 1])) {
      ++collisions;
    }
  }
  EXPECT_LE(collisions, 2);
}

TEST(OrecTableTest, MaskRestrictsRange) {
  stm::OrecTable table;
  table.setMaskForTest(3);
  // All addresses must map into the first 4 slots: with only 4 possible
  // targets, 16 distinct addresses must produce at most 4 distinct orecs.
  std::int64_t words[16];
  std::vector<std::atomic<stm::OrecWord>*> seen;
  for (auto& w : words) {
    auto* o = table.forAddress(&w);
    if (std::find(seen.begin(), seen.end(), o) == seen.end()) {
      seen.push_back(o);
    }
  }
  EXPECT_LE(seen.size(), 4u);
  table.setMaskForTest(stm::OrecTable::kSize - 1);
}

// --- clock -------------------------------------------------------------------

TEST(GlobalClockTest, TickIsMonotonic) {
  stm::GlobalClock clock;
  const auto a = clock.now();
  const auto b = clock.tick();
  EXPECT_GT(b, a);
  EXPECT_EQ(clock.now(), b);
}

// --- codec -------------------------------------------------------------------

TEST(RawCodecTest, RoundTripsIntegers) {
  using C = stm::RawCodec<std::int64_t>;
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(C::decode(C::encode(v)), v);
  }
}

TEST(RawCodecTest, RoundTripsSmallIntegers) {
  using C = stm::RawCodec<std::int32_t>;
  for (std::int32_t v : {0, -1, -123456, 1 << 30}) {
    EXPECT_EQ(C::decode(C::encode(v)), v);
  }
}

TEST(RawCodecTest, RoundTripsBool) {
  using C = stm::RawCodec<bool>;
  EXPECT_EQ(C::decode(C::encode(true)), true);
  EXPECT_EQ(C::decode(C::encode(false)), false);
}

TEST(RawCodecTest, RoundTripsPointers) {
  using C = stm::RawCodec<int*>;
  int x;
  EXPECT_EQ(C::decode(C::encode(&x)), &x);
  EXPECT_EQ(C::decode(C::encode(nullptr)), nullptr);
}

// --- hooks -------------------------------------------------------------------

TEST(TxHooksTest, CommitHookRunsExactlyOnceAfterCommit) {
  stm::TxField<std::int64_t> x(0);
  int runs = 0;
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    x.write(tx, attempts);
    tx.onCommit([&] { ++runs; });
    if (attempts == 1) tx.restart();  // hook from aborted attempt is dropped
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(runs, 1);
}

TEST(TxHooksTest, CommitHookRunsOutsideTransaction) {
  stm::TxField<std::int64_t> x(0);
  bool wasInTx = true;
  stm::atomically([&](stm::Tx& tx) {
    x.write(tx, 1);
    tx.onCommit([&] { wasInTx = stm::inTransaction(); });
  });
  EXPECT_FALSE(wasInTx);
}

TEST(TxHooksTest, CommitHookCanStartNewTransaction) {
  stm::TxField<std::int64_t> x(0);
  stm::TxField<std::int64_t> y(0);
  stm::atomically([&](stm::Tx& tx) {
    x.write(tx, 1);
    tx.onCommit([&] {
      stm::atomically([&](stm::Tx& inner) { y.write(inner, 2); });
    });
  });
  EXPECT_EQ(y.loadRelaxed(), 2);
}

TEST(TxHooksTest, NestedHooksRunAtOutermostCommitOnly) {
  stm::TxField<std::int64_t> x(0);
  std::vector<int> order;
  stm::atomically([&](stm::Tx& outer) {
    stm::atomically([&](stm::Tx& inner) {
      inner.onCommit([&] { order.push_back(1); });
    });
    order.push_back(0);  // runs before any hook: inner "commit" is flat
    x.write(outer, 1);
    outer.onCommit([&] { order.push_back(2); });
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

struct Counted {
  static inline int live = 0;
  Counted() { ++live; }
  ~Counted() { --live; }
  static void deleter(void* p) { delete static_cast<Counted*>(p); }
};

TEST(TxHooksTest, AbortDeleteFreesAcrossRetries) {
  stm::TxField<std::int64_t> x(0);
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    auto* c = new Counted;
    tx.onAbortDelete(c, &Counted::deleter);
    x.write(tx, attempts);
    if (attempts < 3) tx.restart();
    // Committed attempt: ownership stays with us.
    tx.onCommit([c] { Counted::deleter(c); });
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(Counted::live, 0);
}

// --- stats -------------------------------------------------------------------

TEST(StatsTest, NestedBracketsFoldIntoOutermost) {
  stm::ThreadStats s;
  s.beginOp();
  s.onRead();
  s.beginOp();  // nested: must not reset the counter
  s.onRead();
  s.endOp();
  s.onRead();
  s.endOp();
  EXPECT_EQ(s.ops, 1u);
  EXPECT_EQ(s.maxOpReads, 3u);
}

TEST(StatsTest, AggregationTakesMaxOfMaxima) {
  stm::ThreadStats a;
  stm::ThreadStats b;
  a.maxOpReads = 10;
  b.maxOpReads = 25;
  a += b;
  EXPECT_EQ(a.maxOpReads, 25u);
}

TEST(StatsTest, AbortRatio) {
  stm::ThreadStats s;
  s.commits = 75;
  s.aborts = 25;
  EXPECT_DOUBLE_EQ(s.abortRatio(), 0.25);
  stm::ThreadStats zero;
  EXPECT_DOUBLE_EQ(zero.abortRatio(), 0.0);
}

// --- failure injection --------------------------------------------------------

TEST(FailureInjectionTest, RepeatedRestartsConvergeWithBackoff) {
  stm::TxField<std::int64_t> x(0);
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    x.write(tx, attempts);
    if (attempts < 20) tx.restart();
  });
  EXPECT_EQ(attempts, 20);
  EXPECT_EQ(x.loadRelaxed(), 20);
}

TEST(FailureInjectionTest, ExceptionsOtherThanAbortPropagate) {
  stm::TxField<std::int64_t> x(0);
  EXPECT_THROW(stm::atomically([&](stm::Tx& tx) {
                 x.write(tx, 99);
                 throw std::runtime_error("user error");
               }),
               std::runtime_error);
  // The transaction neither committed nor poisoned the runtime: a new
  // transaction still works and the write is not visible.
  // NOTE: the descriptor is cleaned up on the next begin().
  EXPECT_EQ(stm::atomically([&](stm::Tx& tx) { return x.read(tx); }), 0);
}

}  // namespace
