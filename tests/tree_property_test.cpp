// Property-style sweeps: randomized workloads across (tree kind x seed)
// checked against std::map, with structural invariants validated at
// checkpoints. TEST_P keeps each (kind, seed) combination an independent
// test case.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "bench_core/rng.hpp"
#include "trees/map_interface.hpp"
#include "trees/tree_checks.hpp"

namespace trees = sftree::trees;
using sftree::Key;
using sftree::bench::Rng;

namespace {

using PropertyParam = std::tuple<trees::MapKind, int /*seed*/>;

class TreePropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(TreePropertyTest, RandomOpsMatchReferenceWithPeriodicQuiesce) {
  const auto [kind, seed] = GetParam();
  auto map = trees::makeMap(kind);
  std::map<Key, sftree::Value> reference;
  Rng rng(1000 + seed * 77);
  constexpr int kOps = 4000;
  const Key range = 128 + 64 * seed;  // different densities per seed

  for (int i = 0; i < kOps; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(
        static_cast<std::uint64_t>(range)));
    switch (rng.nextBounded(6)) {
      case 0:
      case 1: {
        const bool expect = reference.emplace(k, k).second;
        ASSERT_EQ(map->insert(k, k), expect) << "op " << i;
        break;
      }
      case 2:
      case 3: {
        const bool expect = reference.erase(k) > 0;
        ASSERT_EQ(map->erase(k), expect) << "op " << i;
        break;
      }
      case 4: {
        ASSERT_EQ(map->contains(k), reference.count(k) > 0) << "op " << i;
        break;
      }
      default: {
        Key hi = k + static_cast<Key>(rng.nextBounded(32));
        const auto expect = static_cast<std::size_t>(std::distance(
            reference.lower_bound(k), reference.upper_bound(hi)));
        ASSERT_EQ(map->countRange(k, hi), expect) << "op " << i;
        break;
      }
    }
    if (i % 1000 == 999) {
      map->quiesce();
      std::vector<Key> expectKeys;
      for (const auto& [key, v] : reference) expectKeys.push_back(key);
      ASSERT_EQ(map->keysInOrder(), expectKeys) << "checkpoint at op " << i;
    }
  }
  map->quiesce();
  EXPECT_EQ(map->size(), reference.size());
}

std::string propertyName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name = trees::mapKindName(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreePropertyTest,
    ::testing::Combine(::testing::ValuesIn(trees::allMapKinds()),
                       ::testing::Values(1, 2, 3, 4)),
    propertyName);

// --- invariants after adversarial shapes, per tree kind ---------------------

class AdversarialShapeTest : public ::testing::TestWithParam<trees::MapKind> {};

TEST_P(AdversarialShapeTest, SawtoothInsertionsStaySane) {
  auto map = trees::makeMap(GetParam());
  // Alternate low/high keys: the worst zig-zag shape for naive rotations.
  for (Key i = 0; i < 256; ++i) {
    ASSERT_TRUE(map->insert(i, i));
    ASSERT_TRUE(map->insert(1000 - i, i));
  }
  map->quiesce();
  EXPECT_EQ(map->size(), 512u);
  EXPECT_TRUE(map->contains(0));
  EXPECT_TRUE(map->contains(1000));
}

TEST_P(AdversarialShapeTest, DeleteAllThenReuse) {
  auto map = trees::makeMap(GetParam());
  for (int round = 0; round < 3; ++round) {
    for (Key k = 0; k < 200; ++k) ASSERT_TRUE(map->insert(k, round));
    for (Key k = 0; k < 200; ++k) ASSERT_TRUE(map->erase(k));
    map->quiesce();
    ASSERT_EQ(map->size(), 0u) << "round " << round;
  }
  // The structure is still usable after churn.
  ASSERT_TRUE(map->insert(5, 5));
  EXPECT_EQ(map->get(5), 5);
}

INSTANTIATE_TEST_SUITE_P(
    AllTrees, AdversarialShapeTest,
    ::testing::ValuesIn(trees::allMapKinds()),
    [](const ::testing::TestParamInfo<trees::MapKind>& info) {
      std::string name = trees::mapKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
