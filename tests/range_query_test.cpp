// Transactional range queries: sequential correctness against std::map and
// — the important part — snapshot consistency while the tree churns
// (the composable size()/countRange() the paper contrasts with trees that
// bypass TM bookkeeping, §6).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>

#include "bench_core/rng.hpp"
#include "trees/map_interface.hpp"

namespace trees = sftree::trees;
namespace stm = sftree::stm;
using sftree::Key;
using sftree::bench::Rng;

namespace {

class RangeQueryTest : public ::testing::TestWithParam<trees::MapKind> {
 protected:
  std::unique_ptr<trees::ITransactionalMap> makeMap() {
    return trees::makeMap(GetParam());
  }
};

TEST_P(RangeQueryTest, EmptyTreeCountsZero) {
  auto map = makeMap();
  EXPECT_EQ(map->countRange(0, 1000), 0u);
}

TEST_P(RangeQueryTest, CountsMatchReference) {
  auto map = makeMap();
  std::map<Key, sftree::Value> reference;
  Rng rng(808);
  for (int i = 0; i < 600; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(1 << 12));
    if (rng.nextBool()) {
      map->insert(k, k);
      reference.emplace(k, k);
    } else {
      map->erase(k);
      reference.erase(k);
    }
  }
  for (int i = 0; i < 50; ++i) {
    Key lo = static_cast<Key>(rng.nextBounded(1 << 12));
    Key hi = static_cast<Key>(rng.nextBounded(1 << 12));
    if (lo > hi) std::swap(lo, hi);
    const auto expect = static_cast<std::size_t>(std::distance(
        reference.lower_bound(lo), reference.upper_bound(hi)));
    EXPECT_EQ(map->countRange(lo, hi), expect) << "[" << lo << "," << hi << "]";
  }
}

TEST_P(RangeQueryTest, BoundsAreInclusive) {
  auto map = makeMap();
  for (Key k : {10, 20, 30}) map->insert(k, k);
  EXPECT_EQ(map->countRange(10, 30), 3u);
  EXPECT_EQ(map->countRange(11, 29), 1u);
  EXPECT_EQ(map->countRange(10, 10), 1u);
  EXPECT_EQ(map->countRange(31, 40), 0u);
}

TEST_P(RangeQueryTest, LogicallyDeletedKeysAreNotCounted) {
  auto map = makeMap();
  for (Key k = 0; k < 32; ++k) map->insert(k, k);
  for (Key k = 0; k < 32; k += 2) map->erase(k);
  // No quiesce: for SF/NR trees the deleted nodes are still physically
  // present — the count must reflect the abstraction anyway.
  EXPECT_EQ(map->countRange(0, 31), 16u);
}

TEST_P(RangeQueryTest, ComposesWithUpdatesInOneTransaction) {
  auto map = makeMap();
  for (Key k = 0; k < 10; ++k) map->insert(k, k);
  // Atomically: count, then insert as many new keys above 100 as counted,
  // then verify the count of the new range inside the same transaction.
  stm::atomically([&](stm::Tx& tx) {
    const auto n = map->countRangeTx(tx, 0, 99);
    for (std::size_t i = 0; i < n; ++i) {
      map->insertTx(tx, static_cast<Key>(100 + i), 0);
    }
    EXPECT_EQ(map->countRangeTx(tx, 100, 199), n);
  });
  EXPECT_EQ(map->countRange(100, 199), 10u);
}

// The serializability test: concurrent moves shuffle keys around, which
// never changes the cardinality; a consistent snapshot count must therefore
// always return the initial count.
TEST_P(RangeQueryTest, SnapshotCountIsStableUnderMoves) {
  auto map = makeMap();
  constexpr Key kRange = 256;
  std::size_t initial = 0;
  for (Key k = 0; k < kRange; k += 2) {
    map->insert(k, k);
    ++initial;
  }
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};

  std::vector<std::thread> movers;
  for (int t = 0; t < 2; ++t) {
    movers.emplace_back([&, t] {
      Rng rng(99 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Key a = static_cast<Key>(rng.nextBounded(kRange));
        const Key b = static_cast<Key>(rng.nextBounded(kRange));
        map->move(a, b);
      }
    });
  }
  std::thread counter([&] {
    for (int i = 0; i < 300; ++i) {
      const auto n = map->countRange(0, kRange - 1);
      if (n != initial) anomalies.fetch_add(1);
    }
    stop.store(true, std::memory_order_release);
  });
  counter.join();
  for (auto& th : movers) th.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST_P(RangeQueryTest, SizeTxMatchesQuiescedSize) {
  auto map = makeMap();
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    map->insert(static_cast<Key>(rng.nextBounded(4096)), 1);
  }
  const auto snapshotSize =
      stm::atomically([&](stm::Tx& tx) { return map->sizeTx(tx); });
  map->quiesce();
  EXPECT_EQ(snapshotSize, map->size());
}

INSTANTIATE_TEST_SUITE_P(
    AllTrees, RangeQueryTest, ::testing::ValuesIn(trees::allMapKinds()),
    [](const ::testing::TestParamInfo<trees::MapKind>& info) {
      std::string name = trees::mapKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
