// Checkpoint/restore: the streamed image must be a linearizable cut of the
// live map — under concurrent writers, under live splitShard/mergeShards
// cycles, and under serving-tier batch traffic — incremental checkpoints
// must reuse clean segments exactly, and torn or corrupt files must fall
// back to the last complete checkpoint. The concurrent tests are in the
// ThreadSanitizer CI job's regex.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "bench_core/rng.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/snapshot_cursor.hpp"
#include "serve/serving.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"

namespace ckpt = sftree::ckpt;
namespace serve = sftree::serve;
namespace shard = sftree::shard;
namespace fs = std::filesystem;
using sftree::Key;
using sftree::Value;
using sftree::bench::Rng;

namespace {

// Fresh per-test checkpoint directory under the gtest temp root.
std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ckpt_test_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::map<Key, Value> dumpMap(shard::ShardedMap& map) {
  std::map<Key, Value> out;
  for (const Key k : map.keysInOrder()) out[k] = *map.get(k);
  return out;
}

TEST(CkptTest, FullCheckpointRestoreRoundTripExact) {
  const std::string dir = freshDir("roundtrip");
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  constexpr Key kKeys = 3'000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(map.insert(k * 3, k * 7 + 1));
  const auto before = dumpMap(map);

  ckpt::CheckpointConfig ccfg;
  ccfg.dir = dir;
  ckpt::CheckpointWriter writer(map, ccfg);
  const ckpt::CheckpointResult cr = writer.full();
  ASSERT_TRUE(cr.ok) << cr.error;
  EXPECT_EQ(cr.keys, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(cr.freshSegments, cr.segments);
  EXPECT_EQ(cr.reusedSegments, 0u);
  EXPECT_FALSE(cr.forcedCut);  // no writers: first round certifies

  shard::MaintenanceScheduler scheduler2;
  ckpt::RestoreOptions ropt;
  ropt.mapConfig.scheduler = &scheduler2;
  ckpt::RestoreReport rep;
  const auto restored = ckpt::restore(dir, ropt, rep);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(rep.keys, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(rep.skippedFiles, 0);
  EXPECT_EQ(dumpMap(*restored), before);
}

TEST(CkptTest, RestoredTopologyMatchesCheckpointedMap) {
  const std::string dir = freshDir("topology");
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);
  for (Key k = 0; k < 2'000; ++k) ASSERT_TRUE(map.insert(k, k));
  // Non-default topology: two splits leave four shards with a slot layout
  // the default contiguous assignment would never produce.
  ASSERT_GE(map.splitShard(0), 0);
  ASSERT_GE(map.splitShard(1), 0);

  ckpt::CheckpointConfig ccfg;
  ccfg.dir = dir;
  ckpt::CheckpointWriter writer(map, ccfg);
  ASSERT_TRUE(writer.full().ok);

  shard::MaintenanceScheduler scheduler2;
  ckpt::RestoreOptions ropt;
  ropt.mapConfig.scheduler = &scheduler2;
  ckpt::RestoreReport rep;
  const auto restored = ckpt::restore(dir, ropt, rep);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(restored->shardCount(), map.shardCount());
  EXPECT_EQ(restored->routingSlots(), map.routingSlots());
  EXPECT_EQ(restored->slotOwners(), map.slotOwners());
  // Every key is where the restored routing says it is.
  restored->quiesce();
  std::size_t total = 0;
  for (int i = 0; i < restored->shardCount(); ++i) {
    for (const Key k : restored->shard(i).keysInOrder()) {
      EXPECT_EQ(restored->shardIndexFor(k), i) << "key " << k << " misrouted";
      ++total;
    }
  }
  EXPECT_EQ(total, 2'000u);
}

TEST(CkptTest, IncrementalReusesCleanSegmentsAndRestoresExactly) {
  const std::string dir = freshDir("incremental");
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  constexpr Key kKeys = 20'000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(map.insert(k, k));

  ckpt::CheckpointConfig ccfg;
  ccfg.dir = dir;
  ckpt::CheckpointWriter writer(map, ccfg);
  const ckpt::CheckpointResult fullRes = writer.full();
  ASSERT_TRUE(fullRes.ok) << fullRes.error;

  // Dirty ~10% of the SLOTS (segment reuse is slot-granular; dirtying 10%
  // of hash-scattered keys would touch essentially every slot).
  const int dirtySlots = map.routingSlots() / 10;
  for (Key k = 0; k < kKeys; ++k) {
    if (static_cast<int>(map.slotOfKey(k)) < dirtySlots && (k % 3) == 0) {
      map.insert(k, k + 1'000'000);
    }
  }
  const auto before = dumpMap(map);

  const ckpt::CheckpointResult incr = writer.incremental();
  ASSERT_TRUE(incr.ok) << incr.error;
  EXPECT_GT(incr.reusedSegments, 0u);
  EXPECT_LT(incr.freshSegments, incr.segments);
  EXPECT_EQ(incr.freshSegments + incr.reusedSegments, incr.segments);
  EXPECT_LT(incr.bytesWritten, fullRes.bytesWritten);

  shard::MaintenanceScheduler scheduler2;
  ckpt::RestoreOptions ropt;
  ropt.mapConfig.scheduler = &scheduler2;
  ckpt::RestoreReport rep;
  const auto restored = ckpt::restore(dir, ropt, rep);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.fileId, incr.fileId);
  EXPECT_EQ(dumpMap(*restored), before);

  // An incremental on a quiet map reuses everything and writes no keys.
  const ckpt::CheckpointResult quiet = writer.incremental();
  ASSERT_TRUE(quiet.ok) << quiet.error;
  EXPECT_EQ(quiet.freshSegments, 0u);
  EXPECT_EQ(quiet.reusedSegments, quiet.segments);
}

TEST(CkptTest, TornAndCorruptFilesFallBackToLastComplete) {
  const std::string dir = freshDir("torn");
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);
  for (Key k = 0; k < 1'000; ++k) ASSERT_TRUE(map.insert(k, k * 2));
  const auto before = dumpMap(map);

  ckpt::CheckpointConfig ccfg;
  ccfg.dir = dir;
  ckpt::CheckpointWriter writer(map, ccfg);
  const ckpt::CheckpointResult cr = writer.full();
  ASSERT_TRUE(cr.ok) << cr.error;

  // Torn newer file: a prefix of the valid one under the next id — what a
  // SIGKILL mid-stream leaves after a partial rename-less write.
  {
    std::vector<char> bytes(1024);
    std::FILE* in = std::fopen(cr.path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    bytes.resize(std::fread(bytes.data(), 1, bytes.size(), in));
    std::fclose(in);
    const std::string torn =
        dir + "/ckpt-" + std::to_string(cr.fileId + 1) + ".sfc";
    std::FILE* outF = std::fopen(torn.c_str(), "wb");
    ASSERT_NE(outF, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), outF);
    std::fclose(outF);
  }
  {
    int bad = 0;
    const auto newest = ckpt::newestValidCheckpoint(dir, &bad);
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(*newest, cr.fileId);
    EXPECT_EQ(bad, 1);
  }
  {
    shard::MaintenanceScheduler s2;
    ckpt::RestoreOptions ropt;
    ropt.mapConfig.scheduler = &s2;
    ckpt::RestoreReport rep;
    const auto restored = ckpt::restore(dir, ropt, rep);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.fileId, cr.fileId);
    EXPECT_EQ(rep.skippedFiles, 1);
    EXPECT_EQ(dumpMap(*restored), before);
  }

  // Corrupt newer file: complete structure, one payload byte flipped — the
  // segment checksum must reject it and restore must fall back.
  {
    const std::string corrupt =
        dir + "/ckpt-" + std::to_string(cr.fileId + 2) + ".sfc";
    fs::copy_file(cr.path, corrupt);
    // Rewrite ids so header/manifest validate against the new filename,
    // then flip a payload byte without touching any checksum field.
    // Simpler and just as probing: flip a byte inside the first segment's
    // payload region (headers stay byte-identical, so the manifest's
    // fileId check fails first -> also a rejection path). Either rejection
    // reason must end in fallback.
    std::FILE* fp = std::fopen(corrupt.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, static_cast<long>(ckpt::kFileHeaderBytes +
                                     ckpt::kSegmentHeaderBytes + 3),
               SEEK_SET);
    unsigned char b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, fp), 1u);
    b ^= 0xFF;
    std::fseek(fp, -1, SEEK_CUR);
    std::fwrite(&b, 1, 1, fp);
    std::fclose(fp);

    shard::MaintenanceScheduler s2;
    ckpt::RestoreOptions ropt;
    ropt.mapConfig.scheduler = &s2;
    ckpt::RestoreReport rep;
    const auto restored = ckpt::restore(dir, ropt, rep);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.fileId, cr.fileId);
    EXPECT_EQ(dumpMap(*restored), before);
  }

  // Empty directory: restore reports failure instead of fabricating a map.
  {
    const std::string empty = freshDir("torn_empty");
    shard::MaintenanceScheduler s2;
    ckpt::RestoreOptions ropt;
    ropt.mapConfig.scheduler = &s2;
    ckpt::RestoreReport rep;
    EXPECT_EQ(ckpt::restore(empty, ropt, rep), nullptr);
    EXPECT_FALSE(rep.ok);
  }
}

// Token movers: each thread owns a disjoint set of tokens (key -> token id
// is carried in the value) and keeps moving them to fresh keys. At every
// instant the map holds exactly kTokens keys and the value multiset is
// exactly {0 .. kTokens-1} — so any linearizable cut must too.
class TokenMovers {
 public:
  TokenMovers(shard::ShardedMap& map, int threads, int tokens, Key keyspace)
      : map_(map), tokens_(tokens), keyspace_(keyspace) {
    positions_.resize(static_cast<std::size_t>(tokens));
    for (int t = 0; t < tokens; ++t) {
      positions_[static_cast<std::size_t>(t)] = static_cast<Key>(t);
      EXPECT_TRUE(map_.insert(static_cast<Key>(t), static_cast<Value>(t)));
    }
    for (int w = 0; w < threads; ++w) {
      workers_.emplace_back([this, w, threads] { run(w, threads); });
    }
  }
  void stopAndJoin() {
    stop_.store(true);
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }
  ~TokenMovers() {
    if (!workers_.empty()) stopAndJoin();
  }

 private:
  void run(int self, int stride) {
    Rng rng(static_cast<std::uint64_t>(0x5eed + self));
    while (!stop_.load(std::memory_order_relaxed)) {
      const int tok =
          self + stride * static_cast<int>(rng.nextBounded(
                              static_cast<std::uint64_t>(tokens_ / stride)));
      if (tok >= tokens_) continue;
      Key& cur = positions_[static_cast<std::size_t>(tok)];
      const Key dst = static_cast<Key>(rng.nextBounded(
          static_cast<std::uint64_t>(keyspace_)));
      if (map_.move(cur, dst)) cur = dst;
    }
  }

  shard::ShardedMap& map_;
  const int tokens_;
  const Key keyspace_;
  std::vector<Key> positions_;  // token -> current key, one writer each
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
};

void expectTokenCut(const std::map<Key, Value>& image, int tokens,
                    const char* what) {
  ASSERT_EQ(image.size(), static_cast<std::size_t>(tokens)) << what;
  std::vector<bool> seen(static_cast<std::size_t>(tokens), false);
  for (const auto& [k, v] : image) {
    ASSERT_GE(v, 0) << what;
    ASSERT_LT(v, static_cast<Value>(tokens)) << what;
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)])
        << what << ": token " << v << " appears twice (key " << k << ")";
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(CkptTest, CheckpointUnderConcurrentWritersIsLinearizableCut) {
  const std::string dir = freshDir("concurrent");
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  constexpr int kTokens = 256;
  constexpr Key kKeyspace = 1 << 20;
  TokenMovers movers(map, 4, kTokens, kKeyspace);

  ckpt::CheckpointConfig ccfg;
  ccfg.dir = dir;
  ckpt::CheckpointWriter writer(map, ccfg);
  ckpt::CheckpointResult last;
  for (int i = 0; i < 4; ++i) {
    last = writer.incremental();  // first call falls back to full
    ASSERT_TRUE(last.ok) << last.error;
    EXPECT_EQ(last.keys, static_cast<std::uint64_t>(kTokens))
        << "checkpoint " << i << " is not a token-conserving cut";
  }
  movers.stopAndJoin();

  shard::MaintenanceScheduler scheduler2;
  ckpt::RestoreOptions ropt;
  ropt.mapConfig.scheduler = &scheduler2;
  ckpt::RestoreReport rep;
  const auto restored = ckpt::restore(dir, ropt, rep);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.fileId, last.fileId);
  expectTokenCut(dumpMap(*restored), kTokens, "restored image");
}

TEST(CkptTest, CheckpointDuringSplitMergeAndServingBatches) {
  const std::string dir = freshDir("reshard_serving");
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  // Region A: moving tokens (exact-conservation invariant).
  constexpr int kTokens = 128;
  constexpr Key kKeyspace = 1 << 20;
  TokenMovers movers(map, 2, kTokens, kKeyspace);

  // Region B (disjoint keys >= 2^20): serving-tier batches of
  // value-constrained upserts/erases — any B key in the cut must carry its
  // one legal value.
  constexpr Key kRegionB = 1 << 20;
  serve::ServingTierConfig scfg;
  scfg.executors = 2;
  serve::ServingTier tier(map, scfg);
  std::atomic<bool> stopServe{false};
  std::thread server([&] {
    Rng rng(99);
    std::vector<serve::Future> pending;
    while (!stopServe.load(std::memory_order_relaxed)) {
      serve::Request r;
      r.key = kRegionB + static_cast<Key>(rng.nextBounded(4'096));
      if (rng.nextBounded(100) < 60) {
        r.op = serve::OpKind::kInsert;
        r.value = r.key * 13;
      } else {
        r.op = serve::OpKind::kErase;
      }
      pending.push_back(tier.submit(r));
      if (pending.size() >= 256) {
        for (auto& f : pending) (void)f.get();
        pending.clear();
      }
    }
    for (auto& f : pending) (void)f.get();
  });

  // Live resharding underneath both traffic classes.
  std::atomic<bool> stopReshard{false};
  std::thread resharder([&] {
    while (!stopReshard.load(std::memory_order_relaxed)) {
      const int ni = map.splitShard(0);
      if (ni >= 0) map.mergeShards(ni, 0);
    }
  });

  ckpt::CheckpointConfig ccfg;
  ccfg.dir = dir;
  ckpt::CheckpointWriter writer(map, ccfg);
  ckpt::CheckpointResult last;
  for (int i = 0; i < 3; ++i) {
    last = writer.incremental();
    ASSERT_TRUE(last.ok) << last.error;
  }
  stopReshard.store(true);
  resharder.join();
  stopServe.store(true);
  server.join();
  tier.stop();
  movers.stopAndJoin();

  shard::MaintenanceScheduler scheduler2;
  ckpt::RestoreOptions ropt;
  ropt.mapConfig.scheduler = &scheduler2;
  ckpt::RestoreReport rep;
  const auto restored = ckpt::restore(dir, ropt, rep);
  ASSERT_TRUE(rep.ok) << rep.error;
  const auto image = dumpMap(*restored);

  std::map<Key, Value> regionA;
  for (const auto& [k, v] : image) {
    if (k < kRegionB) {
      regionA.emplace(k, v);
    } else {
      EXPECT_EQ(v, k * 13) << "region-B key " << k
                           << " restored with an impossible value";
    }
  }
  expectTokenCut(regionA, kTokens, "restored region A");
}

// The cursor alone (no file round-trip): a forced cut via a tiny round
// budget still yields a token-conserving image, exercising the
// snapshotAllTx escalation path deterministically.
TEST(CkptTest, ForcedCutEscalationStillLinearizable) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  constexpr int kTokens = 128;
  TokenMovers movers(map, 4, kTokens, 1 << 18);

  ckpt::SnapshotOptions sopt;
  sopt.optimisticRounds = 0;  // skip tick certification: always force
  sopt.forcedRounds = 1;      // straight to whole-map escalation
  ckpt::SnapshotCursor cursor(map, sopt);
  const ckpt::SnapshotResult snap = cursor.capture();
  movers.stopAndJoin();
  ASSERT_TRUE(snap.ok);
  EXPECT_TRUE(snap.forcedCut);
  EXPECT_FALSE(snap.cutStamps.empty());
  std::map<Key, Value> image;
  for (const auto& slot : snap.slots) {
    for (const auto& kv : slot.kvs) image.emplace(kv.key, kv.value);
  }
  expectTokenCut(image, kTokens, "forced-cut image");
}

}  // namespace
