// Vacation application tests: manager semantics, atomic client actions,
// multi-threaded consistency — on each table implementation.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "vacation/vacation_app.hpp"

namespace vac = sftree::vacation;
namespace trees = sftree::trees;
namespace stm = sftree::stm;
using sftree::Key;
using vac::Manager;
using vac::Money;
using vac::ReservationType;

namespace {

class VacationManagerTest : public ::testing::TestWithParam<trees::MapKind> {
 protected:
  std::unique_ptr<Manager> makeManager() {
    return std::make_unique<Manager>(GetParam(), stm::TxKind::Normal);
  }

  template <typename F>
  auto tx(F&& fn) {
    return stm::atomically(std::forward<F>(fn));
  }
};

TEST_P(VacationManagerTest, AddAndQueryReservation) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    EXPECT_TRUE(m->addReservation(t, ReservationType::Car, 1, 100, 50));
  });
  tx([&](stm::Tx& t) {
    EXPECT_EQ(m->queryFree(t, ReservationType::Car, 1), 100);
    EXPECT_EQ(m->queryPrice(t, ReservationType::Car, 1), 50);
    EXPECT_EQ(m->queryFree(t, ReservationType::Car, 2), -1);
    EXPECT_EQ(m->queryFree(t, ReservationType::Room, 1), -1);
  });
}

TEST_P(VacationManagerTest, AddToExistingGrowsCapacityAndUpdatesPrice) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Room, 7, 100, 50);
  });
  tx([&](stm::Tx& t) {
    EXPECT_TRUE(m->addReservation(t, ReservationType::Room, 7, 50, 80));
  });
  tx([&](stm::Tx& t) {
    EXPECT_EQ(m->queryFree(t, ReservationType::Room, 7), 150);
    EXPECT_EQ(m->queryPrice(t, ReservationType::Room, 7), 80);
  });
}

TEST_P(VacationManagerTest, DeleteCapacityCannotGoNegative) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Flight, 3, 100, 60);
  });
  tx([&](stm::Tx& t) {
    EXPECT_TRUE(m->deleteReservationCapacity(t, ReservationType::Flight, 3, 60));
    EXPECT_FALSE(m->deleteReservationCapacity(t, ReservationType::Flight, 3, 60));
  });
  tx([&](stm::Tx& t) {
    EXPECT_EQ(m->queryFree(t, ReservationType::Flight, 3), 40);
  });
}

TEST_P(VacationManagerTest, ReserveAndCancelRoundTrip) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Car, 1, 2, 30);
    m->addCustomer(t, 42);
  });
  tx([&](stm::Tx& t) {
    EXPECT_TRUE(m->reserve(t, ReservationType::Car, 42, 1));
  });
  tx([&](stm::Tx& t) {
    EXPECT_EQ(m->queryFree(t, ReservationType::Car, 1), 1);
    EXPECT_EQ(m->queryCustomerBill(t, 42), 30);
  });
  tx([&](stm::Tx& t) {
    EXPECT_TRUE(m->cancel(t, ReservationType::Car, 42, 1));
  });
  tx([&](stm::Tx& t) {
    EXPECT_EQ(m->queryFree(t, ReservationType::Car, 1), 2);
    EXPECT_EQ(m->queryCustomerBill(t, 42), 0);
  });
  std::string err;
  EXPECT_TRUE(m->checkConsistency(&err)) << err;
}

TEST_P(VacationManagerTest, DoubleReserveSameItemFails) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Car, 1, 10, 30);
    m->addCustomer(t, 42);
  });
  tx([&](stm::Tx& t) { EXPECT_TRUE(m->reserve(t, ReservationType::Car, 42, 1)); });
  tx([&](stm::Tx& t) { EXPECT_FALSE(m->reserve(t, ReservationType::Car, 42, 1)); });
  // Failed double-reserve must not leak capacity.
  tx([&](stm::Tx& t) { EXPECT_EQ(m->queryFree(t, ReservationType::Car, 1), 9); });
  std::string err;
  EXPECT_TRUE(m->checkConsistency(&err)) << err;
}

TEST_P(VacationManagerTest, ReserveFailsWithoutCustomerOrItem) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Car, 1, 10, 30);
  });
  tx([&](stm::Tx& t) {
    EXPECT_FALSE(m->reserve(t, ReservationType::Car, 99, 1));  // no customer
  });
  tx([&](stm::Tx& t) { m->addCustomer(t, 99); });
  tx([&](stm::Tx& t) {
    EXPECT_FALSE(m->reserve(t, ReservationType::Car, 99, 2));  // no item
  });
}

TEST_P(VacationManagerTest, ReserveExhaustsCapacity) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Room, 1, 2, 10);
    m->addCustomer(t, 1);
    m->addCustomer(t, 2);
    m->addCustomer(t, 3);
  });
  tx([&](stm::Tx& t) { EXPECT_TRUE(m->reserve(t, ReservationType::Room, 1, 1)); });
  tx([&](stm::Tx& t) { EXPECT_TRUE(m->reserve(t, ReservationType::Room, 2, 1)); });
  tx([&](stm::Tx& t) { EXPECT_FALSE(m->reserve(t, ReservationType::Room, 3, 1)); });
  std::string err;
  EXPECT_TRUE(m->checkConsistency(&err)) << err;
}

TEST_P(VacationManagerTest, DeleteCustomerCancelsAllReservations) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Car, 1, 5, 10);
    m->addReservation(t, ReservationType::Room, 2, 5, 20);
    m->addReservation(t, ReservationType::Flight, 3, 5, 30);
    m->addCustomer(t, 42);
  });
  tx([&](stm::Tx& t) {
    EXPECT_TRUE(m->reserve(t, ReservationType::Car, 42, 1));
    EXPECT_TRUE(m->reserve(t, ReservationType::Room, 42, 2));
    EXPECT_TRUE(m->reserve(t, ReservationType::Flight, 42, 3));
  });
  tx([&](stm::Tx& t) { EXPECT_EQ(m->queryCustomerBill(t, 42), 60); });
  tx([&](stm::Tx& t) { EXPECT_TRUE(m->deleteCustomer(t, 42)); });
  tx([&](stm::Tx& t) {
    EXPECT_EQ(m->queryCustomerBill(t, 42), -1);
    EXPECT_EQ(m->queryFree(t, ReservationType::Car, 1), 5);
    EXPECT_EQ(m->queryFree(t, ReservationType::Room, 2), 5);
    EXPECT_EQ(m->queryFree(t, ReservationType::Flight, 3), 5);
  });
  std::string err;
  EXPECT_TRUE(m->checkConsistency(&err)) << err;
}

TEST_P(VacationManagerTest, DeleteFlightOnlyWhenUnused) {
  auto m = makeManager();
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Flight, 9, 5, 100);
    m->addCustomer(t, 1);
  });
  tx([&](stm::Tx& t) { EXPECT_TRUE(m->reserve(t, ReservationType::Flight, 1, 9)); });
  tx([&](stm::Tx& t) { EXPECT_FALSE(m->deleteFlight(t, 9)); });
  tx([&](stm::Tx& t) { EXPECT_TRUE(m->cancel(t, ReservationType::Flight, 1, 9)); });
  tx([&](stm::Tx& t) { EXPECT_TRUE(m->deleteFlight(t, 9)); });
  tx([&](stm::Tx& t) {
    EXPECT_EQ(m->queryFree(t, ReservationType::Flight, 9), -1);
  });
}

TEST_P(VacationManagerTest, ConcurrentReservationsNeverOversell) {
  auto m = makeManager();
  constexpr std::int64_t kCapacity = 50;
  tx([&](stm::Tx& t) {
    m->addReservation(t, ReservationType::Car, 1, kCapacity, 10);
  });
  constexpr int kThreads = 4;
  constexpr int kCustomersPerThread = 40;
  std::vector<std::thread> threads;
  std::atomic<int> succeeded{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCustomersPerThread; ++i) {
        const Key cid = t * kCustomersPerThread + i;
        const bool ok = stm::atomically([&](stm::Tx& txn) {
          m->addCustomer(txn, cid);
          return m->reserve(txn, ReservationType::Car, cid, 1);
        });
        if (ok) succeeded.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(succeeded.load(), kCapacity);
  tx([&](stm::Tx& t) { EXPECT_EQ(m->queryFree(t, ReservationType::Car, 1), 0); });
  std::string err;
  EXPECT_TRUE(m->checkConsistency(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(
    Tables, VacationManagerTest,
    ::testing::Values(trees::MapKind::RBTree, trees::MapKind::OptSFTree,
                      trees::MapKind::NRTree),
    [](const ::testing::TestParamInfo<trees::MapKind>& info) {
      std::string name = trees::mapKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- end-to-end application runs -------------------------------------------

struct AppCase {
  trees::MapKind kind;
  bool highContention;
};

class VacationAppTest : public ::testing::TestWithParam<AppCase> {};

TEST_P(VacationAppTest, ShortRunIsConsistent) {
  vac::VacationConfig cfg;
  cfg.client = GetParam().highContention ? vac::highContentionConfig()
                                         : vac::lowContentionConfig();
  cfg.client.relations = 256;  // container-scale
  cfg.tableKind = GetParam().kind;
  cfg.threads = 4;
  cfg.transactions = 2000;
  const auto result = vac::runVacation(cfg);
  EXPECT_TRUE(result.consistent) << result.consistencyError;
  EXPECT_GT(result.seconds, 0.0);
  const auto total = result.clientStats.makeReservation +
                     result.clientStats.deleteCustomer +
                     result.clientStats.updateTables;
  EXPECT_EQ(total, 2000u);
  // The action mix should roughly match the configured user percentage.
  const double userPct = 100.0 * result.clientStats.makeReservation / total;
  EXPECT_NEAR(userPct, cfg.client.userTransactionPercent, 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, VacationAppTest,
    ::testing::Values(AppCase{trees::MapKind::RBTree, false},
                      AppCase{trees::MapKind::RBTree, true},
                      AppCase{trees::MapKind::OptSFTree, false},
                      AppCase{trees::MapKind::OptSFTree, true},
                      AppCase{trees::MapKind::NRTree, true},
                      AppCase{trees::MapKind::AVLTree, true}),
    [](const ::testing::TestParamInfo<AppCase>& info) {
      std::string name = trees::mapKindName(info.param.kind);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + (info.param.highContention ? "_high" : "_low");
    });

}  // namespace
