// Red-black tree invariants (BST order, red-red freedom, black-height
// balance, parent consistency) under sequential and concurrent workloads.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "bench_core/rng.hpp"
#include "trees/rbtree.hpp"
#include "trees/tree_checks.hpp"

namespace trees = sftree::trees;
using sftree::Key;
using sftree::bench::Rng;
using trees::RBTree;

namespace {

void expectValid(RBTree& tree) {
  const auto check = trees::checkRBTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(RBTreeInvariantTest, EmptyTreeIsValid) {
  RBTree tree;
  expectValid(tree);
}

TEST(RBTreeInvariantTest, AscendingInsertionStaysBalanced) {
  RBTree tree;
  constexpr Key kN = 2048;
  for (Key k = 0; k < kN; ++k) ASSERT_TRUE(tree.insert(k, k));
  expectValid(tree);
  // Red-black height bound: 2*log2(n+1).
  EXPECT_LE(tree.height(), 2 * 12);
}

TEST(RBTreeInvariantTest, DescendingInsertionStaysBalanced) {
  RBTree tree;
  for (Key k = 2047; k >= 0; --k) ASSERT_TRUE(tree.insert(k, k));
  expectValid(tree);
  EXPECT_LE(tree.height(), 2 * 12);
}

TEST(RBTreeInvariantTest, InvariantHoldsAfterEveryEraseBatch) {
  RBTree tree;
  std::set<Key> reference;
  Rng rng(42);
  for (int i = 0; i < 1024; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(4096));
    if (tree.insert(k, k)) reference.insert(k);
  }
  expectValid(tree);
  int batch = 0;
  for (auto it = reference.begin(); it != reference.end();) {
    ASSERT_TRUE(tree.erase(*it));
    it = reference.erase(it);
    if (++batch % 64 == 0) expectValid(tree);
  }
  expectValid(tree);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(RBTreeInvariantTest, DeleteWithTwoChildrenCases) {
  // Exercise the successor-transplant path specifically: delete interior
  // nodes whose successor is (a) the right child, (b) deeper in the right
  // subtree.
  RBTree tree;
  for (Key k : {50, 25, 75, 12, 37, 62, 87, 31, 43}) tree.insert(k, k);
  expectValid(tree);
  ASSERT_TRUE(tree.erase(25));  // successor 31 deep in right subtree
  expectValid(tree);
  ASSERT_TRUE(tree.erase(75));  // successor 87 is the right child
  expectValid(tree);
  EXPECT_EQ(tree.keysInOrder(), (std::vector<Key>{12, 31, 37, 43, 50, 62, 87}));
}

TEST(RBTreeInvariantTest, MixedFuzzKeepsInvariants) {
  RBTree tree;
  std::set<Key> reference;
  Rng rng(777);
  for (int i = 0; i < 8000; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(512));
    if (rng.nextBool()) {
      ASSERT_EQ(tree.insert(k, k), reference.insert(k).second);
    } else {
      ASSERT_EQ(tree.erase(k), reference.erase(k) > 0);
    }
    if (i % 500 == 0) expectValid(tree);
  }
  expectValid(tree);
  std::vector<Key> expect(reference.begin(), reference.end());
  EXPECT_EQ(tree.keysInOrder(), expect);
}

TEST(RBTreeInvariantTest, ConcurrentChurnEndsValid) {
  RBTree tree;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + t);
      for (int i = 0; i < 5000; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(1024));
        if (rng.nextBool()) {
          tree.insert(k, k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  expectValid(tree);
}

}  // namespace
