// Single-threaded semantics of the STM: commit/abort, buffering,
// read-after-write, nesting, field codecs, statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "stm/stm.hpp"

namespace stm = sftree::stm;

namespace {

struct LockModeCase {
  stm::LockMode mode;
  stm::TmBackend backend;
  const char* name;
};

class StmBasicTest : public ::testing::TestWithParam<LockModeCase> {
 protected:
  void SetUp() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = GetParam().mode;
    cfg.backend = GetParam().backend;
    stm::defaultDomain().setConfig(cfg);
  }
  void TearDown() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = stm::LockMode::Lazy;
    cfg.backend = stm::TmBackend::Orec;
    stm::defaultDomain().setConfig(cfg);
  }
};

TEST_P(StmBasicTest, CommitPublishesWrite) {
  stm::TxField<std::int64_t> x(0);
  stm::atomically([&](stm::Tx& tx) { x.write(tx, 42); });
  const auto got = stm::atomically([&](stm::Tx& tx) { return x.read(tx); });
  EXPECT_EQ(got, 42);
}

TEST_P(StmBasicTest, ReadAfterWriteSeesBufferedValue) {
  stm::TxField<std::int64_t> x(1);
  stm::atomically([&](stm::Tx& tx) {
    x.write(tx, 7);
    EXPECT_EQ(x.read(tx), 7);
    x.write(tx, 9);
    EXPECT_EQ(x.read(tx), 9);
  });
  EXPECT_EQ(x.loadRelaxed(), 9);
}

TEST_P(StmBasicTest, UreadSeesBufferedOwnWrite) {
  stm::TxField<std::int64_t> x(1);
  stm::atomically([&](stm::Tx& tx) {
    x.write(tx, 5);
    EXPECT_EQ(x.uread(tx), 5);
  });
}

TEST_P(StmBasicTest, AbortDiscardsWrites) {
  stm::TxField<std::int64_t> x(10);
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    if (attempts == 1) {
      x.write(tx, 99);
      tx.restart();  // user-requested retry: first attempt must not publish
    }
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(x.loadRelaxed(), 10);
}

TEST_P(StmBasicTest, ReturnsValueFromLambda) {
  stm::TxField<std::int64_t> x(21);
  const auto doubled =
      stm::atomically([&](stm::Tx& tx) { return 2 * x.read(tx); });
  EXPECT_EQ(doubled, 42);
}

TEST_P(StmBasicTest, FlatNestingComposesIntoOneTransaction) {
  stm::TxField<std::int64_t> a(0);
  stm::TxField<std::int64_t> b(0);
  int outerAttempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++outerAttempts;
    stm::atomically([&](stm::Tx& inner) { a.write(inner, 1); });
    // The inner transaction must not have committed independently.
    EXPECT_EQ(a.loadRelaxed(), 0);
    stm::atomically([&](stm::Tx& inner) { b.write(inner, 2); });
    if (outerAttempts == 1) tx.restart();
  });
  EXPECT_EQ(outerAttempts, 2);
  EXPECT_EQ(a.loadRelaxed(), 1);
  EXPECT_EQ(b.loadRelaxed(), 2);
}

TEST_P(StmBasicTest, NestedAbortRollsBackWholeComposition) {
  stm::TxField<std::int64_t> a(0);
  int attempts = 0;
  stm::atomically([&](stm::Tx&) {
    ++attempts;
    stm::atomically([&](stm::Tx& inner) {
      a.write(inner, attempts);
      if (attempts == 1) inner.restart();
    });
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(a.loadRelaxed(), 2);
}

TEST_P(StmBasicTest, PointerFieldRoundTrips) {
  int dummy = 0;
  stm::TxField<int*> p(nullptr);
  stm::atomically([&](stm::Tx& tx) {
    EXPECT_EQ(p.read(tx), nullptr);
    p.write(tx, &dummy);
  });
  EXPECT_EQ(stm::atomically([&](stm::Tx& tx) { return p.read(tx); }), &dummy);
}

TEST_P(StmBasicTest, BoolFieldRoundTrips) {
  stm::TxField<bool> f(false);
  stm::atomically([&](stm::Tx& tx) { f.write(tx, true); });
  EXPECT_TRUE(stm::atomically([&](stm::Tx& tx) { return f.read(tx); }));
}

enum class Flag : std::uint8_t { No, Yes, ByLeftRot };

TEST_P(StmBasicTest, EnumFieldRoundTrips) {
  stm::TxField<Flag> f(Flag::No);
  stm::atomically([&](stm::Tx& tx) { f.write(tx, Flag::ByLeftRot); });
  EXPECT_EQ(stm::atomically([&](stm::Tx& tx) { return f.read(tx); }),
            Flag::ByLeftRot);
}

TEST_P(StmBasicTest, NegativeIntegersSurviveCodec) {
  stm::TxField<std::int64_t> x(-5);
  EXPECT_EQ(stm::atomically([&](stm::Tx& tx) { return x.read(tx); }), -5);
  stm::atomically([&](stm::Tx& tx) { x.write(tx, -123456789); });
  EXPECT_EQ(x.loadRelaxed(), -123456789);
}

TEST_P(StmBasicTest, StatsCountCommitsAndAborts) {
  stm::threadStats().reset();
  stm::TxField<std::int64_t> x(0);
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    x.write(tx, attempts);
    if (attempts < 3) tx.restart();
  });
  const auto& s = stm::threadStats();
  EXPECT_EQ(s.aborts, 2u);
  EXPECT_GE(s.commits, 1u);
  // The abort-cause taxonomy partitions the legacy counter exactly, and
  // tx.restart() is attributed to the user_restart cause.
  EXPECT_EQ(s.conflictAbortTotal(), s.aborts);
  EXPECT_EQ(s.abortsFor(sftree::obs::AbortCause::kUserRestart), 2u);
}

TEST_P(StmBasicTest, OperationBracketAccumulatesReadsAcrossRetries) {
  stm::threadStats().reset();
  stm::TxField<std::int64_t> x(0);
  auto& stats = stm::threadStats();
  stats.beginOp();
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    (void)x.read(tx);
    if (attempts == 1) tx.restart();
  });
  stats.endOp();
  // One read per attempt, two attempts.
  EXPECT_EQ(stats.maxOpReads, 2u);
  EXPECT_EQ(stats.ops, 1u);
}

TEST_P(StmBasicTest, UreadsAreNotCountedAsTransactionalReads) {
  stm::threadStats().reset();
  stm::TxField<std::int64_t> x(0);
  auto& stats = stm::threadStats();
  stats.beginOp();
  stm::atomically([&](stm::Tx& tx) {
    (void)x.uread(tx);
    (void)x.uread(tx);
    (void)x.read(tx);
  });
  stats.endOp();
  EXPECT_EQ(stats.maxOpReads, 1u);
  EXPECT_EQ(stats.ureads, 2u);
}

TEST_P(StmBasicTest, ManySequentialTransactions) {
  stm::TxField<std::int64_t> x(0);
  for (int i = 0; i < 1000; ++i) {
    stm::atomically([&](stm::Tx& tx) { x.write(tx, x.read(tx) + 1); });
  }
  EXPECT_EQ(x.loadRelaxed(), 1000);
}

TEST_P(StmBasicTest, WritesToManyFieldsCommitAtomically) {
  constexpr int kFields = 100;
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (int i = 0; i < kFields; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(0));
  }
  stm::atomically([&](stm::Tx& tx) {
    for (int i = 0; i < kFields; ++i) fields[i]->write(tx, i);
  });
  for (int i = 0; i < kFields; ++i) EXPECT_EQ(fields[i]->loadRelaxed(), i);
}

TEST_P(StmBasicTest, InTransactionReflectsState) {
  EXPECT_FALSE(stm::inTransaction());
  stm::atomically([&](stm::Tx&) { EXPECT_TRUE(stm::inTransaction()); });
  EXPECT_FALSE(stm::inTransaction());
}

INSTANTIATE_TEST_SUITE_P(
    LockModes, StmBasicTest,
    ::testing::Values(
        LockModeCase{stm::LockMode::Lazy, stm::TmBackend::Orec, "ctl"},
        LockModeCase{stm::LockMode::Eager, stm::TmBackend::Orec, "etl"},
        LockModeCase{stm::LockMode::Lazy, stm::TmBackend::NOrec, "norec"}),
    [](const ::testing::TestParamInfo<LockModeCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
