// Observability core: log2-bucket histograms (buckets, percentiles, merge),
// the commit-event trace ring (wraparound, spans, concurrent dump), the
// MetricsRegistry (RAII registration, exporters, collection while mutators
// run), and the periodic StatsReporter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/abort_cause.hpp"
#include "obs/clock.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stm/stm.hpp"

namespace obs = sftree::obs;
namespace stm = sftree::stm;

namespace {

// --- abort-cause taxonomy metadata -----------------------------------------

TEST(AbortCauseTest, NamesAndRestartBand) {
  EXPECT_STREQ(obs::abortCauseName(obs::AbortCause::kReadValidation),
               "read_validation");
  EXPECT_STREQ(obs::abortCauseName(obs::AbortCause::kRoPromotion),
               "ro_promotion");
  for (std::size_t i = 0; i < obs::kAbortCauseCount; ++i) {
    EXPECT_NE(std::string(obs::abortCauseName(i)), "");
    EXPECT_EQ(obs::abortCauseIsRestart(static_cast<obs::AbortCause>(i)),
              i >= obs::kFirstRestartCause);
  }
}

// --- LogHistogram -----------------------------------------------------------

TEST(LogHistogramTest, BucketBoundaries) {
  // Bucket 0 = {0}; bucket b >= 1 covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::LogHistogram::bucketOf(0), 0u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(1), 1u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(2), 2u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(3), 2u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(4), 3u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(1023), 10u);
  EXPECT_EQ(obs::LogHistogram::bucketOf(1024), 11u);
  // The top bucket index is clamped at record() time.
  EXPECT_GE(obs::LogHistogram::bucketOf(~std::uint64_t{0}),
            obs::LogHistogram::kBucketCount - 1);
  EXPECT_EQ(obs::LogHistogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(obs::LogHistogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(obs::LogHistogram::bucketUpperBound(10), 1023u);
}

TEST(LogHistogramTest, CountSumMaxMean) {
  obs::LogHistogram h;
  for (std::uint64_t v : {5u, 10u, 100u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1115u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1115.0 / 4.0);
}

TEST(LogHistogramTest, QuantilesAreBucketAccurate) {
  obs::LogHistogram h;
  // 100 samples at ~16 (bucket [16,31]), 10 at ~1024 (bucket [1024,2047]).
  for (int i = 0; i < 100; ++i) h.record(16);
  for (int i = 0; i < 10; ++i) h.record(1024);
  // p50 lands in the low bucket, p99 in the tail bucket.
  EXPECT_GE(h.p50(), 16.0);
  EXPECT_LE(h.p50(), 31.0);
  EXPECT_GE(h.p99(), 1024.0);
  // The quantile estimate is clamped by the recorded max.
  EXPECT_LE(h.p99(), 1024.0 + 1e-9);
  EXPECT_LE(h.quantile(1.0), static_cast<double>(h.max()) + 1e-9);
}

TEST(LogHistogramTest, MergePreservesTotalsAndMax) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  for (int i = 0; i < 50; ++i) a.record(8);
  for (int i = 0; i < 50; ++i) b.record(2048);
  b.record(1u << 20);
  obs::LogHistogram merged = a;
  merged += b;
  EXPECT_EQ(merged.count(), a.count() + b.count());
  EXPECT_EQ(merged.sum(), a.sum() + b.sum());
  EXPECT_EQ(merged.max(), 1u << 20);
  EXPECT_GE(merged.p95(), 2048.0);
}

TEST(LogHistogramTest, ResetClears) {
  obs::LogHistogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogramTest, ConcurrentSnapshotWhileRecording) {
  // Single-writer discipline: one recorder, concurrent snapshot readers.
  obs::LogHistogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      h.record(v = (v * 2862933555777941757ULL + 3037000493ULL) >> 32);
    }
  });
  for (int i = 0; i < 1000; ++i) {
    const obs::LogHistogram snap = h.snapshot();
    EXPECT_LE(snap.count(), h.snapshot().count());
  }
  stop.store(true);
  writer.join();
}

// --- trace ring -------------------------------------------------------------

TEST(TraceTest, DisabledEmitsNothing) {
  obs::traceDisable();
  obs::trace(obs::TraceKind::kMapOp, 1, 2);
  EXPECT_FALSE(obs::traceEnabled());
}

TEST(TraceTest, RecordsCarryPayloadAndMergeInTimestampOrder) {
  obs::traceEnable();
  obs::trace(obs::TraceKind::kTablePublish, 7, 3);
  obs::trace(obs::TraceKind::kMigrationBatch, 64, 7, 0, 0);
  obs::trace(obs::TraceKind::kTxAbort, 0, 0,
             static_cast<std::uint8_t>(
                 obs::abortCauseIndex(obs::AbortCause::kLockConflict)),
             0);
  const auto recs = obs::dumpTrace();
  obs::traceDisable();
  ASSERT_GE(recs.size(), 3u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].ns, recs[i].ns);
  }
  bool sawPublish = false;
  bool sawAbort = false;
  for (const auto& r : recs) {
    if (r.kind == obs::TraceKind::kTablePublish && r.a == 7 && r.b == 3) {
      sawPublish = true;
    }
    if (r.kind == obs::TraceKind::kTxAbort &&
        r.cause == obs::abortCauseIndex(obs::AbortCause::kLockConflict)) {
      sawAbort = true;
    }
  }
  EXPECT_TRUE(sawPublish);
  EXPECT_TRUE(sawAbort);
  // Human-readable rendering mentions the kind and the cause name.
  std::ostringstream os;
  for (const auto& r : recs) os << obs::formatTraceRecord(r) << "\n";
  EXPECT_NE(os.str().find("table_publish"), std::string::npos);
  EXPECT_NE(os.str().find("lock_conflict"), std::string::npos);
}

TEST(TraceTest, EnableStartsAFreshSpan) {
  obs::traceEnable();
  obs::trace(obs::TraceKind::kMapOp, 111, 0);
  obs::traceDisable();
  obs::traceEnable();  // new span: the old record must not reappear
  obs::trace(obs::TraceKind::kMapOp, 222, 0);
  const auto recs = obs::dumpTrace();
  obs::traceDisable();
  for (const auto& r : recs) {
    if (r.kind == obs::TraceKind::kMapOp) EXPECT_NE(r.a, 111u);
  }
}

TEST(TraceTest, DumpAfterDisableStillReturnsLastSpan) {
  obs::traceEnable();
  obs::trace(obs::TraceKind::kMaintPass, 5, 500);
  obs::traceDisable();
  const auto recs = obs::dumpTrace();  // post-mortem use case
  bool found = false;
  for (const auto& r : recs) {
    if (r.kind == obs::TraceKind::kMaintPass && r.a == 5) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, WraparoundKeepsLatestRecords) {
  obs::traceEnable();
  const std::size_t cap = obs::traceRingCapacity();
  for (std::size_t i = 0; i < cap + 100; ++i) {
    obs::trace(obs::TraceKind::kMapOp, /*a=*/i, 0);
  }
  const auto recs = obs::dumpTrace();
  obs::traceDisable();
  // The ring holds the newest `cap` records; the first 100 were overwritten.
  std::uint64_t minA = ~std::uint64_t{0};
  std::uint64_t maxA = 0;
  std::size_t mapOps = 0;
  for (const auto& r : recs) {
    if (r.kind != obs::TraceKind::kMapOp) continue;
    ++mapOps;
    minA = std::min(minA, r.a);
    maxA = std::max(maxA, r.a);
  }
  EXPECT_LE(mapOps, cap);
  EXPECT_EQ(maxA, cap + 99);
  EXPECT_GE(minA, 100u);
}

TEST(TraceTest, ConcurrentEmitAndDump) {
  // Writers hammer their rings while a reader dumps: the per-slot seqlock
  // must keep this data-race-free (TSan job runs this suite) and the dump
  // must only ever see whole records.
  obs::traceEnable();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Payload invariant per record: b == a + 1 (torn reads would break
        // it).
        obs::trace(obs::TraceKind::kMapOp, i, i + 1, 0,
                   static_cast<std::uint16_t>(t));
        ++i;
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const auto recs = obs::dumpTrace();
    for (const auto& r : recs) {
      if (r.kind == obs::TraceKind::kMapOp) EXPECT_EQ(r.b, r.a + 1);
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  obs::traceDisable();
}

TEST(TraceTest, TxLifecycleEventsAreTraced) {
  obs::traceEnable();
  stm::Domain dom;
  stm::TxField<std::int64_t> x(0);
  int attempts = 0;
  stm::atomically(dom, [&](stm::Tx& tx) {
    ++attempts;
    x.write(tx, 1);
    if (attempts == 1) tx.restart();
  });
  const auto recs = obs::dumpTrace();
  obs::traceDisable();
  bool sawCommit = false;
  bool sawAbort = false;
  for (const auto& r : recs) {
    // Lifecycle records carry the attempt count in `b`.
    if (r.kind == obs::TraceKind::kTxCommit && r.b == 2) sawCommit = true;
    if (r.kind == obs::TraceKind::kTxAbort && r.b == 1 &&
        r.cause == obs::abortCauseIndex(obs::AbortCause::kUserRestart)) {
      sawAbort = true;
    }
  }
  EXPECT_TRUE(sawCommit);
  EXPECT_TRUE(sawAbort);
}

// --- tx latency histograms --------------------------------------------------

TEST(TxTimingTest, CommitAndAbortDurationsAreRecorded) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(0);
  auto& st = stm::threadStats(dom);
  st.reset();
  ASSERT_TRUE(obs::txTimingEnabled());  // always-on default
  // Mask 0 times every attempt so the counts below are exact (the shipping
  // default samples 1-in-8).
  const std::uint32_t prevMask = obs::txTimingSampleMask();
  obs::setTxTimingSampleMask(0);
  int attempts = 0;
  stm::atomically(dom, [&](stm::Tx& tx) {
    ++attempts;
    x.write(tx, attempts);
    if (attempts == 1) tx.restart();
  });
  obs::setTxTimingSampleMask(prevMask);
  EXPECT_EQ(st.txCommitNs.count(), 1u);
  EXPECT_EQ(st.txAbortNs.count(), 1u);
}

TEST(TxTimingTest, DisabledTimingRecordsNothing) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(0);
  auto& st = stm::threadStats(dom);
  st.reset();
  const std::uint32_t prevMask = obs::txTimingSampleMask();
  obs::setTxTimingSampleMask(0);
  obs::setTxTimingEnabled(false);
  stm::atomically(dom, [&](stm::Tx& tx) { x.write(tx, 1); });
  obs::setTxTimingEnabled(true);
  obs::setTxTimingSampleMask(prevMask);
  EXPECT_EQ(st.txCommitNs.count(), 0u);
}

TEST(TxTimingTest, SampledTimingRecordsRoughlyOneInPeriod) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(0);
  auto& st = stm::threadStats(dom);
  st.reset();
  ASSERT_EQ(obs::txTimingSampleMask(), obs::kDefaultTxTimingSampleMask);
  constexpr int kTxs = 800;
  for (int i = 0; i < kTxs; ++i) {
    stm::atomically(dom, [&](stm::Tx& tx) { x.write(tx, i); });
  }
  // One attempt per tx, 1-in-8 sampling; the round-robin phase gives at
  // most one sample of slack.
  const std::uint64_t expected =
      kTxs / (obs::kDefaultTxTimingSampleMask + 1);
  EXPECT_GE(st.txCommitNs.count(), expected - 1);
  EXPECT_LE(st.txCommitNs.count(), expected + 1);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, RegistrationIsRaii) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.sourceCount(), 0u);
  {
    const auto r1 = reg.add("a", [](obs::MetricSink& out) {
      out.counter("ops", 1);
    });
    EXPECT_EQ(reg.sourceCount(), 1u);
    {
      const auto r2 = reg.add("b", [](obs::MetricSink& out) {
        out.gauge("depth", 2.5);
      });
      EXPECT_EQ(reg.sourceCount(), 2u);
    }
    EXPECT_EQ(reg.sourceCount(), 1u);
  }
  EXPECT_EQ(reg.sourceCount(), 0u);
}

TEST(MetricsRegistryTest, ExportersRenderAllKinds) {
  obs::MetricsRegistry reg;
  const auto r = reg.add("tree", [](obs::MetricSink& out) {
    out.counter("commits", 42);
    out.gauge("abort_ratio", 0.125);
    obs::LogHistogram h;
    h.record(100);
    h.record(200);
    out.histogram("latency_ns", h);
  });

  const std::string text = reg.renderText();
  EXPECT_NE(text.find("tree.commits"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("tree.latency_ns.p99"), std::string::npos);

  const std::string json = reg.renderJson();
  EXPECT_NE(json.find("\"tree.commits\":42"), std::string::npos);
  EXPECT_NE(json.find("\"tree.abort_ratio\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"tree.latency_ns.count\":2"), std::string::npos);

  const std::string prom = reg.renderPrometheus();
  EXPECT_NE(prom.find("# TYPE tree_commits counter"), std::string::npos);
  EXPECT_NE(prom.find("tree_latency_ns_bucket{le="), std::string::npos);
  EXPECT_NE(prom.find("tree_latency_ns_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectWhileMutatorsRun) {
  // A live SFTree-backed domain source collected concurrently with running
  // transactions: callbacks read concurrency-safe snapshots, so this must
  // be clean under TSan.
  stm::Domain dom;
  stm::TxField<std::int64_t> fields[4];  // default-constructed to 0
  obs::MetricsRegistry reg;
  const auto r = reg.add("stm", [&dom](obs::MetricSink& out) {
    const auto s = dom.aggregateStats();
    out.counter("commits", s.commits);
    out.counter("aborts", s.aborts);
    out.histogram("tx_commit_ns", s.txCommitNs);
  });
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        stm::atomically(dom, [&](stm::Tx& tx) {
          fields[0].write(tx, fields[1].read(tx) + 1);
          fields[2].write(tx, fields[3].read(tx) + 1);
        });
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const auto metrics = reg.collect();
    ASSERT_EQ(metrics.size(), 3u);
  }
  stop.store(true);
  for (auto& w : workers) w.join();
}

TEST(StatsReporterTest, EmitsJsonLines) {
  obs::MetricsRegistry reg;
  const auto r = reg.add("x", [](obs::MetricSink& out) {
    out.counter("n", 7);
  });
  std::ostringstream os;
  {
    obs::StatsReporter reporter(reg, os, /*periodMs=*/5);
    while (reporter.linesEmitted() == 0) std::this_thread::yield();
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(out.find("\"x.n\":7"), std::string::npos);
  // Every line is one JSON object.
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

// --- CI trace artifact ------------------------------------------------------

// When SFTREE_TRACE_DUMP is set (the CI TSan job does), write the merged
// trace to that path at teardown so a failing run leaves a forensics
// artifact behind.
class TraceDumpEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* path = std::getenv("SFTREE_TRACE_DUMP");
    if (path == nullptr || *path == '\0') return;
    std::ofstream os(path);
    if (os) obs::dumpTrace(os);
  }
};

const ::testing::Environment* const kTraceDumpEnv =
    ::testing::AddGlobalTestEnvironment(new TraceDumpEnvironment);

}  // namespace
