// Cross-domain transactions: a transaction rooted in one stm::Domain that
// joins others mid-flight must stay atomic and opaque — most importantly
// the sharded map's cross-shard move() with per-shard clock domains, where
// concurrent movers and observers must never see a key in zero or two
// shards. Exercised for both the orec and the NOrec backend and run under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <map>
#include <thread>
#include <vector>

#include "bench_core/rng.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"
#include "stm/stm.hpp"

namespace shard = sftree::shard;
namespace stm = sftree::stm;
using sftree::Key;
using sftree::Value;
using sftree::bench::Rng;

namespace {

// --- STM-level semantics ----------------------------------------------------

TEST(CrossDomainTxTest, NestedScopeJoinsSecondDomain) {
  stm::Domain a;
  stm::Domain b;
  stm::TxField<std::int64_t> xa(1);
  stm::TxField<std::int64_t> xb(2);

  const auto sum = stm::atomically(a, [&](stm::Tx& tx) {
    const auto va = xa.read(tx);
    const auto vb = stm::atomically(b, [&](stm::Tx& inner) {
      // Flat nesting: same descriptor, second domain joined.
      EXPECT_EQ(&inner, &tx);
      EXPECT_EQ(&inner.currentDomain(), &b);
      return xb.read(inner);
    });
    EXPECT_EQ(&tx.currentDomain(), &a);
    EXPECT_EQ(&tx.rootDomain(), &a);
    return va + vb;
  });
  EXPECT_EQ(sum, 3);
}

TEST(CrossDomainTxTest, WritesToTwoDomainsCommitTogether) {
  stm::Domain a;
  stm::Domain b;
  stm::TxField<std::int64_t> xa(0);
  stm::TxField<std::int64_t> xb(0);

  stm::atomically(a, [&](stm::Tx& tx) {
    xa.write(tx, 7);
    stm::atomically(b, [&](stm::Tx&) { xb.write(tx, 8); });
  });
  EXPECT_EQ(xa.loadRelaxed(), 7);
  EXPECT_EQ(xb.loadRelaxed(), 8);
  // Exactly one writing commit was recorded on each clock.
  EXPECT_EQ(a.clock().now(), 1u);
  EXPECT_EQ(b.clock().now(), 1u);
}

TEST(CrossDomainTxTest, AbortRollsBackBothDomains) {
  stm::Domain a;
  stm::Domain b;
  stm::TxField<std::int64_t> xa(1);
  stm::TxField<std::int64_t> xb(2);
  int attempts = 0;

  stm::atomically(a, [&](stm::Tx& tx) {
    xa.write(tx, 100);
    stm::atomically(b, [&](stm::Tx&) { xb.write(tx, 200); });
    if (++attempts == 1) tx.restart();
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(xa.loadRelaxed(), 100);
  EXPECT_EQ(xb.loadRelaxed(), 200);
}

// Two counters in different domains are incremented together; transactional
// readers spanning both domains must always see them equal. This is the
// core opacity property the multi-domain commit has to provide (a reader
// that misses the B half after seeing the A half would report a skew).
void runTwoDomainAtomicityStress(stm::Config cfg) {
  stm::Domain a(cfg);
  stm::Domain b(cfg);
  stm::TxField<std::int64_t> xa(0);
  stm::TxField<std::int64_t> xb(0);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};

  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 8000; ++i) {
      stm::atomically(a, [&](stm::Tx& tx) {
        xa.write(tx, i);
        stm::atomically(b, [&](stm::Tx&) { xb.write(tx, i); });
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto [va, vb] = stm::atomically(b, [&](stm::Tx& tx) {
          // Root in b, join a — the reverse orientation of the writer, so
          // the canonical lock ordering is exercised from both sides.
          const auto vb2 = xb.read(tx);
          const auto va2 =
              stm::atomically(a, [&](stm::Tx&) { return xa.read(tx); });
          return std::pair{va2, vb2};
        });
        if (va != vb) anomalies.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST(CrossDomainTxTest, TwoDomainSnapshotsAreConsistentOrec) {
  runTwoDomainAtomicityStress(stm::Config{});
}

TEST(CrossDomainTxTest, TwoDomainSnapshotsAreConsistentEager) {
  stm::Config cfg;
  cfg.lockMode = stm::LockMode::Eager;
  runTwoDomainAtomicityStress(cfg);
}

TEST(CrossDomainTxTest, TwoDomainSnapshotsAreConsistentNOrec) {
  stm::Config cfg;
  cfg.backend = stm::TmBackend::NOrec;
  runTwoDomainAtomicityStress(cfg);
}

// Concurrent writers rooted in opposite domains: the ordered acquisition
// must neither deadlock nor lose increments.
TEST(CrossDomainTxTest, OpposingWritersMakeProgress) {
  for (const auto backend : {stm::TmBackend::Orec, stm::TmBackend::NOrec}) {
    stm::Config cfg;
    cfg.backend = backend;
    stm::Domain a(cfg);
    stm::Domain b(cfg);
    stm::TxField<std::int64_t> xa(0);
    stm::TxField<std::int64_t> xb(0);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Each address is always attributed to the same domain (xa -> a,
        // xb -> b); only the transaction's *root* differs per parity, so
        // the canonical acquisition order is exercised from both sides.
        stm::Domain& root = (t % 2 == 0) ? a : b;
        for (int i = 0; i < kPerThread; ++i) {
          stm::atomically(root, [&](stm::Tx& tx) {
            {
              stm::DomainScope sa(tx, a);
              xa.write(tx, xa.read(tx) + 1);
            }
            {
              stm::DomainScope sb(tx, b);
              xb.write(tx, xb.read(tx) + 1);
            }
          });
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(xa.loadRelaxed(), kThreads * kPerThread);
    EXPECT_EQ(xb.loadRelaxed(), kThreads * kPerThread);
  }
}

// --- ShardedMap with per-shard domains --------------------------------------

// Tokens bounce between random slots of a per-shard-domain map while
// observers count them in one cross-domain snapshot; the count is invariant
// under move, so any deviation means a key was visible in zero or two
// shards.
void runCrossShardMoveStress(stm::Config stmCfg) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  cfg.domainMode = shard::DomainMode::PerShard;
  cfg.stmConfig = stmCfg;
  shard::ShardedMap map(cfg);
  ASSERT_TRUE(map.perShardDomains());
  ASSERT_EQ(map.domains().size(), 4u);

  constexpr Key kRange = 256;
  constexpr int kTokens = 64;
  for (Key k = 0; k < kTokens; ++k) ASSERT_TRUE(map.insert(k, 1'000 + k));

  constexpr int kMovers = 2;
  constexpr int kMovesPerThread = 10'000;
  std::atomic<bool> stop{false};
  std::atomic<int> snapshotViolations{0};
  std::atomic<int> pairViolations{0};

  // Observer 1: whole-map snapshot (joins every shard domain).
  std::thread counter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t seen = map.countRange(0, kRange - 1);
      if (seen != kTokens) snapshotViolations.fetch_add(1);
    }
  });
  // Observer 2: per-pair probes — for a random (from, to) pair the key
  // count in {from, to} read in one transaction can be 0, 1 or 2 slots
  // *occupied*, but a single token mid-move must never appear at both or
  // at neither of the two keys it is moving between. We approximate by
  // checking that two distinct keys never hold the same token value.
  std::thread prober([&] {
    Rng rng(31337);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k1 = static_cast<Key>(rng.nextBounded(kRange));
      const Key k2 = static_cast<Key>(rng.nextBounded(kRange));
      if (k1 == k2) continue;
      const auto [v1, v2] =
          stm::atomically(map.domainOf(map.shardIndexFor(k1)),
                          [&](stm::Tx& tx) {
                            return std::pair{map.getTx(tx, k1),
                                             map.getTx(tx, k2)};
                          });
      if (v1 && v2 && *v1 == *v2) pairViolations.fetch_add(1);
    }
  });

  std::barrier sync(kMovers);
  std::vector<std::thread> movers;
  for (int t = 0; t < kMovers; ++t) {
    movers.emplace_back([&, t] {
      Rng rng(777 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < kMovesPerThread; ++i) {
        const Key from = static_cast<Key>(rng.nextBounded(kRange));
        const Key to = static_cast<Key>(rng.nextBounded(kRange));
        map.move(from, to);
      }
    });
  }
  for (auto& th : movers) th.join();
  stop.store(true, std::memory_order_release);
  counter.join();
  prober.join();

  EXPECT_EQ(snapshotViolations.load(), 0)
      << "a cross-domain snapshot saw a moved key at both shards or neither";
  EXPECT_EQ(pairViolations.load(), 0)
      << "a token was observed at two keys simultaneously";

  map.quiesce();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kTokens));
  EXPECT_EQ(map.sizeEstimate(), kTokens);

  // Every token value survives exactly once (moves never duplicate or drop
  // a payload).
  std::vector<Value> values;
  for (const Key k : map.keysInOrder()) {
    const auto v = map.get(k);
    ASSERT_TRUE(v.has_value());
    values.push_back(*v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(values.size(), static_cast<std::size_t>(kTokens));
  for (int i = 0; i < kTokens; ++i) EXPECT_EQ(values[i], 1'000 + i);

  // The per-domain stats plumbing reports one entry per shard and real
  // traffic on each clock.
  const auto stats = map.aggregatedStats();
  ASSERT_EQ(stats.domainStats.size(), 4u);
  std::uint64_t commits = 0;
  for (const auto& d : stats.domainStats) commits += d.commits;
  EXPECT_GT(commits, 0u);
  EXPECT_EQ(stats.stm.commits, commits);
}

TEST(CrossDomainMoveTest, MoveAtomicUnderConcurrencyOrec) {
  runCrossShardMoveStress(stm::Config{});
}

TEST(CrossDomainMoveTest, MoveAtomicUnderConcurrencyNOrec) {
  stm::Config cfg;
  cfg.backend = stm::TmBackend::NOrec;
  runCrossShardMoveStress(cfg);
}

// Per-shard domains against the sequential model (cross-shard moves
// included): the domain split must not change observable map semantics.
TEST(CrossDomainMoveTest, PerShardDomainsMatchSequentialModel) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 5;
  cfg.scheduler = &scheduler;
  cfg.domainMode = shard::DomainMode::PerShard;
  shard::ShardedMap map(cfg);

  std::map<Key, Value> model;
  Rng rng(4242);
  constexpr Key kRange = 512;
  for (int i = 0; i < 10'000; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(kRange));
    switch (rng.nextBounded(5)) {
      case 0: {
        const Value v = static_cast<Value>(i);
        EXPECT_EQ(map.insert(k, v), model.emplace(k, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(map.erase(k), model.erase(k) > 0);
        break;
      case 2:
        EXPECT_EQ(map.contains(k), model.count(k) > 0);
        break;
      case 3: {
        // Consistent cross-domain range count.
        const Key hi = k + static_cast<Key>(rng.nextBounded(64));
        std::size_t expect = 0;
        for (auto it = model.lower_bound(k);
             it != model.end() && it->first <= hi; ++it) {
          ++expect;
        }
        EXPECT_EQ(map.countRange(k, hi), expect);
        break;
      }
      default: {
        const Key to = static_cast<Key>(rng.nextBounded(kRange));
        bool expect = false;
        auto it = model.find(k);
        if (it != model.end() && model.count(to) == 0 && k != to) {
          const Value v = it->second;
          model.erase(it);
          model.emplace(to, v);
          expect = true;
        }
        EXPECT_EQ(map.move(k, to), expect) << "move " << k << "->" << to;
        break;
      }
    }
  }
  map.quiesce();
  std::vector<Key> expectKeys;
  for (const auto& [k, v] : model) expectKeys.push_back(k);
  EXPECT_EQ(map.keysInOrder(), expectKeys);
  EXPECT_EQ(map.size(), model.size());
}

}  // namespace
