// Whole-library integration stress: several structures of different kinds
// live in one process and are exercised simultaneously — trees with and
// without maintenance threads, a transactional list, cross-structure
// transactions, and range counts — then everything is validated.
//
// This is the "does it all compose" test a downstream adopter cares about:
// one global STM runtime, many independent structures, no interference.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>

#include "bench_core/rng.hpp"
#include "structures/tmlist.hpp"
#include "trees/map_interface.hpp"
#include "trees/tree_checks.hpp"

namespace trees = sftree::trees;
namespace stm = sftree::stm;
using sftree::Key;
using sftree::bench::Rng;

namespace {

TEST(IntegrationStressTest, ManyStructuresOneRuntime) {
  auto optSf = trees::makeMap(trees::MapKind::OptSFTree);
  auto sf = trees::makeMap(trees::MapKind::SFTree);
  auto rb = trees::makeMap(trees::MapKind::RBTree);
  auto avl = trees::makeMap(trees::MapKind::AVLTree);
  sftree::structures::TMList list;

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr Key kRange = 512;
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> crossAnomalies{0};

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(31337 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(kRange));
        switch (rng.nextBounded(8)) {
          case 0: optSf->insert(k, k); break;
          case 1: optSf->erase(k); break;
          case 2: rb->insert(k, k); break;
          case 3: rb->erase(k); break;
          case 4: avl->insert(k, k); break;
          case 5:
            // Cross-structure transaction: transfer a key from the RB tree
            // to the SF tree atomically; an observer transaction checks the
            // "exactly one holder" invariant for the transferred marker.
            stm::atomically([&](stm::Tx& tx) {
              if (rb->containsTx(tx, kRange + 1)) {
                rb->eraseTx(tx, kRange + 1);
                sf->insertTx(tx, kRange + 1, 1);
              } else if (sf->containsTx(tx, kRange + 1)) {
                sf->eraseTx(tx, kRange + 1);
                rb->insertTx(tx, kRange + 1, 1);
              } else {
                rb->insertTx(tx, kRange + 1, 1);  // seed the marker
              }
            });
            break;
          case 6: {
            const int holders = stm::atomically([&](stm::Tx& tx) {
              return (rb->containsTx(tx, kRange + 1) ? 1 : 0) +
                     (sf->containsTx(tx, kRange + 1) ? 1 : 0);
            });
            if (holders > 1) crossAnomalies.fetch_add(1);
            break;
          }
          default:
            stm::atomically([&](stm::Tx& tx) {
              if (!list.containsTx(tx, k)) list.insertTx(tx, k, k);
            });
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(crossAnomalies.load(), 0);
  optSf->quiesce();
  sf->quiesce();

  // Every structure is individually sane afterwards.
  for (auto* m : {optSf.get(), sf.get(), rb.get(), avl.get()}) {
    const auto keys = m->keysInOrder();
    for (std::size_t i = 1; i < keys.size(); ++i) {
      ASSERT_LT(keys[i - 1], keys[i]);
    }
  }
  const auto items = list.items();
  for (std::size_t i = 1; i < items.size(); ++i) {
    ASSERT_LT(items[i - 1].first, items[i].first);
  }
}

TEST(IntegrationStressTest, RangeCountsAcrossStructuresAreConsistent) {
  // Keys are partitioned between two trees; movers shuffle keys between
  // them atomically. The combined range count, taken in one transaction,
  // must always equal the initial total.
  auto a = trees::makeMap(trees::MapKind::OptSFTree);
  auto b = trees::makeMap(trees::MapKind::RBTree);
  constexpr Key kRange = 128;
  std::size_t total = 0;
  for (Key k = 0; k < kRange; ++k) {
    a->insert(k, k);
    ++total;
  }
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};

  std::vector<std::thread> movers;
  for (int t = 0; t < 2; ++t) {
    movers.emplace_back([&, t] {
      Rng rng(7 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = static_cast<Key>(rng.nextBounded(kRange));
        stm::atomically([&](stm::Tx& tx) {
          if (a->containsTx(tx, k)) {
            a->eraseTx(tx, k);
            b->insertTx(tx, k, k);
          } else if (b->containsTx(tx, k)) {
            b->eraseTx(tx, k);
            a->insertTx(tx, k, k);
          }
        });
      }
    });
  }
  std::thread counter([&] {
    for (int i = 0; i < 200; ++i) {
      const auto n = stm::atomically([&](stm::Tx& tx) {
        return a->countRangeTx(tx, 0, kRange - 1) +
               b->countRangeTx(tx, 0, kRange - 1);
      });
      if (n != total) anomalies.fetch_add(1);
    }
    stop.store(true, std::memory_order_release);
  });
  counter.join();
  for (auto& th : movers) th.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST(IntegrationStressTest, DestructionUnderQuiescenceIsClean) {
  // Create and destroy trees repeatedly while their maintenance threads
  // run: destructor ordering (stop thread, drain limbo, free graph) must
  // not leak or crash. Run under ASan/TSan in CI configurations.
  for (int round = 0; round < 10; ++round) {
    auto map = trees::makeMap(trees::MapKind::OptSFTree);
    std::thread worker([&] {
      for (Key k = 0; k < 300; ++k) map->insert(k, k);
      for (Key k = 0; k < 300; k += 2) map->erase(k);
    });
    worker.join();
    // Destructor runs with the maintenance thread mid-flight.
  }
  SUCCEED();
}

}  // namespace
