// Benchmark-harness units: workload generator distributions, CLI parsing,
// population, and a short end-to-end throughput run.
#include <gtest/gtest.h>

#include "bench_core/cli.hpp"
#include "bench_core/harness.hpp"
#include "bench_core/report.hpp"
#include "bench_core/workload.hpp"
#include "trees/map_interface.hpp"

namespace bench = sftree::bench;
namespace trees = sftree::trees;
using sftree::Key;

namespace {

TEST(WorkloadGeneratorTest, ZeroUpdatesMeansOnlyContains) {
  bench::WorkloadConfig cfg;
  cfg.updatePercent = 0.0;
  bench::WorkloadGenerator gen(cfg, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.next().type, bench::OpType::Contains);
  }
}

TEST(WorkloadGeneratorTest, AttemptedUpdatesAreTwiceEffectiveTarget) {
  bench::WorkloadConfig cfg;
  cfg.updatePercent = 10.0;
  bench::WorkloadGenerator gen(cfg, 2);
  int updates = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const auto op = gen.next();
    if (op.type != bench::OpType::Contains) ++updates;
  }
  const double ratio = 100.0 * updates / kSamples;
  EXPECT_NEAR(ratio, 20.0, 1.0);  // 2x the 10% effective target
}

TEST(WorkloadGeneratorTest, FiftyPercentEffectiveSaturatesAttempts) {
  bench::WorkloadConfig cfg;
  cfg.updatePercent = 50.0;
  bench::WorkloadGenerator gen(cfg, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(gen.next().type, bench::OpType::Contains);
  }
}

TEST(WorkloadGeneratorTest, KeysStayInRange) {
  bench::WorkloadConfig cfg;
  cfg.keyRange = 1 << 10;
  cfg.updatePercent = 30.0;
  cfg.biased = true;
  bench::WorkloadGenerator gen(cfg, 4);
  for (int i = 0; i < 50000; ++i) {
    const auto op = gen.next();
    EXPECT_GE(op.key, 0);
    EXPECT_LT(op.key, cfg.keyRange);
  }
}

TEST(WorkloadGeneratorTest, BiasedInsertKeysDriftUpward) {
  bench::WorkloadConfig cfg;
  cfg.keyRange = 1 << 14;
  cfg.updatePercent = 50.0;
  cfg.biased = true;
  bench::WorkloadGenerator gen(cfg, 5);
  // Collect consecutive insert keys; between wraparounds they must be
  // non-decreasing (the paper's skew towards high values).
  Key last = -1;
  int increases = 0;
  int decreases = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto op = gen.next();
    if (op.type != bench::OpType::Insert) continue;
    if (last >= 0) {
      if (op.key >= last) {
        ++increases;
      } else {
        ++decreases;  // wraparound only
      }
    }
    last = op.key;
  }
  EXPECT_GT(increases, decreases * 50);
}

TEST(WorkloadGeneratorTest, MovesAppearWhenRequested) {
  bench::WorkloadConfig cfg;
  cfg.updatePercent = 10.0;
  cfg.movePercent = 5.0;
  bench::WorkloadGenerator gen(cfg, 6);
  int moves = 0;
  for (int i = 0; i < 100000; ++i) {
    if (gen.next().type == bench::OpType::Move) ++moves;
  }
  EXPECT_GT(moves, 0);
  EXPECT_NEAR(100.0 * moves / 100000.0, 10.0, 1.0);  // 2x 5% effective
}

TEST(CliTest, ParsesTypes) {
  const char* argv[] = {"prog",          "--threads=1,2,4", "--duration-ms=50",
                        "--update=12.5", "--biased",        "--name=fig3"};
  bench::Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.intList("threads", {}), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(cli.integer("duration-ms", 0), 50);
  EXPECT_DOUBLE_EQ(cli.real("update", 0), 12.5);
  EXPECT_TRUE(cli.flag("biased"));
  EXPECT_FALSE(cli.flag("unknown"));
  EXPECT_EQ(cli.str("name", ""), "fig3");
  EXPECT_EQ(cli.integer("missing", 7), 7);
}

TEST(ReportTest, RendersAlignedTable) {
  bench::Table t({"tree", "ops/us"});
  t.addRow({"RBtree", bench::Table::num(1.25)});
  t.addRow({"SFtree", bench::Table::num(2.5)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("RBtree"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("tree"), std::string::npos);
}

TEST(HarnessTest, PopulateReachesExactSize) {
  auto map = trees::makeMap(trees::MapKind::RBTree);
  bench::RunConfig cfg;
  cfg.initialSize = 500;
  cfg.workload.keyRange = 2048;
  bench::populate(*map, cfg);
  EXPECT_EQ(map->size(), 500u);
}

TEST(HarnessTest, ShortRunProducesThroughput) {
  auto map = trees::makeMap(trees::MapKind::OptSFTree);
  bench::RunConfig cfg;
  cfg.initialSize = 256;
  cfg.workload.keyRange = 512;
  cfg.workload.updatePercent = 10.0;
  cfg.threads = 2;
  cfg.durationMs = 100;
  bench::populate(*map, cfg);
  const auto result = bench::runThroughput(*map, cfg);
  EXPECT_GT(result.totalOps, 0u);
  EXPECT_GT(result.opsPerMicrosecond(), 0.0);
  EXPECT_GT(result.stm.commits, 0u);
  // The effective update ratio should be in the rough vicinity of the
  // target (steady-state argument, short run => loose bounds).
  EXPECT_GT(result.effectiveUpdateRatio(), 2.0);
  EXPECT_LT(result.effectiveUpdateRatio(), 25.0);
}

TEST(HarnessTest, ReadOnlyRunHasNoEffectiveUpdates) {
  auto map = trees::makeMap(trees::MapKind::RBTree);
  bench::RunConfig cfg;
  cfg.initialSize = 128;
  cfg.workload.keyRange = 256;
  cfg.workload.updatePercent = 0.0;
  cfg.threads = 2;
  cfg.durationMs = 50;
  bench::populate(*map, cfg);
  const auto result = bench::runThroughput(*map, cfg);
  EXPECT_EQ(result.effectiveUpdates, 0u);
  EXPECT_EQ(result.attemptedUpdates, 0u);
}

}  // namespace
