// Dynamic re-sharding: online shard splits/merges under live traffic.
// Covers key conservation and routing consistency across split/merge,
// linearizable lookups while migration races concurrent insert/erase/move
// (the token-count invariant), domain retirement in PerShard mode, and the
// ReshardController policy (split on a hot shard, merge when cold). The
// churn tests are in the ThreadSanitizer CI job's regex.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "bench_core/rng.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/reshard.hpp"
#include "shard/sharded_map.hpp"
#include "trees/tree_checks.hpp"

namespace shard = sftree::shard;
namespace trees = sftree::trees;
namespace stm = sftree::stm;
using sftree::Key;
using sftree::Value;
using sftree::bench::Rng;

namespace {

// First `count` keys (ascending) currently routed to shard `idx`.
std::vector<Key> keysForShard(shard::ShardedMap& map, int idx, int count) {
  std::vector<Key> out;
  for (Key k = 0; static_cast<int>(out.size()) < count; ++k) {
    if (map.shardIndexFor(k) == idx) out.push_back(k);
  }
  return out;
}

TEST(ReshardTest, SplitConservesKeysAndPartition) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  constexpr Key kKeys = 2'000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(map.insert(k, k * 10));
  const auto before = map.keysInOrder();

  const int newIdx = map.splitShard(0);
  ASSERT_GE(newIdx, 0);
  EXPECT_EQ(map.shardCount(), 5);

  // Abstraction unchanged; every key is where the routing now says.
  EXPECT_EQ(map.keysInOrder(), before);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(map.sizeEstimate(), static_cast<std::int64_t>(kKeys));
  map.quiesce();
  std::size_t total = 0;
  for (int i = 0; i < map.shardCount(); ++i) {
    for (const Key k : map.shard(i).keysInOrder()) {
      EXPECT_EQ(map.shardIndexFor(k), i) << "key " << k << " misrouted";
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kKeys));

  const auto rs = map.reshardStats();
  EXPECT_EQ(rs.splits, 1u);
  EXPECT_GT(rs.keysMigrated, 0u);
  // Dual-route publication + settled publication.
  EXPECT_EQ(rs.tablePublishes, 2u);

  // The new shard took a nontrivial share of the split shard's slots.
  const auto owners = map.slotOwners();
  EXPECT_GT(std::count(owners.begin(), owners.end(), newIdx), 0);
}

TEST(ReshardTest, MergeConservesKeysAndRetiresShard) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  cfg.domainMode = shard::DomainMode::PerShard;  // exercise domain retirement
  shard::ShardedMap map(cfg);

  constexpr Key kKeys = 2'000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(map.insert(k, k + 7));
  const auto before = map.keysInOrder();

  ASSERT_TRUE(map.mergeShards(1, 0));
  EXPECT_EQ(map.shardCount(), 3);
  EXPECT_EQ(map.keysInOrder(), before);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(map.sizeEstimate(), static_cast<std::int64_t>(kKeys));

  // Values survived the migration.
  for (Key k = 0; k < kKeys; ++k) {
    const auto v = map.get(k);
    ASSERT_TRUE(v.has_value()) << "key " << k;
    EXPECT_EQ(*v, k + 7);
  }

  const auto rs = map.reshardStats();
  EXPECT_EQ(rs.merges, 1u);
  EXPECT_GT(rs.keysMigrated, 0u);
  EXPECT_GT(rs.retiredArenaBytes, 0u);

  // No slot routes to a retired tree.
  for (const int owner : map.slotOwners()) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, map.shardCount());
  }
  map.quiesce();
  for (int i = 0; i < map.shardCount(); ++i) {
    const auto res = trees::checkSFTree(map.shard(i));
    EXPECT_TRUE(res.ok) << "shard " << i << ": " << res.error;
  }
}

TEST(ReshardTest, SplitWorksInDedicatedThreadMode) {
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = nullptr;  // each shard runs its own maintenance thread
  shard::ShardedMap map(cfg);

  for (Key k = 0; k < 600; ++k) map.insert(k, k);
  const int newIdx = map.splitShard(1);
  ASSERT_GE(newIdx, 0);
  EXPECT_EQ(map.shardCount(), 3);
  for (int i = 0; i < map.shardCount(); ++i) {
    EXPECT_TRUE(map.shard(i).maintenanceRunning()) << "shard " << i;
  }
  ASSERT_TRUE(map.mergeShards(newIdx, 0));
  EXPECT_EQ(map.shardCount(), 2);
  map.quiesce();
  EXPECT_EQ(map.size(), 600u);
}

// Keys-conserved under churn: mutators run insert/erase with per-key net
// accounting while split/merge cycles run concurrently; afterwards the map
// must hold exactly the net-inserted keys.
TEST(ReshardTest, KeysConservedWhileReshardingRacesMutators) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 3;
  cfg.routingSlots = 32;
  cfg.migrationBatch = 16;  // more batch boundaries = more race windows
  cfg.scheduler = &scheduler;
  cfg.domainMode = shard::DomainMode::PerShard;
  shard::ShardedMap map(cfg);

  constexpr int kThreads = 3;
  constexpr Key kRange = 256;
  constexpr int kOpsPerThread = 8'000;
  std::vector<std::atomic<std::int64_t>> net(kRange);
  std::atomic<bool> stopResharder{false};
  std::barrier sync(kThreads + 1);

  std::thread resharder([&] {
    sync.arrive_and_wait();
    Rng rng(11);
    while (!stopResharder.load(std::memory_order_acquire)) {
      const int n = map.shardCount();
      const int victim = static_cast<int>(rng.nextBounded(
          static_cast<std::uint64_t>(n)));
      if (n < 6 && rng.nextBool()) {
        map.splitShard(victim);
      } else if (n > 2) {
        map.mergeShards(victim, (victim + 1) % n);
      }
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(5'000 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(kRange));
        if (rng.nextBool()) {
          if (map.insert(k, k)) net[k].fetch_add(1);
        } else {
          if (map.erase(k)) net[k].fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  stopResharder.store(true, std::memory_order_release);
  resharder.join();

  std::int64_t expected = 0;
  std::vector<Key> expectedKeys;
  for (Key k = 0; k < kRange; ++k) {
    ASSERT_GE(net[k].load(), 0);
    ASSERT_LE(net[k].load(), 1);
    if (net[k].load() == 1) expectedKeys.push_back(k);
    expected += net[k].load();
  }

  map.quiesce();
  EXPECT_EQ(map.keysInOrder(), expectedKeys);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(expected));
  EXPECT_EQ(map.sizeEstimate(), expected);
  const auto rs = map.reshardStats();
  EXPECT_GT(rs.splits + rs.merges, 0u) << "the race never actually ran";
}

// Linearizable lookups during migration: tokens bounce between random slots
// (including composed cross-shard moves) while an observer takes whole-map
// transactional snapshots and split/merge cycles republish the routing
// table. A key visible in both the migration source and destination — or in
// neither — would change the observed cardinality.
TEST(ReshardTest, SnapshotsStayLinearizableAcrossSplitMergeCycles) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 1;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.routingSlots = 32;
  cfg.migrationBatch = 8;
  cfg.scheduler = &scheduler;
  cfg.domainMode = shard::DomainMode::PerShard;
  shard::ShardedMap map(cfg);

  constexpr Key kRange = 192;
  constexpr int kTokens = 48;
  for (Key k = 0; k < kTokens; ++k) ASSERT_TRUE(map.insert(k, 1'000 + k));

  constexpr int kMovers = 2;
  constexpr int kMovesPerThread = 6'000;
  std::atomic<bool> stop{false};
  std::atomic<int> snapshotViolations{0};
  std::atomic<int> reshardCycles{0};

  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t seen = map.countRange(0, kRange - 1);
      if (seen != kTokens) snapshotViolations.fetch_add(1);
    }
  });

  std::thread resharder([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const int newIdx = map.splitShard(0);
      if (newIdx >= 0) map.mergeShards(newIdx, 0);
      reshardCycles.fetch_add(1);
    }
  });

  std::barrier sync(kMovers);
  std::vector<std::thread> movers;
  for (int t = 0; t < kMovers; ++t) {
    movers.emplace_back([&, t] {
      Rng rng(777 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < kMovesPerThread; ++i) {
        const Key from = static_cast<Key>(rng.nextBounded(kRange));
        const Key to = static_cast<Key>(rng.nextBounded(kRange));
        map.move(from, to);
      }
    });
  }
  for (auto& th : movers) th.join();
  stop.store(true, std::memory_order_release);
  observer.join();
  resharder.join();

  EXPECT_EQ(snapshotViolations.load(), 0)
      << "a snapshot saw a migrating key at both shards or at neither";
  EXPECT_GT(reshardCycles.load(), 0);

  map.quiesce();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kTokens));
  EXPECT_EQ(map.sizeEstimate(), kTokens);

  // Every token payload survives exactly once.
  std::vector<Value> values;
  for (const Key k : map.keysInOrder()) {
    const auto v = map.get(k);
    ASSERT_TRUE(v.has_value());
    values.push_back(*v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(values.size(), static_cast<std::size_t>(kTokens));
  for (int i = 0; i < kTokens; ++i) EXPECT_EQ(values[i], 1'000 + i);
}

// Composed transactions observe migration atomically: countRangeTx +
// insertTx in one transaction while the routing table flips underneath.
TEST(ReshardTest, ComposedTransactionsSpanMigration) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.routingSlots = 16;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  for (Key k = 0; k < 100; ++k) map.insert(k, k);

  std::atomic<bool> stop{false};
  std::thread resharder([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const int newIdx = map.splitShard(0);
      if (newIdx >= 0) map.mergeShards(newIdx, 0);
    }
  });

  for (int i = 0; i < 300; ++i) {
    const Key extra = static_cast<Key>(1'000 + i);
    const auto counts = stm::atomically([&](stm::Tx& tx) {
      const std::size_t before = map.countRangeTx(tx, 0, 100'000);
      map.insertTx(tx, extra, extra);
      const std::size_t after = map.countRangeTx(tx, 0, 100'000);
      return std::make_pair(before, after);
    });
    ASSERT_EQ(counts.second, counts.first + 1) << "iteration " << i;
    ASSERT_TRUE(map.erase(extra));
  }
  stop.store(true, std::memory_order_release);
  resharder.join();

  map.quiesce();
  EXPECT_EQ(map.size(), 100u);
}

TEST(ReshardTest, ControllerSplitsHotShardAndMergesCold) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.routingSlots = 32;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  shard::ReshardControllerConfig rcfg;
  rcfg.minShards = 2;
  rcfg.maxShards = 3;
  rcfg.splitFactor = 1.5;
  rcfg.mergeFactor = 0.5;
  rcfg.minOpsPerSample = 256;
  shard::ReshardController ctl(map, rcfg);

  // Baseline sample (tick deltas need a previous reading).
  ctl.sampleAndAct();

  // Hammer shard 0 only: its interval load dwarfs the fair share.
  for (int round = 0; round < 4 && map.shardCount() < 3; ++round) {
    const auto hotKeys = keysForShard(map, 0, 64);
    for (int i = 0; i < 50; ++i) {
      for (const Key k : hotKeys) {
        map.insert(k, k);
        map.erase(k);
      }
    }
    ctl.sampleAndAct();
  }
  EXPECT_GE(ctl.stats().splits, 1u);
  EXPECT_GE(map.shardCount(), 3);

  // Single-hot traffic at the shard ceiling: the split branch is capped
  // out, the two idle shards together fall below the merge threshold, and
  // the coldest pair merges.
  for (int round = 0; round < 8 && ctl.stats().merges == 0; ++round) {
    const auto hotKeys = keysForShard(map, 0, 64);
    for (int i = 0; i < 20; ++i) {
      for (const Key k : hotKeys) {
        map.insert(k, k);
        map.erase(k);
      }
    }
    ctl.sampleAndAct();
  }
  EXPECT_GE(ctl.stats().merges, 1u);
}

// Heat-weighted split policy: two shards carry the SAME traffic volume,
// but one concentrates it on a single key (one routing slot — the skew the
// splay heuristic serves) while the other spreads it evenly. The raw tick
// deltas tie, so the pre-heat policy (heatWeight = 0) must refuse to split;
// the hottest-slot heat term breaks the tie toward the skew-hot shard.
TEST(ReshardTest, HeatWeightedSplitPrefersSkewHotShard) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.routingSlots = 32;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  const Key hotKey = keysForShard(map, 0, 1).front();
  const auto spreadKeys = keysForShard(map, 1, 64);
  auto hammer = [&] {
    for (int i = 0; i < 3'000; ++i) {
      map.insert(hotKey, 1);
      map.erase(hotKey);
    }
    const int reps = 3'000 / static_cast<int>(spreadKeys.size());
    for (int i = 0; i < reps; ++i) {
      for (const Key k : spreadKeys) {
        map.insert(k, 1);
        map.erase(k);
      }
    }
  };

  shard::ReshardControllerConfig rcfg;
  rcfg.minShards = 2;
  rcfg.maxShards = 3;
  rcfg.splitFactor = 1.2;
  rcfg.mergeFactor = 0.0;  // merges off: this test is about the split score
  rcfg.minOpsPerSample = 1024;

  {
    rcfg.heatWeight = 0.0;
    shard::ReshardController ctl(map, rcfg);
    ctl.sampleAndAct();  // baseline reading
    hammer();
    EXPECT_FALSE(ctl.sampleAndAct())
        << "equal volume without the heat term must not cross splitFactor";
    EXPECT_EQ(ctl.stats().splits, 0u);
  }

  // Drain the violation backlog the first round left queued, so the second
  // controller's baseline sample sees an idle interval (queue-depth weight
  // alone must not trip the split).
  map.quiesce();

  {
    rcfg.heatWeight = 1.0;
    shard::ReshardController ctl(map, rcfg);
    ctl.sampleAndAct();  // baseline reading
    hammer();
    EXPECT_TRUE(ctl.sampleAndAct());
    EXPECT_EQ(ctl.stats().splits, 1u);
    const auto log = ctl.decisionLog();
    ASSERT_FALSE(log.empty());
    const auto& d = log.back();
    EXPECT_EQ(d.action, shard::ReshardDecision::Action::kSplit);
    EXPECT_EQ(d.shard, 0) << "the skew-hot shard must win the split";
    EXPECT_TRUE(d.acted);
    EXPECT_GT(d.hotSlotHeat, 0.0);
  }
  EXPECT_EQ(map.shardCount(), 3);
}

// Load-aware slot selection: splitShard ranks the victim's slots by their
// slotOpTicks gauges and peels the hottest ones onto the fresh shard, so a
// single scorching slot must land on the new tree — not stay behind by the
// luck of an index interleave.
TEST(ReshardTest, SplitPeelsHottestSlotOntoNewShard) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  // Background traffic so every slot has a nonzero gauge, then one key
  // hammered hard enough that its slot dominates any interleaving noise.
  constexpr Key kKeys = 2'000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(map.insert(k, k));
  const Key hotKey = 1'234;
  for (int i = 0; i < 20'000; ++i) ASSERT_TRUE(map.contains(hotKey));

  const auto ticks = map.aggregatedStats().slotOpTicks;
  const int hotSlot = static_cast<int>(std::distance(
      ticks.begin(), std::max_element(ticks.begin(), ticks.end())));
  const int victim = map.slotOwners()[hotSlot];

  const int newIdx = map.splitShard(victim);
  ASSERT_GE(newIdx, 0);
  EXPECT_EQ(map.slotOwners()[hotSlot], newIdx)
      << "the hottest slot stayed on the split shard";
  // The abstraction is untouched by the load-aware selection.
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(map.sizeEstimate(), static_cast<std::int64_t>(kKeys));
}

}  // namespace
