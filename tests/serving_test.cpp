// Batched serving tier: request coalescing over ShardedMap. Covers
// batched-vs-sequential linearizability (one executor = submission order,
// so every result must match a sequential model), completion guarantees
// across shutdown (futures and callbacks, accepted or rejected), AIMD batch
// shrink under forced write conflicts, and batches spanning a live
// splitShard/mergeShards migration with key conservation. The shutdown and
// resharding tests are in the ThreadSanitizer CI job's regex.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "bench_core/rng.hpp"
#include "obs/metrics.hpp"
#include "serve/serving.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"

namespace serve = sftree::serve;
namespace shard = sftree::shard;
using sftree::Key;
using sftree::Value;
using sftree::bench::Rng;

namespace {

// With ONE executor and ONE submitting thread the tier executes requests in
// submission order (MPSC drain + FIFO backlog), so batching K requests into
// one transaction must be observationally identical to running them one at
// a time against a sequential map model.
TEST(ServingTest, BatchedExecutionMatchesSequentialModel) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  serve::ServingTierConfig scfg;
  scfg.executors = 1;
  scfg.batchSize = 16;
  scfg.adaptiveBatch = false;  // fixed coalescing: every batch is 16 deep
  serve::ServingTier tier(map, scfg);

  constexpr int kOps = 20'000;
  constexpr Key kRange = 512;
  Rng rng(42);
  std::map<Key, Value> model;
  std::vector<serve::Future> futures;
  std::vector<serve::Result> expected;
  futures.reserve(kOps);
  expected.reserve(kOps);

  for (int i = 0; i < kOps; ++i) {
    serve::Request r;
    r.key = static_cast<Key>(rng.nextBounded(kRange));
    const auto roll = rng.nextBounded(100);
    if (roll < 35) {
      r.op = serve::OpKind::kInsert;
      r.value = static_cast<Value>(i);
    } else if (roll < 60) {
      r.op = serve::OpKind::kErase;
    } else if (roll < 80) {
      r.op = serve::OpKind::kGet;
    } else {
      r.op = serve::OpKind::kContains;
    }

    serve::Result e;
    e.op = r.op;
    e.key = r.key;
    const auto it = model.find(r.key);
    switch (r.op) {
      case serve::OpKind::kInsert:
        e.ok = it == model.end();
        if (e.ok) model.emplace(r.key, r.value);
        break;
      case serve::OpKind::kErase:
        e.ok = it != model.end();
        if (e.ok) model.erase(it);
        break;
      case serve::OpKind::kGet:
        e.ok = it != model.end();
        if (e.ok) e.value = it->second;
        break;
      case serve::OpKind::kContains:
        e.ok = it != model.end();
        break;
    }
    expected.push_back(e);
    futures.push_back(tier.submit(r));
  }

  for (int i = 0; i < kOps; ++i) {
    const serve::Result got = futures[static_cast<std::size_t>(i)].get();
    const serve::Result& want = expected[static_cast<std::size_t>(i)];
    ASSERT_FALSE(got.rejected) << "request " << i;
    ASSERT_EQ(got.op, want.op) << "request " << i;
    ASSERT_EQ(got.key, want.key) << "request " << i;
    ASSERT_EQ(got.ok, want.ok) << "request " << i;
    ASSERT_EQ(got.value, want.value) << "request " << i;
  }

  const auto s = tier.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(s.rejected, 0u);
  // Coalescing actually happened: far fewer transactions than requests.
  EXPECT_GT(s.batchTxs, 0u);
  EXPECT_LT(s.batchTxs + s.perOpTxs, static_cast<std::uint64_t>(kOps));
  // Latencies were recorded for both request classes.
  EXPECT_GT(s.latencyReadNs.count() + s.latencyUpdateNs.count(), 0u);

  tier.stop();
  map.quiesce();
  EXPECT_EQ(map.size(), model.size());
}

// Every submitted request completes exactly once — executor-executed or
// rejected (admission or shutdown sweep) — even when stop() races live
// submitters. Futures become ready, callbacks fire, and the counters add
// up: submitted == completed + rejected.
TEST(ServingTest, EveryRequestCompletesAcrossShutdown) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  auto tier = std::make_unique<serve::ServingTier>(map);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4'000;
  std::atomic<std::uint64_t> callbacksRun{0};
  std::atomic<std::uint64_t> callbackSubmits{0};
  std::vector<std::vector<serve::Future>> futures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        serve::Request r;
        r.op = rng.nextBool() ? serve::OpKind::kInsert : serve::OpKind::kGet;
        r.key = static_cast<Key>(rng.nextBounded(4'096));
        r.value = 1;
        if (i % 2 == 0) {
          futures[static_cast<std::size_t>(t)].push_back(tier->submit(r));
        } else {
          callbackSubmits.fetch_add(1, std::memory_order_relaxed);
          tier->submit(r, [&](const serve::Result&) {
            callbacksRun.fetch_add(1, std::memory_order_relaxed);
          });
        }
      }
    });
  }
  // Stop mid-stream: some submissions land before, some race the flag, some
  // arrive after and are rejected inline.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  tier->stop();
  for (auto& th : threads) th.join();

  std::uint64_t futureOk = 0;
  std::uint64_t futureRejected = 0;
  for (auto& perThread : futures) {
    for (auto& f : perThread) {
      ASSERT_TRUE(f.valid());
      const serve::Result r = f.get();  // must not hang
      (r.rejected ? futureRejected : futureOk) += 1;
    }
  }
  EXPECT_EQ(callbacksRun.load(), callbackSubmits.load());

  const auto s = tier->stats();
  EXPECT_EQ(s.submitted,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.completed + s.rejected, s.submitted);
  EXPECT_EQ(futureOk + futureRejected, s.submitted / 2);
  tier.reset();  // idempotent stop via destructor
}

// Forced write conflicts against the batch transactions: a hammer thread
// mutates the same small key range the batches touch, so batch commits
// abort and the AIMD controller must shrink the effective batch size (and
// eventually degrade lone batches to per-op transactions).
TEST(ServingTest, AimdShrinksBatchUnderConflicts) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 1;  // one domain: every update contends
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  serve::ServingTierConfig scfg;
  scfg.executors = 1;
  scfg.batchSize = 32;
  scfg.adaptiveBatch = true;
  scfg.batchRetryLimit = 2;
  serve::ServingTier tier(map, scfg);

  constexpr Key kRange = 64;
  std::atomic<bool> stop{false};
  std::thread hammer([&] {
    Rng rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k = static_cast<Key>(rng.nextBounded(kRange));
      map.insert(k, 1);
      map.erase(k);
    }
  });

  // Bounded-generous retry: keep offering update batches until a shrink is
  // observed (each round submits enough for many full batches).
  Rng rng(13);
  for (int round = 0; round < 200 && tier.stats().batchShrinks == 0;
       ++round) {
    std::vector<serve::Future> fs;
    fs.reserve(512);
    for (int i = 0; i < 512; ++i) {
      serve::Request r;
      r.op = rng.nextBool() ? serve::OpKind::kInsert : serve::OpKind::kErase;
      r.key = static_cast<Key>(rng.nextBounded(kRange));
      r.value = 2;
      fs.push_back(tier.submit(r));
    }
    for (auto& f : fs) f.get();
  }
  stop.store(true, std::memory_order_release);
  hammer.join();

  const auto s = tier.stats();
  EXPECT_GT(s.batchShrinks, 0u)
      << "conflicting batches never shrank the AIMD window";
  tier.stop();
}

// Batches keep executing (and stay atomic) while the routing table flips
// underneath them: a resharder runs split/merge cycles as two submitters
// stream inserts/erases with per-key net accounting through the tier. The
// surviving key set must equal the net-inserted set — a batch observing a
// migrating slot at both shards (or neither) would break it.
TEST(ServingTest, BatchesSpanLiveResharding) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.routingSlots = 32;
  cfg.migrationBatch = 16;  // more batch boundaries = more race windows
  cfg.scheduler = &scheduler;
  cfg.domainMode = shard::DomainMode::PerShard;
  shard::ShardedMap map(cfg);

  serve::ServingTierConfig scfg;
  scfg.executors = 2;  // queues span shards; batches cross migrating slots
  scfg.batchSize = 16;
  serve::ServingTier tier(map, scfg);

  constexpr int kThreads = 2;
  constexpr Key kRange = 256;
  constexpr int kOpsPerThread = 6'000;
  constexpr int kFlight = 64;
  std::vector<std::atomic<std::int64_t>> net(kRange);
  std::atomic<bool> stopResharder{false};

  std::thread resharder([&] {
    Rng rng(11);
    while (!stopResharder.load(std::memory_order_acquire)) {
      const int n = map.shardCount();
      const int victim =
          static_cast<int>(rng.nextBounded(static_cast<std::uint64_t>(n)));
      if (n < 5 && rng.nextBool()) {
        map.splitShard(victim);
      } else if (n > 2) {
        map.mergeShards(victim, (victim + 1) % n);
      }
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(3'000 + t);
      std::vector<std::pair<serve::Future, Key>> flight;
      flight.reserve(kFlight);
      auto drain = [&] {
        for (auto& [f, key] : flight) {
          const serve::Result res = f.get();
          ASSERT_FALSE(res.rejected);
          if (!res.ok) continue;
          if (res.op == serve::OpKind::kInsert) {
            net[key].fetch_add(1);
          } else {
            net[key].fetch_sub(1);
          }
        }
        flight.clear();
      };
      for (int i = 0; i < kOpsPerThread; ++i) {
        serve::Request r;
        r.op =
            rng.nextBool() ? serve::OpKind::kInsert : serve::OpKind::kErase;
        r.key = static_cast<Key>(rng.nextBounded(kRange));
        r.value = r.key;
        flight.emplace_back(tier.submit(r), r.key);
        if (flight.size() >= kFlight) drain();
      }
      drain();
    });
  }
  for (auto& th : threads) th.join();
  stopResharder.store(true, std::memory_order_release);
  resharder.join();
  tier.stop();

  std::vector<Key> expectedKeys;
  for (Key k = 0; k < kRange; ++k) {
    ASSERT_GE(net[k].load(), 0);
    ASSERT_LE(net[k].load(), 1);
    if (net[k].load() == 1) expectedKeys.push_back(k);
  }
  map.quiesce();
  EXPECT_EQ(map.keysInOrder(), expectedKeys);
  EXPECT_EQ(map.sizeEstimate(),
            static_cast<std::int64_t>(expectedKeys.size()));
  const auto rs = map.reshardStats();
  EXPECT_GT(rs.splits + rs.merges, 0u) << "the race never actually ran";
  EXPECT_GT(tier.stats().batchTxs, 0u);
}

// The metrics registration exports the tier's counters and histograms
// through the shared registry like every other subsystem; the counters
// must reflect completed traffic.
TEST(ServingTest, RegisterMetricsExportsCountersAndHistograms) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 1;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);
  serve::ServingTier tier(map);

  sftree::obs::MetricsRegistry reg;
  auto registration = tier.registerMetrics(reg, "serve");

  std::vector<serve::Future> futs;
  for (Key k = 0; k < 64; ++k) {
    futs.push_back(tier.submit({serve::OpKind::kInsert, k, k}));
  }
  for (auto& f : futs) EXPECT_FALSE(f.get().rejected);

  // The text exporter pads the name column; match name and value loosely.
  const std::string text = reg.renderText();
  const auto counterIs = [&text](const std::string& name,
                                 const std::string& value) {
    const auto pos = text.find(name);
    if (pos == std::string::npos) return false;
    const auto eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    return line.size() >= value.size() &&
           line.compare(line.size() - value.size(), value.size(), value) == 0;
  };
  EXPECT_TRUE(counterIs("serve.submitted", "64")) << text;
  EXPECT_TRUE(counterIs("serve.completed", "64")) << text;
  EXPECT_NE(text.find("serve.latency_update_ns.count"), std::string::npos);
  tier.stop();
}

}  // namespace
