// Abort-cause taxonomy: every abort/restart path in the STM is tagged with
// a cause, the conflict causes partition the legacy `aborts` counter
// exactly, and each forced-conflict scenario lands on the expected tag.
//
// Scenario per cause:
//   read_validation       orec commit-time read-set validation fails
//   lock_conflict         eager write hits an orec locked by another tx
//   norec_validation      NOrec value validation sees a changed value
//   elastic_validation    elastic window entry overwritten mid-traversal
//   cross_domain_join     joining a second domain invalidates prior reads
//   user_restart          explicit tx.restart()
//   ro_snapshot_extension zero-logging RO body restarts on a stale snapshot
//   ro_promotion          write inside an RO body promotes to read-write
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/abort_cause.hpp"
#include "stm/stm.hpp"

namespace obs = sftree::obs;
namespace stm = sftree::stm;

namespace {

using obs::AbortCause;

// Commits `field := value` from a fresh thread so the surrounding
// transaction observes a foreign commit mid-attempt.
void commitFromOtherThread(stm::Domain& dom, stm::TxField<std::int64_t>& f,
                           std::int64_t value) {
  std::thread([&] {
    stm::atomically(dom, [&](stm::Tx& tx) { f.write(tx, value); });
  }).join();
}

TEST(AbortTaxonomyTest, OrecReadValidationAbort) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(1);
  stm::TxField<std::int64_t> z(0);
  auto& st = stm::threadStats(dom);
  st.reset();
  int attempts = 0;
  stm::atomically(dom, [&](stm::Tx& tx) {
    ++attempts;
    (void)x.read(tx);
    if (attempts == 1) commitFromOtherThread(dom, x, 99);
    // The buffered write forces commit-time validation of the (now stale)
    // read of x.
    z.write(tx, 7);
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_GE(st.abortsFor(AbortCause::kReadValidation), 1u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
}

TEST(AbortTaxonomyTest, EagerLockConflictAbort) {
  stm::Config cfg;
  cfg.lockMode = stm::LockMode::Eager;
  stm::Domain dom(cfg);
  stm::TxField<std::int64_t> x(0);
  auto& st = stm::threadStats(dom);
  st.reset();

  std::atomic<int> phase{0};
  std::thread holder([&] {
    stm::atomically(dom, [&](stm::Tx& tx) {
      x.write(tx, 1);  // eager: the orec is locked from here to commit
      phase.store(1, std::memory_order_release);
      while (phase.load(std::memory_order_acquire) != 2) {
        std::this_thread::yield();
      }
    });
  });
  while (phase.load(std::memory_order_acquire) != 1) std::this_thread::yield();

  int attempts = 0;
  stm::atomically(dom, [&](stm::Tx& tx) {
    ++attempts;
    if (attempts >= 2) phase.store(2, std::memory_order_release);
    // First attempt writes into the held lock and aborts; later attempts
    // race the holder's commit and eventually win.
    x.write(tx, 2);
  });
  holder.join();

  EXPECT_GE(attempts, 2);
  EXPECT_GE(st.abortsFor(AbortCause::kLockConflict), 1u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
  EXPECT_EQ(x.loadRelaxed(), 2);
}

TEST(AbortTaxonomyTest, NorecValueValidationAbort) {
  stm::Config cfg;
  cfg.backend = stm::TmBackend::NOrec;
  stm::Domain dom(cfg);
  stm::TxField<std::int64_t> x(1);
  stm::TxField<std::int64_t> y(2);
  auto& st = stm::threadStats(dom);
  st.reset();
  int attempts = 0;
  stm::atomically(dom, [&](stm::Tx& tx) {
    ++attempts;
    (void)x.read(tx);
    if (attempts == 1) commitFromOtherThread(dom, x, 99);
    // The next read observes the moved seqlock and value-validates the
    // log; x's value changed, so the attempt aborts.
    (void)y.read(tx);
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_GE(st.abortsFor(AbortCause::kNorecValidation), 1u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
}

TEST(AbortTaxonomyTest, ElasticWindowValidationAbort) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(1);
  stm::TxField<std::int64_t> y(2);
  auto& st = stm::threadStats(dom);
  st.reset();
  int attempts = 0;
  stm::atomically(dom, stm::TxKind::Elastic, [&](stm::Tx& tx) {
    ++attempts;
    (void)x.read(tx);
    if (attempts == 1) {
      // One foreign transaction moves both fields: y's bumped orec forces
      // the elastic snapshot slide, whose hand-over-hand validation finds
      // x (still in the window) changed.
      std::thread([&] {
        stm::atomically(dom, [&](stm::Tx& t2) {
          x.write(t2, 99);
          y.write(t2, 98);
        });
      }).join();
    }
    (void)y.read(tx);
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_GE(st.abortsFor(AbortCause::kElasticValidation), 1u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
}

TEST(AbortTaxonomyTest, CrossDomainJoinValidationAbort) {
  stm::Domain domA;
  stm::Domain domB;
  stm::TxField<std::int64_t> x(1);
  stm::TxField<std::int64_t> y(2);
  auto& st = stm::threadStats(domA);
  st.reset();
  int attempts = 0;
  stm::atomically(domA, [&](stm::Tx& tx) {
    ++attempts;
    (void)x.read(tx);
    if (attempts == 1) commitFromOtherThread(domA, x, 99);
    // Joining the second domain is a snapshot advance: it must revalidate
    // everything already read, and x is stale.
    stm::DomainScope scope(tx, domB);
    (void)y.read(tx);
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_GE(st.abortsFor(AbortCause::kCrossDomainJoin), 1u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
}

TEST(AbortTaxonomyTest, UserRestartTagged) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(0);
  auto& st = stm::threadStats(dom);
  st.reset();
  int attempts = 0;
  stm::atomically(dom, [&](stm::Tx& tx) {
    ++attempts;
    x.write(tx, attempts);
    if (attempts < 3) tx.restart();
  });
  EXPECT_EQ(st.aborts, 2u);
  EXPECT_EQ(st.abortsFor(AbortCause::kUserRestart), 2u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
}

TEST(AbortTaxonomyTest, RoSnapshotExtensionRestartIsNotAnAbort) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(1);
  stm::TxField<std::int64_t> y(2);
  auto& st = stm::threadStats(dom);
  st.reset();
  int attempts = 0;
  stm::atomically(dom, stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
    ++attempts;
    (void)x.read(tx);
    if (attempts == 1) commitFromOtherThread(dom, y, 99);
    // Zero-logging mode cannot extend in place once x was read under the
    // old snapshot: the body restarts, tagged ro_snapshot_extension.
    (void)y.read(tx);
  });
  EXPECT_GE(attempts, 2);
  EXPECT_GE(st.abortsFor(AbortCause::kRoSnapshotExtension), 1u);
  // Restart causes live outside the conflict partition: the legacy abort
  // counter is untouched and still equals the conflict-cause sum (zero).
  EXPECT_EQ(st.aborts, 0u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
}

TEST(AbortTaxonomyTest, RoPromotionRestartTagged) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(5);
  auto& st = stm::threadStats(dom);
  st.reset();
  stm::atomically(dom, stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
    x.write(tx, x.read(tx) + 1);
  });
  EXPECT_EQ(x.loadRelaxed(), 6);
  EXPECT_EQ(st.abortsFor(AbortCause::kRoPromotion), 1u);
  EXPECT_EQ(st.abortsFor(AbortCause::kRoPromotion), st.roPromotions);
  EXPECT_EQ(st.aborts, 0u);
  EXPECT_EQ(st.conflictAbortTotal(), st.aborts);
}

// The partition holds under genuinely concurrent mixed traffic, summed over
// every thread slot of the domain.
TEST(AbortTaxonomyTest, CauseSumMatchesUnderConcurrentTraffic) {
  stm::Domain dom;
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  stm::TxField<std::int64_t> fields[8];  // default-constructed to 0
  dom.resetStats();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        stm::atomically(dom, [&](stm::Tx& tx) {
          const int a = (t + i) % 8;
          const int b = (t * 3 + i * 5) % 8;
          fields[a].write(tx, fields[b].read(tx) + 1);
        });
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto agg = dom.aggregateStats();
  EXPECT_EQ(agg.commits, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(agg.conflictAbortTotal(), agg.aborts);
}

}  // namespace
